/**
 * @file
 * Reproduces Figs. 8-9: MDM's sensitivity to STC size (Sec. 5.2).
 * The paper varies the single-core STC over 16/32/64 KB; at the
 * repo's 1/100 scale these become 512 B / 1 KiB / 2 KiB.
 *
 *  - Fig. 8: IPC with the small and large STC normalized to the
 *    default
 *  - Fig. 9: STC hit rates vs STC size
 *
 * Expected shapes: hit rates grow with STC size; a smaller STC
 * hurts the programs with irregular accesses the most (paper: mcf
 * and omnetpp lose ~8%); a larger STC does not necessarily help
 * (too few evictions starve MDM of statistics updates).
 */

#include "bench_util.hh"

using namespace profess;
using namespace profess::bench;

int
main(int argc, char **argv)
{
    BenchEnv env = benchEnv();
    header("Figs. 8-9: STC size sensitivity of MDM",
           "Figures 8, 9");

    const std::uint64_t sizes[] = {512, 1 * KiB, 2 * KiB};
    const char *labels[] = {"small(0.5K)", "default(1K)",
                            "large(2K)"};

    sim::ParallelRunner runner = makeRunner(argc, argv);
    std::vector<std::string> programs = allPrograms();
    std::vector<sim::RunJob> jobs;
    for (const std::string &prog : programs) {
        for (int i = 0; i < 3; ++i) {
            sim::SystemConfig cfg = sim::SystemConfig::singleCore();
            cfg.core.instrQuota = env.singleInstr;
            cfg.core.warmupInstr = env.warmupInstr;
            cfg.stc.capacityBytes = sizes[i];
            jobs.push_back(sim::singleJob(cfg, "mdm", prog,
                                          /*sweep_point=*/i));
        }
    }
    std::vector<sim::MultiMetrics> res = runner.run(jobs);

    std::printf("\n%-12s", "program");
    for (const char *l : labels)
        std::printf(" %12s %8s", l, "STC%");
    std::printf("\n");

    for (std::size_t p = 0; p < programs.size(); ++p) {
        double ipc[3] = {};
        double stc[3] = {};
        for (int i = 0; i < 3; ++i) {
            const sim::RunResult &r = res[3 * p + i].run;
            ipc[i] = r.ipc[0];
            stc[i] = r.stcHitRate;
        }
        std::printf("%-12s", programs[p].c_str());
        for (int i = 0; i < 3; ++i)
            std::printf(" %12.3f %7.1f%%", ipc[i] / ipc[1],
                        100.0 * stc[i]);
        std::printf("\n");
    }
    std::printf("\n(IPC columns normalized to the default STC; "
                "paper Fig. 8 shows mcf/omnetpp losing ~8%% with "
                "the half-size STC.)\n");
    return 0;
}
