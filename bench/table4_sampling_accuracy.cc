/**
 * @file
 * Reproduces Table 4: RSM sampling accuracy for bwaves, milc and
 * omnetpp running alone (Sec. 3.1.3).
 *
 * For sampling periods Msamp (paper: 64K/128K/256K requests;
 * scaled 1/100 here to 1K/2K/4K, keeping periods-per-run constant)
 * the table reports:
 *   - mean sigma_req: stddev of requests served per region during
 *     one period, as % of the mean;
 *   - sigma of the raw SF_A estimates across periods (%);
 *   - sigma of the exponentially smoothed SF_A estimates (%).
 *
 * Expected shapes: all three columns shrink as Msamp doubles, and
 * smoothing cuts the SF_A deviation by a further large factor (the
 * paper's milc at 128K: raw 13% -> smoothed 3.3%).
 */

#include "bench_util.hh"

using namespace profess;
using namespace profess::bench;

int
main(int argc, char **argv)
{
    BenchEnv env = benchEnv();
    header("Table 4: RSM sampling accuracy", "Table 4");

    const std::uint64_t msamps[] = {1024, 2048, 4096};
    const char *progs[] = {"bwaves", "milc", "omnetpp"};

    // These runs inspect RSM period history, not RunResult, so
    // they go through the runner's generic forEach: cell (p, m)
    // builds its own System and writes only its own slot.
    struct Cell
    {
        double reqPct = 0.0;
        double rawPct = 0.0;
        double avgPct = 0.0;
    };
    Cell cells[3][3];

    sim::ParallelRunner runner = makeRunner(argc, argv);
    runner.forEach(9, [&](std::size_t idx) {
        std::size_t pi = idx / 3;
        std::size_t mi = idx % 3;
        sim::SystemConfig cfg = sim::SystemConfig::singleCore();
        cfg.core.instrQuota = env.singleInstr;
        cfg.core.warmupInstr = env.warmupInstr;
        cfg.msamp = msamps[mi];
        cfg.rsmPerRegionStats = true;

        std::vector<std::unique_ptr<trace::TraceSource>> src;
        src.push_back(trace::makeSpecSource(
            progs[pi], trace::defaultScale, 1));
        sim::System sys(cfg, "profess", std::move(src));
        sys.run();

        core::ProfessPolicy *pf = sys.professPolicy();
        const auto &hist = pf->rsm().history(0);
        RunningStat req, raw, avg;
        for (const auto &s : hist) {
            req.add(s.reqStdPct);
            raw.add(s.rawSfA);
            avg.add(s.avgSfA);
        }
        Cell &c = cells[pi][mi];
        c.reqPct = req.mean();
        c.rawPct = raw.mean() > 0
                       ? 100.0 * raw.stddev() / raw.mean()
                       : 0.0;
        c.avgPct = avg.mean() > 0
                       ? 100.0 * avg.stddev() / avg.mean()
                       : 0.0;
    });

    std::printf("\n%-10s", "program");
    for (std::uint64_t m : msamps)
        std::printf("  [Msamp=%-4llu] req%% rawSF%% avgSF%%",
                    static_cast<unsigned long long>(m));
    std::printf("\n");

    for (std::size_t pi = 0; pi < 3; ++pi) {
        std::printf("%-10s", progs[pi]);
        for (std::size_t mi = 0; mi < 3; ++mi) {
            const Cell &c = cells[pi][mi];
            std::printf("      %6.1f %6.1f %6.2f   ", c.reqPct,
                        c.rawPct, c.avgPct);
        }
        std::printf("\n");
    }
    std::printf("\n(paper at 100x scale: bwaves 26/2/0.3, milc "
                "20/13/3.3, omnetpp 12/5/1.6 at Msamp=128K)\n");
    return 0;
}
