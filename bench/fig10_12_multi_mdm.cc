/**
 * @file
 * Reproduces Figs. 10-12: multi-program evaluation of MDM vs PoM on
 * the quad-core system over the Table 10 workloads (Sec. 5.3).
 *
 *  - Fig. 10: max slowdown (unfairness) of MDM normalized to PoM
 *  - Fig. 11: weighted speedup of MDM normalized to PoM
 *  - Fig. 12: memory-system energy efficiency, MDM norm. to PoM
 *
 * Expected shapes: MDM outperforms PoM on average (paper: +7%) and
 * usually improves fairness (paper: -6% max slowdown) purely by
 * speeding programs up, but is *less* fair than PoM on some
 * workloads since it ignores individual slowdowns.
 */

#include "bench_util.hh"

using namespace profess;
using namespace profess::bench;

int
main(int argc, char **argv)
{
    BenchEnv env = benchEnv();
    header("Figs. 10-12: multi-program MDM vs PoM",
           "Figures 10, 11, 12");

    sim::SystemConfig cfg = sim::SystemConfig::quadCore();
    cfg.core.instrQuota = env.multiInstr;
    cfg.core.warmupInstr = env.warmupInstr;
    sim::ParallelRunner runner = makeRunner(argc, argv);

    std::vector<sim::RunJob> jobs;
    std::vector<std::string> names;
    for (const std::string &wname : env.workloads) {
        const sim::WorkloadSpec *w = sim::findWorkload(wname);
        if (!w)
            continue;
        names.push_back(wname);
        jobs.push_back(sim::multiJob(cfg, "pom", *w));
        jobs.push_back(sim::multiJob(cfg, "mdm", *w));
    }
    std::vector<sim::MultiMetrics> res = runner.run(jobs);

    std::printf("\n%-5s %12s %12s %12s %10s %10s\n", "wl",
                "maxSdn(norm)", "ws(norm)", "eff(norm)", "sdn.mdm",
                "ws.mdm");
    RatioSeries sdn, ws, eff;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const sim::MultiMetrics &pom = res[2 * i];
        const sim::MultiMetrics &mdm = res[2 * i + 1];
        double r_sdn = mdm.maxSlowdown / pom.maxSlowdown;
        double r_ws = mdm.weightedSpeedup / pom.weightedSpeedup;
        double r_eff = mdm.efficiency / pom.efficiency;
        sdn.add(r_sdn);
        ws.add(r_ws);
        eff.add(r_eff);
        std::printf("%-5s %12.3f %12.3f %12.3f %10.2f %10.3f\n",
                    names[i].c_str(), r_sdn, r_ws, r_eff,
                    mdm.maxSlowdown, mdm.weightedSpeedup);
    }

    std::printf("\nFig. 10 max-slowdown ratio MDM/PoM: gmean %.3f "
                "(%s; paper avg -6%%), best %.3f\n",
                sdn.gmean(), sim::percentDelta(sdn.gmean()).c_str(),
                sdn.min());
    std::printf("Fig. 11 weighted-speedup ratio:      gmean %.3f "
                "(%s; paper avg +7%%), best %.3f\n",
                ws.gmean(), sim::percentDelta(ws.gmean()).c_str(),
                ws.max());
    std::printf("Fig. 12 energy-efficiency ratio:     gmean %.3f "
                "(%s; paper avg +7%%), best %.3f\n",
                eff.gmean(), sim::percentDelta(eff.gmean()).c_str(),
                eff.max());
    return 0;
}
