/**
 * @file
 * Extension: hardware vs OS-based management (paper Sec. 2.2).
 *
 * The paper motivates hardware management by its sub-page
 * granularity and fast responsiveness to working-set changes,
 * contrasting with Thermostat-style OS page migration.  This
 * benchmark compares the OS coarse-grain baseline against PoM and
 * ProFess on single-program runs.
 *
 * Expected shape: the OS baseline captures clearly less traffic in
 * M1 (slow intervals, hot-page thresholds) and trails the hardware
 * policies, most visibly for programs with working-set drift
 * (GemsFDTD, mcf, omnetpp phases).
 */

#include "bench_util.hh"

using namespace profess;
using namespace profess::bench;

int
main(int argc, char **argv)
{
    BenchEnv env = benchEnv();
    header("Extension: OS coarse-grain vs hardware management",
           "Sec. 2.2 (management granularity)");

    sim::SystemConfig cfg = sim::SystemConfig::singleCore();
    cfg.core.instrQuota = env.singleInstr;
    cfg.core.warmupInstr = env.warmupInstr;
    sim::ParallelRunner runner = makeRunner(argc, argv);

    std::vector<std::string> programs = allPrograms();
    std::vector<sim::RunJob> jobs;
    for (const std::string &prog : programs)
        for (const char *pol : {"oscoarse", "pom", "profess"})
            jobs.push_back(sim::singleJob(cfg, pol, prog));
    std::vector<sim::MultiMetrics> res = runner.run(jobs);

    std::printf("\n%-12s %21s %21s %21s\n", "",
                "oscoarse", "pom", "profess");
    std::printf("%-12s %8s %6s %5s %8s %6s %5s %8s %6s %5s\n",
                "program", "IPC", "M1%", "sw%", "IPC", "M1%",
                "sw%", "IPC", "M1%", "sw%");
    RatioSeries os_vs_pom;
    for (std::size_t p = 0; p < programs.size(); ++p) {
        const sim::RunResult &os = res[3 * p].run;
        const sim::RunResult &pom = res[3 * p + 1].run;
        const sim::RunResult &pf = res[3 * p + 2].run;
        os_vs_pom.add(os.ipc[0] / pom.ipc[0]);
        std::printf("%-12s %8.3f %5.1f%% %4.1f%% %8.3f %5.1f%% "
                    "%4.1f%% %8.3f %5.1f%% %4.1f%%\n",
                    programs[p].c_str(), os.ipc[0],
                    100.0 * os.m1Fraction,
                    100.0 * os.swapFraction, pom.ipc[0],
                    100.0 * pom.m1Fraction,
                    100.0 * pom.swapFraction, pf.ipc[0],
                    100.0 * pf.m1Fraction,
                    100.0 * pf.swapFraction);
    }
    std::printf("\nOS-coarse / PoM IPC gmean: %.3f (%s)\n",
                os_vs_pom.gmean(),
                sim::percentDelta(os_vs_pom.gmean()).c_str());
    return 0;
}
