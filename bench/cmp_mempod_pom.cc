/**
 * @file
 * Reproduces the Sec. 2.5 MemPod-vs-PoM comparison: average main
 * memory access time (AMMAT, MemPod's preferred metric) in single-
 * and multi-program runs, plus the CAMEO- and SILC-FM-style
 * baselines for context (Table 2).
 *
 * Expected shape (paper): MemPod's AMMAT is longer than PoM's on
 * this NVM-based system (+19% single / +18% multi) because PoM's
 * global cost-benefit analysis adapts to the technology
 * characteristics while MEA does not.
 */

#include "bench_util.hh"

using namespace profess;
using namespace profess::bench;

int
main()
{
    BenchEnv env = benchEnv();
    header("Sec. 2.5: MemPod vs PoM (and Table 2 baselines)",
           "Sec. 2.5 / Table 2");

    {
        sim::SystemConfig cfg = sim::SystemConfig::singleCore();
        cfg.core.instrQuota = env.singleInstr;
        cfg.core.warmupInstr = env.warmupInstr;
        sim::ExperimentRunner runner(cfg);
        std::printf("\nsingle-program mean read latency (ns):\n");
        std::printf("%-12s %8s %8s %8s %8s\n", "program", "pom",
                    "mempod", "cameo", "silcfm");
        RatioSeries mp_ratio;
        for (const std::string &prog : allPrograms()) {
            double pom =
                runner.run("pom", {prog}).meanReadLatencyNs;
            double mp =
                runner.run("mempod", {prog}).meanReadLatencyNs;
            double cam =
                runner.run("cameo", {prog}).meanReadLatencyNs;
            double silc =
                runner.run("silcfm", {prog}).meanReadLatencyNs;
            mp_ratio.add(mp / pom);
            std::printf("%-12s %8.1f %8.1f %8.1f %8.1f\n",
                        prog.c_str(), pom, mp, cam, silc);
        }
        std::printf("MemPod/PoM AMMAT gmean: %.3f (%s; paper "
                    "+19%%)\n",
                    mp_ratio.gmean(),
                    sim::percentDelta(mp_ratio.gmean()).c_str());
    }

    {
        sim::SystemConfig cfg = sim::SystemConfig::quadCore();
        cfg.core.instrQuota = env.multiInstr;
        cfg.core.warmupInstr = env.warmupInstr;
        sim::ExperimentRunner runner(cfg);
        std::printf("\nmulti-program mean read latency (ns), "
                    "first five workloads:\n");
        std::printf("%-5s %8s %8s %10s\n", "wl", "pom", "mempod",
                    "ratio");
        RatioSeries mp_ratio;
        unsigned count = 0;
        for (const std::string &wname : env.workloads) {
            if (++count > 5)
                break;
            const sim::WorkloadSpec *w = sim::findWorkload(wname);
            if (!w)
                continue;
            std::vector<std::string> progs(w->programs.begin(),
                                           w->programs.end());
            double pom =
                runner.run("pom", progs).meanReadLatencyNs;
            double mp =
                runner.run("mempod", progs).meanReadLatencyNs;
            mp_ratio.add(mp / pom);
            std::printf("%-5s %8.1f %8.1f %10.3f\n", wname.c_str(),
                        pom, mp, mp / pom);
        }
        std::printf("MemPod/PoM AMMAT gmean: %.3f (%s; paper "
                    "+18%%)\n",
                    mp_ratio.gmean(),
                    sim::percentDelta(mp_ratio.gmean()).c_str());
    }
    return 0;
}
