/**
 * @file
 * Reproduces the Sec. 2.5 MemPod-vs-PoM comparison: average main
 * memory access time (AMMAT, MemPod's preferred metric) in single-
 * and multi-program runs, plus the CAMEO- and SILC-FM-style
 * baselines for context (Table 2).
 *
 * Expected shape (paper): MemPod's AMMAT is longer than PoM's on
 * this NVM-based system (+19% single / +18% multi) because PoM's
 * global cost-benefit analysis adapts to the technology
 * characteristics while MEA does not.
 */

#include "bench_util.hh"

using namespace profess;
using namespace profess::bench;

int
main(int argc, char **argv)
{
    BenchEnv env = benchEnv();
    header("Sec. 2.5: MemPod vs PoM (and Table 2 baselines)",
           "Sec. 2.5 / Table 2");

    sim::ParallelRunner runner = makeRunner(argc, argv);

    {
        sim::SystemConfig cfg = sim::SystemConfig::singleCore();
        cfg.core.instrQuota = env.singleInstr;
        cfg.core.warmupInstr = env.warmupInstr;
        const char *policies[] = {"pom", "mempod", "cameo",
                                  "silcfm"};
        std::vector<std::string> programs = allPrograms();
        std::vector<sim::RunJob> jobs;
        for (const std::string &prog : programs)
            for (const char *pol : policies)
                jobs.push_back(sim::singleJob(cfg, pol, prog));
        std::vector<sim::MultiMetrics> res = runner.run(jobs);

        std::printf("\nsingle-program mean read latency (ns):\n");
        std::printf("%-12s %8s %8s %8s %8s\n", "program", "pom",
                    "mempod", "cameo", "silcfm");
        RatioSeries mp_ratio;
        for (std::size_t p = 0; p < programs.size(); ++p) {
            double pom = res[4 * p].run.meanReadLatencyNs;
            double mp = res[4 * p + 1].run.meanReadLatencyNs;
            double cam = res[4 * p + 2].run.meanReadLatencyNs;
            double silc = res[4 * p + 3].run.meanReadLatencyNs;
            mp_ratio.add(mp / pom);
            std::printf("%-12s %8.1f %8.1f %8.1f %8.1f\n",
                        programs[p].c_str(), pom, mp, cam, silc);
        }
        std::printf("MemPod/PoM AMMAT gmean: %.3f (%s; paper "
                    "+19%%)\n",
                    mp_ratio.gmean(),
                    sim::percentDelta(mp_ratio.gmean()).c_str());
    }

    {
        sim::SystemConfig cfg = sim::SystemConfig::quadCore();
        cfg.core.instrQuota = env.multiInstr;
        cfg.core.warmupInstr = env.warmupInstr;
        std::vector<sim::RunJob> jobs;
        std::vector<std::string> names;
        unsigned count = 0;
        for (const std::string &wname : env.workloads) {
            if (++count > 5)
                break;
            const sim::WorkloadSpec *w = sim::findWorkload(wname);
            if (!w)
                continue;
            names.push_back(wname);
            for (const char *pol : {"pom", "mempod"}) {
                sim::RunJob j = sim::multiJob(cfg, pol, *w);
                j.slowdowns = false; // only AMMAT is needed
                jobs.push_back(j);
            }
        }
        std::vector<sim::MultiMetrics> res = runner.run(jobs);

        std::printf("\nmulti-program mean read latency (ns), "
                    "first five workloads:\n");
        std::printf("%-5s %8s %8s %10s\n", "wl", "pom", "mempod",
                    "ratio");
        RatioSeries mp_ratio;
        for (std::size_t i = 0; i < names.size(); ++i) {
            double pom = res[2 * i].run.meanReadLatencyNs;
            double mp = res[2 * i + 1].run.meanReadLatencyNs;
            mp_ratio.add(mp / pom);
            std::printf("%-5s %8.1f %8.1f %10.3f\n",
                        names[i].c_str(), pom, mp, mp / pom);
        }
        std::printf("MemPod/PoM AMMAT gmean: %.3f (%s; paper "
                    "+18%%)\n",
                    mp_ratio.gmean(),
                    sim::percentDelta(mp_ratio.gmean()).c_str());
    }
    return 0;
}
