/**
 * @file
 * Extension: ablations of ProFess design choices called out in
 * DESIGN.md - the Table 7 hysteresis thresholds (paper: 1/32 and
 * 1/16, "to exclude cases where SF_A and SF_B are too similar") and
 * the RSM sampling period Msamp.
 *
 * Expected shape: very small thresholds let RSM noise flip
 * decisions; very large ones disable guidance and degenerate to
 * MDM.  Msamp trades responsiveness against noise (Sec. 3.1.3).
 */

#include "bench_util.hh"

using namespace profess;
using namespace profess::bench;

namespace
{

struct AblationPoint
{
    const char *label;
    double factorThr;
    double productThr;
    std::uint64_t msamp;
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    BenchEnv env = benchEnv();
    header("Ablation: ProFess thresholds and Msamp",
           "Sec. 3.3 / Sec. 3.1.3 design choices");
    std::printf("\n(first six Table 10 workloads, ProFess "
                "normalized to PoM)\n\n");

    const double t32 = 1.0 + 1.0 / 32.0;
    const double t16 = 1.0 + 1.0 / 16.0;
    const AblationPoint points[] = {
        {"no hysteresis (t=1.0)", 1.0, 1.0, 2048},
        {"paper t=1/32, tp=1/16", t32, t16, 2048},
        {"strong t=1/8, tp=1/4", 1.125, 1.25, 2048},
        {"guidance off (t=1e9)", 1e9, 1e9, 2048},
        {"Msamp=512", t32, t16, 512},
        {"Msamp=2048 (default)", t32, t16, 2048},
        {"Msamp=8192", t32, t16, 8192},
    };
    const std::size_t num_points =
        sizeof(points) / sizeof(points[0]);

    std::vector<const sim::WorkloadSpec *> wls;
    unsigned count = 0;
    for (const std::string &wname : env.workloads) {
        if (++count > 6)
            break;
        if (const sim::WorkloadSpec *w = sim::findWorkload(wname))
            wls.push_back(w);
    }

    // One flat batch over every (point, workload, policy) triple:
    // all seven ablation points sweep concurrently.
    sim::ParallelRunner runner = makeRunner(argc, argv);
    std::vector<sim::RunJob> jobs;
    for (std::size_t k = 0; k < num_points; ++k) {
        sim::SystemConfig cfg = sim::SystemConfig::quadCore();
        cfg.core.instrQuota = env.multiInstr;
        cfg.core.warmupInstr = env.warmupInstr;
        cfg.professFactorThreshold = points[k].factorThr;
        cfg.professProductThreshold = points[k].productThr;
        cfg.msamp = points[k].msamp;
        for (const sim::WorkloadSpec *w : wls) {
            jobs.push_back(sim::multiJob(cfg, "pom", *w, k));
            jobs.push_back(sim::multiJob(cfg, "profess", *w, k));
        }
    }
    std::vector<sim::MultiMetrics> res = runner.run(jobs);

    for (std::size_t k = 0; k < num_points; ++k) {
        RatioSeries sdn, ws;
        for (std::size_t j = 0; j < wls.size(); ++j) {
            const sim::MultiMetrics &pom =
                res[(k * wls.size() + j) * 2];
            const sim::MultiMetrics &pf =
                res[(k * wls.size() + j) * 2 + 1];
            sdn.add(pf.maxSlowdown / pom.maxSlowdown);
            ws.add(pf.weightedSpeedup / pom.weightedSpeedup);
        }
        std::printf("%-28s maxSdn/PoM %.3f   ws/PoM %.3f\n",
                    points[k].label, sdn.gmean(), ws.gmean());
        if (k == 3)
            std::printf("\n");
    }
    return 0;
}
