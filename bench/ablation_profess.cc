/**
 * @file
 * Extension: ablations of ProFess design choices called out in
 * DESIGN.md - the Table 7 hysteresis thresholds (paper: 1/32 and
 * 1/16, "to exclude cases where SF_A and SF_B are too similar") and
 * the RSM sampling period Msamp.
 *
 * Expected shape: very small thresholds let RSM noise flip
 * decisions; very large ones disable guidance and degenerate to
 * MDM.  Msamp trades responsiveness against noise (Sec. 3.1.3).
 */

#include "bench_util.hh"

using namespace profess;
using namespace profess::bench;

namespace
{

void
runPoint(const bench::BenchEnv &env, const char *label,
         double factor_thr, double product_thr,
         std::uint64_t msamp)
{
    sim::SystemConfig cfg = sim::SystemConfig::quadCore();
    cfg.core.instrQuota = env.multiInstr;
    cfg.core.warmupInstr = env.warmupInstr;
    cfg.professFactorThreshold = factor_thr;
    cfg.professProductThreshold = product_thr;
    cfg.msamp = msamp;
    sim::ExperimentRunner runner(cfg);

    RatioSeries sdn, ws;
    unsigned count = 0;
    for (const std::string &wname : env.workloads) {
        if (++count > 6)
            break;
        const sim::WorkloadSpec *w = sim::findWorkload(wname);
        if (!w)
            continue;
        sim::MultiMetrics pom = runner.runMulti("pom", *w);
        sim::MultiMetrics pf = runner.runMulti("profess", *w);
        sdn.add(pf.maxSlowdown / pom.maxSlowdown);
        ws.add(pf.weightedSpeedup / pom.weightedSpeedup);
    }
    std::printf("%-28s maxSdn/PoM %.3f   ws/PoM %.3f\n", label,
                sdn.gmean(), ws.gmean());
}

} // anonymous namespace

int
main()
{
    BenchEnv env = benchEnv();
    header("Ablation: ProFess thresholds and Msamp",
           "Sec. 3.3 / Sec. 3.1.3 design choices");
    std::printf("\n(first six Table 10 workloads, ProFess "
                "normalized to PoM)\n\n");

    runPoint(env, "no hysteresis (t=1.0)", 1.0, 1.0, 2048);
    runPoint(env, "paper t=1/32, tp=1/16", 1.0 + 1.0 / 32.0,
             1.0 + 1.0 / 16.0, 2048);
    runPoint(env, "strong t=1/8, tp=1/4", 1.125, 1.25, 2048);
    runPoint(env, "guidance off (t=1e9)", 1e9, 1e9, 2048);
    std::printf("\n");
    runPoint(env, "Msamp=512", 1.0 + 1.0 / 32.0,
             1.0 + 1.0 / 16.0, 512);
    runPoint(env, "Msamp=2048 (default)", 1.0 + 1.0 / 32.0,
             1.0 + 1.0 / 16.0, 2048);
    runPoint(env, "Msamp=8192", 1.0 + 1.0 / 32.0,
             1.0 + 1.0 / 16.0, 8192);
    return 0;
}
