/**
 * @file
 * Extension (paper Sec. 6): RSM is policy-agnostic and "can be
 * integrated with other migration algorithms instead of MDM".
 * This ablation wraps RSM's Table 7 guidance around PoM and
 * compares plain PoM, RSM-guided PoM, and full ProFess on a subset
 * of the Table 10 workloads.
 *
 * Expected shape: rsm-pom improves PoM's fairness on workloads with
 * a dominant sufferer, while ProFess (with MDM underneath) remains
 * the strongest overall.
 */

#include "bench_util.hh"

using namespace profess;
using namespace profess::bench;

int
main(int argc, char **argv)
{
    BenchEnv env = benchEnv();
    header("Ablation: RSM guidance around PoM (paper Sec. 6)",
           "Sec. 6 (RSM portability)");

    sim::SystemConfig cfg = sim::SystemConfig::quadCore();
    cfg.core.instrQuota = env.multiInstr;
    cfg.core.warmupInstr = env.warmupInstr;
    sim::ParallelRunner runner = makeRunner(argc, argv);

    std::vector<sim::RunJob> jobs;
    std::vector<std::string> names;
    unsigned count = 0;
    for (const std::string &wname : env.workloads) {
        if (++count > 8)
            break;
        const sim::WorkloadSpec *w = sim::findWorkload(wname);
        if (!w)
            continue;
        names.push_back(wname);
        jobs.push_back(sim::multiJob(cfg, "pom", *w));
        jobs.push_back(sim::multiJob(cfg, "rsm-pom", *w));
        jobs.push_back(sim::multiJob(cfg, "profess", *w));
    }
    std::vector<sim::MultiMetrics> res = runner.run(jobs);

    std::printf("\n%-5s | %9s %9s | %9s %9s | %9s %9s\n", "wl",
                "pom.sdn", "pom.ws", "rsm.sdn", "rsm.ws",
                "pf.sdn", "pf.ws");
    RatioSeries sdn_rsm, sdn_pf;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const sim::MultiMetrics &pom = res[3 * i];
        const sim::MultiMetrics &rsm = res[3 * i + 1];
        const sim::MultiMetrics &pf = res[3 * i + 2];
        sdn_rsm.add(rsm.maxSlowdown / pom.maxSlowdown);
        sdn_pf.add(pf.maxSlowdown / pom.maxSlowdown);
        std::printf("%-5s | %9.2f %9.3f | %9.2f %9.3f | %9.2f "
                    "%9.3f\n",
                    names[i].c_str(), pom.maxSlowdown,
                    pom.weightedSpeedup, rsm.maxSlowdown,
                    rsm.weightedSpeedup, pf.maxSlowdown,
                    pf.weightedSpeedup);
    }
    std::printf("\nmax-slowdown vs PoM: rsm-pom gmean %.3f, "
                "profess gmean %.3f\n",
                sdn_rsm.gmean(), sdn_pf.gmean());
    return 0;
}
