/**
 * @file
 * Reproduces Figs. 13-15, the paper's headline result: ProFess
 * (MDM + RSM) vs PoM over the Table 10 workloads (Sec. 5.4).
 *
 *  - Fig. 13: max slowdown (unfairness), ProFess norm. to PoM
 *  - Fig. 14: weighted speedup, ProFess norm. to PoM
 *  - Fig. 15: energy efficiency, ProFess norm. to PoM
 *
 * Expected shapes: ProFess improves fairness (paper avg 15%, up to
 * 29%) and performance (paper avg 12%, up to 29%) at the same time,
 * and reduces the fraction of swaps (paper avg 24%).
 */

#include "bench_util.hh"

using namespace profess;
using namespace profess::bench;

int
main(int argc, char **argv)
{
    BenchEnv env = benchEnv();
    header("Figs. 13-15: ProFess vs PoM", "Figures 13, 14, 15");

    sim::SystemConfig cfg = sim::SystemConfig::quadCore();
    cfg.core.instrQuota = env.multiInstr;
    cfg.core.warmupInstr = env.warmupInstr;
    sim::ParallelRunner runner = makeRunner(argc, argv);

    std::vector<sim::RunJob> jobs;
    std::vector<std::string> names;
    for (const std::string &wname : env.workloads) {
        const sim::WorkloadSpec *w = sim::findWorkload(wname);
        if (!w)
            continue;
        names.push_back(wname);
        jobs.push_back(sim::multiJob(cfg, "pom", *w));
        jobs.push_back(sim::multiJob(cfg, "profess", *w));
    }
    std::vector<sim::MultiMetrics> res = runner.run(jobs);

    std::printf("\n%-5s %12s %12s %12s %11s\n", "wl",
                "maxSdn(norm)", "ws(norm)", "eff(norm)",
                "swapFr(norm)");
    RatioSeries sdn, ws, eff, swaps;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const sim::MultiMetrics &pom = res[2 * i];
        const sim::MultiMetrics &pf = res[2 * i + 1];
        double r_sdn = pf.maxSlowdown / pom.maxSlowdown;
        double r_ws = pf.weightedSpeedup / pom.weightedSpeedup;
        double r_eff = pf.efficiency / pom.efficiency;
        double r_swap = pom.run.swapFraction > 0
                            ? pf.run.swapFraction /
                                  pom.run.swapFraction
                            : 1.0;
        sdn.add(r_sdn);
        ws.add(r_ws);
        eff.add(r_eff);
        swaps.add(r_swap);
        std::printf("%-5s %12.3f %12.3f %12.3f %11.3f\n",
                    names[i].c_str(), r_sdn, r_ws, r_eff, r_swap);
    }

    std::printf("\nFig. 13 max-slowdown ProFess/PoM: gmean %.3f "
                "(%s; paper avg -15%%, best -29%%), best %.3f\n",
                sdn.gmean(), sim::percentDelta(sdn.gmean()).c_str(),
                sdn.min());
    std::printf("Fig. 14 weighted-speedup ratio:   gmean %.3f "
                "(%s; paper avg +12%%, best +29%%), best %.3f\n",
                ws.gmean(), sim::percentDelta(ws.gmean()).c_str(),
                ws.max());
    std::printf("Fig. 15 energy-efficiency ratio:  gmean %.3f "
                "(%s; paper avg +11%%, best +30%%), best %.3f\n",
                eff.gmean(), sim::percentDelta(eff.gmean()).c_str(),
                eff.max());
    std::printf("Swap-fraction ratio:              gmean %.3f "
                "(paper avg -24%%, best -54%%)\n",
                swaps.gmean());
    return 0;
}
