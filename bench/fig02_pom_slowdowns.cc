/**
 * @file
 * Reproduces Fig. 2: per-program slowdowns under PoM management for
 * workloads w09, w16 and w19 (Sec. 2.4, the fairness problem).
 *
 * Expected shape: within each workload some program suffers a much
 * larger slowdown than its co-runners (the paper highlights soplex
 * in w09, zeusmp in w16 and leslie3d in w19).
 */

#include "bench_util.hh"

using namespace profess;
using namespace profess::bench;

int
main(int argc, char **argv)
{
    BenchEnv env = benchEnv();
    header("Fig. 2: slowdowns under PoM", "Figure 2");

    sim::SystemConfig cfg = sim::SystemConfig::quadCore();
    cfg.core.instrQuota = env.multiInstr;
    cfg.core.warmupInstr = env.warmupInstr;
    sim::ParallelRunner runner = makeRunner(argc, argv);

    const char *wnames[] = {"w09", "w16", "w19"};
    std::vector<sim::RunJob> jobs;
    for (const char *wname : wnames)
        jobs.push_back(
            sim::multiJob(cfg, "pom", *sim::findWorkload(wname)));
    std::vector<sim::MultiMetrics> res = runner.run(jobs);

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const char *wname = wnames[i];
        const sim::WorkloadSpec *w = sim::findWorkload(wname);
        const sim::MultiMetrics &m = res[i];
        std::printf("\n%s:\n", wname);
        double max_sdn = 0, min_sdn = 1e9;
        for (unsigned i = 0; i < 4; ++i) {
            std::printf("  %-12s slowdown %.2f\n", w->programs[i],
                        m.slowdown[i]);
            max_sdn = std::max(max_sdn, m.slowdown[i]);
            min_sdn = std::min(min_sdn, m.slowdown[i]);
        }
        std::printf("  -> max/min slowdown disparity: %.2fx "
                    "(unfairness %.2f)\n",
                    max_sdn / min_sdn, m.maxSlowdown);
    }
    return 0;
}
