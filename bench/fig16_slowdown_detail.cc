/**
 * @file
 * Reproduces Fig. 16: per-program slowdowns of PoM, MDM and ProFess
 * for workloads w09, w16 and w19 (Sec. 5.4).
 *
 * Expected shapes: MDM lowers slowdowns by speeding programs up;
 * ProFess further reduces the max slowdown, where possible, by
 * slowing lightly-loaded programs to help the most-suffering one
 * (the paper's w09: lbm and GemsFDTD are slowed to help mcf and
 * soplex); in some workloads (paper's w16) no further opportunity
 * exists.
 */

#include "bench_util.hh"

using namespace profess;
using namespace profess::bench;

int
main(int argc, char **argv)
{
    BenchEnv env = benchEnv();
    header("Fig. 16: per-program slowdown detail", "Figure 16");

    sim::SystemConfig cfg = sim::SystemConfig::quadCore();
    cfg.core.instrQuota = env.multiInstr;
    cfg.core.warmupInstr = env.warmupInstr;
    sim::ParallelRunner runner = makeRunner(argc, argv);

    const char *wnames[] = {"w09", "w16", "w19"};
    std::vector<sim::RunJob> jobs;
    for (const char *wname : wnames) {
        const sim::WorkloadSpec *w = sim::findWorkload(wname);
        jobs.push_back(sim::multiJob(cfg, "pom", *w));
        jobs.push_back(sim::multiJob(cfg, "mdm", *w));
        jobs.push_back(sim::multiJob(cfg, "profess", *w));
    }
    std::vector<sim::MultiMetrics> res = runner.run(jobs);

    for (std::size_t wi = 0; wi < 3; ++wi) {
        const char *wname = wnames[wi];
        const sim::WorkloadSpec *w = sim::findWorkload(wname);
        const sim::MultiMetrics &pom = res[3 * wi];
        const sim::MultiMetrics &mdm = res[3 * wi + 1];
        const sim::MultiMetrics &pf = res[3 * wi + 2];
        std::printf("\n%s: %-12s %8s %8s %8s\n", wname, "program",
                    "pom", "mdm", "profess");
        for (unsigned i = 0; i < 4; ++i) {
            std::printf("     %-12s %8.2f %8.2f %8.2f\n",
                        w->programs[i], pom.slowdown[i],
                        mdm.slowdown[i], pf.slowdown[i]);
        }
        std::printf("     %-12s %8.2f %8.2f %8.2f\n", "max",
                    pom.maxSlowdown, mdm.maxSlowdown,
                    pf.maxSlowdown);
    }
    return 0;
}
