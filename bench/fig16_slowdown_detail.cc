/**
 * @file
 * Reproduces Fig. 16: per-program slowdowns of PoM, MDM and ProFess
 * for workloads w09, w16 and w19 (Sec. 5.4).
 *
 * Expected shapes: MDM lowers slowdowns by speeding programs up;
 * ProFess further reduces the max slowdown, where possible, by
 * slowing lightly-loaded programs to help the most-suffering one
 * (the paper's w09: lbm and GemsFDTD are slowed to help mcf and
 * soplex); in some workloads (paper's w16) no further opportunity
 * exists.
 */

#include "bench_util.hh"

using namespace profess;
using namespace profess::bench;

int
main()
{
    BenchEnv env = benchEnv();
    header("Fig. 16: per-program slowdown detail", "Figure 16");

    sim::SystemConfig cfg = sim::SystemConfig::quadCore();
    cfg.core.instrQuota = env.multiInstr;
    cfg.core.warmupInstr = env.warmupInstr;
    sim::ExperimentRunner runner(cfg);

    for (const char *wname : {"w09", "w16", "w19"}) {
        const sim::WorkloadSpec *w = sim::findWorkload(wname);
        sim::MultiMetrics pom = runner.runMulti("pom", *w);
        sim::MultiMetrics mdm = runner.runMulti("mdm", *w);
        sim::MultiMetrics pf = runner.runMulti("profess", *w);
        std::printf("\n%s: %-12s %8s %8s %8s\n", wname, "program",
                    "pom", "mdm", "profess");
        for (unsigned i = 0; i < 4; ++i) {
            std::printf("     %-12s %8.2f %8.2f %8.2f\n",
                        w->programs[i], pom.slowdown[i],
                        mdm.slowdown[i], pf.slowdown[i]);
        }
        std::printf("     %-12s %8.2f %8.2f %8.2f\n", "max",
                    pom.maxSlowdown, mdm.maxSlowdown,
                    pf.maxSlowdown);
    }
    return 0;
}
