/**
 * @file
 * Simulation-kernel hot-path benchmark: the perf trajectory of the
 * discrete-event core (event queue, hybrid controller, channel
 * timing, core model) measured end-to-end.
 *
 * Runs a fixed matrix — single-core mcf and quad-core w01 under
 * pom/mdm/profess — and reports, per run and in aggregate:
 *
 *   ns/access   wall nanoseconds per served 64-B demand access
 *   events/sec  simulation events executed per wall second
 *   peak RSS    ru_maxrss of the process after all runs
 *
 * Output is JSON (stdout, or --out FILE) so scripts/bench_report.py
 * can record the trajectory in BENCH_kernel.json and the CI
 * perf-smoke step can compare against a checked-in baseline.
 *
 * Flags:
 *   --quick      tiny configuration for CI smoke runs
 *   --out FILE   write JSON to FILE instead of stdout
 *   --label S    annotate the JSON with a label (e.g. "before")
 *   --jobs N     worker count for the DetSan verification pass
 *                (ignored without -DPROFESS_DETSAN=ON)
 *   --trace / --telemetry-out DIR / --epoch-ticks N
 *                shared observability flags (sim/run_telemetry.hh);
 *                used by the CI overhead gate to compare
 *                telemetry-off against telemetry-on wall time
 *
 * Under -DPROFESS_DETSAN=ON the measured serial pass journals each
 * run's event-extraction and epoch-state digests, then a second
 * pass re-runs the whole matrix on a --jobs N thread pool; the
 * detsan Journal cross-checks every digest against the serial
 * pass, proving the matrix bit-identical at any worker count.  A
 * sampler is forced on in DetSan builds (even with telemetry off)
 * so the epoch-state digest always has coverage.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <sys/resource.h>
#include <vector>

#include "common/logging.hh"
#include "sim/experiment.hh"
#include "sim/run_telemetry.hh"
#include "sim/system.hh"
#include "sim/workloads.hh"
#include "trace/spec_profiles.hh"

#if PROFESS_DETSAN
#include "common/detsan.hh"
#include "common/thread_pool.hh"
#endif

using namespace profess;

namespace
{

struct RunSpec
{
    const char *name;
    const char *policy;
    bool quad;
    std::vector<std::string> programs;
};

struct RunNumbers
{
    std::string name;
    std::string policy;
    unsigned cores = 0;
    std::uint64_t accesses = 0;
    std::uint64_t events = 0;
    std::uint64_t swaps = 0;
    double wallNs = 0.0;
    double nsPerAccess = 0.0;
    double eventsPerSec = 0.0;
};

RunNumbers
runOne(const RunSpec &spec, std::uint64_t quota,
       bool verify_pass = false)
{
    sim::SystemConfig cfg = spec.quad
                                ? sim::SystemConfig::quadCore()
                                : sim::SystemConfig::singleCore();
    cfg.core.instrQuota = quota;
    // No warm-up: ns/access should cover every simulated access so
    // the number is comparable across kernel revisions.
    cfg.core.warmupInstr = 0;

    std::vector<std::unique_ptr<trace::TraceSource>> sources;
    std::uint64_t seed =
        sim::deriveSeed(1, spec.policy, spec.name, 0);
    for (std::size_t i = 0; i < spec.programs.size(); ++i) {
        sources.push_back(trace::makeSpecSource(
            spec.programs[i], trace::defaultScale,
            seed + 1009 * (i + 1)));
    }

    sim::System sys(cfg, spec.policy, std::move(sources));

    std::string run_name = std::string(spec.name) + "_" + spec.policy;
    std::unique_ptr<sim::RunTelemetry> telemetry;
    const sim::TelemetryConfig &tc = sim::TelemetryConfig::global();
    if (tc.enabled()) {
        telemetry =
            std::make_unique<sim::RunTelemetry>(tc, run_name);
        sys.attachTelemetry(*telemetry);
    }
#if PROFESS_DETSAN
    // Force a sampler so the epoch-state digest has coverage even
    // when no telemetry consumer is configured.  Sampling is
    // observational only, so results stay bit-identical.
    if (telemetry == nullptr) {
        telemetry =
            std::make_unique<sim::RunTelemetry>(tc, run_name);
        sys.attachTelemetry(*telemetry);
    }
#endif

    auto t0 = std::chrono::steady_clock::now();
    sys.run();
    auto t1 = std::chrono::steady_clock::now();

#if PROFESS_DETSAN
    {
        detsan::RunDigest dig;
        dig.events = sys.eventQueue().executed();
        dig.extraction = sys.eventQueue().detsanDigest();
        if (telemetry->sampler() != nullptr) {
            dig.epochs = telemetry->sampler()->epochs();
            dig.epochState = telemetry->sampler()->detsanDigest();
        }
        detsan::Journal::global().record(
            run_name + "#" + std::to_string(quota), dig);
    }
#endif

    if (telemetry != nullptr && tc.enabled() && !verify_pass) {
        telemetry->finish(spec.policy, spec.name, seed,
                          sim::configJson(cfg), true);
    }

    RunNumbers n;
    n.name = run_name;
    n.policy = spec.policy;
    n.cores = sys.numCores();
    n.accesses = sys.controller().servedTotal();
    n.events = sys.eventQueue().executed();
    n.swaps = sys.controller().swapCount();
    n.wallNs = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    n.nsPerAccess =
        n.accesses ? n.wallNs / static_cast<double>(n.accesses) : 0.0;
    n.eventsPerSec =
        n.wallNs > 0.0
            ? static_cast<double>(n.events) * 1e9 / n.wallNs
            : 0.0;
    return n;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    logging::configure(argc, argv);
    sim::TelemetryConfig::global().initFromArgs(argc, argv);
    bool quick = false;
    std::string out;
    std::string label = "run";
    unsigned jobs = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--out") == 0 &&
                   i + 1 < argc) {
            out = argv[++i];
        } else if (std::strcmp(argv[i], "--label") == 0 &&
                   i + 1 < argc) {
            label = argv[++i];
        } else if (std::strcmp(argv[i], "--jobs") == 0 &&
                   i + 1 < argc) {
            jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
            if (jobs == 0)
                jobs = 1;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--out FILE] "
                         "[--label S] [--jobs N]\n",
                         argv[0]);
            return 2;
        }
    }
#if !PROFESS_DETSAN
    if (jobs != 1) {
        std::fprintf(stderr,
                     "[kernel_hotpath] --jobs only drives the "
                     "DetSan verification pass; build with "
                     "-DPROFESS_DETSAN=ON\n");
    }
#endif

    const std::uint64_t single_quota = quick ? 120'000 : 1'000'000;
    const std::uint64_t quad_quota = quick ? 60'000 : 400'000;

    const sim::WorkloadSpec *w01 = sim::findWorkload("w01");
    if (w01 == nullptr) {
        std::fprintf(stderr, "workload w01 missing\n");
        return 1;
    }

    std::vector<std::string> w01_programs(w01->programs.begin(),
                                          w01->programs.end());
    std::vector<RunSpec> matrix = {
        {"single_mcf", "pom", false, {"mcf"}},
        {"single_mcf", "mdm", false, {"mcf"}},
        {"single_mcf", "profess", false, {"mcf"}},
        {"quad_w01", "pom", true, w01_programs},
        {"quad_w01", "mdm", true, w01_programs},
        {"quad_w01", "profess", true, w01_programs},
    };

    std::vector<RunNumbers> results;
    double total_wall = 0.0;
    std::uint64_t total_acc = 0, total_ev = 0;
    for (const RunSpec &s : matrix) {
        RunNumbers n =
            runOne(s, s.quad ? quad_quota : single_quota);
        total_wall += n.wallNs;
        total_acc += n.accesses;
        total_ev += n.events;
        std::fprintf(stderr,
                     "[kernel_hotpath] %-20s %8.1f ns/access "
                     "%10.0f events/s\n",
                     n.name.c_str(), n.nsPerAccess, n.eventsPerSec);
        results.push_back(std::move(n));
    }

#if PROFESS_DETSAN
    // Verification pass: re-run the whole matrix on a thread pool
    // and let the journal cross-check every digest against the
    // serial measured pass above.  A mismatch is fatal inside
    // Journal::record, so reaching the summary line means every
    // run was bit-identical under --jobs concurrency.
    {
        ThreadPool pool(jobs);
        for (const RunSpec &s : matrix) {
            RunSpec copy = s;
            std::uint64_t quota =
                s.quad ? quad_quota : single_quota;
            pool.submit([copy, quota]() {
                runOne(copy, quota, /*verify_pass=*/true);
            });
        }
        pool.wait();
        const detsan::Journal &journal = detsan::Journal::global();
        std::fprintf(stderr,
                     "[detsan] %zu run identities, %llu "
                     "cross-checked on %u workers: all digests "
                     "identical\n",
                     journal.entries(),
                     static_cast<unsigned long long>(
                         journal.checked()),
                     jobs);
    }
#endif

    struct rusage ru;
    getrusage(RUSAGE_SELF, &ru);

    std::FILE *f = out.empty() ? stdout : std::fopen(out.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", out.c_str());
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": \"profess-kernel-bench-v1\",\n");
    std::fprintf(f, "  \"label\": \"%s\",\n", label.c_str());
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"peak_rss_kb\": %ld,\n", ru.ru_maxrss);
    std::fprintf(f, "  \"runs\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunNumbers &n = results[i];
        std::fprintf(
            f,
            "    {\"name\": \"%s\", \"policy\": \"%s\", "
            "\"cores\": %u, \"accesses\": %llu, \"events\": %llu, "
            "\"swaps\": %llu, \"wall_ns\": %.0f, "
            "\"ns_per_access\": %.3f, \"events_per_sec\": %.0f}%s\n",
            n.name.c_str(), n.policy.c_str(), n.cores,
            static_cast<unsigned long long>(n.accesses),
            static_cast<unsigned long long>(n.events),
            static_cast<unsigned long long>(n.swaps), n.wallNs,
            n.nsPerAccess, n.eventsPerSec,
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(
        f,
        "  \"total\": {\"accesses\": %llu, \"events\": %llu, "
        "\"wall_ns\": %.0f, \"ns_per_access\": %.3f, "
        "\"events_per_sec\": %.0f}\n",
        static_cast<unsigned long long>(total_acc),
        static_cast<unsigned long long>(total_ev), total_wall,
        total_acc ? total_wall / static_cast<double>(total_acc) : 0.0,
        total_wall > 0.0
            ? static_cast<double>(total_ev) * 1e9 / total_wall
            : 0.0);
    std::fprintf(f, "}\n");
    if (f != stdout)
        std::fclose(f);
    return 0;
}
