/**
 * @file
 * Crash-safe sweep CLI over sim::SweepDriver (DESIGN.md Sec. 4i).
 *
 *   profess_sweep --spec FILE --out DIR [--jobs N] [--max-runs K]
 *                 [--fresh] [--dry-run] [--no-progress]
 *
 * Expands the declarative spec (see src/sim/sweep.hh for the
 * format), runs the grid over the parallel runner, and journals
 * each completed run to DIR/sweep.journal.jsonl.  A killed sweep
 * resumes by re-invoking the same command line: journaled runs are
 * skipped, and the finalized outputs (journal + merged
 * DIR/metrics.prom) are byte-identical to an uninterrupted sweep
 * at any --jobs N.
 *
 * Exit status: 0 when the sweep finalized, 75 (EX_TEMPFAIL) when
 * preempted by --max-runs (re-run to resume), 1 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "sim/parallel_runner.hh"
#include "sim/run_telemetry.hh"
#include "sim/scenario.hh"
#include "sim/sweep.hh"

using namespace profess;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --spec FILE --out DIR [--jobs N] "
                 "[--max-runs K] [--fresh] [--dry-run] "
                 "[--no-progress]\n",
                 argv0);
    std::exit(1);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    logging::configure(argc, argv);
    sim::TelemetryConfig::global().initFromArgs(argc, argv);
    sim::ScenarioConfig::global().initFromArgs(argc, argv);

    std::string spec_path;
    sim::SweepDriver::Options opts;
    opts.jobs = sim::ParallelRunner::jobsFromArgs(argc, argv);
    opts.progress = true;
    bool dry_run = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--jobs" || arg == "-j") {
            value(); // consumed by jobsFromArgs above
        } else if (arg.rfind("--jobs=", 0) == 0) {
            // consumed by jobsFromArgs above
        } else if (arg == "--spec") {
            spec_path = value();
        } else if (arg == "--out") {
            opts.outDir = value();
        } else if (arg == "--max-runs") {
            opts.maxRuns = std::strtoull(value().c_str(), nullptr, 0);
        } else if (arg == "--fresh") {
            opts.fresh = true;
        } else if (arg == "--dry-run") {
            dry_run = true;
        } else if (arg == "--no-progress") {
            opts.progress = false;
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n",
                         arg.c_str());
            usage(argv[0]);
        }
    }
    if (spec_path.empty() || opts.outDir.empty())
        usage(argv[0]);

    sim::SweepSpec spec = sim::SweepSpec::fromFile(spec_path);
    std::printf("sweep %s: %zu runs (%zu point%s x %zu mix%s x "
                "%zu polic%s x %zu seed%s), spec %016llx\n",
                spec_path.c_str(), spec.numRuns(),
                spec.numSweepPoints(),
                spec.numSweepPoints() == 1 ? "" : "s",
                spec.mixes.size(),
                spec.mixes.size() == 1 ? "" : "es",
                spec.policies.size(),
                spec.policies.size() == 1 ? "y" : "ies",
                spec.seeds.size(), spec.seeds.size() == 1 ? "" : "s",
                static_cast<unsigned long long>(spec.fingerprint()));

    if (dry_run) {
        std::vector<sim::RunJob> jobs = spec.expand();
        std::printf("%-5s %-24s %-10s %-6s %s\n", "idx", "label",
                    "policy", "sweep", "programs");
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            std::string progs;
            for (const std::string &p : jobs[i].programs) {
                if (!progs.empty())
                    progs += '+';
                progs += p;
            }
            std::printf("%-5zu %-24s %-10s %-6llu %s\n", i,
                        jobs[i].label.c_str(),
                        jobs[i].policy.c_str(),
                        static_cast<unsigned long long>(
                            jobs[i].sweepPoint),
                        progs.c_str());
        }
        return 0;
    }

    sim::SweepDriver driver(spec, opts);
    bool finalized = driver.run();

    std::printf("\n%-5s %-24s %-10s %-9s %-9s %-9s %s\n", "idx",
                "label", "policy", "wspeedup", "maxslow", "eff",
                "state");
    const std::vector<sim::SweepRunRecord> &recs = driver.records();
    for (std::size_t i = 0; i < recs.size(); ++i) {
        const sim::SweepRunRecord &r = recs[i];
        if (r.key.empty()) {
            std::printf("%-5zu (pending)\n", i);
            continue;
        }
        std::printf("%-5zu %-24s %-10s %-9.4f %-9.4f %-9.3f %s\n",
                    i, r.label.c_str(), r.policy.c_str(),
                    r.weightedSpeedup, r.maxSlowdown, r.efficiency,
                    r.completed ? "ok" : "incomplete");
    }
    std::printf("\n%zu/%zu runs journaled (%zu resumed, %zu "
                "executed here)%s\n",
                driver.resumedRuns() + driver.executedRuns(),
                driver.totalRuns(), driver.resumedRuns(),
                driver.executedRuns(),
                finalized ? "; sweep finalized"
                          : "; re-run to resume");
    if (!finalized)
        return 75; // EX_TEMPFAIL: partial, resumable
    std::printf("journal:  %s\nmetrics:  %s\n",
                driver.journalPath().c_str(),
                driver.metricsPath().c_str());
    return 0;
}
