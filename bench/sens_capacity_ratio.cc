/**
 * @file
 * Reproduces the Sec. 5.2 sensitivity study on the M1:M2 capacity
 * ratio: 1:4 (M1 doubled, 5-slot swap groups), the default 1:8, and
 * 1:16 (M1 halved, 17-slot swap groups).  M2 stays fixed, as in the
 * paper (programs that fit into the doubled M1 are excluded from
 * the 1:4 average, as the paper does).
 *
 * Expected shape: MDM's relative gain shrinks slightly at 1:4
 * (less competition for M1) and holds at 1:16 (paper: +12% / +14% /
 * +14%).
 */

#include "bench_util.hh"

using namespace profess;
using namespace profess::bench;

namespace
{

struct RatioPoint
{
    const char *label;
    unsigned slots;
    std::uint64_t m1Bytes;
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    BenchEnv env = benchEnv();
    header("Sec. 5.2: sensitivity to the M1:M2 capacity ratio",
           "Sec. 5.2 (capacity-ratio study)");

    const RatioPoint points[] = {
        {"1:4", 5, 2 * MiB},
        {"1:8", 9, 1 * MiB},
        {"1:16", 17, 512 * KiB},
    };

    sim::ParallelRunner runner = makeRunner(argc, argv);
    std::vector<std::string> programs = allPrograms();
    std::vector<sim::RunJob> jobs;
    for (const std::string &prog : programs) {
        for (int i = 0; i < 3; ++i) {
            sim::SystemConfig cfg = sim::SystemConfig::singleCore();
            cfg.core.instrQuota = env.singleInstr;
            cfg.core.warmupInstr = env.warmupInstr;
            cfg.slotsPerGroup = points[i].slots;
            cfg.m1BytesPerChannel = points[i].m1Bytes;
            jobs.push_back(sim::singleJob(cfg, "pom", prog, i));
            jobs.push_back(sim::singleJob(cfg, "mdm", prog, i));
        }
    }
    std::vector<sim::MultiMetrics> res = runner.run(jobs);

    std::printf("\n%-12s %10s %10s %10s\n", "program", "1:4",
                "1:8", "1:16");
    RatioSeries g[3];
    for (std::size_t p = 0; p < programs.size(); ++p) {
        const std::string &prog = programs[p];
        std::printf("%-12s", prog.c_str());
        for (int i = 0; i < 3; ++i) {
            double pom = res[6 * p + 2 * i].run.ipc[0];
            double mdm = res[6 * p + 2 * i + 1].run.ipc[0];
            double r = mdm / pom;
            // The paper excludes programs fitting entirely into the
            // twice-larger M1 from the 1:4 average.
            const trace::BenchmarkProfile *bp =
                trace::findProfile(prog);
            double fp_bytes = bp->footprintMB *
                              trace::defaultScale *
                              static_cast<double>(MiB);
            bool fits =
                fp_bytes < static_cast<double>(points[i].m1Bytes);
            if (!fits)
                g[i].add(r);
            std::printf(" %9.3f%s", r, fits ? "*" : " ");
        }
        std::printf("\n");
    }
    std::printf("\n(* = footprint fits into M1; excluded from the "
                "average, as in the paper)\n");
    std::printf("MDM/PoM IPC gmean: 1:4 %.3f | 1:8 %.3f | 1:16 "
                "%.3f  (paper: 1.12 / 1.14 / 1.14)\n",
                g[0].gmean(), g[1].gmean(), g[2].gmean());
    return 0;
}
