/**
 * @file
 * Shared helpers for the figure/table reproduction binaries.
 *
 * Environment knobs:
 *   PROFESS_INSTR     measured instructions per program
 *                     (default 3M single / 2M multi)
 *   PROFESS_WARMUP    warm-up instructions (default 1M)
 *   PROFESS_QUICK     =1: quarter-size runs for smoke testing
 *   PROFESS_WORKLOADS comma list (default: all of Table 10)
 *   PROFESS_JOBS      worker threads (default: all hardware
 *                     threads); `--jobs N` / `-j N` overrides
 *   PROFESS_PROGRESS  =1/=0: force per-job progress lines on/off
 *                     (default: on when stderr is a terminal)
 *   PROFESS_LOG       log verbosity (0/1/2 or error/warn/info);
 *                     `--quiet` / `--verbose` / `--log-level N`
 *                     override
 *   PROFESS_TRACE     =1: record decision + chrome traces
 *                     (`--trace` equivalent)
 *   PROFESS_TELEMETRY_OUT
 *                     artifact directory for per-run manifests,
 *                     stats and time-series
 *                     (`--telemetry-out DIR` equivalent)
 *   PROFESS_EPOCH_TICKS
 *                     epoch-sampler period in MC ticks
 *                     (default 25000; `--epoch-ticks N`)
 *   PROFESS_SCENARIO  fault/intervention schedule file
 *                     (`--scenario FILE` equivalent; see
 *                     src/sim/scenario.hh and EXPERIMENTS.md)
 *
 * Results are bit-identical for every worker count: job seeds are
 * derived from (policy, mix, sweep point), never from scheduling
 * (see src/sim/parallel_runner.hh).
 */

#ifndef PROFESS_BENCH_BENCH_UTIL_HH
#define PROFESS_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "sim/experiment.hh"
#include "sim/parallel_runner.hh"
#include "sim/run_telemetry.hh"
#include "sim/scenario.hh"

namespace profess
{

namespace bench
{

/** Run-size configuration from the environment. */
struct BenchEnv
{
    std::uint64_t singleInstr = 3'000'000;
    std::uint64_t multiInstr = 2'000'000;
    std::uint64_t warmupInstr = 1'000'000;
    std::vector<std::string> workloads;
};

inline std::uint64_t
envUint(const char *name, std::uint64_t def)
{
    const char *s = std::getenv(name);
    if (s == nullptr || *s == '\0')
        return def;
    return std::strtoull(s, nullptr, 0);
}

inline BenchEnv
benchEnv()
{
    BenchEnv e;
    if (envUint("PROFESS_QUICK", 0)) {
        e.singleInstr = 600'000;
        e.multiInstr = 400'000;
        e.warmupInstr = 200'000;
    }
    e.singleInstr = envUint("PROFESS_INSTR", e.singleInstr);
    e.multiInstr = envUint("PROFESS_INSTR", e.multiInstr);
    e.warmupInstr = envUint("PROFESS_WARMUP", e.warmupInstr);

    const char *wl = std::getenv("PROFESS_WORKLOADS");
    if (wl && *wl) {
        std::string s(wl);
        std::size_t pos = 0;
        while (pos < s.size()) {
            std::size_t c = s.find(',', pos);
            if (c == std::string::npos)
                c = s.size();
            e.workloads.push_back(s.substr(pos, c - pos));
            pos = c + 1;
        }
    } else {
        for (const auto &w : sim::multiprogramWorkloads())
            e.workloads.push_back(w.name);
    }
    return e;
}

/** Banner naming the paper artifact being regenerated. */
inline void
header(const char *what, const char *paper_ref)
{
    std::printf("\n=============================================="
                "==============\n");
    std::printf("%s\n(reproduces %s of Knyaginin et al., "
                "\"ProFess\", HPCA 2018; scaled 1/100 per "
                "DESIGN.md)\n", what, paper_ref);
    std::printf("================================================"
                "============\n");
}

/**
 * Experiment runner honoring `--jobs N` / `-j N` / PROFESS_JOBS,
 * announcing the worker count when running parallel.  Also applies
 * the shared observability flags: logging (--quiet/--verbose/
 * --log-level), telemetry (--trace/--telemetry-out/--epoch-ticks)
 * and fault scenarios (--scenario FILE), stripping them from argv.
 */
inline sim::ParallelRunner
makeRunner(int &argc, char **argv)
{
    logging::configure(argc, argv);
    sim::TelemetryConfig::global().initFromArgs(argc, argv);
    sim::ScenarioConfig::global().initFromArgs(argc, argv);
    unsigned jobs = sim::ParallelRunner::jobsFromArgs(argc, argv);
    if (jobs > 1)
        std::fprintf(stderr, "[profess] running with %u workers "
                     "(--jobs 1 for the serial path)\n", jobs);
    return sim::ParallelRunner(jobs);
}

/** Geometric-mean accumulator for ratio series. */
class RatioSeries
{
  public:
    void
    add(double r)
    {
        ratios_.push_back(r);
    }

    double gmean() const { return geometricMean(ratios_); }

    double
    max() const
    {
        double m = ratios_.empty() ? 0.0 : ratios_[0];
        for (double r : ratios_)
            m = r > m ? r : m;
        return m;
    }

    double
    min() const
    {
        double m = ratios_.empty() ? 0.0 : ratios_[0];
        for (double r : ratios_)
            m = r < m ? r : m;
        return m;
    }

    const std::vector<double> &values() const { return ratios_; }

  private:
    std::vector<double> ratios_;
};

/** All ten Table 9 programs. */
inline std::vector<std::string>
allPrograms()
{
    std::vector<std::string> v;
    for (const auto &p : trace::specProfiles())
        v.push_back(p.name);
    return v;
}

} // namespace bench

} // namespace profess

#endif // PROFESS_BENCH_BENCH_UTIL_HH
