/**
 * @file
 * Reproduces the Sec. 5.2 sensitivity study on the M2 write
 * recovery latency: tWR_M2 halved and doubled relative to the
 * default 2 x tRCD_M2.
 *
 * Expected shape: MDM's advantage over PoM grows with tWR_M2
 * (paper: avg +12% at 0.5x, +14% at 1x, +18% at 2x) because its
 * timely promotions pull write-heavy blocks out of M2.
 */

#include "bench_util.hh"

using namespace profess;
using namespace profess::bench;

int
main(int argc, char **argv)
{
    BenchEnv env = benchEnv();
    header("Sec. 5.2: sensitivity to M2 write latency",
           "Sec. 5.2 (write-latency study)");

    const double scales[] = {0.5, 1.0, 2.0};
    sim::ParallelRunner runner = makeRunner(argc, argv);
    std::vector<std::string> programs = allPrograms();
    std::vector<sim::RunJob> jobs;
    for (const std::string &prog : programs) {
        for (int i = 0; i < 3; ++i) {
            sim::SystemConfig cfg = sim::SystemConfig::singleCore();
            cfg.core.instrQuota = env.singleInstr;
            cfg.core.warmupInstr = env.warmupInstr;
            cfg.m2WriteScale = scales[i];
            jobs.push_back(sim::singleJob(cfg, "pom", prog, i));
            jobs.push_back(sim::singleJob(cfg, "mdm", prog, i));
        }
    }
    std::vector<sim::MultiMetrics> res = runner.run(jobs);

    std::printf("\n%-12s %10s %10s %10s\n", "program",
                "0.5x tWR", "1x tWR", "2x tWR");
    RatioSeries g[3];
    for (std::size_t p = 0; p < programs.size(); ++p) {
        std::printf("%-12s", programs[p].c_str());
        for (int i = 0; i < 3; ++i) {
            double pom = res[6 * p + 2 * i].run.ipc[0];
            double mdm = res[6 * p + 2 * i + 1].run.ipc[0];
            double r = mdm / pom;
            g[i].add(r);
            std::printf(" %10.3f", r);
        }
        std::printf("\n");
    }
    std::printf("\nMDM/PoM IPC gmean: 0.5x %.3f | 1x %.3f | 2x "
                "%.3f  (paper: 1.12 / 1.14 / 1.18)\n",
                g[0].gmean(), g[1].gmean(), g[2].gmean());
    return 0;
}
