/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot
 * components: STC lookups, channel scheduling, pattern generation,
 * MDM decisions, and whole-system simulation throughput.
 */

#include <benchmark/benchmark.h>

#include <array>
#include <cstring>
#include <memory>

#include "common/event.hh"
#include "common/thread_pool.hh"
#include "core/mdm.hh"
#include "hybrid/stc.hh"
#include "mem/channel.hh"
#include "sim/experiment.hh"
#include "sim/parallel_runner.hh"
#include "trace/spec_profiles.hh"

using namespace profess;

namespace
{

void
BM_StcLookup(benchmark::State &state)
{
    hybrid::StCache stc(hybrid::StCache::Params{2 * KiB, 8, 8});
    std::uint8_t qac[hybrid::maxSlots] = {};
    hybrid::StcEviction ev;
    for (std::uint64_t g = 0; g < 256; ++g)
        stc.insert(g, qac, ev);
    std::uint64_t g = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(stc.find(g));
        g = (g + 17) % 512;
    }
}
BENCHMARK(BM_StcLookup);

void
BM_ChannelRead(benchmark::State &state)
{
    EventQueue eq;
    mem::ModuleGeometry g1 = mem::ModuleGeometry::withCapacity(MiB);
    mem::ModuleGeometry g2 =
        mem::ModuleGeometry::withCapacity(8 * MiB);
    mem::Channel ch(eq, mem::m1Timing(), mem::m2Timing(), g1, g2);
    Addr a = 0;
    for (auto _ : state) {
        auto r = std::make_unique<mem::Request>();
        r->module = mem::Module::M2;
        r->addr = a;
        ch.push(std::move(r));
        eq.run();
        a = (a + 8 * KiB) % g2.capacity();
    }
}
BENCHMARK(BM_ChannelRead);

void
BM_PatternGeneration(benchmark::State &state)
{
    auto src = trace::makeSpecSource("soplex", trace::defaultScale,
                                     1);
    trace::MemAccess a;
    for (auto _ : state) {
        src->next(a);
        benchmark::DoNotOptimize(a.vaddr);
    }
}
BENCHMARK(BM_PatternGeneration);

void
BM_MdmDecision(benchmark::State &state)
{
    core::Mdm::Params p;
    p.numPrograms = 4;
    core::Mdm mdm(p);
    for (int i = 0; i < 3000; ++i)
        mdm.recordEviction(0, 3, 40);
    hybrid::StcMeta meta{};
    std::memset(meta.ac, 0, sizeof(meta.ac));
    meta.qacAtInsert[2] = 3;
    meta.ac[2] = 5;
    meta.ac[0] = 10;
    policy::AccessInfo info{};
    info.slot = 2;
    info.m1Slot = 0;
    info.accessor = 0;
    info.m1Owner = 1;
    info.meta = &meta;
    for (auto _ : state)
        benchmark::DoNotOptimize(mdm.decide(info, false));
}
BENCHMARK(BM_MdmDecision);

void
BM_EventQueue(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (Tick t = 0; t < 1000; ++t)
            eq.schedule(t * 7 % 997, [&sink]() { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
}
BENCHMARK(BM_EventQueue);

void
BM_EventQueueSteadyState(benchmark::State &state)
{
    // Hold `range(0)` events pending and measure one pop + one
    // schedule per iteration -- the calendar queue's steady state.
    // Delays stay inside the wheel horizon (16384 ticks), matching
    // the simulator's behaviour where only periodic policy events
    // overflow.
    const std::uint64_t pending =
        static_cast<std::uint64_t>(state.range(0));
    EventQueue eq;
    std::uint64_t sink = 0;
    std::uint64_t lcg = 12345;
    auto delay = [&lcg]() {
        lcg = lcg * 6364136223846793005ull +
              1442695040888963407ull;
        return static_cast<Cycles>(1 + (lcg >> 33) % 8000);
    };
    for (std::uint64_t i = 0; i < pending; ++i)
        eq.scheduleIn(delay(), [&sink]() { ++sink; });
    for (auto _ : state) {
        eq.runOne();
        eq.scheduleIn(delay(), [&sink]() { ++sink; });
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_EventQueueSteadyState)->Arg(1000)->Arg(100000);

template <std::size_t Bytes>
void
eventQueueCaptureBench(benchmark::State &state)
{
    // Schedule+run 1000 events whose lambdas capture `Bytes` of
    // payload plus a reference.  40 B of capture stays inside the
    // InlineCallback buffer (48 B); 104 B spills to the heap path.
    std::array<std::uint64_t, Bytes / 8> payload{};
    payload[0] = 1;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        EventQueue eq;
        for (Tick t = 0; t < 1000; ++t) {
            eq.schedule(t % 500, [payload, &sink]() {
                sink += payload[0];
            });
        }
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1000);
}

void
BM_EventQueueCaptureInline(benchmark::State &state)
{
    eventQueueCaptureBench<32>(state); // +8 B ref = 40 B: inline
}
BENCHMARK(BM_EventQueueCaptureInline);

void
BM_EventQueueCaptureHeap(benchmark::State &state)
{
    eventQueueCaptureBench<96>(state); // +8 B ref = 104 B: heap
}
BENCHMARK(BM_EventQueueCaptureHeap);

void
BM_SystemThroughput(benchmark::State &state)
{
    // Whole-system simulation rate: instructions per wall second.
    std::uint64_t instr = 0;
    for (auto _ : state) {
        sim::SystemConfig cfg = sim::SystemConfig::singleCore();
        cfg.core.instrQuota = 100000;
        cfg.core.warmupInstr = 0;
        sim::ExperimentRunner runner(cfg);
        sim::RunResult r = runner.run("profess", {"soplex"});
        benchmark::DoNotOptimize(r.ipc[0]);
        instr += 100000;
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instr), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SystemThroughput)->Unit(benchmark::kMillisecond);

void
BM_ThreadPoolSubmitDrain(benchmark::State &state)
{
    // Per-task overhead of the experiment layer's work-stealing
    // pool (submission + steal + completion accounting).
    ThreadPool pool(
        static_cast<unsigned>(state.range(0)));
    for (auto _ : state) {
        std::atomic<int> sink{0};
        for (int i = 0; i < 256; ++i)
            pool.submit([&sink]() {
                sink.fetch_add(1, std::memory_order_relaxed);
            });
        pool.wait();
        benchmark::DoNotOptimize(sink.load());
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_ThreadPoolSubmitDrain)->Arg(1)->Arg(4);

void
BM_ParallelRunnerBatch(benchmark::State &state)
{
    // Whole-batch throughput: 4 tiny single-program jobs per
    // iteration through the full RunJob/seed-derivation path.
    sim::SystemConfig cfg = sim::SystemConfig::singleCore();
    cfg.core.instrQuota = 20000;
    cfg.core.warmupInstr = 0;
    std::vector<sim::RunJob> jobs;
    for (int i = 0; i < 4; ++i)
        jobs.push_back(sim::singleJob(cfg, "pom", "soplex", i));
    sim::ParallelRunner runner(
        static_cast<unsigned>(state.range(0)));
    runner.setProgress(false);
    for (auto _ : state) {
        auto res = runner.run(jobs);
        benchmark::DoNotOptimize(res[0].run.servedTotal);
    }
}
BENCHMARK(BM_ParallelRunnerBatch)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // anonymous namespace

BENCHMARK_MAIN();
