/**
 * @file
 * Reproduces Figs. 5-7: single-program evaluation of MDM vs PoM on
 * the single-core system (Sec. 5.1).
 *
 *  - Fig. 5: IPC of MDM normalized to PoM (box-plot statistics)
 *  - Fig. 6: fraction of accesses served from M1, MDM norm. to PoM
 *  - Fig. 7: STC hit rates under MDM
 *
 * Expected shapes: MDM >= PoM for irregular memory-bound programs
 * (mcf the largest winner here), mcf/omnetpp with the lowest STC hit
 * rates.  libquantum's footprint fits into M1 (as in the paper).
 */

#include "bench_util.hh"

using namespace profess;
using namespace profess::bench;

int
main(int argc, char **argv)
{
    BenchEnv env = benchEnv();
    header("Figs. 5-7: single-program MDM vs PoM", "Figures 5, 6, 7");

    sim::SystemConfig cfg = sim::SystemConfig::singleCore();
    cfg.core.instrQuota = env.singleInstr;
    cfg.core.warmupInstr = env.warmupInstr;
    sim::ParallelRunner runner = makeRunner(argc, argv);

    std::vector<std::string> programs = allPrograms();
    std::vector<sim::RunJob> jobs;
    for (const std::string &prog : programs) {
        jobs.push_back(sim::singleJob(cfg, "pom", prog));
        jobs.push_back(sim::singleJob(cfg, "mdm", prog));
    }
    std::vector<sim::MultiMetrics> res = runner.run(jobs);

    std::printf("\n%-12s %8s %8s %9s %10s %10s %8s\n", "program",
                "IPC.pom", "IPC.mdm", "mdm/pom", "M1%.pom",
                "M1%.mdm", "STC.mdm");
    RatioSeries ipc_ratio, m1_ratio;
    std::vector<double> stc_rates;
    for (std::size_t i = 0; i < programs.size(); ++i) {
        const std::string &prog = programs[i];
        const sim::RunResult &pom = res[2 * i].run;
        const sim::RunResult &mdm = res[2 * i + 1].run;
        double r_ipc = mdm.ipc[0] / pom.ipc[0];
        double r_m1 = pom.m1Fraction > 0
                          ? mdm.m1Fraction / pom.m1Fraction
                          : 0.0;
        ipc_ratio.add(r_ipc);
        m1_ratio.add(r_m1);
        stc_rates.push_back(mdm.stcHitRate);
        std::printf("%-12s %8.3f %8.3f %9.3f %9.1f%% %9.1f%% "
                    "%7.1f%%\n",
                    prog.c_str(), pom.ipc[0], mdm.ipc[0], r_ipc,
                    100.0 * pom.m1Fraction, 100.0 * mdm.m1Fraction,
                    100.0 * mdm.stcHitRate);
    }

    BoxSummary box = boxSummary(ipc_ratio.values());
    std::printf("\nFig. 5 box statistics of MDM/PoM IPC "
                "(paper: gmean +14%%, max +38%%):\n");
    std::printf("  min %.3f  q1 %.3f  median %.3f  q3 %.3f  max "
                "%.3f  gmean %.3f (%s)\n",
                box.min, box.q1, box.median, box.q3, box.max,
                box.gmean, sim::percentDelta(box.gmean).c_str());
    std::printf("Fig. 6 M1-fraction ratio gmean: %.3f\n",
                m1_ratio.gmean());
    BoxSummary stc = boxSummary(stc_rates);
    std::printf("Fig. 7 STC hit rate under MDM: min %.1f%% median "
                "%.1f%% max %.1f%% (paper: mcf ~85%%, omnetpp "
                "~70%%, others higher)\n",
                100.0 * stc.min, 100.0 * stc.median,
                100.0 * stc.max);
    return 0;
}
