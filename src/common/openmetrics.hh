/**
 * @file
 * OpenMetrics text-exposition writer (DESIGN.md Sec. 4g).
 *
 * Maps the registry's dotted statistic names onto OpenMetrics
 * families and labels so any run can be compared with standard
 * tooling (promtool, scripts/metrics_diff.py):
 *
 *   - instance segments "p3" / "ch0" / "core1" become labels
 *     program="3" / channel="0" / core="1";
 *   - the remaining segments join with '_' under a "profess_"
 *     prefix ("mem.ch0.row_hits" -> profess_mem_row_hits);
 *   - latency-attribution histograms keep one family,
 *     profess_latency, with tier/kind/phase labels;
 *   - every sample carries run="<label>" so multiple runs of one
 *     process (a bench sweep) share a single exposition file.
 *
 * Counters emit "<family>_total", probes emit gauges, histograms
 * emit cumulative "_bucket{le=...}" plus "_sum"/"_count" whose
 * values reconcile exactly with the registry's derived
 * "<name>.count"/"<name>.sum" probes (tests/test_metrics.cc).
 *
 * Snapshots are plain data: they are captured while a run's
 * registry is alive and exported later (atexit), after the
 * components the registry pointed into are gone.
 */

#ifndef PROFESS_COMMON_OPENMETRICS_HH
#define PROFESS_COMMON_OPENMETRICS_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace profess
{

namespace telemetry
{

class StatRegistry;

/** A dotted name resolved to an OpenMetrics family plus labels. */
struct MetricName
{
    std::string family;
    std::vector<std::pair<std::string, std::string>> labels;
};

/**
 * Map one dotted registry name to family + labels per the scheme
 * above.  `histogram` selects the latency-family special case.
 */
MetricName mapDottedName(const std::string &dotted,
                         bool histogram = false);

/** Escape a label value (backslash, quote, newline). */
std::string escapeLabelValue(const std::string &s);

/** Plain-data capture of one run's registry. */
struct MetricsSnapshot
{
    struct Scalar
    {
        std::string name;     ///< dotted registry name
        bool isCounter = false;
        double value = 0.0;
    };

    struct Hist
    {
        std::string name;     ///< dotted registry name
        double bucketWidth = 0.0;
        std::vector<std::uint64_t> buckets; ///< incl. overflow last
        std::uint64_t underflow = 0;
        std::uint64_t count = 0;
        double sum = 0.0;
    };

    std::string run; ///< run label, becomes the run="..." label
    std::vector<Scalar> scalars;
    std::vector<Hist> histograms;

    /**
     * Snapshot every registry entry.  The scalar probes derived by
     * StatRegistry::addHistogram ("<h>.count"/"<h>.sum") are
     * skipped: the histogram family exports those totals itself.
     */
    static MetricsSnapshot capture(const StatRegistry &registry,
                                   const std::string &run_label);
};

/**
 * Write one exposition of all runs, terminated by "# EOF".
 *
 * Families are emitted sorted by name, one "# TYPE" line each,
 * samples sorted by (run, dotted name) within the family — the
 * output is deterministic for a deterministic set of snapshots.
 */
void writeOpenMetrics(std::FILE *f,
                      const std::vector<MetricsSnapshot> &runs);

/** As above, to a named file (panics if unwritable). */
void writeOpenMetricsFile(const std::string &path,
                          const std::vector<MetricsSnapshot> &runs);

/**
 * As above, crash-atomically: the exposition is written to
 * "<path>.tmp", fsync'd, then renamed over `path`, so a reader (or
 * a killed writer) can never observe a half-written file.
 */
void writeOpenMetricsFileAtomic(
    const std::string &path,
    const std::vector<MetricsSnapshot> &runs);

/**
 * Write one snapshot as a self-contained per-run shard file
 * (crash-atomically, as above).
 *
 * The shard is the exporter's O(runs) unit of work: one run's
 * registry capture in a line-based text format ("profess-shard 1"
 * header, "run"/"scalar"/"hist" records, "end" trailer).  Doubles
 * are rendered with %.17g, which round-trips IEEE binary64
 * exactly, so reading a shard back and re-rendering it — in C++
 * (MetricsCollector::mergeShards) or Python
 * (scripts/metrics_merge.py) — reproduces the legacy single-file
 * exposition byte for byte.
 */
void writeMetricsShardFile(const std::string &path,
                           const MetricsSnapshot &snap);

/** Read a shard back (panics on a malformed or truncated file). */
MetricsSnapshot readMetricsShardFile(const std::string &path);

} // namespace telemetry

} // namespace profess

#endif // PROFESS_COMMON_OPENMETRICS_HH
