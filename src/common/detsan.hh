/**
 * @file
 * Determinism sanitizer (DetSan): runtime cross-check of the
 * repo-wide invariant that simulation output is bit-identical for
 * any worker count.
 *
 * Two digests prove it:
 *
 *  - the EventQueue mixes every extraction's (when, seq) pair into
 *    a chained FNV-1a digest, fingerprinting the exact event order
 *    a run executed (the ordering contract of event.hh);
 *  - the EpochSampler mixes each epoch's tick, index and sampled
 *    registry values, fingerprinting the observable statistics
 *    trajectory.
 *
 * The process-global Journal stores each run's digests under its
 * identity key (label, policy, programs, seed).  When the same
 * identity is recorded again — e.g. kernel_hotpath's serial pass
 * followed by its threaded verification pass — the digests are
 * cross-checked and any mismatch is fatal with both values printed.
 *
 * The instrumentation in EventQueue / EpochSampler / the runners is
 * compiled only under -DPROFESS_DETSAN=ON (CMake option); Release
 * builds carry zero cost.  This header itself is build-agnostic so
 * tests can exercise the digest and journal in any configuration.
 */

#ifndef PROFESS_COMMON_DETSAN_HH
#define PROFESS_COMMON_DETSAN_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace profess
{

namespace telemetry
{
class StatRegistry;
} // namespace telemetry

namespace detsan
{

/** Chained FNV-1a (64-bit) over a sequence of words. */
class Digest
{
  public:
    /** Mix one 64-bit word, byte by byte, little-endian. */
    void
    mix(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i) {
            h_ ^= (v >> (8 * i)) & 0xff;
            h_ *= 0x100000001b3ull;
        }
    }

    /** Mix a double via its bit pattern (bit-exact, no rounding). */
    void
    mixDouble(double d)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        __builtin_memcpy(&bits, &d, sizeof(bits));
        mix(bits);
    }

    /** Mix a byte string, length first (so "ab"+"c" and "a"+"bc"
     *  never alias). */
    void
    mixString(std::string_view s)
    {
        mix(s.size());
        for (char c : s) {
            h_ ^= static_cast<unsigned char>(c);
            h_ *= 0x100000001b3ull;
        }
    }

    /** @return the digest over everything mixed so far. */
    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 0xcbf29ce484222325ull; // FNV offset basis
};

/** The digests identifying one run's observable behavior. */
struct RunDigest
{
    std::uint64_t events = 0;     ///< events executed
    std::uint64_t extraction = 0; ///< FNV over (when, seq) order
    std::uint64_t epochs = 0;     ///< sampler epochs taken
    std::uint64_t epochState = 0; ///< FNV over per-epoch samples
    std::uint64_t stats = 0;      ///< registry entries folded
    std::uint64_t statState = 0;  ///< FNV over final (name, value)s

    bool
    operator==(const RunDigest &o) const
    {
        return events == o.events && extraction == o.extraction &&
               epochs == o.epochs && epochState == o.epochState &&
               stats == o.stats && statState == o.statState;
    }
};

/**
 * Process-global journal of run digests, keyed by run identity.
 * Thread-safe: parallel workers record concurrently.
 */
class Journal
{
  public:
    /**
     * Record `d` under `key`.  First recording stores it; a repeat
     * recording cross-checks and is fatal on mismatch (printing
     * both digest sets).
     *
     * @return true when this call cross-checked an earlier record.
     */
    bool record(const std::string &key, const RunDigest &d);

    /** @return stored digest for `key`, if any. */
    bool lookup(const std::string &key, RunDigest &out) const;

    /** @return distinct identities recorded. */
    std::size_t entries() const;

    /** @return cross-checks performed (all of them matched, or the
     *  process would have died). */
    std::uint64_t checked() const;

    /** Forget everything (tests running several batches). */
    void clear();

    /** The process-wide instance. */
    static Journal &global();

  private:
    mutable std::mutex mu_;
    std::map<std::string, RunDigest> runs_;
    std::uint64_t checked_ = 0;
};

/**
 * Digest a registry's final values: every entry's name and value
 * (counters bit-exact as integers, probes as double bit patterns)
 * in the registry's sorted-name order.  Folded into RunDigest as
 * stats/statState, it catches a divergence that cancels out of the
 * sampled epochs — e.g. two runs whose epoch trajectories match
 * but whose end-of-run counters drifted after the last sample.
 * The epoch-digest invariant already proves the registry holds
 * only deterministic simulation state (no wall clock), so final
 * values are digestable in any build.
 */
std::uint64_t registryDigest(const telemetry::StatRegistry &reg);

} // namespace detsan

} // namespace profess

#endif // PROFESS_COMMON_DETSAN_HH
