#include "common/config.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace profess
{

void
Config::set(const std::string &key, const std::string &value)
{
    entries_[key] = value;
}

void
Config::setInt(const std::string &key, std::int64_t v)
{
    entries_[key] = std::to_string(v);
}

void
Config::setDouble(const std::string &key, double v)
{
    entries_[key] = std::to_string(v);
}

void
Config::setBool(const std::string &key, bool v)
{
    entries_[key] = v ? "true" : "false";
}

bool
Config::has(const std::string &key) const
{
    return entries_.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    auto it = entries_.find(key);
    return it == entries_.end() ? def : it->second;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t def) const
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        return def;
    char *end = nullptr;
    std::int64_t v = std::strtoll(it->second.c_str(), &end, 0);
    fatal_if(end == it->second.c_str() || *end != '\0',
             "config key '%s': '%s' is not an integer", key.c_str(),
             it->second.c_str());
    return v;
}

std::uint64_t
Config::getUint(const std::string &key, std::uint64_t def) const
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        return def;
    char *end = nullptr;
    std::uint64_t v = std::strtoull(it->second.c_str(), &end, 0);
    fatal_if(end == it->second.c_str() || *end != '\0',
             "config key '%s': '%s' is not an unsigned integer",
             key.c_str(), it->second.c_str());
    return v;
}

double
Config::getDouble(const std::string &key, double def) const
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        return def;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    fatal_if(end == it->second.c_str() || *end != '\0',
             "config key '%s': '%s' is not a number", key.c_str(),
             it->second.c_str());
    return v;
}

bool
Config::getBool(const std::string &key, bool def) const
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        return def;
    const std::string &s = it->second;
    if (s == "true" || s == "1" || s == "yes" || s == "on")
        return true;
    if (s == "false" || s == "0" || s == "no" || s == "off")
        return false;
    fatal("config key '%s': '%s' is not a boolean", key.c_str(),
          s.c_str());
}

bool
Config::parsePair(const std::string &token)
{
    auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0)
        return false;
    set(token.substr(0, eq), token.substr(eq + 1));
    return true;
}

std::vector<std::string>
Config::parseArgs(int argc, char **argv)
{
    std::vector<std::string> rest;
    for (int i = 1; i < argc; ++i) {
        std::string tok = argv[i];
        if (!parsePair(tok))
            rest.push_back(tok);
    }
    return rest;
}

void
Config::merge(const Config &other)
{
    for (const auto &kv : other.entries_)
        entries_[kv.first] = kv.second;
}

} // namespace profess
