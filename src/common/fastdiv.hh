/**
 * @file
 * Precomputed multiply-shift division for runtime-constant divisors.
 *
 * The address-layout hot path computes `block % numGroups` and
 * `block / numGroups` for every access, and `numGroups` (448 single,
 * 1472 quad) is not a power of two, so the compiler emits a real
 * 64-bit divide.  `FastDivMod` replaces it with the classic
 * round-up reciprocal: n / d == (n * ceil(2^64 / d)) >> 64 (exact
 * for all n, d < 2^32 per Granlund & Montgomery), a single `mulhi`.
 */

#ifndef PROFESS_COMMON_FASTDIV_HH
#define PROFESS_COMMON_FASTDIV_HH

#include <cstdint>

#include "common/logging.hh"

namespace profess
{

class FastDivMod
{
  public:
    FastDivMod() = default;

    explicit FastDivMod(std::uint32_t d) : d_(d)
    {
        panic_if(d == 0, "FastDivMod divisor must be nonzero");
        // magic = ceil(2^64 / d) = floor((2^64 - 1) / d) + 1 when d
        // is not a power of two dividing 2^64 exactly; the +1 makes
        // the truncation in mulhi round the quotient correctly for
        // every 32-bit dividend.
        magic_ = ~std::uint64_t{0} / d + 1;
    }

    std::uint32_t
    div(std::uint32_t n) const
    {
        return static_cast<std::uint32_t>(
            (static_cast<unsigned __int128>(magic_) * n) >> 64);
    }

    std::uint32_t
    mod(std::uint32_t n) const
    {
        return n - div(n) * d_;
    }

    std::uint32_t divisor() const { return d_; }

  private:
    std::uint64_t magic_ = 0;
    std::uint32_t d_ = 1;
};

} // namespace profess

#endif // PROFESS_COMMON_FASTDIV_HH
