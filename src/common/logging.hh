/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic()  - internal invariant violated (simulator bug); aborts.
 * fatal()  - unrecoverable user error (bad configuration); exits(1).
 * warn()   - something questionable happened but simulation continues.
 * inform() - purely informational status output.
 */

#ifndef PROFESS_COMMON_LOGGING_HH
#define PROFESS_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace profess
{

namespace logging
{

/** Global verbosity: 0 = errors only, 1 = warn, 2 = inform (default). */
extern int verbosity;

/**
 * Centralized verbosity configuration.
 *
 * Reads the PROFESS_LOG environment variable (0/1/2 or
 * error/warn/info) and then strips any of --quiet, --silent,
 * --verbose and --log-level[=]N out of argv, adjusting argc, so
 * binaries call this once before their own flag parsing instead of
 * each poking the bare global.
 */
void configure(int &argc, char **argv);

/** Parse only the environment (for binaries without argv access). */
void configureFromEnv();

/**
 * Drop the warn() rate-limit history (tests; also useful between
 * independent runs in one process).
 */
void resetWarnHistory();

/** @return times an exact formatted warning has fired so far. */
std::uint64_t warnCount(const std::string &msg);

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));
void warnImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
void informImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace logging

#define panic(...) \
    ::profess::logging::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) \
    ::profess::logging::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::profess::logging::warnImpl(__VA_ARGS__)
#define inform(...) ::profess::logging::informImpl(__VA_ARGS__)

/**
 * panic_if(cond, ...) aborts with a message when cond holds; used to
 * check internal invariants that should never fail.
 */
#define panic_if(cond, ...)                                            \
    do {                                                               \
        if (cond)                                                      \
            panic(__VA_ARGS__);                                        \
    } while (0)

#define fatal_if(cond, ...)                                            \
    do {                                                               \
        if (cond)                                                      \
            fatal(__VA_ARGS__);                                        \
    } while (0)

} // namespace profess

#endif // PROFESS_COMMON_LOGGING_HH
