/**
 * @file
 * A small typed key-value configuration store.
 *
 * Examples and benchmarks accept "key=value" pairs on the command line
 * and from PROFESS_* environment variables; components read typed
 * values with defaults.  Unknown keys are rejected on demand so typos
 * in experiment scripts fail loudly.
 */

#ifndef PROFESS_COMMON_CONFIG_HH
#define PROFESS_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace profess
{

/** String-keyed configuration with typed accessors. */
class Config
{
  public:
    Config() = default;

    /** Set a key to a raw string value (overwrites). */
    void set(const std::string &key, const std::string &value);

    /** Convenience setters. */
    void setInt(const std::string &key, std::int64_t v);
    void setDouble(const std::string &key, double v);
    void setBool(const std::string &key, bool v);

    /** @return true if the key is present. */
    bool has(const std::string &key) const;

    /**
     * Typed getters; return def when the key is absent and call
     * fatal() when the value cannot be parsed as the requested type.
     */
    std::string getString(const std::string &key,
                          const std::string &def = "") const;
    std::int64_t getInt(const std::string &key, std::int64_t def) const;
    std::uint64_t getUint(const std::string &key,
                          std::uint64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

    /**
     * Parse argv-style "key=value" tokens.
     *
     * @param argc Argument count (argv[0] skipped).
     * @param argv Argument vector.
     * @return List of tokens that were not key=value pairs.
     */
    std::vector<std::string> parseArgs(int argc, char **argv);

    /** Parse one "key=value" token; @return false if malformed. */
    bool parsePair(const std::string &token);

    /** @return all entries, sorted by key. */
    const std::map<std::string, std::string> &entries() const
    {
        return entries_;
    }

    /** Merge other into this (other wins on conflicts). */
    void merge(const Config &other);

  private:
    std::map<std::string, std::string> entries_;
};

} // namespace profess

#endif // PROFESS_COMMON_CONFIG_HH
