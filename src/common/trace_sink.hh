/**
 * @file
 * Decision tracing and Chrome trace-event export.
 *
 * DecisionTraceSink - compact binary ring buffer of policy-level
 *                     events: every MDM swap evaluation (group,
 *                     QACs, predicted remaining accesses,
 *                     min_benefit margin, decision path), every
 *                     Table-7 guidance classification, and every RSM
 *                     period rollover.  Records are fixed-size PODs
 *                     written into a preallocated ring — zero
 *                     allocations and no formatting on the hot path.
 *                     The ring is flushable to JSONL; per-kind and
 *                     per-path running totals survive ring wraps so
 *                     flushed summaries always reconcile with the
 *                     aggregate counters (test_telemetry.cc).
 * ChromeTraceSink   - accumulates trace-event objects in the Chrome
 *                     trace-event JSON format (chrome://tracing /
 *                     Perfetto).  Timestamps are simulation ticks
 *                     reported as microseconds — 1 tick == 1 us in
 *                     the viewer — since the viewer needs a time
 *                     unit and the interesting axis is sim time.
 *
 * Both sinks are attached by pointer; the producing components test
 * `if (PROFESS_UNLIKELY(sink_))` so the disabled configuration costs
 * a single predictable branch per candidate site.
 */

#ifndef PROFESS_COMMON_TRACE_SINK_HH
#define PROFESS_COMMON_TRACE_SINK_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/telemetry.hh"
#include "common/types.hh"

namespace profess
{

namespace telemetry
{

/** What a decision-trace record describes. */
enum class TraceKind : std::uint8_t
{
    MdmDecide = 0,   ///< one MDM swap evaluation (Sec. 3.2.3)
    GuidanceCase,    ///< ProFess Table-7 classification
    RsmPeriod,       ///< RSM sampling-period rollover (Sec. 3.1.3)
    ScenarioEvent,   ///< scenario intervention / injected fault
    NumKinds
};

/** One fixed-size binary trace record. */
struct TraceRecord
{
    Tick tick = 0;
    std::uint64_t group = 0;   ///< swap group (MdmDecide/Guidance)
    double a = 0.0;            ///< rem_M2 | SF_A
    double b = 0.0;            ///< rem_M1 | SF_B
    double margin = 0.0;       ///< rem_M2 - rem_M1 - min_benefit
    std::int32_t accessor = -1;  ///< program issuing / sampled
    std::int32_t m1Owner = -1;   ///< program owning the M1 block
    std::uint32_t detail = 0;  ///< DecidePath | GuidanceCase | period
    std::uint8_t kind = 0;     ///< TraceKind
    std::uint8_t qI = 0;       ///< QAC of the M2 block at insert
    std::uint8_t swapped = 0;  ///< decision was Swap (MdmDecide)
    std::uint8_t pad = 0;
};

static_assert(sizeof(TraceRecord) <= 64,
              "trace records should stay within one cache line");

/**
 * Preallocated ring of TraceRecords with wrap-immune totals.
 *
 * push() is the only hot-path entry point: one store into the ring
 * plus counter bumps, no allocation, no branch on capacity (the ring
 * index wraps with a mask when capacity is a power of two, modulo
 * otherwise).
 */
class DecisionTraceSink
{
  public:
    /** @param capacity Ring size in records (> 0). */
    explicit DecisionTraceSink(std::size_t capacity = 1 << 16);

    /** Record one event (overwrites the oldest once full). */
    void
    push(const TraceRecord &r)
    {
        ring_[head_] = r;
        head_ = (head_ + 1) % ring_.size();
        ++total_;
        ++kindTotals_[r.kind];
        if (r.kind ==
            static_cast<std::uint8_t>(TraceKind::MdmDecide)) {
            ++pathTotals_[r.detail];
            if (r.swapped)
                ++swapTotals_[r.detail];
        }
    }

    /** @return records pushed since construction (wrap-immune). */
    std::uint64_t total() const { return total_; }

    /** @return records pushed of one kind (wrap-immune). */
    std::uint64_t
    kindTotal(TraceKind k) const
    {
        return kindTotals_[static_cast<std::uint8_t>(k)];
    }

    /** @return MdmDecide records recording a given path. */
    std::uint64_t pathTotal(std::uint32_t path) const
    {
        return path < numPaths ? pathTotals_[path] : 0;
    }

    /** @return MdmDecide records per path that decided Swap. */
    std::uint64_t swapTotal(std::uint32_t path) const
    {
        return path < numPaths ? swapTotals_[path] : 0;
    }

    /** @return records currently retained (<= capacity). */
    std::size_t retainedCount() const;

    /** @return ring capacity in records. */
    std::size_t capacity() const { return ring_.size(); }

    /** @return retained records, oldest first (tests). */
    std::vector<TraceRecord> retained() const;

    /**
     * Write retained records as JSONL, one object per line, then a
     * trailing summary object {"summary":...} carrying the
     * wrap-immune totals (total, per-kind, per-path, per-path swap
     * counts, dropped = total - retained).
     */
    void flushJsonl(std::FILE *f) const;

  private:
    static constexpr std::size_t numPaths = 8;

    std::vector<TraceRecord> ring_;
    std::size_t head_ = 0;
    std::uint64_t total_ = 0;
    std::uint64_t kindTotals_[static_cast<std::size_t>(
        TraceKind::NumKinds)] = {};
    std::uint64_t pathTotals_[numPaths] = {};
    std::uint64_t swapTotals_[numPaths] = {};
};

/**
 * Chrome trace-event accumulation (JSON Array Format).
 *
 * Complete events ("ph":"X") carry begin tick + duration; instant
 * events ("ph":"i") mark points in time.  The sink caps stored
 * events and counts drops so a pathological run cannot exhaust
 * memory; the cap is generous (1M events ~ 64 MiB).
 */
class ChromeTraceSink
{
  public:
    explicit ChromeTraceSink(std::size_t max_events = 1 << 20);

    /** Record a complete event of `dur` ticks ending now. */
    void
    complete(const char *name, const char *category, Tick begin,
             Tick dur, std::uint32_t tid)
    {
        if (events_.size() >= max_) {
            ++dropped_;
            return;
        }
        events_.push_back(Event{name, category, begin, dur, tid,
                                /*instant=*/false});
    }

    /** Record an instant event. */
    void
    instant(const char *name, const char *category, Tick at,
            std::uint32_t tid)
    {
        if (events_.size() >= max_) {
            ++dropped_;
            return;
        }
        events_.push_back(Event{name, category, at, 0, tid,
                                /*instant=*/true});
    }

    /** @return events currently stored. */
    std::size_t size() const { return events_.size(); }

    /** @return events dropped at the cap. */
    std::uint64_t dropped() const { return dropped_; }

    /**
     * Write the trace as a chrome://tracing-loadable JSON object
     * with metadata naming the tracks; also appends wall-clock
     * profiling spans derived from the given timer slots (one
     * summary counter event per slot).
     */
    void writeJson(std::FILE *f,
                   const std::vector<std::pair<std::string,
                                               const TimerSlot *>>
                       &timers = {}) const;

  private:
    struct Event
    {
        const char *name;     ///< must be a string literal
        const char *category; ///< must be a string literal
        Tick begin;
        Tick dur;
        std::uint32_t tid;
        bool instant;
    };

    std::vector<Event> events_;
    std::size_t max_;
    std::uint64_t dropped_ = 0;
};

/** Names for TraceKind values in JSONL output. */
const char *traceKindName(TraceKind k);

} // namespace telemetry

} // namespace profess

#endif // PROFESS_COMMON_TRACE_SINK_HH
