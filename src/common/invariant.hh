/**
 * @file
 * Compile-out invariant-audit subsystem (DESIGN.md Sec. 4e).
 *
 * ProFess's correctness rests on tight structural invariants — the
 * swap-group ATB permutation, ST/STC residency coherence, the 6-bit
 * saturating access counters and their 2-bit QAC quantization, RSM's
 * smoothing-period bookkeeping, and the event queue's (when, seq)
 * ordering contract.  This header provides the machinery that checks
 * them mechanically:
 *
 *  - Components expose `auditInvariants()` methods that validate
 *    their structural invariants and panic() on violation.  These
 *    methods exist in *every* build (tests call them directly) and
 *    bump the process-wide audit check counter so tests can assert
 *    audits actually executed.
 *  - Hot-path call sites are wrapped in PROFESS_AUDIT_ONLY(...),
 *    which compiles to nothing unless the build defines
 *    PROFESS_AUDIT (the `-DPROFESS_AUDIT=ON` CMake option).  Release
 *    builds are therefore bit-identical and pay zero cost; the CI
 *    Debug sanitizer stage runs with the hooks live after every STC
 *    fill/evict, completed swap, MDM statistics update and RSM
 *    period rollover.
 *  - `profess_audit(cond, ...)` is the assertion primitive used
 *    inside auditInvariants() bodies: it counts the check and
 *    panics with the formatted message when `cond` is false.
 *
 * The counter is a relaxed atomic: the parallel experiment runner
 * audits several systems concurrently and the count is only ever
 * read for "did any checks run" assertions, never for
 * synchronization.
 */

#ifndef PROFESS_COMMON_INVARIANT_HH
#define PROFESS_COMMON_INVARIANT_HH

#include <atomic>
#include <cstdint>

#include "common/logging.hh"

#ifdef PROFESS_AUDIT
#define PROFESS_AUDIT_ENABLED 1
#else
#define PROFESS_AUDIT_ENABLED 0
#endif

namespace profess
{

namespace audit
{

/** True when hot-path audit hooks are compiled in. */
constexpr bool enabled = PROFESS_AUDIT_ENABLED != 0;

/** @return the process-wide count of executed audit checks. */
inline std::atomic<std::uint64_t> &
checkCounter()
{
    static std::atomic<std::uint64_t> count{0};
    return count;
}

/** Count one executed audit check. */
inline void
noteCheck()
{
    checkCounter().fetch_add(1, std::memory_order_relaxed);
}

/** @return audit checks executed so far in this process. */
inline std::uint64_t
checksRun()
{
    return checkCounter().load(std::memory_order_relaxed);
}

} // namespace audit

/**
 * Audit assertion: count the check, panic on violation.  Used inside
 * auditInvariants() bodies, which are reachable in every build; the
 * compile-out gating happens at the PROFESS_AUDIT_ONLY call sites.
 */
#define profess_audit(cond, ...)                                       \
    do {                                                               \
        ::profess::audit::noteCheck();                                 \
        if (!(cond))                                                   \
            panic(__VA_ARGS__);                                        \
    } while (0)

/**
 * Emit `code` only in PROFESS_AUDIT builds.  Wrap hot-path audit
 * hook invocations (and any state updates that exist solely to feed
 * them) so Release binaries compile them out completely.
 */
#if PROFESS_AUDIT_ENABLED
#define PROFESS_AUDIT_ONLY(...)                                        \
    do {                                                               \
        __VA_ARGS__;                                                   \
    } while (0)
#else
#define PROFESS_AUDIT_ONLY(...)                                        \
    do {                                                               \
    } while (0)
#endif

} // namespace profess

#endif // PROFESS_COMMON_INVARIANT_HH
