#include "common/telemetry.hh"

#include <sys/resource.h>

#include <algorithm>
#include <cinttypes>
#include <cstring>
#include <ctime>
#include <fstream>
#include <sstream>

#include "common/event.hh"
#include "common/logging.hh"

namespace profess
{

namespace telemetry
{

namespace
{

/** Print a double the way the JSON writers below expect. */
void
printValue(std::FILE *f, const StatRegistry::Entry &e)
{
    if (e.counter) {
        std::fprintf(f, "%" PRIu64, *e.counter);
    } else {
        std::fprintf(f, "%.17g", e.probe());
    }
}

} // namespace

//
// StatRegistry
//

void
StatRegistry::addEntry(Entry e)
{
    // Duplicate dotted names would silently shadow each other in
    // value() and produce ambiguous report columns; scripts/
    // lint_profess.py checks the literals statically, this catches
    // runtime-composed prefixes.  The hash set keeps registration
    // O(1) per entry (a linear contains() made it O(n^2) overall).
    panic_if(!names_.insert(e.name).second,
             "duplicate statistic name '%s'", e.name.c_str());
    entries_.push_back(std::move(e));
    sorted_ = false;
}

void
StatRegistry::addSet(const std::string &prefix, const StatSet &set)
{
    for (const auto &kv : set.counters()) {
        Entry e;
        e.name = prefix + "." + kv.first;
        e.isCounter = true;
        e.counter = &kv.second;
        addEntry(std::move(e));
    }
    // Values are doubles set late in a run; sample them via a probe
    // so the current value is read at dump/sample time.
    for (const auto &kv : set.values()) {
        const std::string name = kv.first;
        const StatSet *s = &set;
        Entry e;
        e.name = prefix + "." + name;
        e.probe = [s, name]() { return s->value(name); };
        addEntry(std::move(e));
    }
}

void
StatRegistry::addProbe(const std::string &name,
                       std::function<double()> fn)
{
    Entry e;
    e.name = name;
    e.probe = std::move(fn);
    addEntry(std::move(e));
}

void
StatRegistry::addCounter(const std::string &name,
                         const std::uint64_t &c)
{
    Entry e;
    e.name = name;
    e.isCounter = true;
    e.counter = &c;
    addEntry(std::move(e));
}

void
StatRegistry::addHistogram(const std::string &name,
                           const Histogram &h)
{
    // The name itself goes through the duplicate check so a
    // histogram can never shadow a scalar entry (or vice versa);
    // the derived .count/.sum probes are plain entries.
    panic_if(!names_.insert(name).second,
             "duplicate statistic name '%s'", name.c_str());
    histograms_.push_back(HistogramEntry{name, &h});
    histogramsSorted_ = false;
    const Histogram *hp = &h;
    addProbe(name + ".count", [hp]() {
        return static_cast<double>(hp->summary().count());
    });
    addProbe(name + ".sum", [hp]() { return hp->sum(); });
}

const std::vector<StatRegistry::HistogramEntry> &
StatRegistry::histograms() const
{
    if (!histogramsSorted_) {
        std::stable_sort(histograms_.begin(), histograms_.end(),
                         [](const HistogramEntry &a,
                            const HistogramEntry &b) {
                             return a.name < b.name;
                         });
        histogramsSorted_ = true;
    }
    return histograms_;
}

const std::vector<StatRegistry::Entry> &
StatRegistry::entries() const
{
    if (!sorted_) {
        std::stable_sort(entries_.begin(), entries_.end(),
                         [](const Entry &a, const Entry &b) {
                             return a.name < b.name;
                         });
        sorted_ = true;
    }
    return entries_;
}

double
StatRegistry::value(const std::string &name) const
{
    for (const Entry &e : entries()) {
        if (e.name == name) {
            return e.counter ? static_cast<double>(*e.counter)
                             : e.probe();
        }
    }
    return 0.0;
}

bool
StatRegistry::contains(const std::string &name) const
{
    return names_.count(name) != 0;
}

std::vector<std::string>
StatRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries().size());
    for (const Entry &e : entries())
        out.push_back(e.name);
    return out;
}

void
StatRegistry::dumpJson(std::FILE *f) const
{
    std::fputs("{", f);
    bool first = true;
    for (const Entry &e : entries()) {
        std::fprintf(f, "%s\n  %s: ", first ? "" : ",",
                     jsonQuote(e.name).c_str());
        printValue(f, e);
        first = false;
    }
    std::fputs("\n}\n", f);
}

void
StatRegistry::dumpCsv(std::FILE *f) const
{
    std::fputs("name,value\n", f);
    for (const Entry &e : entries()) {
        std::fprintf(f, "%s,", e.name.c_str());
        printValue(f, e);
        std::fputc('\n', f);
    }
}

//
// EpochSampler
//

EpochSampler::EpochSampler(const StatRegistry &registry,
                           Tick interval_ticks,
                           std::size_t ring_capacity)
    : registry_(registry), interval_(interval_ticks),
      capacity_(ring_capacity)
{
    panic_if(interval_ == 0, "EpochSampler interval must be > 0");
    panic_if(capacity_ == 0, "EpochSampler ring capacity must be > 0");
}

void
EpochSampler::select(const std::vector<std::string> &names)
{
    selected_.clear();
    resolved_.clear();
    for (const std::string &n : names) {
        const StatRegistry::Entry *found = nullptr;
        for (const auto &e : registry_.entries()) {
            if (e.name == n) {
                found = &e;
                break;
            }
        }
        if (!found) {
            warn("EpochSampler: unknown stat '%s' dropped",
                 n.c_str());
            continue;
        }
        selected_.push_back(n);
        resolved_.push_back(found);
    }
}

void
EpochSampler::start(EventQueue &eq)
{
    if (selected_.empty())
        select(registry_.names());
    running_ = true;
    arm(eq);
}

void
EpochSampler::arm(EventQueue &eq)
{
    eq.scheduleIn(interval_, [this, &eq]() {
        if (!running_)
            return;
        sampleNow(eq.now());
        arm(eq);
    });
}

void
EpochSampler::sampleNow(Tick tick)
{
    if (resolved_.empty() && !selected_.empty())
        return; // selection got invalidated; nothing to read
    Sample s;
    s.tick = tick;
    s.epoch = epoch_;
    s.values.reserve(resolved_.size());
    for (const StatRegistry::Entry *e : resolved_) {
        s.values.push_back(e->counter
                               ? static_cast<double>(*e->counter)
                               : e->probe());
    }
#if PROFESS_DETSAN
    detsan_.mix(s.tick);
    detsan_.mix(s.epoch);
    for (double v : s.values)
        detsan_.mixDouble(v);
#endif
    if (out_) {
        std::fprintf(out_, "{\"tick\":%" PRIu64 ",\"epoch\":%" PRIu64
                           ",\"v\":{",
                     static_cast<std::uint64_t>(tick), epoch_);
        for (std::size_t i = 0; i < selected_.size(); ++i) {
            std::fprintf(out_, "%s%s:%.17g", i ? "," : "",
                         jsonQuote(selected_[i]).c_str(),
                         s.values[i]);
        }
        std::fputs("}}\n", out_);
    }
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(s));
    } else {
        ring_[head_] = std::move(s);
    }
    head_ = (head_ + 1) % capacity_;
    ++epoch_;
}

std::vector<EpochSampler::Sample>
EpochSampler::retained() const
{
    std::vector<Sample> out;
    out.reserve(ring_.size());
    if (ring_.size() < capacity_) {
        out = ring_;
    } else {
        for (std::size_t i = 0; i < capacity_; ++i)
            out.push_back(ring_[(head_ + i) % capacity_]);
    }
    return out;
}

//
// RunManifest and environment probes
//

void
RunManifest::write(std::FILE *f) const
{
    std::fputs("{\n", f);
    std::fprintf(f, "  \"schema\": \"profess-run-manifest-v1\",\n");
    std::fprintf(f, "  \"label\": %s,\n", jsonQuote(label).c_str());
    std::fprintf(f, "  \"policy\": %s,\n", jsonQuote(policy).c_str());
    std::fprintf(f, "  \"workload\": %s,\n",
                 jsonQuote(workload).c_str());
    std::fprintf(f, "  \"seed\": %" PRIu64 ",\n", seed);
    std::fprintf(f, "  \"git_sha\": %s,\n", jsonQuote(gitSha).c_str());
    std::fprintf(f, "  \"started\": %s,\n",
                 jsonQuote(startedIso).c_str());
    std::fprintf(f, "  \"wall_seconds\": %.3f,\n", wallSeconds);
    std::fprintf(f, "  \"peak_rss_kb\": %ld,\n", peakRssKb);
    std::fprintf(f, "  \"config\": %s\n",
                 config.empty() ? "{}" : config.c_str());
    std::fputs("}\n", f);
}

std::string
gitHeadSha(const std::string &repo_dir)
{
    auto slurpLine = [](const std::string &path) -> std::string {
        std::ifstream in(path);
        std::string line;
        if (!in || !std::getline(in, line))
            return "";
        while (!line.empty() &&
               (line.back() == '\n' || line.back() == '\r' ||
                line.back() == ' '))
            line.pop_back();
        return line;
    };

    // Binaries usually run from a build subdirectory, so walk up a
    // few levels until a .git appears.
    std::string root = repo_dir;
    std::string head;
    for (int depth = 0; depth < 6; ++depth) {
        head = slurpLine(root + "/.git/HEAD");
        if (!head.empty())
            break;
        root += "/..";
    }
    if (head.empty())
        return "";
    const std::string &dir = root;
    const std::string refPrefix = "ref: ";
    if (head.compare(0, refPrefix.size(), refPrefix) != 0)
        return head; // detached HEAD: the line is the sha itself

    std::string ref = head.substr(refPrefix.size());
    std::string sha = slurpLine(dir + "/.git/" + ref);
    if (!sha.empty())
        return sha;

    // The ref may only exist in packed-refs.
    std::ifstream packed(dir + "/.git/packed-refs");
    std::string line;
    while (packed && std::getline(packed, line)) {
        if (line.empty() || line[0] == '#' || line[0] == '^')
            continue;
        auto sp = line.find(' ');
        if (sp != std::string::npos && line.substr(sp + 1) == ref)
            return line.substr(0, sp);
    }
    return "";
}

std::string
utcNowIso()
{
    std::time_t t = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&t, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

long
peakRssKb()
{
    struct rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    return ru.ru_maxrss; // Linux reports KiB
}

std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

} // namespace telemetry

} // namespace profess
