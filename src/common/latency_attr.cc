#include "common/latency_attr.hh"

#include "common/logging.hh"
#include "common/telemetry.hh"

namespace profess
{

namespace telemetry
{

namespace
{

const char *
tierName(LatencyAttribution::Tier t)
{
    return t == LatencyAttribution::Tier::M1 ? "m1" : "m2";
}

const char *
kindName(LatencyAttribution::Kind k)
{
    switch (k) {
      case LatencyAttribution::Kind::Read:
        return "read";
      case LatencyAttribution::Kind::Write:
        return "write";
      default:
        return "swap";
    }
}

const char *
phaseName(LatencyAttribution::Phase ph)
{
    switch (ph) {
      case LatencyAttribution::Phase::Queue:
        return "queue";
      case LatencyAttribution::Phase::BankBusy:
        return "bank_busy";
      case LatencyAttribution::Phase::Transfer:
        return "transfer";
      default:
        return "park";
    }
}

} // anonymous namespace

LatencyAttribution::LatencyAttribution(unsigned num_programs,
                                       double bucket_width,
                                       std::size_t num_buckets)
    : numPrograms_(num_programs)
{
    fatal_if(num_programs < 1,
             "LatencyAttribution needs >= 1 program");
    std::size_t total = static_cast<std::size_t>(num_programs) *
                        numTiers * numKinds * numPhases;
    hists_.reserve(total);
    for (std::size_t i = 0; i < total; ++i)
        hists_.emplace_back(bucket_width, num_buckets);
}

std::string
LatencyAttribution::name(const std::string &prefix, unsigned p,
                         Tier t, Kind k, Phase ph)
{
    return prefix + ".p" + std::to_string(p) + "." + tierName(t) +
           "." + kindName(k) + "." + phaseName(ph);
}

void
LatencyAttribution::registerTelemetry(StatRegistry &registry,
                                      const std::string &prefix) const
{
    for (unsigned p = 0; p < numPrograms_; ++p) {
        for (unsigned t = 0; t < numTiers; ++t) {
            auto tier = static_cast<Tier>(t);
            for (Kind k : {Kind::Read, Kind::Write}) {
                for (unsigned ph = 0; ph < numPhases; ++ph) {
                    auto phase = static_cast<Phase>(ph);
                    registry.addHistogram(
                        name(prefix, p, tier, k, phase),
                        histogram(p, tier, k, phase));
                }
            }
            registry.addHistogram(
                name(prefix, p, tier, Kind::Swap, Phase::Park),
                histogram(p, tier, Kind::Swap, Phase::Park));
        }
    }
}

} // namespace telemetry

} // namespace profess
