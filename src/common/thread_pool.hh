/**
 * @file
 * A small work-stealing thread pool for the experiment layer.
 *
 * Each worker owns a deque of tasks: it pushes and pops at the back
 * (LIFO, cache-friendly for nested submission) and victims are
 * stolen from at the front (FIFO, oldest task first).  External
 * submissions are distributed round-robin across the worker deques.
 * Tasks may themselves submit new tasks; `wait()` returns only once
 * every task, including such children, has finished.
 *
 * This is deliberately a *correctness-first* pool: experiment jobs
 * run for milliseconds to minutes, so per-task overhead is
 * irrelevant next to determinism and simplicity.  Result
 * determinism is the caller's job — tasks must write to
 * pre-assigned slots and derive any randomness from their own
 * identity, never from the executing thread or completion order.
 */

#ifndef PROFESS_COMMON_THREAD_POOL_HH
#define PROFESS_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace profess
{

/** Work-stealing fixed-size thread pool. */
class ThreadPool
{
  public:
    /**
     * @param workers Number of worker threads (>= 1).  Use
     *        `defaultWorkers()` to honor the machine size.
     */
    explicit ThreadPool(unsigned workers);

    /** Drains remaining tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue a task.  Safe to call from worker threads (the task
     * lands on the calling worker's own deque).
     */
    void submit(std::function<void()> task);

    /** Block until all submitted tasks (and their children) ran. */
    void wait();

    /** @return number of worker threads. */
    unsigned size() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /** @return `std::thread::hardware_concurrency()`, at least 1. */
    static unsigned defaultWorkers();

  private:
    /** One worker's deque; back = hot end, front = steal end. */
    struct Queue
    {
        std::mutex mu;
        std::deque<std::function<void()>> tasks;
    };

    void workerLoop(unsigned self);
    bool popOrSteal(unsigned self, std::function<void()> &out);

    std::vector<std::unique_ptr<Queue>> queues_;
    std::vector<std::thread> threads_;

    std::mutex mu_;                ///< guards sleep/wake + counters
    std::condition_variable cv_;   ///< workers sleep here
    std::condition_variable idle_; ///< wait() sleeps here
    std::size_t pending_ = 0;      ///< submitted but not finished
    std::size_t nextQueue_ = 0;    ///< round-robin external target
    bool stop_ = false;
};

} // namespace profess

#endif // PROFESS_COMMON_THREAD_POOL_HH
