#include "common/logging.hh"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace profess
{

namespace logging
{

int verbosity = 2;

namespace
{

/**
 * Rate limiting of identical warnings: the first `warnRepeatLimit`
 * occurrences of an exact formatted message print; later repeats are
 * counted silently and summarized once at process exit.
 */
constexpr std::uint64_t warnRepeatLimit = 5;

std::mutex warnMutex;
std::unordered_map<std::string, std::uint64_t> warnCounts;
bool exitHookArmed = false;

void
reportSuppressed()
{
    std::lock_guard<std::mutex> lock(warnMutex);
    // Sort so the summary order does not depend on hash layout.
    std::vector<std::pair<std::string, std::uint64_t>> suppressed;
    for (const auto &kv : warnCounts) {
        if (kv.second > warnRepeatLimit)
            suppressed.emplace_back(kv.first, kv.second);
    }
    std::sort(suppressed.begin(), suppressed.end());
    for (const auto &kv : suppressed) {
        std::fprintf(stderr, "warn: suppressed %llu repeats "
                     "of: %s\n",
                     static_cast<unsigned long long>(
                         kv.second - warnRepeatLimit),
                     kv.first.c_str());
    }
}

void
vreport(const char *prefix, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s", prefix);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

int
parseLevel(const char *s)
{
    if (std::strcmp(s, "0") == 0 || std::strcmp(s, "error") == 0)
        return 0;
    if (std::strcmp(s, "1") == 0 || std::strcmp(s, "warn") == 0)
        return 1;
    if (std::strcmp(s, "2") == 0 || std::strcmp(s, "info") == 0)
        return 2;
    return -1;
}

} // anonymous namespace

void
configureFromEnv()
{
    if (const char *env = std::getenv("PROFESS_LOG")) {
        int level = parseLevel(env);
        if (level >= 0)
            verbosity = level;
        else
            warn("PROFESS_LOG=%s not understood (want 0/1/2 or "
                 "error/warn/info)", env);
    }
}

void
configure(int &argc, char **argv)
{
    configureFromEnv();
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--quiet") == 0 ||
            std::strcmp(a, "-q") == 0) {
            verbosity = 1;
        } else if (std::strcmp(a, "--silent") == 0) {
            verbosity = 0;
        } else if (std::strcmp(a, "--verbose") == 0) {
            verbosity = 2;
        } else if (std::strcmp(a, "--log-level") == 0 &&
                   i + 1 < argc) {
            int level = parseLevel(argv[++i]);
            fatal_if(level < 0, "--log-level wants 0/1/2 or "
                     "error/warn/info, got '%s'", argv[i]);
            verbosity = level;
        } else if (std::strncmp(a, "--log-level=", 12) == 0) {
            int level = parseLevel(a + 12);
            fatal_if(level < 0, "--log-level wants 0/1/2 or "
                     "error/warn/info, got '%s'", a + 12);
            verbosity = level;
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    argv[argc] = nullptr;
}

void
resetWarnHistory()
{
    std::lock_guard<std::mutex> lock(warnMutex);
    warnCounts.clear();
}

std::uint64_t
warnCount(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(warnMutex);
    auto it = warnCounts.find(msg);
    return it == warnCounts.end() ? 0 : it->second;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    if (verbosity < 1)
        return;

    char buf[1024];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);

    std::uint64_t count;
    {
        std::lock_guard<std::mutex> lock(warnMutex);
        count = ++warnCounts[buf];
        if (!exitHookArmed) {
            exitHookArmed = true;
            std::atexit(reportSuppressed);
        }
    }
    if (count > warnRepeatLimit)
        return;
    std::fprintf(stderr, "warn: %s%s\n", buf,
                 count == warnRepeatLimit
                     ? " (further repeats suppressed)"
                     : "");
}

void
informImpl(const char *fmt, ...)
{
    if (verbosity < 2)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info: ", fmt, ap);
    va_end(ap);
}

} // namespace logging

} // namespace profess
