/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global event queue drives the whole simulation.  All
 * components share one clock domain: the memory-controller clock
 * (0.8 GHz by default, Table 8); faster components (cores) convert
 * their own cycles into MC ticks.
 *
 * Events are arbitrary callables.  Two events scheduled for the same
 * tick execute in scheduling order (a monotone sequence number breaks
 * ties), which keeps simulations deterministic.
 *
 * Implementation: a calendar queue (bucketed timing wheel) with a
 * sorted overflow tier, replacing the original binary heap.
 *
 *  - Callbacks are `InlineCallback` (small-buffer optimized): no
 *    heap allocation for captures up to 48 bytes, which covers every
 *    callback in the simulator's steady state.
 *  - Events within `horizon` ticks of now go into one of `numBuckets`
 *    unsorted per-bucket vectors; scheduling is an O(1) push_back.
 *  - Events beyond the horizon go to a small binary-heap overflow
 *    tier and migrate into the wheel once now advances to within a
 *    horizon of them (periodic policy/fold events live here).
 *  - Extraction scans the current bucket for the (when, seq) minimum
 *    — buckets hold only a handful of events in practice — and the
 *    position is cached between pops, so peeks are free.
 *  - A per-bucket occupancy bitmap (one bit per bucket) lets the
 *    minimum scan jump straight to the next populated bucket with a
 *    count-trailing-zeros search instead of walking empty buckets.
 *
 * The ordering contract is exactly the old heap's: the globally
 * minimal (when, seq) pair runs next, so same-tick events preserve
 * FIFO scheduling order and results are bit-identical to the
 * binary-heap kernel (tests/test_kernel_determinism.cc).
 */

#ifndef PROFESS_COMMON_EVENT_HH
#define PROFESS_COMMON_EVENT_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/inline_function.hh"
#include "common/invariant.hh"
#include "common/logging.hh"
#include "common/types.hh"

#if PROFESS_DETSAN
#include "common/detsan.hh"
#endif

namespace profess
{

/** Central time-ordered queue of callbacks. */
class EventQueue
{
  public:
    using Callback = InlineCallback;

    /** @return current simulation time in ticks. */
    Tick now() const { return now_; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when Absolute tick, must be >= now().
     * @param cb Callback to run.
     */
    void
    schedule(Tick when, Callback cb)
    {
        panic_if(when < now_, "scheduling event in the past "
                 "(when=%llu now=%llu)",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(now_));
        std::uint64_t seq = seq_++;
        if (when - now_ < horizon) {
            std::uint32_t b = bucketOf(when);
            buckets_[b].emplace_back(when, seq, std::move(cb));
            markNonEmpty(b);
            ++wheelCount_;
        } else {
            overflow_.emplace_back(when, seq, std::move(cb));
            std::push_heap(overflow_.begin(), overflow_.end(),
                           EntryLater{});
        }
        // The cached minimum stays valid unless the new event runs
        // earlier (same-tick events have larger seq, so ties keep
        // the cache).
        if (peek_.found && when < peek_.when)
            peek_.found = false;
    }

    /** Schedule a callback delay ticks from now. */
    void
    scheduleIn(Cycles delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /** @return true if no events are pending. */
    bool
    empty() const
    {
        return wheelCount_ == 0 && overflow_.empty();
    }

    /** @return number of pending events. */
    std::size_t
    size() const
    {
        return wheelCount_ + overflow_.size();
    }

    /** @return tick of the next pending event (tickNever if none). */
    Tick
    nextTick() const
    {
        if (peek_.found)
            return peek_.when;
        Peek p = scanMin();
        return p.found ? p.when : tickNever;
    }

    /** @return total events executed since construction. */
    std::uint64_t executed() const { return executed_; }

    /** @return events currently stored in the overflow tier
     *  (beyond the wheel horizon; tests and diagnostics). */
    std::size_t overflowSize() const { return overflow_.size(); }

#if PROFESS_DETSAN
    /** @return chained FNV-1a over every extraction's (when, seq)
     *  pair — identical digests mean identical event order. */
    std::uint64_t detsanDigest() const { return detsan_.value(); }
#endif

    /**
     * Pop and execute the next event, advancing time.
     *
     * @return false when the queue was empty.
     */
    bool
    runOne()
    {
        if (!peek_.found) {
            migrateOverflow();
            peek_ = scanMin();
            if (!peek_.found)
                return false;
        }
        Entry e = extract(peek_);
        peek_.found = false;
        PROFESS_AUDIT_ONLY(auditExtraction(e.when, e.seq));
#if PROFESS_DETSAN
        // Fingerprint the extraction order the (when, seq)
        // contract promises; see common/detsan.hh.
        detsan_.mix(e.when);
        detsan_.mix(e.seq);
#endif
        now_ = e.when;
        ++executed_;
        e.cb();
        return true;
    }

    /** Run events until the queue drains. @return events executed. */
    std::uint64_t
    run()
    {
        std::uint64_t n = 0;
        while (runOne())
            ++n;
        return n;
    }

    /**
     * Run events until the queue drains or a stop predicate holds.
     *
     * The predicate is a template parameter so the per-event check
     * inlines instead of going through a type-erased call.
     *
     * @param stop Callable checked after each event.
     * @return Number of events executed.
     */
    template <typename Stop>
    std::uint64_t
    run(Stop &&stop)
    {
        std::uint64_t n = 0;
        while (runOne()) {
            ++n;
            if (stop())
                break;
        }
        return n;
    }

    /**
     * Audit the queue's structural invariants: the wheel count
     * matches the buckets, the occupancy bitmap is exact, every
     * wheel entry lies within [now, now + horizon), no entry is in
     * the past, and the overflow tier is a well-formed (when, seq)
     * min-heap.  Panics on violation.  Callable in any build; the
     * per-extraction ordering check additionally runs on every
     * runOne() in PROFESS_AUDIT builds.
     */
    void
    auditInvariants() const
    {
        std::size_t counted = 0;
        for (std::size_t b = 0; b < numBuckets; ++b) {
            bool bit = (nonEmpty_[b >> 6] &
                        (std::uint64_t(1) << (b & 63))) != 0;
            profess_audit(bit == !buckets_[b].empty(),
                          "occupancy bit of bucket %zu is %d but "
                          "bucket holds %zu events",
                          b, bit ? 1 : 0, buckets_[b].size());
            counted += buckets_[b].size();
            for (const Entry &e : buckets_[b]) {
                profess_audit(e.when >= now_,
                              "wheel event at %llu is in the past "
                              "(now %llu)",
                              static_cast<unsigned long long>(e.when),
                              static_cast<unsigned long long>(now_));
                profess_audit(e.when - now_ < horizon,
                              "wheel event at %llu beyond the "
                              "horizon (now %llu)",
                              static_cast<unsigned long long>(e.when),
                              static_cast<unsigned long long>(now_));
                profess_audit(bucketOf(e.when) == b,
                              "event at %llu filed in bucket %zu",
                              static_cast<unsigned long long>(e.when),
                              b);
            }
        }
        profess_audit(counted == wheelCount_,
                      "wheel count %zu but buckets hold %zu events",
                      wheelCount_, counted);
        profess_audit(
            std::is_heap(overflow_.begin(), overflow_.end(),
                         EntryLater{}),
            "overflow tier is not a (when, seq) min-heap");
        for (const Entry &e : overflow_) {
            profess_audit(e.when >= now_,
                          "overflow event at %llu is in the past "
                          "(now %llu)",
                          static_cast<unsigned long long>(e.when),
                          static_cast<unsigned long long>(now_));
        }
    }

    /** Run events with when <= limit. @return events executed. */
    std::uint64_t
    runUntil(Tick limit)
    {
        std::uint64_t n = 0;
        while (true) {
            if (!peek_.found) {
                migrateOverflow();
                peek_ = scanMin();
            }
            if (!peek_.found || peek_.when > limit)
                break;
            if (runOne())
                ++n;
        }
        if (now_ < limit && empty())
            now_ = limit;
        return n;
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;

        Entry(Tick w, std::uint64_t s, Callback c)
            : when(w), seq(s), cb(std::move(c))
        {
        }
    };

    /** Heap comparator: true if a runs later than b. */
    struct EntryLater
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            return a.when != b.when ? a.when > b.when
                                    : a.seq > b.seq;
        }
    };

    /** Location of the pending minimum. */
    struct Peek
    {
        bool found = false;
        bool fromOverflow = false;
        std::uint32_t bucket = 0;
        std::uint32_t index = 0;
        Tick when = 0;
        std::uint64_t seq = 0;
    };

    // Wheel geometry: 1024 buckets x 16 ticks = 16384-tick horizon.
    // Memory-timing events land within a few hundred ticks of now;
    // only periodic policy/statistics events overflow.
    static constexpr unsigned bucketBits = 10;
    static constexpr unsigned widthBits = 4;
    static constexpr std::size_t numBuckets = std::size_t(1)
                                              << bucketBits;
    static constexpr Tick horizon = Tick(1)
                                    << (bucketBits + widthBits);
    static constexpr std::size_t numWords = numBuckets / 64;

    static std::uint32_t
    bucketOf(Tick when)
    {
        return static_cast<std::uint32_t>((when >> widthBits) &
                                          (numBuckets - 1));
    }

    void
    markNonEmpty(std::uint32_t bucket)
    {
        nonEmpty_[bucket >> 6] |= std::uint64_t(1) << (bucket & 63);
    }

    /**
     * First populated bucket at circular offset >= 0 from `from`.
     *
     * @return bucket index, or numBuckets if the wheel is empty.
     */
    std::uint32_t
    nextNonEmpty(std::uint32_t from) const
    {
        std::uint32_t w = from >> 6;
        std::uint64_t word =
            nonEmpty_[w] & (~std::uint64_t(0) << (from & 63));
        for (std::size_t i = 0; i <= numWords; ++i) {
            if (word != 0) {
                return static_cast<std::uint32_t>(
                    (w << 6) + __builtin_ctzll(word));
            }
            w = (w + 1) & (numWords - 1);
            word = nonEmpty_[w];
        }
        return static_cast<std::uint32_t>(numBuckets);
    }

    /** Move overflow events now within the horizon into the wheel. */
    void
    migrateOverflow()
    {
        while (!overflow_.empty() &&
               overflow_.front().when - now_ < horizon) {
            std::pop_heap(overflow_.begin(), overflow_.end(),
                          EntryLater{});
            Entry e = std::move(overflow_.back());
            overflow_.pop_back();
            std::uint32_t b = bucketOf(e.when);
            buckets_[b].push_back(std::move(e));
            markNonEmpty(b);
            ++wheelCount_;
        }
    }

    /**
     * Locate the globally minimal (when, seq) event.
     *
     * Scans wheel days starting at now's day; every wheel entry
     * satisfies now <= when < now + horizon, so the first day with
     * a matching entry holds the wheel minimum.  The overflow top
     * is compared against the wheel candidate, so the result is the
     * true global minimum even before migration.
     */
    /** Scan one bucket for the minimal entry of one day. */
    void
    scanBucket(std::uint32_t bucket, std::uint64_t day,
               Peek &best) const
    {
        const std::vector<Entry> &b = buckets_[bucket];
        for (std::size_t i = 0; i < b.size(); ++i) {
            const Entry &e = b[i];
            if ((e.when >> widthBits) != day)
                continue; // an entry one revolution ahead
            if (!best.found || e.when < best.when ||
                (e.when == best.when && e.seq < best.seq)) {
                best.found = true;
                best.bucket = bucket;
                best.index = static_cast<std::uint32_t>(i);
                best.when = e.when;
                best.seq = e.seq;
            }
        }
    }

    Peek
    scanMin() const
    {
        Peek best;
        if (wheelCount_ != 0) {
            // Every wheel entry satisfies now <= when < now+horizon,
            // so the first populated bucket circularly ahead of
            // now's own bucket holds the wheel minimum -- except
            // when now's bucket contains only entries one full
            // revolution ahead (day base+numBuckets), in which case
            // a second probe starting one bucket later finds it.
            std::uint32_t sb = bucketOf(now_);
            std::uint64_t base = now_ >> widthBits;
            std::uint32_t b1 = nextNonEmpty(sb);
            if (b1 != numBuckets) {
                scanBucket(b1, base + ((b1 - sb) & (numBuckets - 1)),
                           best);
                if (!best.found) {
                    // Only possible for b1 == sb: its entries belong
                    // to the next revolution of the wheel.
                    std::uint32_t b2 =
                        nextNonEmpty((b1 + 1) & (numBuckets - 1));
                    if (b2 != numBuckets) {
                        std::uint64_t off =
                            1 + ((b2 - sb - 1) & (numBuckets - 1));
                        scanBucket(b2, base + off, best);
                    }
                }
            }
            panic_if(!best.found,
                     "calendar wheel lost %llu events",
                     static_cast<unsigned long long>(wheelCount_));
        }
        if (!overflow_.empty()) {
            const Entry &t = overflow_.front();
            if (!best.found || t.when < best.when ||
                (t.when == best.when && t.seq < best.seq)) {
                best.found = true;
                best.fromOverflow = true;
                best.when = t.when;
                best.seq = t.seq;
            }
        }
        return best;
    }

    /** Remove and return the event at a peeked location. */
    Entry
    extract(const Peek &p)
    {
        if (p.fromOverflow) {
            std::pop_heap(overflow_.begin(), overflow_.end(),
                          EntryLater{});
            Entry e = std::move(overflow_.back());
            overflow_.pop_back();
            return e;
        }
        std::vector<Entry> &b = buckets_[p.bucket];
        Entry e = std::move(b[p.index]);
        if (p.index + 1 != b.size())
            b[p.index] = std::move(b.back());
        b.pop_back();
        if (b.empty()) {
            nonEmpty_[p.bucket >> 6] &=
                ~(std::uint64_t(1) << (p.bucket & 63));
        }
        --wheelCount_;
        return e;
    }

    /**
     * Audit one extraction against the (when, seq) ordering
     * contract: strictly increasing seq within a tick, never a tick
     * before the previous extraction.  Only called (and the last-
     * extraction state only updated) in PROFESS_AUDIT builds.
     */
    void
    auditExtraction(Tick when, std::uint64_t seq)
    {
        profess_audit(!hasExtracted_ || when > lastWhen_ ||
                          (when == lastWhen_ && seq > lastSeq_),
                      "(when, seq) ordering violated: (%llu, %llu) "
                      "after (%llu, %llu)",
                      static_cast<unsigned long long>(when),
                      static_cast<unsigned long long>(seq),
                      static_cast<unsigned long long>(lastWhen_),
                      static_cast<unsigned long long>(lastSeq_));
        hasExtracted_ = true;
        lastWhen_ = when;
        lastSeq_ = seq;
    }

    std::vector<std::vector<Entry>> buckets_{numBuckets};
    /** One occupancy bit per bucket (see nextNonEmpty). */
    std::array<std::uint64_t, numWords> nonEmpty_{};
    std::vector<Entry> overflow_; ///< min-heap by (when, seq)
    std::size_t wheelCount_ = 0;
    Peek peek_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
    // Ordering-audit state; written only in PROFESS_AUDIT builds.
    Tick lastWhen_ = 0;
    std::uint64_t lastSeq_ = 0;
    bool hasExtracted_ = false;
#if PROFESS_DETSAN
    detsan::Digest detsan_; ///< extraction-order fingerprint
#endif
};

} // namespace profess

#endif // PROFESS_COMMON_EVENT_HH
