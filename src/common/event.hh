/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global event queue drives the whole simulation.  All
 * components share one clock domain: the memory-controller clock
 * (0.8 GHz by default, Table 8); faster components (cores) convert
 * their own cycles into MC ticks.
 *
 * Events are arbitrary callables.  Two events scheduled for the same
 * tick execute in scheduling order (a monotone sequence number breaks
 * ties), which keeps simulations deterministic.
 */

#ifndef PROFESS_COMMON_EVENT_HH
#define PROFESS_COMMON_EVENT_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace profess
{

/** Central time-ordered queue of callbacks. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** @return current simulation time in ticks. */
    Tick now() const { return now_; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when Absolute tick, must be >= now().
     * @param cb Callback to run.
     */
    void
    schedule(Tick when, Callback cb)
    {
        panic_if(when < now_, "scheduling event in the past "
                 "(when=%llu now=%llu)",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(now_));
        heap_.push(Entry{when, seq_++, std::move(cb)});
    }

    /** Schedule a callback delay ticks from now. */
    void
    scheduleIn(Cycles delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /** @return true if no events are pending. */
    bool empty() const { return heap_.empty(); }

    /** @return number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /** @return tick of the next pending event (tickNever if none). */
    Tick
    nextTick() const
    {
        return heap_.empty() ? tickNever : heap_.top().when;
    }

    /**
     * Pop and execute the next event, advancing time.
     *
     * @return false when the queue was empty.
     */
    bool
    runOne()
    {
        if (heap_.empty())
            return false;
        // Move the entry out before popping so the callback can
        // safely schedule further events.
        Entry e = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        now_ = e.when;
        e.cb();
        return true;
    }

    /**
     * Run events until the queue drains or a stop predicate holds.
     *
     * @param stop Checked after each event; empty means "never stop".
     * @return Number of events executed.
     */
    std::uint64_t
    run(const std::function<bool()> &stop = {})
    {
        std::uint64_t n = 0;
        while (runOne()) {
            ++n;
            if (stop && stop())
                break;
        }
        return n;
    }

    /** Run events with when <= limit. @return events executed. */
    std::uint64_t
    runUntil(Tick limit)
    {
        std::uint64_t n = 0;
        while (!heap_.empty() && heap_.top().when <= limit && runOne())
            ++n;
        if (now_ < limit && heap_.empty())
            now_ = limit;
        return n;
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>>
        heap_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
};

} // namespace profess

#endif // PROFESS_COMMON_EVENT_HH
