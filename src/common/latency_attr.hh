/**
 * @file
 * Request-lifecycle latency attribution (DESIGN.md Sec. 4g).
 *
 * ProFess argues fairness and performance can be co-managed, but the
 * end-of-run counters cannot say *where* a slowed-down program's
 * cycles went.  This module accumulates per-(program x tier x
 * access-kind) histograms of the phases a request passes through:
 *
 *   queue     - arrival at the channel until commit (FR-FCFS wait)
 *   bank_busy - commit until the data burst starts (bank timing,
 *               refresh, bus arbitration)
 *   transfer  - the data burst itself
 *   park      - time parked in the hybrid controller behind an STC
 *               fill (kind read/write) or an in-flight swap of the
 *               same group (kind swap)
 *
 * The attribution object is owned by the telemetry bundle and handed
 * to channels and the hybrid controller as a raw pointer; a null
 * pointer costs one PROFESS_UNLIKELY branch per request, matching
 * the observational-only contract (off-mode bit-identical, see
 * tests/test_telemetry.cc).  All times are in MC cycles.
 */

#ifndef PROFESS_COMMON_LATENCY_ATTR_HH
#define PROFESS_COMMON_LATENCY_ATTR_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace profess
{

namespace telemetry
{

class StatRegistry;

/** Per-program, per-tier, per-kind latency phase histograms. */
class LatencyAttribution
{
  public:
    enum class Tier : unsigned { M1 = 0, M2 = 1 };
    enum class Kind : unsigned { Read = 0, Write = 1, Swap = 2 };
    enum class Phase : unsigned
    {
        Queue = 0,
        BankBusy = 1,
        Transfer = 2,
        Park = 3
    };

    static constexpr unsigned numTiers = 2;
    static constexpr unsigned numKinds = 3;
    static constexpr unsigned numPhases = 4;

    /**
     * @param num_programs Programs to attribute (>= 1).
     * @param bucket_width Histogram bucket width in MC cycles.
     * @param num_buckets Regular buckets per histogram.
     */
    explicit LatencyAttribution(unsigned num_programs,
                                double bucket_width = 64.0,
                                std::size_t num_buckets = 64);

    /** @return number of programs covered. */
    unsigned numPrograms() const { return numPrograms_; }

    /** Record one span; out-of-range programs are dropped. */
    void
    record(ProgramId p, Tier t, Kind k, Phase ph, double cycles)
    {
        if (p < 0 || static_cast<unsigned>(p) >= numPrograms_)
            return;
        hists_[index(static_cast<unsigned>(p), t, k, ph)].add(cycles);
    }

    /** @return the histogram of one (program, tier, kind, phase). */
    const Histogram &
    histogram(unsigned p, Tier t, Kind k, Phase ph) const
    {
        return hists_[index(p, t, k, ph)];
    }

    /**
     * Register the meaningful combinations under
     * "<prefix>.p<i>.<m1|m2>.<read|write|swap>.<phase>".
     *
     * Read and write kinds expose all four phases; the swap kind
     * only parks (its device time is accounted by the channel's
     * swap model, not per program), so it exposes park alone.
     */
    void registerTelemetry(StatRegistry &registry,
                           const std::string &prefix = "latency") const;

    /** @return the dotted name used by registerTelemetry. */
    static std::string name(const std::string &prefix, unsigned p,
                            Tier t, Kind k, Phase ph);

  private:
    std::size_t
    index(unsigned p, Tier t, Kind k, Phase ph) const
    {
        return ((static_cast<std::size_t>(p) * numTiers +
                 static_cast<std::size_t>(t)) *
                    numKinds +
                static_cast<std::size_t>(k)) *
                   numPhases +
               static_cast<std::size_t>(ph);
    }

    unsigned numPrograms_;
    std::vector<Histogram> hists_;
};

} // namespace telemetry

} // namespace profess

#endif // PROFESS_COMMON_LATENCY_ATTR_HH
