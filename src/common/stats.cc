#include "common/stats.hh"

#include <algorithm>

#include "common/logging.hh"

namespace profess
{

Histogram::Histogram(double bucket_width, std::size_t num_buckets)
    : width_(bucket_width), buckets_(num_buckets + 1, 0)
{
    fatal_if(num_buckets < 1, "Histogram needs >= 1 bucket");
    fatal_if(!(bucket_width > 0.0),
             "Histogram bucket width must be > 0 (got %g)",
             bucket_width);
    // Bucket edges are 0, w, 2w, ...: strictly increasing as long
    // as adding one width to the largest edge still moves it (a
    // denormal width under a large edge would collapse edges).
    double last = width_ * static_cast<double>(num_buckets - 1);
    fatal_if(last + width_ <= last,
             "Histogram bucket edges not monotone "
             "(width %g too small for %zu buckets)",
             bucket_width, num_buckets);
}

void
Histogram::dumpJson(std::FILE *f) const
{
    std::fprintf(f, "{\"bucket_width\":%.17g,\"underflow\":%llu,"
                 "\"overflow\":%llu,\"counts\":[",
                 width_,
                 static_cast<unsigned long long>(underflow_),
                 static_cast<unsigned long long>(overflow()));
    for (std::size_t i = 0; i + 1 < buckets_.size(); ++i) {
        std::fprintf(f, "%s%llu", i ? "," : "",
                     static_cast<unsigned long long>(buckets_[i]));
    }
    std::fprintf(f, "],\"count\":%llu,\"sum\":%.17g,\"mean\":%.17g}\n",
                 static_cast<unsigned long long>(stat_.count()),
                 sum_, stat_.mean());
}

void
Histogram::dumpText(std::FILE *f) const
{
    std::fprintf(f, "%12s %12s\n", "edge", "count");
    if (underflow_ != 0) {
        std::fprintf(f, "%12s %12llu\n", "< 0",
                     static_cast<unsigned long long>(underflow_));
    }
    for (std::size_t i = 0; i + 1 < buckets_.size(); ++i) {
        std::fprintf(f, "%12g %12llu\n",
                     width_ * static_cast<double>(i + 1),
                     static_cast<unsigned long long>(buckets_[i]));
    }
    std::fprintf(f, "%12s %12llu\n", "overflow",
                 static_cast<unsigned long long>(overflow()));
}

double
Histogram::quantile(double q) const
{
    std::uint64_t total = stat_.count();
    if (total == 0)
        return 0.0;
    auto target = static_cast<std::uint64_t>(q * total);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen > target)
            return width_ * static_cast<double>(i + 1);
    }
    return width_ * static_cast<double>(buckets_.size());
}

namespace
{

/** Linear-interpolated order statistic of a sorted series. */
double
interpQuantile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    if (sorted.size() == 1)
        return sorted[0];
    double pos = q * static_cast<double>(sorted.size() - 1);
    auto lo = static_cast<std::size_t>(pos);
    double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= sorted.size())
        return sorted.back();
    return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

} // anonymous namespace

double
geometricMean(const std::vector<double> &data)
{
    if (data.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : data) {
        panic_if(x <= 0.0, "geometricMean requires positive data");
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(data.size()));
}

BoxSummary
boxSummary(std::vector<double> data)
{
    BoxSummary s;
    if (data.empty())
        return s;
    std::sort(data.begin(), data.end());
    s.n = data.size();
    s.min = data.front();
    s.max = data.back();
    s.q1 = interpQuantile(data, 0.25);
    s.median = interpQuantile(data, 0.50);
    s.q3 = interpQuantile(data, 0.75);
    s.gmean = geometricMean(data);
    return s;
}

} // namespace profess
