#include "common/stats.hh"

#include <algorithm>

#include "common/logging.hh"

namespace profess
{

double
Histogram::quantile(double q) const
{
    std::uint64_t total = stat_.count();
    if (total == 0)
        return 0.0;
    auto target = static_cast<std::uint64_t>(q * total);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen > target)
            return width_ * static_cast<double>(i + 1);
    }
    return width_ * static_cast<double>(buckets_.size());
}

namespace
{

/** Linear-interpolated order statistic of a sorted series. */
double
interpQuantile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    if (sorted.size() == 1)
        return sorted[0];
    double pos = q * static_cast<double>(sorted.size() - 1);
    auto lo = static_cast<std::size_t>(pos);
    double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= sorted.size())
        return sorted.back();
    return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

} // anonymous namespace

double
geometricMean(const std::vector<double> &data)
{
    if (data.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : data) {
        panic_if(x <= 0.0, "geometricMean requires positive data");
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(data.size()));
}

BoxSummary
boxSummary(std::vector<double> data)
{
    BoxSummary s;
    if (data.empty())
        return s;
    std::sort(data.begin(), data.end());
    s.n = data.size();
    s.min = data.front();
    s.max = data.back();
    s.q1 = interpQuantile(data, 0.25);
    s.median = interpQuantile(data, 0.50);
    s.q3 = interpQuantile(data, 0.75);
    s.gmean = geometricMean(data);
    return s;
}

} // namespace profess
