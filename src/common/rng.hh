/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * A small PCG32 implementation (O'Neill, pcg-random.org) so that every
 * simulation is reproducible from a seed, independent of the standard
 * library implementation.  Each workload program instance owns its own
 * stream, so multi-program workloads are order-independent.
 */

#ifndef PROFESS_COMMON_RNG_HH
#define PROFESS_COMMON_RNG_HH

#include <cstdint>
#include <string_view>

namespace profess
{

/**
 * SplitMix64 finalizer (Steele et al.): bijective 64-bit mixing,
 * the standard seed-spreading function.  Used to derive
 * statistically independent per-job seeds from structured inputs
 * (base seed, policy, workload, sweep point) so results depend only
 * on the job's identity — never on thread count or schedule.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Fold a 64-bit value into a hash (order-sensitive). */
constexpr std::uint64_t
hashCombine(std::uint64_t h, std::uint64_t v)
{
    return mix64(h ^ mix64(v));
}

/** Fold a string into a hash (FNV-1a, then mixed). */
constexpr std::uint64_t
hashCombine(std::uint64_t h, std::string_view s)
{
    std::uint64_t f = 1469598103934665603ull; // FNV offset basis
    for (char c : s) {
        f ^= static_cast<unsigned char>(c);
        f *= 1099511628211ull; // FNV prime
    }
    return hashCombine(h, f);
}

/** PCG32 pseudo-random generator: 64-bit state, 32-bit output. */
class Rng
{
  public:
    /**
     * @param seed Initial state seed.
     * @param stream Stream selector; different streams are independent.
     */
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bull,
                 std::uint64_t stream = 0xda3e39cb94b95bdbull)
    {
        inc_ = (stream << 1u) | 1u;
        state_ = 0u;
        next();
        state_ += seed;
        next();
    }

    /** @return next raw 32-bit value. */
    std::uint32_t
    next()
    {
        std::uint64_t old = state_;
        state_ = old * 6364136223846793005ull + inc_;
        std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
    }

    /** @return uniform integer in [0, bound); bound must be > 0. */
    std::uint32_t
    below(std::uint32_t bound)
    {
        // Lemire-style rejection-free-ish bounded generation with
        // rejection of the biased region.
        std::uint32_t threshold = (-bound) % bound;
        for (;;) {
            std::uint32_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** @return uniform 64-bit integer in [0, bound). */
    std::uint64_t
    below64(std::uint64_t bound)
    {
        if (bound <= 0xffffffffull)
            return below(static_cast<std::uint32_t>(bound));
        // Compose two 32-bit draws; slight bias is irrelevant for
        // workload generation at these magnitudes.
        std::uint64_t r =
            (static_cast<std::uint64_t>(next()) << 32) | next();
        return r % bound;
    }

    /** @return uniform double in [0, 1). */
    double
    uniform()
    {
        return next() * (1.0 / 4294967296.0);
    }

    /**
     * Geometric inter-arrival sample.
     *
     * @param p Success probability per trial, 0 < p <= 1.
     * @return Number of failures before the first success (>= 0).
     */
    std::uint64_t
    geometric(double p)
    {
        if (p >= 1.0)
            return 0;
        double u = uniform();
        // Avoid log(0).
        if (u <= 0.0)
            u = 1e-12;
        double v = 1.0 - p;
        // floor(log(u) / log(1-p))
        double g = __builtin_log(u) / __builtin_log(v);
        return g < 0 ? 0 : static_cast<std::uint64_t>(g);
    }

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

} // namespace profess

#endif // PROFESS_COMMON_RNG_HH
