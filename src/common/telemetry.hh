/**
 * @file
 * Simulation observability layer (gem5-style stat dumps plus
 * time-series sampling and wall-clock profiling).
 *
 * StatRegistry  - hierarchical registry of component statistics.
 *                 Components register their StatSet (or individual
 *                 probe lambdas) under a stable dotted prefix
 *                 ("hybrid.ch0.stc"); the registry dumps everything
 *                 uniformly as JSON or CSV.
 * EpochSampler  - scheduled on the event queue; every N ticks it
 *                 snapshots a selected subset of probes into an
 *                 in-memory ring and (optionally) appends a JSONL
 *                 line, producing per-run time-series of the paper's
 *                 dynamic quantities (SF_A/SF_B, swap counters, STC
 *                 hit rate, queue depths).
 * TimerSlot /   - wall-clock profiling of host-side hot paths.  A
 * ScopedTimer     null slot pointer compiles the instrumentation
 *                 down to one predictable branch; an active slot
 *                 accumulates nanoseconds + call counts.
 * RunManifest   - reproducibility record of one run (config
 *                 fingerprint inputs, seed, git sha, wall-clock,
 *                 peak RSS) written as manifest.json.
 *
 * Everything here is off by default and allocation-free on the
 * simulation hot path when off; see DESIGN.md Sec. 4d.
 */

#ifndef PROFESS_COMMON_TELEMETRY_HH
#define PROFESS_COMMON_TELEMETRY_HH

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

#if PROFESS_DETSAN
#include "common/detsan.hh"
#endif

/** Branch-prediction hint for the ~always-off telemetry checks. */
#ifndef PROFESS_UNLIKELY
#define PROFESS_UNLIKELY(x) __builtin_expect(!!(x), 0)
#endif

namespace profess
{

class EventQueue;

namespace telemetry
{

/**
 * A named source of scalar statistics: either a live pointer into a
 * component's StatSet or a probe lambda computing a derived value
 * (hit rates, SF factors) on demand.
 */
class StatRegistry
{
  public:
    /** One resolvable statistic. */
    struct Entry
    {
        std::string name;            ///< full dotted name
        bool isCounter = false;      ///< integer counter vs value
        const std::uint64_t *counter = nullptr;
        std::function<double()> probe; ///< used when counter==nullptr
    };

    /** One registered distribution (see addHistogram). */
    struct HistogramEntry
    {
        std::string name;            ///< full dotted name
        const Histogram *histogram = nullptr;
    };

    /**
     * Register every counter and value of a StatSet under a prefix.
     *
     * The StatSet must outlive the registry and must not gain new
     * counters afterwards (all repo components create their counters
     * at construction).  Names become "<prefix>.<counter>".
     */
    void addSet(const std::string &prefix, const StatSet &set);

    /** Register a single derived-value probe. */
    void addProbe(const std::string &name, std::function<double()> fn);

    /** Register a single live counter reference. */
    void addCounter(const std::string &name, const std::uint64_t &c);

    /**
     * Register a whole distribution under a dotted name.
     *
     * The histogram must outlive the registry.  Besides recording
     * the pointer for bucket-level exporters (OpenMetrics), this
     * derives two scalar probes — "<name>.count" and "<name>.sum" —
     * so epoch sampling and JSON dumps see the distribution's
     * totals without new plumbing.
     */
    void addHistogram(const std::string &name, const Histogram &h);

    /** @return all registered distributions, sorted by name. */
    const std::vector<HistogramEntry> &histograms() const;

    /** @return number of registered entries. */
    std::size_t size() const { return entries_.size(); }

    /** @return all entries, sorted by name. */
    const std::vector<Entry> &entries() const;

    /** @return current value of a registered name (0 if absent). */
    double value(const std::string &name) const;

    /** @return true if `name` is registered. */
    bool contains(const std::string &name) const;

    /** @return all registered dotted names, sorted. */
    std::vector<std::string> names() const;

    /** Dump every statistic as one JSON object. */
    void dumpJson(std::FILE *f) const;

    /** Dump every statistic as "name,value" CSV rows. */
    void dumpCsv(std::FILE *f) const;

  private:
    /** Append after checking name uniqueness (panics on dupes). */
    void addEntry(Entry e);

    mutable std::vector<Entry> entries_;
    mutable std::vector<HistogramEntry> histograms_;
    mutable bool sorted_ = true;
    mutable bool histogramsSorted_ = true;
    std::unordered_set<std::string> names_; ///< O(1) dup detection
};

/**
 * One wall-clock profiling accumulator (see ScopedTimer).
 *
 * Spans are call-sampled: every call is counted, but only one in
 * `samplePeriod` reads the clock, so the instrumented hot paths pay
 * two steady-clock reads on ~1.5% of calls instead of all of them.
 * `ns` accumulates over the sampled calls only; estimatedNs()
 * extrapolates to the full call count.
 */
struct TimerSlot
{
    std::uint64_t ns = 0;      ///< wall ns over the sampled calls
    std::uint64_t calls = 0;   ///< every call through the slot
    std::uint64_t sampled = 0; ///< calls actually timed

    /** Call-sampling period (power of two). */
    static constexpr std::uint64_t samplePeriod = 64;

    /** @return extrapolated total wall ns across all calls. */
    double
    estimatedNs() const
    {
        return sampled == 0 ? 0.0
                            : static_cast<double>(ns) *
                                  static_cast<double>(calls) /
                                  static_cast<double>(sampled);
    }
};

/**
 * RAII wall-clock span.  With a null slot the constructor and
 * destructor are a single predictable branch each; with a live slot
 * every call is counted and one in TimerSlot::samplePeriod is timed.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(TimerSlot *slot) : slot_(slot)
    {
        if (PROFESS_UNLIKELY(slot_ != nullptr)) {
            if ((slot_->calls++ & (TimerSlot::samplePeriod - 1)) !=
                0) {
                slot_ = nullptr; // counted but not timed
            } else {
                start_ = std::chrono::steady_clock::now();
            }
        }
    }

    ~ScopedTimer()
    {
        if (PROFESS_UNLIKELY(slot_ != nullptr)) {
            auto end = std::chrono::steady_clock::now();
            slot_->ns += static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    end - start_)
                    .count());
            ++slot_->sampled;
        }
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    TimerSlot *slot_;
    std::chrono::steady_clock::time_point start_;
};

/**
 * Periodic snapshotting of selected registry entries.
 *
 * The sampler keeps the most recent `ringCapacity` epochs in memory
 * (tests and in-process consumers) and, when given a file, appends
 * one JSONL object per epoch: {"tick":T,"epoch":K,"v":{name:value}}.
 *
 * Scheduling is cooperative: the owner calls start(eq) once running
 * begins and stop() before tearing down; the sampler re-arms itself
 * on the event queue every `intervalTicks`.  Sampling only reads
 * statistics, so enabling it never changes simulation results.
 */
class EpochSampler
{
  public:
    /** One recorded epoch. */
    struct Sample
    {
        Tick tick = 0;
        std::uint64_t epoch = 0;
        std::vector<double> values; ///< parallel to selection()
    };

    /**
     * @param registry Source of values (must outlive the sampler).
     * @param interval_ticks Sampling period in MC ticks (>0).
     * @param ring_capacity Epochs retained in memory (>0).
     */
    EpochSampler(const StatRegistry &registry, Tick interval_ticks,
                 std::size_t ring_capacity = 1024);

    /**
     * Select the names to sample (default: every registered entry).
     * Unknown names are dropped with a warning.  Must be called
     * before start().
     */
    void select(const std::vector<std::string> &names);

    /** @return the selected names, in sampling order. */
    const std::vector<std::string> &selection() const
    {
        return selected_;
    }

    /** Stream epochs to a JSONL file (not owned; may be null). */
    void setOutput(std::FILE *f) { out_ = f; }

    /** Begin sampling on the given event queue. */
    void start(EventQueue &eq);

    /** Stop sampling (pending event becomes a no-op). */
    void stop() { running_ = false; }

    /** Take one snapshot immediately (also used internally). */
    void sampleNow(Tick tick);

    /** @return epochs recorded so far (including overwritten). */
    std::uint64_t epochs() const { return epoch_; }

    /** @return retained samples, oldest first. */
    std::vector<Sample> retained() const;

#if PROFESS_DETSAN
    /** @return chained FNV-1a over every epoch's tick, index and
     *  sampled values — the statistics-trajectory fingerprint. */
    std::uint64_t detsanDigest() const { return detsan_.value(); }
#endif

  private:
    void arm(EventQueue &eq);

    const StatRegistry &registry_;
    Tick interval_;
    std::size_t capacity_;
    std::vector<std::string> selected_;
    std::vector<const StatRegistry::Entry *> resolved_;
    std::vector<Sample> ring_;
    std::size_t head_ = 0;   ///< next ring slot to write
    std::uint64_t epoch_ = 0;
    bool running_ = false;
    std::FILE *out_ = nullptr;
#if PROFESS_DETSAN
    detsan::Digest detsan_; ///< per-epoch state fingerprint
#endif
};

/** Reproducibility record of one run. */
struct RunManifest
{
    std::string label;       ///< run identity (mix_policy)
    std::string policy;
    std::string workload;
    std::uint64_t seed = 0;
    std::string gitSha;      ///< resolved at collection time
    std::string config;      ///< pre-rendered JSON object
    double wallSeconds = 0.0;
    long peakRssKb = 0;
    std::string startedIso;  ///< UTC wall-clock start

    /** Write as manifest.json-style object. */
    void write(std::FILE *f) const;
};

/** @return HEAD commit sha of `repo_dir` ("" if not resolvable).
 *  Reads .git/HEAD directly; no subprocess. */
std::string gitHeadSha(const std::string &repo_dir = ".");

/** @return current UTC time formatted as ISO-8601. */
std::string utcNowIso();

/** @return ru_maxrss of the process in KiB. */
long peakRssKb();

/** JSON string escaping for the writers above (quotes added). */
std::string jsonQuote(const std::string &s);

} // namespace telemetry

} // namespace profess

#endif // PROFESS_COMMON_TELEMETRY_HH
