#include "common/thread_pool.hh"

#include <chrono>

#include "common/logging.hh"

namespace profess
{

namespace
{

/** Which worker (if any) the current thread is; -1 = external. */
thread_local int tls_worker = -1;

} // anonymous namespace

unsigned
ThreadPool::defaultWorkers()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(unsigned workers)
{
    fatal_if(workers == 0, "ThreadPool needs at least one worker");
    queues_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        queues_.push_back(std::make_unique<Queue>());
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this, i]() { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    // A worker pushes to its own deque (depth-first, no contention
    // with other submitters); external callers round-robin.
    std::size_t target;
    if (tls_worker >= 0 &&
        static_cast<std::size_t>(tls_worker) < queues_.size() &&
        threads_[tls_worker].get_id() ==
            std::this_thread::get_id()) {
        target = static_cast<std::size_t>(tls_worker);
    } else {
        std::lock_guard<std::mutex> lk(mu_);
        target = nextQueue_;
        nextQueue_ = (nextQueue_ + 1) % queues_.size();
    }
    {
        std::lock_guard<std::mutex> lk(queues_[target]->mu);
        queues_[target]->tasks.push_back(std::move(task));
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        ++pending_;
    }
    cv_.notify_one();
}

bool
ThreadPool::popOrSteal(unsigned self, std::function<void()> &out)
{
    // Own deque first, hot end.
    {
        Queue &q = *queues_[self];
        std::lock_guard<std::mutex> lk(q.mu);
        if (!q.tasks.empty()) {
            out = std::move(q.tasks.back());
            q.tasks.pop_back();
            return true;
        }
    }
    // Steal the oldest task of the first non-empty victim.  The
    // scan order is deterministic but the victim's content is not;
    // callers must not depend on execution order (see header).
    for (std::size_t d = 1; d < queues_.size(); ++d) {
        Queue &q = *queues_[(self + d) % queues_.size()];
        std::lock_guard<std::mutex> lk(q.mu);
        if (!q.tasks.empty()) {
            out = std::move(q.tasks.front());
            q.tasks.pop_front();
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(unsigned self)
{
    tls_worker = static_cast<int>(self);
    for (;;) {
        std::function<void()> task;
        if (popOrSteal(self, task)) {
            task();
            std::lock_guard<std::mutex> lk(mu_);
            if (--pending_ == 0)
                idle_.notify_all();
            continue;
        }
        std::unique_lock<std::mutex> lk(mu_);
        // Re-check under the lock: a submit may have raced with the
        // failed scan, and its notify would have been missed.
        bool maybe_work = false;
        for (const auto &q : queues_) {
            std::lock_guard<std::mutex> qlk(q->mu);
            if (!q->tasks.empty()) {
                maybe_work = true;
                break;
            }
        }
        if (maybe_work)
            continue;
        if (stop_)
            return;
        cv_.wait(lk);
    }
}

void
ThreadPool::wait()
{
    // External threads help drain the queues instead of blocking
    // idle; this also makes wait() safe at any pool size.
    for (;;) {
        std::function<void()> task;
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (pending_ == 0)
                return;
        }
        bool got = false;
        for (std::size_t i = 0; i < queues_.size() && !got; ++i) {
            Queue &q = *queues_[i];
            std::lock_guard<std::mutex> lk(q.mu);
            if (!q.tasks.empty()) {
                task = std::move(q.tasks.front());
                q.tasks.pop_front();
                got = true;
            }
        }
        if (got) {
            task();
            std::lock_guard<std::mutex> lk(mu_);
            if (--pending_ == 0)
                idle_.notify_all();
        } else {
            std::unique_lock<std::mutex> lk(mu_);
            if (pending_ == 0)
                return;
            idle_.wait_for(lk, std::chrono::milliseconds(1));
        }
    }
}

} // namespace profess
