/**
 * @file
 * Fundamental scalar types used across the ProFess simulator.
 *
 * The conventions follow the paper's system model (Table 8):
 * addresses are byte addresses in a flat original physical address
 * space; time is kept in memory-controller cycles (0.8 GHz by
 * default) and converted from nanoseconds at configuration time.
 */

#ifndef PROFESS_COMMON_TYPES_HH
#define PROFESS_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace profess
{

/** Byte address in a physical or virtual address space. */
using Addr = std::uint64_t;

/** Simulation time in memory-controller clock cycles. */
using Tick = std::uint64_t;

/** Number of clock cycles (duration). */
using Cycles = std::uint64_t;

/** Identifier of a program (equivalently, a core; see Sec. 3.1.1). */
using ProgramId = std::int32_t;

/** Identifier of a memory channel. */
using ChannelId = std::uint32_t;

/** Sentinel for "no program". */
constexpr ProgramId invalidProgram = -1;

/** Sentinel tick meaning "never" / unscheduled. */
constexpr Tick tickNever = std::numeric_limits<Tick>::max();

/** Common power-of-two sizes. */
constexpr std::uint64_t KiB = 1024ull;
constexpr std::uint64_t MiB = 1024ull * KiB;
constexpr std::uint64_t GiB = 1024ull * MiB;

/**
 * Integer ceiling division.
 *
 * @param a Dividend.
 * @param b Divisor, must be non-zero.
 * @return ceil(a / b).
 */
constexpr std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** @return true if x is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** @return floor(log2(x)); x must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t x)
{
    unsigned l = 0;
    while (x >>= 1)
        ++l;
    return l;
}

/** @return ceil(log2(x)); x must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t x)
{
    return isPowerOfTwo(x) ? floorLog2(x) : floorLog2(x) + 1;
}

} // namespace profess

#endif // PROFESS_COMMON_TYPES_HH
