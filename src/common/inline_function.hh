/**
 * @file
 * Small-buffer-optimized, move-only callable.
 *
 * The simulation kernel schedules millions of short-lived callbacks
 * per run; `std::function` heap-allocates any capture larger than
 * its ~16-byte internal buffer, which dominated the event hot path.
 * `InlineFunction` stores captures up to `BufBytes` (48 by default)
 * inline and only falls back to the heap beyond that, so the
 * steady-state simulation path performs zero allocations.
 *
 * Semantics:
 *  - move-only (callbacks own their captures exactly once);
 *  - an engaged target is invoked through one indirect call;
 *  - moved-from objects are empty; invoking an empty function
 *    panics (callers guard with `if (fn)` as with std::function).
 *
 * The inline path additionally requires the target to be
 * nothrow-move-constructible (true for every capture in this
 * codebase); throwing-move targets use the heap path so the
 * move constructor can stay noexcept.
 */

#ifndef PROFESS_COMMON_INLINE_FUNCTION_HH
#define PROFESS_COMMON_INLINE_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "common/logging.hh"

namespace profess
{

template <typename Sig, std::size_t BufBytes = 48>
class InlineFunction;

template <typename R, typename... Args, std::size_t BufBytes>
class InlineFunction<R(Args...), BufBytes>
{
  public:
    InlineFunction() = default;
    InlineFunction(std::nullptr_t) {}

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, InlineFunction> &&
                  std::is_invocable_r_v<R, D &, Args...>>>
    InlineFunction(F &&f)
    {
        assign(std::forward<F>(f));
    }

    InlineFunction(InlineFunction &&o) noexcept { moveFrom(o); }

    InlineFunction &
    operator=(InlineFunction &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, InlineFunction> &&
                  std::is_invocable_r_v<R, D &, Args...>>>
    InlineFunction &
    operator=(F &&f)
    {
        reset();
        assign(std::forward<F>(f));
        return *this;
    }

    InlineFunction &
    operator=(std::nullptr_t)
    {
        reset();
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    /** @return true if a target is engaged. */
    explicit operator bool() const { return invoke_ != nullptr; }

    R
    operator()(Args... args)
    {
        panic_if(invoke_ == nullptr,
                 "invoking an empty InlineFunction");
        return invoke_(buf_, std::forward<Args>(args)...);
    }

    /** Destroy the target, leaving the function empty. */
    void
    reset()
    {
        if (manage_ != nullptr) {
            manage_(buf_, nullptr);
            invoke_ = nullptr;
            manage_ = nullptr;
        }
    }

    /** @return true if a target of type F would be stored inline. */
    template <typename F>
    static constexpr bool
    storedInline()
    {
        using D = std::decay_t<F>;
        return sizeof(D) <= BufBytes &&
               alignof(D) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<D>;
    }

  private:
    using Invoke = R (*)(void *, Args &&...);
    /** dst == nullptr: destroy; else move-construct into dst and
     *  destroy the source. */
    using Manage = void (*)(void *, void *);

    template <typename F>
    static R
    invokeInline(void *b, Args &&...args)
    {
        return (*std::launder(static_cast<F *>(b)))(
            std::forward<Args>(args)...);
    }

    template <typename F>
    static void
    manageInline(void *src, void *dst)
    {
        F *f = std::launder(static_cast<F *>(src));
        if (dst != nullptr)
            ::new (dst) F(std::move(*f));
        f->~F();
    }

    template <typename F>
    static R
    invokeHeap(void *b, Args &&...args)
    {
        return (**std::launder(static_cast<F **>(b)))(
            std::forward<Args>(args)...);
    }

    template <typename F>
    static void
    manageHeap(void *src, void *dst)
    {
        F **p = std::launder(static_cast<F **>(src));
        if (dst != nullptr)
            ::new (dst) (F *)(*p);
        else
            delete *p;
    }

    template <typename F>
    void
    assign(F &&f)
    {
        using D = std::decay_t<F>;
        if constexpr (storedInline<D>()) {
            ::new (static_cast<void *>(buf_))
                D(std::forward<F>(f));
            invoke_ = &invokeInline<D>;
            manage_ = &manageInline<D>;
        } else {
            ::new (static_cast<void *>(buf_))
                (D *)(new D(std::forward<F>(f)));
            invoke_ = &invokeHeap<D>;
            manage_ = &manageHeap<D>;
        }
    }

    void
    moveFrom(InlineFunction &o) noexcept
    {
        if (o.invoke_ != nullptr) {
            o.manage_(o.buf_, buf_);
            invoke_ = o.invoke_;
            manage_ = o.manage_;
            o.invoke_ = nullptr;
            o.manage_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[BufBytes];
    Invoke invoke_ = nullptr;
    Manage manage_ = nullptr;
};

/** The kernel-wide completion-callback type (see EventQueue). */
using InlineCallback = InlineFunction<void(), 48>;

} // namespace profess

#endif // PROFESS_COMMON_INLINE_FUNCTION_HH
