#include "common/trace_sink.hh"

#include <cinttypes>

#include "common/logging.hh"

namespace profess
{

namespace telemetry
{

const char *
traceKindName(TraceKind k)
{
    switch (k) {
      case TraceKind::MdmDecide:
        return "mdm_decide";
      case TraceKind::GuidanceCase:
        return "guidance_case";
      case TraceKind::RsmPeriod:
        return "rsm_period";
      case TraceKind::ScenarioEvent:
        return "scenario_event";
      default:
        return "unknown";
    }
}

//
// DecisionTraceSink
//

DecisionTraceSink::DecisionTraceSink(std::size_t capacity)
{
    panic_if(capacity == 0, "trace ring capacity must be > 0");
    ring_.resize(capacity);
}

std::size_t
DecisionTraceSink::retainedCount() const
{
    return total_ < ring_.size() ? static_cast<std::size_t>(total_)
                                 : ring_.size();
}

std::vector<TraceRecord>
DecisionTraceSink::retained() const
{
    std::vector<TraceRecord> out;
    std::size_t n = retainedCount();
    out.reserve(n);
    if (total_ <= ring_.size()) {
        out.assign(ring_.begin(),
                   ring_.begin() + static_cast<std::ptrdiff_t>(n));
    } else {
        for (std::size_t i = 0; i < n; ++i)
            out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    return out;
}

void
DecisionTraceSink::flushJsonl(std::FILE *f) const
{
    for (const TraceRecord &r : retained()) {
        std::fprintf(
            f,
            "{\"tick\":%" PRIu64 ",\"kind\":\"%s\",\"group\":%" PRIu64
            ",\"accessor\":%d,\"m1_owner\":%d,\"q_i\":%u,"
            "\"a\":%.17g,\"b\":%.17g,\"margin\":%.17g,"
            "\"detail\":%u,\"swapped\":%u}\n",
            static_cast<std::uint64_t>(r.tick),
            traceKindName(static_cast<TraceKind>(r.kind)), r.group,
            r.accessor, r.m1Owner, r.qI, r.a, r.b, r.margin, r.detail,
            r.swapped);
    }
    std::uint64_t retainedN = retainedCount();
    std::fprintf(f,
                 "{\"summary\":{\"total\":%" PRIu64
                 ",\"retained\":%" PRIu64 ",\"dropped\":%" PRIu64,
                 total_, retainedN, total_ - retainedN);
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(TraceKind::NumKinds); ++k) {
        std::fprintf(f, ",\"%s\":%" PRIu64,
                     traceKindName(static_cast<TraceKind>(k)),
                     kindTotals_[k]);
    }
    std::fputs(",\"paths\":[", f);
    for (std::size_t p = 0; p < numPaths; ++p)
        std::fprintf(f, "%s%" PRIu64, p ? "," : "", pathTotals_[p]);
    std::fputs("],\"path_swaps\":[", f);
    for (std::size_t p = 0; p < numPaths; ++p)
        std::fprintf(f, "%s%" PRIu64, p ? "," : "", swapTotals_[p]);
    std::fputs("]}}\n", f);
}

//
// ChromeTraceSink
//

ChromeTraceSink::ChromeTraceSink(std::size_t max_events)
    : max_(max_events)
{
    events_.reserve(std::min<std::size_t>(max_events, 4096));
}

void
ChromeTraceSink::writeJson(
    std::FILE *f,
    const std::vector<std::pair<std::string, const TimerSlot *>>
        &timers) const
{
    // Chrome trace-event JSON Array Format wrapped in an object so
    // we can carry metadata.  "ts"/"dur" are microseconds in the
    // viewer; we emit simulation ticks directly (1 tick == 1 us on
    // the viewer axis; see file header).
    std::fputs("{\"displayTimeUnit\":\"ms\",\"otherData\":"
               "{\"ts_unit\":\"sim_ticks\"},\n\"traceEvents\":[\n",
               f);
    bool first = true;
    for (const Event &e : events_) {
        if (!first)
            std::fputs(",\n", f);
        first = false;
        if (e.instant) {
            std::fprintf(f,
                         "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":"
                         "\"i\",\"s\":\"t\",\"ts\":%" PRIu64
                         ",\"pid\":1,\"tid\":%u}",
                         e.name, e.category,
                         static_cast<std::uint64_t>(e.begin), e.tid);
        } else {
            std::fprintf(f,
                         "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":"
                         "\"X\",\"ts\":%" PRIu64 ",\"dur\":%" PRIu64
                         ",\"pid\":1,\"tid\":%u}",
                         e.name, e.category,
                         static_cast<std::uint64_t>(e.begin),
                         static_cast<std::uint64_t>(e.dur), e.tid);
        }
    }
    // Host wall-clock profiling totals appear as counter samples at
    // ts 0 on their own track, one per TimerSlot.
    for (const auto &t : timers) {
        if (!first)
            std::fputs(",\n", f);
        first = false;
        std::fprintf(f,
                     "{\"name\":%s,\"cat\":\"host\",\"ph\":\"C\","
                     "\"ts\":0,\"pid\":1,\"tid\":0,\"args\":"
                     "{\"ns\":%" PRIu64 ",\"calls\":%" PRIu64
                     ",\"sampled\":%" PRIu64 ",\"est_ns\":%.0f}}",
                     jsonQuote(t.first).c_str(), t.second->ns,
                     t.second->calls, t.second->sampled,
                     t.second->estimatedNs());
    }
    std::fprintf(f, "\n],\n\"dropped\":%" PRIu64 "}\n", dropped_);
}

} // namespace telemetry

} // namespace profess
