/**
 * @file
 * Allocation-recycling object pool for hot-path node types.
 *
 * The simulation kernel creates and destroys one `mem::Request` and
 * one `PendingAccess` per simulated access.  `ObjectPool` keeps the
 * freed nodes on a free list so the steady state performs zero heap
 * allocations: `acquire()` pops a recycled node (or grows a slab),
 * `release()` pushes it back.
 *
 * Nodes live in `std::deque` slabs, so pointers stay stable for the
 * pool's lifetime — holders may keep raw pointers across an
 * acquire/release cycle boundary (but must not use a node after
 * releasing it, as usual).
 *
 * The pool does not run constructors/destructors per cycle; nodes
 * are default-constructed once when their slab grows and reused
 * as-is.  Callers reset the fields they use (all hot-path nodes are
 * simple aggregates).
 */

#ifndef PROFESS_COMMON_POOL_HH
#define PROFESS_COMMON_POOL_HH

#include <cstddef>
#include <deque>
#include <vector>

namespace profess
{

template <typename T>
class ObjectPool
{
  public:
    /** @return a recycled or freshly slab-allocated node. */
    T *
    acquire()
    {
        if (free_.empty()) {
            slab_.emplace_back();
            return &slab_.back();
        }
        T *p = free_.back();
        free_.pop_back();
        return p;
    }

    /** Return a node obtained from acquire() to the free list. */
    void
    release(T *p)
    {
        free_.push_back(p);
    }

    /** @return total nodes ever created (high-water mark). */
    std::size_t capacity() const { return slab_.size(); }

    /** @return nodes currently on the free list. */
    std::size_t available() const { return free_.size(); }

  private:
    std::deque<T> slab_;
    std::vector<T *> free_;
};

} // namespace profess

#endif // PROFESS_COMMON_POOL_HH
