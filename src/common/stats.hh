/**
 * @file
 * Statistics utilities used by monitors and by result reporting.
 *
 * RunningStat  - numerically stable mean / variance (Welford).
 * ExpSmoother  - simple exponential smoothing, used by RSM (Sec. 3.1.3)
 *                with the paper's alpha = 0.125.
 * Histogram    - fixed-bucket histogram for latency distributions.
 * StatSet      - a named collection of scalar counters a component can
 *                expose for reporting.
 */

#ifndef PROFESS_COMMON_STATS_HH
#define PROFESS_COMMON_STATS_HH

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace profess
{

/** Welford running mean and variance. */
class RunningStat
{
  public:
    /** Add one sample. */
    void
    add(double x)
    {
        ++n_;
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
    }

    /** @return number of samples added. */
    std::uint64_t count() const { return n_; }

    /** @return sample mean (0 if empty). */
    double mean() const { return mean_; }

    /** @return population variance (0 if fewer than 2 samples). */
    double
    variance() const
    {
        return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
    }

    /** @return population standard deviation. */
    double stddev() const { return std::sqrt(variance()); }

    /** Reset to the empty state. */
    void
    reset()
    {
        n_ = 0;
        mean_ = 0.0;
        m2_ = 0.0;
    }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/**
 * Simple exponential smoothing: avg <- avg + alpha * (x - avg).
 *
 * The first sample initializes the average directly, as is standard.
 */
class ExpSmoother
{
  public:
    /** @param alpha Smoothing parameter in (0, 1]. */
    explicit ExpSmoother(double alpha = 0.125) : alpha_(alpha) {}

    /** Add a sample and return the updated average. */
    double
    add(double x)
    {
        if (!primed_) {
            avg_ = x;
            primed_ = true;
        } else {
            avg_ += alpha_ * (x - avg_);
        }
        return avg_;
    }

    /** @return current smoothed value (0 before the first sample). */
    double value() const { return avg_; }

    /** @return true once at least one sample has been added. */
    bool primed() const { return primed_; }

    /** Reset to the unprimed state. */
    void
    reset()
    {
        avg_ = 0.0;
        primed_ = false;
    }

  private:
    double alpha_;
    double avg_ = 0.0;
    bool primed_ = false;
};

/**
 * Fixed-width-bucket histogram with explicit underflow and overflow
 * accounting.  Construction validates the implied bucket edges
 * (0, w, 2w, ...) are strictly increasing (width > 0 and not so
 * small that consecutive edges collapse in floating point).
 */
class Histogram
{
  public:
    /**
     * @param bucket_width Width of each bucket (> 0).
     * @param num_buckets Number of regular buckets (>= 1).
     */
    Histogram(double bucket_width, std::size_t num_buckets);

    /** Add one sample. */
    void
    add(double x)
    {
        stat_.add(x);
        sum_ += x;
        if (x < 0) {
            ++underflow_;
            return;
        }
        auto i = static_cast<std::size_t>(x / width_);
        if (i >= buckets_.size() - 1)
            i = buckets_.size() - 1;
        ++buckets_[i];
    }

    /** @return count in bucket i (last bucket = overflow). */
    std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }

    /** @return number of buckets including overflow. */
    std::size_t numBuckets() const { return buckets_.size(); }

    /** @return samples below the first bucket edge (x < 0). */
    std::uint64_t underflow() const { return underflow_; }

    /** @return samples at or beyond the last regular edge. */
    std::uint64_t overflow() const { return buckets_.back(); }

    /** @return summary statistics over all added samples. */
    const RunningStat &summary() const { return stat_; }

    /** @return exact running sum of all added samples (including
     *  underflow), for exporters that must reconcile sum and count
     *  without the rounding of mean * count. */
    double sum() const { return sum_; }

    /** @return width of each regular bucket. */
    double bucketWidth() const { return width_; }

    /**
     * Approximate quantile from the histogram.
     *
     * @param q Quantile in [0, 1].
     * @return Upper edge of the bucket holding the quantile.
     */
    double quantile(double q) const;

    /** Reset all counts (bucket layout is kept). */
    void
    reset()
    {
        for (auto &b : buckets_)
            b = 0;
        underflow_ = 0;
        sum_ = 0.0;
        stat_.reset();
    }

    /**
     * Dump as one JSON object: bucket edges and counts plus
     * explicit "underflow" and "overflow" fields.
     */
    void dumpJson(std::FILE *f) const;

    /** Dump as an aligned text table (same content as the JSON). */
    void dumpText(std::FILE *f) const;

  private:
    double width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    double sum_ = 0.0;
    RunningStat stat_;
};

/**
 * A named set of scalar statistics.  Components register counters by
 * name; the simulator dumps them uniformly.
 */
class StatSet
{
  public:
    /** Increment a named counter. */
    void
    inc(const std::string &name, std::uint64_t v = 1)
    {
        counters_[name] += v;
    }

    /**
     * @return a stable reference to a named counter.
     *
     * Hot-path components resolve the reference once at construction
     * and bump it with a plain add, skipping the per-access map
     * lookup.  References stay valid across reset(), which zeroes
     * counters in place instead of erasing them.
     */
    std::uint64_t &
    counterRef(const std::string &name)
    {
        return counters_[name];
    }

    /** Set a named value. */
    void set(const std::string &name, double v) { values_[name] = v; }

    /** @return counter value (0 if never incremented). */
    std::uint64_t
    counter(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** @return set value (0 if never set). */
    double
    value(const std::string &name) const
    {
        auto it = values_.find(name);
        return it == values_.end() ? 0.0 : it->second;
    }

    /** @return all counters, sorted by name. */
    const std::map<std::string, std::uint64_t> &
    counters() const
    {
        return counters_;
    }

    /** @return all values, sorted by name. */
    const std::map<std::string, double> &values() const { return values_; }

    /**
     * Zero all statistics.
     *
     * Counters are zeroed in place (not erased) so references from
     * counterRef() stay valid; a counter that was only ever zero
     * reads the same either way.
     */
    void
    reset()
    {
        for (auto &kv : counters_)
            kv.second = 0;
        values_.clear();
    }

  private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> values_;
};

/**
 * Box-plot style summary of a data series (Fig. 5 reporting):
 * min, first quartile, median, third quartile, max and geometric mean.
 */
struct BoxSummary
{
    double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
    double gmean = 0;
    std::size_t n = 0;
};

/**
 * Compute a BoxSummary of a series.
 *
 * Quartiles use linear interpolation between order statistics; the
 * geometric mean requires strictly positive data.
 */
BoxSummary boxSummary(std::vector<double> data);

/** @return geometric mean of a strictly positive series (0 if empty). */
double geometricMean(const std::vector<double> &data);

} // namespace profess

#endif // PROFESS_COMMON_STATS_HH
