#include "common/openmetrics.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include <unistd.h>

#include "common/logging.hh"
#include "common/telemetry.hh"

namespace profess
{

namespace telemetry
{

namespace
{

/** @return true if the segment is `prefix` followed by digits. */
bool
isInstanceSegment(const std::string &seg, const char *prefix,
                  std::string &digits)
{
    std::size_t n = std::strlen(prefix);
    if (seg.size() <= n || seg.compare(0, n, prefix) != 0)
        return false;
    for (std::size_t i = n; i < seg.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(seg[i])))
            return false;
    }
    digits = seg.substr(n);
    return true;
}

std::vector<std::string>
splitDots(const std::string &dotted)
{
    std::vector<std::string> segs;
    std::size_t start = 0;
    while (start <= dotted.size()) {
        std::size_t dot = dotted.find('.', start);
        if (dot == std::string::npos) {
            segs.push_back(dotted.substr(start));
            break;
        }
        segs.push_back(dotted.substr(start, dot - start));
        start = dot + 1;
    }
    return segs;
}

} // anonymous namespace

MetricName
mapDottedName(const std::string &dotted, bool histogram)
{
    std::vector<std::string> segs = splitDots(dotted);

    // Latency-attribution histograms share one family with the
    // decomposition as labels: latency.p3.m2.read.queue ->
    // profess_latency{program="3",tier="m2",kind="read",
    // phase="queue"}.
    if (histogram && segs.size() == 5 && segs[0] == "latency") {
        std::string prog;
        if (isInstanceSegment(segs[1], "p", prog)) {
            MetricName mn;
            mn.family = "profess_latency";
            mn.labels.emplace_back("program", prog);
            mn.labels.emplace_back("tier", segs[2]);
            mn.labels.emplace_back("kind", segs[3]);
            mn.labels.emplace_back("phase", segs[4]);
            return mn;
        }
    }

    MetricName mn;
    std::string joined;
    std::string digits;
    for (const std::string &seg : segs) {
        if (isInstanceSegment(seg, "ch", digits)) {
            mn.labels.emplace_back("channel", digits);
        } else if (isInstanceSegment(seg, "core", digits)) {
            mn.labels.emplace_back("core", digits);
        } else if (isInstanceSegment(seg, "p", digits)) {
            mn.labels.emplace_back("program", digits);
        } else {
            joined += (joined.empty() ? "" : "_") + seg;
        }
    }
    mn.family = "profess_" + joined;
    return mn;
}

std::string
escapeLabelValue(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '"':
            out += "\\\"";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out.push_back(c);
        }
    }
    return out;
}

MetricsSnapshot
MetricsSnapshot::capture(const StatRegistry &registry,
                         const std::string &run_label)
{
    MetricsSnapshot snap;
    snap.run = run_label;

    // The derived "<h>.count"/"<h>.sum" probes duplicate what the
    // histogram family itself exports; skip them here.
    std::vector<std::string> derived;
    for (const auto &he : registry.histograms()) {
        derived.push_back(he.name + ".count");
        derived.push_back(he.name + ".sum");

        Hist h;
        h.name = he.name;
        h.bucketWidth = he.histogram->bucketWidth();
        h.buckets.reserve(he.histogram->numBuckets());
        for (std::size_t i = 0; i < he.histogram->numBuckets(); ++i)
            h.buckets.push_back(he.histogram->bucket(i));
        h.underflow = he.histogram->underflow();
        h.count = he.histogram->summary().count();
        h.sum = he.histogram->sum();
        snap.histograms.push_back(std::move(h));
    }
    std::sort(derived.begin(), derived.end());

    for (const auto &e : registry.entries()) {
        if (std::binary_search(derived.begin(), derived.end(),
                               e.name))
            continue;
        Scalar s;
        s.name = e.name;
        s.isCounter = e.counter != nullptr;
        s.value = e.counter ? static_cast<double>(*e.counter)
                            : e.probe();
        snap.scalars.push_back(std::move(s));
    }
    return snap;
}

namespace
{

struct ScalarSample
{
    std::string run;
    std::string dotted;
    std::vector<std::pair<std::string, std::string>> labels;
    double value;
};

struct HistSample
{
    std::string run;
    std::string dotted;
    std::vector<std::pair<std::string, std::string>> labels;
    const MetricsSnapshot::Hist *hist;
};

/** One exposition family: scalar-typed or histogram-typed. */
struct Family
{
    const char *type = nullptr; ///< "counter"/"gauge"/"histogram"
    std::vector<ScalarSample> scalars;
    std::vector<HistSample> hists;
};

void
setType(Family &fam, const char *type, const std::string &name)
{
    if (fam.type == nullptr) {
        fam.type = type;
        return;
    }
    panic_if(std::strcmp(fam.type, type) != 0,
             "OpenMetrics family '%s' mixes %s and %s samples",
             name.c_str(), fam.type, type);
}

void
printLabels(std::FILE *f,
            const std::vector<std::pair<std::string, std::string>>
                &labels,
            const std::string &run, const char *le = nullptr)
{
    std::fputc('{', f);
    bool first = true;
    for (const auto &kv : labels) {
        std::fprintf(f, "%s%s=\"%s\"", first ? "" : ",",
                     kv.first.c_str(),
                     escapeLabelValue(kv.second).c_str());
        first = false;
    }
    std::fprintf(f, "%srun=\"%s\"", first ? "" : ",",
                 escapeLabelValue(run).c_str());
    if (le != nullptr)
        std::fprintf(f, ",le=\"%s\"", le);
    std::fputc('}', f);
}

} // anonymous namespace

void
writeOpenMetrics(std::FILE *f,
                 const std::vector<MetricsSnapshot> &runs)
{
    std::map<std::string, Family> families;

    for (const MetricsSnapshot &snap : runs) {
        for (const auto &s : snap.scalars) {
            MetricName mn = mapDottedName(s.name, false);
            Family &fam = families[mn.family];
            setType(fam, s.isCounter ? "counter" : "gauge",
                    mn.family);
            fam.scalars.push_back(ScalarSample{
                snap.run, s.name, std::move(mn.labels), s.value});
        }
        for (const auto &h : snap.histograms) {
            MetricName mn = mapDottedName(h.name, true);
            Family &fam = families[mn.family];
            setType(fam, "histogram", mn.family);
            fam.hists.push_back(HistSample{
                snap.run, h.name, std::move(mn.labels), &h});
        }
    }

    for (auto &fkv : families) {
        const std::string &name = fkv.first;
        Family &fam = fkv.second;
        std::fprintf(f, "# TYPE %s %s\n", name.c_str(), fam.type);

        auto byRunThenName = [](const auto &a, const auto &b) {
            if (a.run != b.run)
                return a.run < b.run;
            return a.dotted < b.dotted;
        };
        std::sort(fam.scalars.begin(), fam.scalars.end(),
                  byRunThenName);
        std::sort(fam.hists.begin(), fam.hists.end(),
                  byRunThenName);

        bool counter = std::strcmp(fam.type, "counter") == 0;
        for (const ScalarSample &s : fam.scalars) {
            std::fprintf(f, "%s%s", name.c_str(),
                         counter ? "_total" : "");
            printLabels(f, s.labels, s.run);
            std::fprintf(f, " %.17g\n", s.value);
        }

        for (const HistSample &hs : fam.hists) {
            const MetricsSnapshot::Hist &h = *hs.hist;
            // Cumulative buckets: underflow samples (x < 0) fall in
            // every bucket; the last stored bucket is the overflow
            // count and only contributes to +Inf.
            std::uint64_t cum = h.underflow;
            for (std::size_t i = 0; i + 1 < h.buckets.size(); ++i) {
                cum += h.buckets[i];
                char le[32];
                std::snprintf(le, sizeof(le), "%.17g",
                              h.bucketWidth *
                                  static_cast<double>(i + 1));
                std::fprintf(f, "%s_bucket", name.c_str());
                printLabels(f, hs.labels, hs.run, le);
                std::fprintf(f, " %llu\n",
                             static_cast<unsigned long long>(cum));
            }
            std::fprintf(f, "%s_bucket", name.c_str());
            printLabels(f, hs.labels, hs.run, "+Inf");
            std::fprintf(f, " %llu\n",
                         static_cast<unsigned long long>(h.count));
            std::fprintf(f, "%s_count", name.c_str());
            printLabels(f, hs.labels, hs.run);
            std::fprintf(f, " %llu\n",
                         static_cast<unsigned long long>(h.count));
            std::fprintf(f, "%s_sum", name.c_str());
            printLabels(f, hs.labels, hs.run);
            std::fprintf(f, " %.17g\n", h.sum);
        }
    }
    std::fputs("# EOF\n", f);
}

void
writeOpenMetricsFile(const std::string &path,
                     const std::vector<MetricsSnapshot> &runs)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    fatal_if(f == nullptr, "cannot write metrics file '%s'",
             path.c_str());
    writeOpenMetrics(f, runs);
    std::fclose(f);
}

namespace
{

/** fflush + fsync + fclose + rename(tmp -> path); fatal on error. */
void
commitFile(std::FILE *f, const std::string &tmp,
           const std::string &path)
{
    fatal_if(std::fflush(f) != 0, "cannot flush '%s': %s",
             tmp.c_str(), std::strerror(errno));
    fatal_if(::fsync(::fileno(f)) != 0, "cannot fsync '%s': %s",
             tmp.c_str(), std::strerror(errno));
    std::fclose(f);
    fatal_if(std::rename(tmp.c_str(), path.c_str()) != 0,
             "cannot rename '%s' to '%s': %s", tmp.c_str(),
             path.c_str(), std::strerror(errno));
}

} // anonymous namespace

void
writeOpenMetricsFileAtomic(const std::string &path,
                           const std::vector<MetricsSnapshot> &runs)
{
    std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    fatal_if(f == nullptr, "cannot write metrics file '%s'",
             tmp.c_str());
    writeOpenMetrics(f, runs);
    commitFile(f, tmp, path);
}

void
writeMetricsShardFile(const std::string &path,
                      const MetricsSnapshot &snap)
{
    std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    fatal_if(f == nullptr, "cannot write metrics shard '%s'",
             tmp.c_str());
    // Run labels may contain spaces; "run" consumes the rest of the
    // line.  Dotted names never contain whitespace (the stat-name
    // lint), so the remaining records are space-tokenized.
    std::fprintf(f, "profess-shard 1\n");
    std::fprintf(f, "run %s\n", snap.run.c_str());
    for (const auto &s : snap.scalars) {
        std::fprintf(f, "scalar %s %c %.17g\n", s.name.c_str(),
                     s.isCounter ? 'c' : 'g', s.value);
    }
    for (const auto &h : snap.histograms) {
        std::fprintf(f, "hist %s %.17g %llu %llu %.17g %zu",
                     h.name.c_str(), h.bucketWidth,
                     static_cast<unsigned long long>(h.underflow),
                     static_cast<unsigned long long>(h.count), h.sum,
                     h.buckets.size());
        for (std::uint64_t b : h.buckets) {
            std::fprintf(f, " %llu",
                         static_cast<unsigned long long>(b));
        }
        std::fputc('\n', f);
    }
    std::fprintf(f, "end\n");
    commitFile(f, tmp, path);
}

namespace
{

std::uint64_t
shardU64(const std::string &path, int lineno, const std::string &tok)
{
    char *end = nullptr;
    std::uint64_t v = std::strtoull(tok.c_str(), &end, 10);
    fatal_if(end == tok.c_str() || *end != '\0',
             "%s:%d: bad integer '%s' in metrics shard",
             path.c_str(), lineno, tok.c_str());
    return v;
}

double
shardDouble(const std::string &path, int lineno,
            const std::string &tok)
{
    char *end = nullptr;
    double v = std::strtod(tok.c_str(), &end);
    fatal_if(end == tok.c_str() || *end != '\0',
             "%s:%d: bad number '%s' in metrics shard", path.c_str(),
             lineno, tok.c_str());
    return v;
}

} // anonymous namespace

MetricsSnapshot
readMetricsShardFile(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in.is_open(), "cannot open metrics shard '%s'",
             path.c_str());
    MetricsSnapshot snap;
    std::string line;
    int lineno = 0;
    bool have_run = false;
    bool have_end = false;

    fatal_if(!std::getline(in, line) || line != "profess-shard 1",
             "%s:1: not a profess-shard v1 file", path.c_str());
    lineno = 1;

    while (std::getline(in, line)) {
        ++lineno;
        fatal_if(have_end, "%s:%d: content after 'end'",
                 path.c_str(), lineno);
        if (line.rfind("run ", 0) == 0) {
            snap.run = line.substr(4);
            have_run = true;
            continue;
        }
        if (line == "end") {
            have_end = true;
            continue;
        }
        std::istringstream is(line);
        std::string rec;
        is >> rec;
        if (rec == "scalar") {
            std::string name, kind, val;
            is >> name >> kind >> val;
            fatal_if(is.fail() || (kind != "c" && kind != "g"),
                     "%s:%d: malformed scalar record", path.c_str(),
                     lineno);
            MetricsSnapshot::Scalar s;
            s.name = name;
            s.isCounter = (kind == "c");
            s.value = shardDouble(path, lineno, val);
            snap.scalars.push_back(std::move(s));
        } else if (rec == "hist") {
            std::string name, width, under, count, sum, nbuckets;
            is >> name >> width >> under >> count >> sum >> nbuckets;
            fatal_if(is.fail(), "%s:%d: malformed hist record",
                     path.c_str(), lineno);
            MetricsSnapshot::Hist h;
            h.name = name;
            h.bucketWidth = shardDouble(path, lineno, width);
            h.underflow = shardU64(path, lineno, under);
            h.count = shardU64(path, lineno, count);
            h.sum = shardDouble(path, lineno, sum);
            std::size_t n = shardU64(path, lineno, nbuckets);
            for (std::size_t i = 0; i < n; ++i) {
                std::string b;
                is >> b;
                fatal_if(is.fail(), "%s:%d: hist record truncated",
                         path.c_str(), lineno);
                h.buckets.push_back(shardU64(path, lineno, b));
            }
            snap.histograms.push_back(std::move(h));
        } else {
            fatal("%s:%d: unknown shard record '%s'", path.c_str(),
                  lineno, rec.c_str());
        }
    }
    fatal_if(!have_run || !have_end,
             "%s: truncated metrics shard (missing %s)",
             path.c_str(), have_run ? "'end'" : "'run'");
    return snap;
}

} // namespace telemetry

} // namespace profess
