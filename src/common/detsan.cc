#include "common/detsan.hh"

#include "common/logging.hh"
#include "common/telemetry.hh"

namespace profess
{

namespace detsan
{

bool
Journal::record(const std::string &key, const RunDigest &d)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = runs_.find(key);
    if (it == runs_.end()) {
        runs_.emplace(key, d);
        return false;
    }
    const RunDigest &prev = it->second;
    fatal_if(!(prev == d),
             "detsan: digest mismatch for run '%s':\n"
             "  first  events=%llu extraction=%016llx epochs=%llu "
             "epochState=%016llx stats=%llu statState=%016llx\n"
             "  repeat events=%llu extraction=%016llx epochs=%llu "
             "epochState=%016llx stats=%llu statState=%016llx\n"
             "the same run identity produced different event order, "
             "epoch trajectory or final statistics — determinism is "
             "broken",
             key.c_str(),
             static_cast<unsigned long long>(prev.events),
             static_cast<unsigned long long>(prev.extraction),
             static_cast<unsigned long long>(prev.epochs),
             static_cast<unsigned long long>(prev.epochState),
             static_cast<unsigned long long>(prev.stats),
             static_cast<unsigned long long>(prev.statState),
             static_cast<unsigned long long>(d.events),
             static_cast<unsigned long long>(d.extraction),
             static_cast<unsigned long long>(d.epochs),
             static_cast<unsigned long long>(d.epochState),
             static_cast<unsigned long long>(d.stats),
             static_cast<unsigned long long>(d.statState));
    ++checked_;
    return true;
}

bool
Journal::lookup(const std::string &key, RunDigest &out) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = runs_.find(key);
    if (it == runs_.end())
        return false;
    out = it->second;
    return true;
}

std::size_t
Journal::entries() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return runs_.size();
}

std::uint64_t
Journal::checked() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return checked_;
}

void
Journal::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    runs_.clear();
    checked_ = 0;
}

Journal &
Journal::global()
{
    static Journal journal;
    return journal;
}

std::uint64_t
registryDigest(const telemetry::StatRegistry &reg)
{
    Digest d;
    for (const auto &e : reg.entries()) {
        d.mixString(e.name);
        if (e.counter != nullptr) {
            d.mix(1);
            d.mix(*e.counter);
        } else {
            d.mix(2);
            d.mixDouble(e.probe());
        }
    }
    return d.value();
}

} // namespace detsan

} // namespace profess
