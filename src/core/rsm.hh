/**
 * @file
 * Relative-Slowdown Monitor (RSM, Sec. 3.1).
 *
 * RSM compares each program's behaviour in its private region
 * (uncontended proxy) against its behaviour in the shared regions
 * (contended proxy) and produces two slowdown factors:
 *
 *   SF_A = (reqM1P / reqTotalP) / (reqM1S / reqTotalS)      (Eq. 2)
 *   SF_B = 1 / (swapSelf / swapTotal)                       (Eq. 3)
 *
 * recomputed every sampling period of Msamp served requests per
 * program (128K by default), with simple exponential smoothing
 * (alpha = 0.125) applied to the counters; each counter is
 * incremented by one before smoothing to avoid zeros (Sec. 3.1.3).
 * Swaps inside private regions are not counted.
 *
 * Convention (matching os::PageAllocator): region i < numPrograms is
 * the private region of program i; all other regions are shared.
 */

#ifndef PROFESS_CORE_RSM_HH
#define PROFESS_CORE_RSM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace profess
{

namespace telemetry
{
class StatRegistry;
class DecisionTraceSink;
} // namespace telemetry

namespace core
{

/** The monitor proper. */
class Rsm
{
  public:
    struct Params
    {
        unsigned numPrograms = 4;
        unsigned numRegions = 128;
        std::uint64_t sampleRequests = 128 * 1024; ///< Msamp
        double alpha = 0.125;
        bool perRegionStats = false; ///< Table 4 instrumentation
    };

    /** Snapshot taken at the end of each sampling period. */
    struct PeriodSample
    {
        double rawSfA;    ///< SF_A from raw counters
        double avgSfA;    ///< SF_A from smoothed counters
        double reqStdPct; ///< per-region request stddev, % of mean
    };

    explicit Rsm(const Params &p);

    /**
     * Account one served request.
     *
     * @param p Program.
     * @param region RSM region of the accessed swap group.
     * @param from_m1 Served from M1.
     * @param now Current tick (only stamps trace records; the
     *        mechanism itself is clockless).
     */
    void onServed(ProgramId p, unsigned region, bool from_m1,
                  Tick now = 0);

    /**
     * Account one swap (Table 3 swap counters).
     *
     * @param owner_promoted Owner of the promoted block.
     * @param owner_demoted Owner of the demoted block (invalid if
     *        the M1 location was vacant).
     * @param private_region Swap in a private region (not counted).
     */
    void onSwap(ProgramId owner_promoted, ProgramId owner_demoted,
                bool private_region);

    /** @return current SF_A of a program (1.0 before any sample). */
    double sfA(ProgramId p) const;

    /** @return current SF_B of a program (1.0 before any sample). */
    double sfB(ProgramId p) const;

    /** @return completed sampling periods of a program. */
    std::uint64_t periods(ProgramId p) const;

    /** @return per-period history (perRegionStats mode only). */
    const std::vector<PeriodSample> &history(ProgramId p) const;

    /** @return the configuration. */
    const Params &params() const { return params_; }

    /** Record period rollovers into `sink` (null = off). */
    void
    setTraceSink(telemetry::DecisionTraceSink *sink)
    {
        trace_ = sink;
    }

    /** Register per-program SF_A/SF_B/period probes. */
    void registerTelemetry(telemetry::StatRegistry &registry,
                           const std::string &prefix) const;

    /**
     * Pin a program's slowdown factors (scenario/test hook): the
     * factors take effect immediately and period rollovers keep all
     * Table 3 bookkeeping but stop refreshing SF_A/SF_B until
     * unpinFactors().  Fatal unless sf_a > 0 and finite and
     * sf_b >= 1 (the ranges auditInvariants() enforces).
     */
    void pinFactors(ProgramId p, double sf_a, double sf_b);

    /** Release pinned factors; rollovers refresh them again. */
    void unpinFactors(ProgramId p);

    /** @return true if the program's factors are pinned. */
    bool factorsPinned(ProgramId p) const { return state(p).pinned; }

    /**
     * Audit every program's monitor state: slowdown factors finite
     * and positive (SF_B >= 1 since a program's self swaps never
     * exceed its total swaps and smoothing preserves the order),
     * Table 3 counters mutually consistent (M1 sub-counts within the
     * totals, self swaps within total swaps), and the sampling-
     * period bookkeeping inside a period (served counter strictly
     * below Msamp after each update).  Panics on violation.  Hooked
     * at every period rollover in PROFESS_AUDIT builds.
     */
    void auditInvariants() const;

  private:
    /** Per-program counters (Table 3) and smoothers. */
    struct ProgState
    {
        std::uint64_t reqM1P = 0, reqTotalP = 0;
        std::uint64_t reqM1S = 0, reqTotalS = 0;
        std::uint64_t swapSelf = 0, swapTotal = 0;
        std::uint64_t periodServed = 0;
        std::uint64_t periodCount = 0;
        ExpSmoother sm[6]; ///< one per Table 3 counter
        double sfA = 1.0, sfB = 1.0;
        bool pinned = false; ///< factors frozen (pinFactors)
        std::vector<std::uint64_t> perRegion;
        std::vector<PeriodSample> hist;
    };

    void endPeriod(ProgramId p, ProgState &st, Tick now);
    ProgState &state(ProgramId p);
    const ProgState &state(ProgramId p) const;

    Params params_;
    std::vector<ProgState> progs_;
    telemetry::DecisionTraceSink *trace_ = nullptr;
};

} // namespace core

} // namespace profess

#endif // PROFESS_CORE_RSM_HH
