#include "core/mdm.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/invariant.hh"
#include "common/logging.hh"
#include "common/telemetry.hh"
#include "common/trace_sink.hh"

namespace profess
{

namespace core
{

Mdm::Mdm(const Params &p) : params_(p), progs_(p.numPrograms)
{
    fatal_if(p.numPrograms == 0, "MDM needs at least one program");
    fatal_if(p.phaseUpdates == 0 || p.recomputeEvery == 0,
             "phase parameters must be positive");
    for (auto &st : progs_) {
        for (unsigned q = 0; q < numQacValues; ++q)
            st.expCntReg[q] = p.initialExpCnt;
    }
}

Mdm::ProgState &
Mdm::state(ProgramId p)
{
    panic_if(p < 0 || static_cast<unsigned>(p) >= progs_.size(),
             "bad program id %d", p);
    return progs_[static_cast<unsigned>(p)];
}

const Mdm::ProgState &
Mdm::state(ProgramId p) const
{
    panic_if(p < 0 || static_cast<unsigned>(p) >= progs_.size(),
             "bad program id %d", p);
    return progs_[static_cast<unsigned>(p)];
}

std::uint8_t
Mdm::recordEviction(ProgramId owner, std::uint8_t q_i,
                    unsigned count)
{
    panic_if(count == 0, "eviction update with zero count");
    panic_if(q_i >= numQacValues, "bad q_i %u", q_i);
    std::uint8_t q_e = quantizeQac(count);
    ProgState &st = state(owner);

    st.accumCnt[q_e] += static_cast<double>(count);
    ++st.numQSumI[q_e];
    ++st.numQ[q_i][q_e];
    ++st.numQSumE[q_i];
    ++st.totalUpdates;

    // Phase machinery (Sec. 3.2.2): observation accumulates without
    // refreshing the registered values; estimation refreshes them
    // every recomputeEvery updates; counters reset when a new
    // observation phase begins.
    ++st.phaseUpdateCount;
    if (st.observing) {
        if (st.phaseUpdateCount >= params_.phaseUpdates) {
            st.observing = false;
            st.phaseUpdateCount = 0;
        }
    } else {
        if (st.phaseUpdateCount % params_.recomputeEvery == 0)
            recompute(st);
        if (st.phaseUpdateCount >= params_.phaseUpdates) {
            st.observing = true;
            st.phaseUpdateCount = 0;
            for (unsigned q = 0; q < numQacValues; ++q) {
                st.accumCnt[q] = 0.0;
                st.numQSumI[q] = 0;
                st.numQSumE[q] = 0;
                for (unsigned e = 0; e < numQacValues; ++e)
                    st.numQ[q][e] = 0;
            }
        }
    }
    PROFESS_AUDIT_ONLY(auditInvariants());
    return q_e;
}

void
Mdm::auditInvariants() const
{
    // Table 5 bucket bounds per q_E; counts arrive from 6-bit
    // saturating access counters, so 63 caps every bucket.
    constexpr double bucket_lo[numQacValues] = {0.0, 1.0, 8.0, 32.0};
    constexpr double bucket_hi[numQacValues] = {0.0, 7.0, 31.0, 63.0};
    for (const ProgState &st : progs_) {
        std::uint64_t joint_total = 0;
        for (unsigned q_i = 0; q_i < numQacValues; ++q_i) {
            profess_audit(st.numQ[q_i][0] == 0,
                          "q_E = 0 transition recorded (counts are "
                          "non-zero by contract)");
            std::uint64_t row = 0;
            for (unsigned q_e = 0; q_e < numQacValues; ++q_e)
                row += st.numQ[q_i][q_e];
            profess_audit(st.numQSumE[q_i] == row,
                          "num_q_sum_E[%u] = %llu but joint row "
                          "sums to %llu",
                          q_i,
                          static_cast<unsigned long long>(
                              st.numQSumE[q_i]),
                          static_cast<unsigned long long>(row));
            joint_total += row;
        }
        std::uint64_t col_total = 0;
        for (unsigned q_e = 0; q_e < numQacValues; ++q_e) {
            std::uint64_t col = 0;
            for (unsigned q_i = 0; q_i < numQacValues; ++q_i)
                col += st.numQ[q_i][q_e];
            profess_audit(st.numQSumI[q_e] == col,
                          "num_q_sum_I[%u] = %llu but joint column "
                          "sums to %llu",
                          q_e,
                          static_cast<unsigned long long>(
                              st.numQSumI[q_e]),
                          static_cast<unsigned long long>(col));
            col_total += col;
            double n = static_cast<double>(st.numQSumI[q_e]);
            profess_audit(st.accumCnt[q_e] >= n * bucket_lo[q_e] &&
                              st.accumCnt[q_e] <= n * bucket_hi[q_e],
                          "accum_cnt[%u] = %g outside Table 5 "
                          "bounds for %llu updates",
                          q_e, st.accumCnt[q_e],
                          static_cast<unsigned long long>(
                              st.numQSumI[q_e]));
        }
        profess_audit(joint_total == col_total,
                      "joint transition counts disagree");
        for (unsigned q = 0; q < numQacValues; ++q) {
            profess_audit(std::isfinite(st.expCntReg[q]) &&
                              st.expCntReg[q] >= 0.0,
                          "exp_cnt[%u] = %g not finite/non-negative",
                          q, st.expCntReg[q]);
        }
        profess_audit(st.phaseUpdateCount < params_.phaseUpdates,
                      "phase counter %llu not below phase length "
                      "%llu",
                      static_cast<unsigned long long>(
                          st.phaseUpdateCount),
                      static_cast<unsigned long long>(
                          params_.phaseUpdates));
    }
}

void
Mdm::recompute(ProgState &st) const
{
    // Valid q_E values are 1..3 (q_E = 0 cannot occur, Sec. 3.2.2).
    constexpr unsigned num_q_e = numQacValues - 1;
    for (unsigned q_e = 1; q_e < numQacValues; ++q_e) {
        st.avgCntReg[q_e] =
            st.numQSumI[q_e] > 0
                ? st.accumCnt[q_e] /
                      static_cast<double>(st.numQSumI[q_e])
                : 0.0;
    }
    for (unsigned q_i = 0; q_i < numQacValues; ++q_i) {
        double exp = 0.0;
        for (unsigned q_e = 1; q_e < numQacValues; ++q_e) {
            double p =
                (static_cast<double>(st.numQ[q_i][q_e]) + 1.0) /
                (static_cast<double>(st.numQSumE[q_i]) + num_q_e);
            st.pReg[q_i][q_e] = p;
            exp += st.avgCntReg[q_e] * p;
        }
        st.expCntReg[q_i] = exp;
    }
}

double
Mdm::expCnt(ProgramId p, std::uint8_t q_i) const
{
    panic_if(q_i >= numQacValues, "bad q_i %u", q_i);
    return state(p).expCntReg[q_i];
}

Mdm::DecidePath
Mdm::evaluate(const policy::AccessInfo &info, bool treat_vacant,
              double &rem_m2, double &rem_m1) const
{
    const hybrid::StcMeta &meta = *info.meta;
    rem_m1 = 0.0;
    rem_m2 = remaining(info.accessor, meta.qacAtInsert[info.slot],
                       meta.ac[info.slot]);

    // Top-level condition: enough predicted remaining accesses to
    // amortize the swap at all.
    if (rem_m2 < static_cast<double>(params_.minBenefit)) {
        // thread_local: systems may simulate concurrently under
        // the parallel experiment runner.
        thread_local int debug_left =
            std::getenv("PROFESS_MDM_DEBUG") ? 40 : 0;
        if (debug_left > 0 && info.now > 2000000) {
            --debug_left;
            std::fprintf(stderr,
                         "[mdm] reject grp=%llu slot=%u qI=%u ac=%u "
                         "exp=%.1f m1ac=%u\n",
                         (unsigned long long)info.group, info.slot,
                         meta.qacAtInsert[info.slot],
                         meta.ac[info.slot],
                         expCnt(info.accessor,
                                meta.qacAtInsert[info.slot]),
                         meta.ac[info.m1Slot]);
        }
        return DecidePath::NoBenefit;
    }

    // (a) M1 vacant (or ProFess Case 1 forcing vacancy).
    if (treat_vacant || info.m1Owner == invalidProgram)
        return DecidePath::Vacant;

    unsigned m1_cnt = meta.ac[info.m1Slot];
    if (m1_cnt == 0) {
        // (b) M1 occupied but unaccessed while another block of the
        // group is being accessed.  An idle counter right after an
        // ST-entry (re)insertion is weak evidence, so an incumbent
        // whose last residency was hot (QAC >= 2) is judged by its
        // prediction instead of being displaced outright.
        if (!meta.anyOtherAccessed(hybrid::maxSlots, info.m1Slot))
            return DecidePath::Rejected;
        if (meta.depleted(info.m1Slot) ||
            meta.qacAtInsert[info.m1Slot] < 2) {
            return DecidePath::IdleM1;
        }
        // Hot history but no observed accesses this residency: the
        // incumbent is mid-lifecycle on average, so charge it half
        // its expectation.
        rem_m1 = 0.5 * expCnt(info.m1Owner,
                              meta.qacAtInsert[info.m1Slot]);
        if (rem_m2 - rem_m1 >=
            static_cast<double>(params_.minBenefit)) {
            return DecidePath::IdleM1;
        }
        return DecidePath::Rejected;
    }

    // (c) both blocks active: individual cost-benefit analysis.
    rem_m1 = remaining(info.m1Owner, meta.qacAtInsert[info.m1Slot],
                       m1_cnt);
    if (rem_m1 <= 0.0)
        return DecidePath::Depleted; // (c.i)
    if (rem_m2 - rem_m1 >= static_cast<double>(params_.minBenefit))
        return DecidePath::NetBenefit; // (c.ii)
    return DecidePath::Rejected;
}

policy::Decision
Mdm::decide(const policy::AccessInfo &info, bool treat_vacant) const
{
    if (PROFESS_UNLIKELY(pinnedDecision_ >= 0))
        return static_cast<policy::Decision>(pinnedDecision_);
    double rem_m2 = 0.0;
    double rem_m1 = 0.0;
    DecidePath path = evaluate(info, treat_vacant, rem_m2, rem_m1);
    ++pathCounts_[static_cast<unsigned>(path)];
    bool swap = pathSwaps(path);
    if (PROFESS_UNLIKELY(trace_ != nullptr)) {
        telemetry::TraceRecord r;
        r.tick = info.now;
        r.group = info.group;
        r.a = rem_m2;
        r.b = rem_m1;
        r.margin = rem_m2 - rem_m1 -
                   static_cast<double>(params_.minBenefit);
        r.accessor = info.accessor;
        r.m1Owner = info.m1Owner;
        r.detail = static_cast<std::uint32_t>(path);
        r.kind = static_cast<std::uint8_t>(
            telemetry::TraceKind::MdmDecide);
        r.qI = info.meta->qacAtInsert[info.slot];
        r.swapped = swap ? 1 : 0;
        trace_->push(r);
    }
    return swap ? policy::Decision::Swap : policy::Decision::NoSwap;
}

const char *
Mdm::pathName(DecidePath p)
{
    switch (p) {
      case DecidePath::NoBenefit:
        return "no_benefit";
      case DecidePath::Vacant:
        return "vacant";
      case DecidePath::IdleM1:
        return "idle_m1";
      case DecidePath::Depleted:
        return "depleted";
      case DecidePath::NetBenefit:
        return "net_benefit";
      case DecidePath::Rejected:
        return "rejected";
      default:
        return "unknown";
    }
}

void
Mdm::registerTelemetry(telemetry::StatRegistry &registry,
                       const std::string &prefix) const
{
    constexpr auto num_paths =
        static_cast<unsigned>(DecidePath::NumPaths);
    for (unsigned p = 0; p < num_paths; ++p) {
        registry.addCounter(
            prefix + ".path_" +
                pathName(static_cast<DecidePath>(p)),
            pathCounts_[p]);
    }
    for (unsigned i = 0; i < progs_.size(); ++i) {
        std::string pp = prefix + ".p" + std::to_string(i);
        auto id = static_cast<ProgramId>(i);
        registry.addProbe(pp + ".updates", [this, id]() {
            return static_cast<double>(updates(id));
        });
        for (unsigned q = 0; q < numQacValues; ++q) {
            registry.addProbe(
                pp + ".exp_cnt_q" + std::to_string(q),
                [this, id, q]() {
                    return expCnt(id,
                                  static_cast<std::uint8_t>(q));
                });
        }
    }
}

std::uint64_t
Mdm::updates(ProgramId p) const
{
    return state(p).totalUpdates;
}

double
Mdm::avgCnt(ProgramId p, std::uint8_t q_e) const
{
    panic_if(q_e >= numQacValues, "bad q_e %u", q_e);
    return state(p).avgCntReg[q_e];
}

double
Mdm::transitionProb(ProgramId p, std::uint8_t q_i,
                    std::uint8_t q_e) const
{
    panic_if(q_i >= numQacValues || q_e >= numQacValues,
             "bad transition (%u,%u)", q_i, q_e);
    return state(p).pReg[q_i][q_e];
}

} // namespace core

} // namespace profess
