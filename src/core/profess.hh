/**
 * @file
 * ProFess: MDM guided by RSM (Sec. 3.3, Table 7).
 *
 * When the two blocks of a candidate swap belong to different
 * programs, RSM's slowdown factors steer the decision:
 *
 *  Case 1: SF_A(c1) < SF_A(c2) and SF_B(c1) < SF_B(c2)
 *          -> consider M1 vacant and use MDM (aggressive help for
 *             the suffering program c2)
 *  Case 2: SF_A(c1) > SF_A(c2) and SF_B(c1) > SF_B(c2)
 *          -> do not swap (protect c1's block)
 *  Case 3: SF_A(c1) < SF_A(c2) and SF_B(c1) > SF_B(c2) and
 *          SF_A(c1)*SF_B(c1) > SF_A(c2)*SF_B(c2)
 *          -> do not swap
 *  otherwise -> plain MDM
 *
 * Each single-factor comparison uses a ~3% hysteresis threshold
 * (1/32) and the product comparison a ~6% threshold (1/16) to skip
 * too-similar values (Sec. 3.3).
 */

#ifndef PROFESS_CORE_PROFESS_HH
#define PROFESS_CORE_PROFESS_HH

#include "core/mdm.hh"
#include "core/mdm_policy.hh"
#include "core/rsm.hh"
#include "hybrid/layout.hh"
#include "os/page_allocator.hh"
#include "policy/policy.hh"

namespace profess
{

namespace core
{

/** The full framework as a migration policy. */
class ProfessPolicy : public policy::MigrationPolicy
{
  public:
    struct Params
    {
        Mdm::Params mdm{};
        Rsm::Params rsm{};
        double factorThreshold = 1.0 + 1.0 / 32.0;  ///< ~3%
        double productThreshold = 1.0 + 1.0 / 16.0; ///< ~6%
    };

    ProfessPolicy(const hybrid::HybridLayout &layout,
                  const os::BlockOwnerOracle &oracle,
                  const Params &params)
        : layout_(layout), oracle_(oracle), params_(params),
          mdm_(params.mdm), rsm_(params.rsm)
    {
    }

    const char *name() const override { return "profess"; }
    unsigned writeWeight() const override { return 8; }

    policy::Decision onM2Access(const policy::AccessInfo &info)
        override;

    void
    onServed(const policy::AccessInfo &info) override
    {
        rsm_.onServed(info.accessor, info.region, info.fromM1,
                      info.now);
    }

    void
    onStcEvict(std::uint64_t group, const hybrid::StcMeta &meta,
               hybrid::StEntry &entry) override
    {
        applyEvictionUpdates(mdm_, layout_, oracle_, group, meta,
                             entry);
    }

    void
    onSwapComplete(std::uint64_t, unsigned, unsigned,
                   ProgramId promoted_owner, ProgramId demoted_owner,
                   bool private_region) override
    {
        rsm_.onSwap(promoted_owner, demoted_owner, private_region);
    }

    /** Table 7 case applied on the last cross-program access. */
    enum class GuidanceCase
    {
        SameProgram,
        Case1,
        Case2,
        Case3,
        Default
    };

    /** @return the Table 7 case for the given access (for tests). */
    GuidanceCase classify(const policy::AccessInfo &info) const;

    /** @return RSM sub-component. */
    Rsm &rsm() { return rsm_; }
    const Rsm &rsm() const { return rsm_; }

    /** @return MDM sub-component. */
    Mdm &mdm() { return mdm_; }
    const Mdm &mdm() const { return mdm_; }

    /** Count of decisions per Table 7 case (diagnostics). */
    std::uint64_t caseCount(GuidanceCase c) const
    {
        return caseCounts_[static_cast<unsigned>(c)];
    }

    /** @return short stable name of a Table 7 case. */
    static const char *caseName(GuidanceCase c);

    /** Trace guidance cases + MDM decisions + RSM periods. */
    void setTraceSink(telemetry::DecisionTraceSink *sink) override;

    /** Register RSM/MDM/guidance statistics under `prefix`. */
    void registerTelemetry(telemetry::StatRegistry &registry,
                           const std::string &prefix) override;

    /** Audit both sub-mechanisms (MDM Table 6, RSM Table 3). */
    void
    auditInvariants() const override
    {
        mdm_.auditInvariants();
        rsm_.auditInvariants();
    }

  private:
    const hybrid::HybridLayout &layout_;
    const os::BlockOwnerOracle &oracle_;
    Params params_;
    Mdm mdm_;
    Rsm rsm_;
    telemetry::DecisionTraceSink *trace_ = nullptr;
    std::uint64_t caseCounts_[5] = {};
};

} // namespace core

} // namespace profess

#endif // PROFESS_CORE_PROFESS_HH
