#include "core/profess.hh"

#include "common/telemetry.hh"
#include "common/trace_sink.hh"

namespace profess
{

namespace core
{

ProfessPolicy::GuidanceCase
ProfessPolicy::classify(const policy::AccessInfo &info) const
{
    ProgramId c1 = info.m1Owner;   // program owning the M1 block
    ProgramId c2 = info.accessor;  // program accessing M2
    if (c1 == invalidProgram || c1 == c2)
        return GuidanceCase::SameProgram;

    double t = params_.factorThreshold;
    double tp = params_.productThreshold;
    double sfa1 = rsm_.sfA(c1), sfa2 = rsm_.sfA(c2);
    double sfb1 = rsm_.sfB(c1), sfb2 = rsm_.sfB(c2);

    bool a1_lt_a2 = sfa1 * t < sfa2;
    bool a1_gt_a2 = sfa1 > sfa2 * t;
    bool b1_lt_b2 = sfb1 * t < sfb2;
    bool b1_gt_b2 = sfb1 > sfb2 * t;

    if (a1_lt_a2 && b1_lt_b2)
        return GuidanceCase::Case1;
    if (a1_gt_a2 && b1_gt_b2)
        return GuidanceCase::Case2;
    if (a1_lt_a2 && b1_gt_b2 && sfa1 * sfb1 > sfa2 * sfb2 * tp)
        return GuidanceCase::Case3;
    return GuidanceCase::Default;
}

policy::Decision
ProfessPolicy::onM2Access(const policy::AccessInfo &info)
{
    GuidanceCase c = classify(info);
    ++caseCounts_[static_cast<unsigned>(c)];
    policy::Decision d = policy::Decision::NoSwap;
    switch (c) {
      case GuidanceCase::SameProgram:
      case GuidanceCase::Default:
        d = mdm_.decide(info, false);
        break;
      case GuidanceCase::Case1:
        // Help c2 as if it ran alone: ignore the M1 block, but
        // still consult MDM about the benefit (RSM is agnostic to
        // the M1/M2 characteristics, Sec. 3.3).
        d = mdm_.decide(info, true);
        break;
      case GuidanceCase::Case2:
      case GuidanceCase::Case3:
        d = policy::Decision::NoSwap;
        break;
    }
    if (PROFESS_UNLIKELY(trace_ != nullptr)) {
        telemetry::TraceRecord r;
        r.tick = info.now;
        r.group = info.group;
        r.a = rsm_.sfA(info.accessor);
        r.b = rsm_.sfB(info.accessor);
        r.accessor = info.accessor;
        r.m1Owner = info.m1Owner;
        r.detail = static_cast<std::uint32_t>(c);
        r.kind = static_cast<std::uint8_t>(
            telemetry::TraceKind::GuidanceCase);
        r.qI = info.meta->qacAtInsert[info.slot];
        r.swapped = d == policy::Decision::Swap ? 1 : 0;
        trace_->push(r);
    }
    return d;
}

const char *
ProfessPolicy::caseName(GuidanceCase c)
{
    switch (c) {
      case GuidanceCase::SameProgram:
        return "same_program";
      case GuidanceCase::Case1:
        return "case1";
      case GuidanceCase::Case2:
        return "case2";
      case GuidanceCase::Case3:
        return "case3";
      case GuidanceCase::Default:
        return "default";
      default:
        return "unknown";
    }
}

void
ProfessPolicy::setTraceSink(telemetry::DecisionTraceSink *sink)
{
    trace_ = sink;
    mdm_.setTraceSink(sink);
    rsm_.setTraceSink(sink);
}

void
ProfessPolicy::registerTelemetry(telemetry::StatRegistry &registry,
                                 const std::string &prefix)
{
    for (unsigned i = 0; i < 5; ++i) {
        registry.addCounter(
            prefix + ".guidance." +
                caseName(static_cast<GuidanceCase>(i)),
            caseCounts_[i]);
    }
    mdm_.registerTelemetry(registry, prefix + ".mdm");
    rsm_.registerTelemetry(registry, prefix + ".rsm");
}

} // namespace core

} // namespace profess
