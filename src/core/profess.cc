#include "core/profess.hh"

namespace profess
{

namespace core
{

ProfessPolicy::GuidanceCase
ProfessPolicy::classify(const policy::AccessInfo &info) const
{
    ProgramId c1 = info.m1Owner;   // program owning the M1 block
    ProgramId c2 = info.accessor;  // program accessing M2
    if (c1 == invalidProgram || c1 == c2)
        return GuidanceCase::SameProgram;

    double t = params_.factorThreshold;
    double tp = params_.productThreshold;
    double sfa1 = rsm_.sfA(c1), sfa2 = rsm_.sfA(c2);
    double sfb1 = rsm_.sfB(c1), sfb2 = rsm_.sfB(c2);

    bool a1_lt_a2 = sfa1 * t < sfa2;
    bool a1_gt_a2 = sfa1 > sfa2 * t;
    bool b1_lt_b2 = sfb1 * t < sfb2;
    bool b1_gt_b2 = sfb1 > sfb2 * t;

    if (a1_lt_a2 && b1_lt_b2)
        return GuidanceCase::Case1;
    if (a1_gt_a2 && b1_gt_b2)
        return GuidanceCase::Case2;
    if (a1_lt_a2 && b1_gt_b2 && sfa1 * sfb1 > sfa2 * sfb2 * tp)
        return GuidanceCase::Case3;
    return GuidanceCase::Default;
}

policy::Decision
ProfessPolicy::onM2Access(const policy::AccessInfo &info)
{
    GuidanceCase c = classify(info);
    ++caseCounts_[static_cast<unsigned>(c)];
    switch (c) {
      case GuidanceCase::SameProgram:
      case GuidanceCase::Default:
        return mdm_.decide(info, false);
      case GuidanceCase::Case1:
        // Help c2 as if it ran alone: ignore the M1 block, but
        // still consult MDM about the benefit (RSM is agnostic to
        // the M1/M2 characteristics, Sec. 3.3).
        return mdm_.decide(info, true);
      case GuidanceCase::Case2:
      case GuidanceCase::Case3:
        return policy::Decision::NoSwap;
    }
    panic("unreachable");
}

} // namespace core

} // namespace profess
