/**
 * @file
 * MDM as a standalone migration policy (Sec. 5.1, 5.3: "MDM"),
 * i.e., the probabilistic mechanism maximizing performance without
 * RSM's fairness guidance.
 */

#ifndef PROFESS_CORE_MDM_POLICY_HH
#define PROFESS_CORE_MDM_POLICY_HH

#include "core/mdm.hh"
#include "hybrid/layout.hh"
#include "os/page_allocator.hh"
#include "policy/policy.hh"

namespace profess
{

namespace core
{

/**
 * Fold a group's final access counts into MDM statistics at
 * ST-entry eviction, writing back the new QAC values (Sec. 3.2.1).
 * Shared by MdmPolicy and ProfessPolicy.
 */
void applyEvictionUpdates(Mdm &mdm, const hybrid::HybridLayout &layout,
                          const os::BlockOwnerOracle &oracle,
                          std::uint64_t group,
                          const hybrid::StcMeta &meta,
                          hybrid::StEntry &entry);

/** MDM-only policy. */
class MdmPolicy : public policy::MigrationPolicy
{
  public:
    MdmPolicy(const hybrid::HybridLayout &layout,
              const os::BlockOwnerOracle &oracle,
              const Mdm::Params &params)
        : layout_(layout), oracle_(oracle), mdm_(params)
    {
    }

    const char *name() const override { return "mdm"; }
    unsigned writeWeight() const override { return 8; }

    policy::Decision
    onM2Access(const policy::AccessInfo &info) override
    {
        return mdm_.decide(info, false);
    }

    void
    onStcEvict(std::uint64_t group, const hybrid::StcMeta &meta,
               hybrid::StEntry &entry) override
    {
        applyEvictionUpdates(mdm_, layout_, oracle_, group, meta,
                             entry);
    }

    /** @return the prediction engine (tests, reporting). */
    Mdm &engine() { return mdm_; }
    const Mdm &engine() const { return mdm_; }

    void
    setTraceSink(telemetry::DecisionTraceSink *sink) override
    {
        mdm_.setTraceSink(sink);
    }

    void
    registerTelemetry(telemetry::StatRegistry &registry,
                      const std::string &prefix) override
    {
        mdm_.registerTelemetry(registry, prefix + ".mdm");
    }

    /** Audit the prediction engine's Table 6 statistics. */
    void auditInvariants() const override
    {
        mdm_.auditInvariants();
    }

  private:
    const hybrid::HybridLayout &layout_;
    const os::BlockOwnerOracle &oracle_;
    Mdm mdm_;
};

} // namespace core

} // namespace profess

#endif // PROFESS_CORE_MDM_POLICY_HH
