#include "core/rsm.hh"

#include <cmath>

#include "common/invariant.hh"
#include "common/logging.hh"
#include "common/telemetry.hh"
#include "common/trace_sink.hh"

namespace profess
{

namespace core
{

Rsm::Rsm(const Params &p) : params_(p), progs_(p.numPrograms)
{
    fatal_if(p.numPrograms == 0, "RSM needs at least one program");
    fatal_if(p.numRegions <= p.numPrograms,
             "need more regions than programs");
    fatal_if(p.sampleRequests == 0, "Msamp must be positive");
    for (auto &st : progs_) {
        for (auto &sm : st.sm)
            sm = ExpSmoother(p.alpha);
        if (p.perRegionStats)
            st.perRegion.assign(p.numRegions, 0);
    }
}

Rsm::ProgState &
Rsm::state(ProgramId p)
{
    panic_if(p < 0 || static_cast<unsigned>(p) >= progs_.size(),
             "bad program id %d", p);
    return progs_[static_cast<unsigned>(p)];
}

const Rsm::ProgState &
Rsm::state(ProgramId p) const
{
    panic_if(p < 0 || static_cast<unsigned>(p) >= progs_.size(),
             "bad program id %d", p);
    return progs_[static_cast<unsigned>(p)];
}

void
Rsm::onServed(ProgramId p, unsigned region, bool from_m1, Tick now)
{
    ProgState &st = state(p);
    if (region == static_cast<unsigned>(p)) {
        // The program's own private region.
        ++st.reqTotalP;
        if (from_m1)
            ++st.reqM1P;
    } else if (region < params_.numPrograms) {
        // Another program's private region: the OS never allocates
        // foreign frames there (Sec. 3.1.1).
        panic("request of program %d in private region %u", p,
              region);
    } else {
        ++st.reqTotalS;
        if (from_m1)
            ++st.reqM1S;
    }
    if (params_.perRegionStats)
        ++st.perRegion[region];

    if (++st.periodServed >= params_.sampleRequests)
        endPeriod(p, st, now);
}

void
Rsm::onSwap(ProgramId owner_promoted, ProgramId owner_demoted,
            bool private_region)
{
    if (private_region)
        return; // Sec. 3.1.2: swaps in private regions not counted
    bool self = owner_promoted == owner_demoted;
    if (owner_promoted != invalidProgram) {
        ProgState &st = state(owner_promoted);
        ++st.swapTotal;
        if (self)
            ++st.swapSelf;
    }
    if (owner_demoted != invalidProgram && !self) {
        ProgState &st = state(owner_demoted);
        ++st.swapTotal;
    }
}

void
Rsm::endPeriod(ProgramId p, ProgState &st, Tick now)
{
    // Exponential smoothing of the counters, each incremented by one
    // to avoid zeros (Sec. 3.1.3).
    double a_m1p = st.sm[0].add(static_cast<double>(st.reqM1P + 1));
    double a_totp =
        st.sm[1].add(static_cast<double>(st.reqTotalP + 1));
    double a_m1s = st.sm[2].add(static_cast<double>(st.reqM1S + 1));
    double a_tots =
        st.sm[3].add(static_cast<double>(st.reqTotalS + 1));
    double a_self =
        st.sm[4].add(static_cast<double>(st.swapSelf + 1));
    double a_total =
        st.sm[5].add(static_cast<double>(st.swapTotal + 1));

    // Pinned factors freeze here; the smoothers above keep running
    // so an unpin resumes from honestly accumulated history.
    if (!st.pinned) {
        st.sfA = (a_m1p / a_totp) / (a_m1s / a_tots);
        st.sfB = a_total / a_self; // 1 / (self / total)
    }

    if (params_.perRegionStats) {
        PeriodSample s;
        double raw_p =
            static_cast<double>(st.reqM1P + 1) /
            static_cast<double>(st.reqTotalP + 1);
        double raw_s =
            static_cast<double>(st.reqM1S + 1) /
            static_cast<double>(st.reqTotalS + 1);
        s.rawSfA = raw_p / raw_s;
        s.avgSfA = st.sfA;
        RunningStat rs;
        for (std::uint64_t c : st.perRegion)
            rs.add(static_cast<double>(c));
        s.reqStdPct = rs.mean() > 0.0
                          ? 100.0 * rs.stddev() / rs.mean()
                          : 0.0;
        st.hist.push_back(s);
        std::fill(st.perRegion.begin(), st.perRegion.end(), 0);
    }

    st.reqM1P = st.reqTotalP = 0;
    st.reqM1S = st.reqTotalS = 0;
    st.swapSelf = st.swapTotal = 0;
    st.periodServed = 0;
    ++st.periodCount;

    if (PROFESS_UNLIKELY(trace_ != nullptr)) {
        telemetry::TraceRecord r;
        r.tick = now;
        r.a = st.sfA;
        r.b = st.sfB;
        r.accessor = p;
        r.detail = static_cast<std::uint32_t>(st.periodCount);
        r.kind = static_cast<std::uint8_t>(
            telemetry::TraceKind::RsmPeriod);
        trace_->push(r);
    }
    PROFESS_AUDIT_ONLY(auditInvariants());
}

void
Rsm::pinFactors(ProgramId p, double sf_a, double sf_b)
{
    fatal_if(!(std::isfinite(sf_a) && sf_a > 0.0) ||
                 !(std::isfinite(sf_b) && sf_b >= 1.0),
             "pinned factors sf_a=%g sf_b=%g violate SF_A > 0, "
             "SF_B >= 1",
             sf_a, sf_b);
    ProgState &st = state(p);
    st.sfA = sf_a;
    st.sfB = sf_b;
    st.pinned = true;
}

void
Rsm::unpinFactors(ProgramId p)
{
    state(p).pinned = false;
}

void
Rsm::auditInvariants() const
{
    for (unsigned i = 0; i < progs_.size(); ++i) {
        const ProgState &st = progs_[i];
        profess_audit(std::isfinite(st.sfA) && st.sfA > 0.0,
                      "program %u SF_A = %g not finite/positive", i,
                      st.sfA);
        profess_audit(std::isfinite(st.sfB) &&
                          st.sfB >= 1.0 - 1e-9,
                      "program %u SF_B = %g below 1 (self swaps "
                      "cannot exceed total swaps)",
                      i, st.sfB);
        profess_audit(st.reqM1P <= st.reqTotalP &&
                          st.reqM1S <= st.reqTotalS,
                      "program %u M1 request counts exceed totals",
                      i);
        profess_audit(st.swapSelf <= st.swapTotal,
                      "program %u self swaps %llu exceed total %llu",
                      i,
                      static_cast<unsigned long long>(st.swapSelf),
                      static_cast<unsigned long long>(st.swapTotal));
        profess_audit(st.periodServed < params_.sampleRequests,
                      "program %u served counter %llu not below "
                      "Msamp %llu",
                      i,
                      static_cast<unsigned long long>(
                          st.periodServed),
                      static_cast<unsigned long long>(
                          params_.sampleRequests));
        profess_audit(st.periodServed ==
                          st.reqTotalP + st.reqTotalS,
                      "program %u served %llu disagrees with its "
                      "request counters",
                      i,
                      static_cast<unsigned long long>(
                          st.periodServed));
    }
}

void
Rsm::registerTelemetry(telemetry::StatRegistry &registry,
                       const std::string &prefix) const
{
    for (unsigned i = 0; i < progs_.size(); ++i) {
        std::string pp = prefix + ".p" + std::to_string(i);
        auto id = static_cast<ProgramId>(i);
        registry.addProbe(pp + ".sf_a",
                          [this, id]() { return sfA(id); });
        registry.addProbe(pp + ".sf_b",
                          [this, id]() { return sfB(id); });
        registry.addProbe(pp + ".periods", [this, id]() {
            return static_cast<double>(periods(id));
        });
    }
}

double
Rsm::sfA(ProgramId p) const
{
    return state(p).sfA;
}

double
Rsm::sfB(ProgramId p) const
{
    return state(p).sfB;
}

std::uint64_t
Rsm::periods(ProgramId p) const
{
    return state(p).periodCount;
}

const std::vector<Rsm::PeriodSample> &
Rsm::history(ProgramId p) const
{
    return state(p).hist;
}

} // namespace core

} // namespace profess
