/**
 * @file
 * Migration-Decision Mechanism (MDM, Sec. 3.2).
 *
 * MDM performs an individual cost-benefit analysis for each pair of
 * blocks considered for a swap.  Per program and per QAC value
 * (Table 5), it learns the expected number of accesses a block will
 * receive during one residency of its ST entry in the STC:
 *
 *   exp_cnt(qI) = sum_{qE} avg_cnt(qE) * P(qE | qI)          (Eq. 5)
 *   avg_cnt(qE) = accum_cnt(qE) / num_q_sum_I(qE)            (Eq. 6)
 *   P(qE|qI)    = (num_q(qI,qE) + 1) / (num_q_sum_E(qI) + 3) (Eq. 7)
 *
 * and predicts each block's remaining accesses as
 * exp_cnt(qI) - current count (Eq. 8).  A promotion happens only if
 * the predicted remaining accesses of the M2 block exceed those of
 * the M1 block by at least min_benefit (= 8, derived from the swap
 * cost like PoM's K, Sec. 4.1).
 *
 * Statistics update at ST-entry evictions; the derived avg/P/exp
 * values refresh in phases: a 1K-update observation phase (counters
 * reset at its start, no recomputation) alternating with a 1K-update
 * estimation phase recomputing every 100 updates (Sec. 3.2.2).
 */

#ifndef PROFESS_CORE_MDM_HH
#define PROFESS_CORE_MDM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "policy/policy.hh"

namespace profess
{

namespace telemetry
{
class StatRegistry;
class DecisionTraceSink;
} // namespace telemetry

namespace core
{

/** Number of QAC values (Table 5). */
constexpr unsigned numQacValues = 4;

/** Quantize an access count into a QAC value (Table 5). */
constexpr std::uint8_t
quantizeQac(unsigned count)
{
    if (count == 0)
        return 0;
    if (count < 8)
        return 1;
    if (count < 32)
        return 2;
    return 3;
}

/** Compile-time audit of quantizeQac over the 6-bit counter range:
 *  monotone non-decreasing and within 2 bits (Table 5). */
constexpr bool
qacQuantizationMonotone()
{
    for (unsigned c = 0; c <= 64; ++c) {
        if (quantizeQac(c) >= numQacValues)
            return false;
        if (c > 0 && quantizeQac(c) < quantizeQac(c - 1))
            return false;
    }
    return true;
}

static_assert(qacQuantizationMonotone(),
              "QAC quantization must be monotone and 2-bit");
static_assert(quantizeQac(0) == 0 && quantizeQac(1) == 1 &&
                  quantizeQac(7) == 1 && quantizeQac(8) == 2 &&
                  quantizeQac(31) == 2 && quantizeQac(32) == 3 &&
                  quantizeQac(63) == 3,
              "Table 5 bucket edges");

/** The prediction engine (per-program statistics, Table 6). */
class Mdm
{
  public:
    struct Params
    {
        unsigned numPrograms = 4;
        unsigned minBenefit = 8;
        /** Paper: 1K updates per phase, recompute every 100; scaled
         *  down with the 1/100 run length (DESIGN.md Sec. 2) so the
         *  mechanism sees the same number of phases per run. */
        std::uint64_t phaseUpdates = 1024;
        std::uint64_t recomputeEvery = 100;
        /** exp_cnt before the first estimation phase completes.
         *  Conservative (0): no promotions until real statistics
         *  exist; the counters accumulate from the start either
         *  way, so predictions activate within ~1K evictions. */
        double initialExpCnt = 0.0;
    };

    explicit Mdm(const Params &p);

    /**
     * Fold a block's final access count into the statistics
     * (invoked at ST-entry eviction for each block with a non-zero
     * count, Sec. 3.2.2).
     *
     * @param owner Owning program.
     * @param q_i QAC at insertion of the block's ST entry.
     * @param count Access count at eviction (> 0).
     * @return The block's new QAC value (q_E).
     */
    std::uint8_t recordEviction(ProgramId owner, std::uint8_t q_i,
                                unsigned count);

    /** @return exp_cnt(qI) of a program (Eq. 5). */
    double expCnt(ProgramId p, std::uint8_t q_i) const;

    /** @return predicted remaining accesses (Eq. 8). */
    double
    remaining(ProgramId p, std::uint8_t q_i, unsigned count) const
    {
        return expCnt(p, q_i) - static_cast<double>(count);
    }

    /** Which branch of Sec. 3.2.3 decided an M2 access. */
    enum class DecidePath : unsigned
    {
        NoBenefit = 0, ///< rem_M2 < min_benefit
        Vacant,        ///< case (a)
        IdleM1,        ///< case (b)
        Depleted,      ///< case (c.i): rem_M1 <= 0
        NetBenefit,    ///< case (c.ii)
        Rejected,      ///< no condition held
        NumPaths
    };

    /**
     * The migration decision of Sec. 3.2.3 for an M2 access.
     *
     * @param info Access descriptor (counters already bumped).
     * @param treat_vacant Ignore the M1 block (ProFess Case 1).
     */
    policy::Decision decide(const policy::AccessInfo &info,
                            bool treat_vacant) const;

    /** @return times each decision path was taken. */
    std::uint64_t
    pathCount(DecidePath p) const
    {
        return pathCounts_[static_cast<unsigned>(p)];
    }

    /** @return whether a path results in Decision::Swap. */
    static bool
    pathSwaps(DecidePath p)
    {
        return p == DecidePath::Vacant || p == DecidePath::IdleM1 ||
               p == DecidePath::Depleted ||
               p == DecidePath::NetBenefit;
    }

    /** @return short stable name of a decision path. */
    static const char *pathName(DecidePath p);

    /** Record every decide() evaluation into `sink` (null = off). */
    void
    setTraceSink(telemetry::DecisionTraceSink *sink)
    {
        trace_ = sink;
    }

    /** Register path counters and per-program probes. */
    void registerTelemetry(telemetry::StatRegistry &registry,
                           const std::string &prefix) const;

    /**
     * Force every decide() to return `d` until unpinDecision()
     * (scenario/test hook).  Pinned decisions bypass the Table 6
     * evaluation entirely: no path counter or trace record is
     * produced, so path totals keep reconciling with the number of
     * genuine evaluations.
     */
    void
    pinDecision(policy::Decision d)
    {
        pinnedDecision_ = static_cast<int>(d);
    }

    /** Release the decision pin. */
    void unpinDecision() { pinnedDecision_ = -1; }

    /** @return true while decisions are pinned. */
    bool decisionPinned() const { return pinnedDecision_ >= 0; }

    /** @return min_benefit in force. */
    unsigned minBenefit() const { return params_.minBenefit; }

    /** @return statistics updates recorded for a program. */
    std::uint64_t updates(ProgramId p) const;

    /** @return avg_cnt(qE) (Eq. 6) as currently registered. */
    double avgCnt(ProgramId p, std::uint8_t q_e) const;

    /** @return P(qE | qI) (Eq. 7) as currently registered. */
    double transitionProb(ProgramId p, std::uint8_t q_i,
                          std::uint8_t q_e) const;

    /**
     * Audit every program's Table 6 statistics: the marginal sums
     * match the joint transition counts, accumulated access counts
     * stay consistent with the Table 5 bucket of their q_E (counts
     * arrive from 6-bit saturating ACs, so at most 63 each), the
     * registered expectations are finite and non-negative, and the
     * phase counter stays within a phase.  Panics on violation.
     * Hooked after every statistics update in PROFESS_AUDIT builds.
     */
    void auditInvariants() const;

  private:
    /** Table 6 counters and registered values of one program. */
    struct ProgState
    {
        double accumCnt[numQacValues] = {};
        std::uint64_t numQSumI[numQacValues] = {};
        std::uint64_t numQ[numQacValues][numQacValues] = {};
        std::uint64_t numQSumE[numQacValues] = {};

        double avgCntReg[numQacValues] = {};
        double pReg[numQacValues][numQacValues] = {};
        double expCntReg[numQacValues] = {};

        std::uint64_t phaseUpdateCount = 0;
        std::uint64_t totalUpdates = 0;
        bool observing = true;
    };

    /**
     * The decision logic proper: classify the access into a
     * DecidePath (which fully determines the decision) and report
     * the predictions that drove it.
     *
     * @param rem_m2 Out: predicted remaining accesses, M2 block.
     * @param rem_m1 Out: charged remaining accesses of the M1
     *        incumbent (0 when no prediction was consulted).
     */
    DecidePath evaluate(const policy::AccessInfo &info,
                        bool treat_vacant, double &rem_m2,
                        double &rem_m1) const;

    void recompute(ProgState &st) const;
    ProgState &state(ProgramId p);
    const ProgState &state(ProgramId p) const;

    Params params_;
    std::vector<ProgState> progs_;
    telemetry::DecisionTraceSink *trace_ = nullptr;
    mutable std::uint64_t
        pathCounts_[static_cast<unsigned>(DecidePath::NumPaths)] = {};
    int pinnedDecision_ = -1; ///< forced Decision, -1 = unpinned
};

} // namespace core

} // namespace profess

#endif // PROFESS_CORE_MDM_HH
