/**
 * @file
 * RSM guidance wrapped around an arbitrary migration policy.
 *
 * The paper notes (Sec. 6) that RSM merely guides migration
 * decisions and "can be integrated with other migration algorithms
 * instead of MDM".  This wrapper applies the Table 7 cases to any
 * inner policy: Case 1 forces the swap (aggressive help - inner
 * policies have no notion of a vacant M1, so help is maximal),
 * Cases 2 and 3 prohibit it, and everything else defers to the
 * inner policy.  Used by the rsm-pom ablation benchmark.
 */

#ifndef PROFESS_CORE_RSM_GUIDED_HH
#define PROFESS_CORE_RSM_GUIDED_HH

#include <memory>
#include <string>

#include "core/rsm.hh"
#include "policy/policy.hh"

namespace profess
{

namespace core
{

/** RSM-guided wrapper policy. */
class RsmGuidedPolicy : public policy::MigrationPolicy
{
  public:
    RsmGuidedPolicy(std::unique_ptr<policy::MigrationPolicy> inner,
                    const Rsm::Params &rsm_params,
                    double factor_threshold = 1.0 + 1.0 / 32.0,
                    double product_threshold = 1.0 + 1.0 / 16.0)
        : inner_(std::move(inner)), rsm_(rsm_params),
          factorThreshold_(factor_threshold),
          productThreshold_(product_threshold),
          name_(std::string("rsm-") + inner_->name())
    {
    }

    const char *name() const override { return name_.c_str(); }
    unsigned writeWeight() const override
    {
        return inner_->writeWeight();
    }

    void
    setHost(policy::SwapHost *host) override
    {
        policy::MigrationPolicy::setHost(host);
        inner_->setHost(host);
    }

    policy::Decision
    onM2Access(const policy::AccessInfo &info) override
    {
        ProgramId c1 = info.m1Owner;
        ProgramId c2 = info.accessor;
        if (c1 == invalidProgram || c1 == c2)
            return inner_->onM2Access(info);

        double t = factorThreshold_;
        double sfa1 = rsm_.sfA(c1), sfa2 = rsm_.sfA(c2);
        double sfb1 = rsm_.sfB(c1), sfb2 = rsm_.sfB(c2);
        bool a1_lt = sfa1 * t < sfa2;
        bool a1_gt = sfa1 > sfa2 * t;
        bool b1_lt = sfb1 * t < sfb2;
        bool b1_gt = sfb1 > sfb2 * t;

        if (a1_lt && b1_lt) {
            inner_->onM2Access(info); // keep inner state warm
            return policy::Decision::Swap;
        }
        if (a1_gt && b1_gt) {
            inner_->onM2Access(info);
            return policy::Decision::NoSwap;
        }
        if (a1_lt && b1_gt &&
            sfa1 * sfb1 > sfa2 * sfb2 * productThreshold_) {
            inner_->onM2Access(info);
            return policy::Decision::NoSwap;
        }
        return inner_->onM2Access(info);
    }

    void
    onM1Access(const policy::AccessInfo &info) override
    {
        inner_->onM1Access(info);
    }

    void
    onServed(const policy::AccessInfo &info) override
    {
        rsm_.onServed(info.accessor, info.region, info.fromM1,
                      info.now);
        inner_->onServed(info);
    }

    void
    onStcInsert(std::uint64_t group, hybrid::StcMeta &meta) override
    {
        inner_->onStcInsert(group, meta);
    }

    void
    onStcEvict(std::uint64_t group, const hybrid::StcMeta &meta,
               hybrid::StEntry &entry) override
    {
        inner_->onStcEvict(group, meta, entry);
    }

    void
    onSwapComplete(std::uint64_t group, unsigned promoted,
                   unsigned demoted, ProgramId promoted_owner,
                   ProgramId demoted_owner,
                   bool private_region) override
    {
        rsm_.onSwap(promoted_owner, demoted_owner, private_region);
        inner_->onSwapComplete(group, promoted, demoted,
                               promoted_owner, demoted_owner,
                               private_region);
    }

    Cycles periodicInterval() const override
    {
        return inner_->periodicInterval();
    }

    void onPeriodic() override { inner_->onPeriodic(); }

    /** @return the RSM sub-component. */
    Rsm &rsm() { return rsm_; }

    /** Audit the RSM bookkeeping and the wrapped inner policy. */
    void
    auditInvariants() const override
    {
        rsm_.auditInvariants();
        inner_->auditInvariants();
    }

    void
    setTraceSink(telemetry::DecisionTraceSink *sink) override
    {
        rsm_.setTraceSink(sink);
        inner_->setTraceSink(sink);
    }

    void
    registerTelemetry(telemetry::StatRegistry &registry,
                      const std::string &prefix) override
    {
        rsm_.registerTelemetry(registry, prefix + ".rsm");
        inner_->registerTelemetry(registry, prefix + ".inner");
    }

  private:
    std::unique_ptr<policy::MigrationPolicy> inner_;
    Rsm rsm_;
    double factorThreshold_;
    double productThreshold_;
    std::string name_;
};

} // namespace core

} // namespace profess

#endif // PROFESS_CORE_RSM_GUIDED_HH
