#include "core/mdm_policy.hh"

namespace profess
{

namespace core
{

void
applyEvictionUpdates(Mdm &mdm, const hybrid::HybridLayout &layout,
                     const os::BlockOwnerOracle &oracle,
                     std::uint64_t group,
                     const hybrid::StcMeta &meta,
                     hybrid::StEntry &entry)
{
    for (unsigned s = 0; s < layout.slotsPerGroup; ++s) {
        unsigned count = meta.ac[s];
        if (count == 0)
            continue; // QAC not updated for unaccessed blocks
        ProgramId owner =
            oracle.ownerOfBlock(layout.blockIndex(group, s));
        if (owner == invalidProgram)
            continue;
        std::uint8_t q_e =
            mdm.recordEviction(owner, meta.qacAtInsert[s], count);
        entry.qac[s] = q_e;
    }
}

} // namespace core

} // namespace profess
