/**
 * @file
 * CAMEO-style migration policy (Chou et al., MICRO 2014; Table 2).
 *
 * CAMEO promotes a far-memory block after a global threshold of one
 * access.  The original targets 64-B blocks in a 1:3 memory; on the
 * PoM organization used here (2-KiB blocks, 1:8) the defining trait
 * is retained: a fixed global access threshold with no cost-benefit
 * analysis.  The threshold is configurable for ablations.
 */

#ifndef PROFESS_POLICY_CAMEO_HH
#define PROFESS_POLICY_CAMEO_HH

#include "policy/policy.hh"

namespace profess
{

namespace policy
{

/** Fixed-global-threshold promotion. */
class CameoPolicy : public MigrationPolicy
{
  public:
    /** @param threshold Accesses to an M2 block before promotion. */
    explicit CameoPolicy(unsigned threshold = 1)
        : threshold_(threshold)
    {
    }

    const char *name() const override { return "cameo"; }
    unsigned writeWeight() const override { return 1; }

    Decision
    onM2Access(const AccessInfo &info) override
    {
        // The access counter was already bumped for this access.
        return info.meta->ac[info.slot] >= threshold_
                   ? Decision::Swap
                   : Decision::NoSwap;
    }

  private:
    unsigned threshold_;
};

} // namespace policy

} // namespace profess

#endif // PROFESS_POLICY_CAMEO_HH
