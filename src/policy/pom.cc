#include "policy/pom.hh"

namespace profess
{

namespace policy
{

constexpr std::array<unsigned, 4> PomPolicy::thresholds;

PomPolicy::PomPolicy(std::uint64_t num_groups, const Params &p)
    : params_(p), groups_(num_groups),
      active_(p.initialThreshold)
{
}

Decision
PomPolicy::onM2Access(const AccessInfo &info)
{
    GroupState &g = groups_[info.group];
    unsigned w = info.isWrite ? writeWeight() : 1u;
    if (g.challenger == info.slot) {
        g.counter += static_cast<std::int32_t>(w);
    } else {
        g.counter -= static_cast<std::int32_t>(w);
        if (g.counter < 0) {
            g.challenger = static_cast<std::uint8_t>(info.slot);
            g.counter = static_cast<std::int32_t>(w);
        }
    }
    if (active_ == prohibited)
        return Decision::NoSwap;
    if (g.challenger == info.slot &&
        g.counter >= static_cast<std::int32_t>(active_)) {
        return Decision::Swap;
    }
    return Decision::NoSwap;
}

void
PomPolicy::onM1Access(const AccessInfo &info)
{
    // Accesses to the incumbent weaken the challenger.
    GroupState &g = groups_[info.group];
    unsigned w = info.isWrite ? writeWeight() : 1u;
    g.counter -= static_cast<std::int32_t>(w);
    if (g.counter < 0)
        g.counter = 0;
}

void
PomPolicy::onStcEvict(std::uint64_t group,
                      const hybrid::StcMeta &meta,
                      hybrid::StEntry &entry)
{
    // Feed the epoch estimator with the final access counts of
    // blocks that resided in M2 (candidates a threshold-t policy
    // would have promoted after t accesses).
    (void)group;
    for (unsigned s = 0; s < hybrid::maxSlots; ++s) {
        unsigned c = meta.ac[s];
        if (c == 0 || entry.atb[s] == 0)
            continue;
        for (std::size_t t = 0; t < thresholds.size(); ++t) {
            if (c >= thresholds[t]) {
                hitGain_[t] += c - thresholds[t];
                ++swapCount_[t];
            }
        }
    }
    if (++evictionsSinceAdapt_ >= params_.adaptEvictions)
        adapt();
}

void
PomPolicy::onSwapComplete(std::uint64_t group, unsigned, unsigned,
                          ProgramId, ProgramId, bool)
{
    GroupState &g = groups_[group];
    g.challenger = 0xff;
    g.counter = 0;
}

void
PomPolicy::adapt()
{
    evictionsSinceAdapt_ = 0;
    ++adaptations_;
    std::int64_t best_benefit = 0;
    unsigned best = prohibited;
    for (std::size_t t = 0; t < thresholds.size(); ++t) {
        std::int64_t benefit =
            static_cast<std::int64_t>(hitGain_[t]) -
            static_cast<std::int64_t>(swapCount_[t]) * params_.k;
        if (benefit > best_benefit) {
            best_benefit = benefit;
            best = thresholds[t];
        }
        hitGain_[t] = 0;
        swapCount_[t] = 0;
    }
    active_ = best; // prohibited when no threshold is beneficial
}

} // namespace policy

} // namespace profess
