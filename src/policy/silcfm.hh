/**
 * @file
 * SILC-FM-style migration policy (Ryoo et al., HPCA 2017; Table 2).
 *
 * Promote after a global threshold of one access, but protect hot
 * M1-resident blocks: a block whose aging access counter exceeds 50
 * is locked in M1 and cannot be displaced.  Counters age (halve)
 * periodically.  SILC-FM's set-associative mapping and sub-blocking
 * are orthogonal to the migration decision (Sec. 2.3) and are not
 * modelled; all algorithms run on the same PoM organization.
 */

#ifndef PROFESS_POLICY_SILCFM_HH
#define PROFESS_POLICY_SILCFM_HH

#include <vector>

#include "policy/policy.hh"

namespace profess
{

namespace policy
{

/** Threshold-1 promotion with aging lock counters. */
class SilcFmPolicy : public MigrationPolicy
{
  public:
    /**
     * @param num_groups Swap groups in the system.
     * @param lock_threshold Lock an M1 block above this count.
     * @param aging_interval_ticks Halve counters this often.
     */
    explicit SilcFmPolicy(std::uint64_t num_groups,
                          unsigned lock_threshold = 50,
                          Cycles aging_interval_ticks = 80000)
        : lockThreshold_(lock_threshold),
          agingInterval_(aging_interval_ticks),
          lockCounter_(num_groups, 0)
    {
    }

    const char *name() const override { return "silcfm"; }
    unsigned writeWeight() const override { return 1; }
    bool slowSwap() const override { return true; } // Table 1

    Decision
    onM2Access(const AccessInfo &info) override
    {
        if (lockCounter_[info.group] > lockThreshold_)
            return Decision::NoSwap;
        return Decision::Swap;
    }

    void
    onM1Access(const AccessInfo &info) override
    {
        unsigned v = lockCounter_[info.group] + 1;
        lockCounter_[info.group] =
            static_cast<std::uint8_t>(v > 255 ? 255 : v);
    }

    void
    onSwapComplete(std::uint64_t group, unsigned, unsigned,
                   ProgramId, ProgramId, bool) override
    {
        lockCounter_[group] = 0; // new M1 occupant starts cold
    }

    Cycles periodicInterval() const override { return agingInterval_; }

    void
    onPeriodic() override
    {
        for (auto &c : lockCounter_)
            c = static_cast<std::uint8_t>(c >> 1);
    }

  private:
    unsigned lockThreshold_;
    Cycles agingInterval_;
    std::vector<std::uint8_t> lockCounter_;
};

} // namespace policy

} // namespace profess

#endif // PROFESS_POLICY_SILCFM_HH
