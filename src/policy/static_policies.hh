/**
 * @file
 * Trivial migration policies used as reference points and in tests.
 *
 * NeverPolicy pins data where the OS allocated it (no migrations),
 * i.e., a static hybrid memory.  AlwaysPolicy promotes on every M2
 * access, the pathological extreme discussed in Sec. 2.5.
 */

#ifndef PROFESS_POLICY_STATIC_POLICIES_HH
#define PROFESS_POLICY_STATIC_POLICIES_HH

#include "policy/policy.hh"

namespace profess
{

namespace policy
{

/** No migrations at all. */
class NeverPolicy : public MigrationPolicy
{
  public:
    const char *name() const override { return "never"; }
    unsigned writeWeight() const override { return 1; }

    Decision
    onM2Access(const AccessInfo &info) override
    {
        (void)info;
        return Decision::NoSwap;
    }
};

/** Swap on every access to M2. */
class AlwaysPolicy : public MigrationPolicy
{
  public:
    const char *name() const override { return "always"; }
    unsigned writeWeight() const override { return 1; }

    Decision
    onM2Access(const AccessInfo &info) override
    {
        (void)info;
        return Decision::Swap;
    }
};

} // namespace policy

} // namespace profess

#endif // PROFESS_POLICY_STATIC_POLICIES_HH
