/**
 * @file
 * MemPod migration algorithm (Prodromou et al., HPCA 2017; Table 2).
 *
 * MemPod tracks hot far-memory blocks with the Majority Element
 * Algorithm (MEA, Karp et al.): a fixed pool of counters per pod; an
 * access to a tracked block increments its counter, an access to an
 * untracked block either claims a free counter or decrements all
 * counters.  Every interval (50 us, Sec. 4.1) the tracked blocks are
 * migrated (up to 64 per pod per interval) and the counters are
 * cleared.  Writes count as one access and, per the paper's
 * optimistic setup, MemPod's ST-update overhead on swaps is ignored
 * (our controller already charges only the swap itself).
 *
 * Pods map to channels; migrations are restricted to the swap-group
 * candidates of the shared PoM organization (Sec. 2.3: mappings are
 * orthogonal to the migration algorithm).
 */

#ifndef PROFESS_POLICY_MEMPOD_HH
#define PROFESS_POLICY_MEMPOD_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "policy/policy.hh"

namespace profess
{

namespace policy
{

/** MEA-driven interval migration. */
class MemPodPolicy : public MigrationPolicy
{
  public:
    struct Params
    {
        unsigned countersPerPod = 128;
        unsigned maxMigrationsPerInterval = 64;
        Cycles intervalTicks = 40000; ///< 50 us at 0.8 GHz
    };

    /**
     * @param num_pods Number of pods (one per channel).
     * @param pod_of Function mapping a group to its pod: here the
     *        group's channel, supplied by the system builder.
     */
    MemPodPolicy(unsigned num_pods, unsigned channels,
                 const Params &p);

    /** Default-parameter convenience constructor. */
    MemPodPolicy(unsigned num_pods, unsigned channels)
        : MemPodPolicy(num_pods, channels, Params{})
    {
    }

    const char *name() const override { return "mempod"; }
    unsigned writeWeight() const override { return 1; }

    Decision onM2Access(const AccessInfo &info) override;
    Cycles periodicInterval() const override
    {
        return params_.intervalTicks;
    }
    void onPeriodic() override;

    /** @return migrations requested so far. */
    std::uint64_t migrationsRequested() const { return requested_; }

  private:
    /** Key identifying a block: group and slot. */
    using BlockKey = std::uint64_t;

    static BlockKey
    keyOf(std::uint64_t group, unsigned slot)
    {
        return group * hybrid::maxSlots + slot;
    }

    struct Pod
    {
        std::unordered_map<BlockKey, std::uint32_t> counters;
    };

    Params params_;
    unsigned channels_;
    std::vector<Pod> pods_;
    std::uint64_t requested_ = 0;
};

} // namespace policy

} // namespace profess

#endif // PROFESS_POLICY_MEMPOD_HH
