/**
 * @file
 * OS-based coarse-grain migration baseline (paper Sec. 2.2).
 *
 * The paper contrasts its hardware management against OS-based
 * page migration in the style of Thermostat [Agarwal & Wenisch,
 * ASPLOS 2017]: software periodically samples page hotness and
 * migrates at page granularity, which implies slow responsiveness
 * to working-set changes.  This policy approximates that behaviour
 * inside the same simulation harness:
 *
 *  - hotness is tracked per 4-KiB page (a consecutive swap-group
 *    pair) over a long OS interval (default 1 ms, ~1000x the
 *    hardware policies' reaction time);
 *  - at each interval end the hottest pages above an access-count
 *    threshold are promoted (both 2-KiB blocks of the page), up to
 *    a migration budget;
 *  - nothing happens between intervals.
 *
 * Used by the ext_os_vs_hw benchmark to reproduce the paper's
 * argument that hardware management's responsiveness matters.
 */

#ifndef PROFESS_POLICY_OS_COARSE_HH
#define PROFESS_POLICY_OS_COARSE_HH

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "hybrid/layout.hh"
#include "policy/policy.hh"

namespace profess
{

namespace policy
{

/** Periodic page-granularity promotion. */
class OsCoarsePolicy : public MigrationPolicy
{
  public:
    struct Params
    {
        Cycles intervalTicks = 100000; ///< 125 us at 0.8 GHz (paper-scaled OS sampling)
        unsigned hotThreshold = 64;    ///< accesses per interval
        unsigned maxPagesPerInterval = 32;
    };

    OsCoarsePolicy(const hybrid::HybridLayout &layout,
                   const Params &p)
        : layout_(layout), params_(p)
    {
    }

    explicit OsCoarsePolicy(const hybrid::HybridLayout &layout)
        : OsCoarsePolicy(layout, Params{})
    {
    }

    const char *name() const override { return "oscoarse"; }
    unsigned writeWeight() const override { return 1; }

    Decision
    onM2Access(const AccessInfo &info) override
    {
        ++pageCount_[pageOf(info.group, info.slot)];
        return Decision::NoSwap; // software migrates off-path
    }

    Cycles periodicInterval() const override
    {
        return params_.intervalTicks;
    }

    void
    onPeriodic() override
    {
        if (host_ == nullptr)
            return;
        std::vector<std::pair<std::uint32_t, std::uint64_t>> hot;
        hot.reserve(pageCount_.size());
        for (const auto &kv : pageCount_) {
            if (kv.second >= params_.hotThreshold)
                hot.emplace_back(kv.second, kv.first);
        }
        std::sort(hot.begin(), hot.end(),
                  [](const auto &a, const auto &b) {
                      return a.first != b.first ? a.first > b.first
                                                : a.second < b.second;
                  });
        unsigned migrated = 0;
        for (const auto &e : hot) {
            if (migrated >= params_.maxPagesPerInterval)
                break;
            // Promote both blocks of the page.
            std::uint64_t first_block = e.second * 2;
            bool any = false;
            for (std::uint64_t ob :
                 {first_block, first_block + 1}) {
                std::uint64_t g = layout_.groupOf(ob);
                unsigned s = layout_.slotOf(ob);
                any |= host_->requestSwap(g, s);
            }
            migrated += any ? 1 : 0;
        }
        pageCount_.clear();
    }

    /** @return pages currently tracked (tests). */
    std::size_t trackedPages() const { return pageCount_.size(); }

  private:
    /** Page = original frame index (two consecutive blocks). */
    std::uint64_t
    pageOf(std::uint64_t group, unsigned slot) const
    {
        return layout_.blockIndex(group, slot) / 2;
    }

    const hybrid::HybridLayout &layout_;
    Params params_;
    std::unordered_map<std::uint64_t, std::uint32_t> pageCount_;
};

} // namespace policy

} // namespace profess

#endif // PROFESS_POLICY_OS_COARSE_HH
