/**
 * @file
 * PoM migration algorithm (Sim et al., MICRO 2014) - the paper's
 * baseline (Secs. 2.3, 2.5, 4.1).
 *
 * Mechanism: each swap group keeps one competing counter tracking the
 * current M2 challenger block (incremented on challenger accesses,
 * decremented on accesses to other blocks, MEA-style; writes count as
 * eight accesses, Sec. 4.1).  The challenger is promoted when its
 * counter reaches the globally active threshold.
 *
 * Adaptivity: PoM picks the active threshold from {1, 6, 18, 48} (or
 * prohibits migrations) per epoch, by estimating each threshold's
 * benefit as (accesses that would have hit M1 after crossing the
 * threshold) - K x (number of swaps), with K derived from the swap
 * cost (K = 8 here, Sec. 4.1).  The per-block access counts feeding
 * this estimate are taken from the STC access counters at ST-entry
 * eviction, like the published scheme's epoch counters.
 */

#ifndef PROFESS_POLICY_POM_HH
#define PROFESS_POLICY_POM_HH

#include <array>
#include <cstdint>
#include <vector>

#include "policy/policy.hh"

namespace profess
{

namespace policy
{

/** PoM: competing counters + global adaptive threshold. */
class PomPolicy : public MigrationPolicy
{
  public:
    /** Candidate global thresholds (Table 2). */
    static constexpr std::array<unsigned, 4> thresholds{1, 6, 18, 48};
    /** Sentinel meaning "migrations prohibited this epoch". */
    static constexpr unsigned prohibited = 0xffffffffu;

    struct Params
    {
        unsigned k = 8; ///< swap cost in access-equivalents
        std::uint64_t adaptEvictions = 1024; ///< epoch length
        unsigned initialThreshold = 6;
    };

    /**
     * @param num_groups Swap groups in the system.
     * @param p Tuning parameters.
     */
    PomPolicy(std::uint64_t num_groups, const Params &p);

    /** Default-parameter convenience constructor. */
    explicit PomPolicy(std::uint64_t num_groups)
        : PomPolicy(num_groups, Params{})
    {
    }

    const char *name() const override { return "pom"; }
    unsigned writeWeight() const override { return 8; }

    Decision onM2Access(const AccessInfo &info) override;
    void onM1Access(const AccessInfo &info) override;
    void onStcEvict(std::uint64_t group, const hybrid::StcMeta &meta,
                    hybrid::StEntry &entry) override;
    void onSwapComplete(std::uint64_t group, unsigned promoted_slot,
                        unsigned demoted_slot, ProgramId,
                        ProgramId, bool) override;

    /** @return currently active threshold (prohibited if none). */
    unsigned activeThreshold() const { return active_; }

    /** @return number of epoch adaptations so far. */
    std::uint64_t adaptations() const { return adaptations_; }

  private:
    /** Per-group competing-counter state (lives in the ST entry). */
    struct GroupState
    {
        std::uint8_t challenger = 0xff; ///< slot id, 0xff = none
        std::int32_t counter = 0;
    };

    void adapt();

    Params params_;
    std::vector<GroupState> groups_;
    unsigned active_;

    /** Per-threshold epoch statistics. */
    std::array<std::uint64_t, thresholds.size()> hitGain_{};
    std::array<std::uint64_t, thresholds.size()> swapCount_{};
    std::uint64_t evictionsSinceAdapt_ = 0;
    std::uint64_t adaptations_ = 0;
};

} // namespace policy

} // namespace profess

#endif // PROFESS_POLICY_POM_HH
