/**
 * @file
 * Migration-policy interface.
 *
 * A MigrationPolicy decides, for each access to a block in M2,
 * whether to swap it with the block currently occupying the group's
 * M1 location (Sec. 2.3: the possible address mappings define the
 * candidates; the policy merely decides).  The hybrid controller
 * invokes the hooks below; policies keep whatever per-group or
 * global state they need (conceptually stored in ST entries and MC
 * registers).
 *
 * Implementations in this repo: PoM, MemPod (MEA), CAMEO-style,
 * SILC-FM-style, static always/never (src/policy), and the paper's
 * MDM and ProFess (src/core).
 */

#ifndef PROFESS_POLICY_POLICY_HH
#define PROFESS_POLICY_POLICY_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "hybrid/st.hh"
#include "hybrid/stc.hh"

namespace profess
{

namespace telemetry
{
class StatRegistry;
class DecisionTraceSink;
} // namespace telemetry

namespace policy
{

/** Everything a policy may inspect about one served access. */
struct AccessInfo
{
    std::uint64_t group = 0;
    unsigned slot = 0;       ///< accessed original slot
    unsigned m1Slot = 0;     ///< slot currently resident in M1
    unsigned region = 0;     ///< RSM region of the group
    bool isWrite = false;
    bool fromM1 = false;     ///< served from M1 (else M2)
    ProgramId accessor = invalidProgram;  ///< c_M2 on M2 accesses
    ProgramId m1Owner = invalidProgram;   ///< c_M1 (invalid = vacant)
    const hybrid::StcMeta *meta = nullptr;
    Tick now = 0;
};

/** Outcome of a migration consultation. */
enum class Decision : std::uint8_t { NoSwap = 0, Swap = 1 };

/**
 * Services the controller offers to policies (e.g., MemPod performs
 * interval-based migrations outside the access path).
 */
class SwapHost
{
  public:
    virtual ~SwapHost() = default;

    /**
     * Request promotion of (group, slot); ignored if the slot is
     * already in M1 or a swap is in flight for the group.
     *
     * @return true if a swap was scheduled.
     */
    virtual bool requestSwap(std::uint64_t group, unsigned slot) = 0;

    /** @return current simulation tick. */
    virtual Tick hostNow() const = 0;
};

/** The policy interface proper. */
class MigrationPolicy
{
  public:
    virtual ~MigrationPolicy() = default;

    /** @return short policy name for reports. */
    virtual const char *name() const = 0;

    /**
     * Weight of a write access in access counters (ProFess and PoM
     * count each write as eight accesses, Sec. 4.1; MemPod as one).
     */
    virtual unsigned writeWeight() const { return 8; }

    /**
     * Swap type (Table 1).  Fast swaps remap blocks directly; slow
     * swaps (SILC-FM's set-associative relaxation) must restore the
     * group's original mapping first, doubling the migration cost.
     */
    virtual bool slowSwap() const { return false; }

    /** Called once by the controller before simulation starts. */
    virtual void setHost(SwapHost *host) { host_ = host; }

    /**
     * Consulted on every access served from M2.
     *
     * @return Decision::Swap to promote the accessed block.
     */
    virtual Decision onM2Access(const AccessInfo &info) = 0;

    /** Notification of an access served from M1. */
    virtual void onM1Access(const AccessInfo &info) { (void)info; }

    /** Notification of every served access (RSM counting). */
    virtual void onServed(const AccessInfo &info) { (void)info; }

    /** ST entry of `group` was inserted into the STC. */
    virtual void
    onStcInsert(std::uint64_t group, hybrid::StcMeta &meta)
    {
        (void)group;
        (void)meta;
    }

    /**
     * ST entry of `group` was evicted from the STC.  Policies that
     * maintain QAC values (MDM) update `entry.qac` here from the
     * final access counts in `meta` (Sec. 3.2.1).
     */
    virtual void
    onStcEvict(std::uint64_t group, const hybrid::StcMeta &meta,
               hybrid::StEntry &entry)
    {
        (void)group;
        (void)meta;
        (void)entry;
    }

    /**
     * A swap completed: `promoted_slot` moved to M1 and
     * `demoted_slot` to M2.
     *
     * @param private_region True when the group lies in some
     *        program's private region (RSM does not count those).
     */
    virtual void
    onSwapComplete(std::uint64_t group, unsigned promoted_slot,
                   unsigned demoted_slot, ProgramId promoted_owner,
                   ProgramId demoted_owner, bool private_region)
    {
        (void)group;
        (void)promoted_slot;
        (void)demoted_slot;
        (void)promoted_owner;
        (void)demoted_owner;
        (void)private_region;
    }

    /** Period of onPeriodic() callbacks in ticks (0 = none). */
    virtual Cycles periodicInterval() const { return 0; }

    /** Periodic callback (MemPod's interval migrations). */
    virtual void onPeriodic() {}

    /**
     * Register the policy's statistics under a dotted prefix.
     * Default: nothing (policies expose stats opt-in).
     */
    virtual void
    registerTelemetry(telemetry::StatRegistry &registry,
                      const std::string &prefix)
    {
        (void)registry;
        (void)prefix;
    }

    /**
     * Attach (or detach, with nullptr) a decision-trace sink.
     * Policies that trace their decisions forward the pointer to
     * their sub-components; the default ignores it.
     */
    virtual void
    setTraceSink(telemetry::DecisionTraceSink *sink)
    {
        (void)sink;
    }

    /**
     * Audit the policy's internal invariants (panic on violation).
     * Called from System teardown in PROFESS_AUDIT builds and from
     * tests in any build; the default has nothing to check.
     */
    virtual void auditInvariants() const {}

  protected:
    SwapHost *host_ = nullptr;
};

} // namespace policy

} // namespace profess

#endif // PROFESS_POLICY_POLICY_HH
