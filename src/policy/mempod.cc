#include "policy/mempod.hh"

#include <algorithm>

namespace profess
{

namespace policy
{

MemPodPolicy::MemPodPolicy(unsigned num_pods, unsigned channels,
                           const Params &p)
    : params_(p), channels_(channels), pods_(num_pods)
{
    fatal_if(num_pods == 0, "MemPod needs at least one pod");
}

Decision
MemPodPolicy::onM2Access(const AccessInfo &info)
{
    Pod &pod = pods_[info.group % channels_ % pods_.size()];
    BlockKey key = keyOf(info.group, info.slot);
    auto it = pod.counters.find(key);
    if (it != pod.counters.end()) {
        ++it->second;
    } else if (pod.counters.size() < params_.countersPerPod) {
        pod.counters.emplace(key, 1);
    } else {
        // MEA: decrement everyone; drop zeros to free counters.
        for (auto cit = pod.counters.begin();
             cit != pod.counters.end();) {
            if (--cit->second == 0)
                cit = pod.counters.erase(cit);
            else
                ++cit;
        }
    }
    // MemPod never migrates on the access path.
    return Decision::NoSwap;
}

void
MemPodPolicy::onPeriodic()
{
    if (host_ == nullptr)
        return;
    for (Pod &pod : pods_) {
        // Promote the hottest tracked blocks first.
        std::vector<std::pair<std::uint32_t, BlockKey>> order;
        order.reserve(pod.counters.size());
        for (const auto &kv : pod.counters)
            order.emplace_back(kv.second, kv.first);
        std::sort(order.begin(), order.end(),
                  [](const auto &a, const auto &b) {
                      return a.first != b.first ? a.first > b.first
                                                : a.second < b.second;
                  });
        unsigned issued = 0;
        for (const auto &e : order) {
            if (issued >= params_.maxMigrationsPerInterval)
                break;
            std::uint64_t group = e.second / hybrid::maxSlots;
            unsigned slot =
                static_cast<unsigned>(e.second % hybrid::maxSlots);
            if (host_->requestSwap(group, slot)) {
                ++requested_;
                ++issued;
            }
        }
        pod.counters.clear();
    }
}

} // namespace policy

} // namespace profess
