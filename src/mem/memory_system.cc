#include "mem/memory_system.hh"

namespace profess
{

namespace mem
{

MemorySystem::MemorySystem(EventQueue &eq,
                           const MemorySystemConfig &cfg)
    : cfg_(cfg)
{
    fatal_if(cfg.numChannels == 0, "need at least one channel");
    ModuleGeometry g1 =
        ModuleGeometry::withCapacity(cfg.m1BytesPerChannel);
    ModuleGeometry g2 =
        ModuleGeometry::withCapacity(cfg.m2BytesPerChannel);
    channels_.reserve(cfg.numChannels);
    for (unsigned i = 0; i < cfg.numChannels; ++i) {
        channels_.push_back(std::make_unique<Channel>(
            eq, cfg.m1, cfg.m2, g1, g2, cfg.energy, cfg.channel));
    }
}

std::uint64_t
MemorySystem::totalCounter(const std::string &name) const
{
    std::uint64_t total = 0;
    for (const auto &c : channels_)
        total += c->stats().counter(name);
    return total;
}

double
MemorySystem::totalJoules(double seconds) const
{
    double j = 0.0;
    for (const auto &c : channels_)
        j += c->energy().totalJoules(seconds);
    return j;
}

double
MemorySystem::averageWatts(double seconds) const
{
    return seconds > 0.0 ? totalJoules(seconds) / seconds : 0.0;
}

double
MemorySystem::meanReadLatency() const
{
    // Weighted mean across channels.
    double sum = 0.0;
    std::uint64_t n = 0;
    for (const auto &c : channels_) {
        sum += c->readLatency().mean() *
               static_cast<double>(c->readLatency().count());
        n += c->readLatency().count();
    }
    return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

} // namespace mem

} // namespace profess
