/**
 * @file
 * Device geometry of one memory module and address decoding.
 *
 * Per Table 8: one rank per module, 16 banks per rank, 8-KB row
 * buffers.  M2 modules have eight times the rows per bank of M1.
 * Consecutive row-sized chunks interleave across banks so that
 * streams exploit bank-level parallelism while 2-KB swap blocks stay
 * inside one row (four blocks per 8-KB row).
 */

#ifndef PROFESS_MEM_GEOMETRY_HH
#define PROFESS_MEM_GEOMETRY_HH

#include "common/logging.hh"
#include "common/types.hh"

namespace profess
{

namespace mem
{

/** Location of a byte within a module: bank, row, column offset. */
struct DecodedAddr
{
    std::uint32_t bank;
    std::uint64_t row;     ///< row index within the bank
    std::uint64_t column;  ///< byte offset within the row
};

/** Geometry of one module (one rank). */
struct ModuleGeometry
{
    std::uint32_t banks = 16;
    std::uint64_t rowBytes = 8 * KiB;
    std::uint64_t rowsPerBank = 1024;

    /** @return module capacity in bytes. */
    std::uint64_t
    capacity() const
    {
        return static_cast<std::uint64_t>(banks) * rowBytes *
               rowsPerBank;
    }

    /** Decode a device byte address. */
    DecodedAddr
    decode(Addr addr) const
    {
        panic_if(addr >= capacity(),
                 "address 0x%llx outside module (capacity 0x%llx)",
                 static_cast<unsigned long long>(addr),
                 static_cast<unsigned long long>(capacity()));
        std::uint64_t row_chunk = addr / rowBytes;
        DecodedAddr d;
        d.bank = static_cast<std::uint32_t>(row_chunk % banks);
        d.row = row_chunk / banks;
        d.column = addr % rowBytes;
        return d;
    }

    /**
     * Construct a geometry with the given capacity.
     *
     * @param bytes Desired capacity; must be a multiple of
     *              banks * rowBytes.
     */
    static ModuleGeometry
    withCapacity(std::uint64_t bytes, std::uint32_t banks = 16,
                 std::uint64_t row_bytes = 8 * KiB)
    {
        ModuleGeometry g;
        g.banks = banks;
        g.rowBytes = row_bytes;
        std::uint64_t per_bank = banks * row_bytes;
        fatal_if(bytes == 0 || bytes % per_bank != 0,
                 "module capacity %llu is not a multiple of "
                 "banks*rowBytes (%llu)",
                 static_cast<unsigned long long>(bytes),
                 static_cast<unsigned long long>(per_bank));
        g.rowsPerBank = bytes / per_bank;
        return g;
    }
};

} // namespace mem

} // namespace profess

#endif // PROFESS_MEM_GEOMETRY_HH
