/**
 * @file
 * Event-driven timing model of one hybrid memory channel.
 *
 * One channel hosts one M1 (DRAM) module and one M2 (NVM) module
 * sharing command and data buses, as in Intel Purley (Sec. 2.2).
 * Scheduling is FR-FCFS-Cap (Sec. 4.1): row-buffer hits are preferred
 * but at most `rowHitCap` consecutive hits to one row are served
 * before the oldest request wins; writes are buffered and drained
 * between high/low watermarks; banks across both modules operate in
 * parallel, arbitrating for the shared data bus.
 *
 * Swaps (block migrations) are modelled per Sec. 4.1: the channel is
 * blocked for the duration of the swap, whose latency is derived from
 * the timing parameters using the paper's overlap structure (read
 * phase dominated by tRCD_M2, write phase dominated by tWR_M2); the
 * resulting ~796 ns for default parameters is validated by tests.
 */

#ifndef PROFESS_MEM_CHANNEL_HH
#define PROFESS_MEM_CHANNEL_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/event.hh"
#include "common/inline_function.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/energy.hh"
#include "mem/geometry.hh"
#include "mem/request.hh"
#include "mem/timing.hh"

namespace profess
{

namespace telemetry
{
class LatencyAttribution;
class StatRegistry;
struct TimerSlot;
} // namespace telemetry

namespace mem
{

/** Scheduling and buffering knobs of a channel. */
struct ChannelConfig
{
    unsigned rowHitCap = 4;     ///< FR-FCFS-Cap limit
    unsigned writeHighMark = 32; ///< start draining writes
    unsigned writeLowMark = 16;  ///< stop draining writes
    unsigned maxInflight = 4;    ///< concurrently committed requests
};

/** One memory channel with an M1 and an M2 module. */
class Channel
{
  public:
    /**
     * @param eq Shared event queue.
     * @param m1t M1 timing parameters.
     * @param m2t M2 timing parameters.
     * @param m1g M1 geometry.
     * @param m2g M2 geometry.
     * @param ep Energy parameters.
     * @param cfg Scheduling configuration.
     */
    Channel(EventQueue &eq, const TimingParams &m1t,
            const TimingParams &m2t, const ModuleGeometry &m1g,
            const ModuleGeometry &m2g, const EnergyParams &ep = {},
            const ChannelConfig &cfg = {});

    /** Enqueue a request; completion reported via req->onComplete. */
    void push(RequestPtr req);

    /** Convenience overload for plain heap-allocated requests
     *  (tests and microbenchmarks); ownership transfers as above. */
    void
    push(std::unique_ptr<Request> req)
    {
        push(RequestPtr(req.release()));
    }

    /**
     * Execute a block swap between an M1 location and an M2 location.
     *
     * The channel is blocked for the duration (fast swap, Sec. 2.3);
     * queued demand requests wait.  Multiple swap requests queue.
     *
     * @param m1_addr M1 device byte address of the 2-KB block.
     * @param m2_addr M2 device byte address of the 2-KB block.
     * @param block_bytes Swap block size in bytes.
     * @param done Invoked when the swap completes.
     * @param slow Slow swap (Table 1): the original mapping must be
     *        restored first, doubling the occupancy.
     */
    void executeSwap(Addr m1_addr, Addr m2_addr,
                     std::uint64_t block_bytes,
                     InlineCallback done,
                     bool slow = false);

    /** @return true while a swap occupies the channel. */
    bool swapActive() const { return eq_.now() < swapEndTick_; }

    /** @return analytic latency of one swap, in MC cycles. */
    Cycles swapLatency(std::uint64_t block_bytes) const;

    /** @return number of queued read requests. */
    std::size_t readQueueSize() const { return readQ_.size(); }

    /** @return number of queued write requests. */
    std::size_t writeQueueSize() const { return writeQ_.size(); }

    /** Statistics of this channel. */
    const StatSet &stats() const { return stats_; }

    /** Register all channel statistics plus live queue-depth probes
     *  under `prefix` ("mem.ch0"). */
    void registerTelemetry(telemetry::StatRegistry &registry,
                           const std::string &prefix) const;

    /** Wall-clock profile the scheduler hot path (null disables). */
    void setSchedulerTimer(telemetry::TimerSlot *slot)
    {
        schedTimer_ = slot;
    }

    /**
     * Attribute demand-request lifecycle phases (queue, bank-busy,
     * transfer) per program and tier (null disables; observational
     * only — one PROFESS_UNLIKELY branch per committed request).
     */
    void setLatencyAttribution(telemetry::LatencyAttribution *attr)
    {
        attr_ = attr;
    }

    /** Demand-read latency distribution (MC cycles). */
    const RunningStat &readLatency() const { return readLat_; }

    /** Energy account of this channel. */
    const EnergyAccount &energy() const { return energy_; }

    /** M1/M2 timing in force (read-only). */
    const TimingParams &m1Timing() const { return m1t_; }
    const TimingParams &m2Timing() const { return m2t_; }

    /**
     * Scale the M2 write-recovery time (tWR) relative to its
     * construction-time value (fault injection: transient PCM
     * write-latency spikes).  1.0 restores the baseline; the result
     * is clamped to at least one cycle.  Takes effect for
     * subsequently committed requests and swaps.
     */
    void setM2WriteScale(double scale);

    /**
     * Hold every bank of a module busy until `until` (fault
     * injection: a bank-busy window).  In-flight requests complete;
     * new activations and column commands wait out the window.
     */
    void injectBankBusy(Module m, Tick until);

    /**
     * Zero all statistics and energy tallies (device and queue
     * state are untouched).  Used to exclude warm-up from
     * measurement windows.
     */
    void resetStats();

    /**
     * Drop all queued (not yet committed) requests and swaps
     * without executing them.  Called by request producers on
     * teardown so pooled requests return to their pool while it is
     * still alive; the channel itself stays usable.
     */
    void
    dropQueued()
    {
        readQ_.clear();
        writeQ_.clear();
        swapQ_.clear();
        activeSwapDones_.clear();
    }

  private:
    /** Per-bank device state. */
    struct Bank
    {
        bool open = false;
        std::uint64_t row = 0;
        Tick readyCol = 0;      ///< earliest next column command
        Tick readyAct = 0;      ///< earliest next activation
        Tick lastAct = 0;       ///< last activation tick (tRAS/tRC)
        Tick wrRecoverEnd = 0;  ///< write recovery for precharge
        unsigned consecHits = 0;
    };

    /** A queued swap awaiting the channel. */
    struct PendingSwap
    {
        Addr m1Addr;
        Addr m2Addr;
        std::uint64_t blockBytes;
        InlineCallback done;
        bool slow;
    };

    const TimingParams &timing(Module m) const
    {
        return m == Module::M1 ? m1t_ : m2t_;
    }
    const ModuleGeometry &geometry(Module m) const
    {
        return m == Module::M1 ? m1g_ : m2g_;
    }
    Bank &bank(Module m, std::uint32_t b)
    {
        return m == Module::M1 ? banks1_[b] : banks2_[b];
    }

    /** Apply any M1 refresh windows that have begun by now. */
    void applyRefresh(Tick now);

    /** Ensure a scheduler wake-up at the given tick. */
    void requestWake(Tick when);

    /** Main scheduling entry: commit as many requests as allowed. */
    void trySchedule();

    /** Pick the next request index in q per FR-FCFS-Cap, or npos. */
    std::size_t pickNext(const std::vector<RequestPtr> &q) const;

    /** Commit one request: update state, schedule completion. */
    void commit(RequestPtr req);

    /** Start the next queued swap if the channel is free. */
    void maybeStartSwap();

    EventQueue &eq_;
    TimingParams m1t_, m2t_;
    ModuleGeometry m1g_, m2g_;
    ChannelConfig cfg_;
    Cycles m2BaseTwr_; ///< construction-time tWR_M2 (spike baseline)

    std::vector<Bank> banks1_, banks2_;
    std::vector<RequestPtr> readQ_, writeQ_;
    std::deque<PendingSwap> swapQ_;

    Tick busFreeAt_ = 0;
    bool lastBusWrite_ = false;
    bool drainingWrites_ = false;
    unsigned inflight_ = 0;
    Tick swapEndTick_ = 0;
    Tick nextRefresh_ = 0;
    Tick wakeAt_ = tickNever;

    /** Completion callbacks of started swaps, FIFO.  Swaps finish
     *  in start order (ends strictly increase), so the completion
     *  event captures only `this` and pops the front.  Usually one
     *  entry; two when a successor starts at the same tick an older
     *  event fires. */
    std::deque<InlineCallback> activeSwapDones_;

    StatSet stats_;
    RunningStat readLat_;
    EnergyAccount energy_;
    telemetry::TimerSlot *schedTimer_ = nullptr;
    telemetry::LatencyAttribution *attr_ = nullptr;

    // Hot-path counters resolved once (StatSet::counterRef); refs
    // stay valid across resetStats() because reset() zeroes in
    // place.
    std::uint64_t &ctrDemandReads_;
    std::uint64_t &ctrDemandWrites_;
    std::uint64_t &ctrStReads_;
    std::uint64_t &ctrStWrites_;
    std::uint64_t &ctrRowHits_;
    std::uint64_t &ctrRowMisses_;
    std::uint64_t &ctrM1Activates_;
    std::uint64_t &ctrM2Activates_;
    std::uint64_t &ctrM1Accesses_;
    std::uint64_t &ctrM2Accesses_;
    std::uint64_t &ctrBusBusyCycles_;
};

} // namespace mem

} // namespace profess

#endif // PROFESS_MEM_CHANNEL_HH
