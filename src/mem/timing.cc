#include "mem/timing.hh"

namespace profess
{

namespace mem
{

TimingParams
m1Timing()
{
    TimingParams p;
    p.tRCD = nsToCycles(13.75);
    p.tRP = nsToCycles(13.75);
    p.tCL = nsToCycles(13.75);
    p.tWL = p.tCL > 1 ? p.tCL - 1 : 1;
    p.tWR = nsToCycles(15.0);
    p.tRAS = nsToCycles(35.0);
    p.tRC = p.tRAS + p.tRP;
    p.tBurst = 4;
    p.tRTW = 3;
    p.tWTR = 6;
    // DDR4 refresh: tREFI = 7.8 us, tRFC = 350 ns.
    p.tREFI = nsToCycles(7800.0);
    p.tRFC = nsToCycles(350.0);
    return p;
}

Cycles
swapLatencyCycles(const TimingParams &m1, const TimingParams &m2,
                  std::uint64_t block_bytes)
{
    Cycles bursts = ceilDiv(block_bytes, 64) * m1.tBurst;
    Cycles m1_read_done = m1.tRP + m1.tRCD + m1.tCL + bursts;
    Cycles m2_col_ready = m2.tRP + m2.tRCD + m2.tCL;
    Cycles read_phase =
        (m1_read_done > m2_col_ready ? m1_read_done : m2_col_ready) +
        bursts;
    Cycles write_phase = m2.tRTW + m2.tWL + bursts + m2.tWR;
    return read_phase + write_phase;
}

TimingParams
m2Timing(double wr_scale)
{
    TimingParams m1 = m1Timing();
    TimingParams p = m1;
    p.tRCD = nsToCycles(137.50);
    p.tWR = nsToCycles(275.0 * wr_scale);
    // Keep the row open at least as long as it takes to deliver a
    // column after activation (Sec. 4.1: "appropriately adjust tRAS
    // and tRC of M2").
    p.tRAS = p.tRCD + (m1.tRAS - m1.tRCD);
    p.tRC = p.tRAS + p.tRP;
    // NVM needs no refresh.
    p.tREFI = 0;
    p.tRFC = 0;
    p.writeRecoveryPerAccess = true;
    return p;
}

} // namespace mem

} // namespace profess
