/**
 * @file
 * Container of the hybrid memory channels of one system.
 *
 * Channel selection (interleaving of swap groups across channels) is
 * performed by the hybrid memory controller; this class owns the
 * channels and aggregates their statistics and energy accounts.
 */

#ifndef PROFESS_MEM_MEMORY_SYSTEM_HH
#define PROFESS_MEM_MEMORY_SYSTEM_HH

#include <memory>
#include <vector>

#include "common/event.hh"
#include "mem/channel.hh"

namespace profess
{

namespace mem
{

/** Configuration of a multi-channel hybrid memory. */
struct MemorySystemConfig
{
    unsigned numChannels = 2;
    std::uint64_t m1BytesPerChannel = 8 * MiB;
    std::uint64_t m2BytesPerChannel = 64 * MiB;
    TimingParams m1 = m1Timing();
    TimingParams m2 = m2Timing();
    EnergyParams energy{};
    ChannelConfig channel{};
};

/** All channels of one system. */
class MemorySystem
{
  public:
    MemorySystem(EventQueue &eq, const MemorySystemConfig &cfg);

    /** @return number of channels. */
    unsigned numChannels() const
    {
        return static_cast<unsigned>(channels_.size());
    }

    /** @return channel by index. */
    Channel &channel(unsigned i) { return *channels_[i]; }
    const Channel &channel(unsigned i) const { return *channels_[i]; }

    /** @return the configuration this system was built with. */
    const MemorySystemConfig &config() const { return cfg_; }

    /** @return sum of a named counter across channels. */
    std::uint64_t totalCounter(const std::string &name) const;

    /** @return total energy in joules over the given time. */
    double totalJoules(double seconds) const;

    /** @return average power in watts over the given time. */
    double averageWatts(double seconds) const;

    /** @return mean demand-read latency in MC cycles. */
    double meanReadLatency() const;

  private:
    MemorySystemConfig cfg_;
    std::vector<std::unique_ptr<Channel>> channels_;
};

} // namespace mem

} // namespace profess

#endif // PROFESS_MEM_MEMORY_SYSTEM_HH
