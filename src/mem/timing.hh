/**
 * @file
 * DRAM / NVM device timing parameters (paper Table 8).
 *
 * All values are stored in memory-controller clock cycles.  The
 * channel runs at 0.8 GHz (1.6 GHz DDR), so one MC cycle is 1.25 ns
 * and a 64-B cache line (burst of 8 on a 64-bit channel) occupies the
 * data bus for 4 MC cycles.
 *
 * M1 is DDR4-like DRAM; M2 is an NVM with tRCD ten times that of M1
 * and tWR = 2 x tRCD_M2 (Sec. 4.1), no refresh, and tRAS/tRC adjusted
 * accordingly.
 */

#ifndef PROFESS_MEM_TIMING_HH
#define PROFESS_MEM_TIMING_HH

#include "common/types.hh"

namespace profess
{

namespace mem
{

/** Timing parameters of one memory module, in MC cycles. */
struct TimingParams
{
    Cycles tRCD = 11;   ///< row-to-column delay (13.75 ns)
    Cycles tRP = 11;    ///< precharge (13.75 ns)
    Cycles tCL = 11;    ///< CAS (read) latency (13.75 ns)
    Cycles tWL = 10;    ///< write (CAS write) latency
    Cycles tWR = 12;    ///< write recovery (15 ns)
    Cycles tRAS = 28;   ///< minimum row-open time (35 ns)
    Cycles tRC = 39;    ///< tRAS + tRP
    Cycles tBurst = 4;  ///< 64-B data transfer (8 beats DDR)
    Cycles tRTW = 3;    ///< read-to-write bus turnaround
    Cycles tWTR = 6;    ///< write-to-read turnaround
    Cycles tREFI = 0;   ///< refresh interval (0 = no refresh)
    Cycles tRFC = 0;    ///< refresh cycle time
    /**
     * NVM cell writes drain through the row buffer: the bank is
     * busy for tWR after each write burst, not only before a
     * precharge as in DRAM (Sec. 2.1: NVM writes are highly
     * asymmetric; this is what makes M2-resident write-heavy data
     * so costly and migration of it so profitable).
     */
    bool writeRecoveryPerAccess = false;

    /** Scale write recovery (sensitivity study, Sec. 5.2). */
    TimingParams
    withWriteRecovery(Cycles wr) const
    {
        TimingParams p = *this;
        p.tWR = wr;
        return p;
    }
};

/** MC cycles per nanosecond is 0.8 (1 cycle = 1.25 ns). */
constexpr double mcCyclesPerNs = 0.8;

/** Convert nanoseconds to MC cycles (rounded up). */
constexpr Cycles
nsToCycles(double ns)
{
    double c = ns * mcCyclesPerNs;
    auto whole = static_cast<Cycles>(c);
    return (c > static_cast<double>(whole)) ? whole + 1 : whole;
}

/** @return DDR4-like M1 timing (Table 8, Micron DDR4 values). */
TimingParams m1Timing();

/**
 * Analytic latency of one fast swap (Sec. 4.1).
 *
 * Read phase: the M1 block read overlaps the M2 row activation, the
 * M2 bursts then serialize on the shared bus.  Write phase: M2 write
 * bursts followed by tWR_M2, under which the M1 write hides.  For
 * Table 8 parameters and 2-KiB blocks this evaluates to ~812 ns,
 * within 2% of the paper's 796.25 ns.
 *
 * @param m1 M1 timing.
 * @param m2 M2 timing.
 * @param block_bytes Swap block size.
 * @return Latency in MC cycles.
 */
Cycles swapLatencyCycles(const TimingParams &m1,
                         const TimingParams &m2,
                         std::uint64_t block_bytes);

/**
 * @return NVM M2 timing (Table 8): tRCD = 10 x M1, tWR = 2 x tRCD_M2,
 *         tRAS/tRC adjusted, no refresh; other timings as M1.
 *
 * @param wr_scale Multiplier on tWR_M2 for the write-latency
 *                 sensitivity study (default 1.0).
 */
TimingParams m2Timing(double wr_scale = 1.0);

} // namespace mem

} // namespace profess

#endif // PROFESS_MEM_TIMING_HH
