#include "mem/channel.hh"

#include <algorithm>

#include "common/latency_attr.hh"
#include "common/telemetry.hh"

namespace profess
{

namespace mem
{

Channel::Channel(EventQueue &eq, const TimingParams &m1t,
                 const TimingParams &m2t, const ModuleGeometry &m1g,
                 const ModuleGeometry &m2g, const EnergyParams &ep,
                 const ChannelConfig &cfg)
    : eq_(eq), m1t_(m1t), m2t_(m2t), m1g_(m1g), m2g_(m2g), cfg_(cfg),
      m2BaseTwr_(m2t.tWR), banks1_(m1g.banks), banks2_(m2g.banks),
      energy_(ep),
      ctrDemandReads_(stats_.counterRef("demand_reads")),
      ctrDemandWrites_(stats_.counterRef("demand_writes")),
      ctrStReads_(stats_.counterRef("st_reads")),
      ctrStWrites_(stats_.counterRef("st_writes")),
      ctrRowHits_(stats_.counterRef("row_hits")),
      ctrRowMisses_(stats_.counterRef("row_misses")),
      ctrM1Activates_(stats_.counterRef("m1_activates")),
      ctrM2Activates_(stats_.counterRef("m2_activates")),
      ctrM1Accesses_(stats_.counterRef("m1_accesses")),
      ctrM2Accesses_(stats_.counterRef("m2_accesses")),
      ctrBusBusyCycles_(stats_.counterRef("bus_busy_cycles"))
{
    nextRefresh_ = m1t_.tREFI == 0 ? tickNever : m1t_.tREFI;
    readQ_.reserve(64);
    writeQ_.reserve(64);
}

void
Channel::push(RequestPtr req)
{
    req->enqueueTick = eq_.now();
    DecodedAddr d = geometry(req->module).decode(req->addr);
    req->bank = d.bank;
    req->row = d.row;
    if (req->cls == ReqClass::Demand)
        ++(req->isWrite ? ctrDemandWrites_ : ctrDemandReads_);
    else
        ++(req->isWrite ? ctrStWrites_ : ctrStReads_);
    if (req->isWrite)
        writeQ_.push_back(std::move(req));
    else
        readQ_.push_back(std::move(req));
    trySchedule();
}

void
Channel::executeSwap(Addr m1_addr, Addr m2_addr,
                     std::uint64_t block_bytes,
                     InlineCallback done, bool slow)
{
    swapQ_.push_back(PendingSwap{m1_addr, m2_addr, block_bytes,
                                 std::move(done), slow});
    trySchedule();
}

Cycles
Channel::swapLatency(std::uint64_t block_bytes) const
{
    return swapLatencyCycles(m1t_, m2t_, block_bytes);
}

void
Channel::setM2WriteScale(double scale)
{
    double twr = static_cast<double>(m2BaseTwr_) * scale;
    m2t_.tWR = twr < 1.0 ? 1 : static_cast<Cycles>(twr + 0.5);
}

void
Channel::injectBankBusy(Module m, Tick until)
{
    std::vector<Bank> &banks = m == Module::M1 ? banks1_ : banks2_;
    for (Bank &b : banks) {
        b.readyAct = std::max(b.readyAct, until);
        b.readyCol = std::max(b.readyCol, until);
    }
    requestWake(until);
}

void
Channel::resetStats()
{
    stats_.reset();
    readLat_.reset();
    energy_ = EnergyAccount(energy_.params());
}

void
Channel::applyRefresh(Tick now)
{
    if (m1t_.tREFI == 0)
        return;
    while (nextRefresh_ <= now) {
        Tick end = nextRefresh_ + m1t_.tRFC;
        for (auto &b : banks1_) {
            b.open = false;
            b.readyAct = std::max(b.readyAct, end);
            b.readyCol = std::max(b.readyCol, end);
        }
        stats_.inc("m1_refreshes");
        nextRefresh_ += m1t_.tREFI;
    }
}

void
Channel::requestWake(Tick when)
{
    Tick now = eq_.now();
    if (when <= now)
        when = now;
    // An earlier-or-equal pending wake already covers this one.
    if (wakeAt_ != tickNever && wakeAt_ <= when && wakeAt_ > now)
        return;
    wakeAt_ = when;
    eq_.schedule(when, [this, when]() {
        if (wakeAt_ == when)
            wakeAt_ = tickNever;
        trySchedule();
    });
}

std::size_t
Channel::pickNext(const std::vector<RequestPtr> &q) const
{
    // FR-FCFS-Cap: oldest row hit whose row has not exhausted the
    // consecutive-hit cap; otherwise the oldest request.
    for (std::size_t i = 0; i < q.size(); ++i) {
        const Request &r = *q[i];
        const Bank &bk = r.module == Module::M1 ? banks1_[r.bank]
                                                : banks2_[r.bank];
        if (bk.open && bk.row == r.row &&
            bk.consecHits < cfg_.rowHitCap) {
            return i;
        }
    }
    return 0;
}

void
Channel::commit(RequestPtr req)
{
    Tick now = eq_.now();
    bool m2 = req->module == Module::M2;
    const TimingParams &t = timing(req->module);
    Bank &bk = bank(req->module, req->bank);

    bool hit = bk.open && bk.row == req->row;
    Tick col_ready;
    if (hit) {
        col_ready = std::max(now, bk.readyCol);
        ++bk.consecHits;
        ++ctrRowHits_;
    } else {
        Tick act_start;
        if (bk.open) {
            Tick pre_start = std::max(
                {now, bk.lastAct + t.tRAS, bk.wrRecoverEnd,
                 bk.readyCol});
            act_start = std::max(pre_start + t.tRP, bk.readyAct);
        } else {
            act_start = std::max(now, bk.readyAct);
        }
        bk.open = true;
        bk.row = req->row;
        bk.lastAct = act_start;
        bk.readyAct = act_start + t.tRC; // activate-to-activate
        bk.consecHits = 1;
        col_ready = act_start + t.tRCD;
        energy_.addActivate(m2);
        ++(m2 ? ctrM2Activates_ : ctrM1Activates_);
        ++ctrRowMisses_;
    }

    Cycles lat = req->isWrite ? t.tWL : t.tCL;
    Tick bus_earliest = busFreeAt_;
    if (req->isWrite != lastBusWrite_)
        bus_earliest += req->isWrite ? t.tRTW : t.tWTR;
    Tick data_start = std::max(col_ready + lat, bus_earliest);
    Tick data_end = data_start + t.tBurst;

    bk.readyCol = data_start - lat + t.tBurst;
    if (req->isWrite) {
        bk.wrRecoverEnd = data_end + t.tWR;
        if (t.writeRecoveryPerAccess)
            bk.readyCol = data_end + t.tWR;
    }
    // FR-FCFS-Cap (Sec. 4.1): after rowHitCap consecutive hits the
    // row is closed so one hot row cannot monopolize the bank.
    if (bk.consecHits >= cfg_.rowHitCap) {
        Tick pre_start =
            std::max({data_end, bk.wrRecoverEnd, bk.readyCol,
                      bk.lastAct + t.tRAS});
        bk.open = false;
        bk.consecHits = 0;
        bk.readyAct = std::max(bk.readyAct, pre_start + t.tRP);
    }
    busFreeAt_ = data_end;
    lastBusWrite_ = req->isWrite;
    ctrBusBusyCycles_ += t.tBurst;

    // Latency attribution (observational only): decompose this
    // request's life into queueing (arrival to commit), bank-busy
    // (commit to burst start) and transfer (the burst).
    if (PROFESS_UNLIKELY(attr_ != nullptr) &&
        req->cls == ReqClass::Demand) {
        using telemetry::LatencyAttribution;
        auto tier = m2 ? LatencyAttribution::Tier::M2
                       : LatencyAttribution::Tier::M1;
        auto kind = req->isWrite ? LatencyAttribution::Kind::Write
                                 : LatencyAttribution::Kind::Read;
        attr_->record(req->program, tier, kind,
                      LatencyAttribution::Phase::Queue,
                      static_cast<double>(now - req->enqueueTick));
        attr_->record(req->program, tier, kind,
                      LatencyAttribution::Phase::BankBusy,
                      static_cast<double>(data_start - now));
        attr_->record(req->program, tier, kind,
                      LatencyAttribution::Phase::Transfer,
                      static_cast<double>(t.tBurst));
    }

    if (req->isWrite)
        energy_.addWrite(m2);
    else
        energy_.addRead(m2);
    ++(m2 ? ctrM2Accesses_ : ctrM1Accesses_);

    Request *raw = req.release();
    eq_.schedule(data_end, [this, raw]() {
        RequestPtr owner(raw); // recycled (or freed) on return
        raw->completeTick = eq_.now();
        if (!raw->isWrite && raw->cls == ReqClass::Demand) {
            readLat_.add(static_cast<double>(raw->completeTick -
                                             raw->enqueueTick));
        }
        panic_if(inflight_ == 0, "completion with no inflight");
        --inflight_;
        if (raw->onComplete)
            raw->onComplete(*raw);
        trySchedule();
    });
}

void
Channel::maybeStartSwap()
{
    Tick now = eq_.now();
    if (swapQ_.empty() || now < swapEndTick_)
        return;
    Tick start = std::max(now, busFreeAt_);
    PendingSwap s = std::move(swapQ_.front());
    swapQ_.pop_front();

    Cycles dur = swapLatency(s.blockBytes);
    if (s.slow)
        dur *= 2; // restore original mapping, then swap (Table 1)
    Tick end = start + dur;
    swapEndTick_ = end;
    busFreeAt_ = end;
    lastBusWrite_ = true;

    // Traffic and energy of the swap: block-sized reads and writes
    // on both modules, one activation each (2-KB blocks sit within
    // a single 8-KB row).
    std::uint64_t bursts = ceilDiv(s.blockBytes, 64);
    for (std::uint64_t i = 0; i < bursts; ++i) {
        energy_.addRead(false);
        energy_.addRead(true);
        energy_.addWrite(false);
        energy_.addWrite(true);
    }
    energy_.addActivate(false);
    energy_.addActivate(true);
    stats_.inc("m1_activates");
    stats_.inc("m2_activates");
    stats_.inc("swaps");
    stats_.inc("swap_busy_cycles", dur);

    // Involved banks end up with the swapped rows open.
    DecodedAddr d1 = m1g_.decode(s.m1Addr);
    DecodedAddr d2 = m2g_.decode(s.m2Addr);
    Bank &b1 = banks1_[d1.bank];
    Bank &b2 = banks2_[d2.bank];
    for (Bank *b : {&b1, &b2}) {
        b->open = true;
        b->readyCol = end;
        b->readyAct = end;
        b->lastAct = start;
        b->wrRecoverEnd = end;
        b->consecHits = 0;
    }
    b1.row = d1.row;
    b2.row = d2.row;

    activeSwapDones_.push_back(std::move(s.done));
    eq_.schedule(end, [this]() {
        InlineCallback done = std::move(activeSwapDones_.front());
        activeSwapDones_.pop_front();
        if (done)
            done();
        trySchedule();
    });
}

void
Channel::trySchedule()
{
    telemetry::ScopedTimer span(schedTimer_);
    Tick now = eq_.now();
    applyRefresh(now);
    if (now < swapEndTick_) {
        requestWake(swapEndTick_);
        return;
    }
    maybeStartSwap();
    if (now < swapEndTick_) {
        requestWake(swapEndTick_);
        return;
    }
    while (inflight_ < cfg_.maxInflight) {
        if (drainingWrites_) {
            if (writeQ_.size() <= cfg_.writeLowMark)
                drainingWrites_ = false;
        } else if (writeQ_.size() >= cfg_.writeHighMark) {
            drainingWrites_ = true;
        }
        bool use_writes =
            drainingWrites_ || (readQ_.empty() && !writeQ_.empty());
        auto &q = use_writes ? writeQ_ : readQ_;
        if (q.empty())
            break;
        std::size_t idx = pickNext(q);
        RequestPtr r = std::move(q[idx]);
        q.erase(q.begin() + static_cast<std::ptrdiff_t>(idx));
        ++inflight_;
        commit(std::move(r));
    }
}

void
Channel::registerTelemetry(telemetry::StatRegistry &registry,
                           const std::string &prefix) const
{
    registry.addSet(prefix, stats_);
    registry.addProbe(prefix + ".read_queue", [this]() {
        return static_cast<double>(readQueueSize());
    });
    registry.addProbe(prefix + ".write_queue", [this]() {
        return static_cast<double>(writeQueueSize());
    });
    registry.addProbe(prefix + ".read_latency_avg", [this]() {
        return readLat_.mean();
    });
}

} // namespace mem

} // namespace profess
