/**
 * @file
 * Memory request descriptor exchanged between the hybrid memory
 * controller and the channel timing model.
 *
 * Addresses here are *device* byte addresses within one module (M1 or
 * M2) of one channel; the hybrid controller performs all original ->
 * actual translation before a request reaches a channel.
 */

#ifndef PROFESS_MEM_REQUEST_HH
#define PROFESS_MEM_REQUEST_HH

#include <functional>
#include <memory>

#include "common/types.hh"

namespace profess
{

namespace mem
{

/** Which module of a channel a request targets. */
enum class Module : std::uint8_t { M1 = 0, M2 = 1 };

/** What produced the request; drives statistics and scheduling. */
enum class ReqClass : std::uint8_t
{
    Demand = 0, ///< CPU load/store miss
    St = 1,     ///< swap-group-table fill or writeback
    Swap = 2,   ///< block migration traffic
};

/** A single 64-B memory request. */
struct Request
{
    Module module = Module::M1;
    bool isWrite = false;
    ReqClass cls = ReqClass::Demand;
    Addr addr = 0;             ///< device byte address within module
    ProgramId program = invalidProgram;
    Tick enqueueTick = 0;      ///< set by the channel on push
    Tick completeTick = 0;     ///< set by the channel on completion

    /** Invoked at data completion (reads and writes). */
    std::function<void(Request &)> onComplete;
};

using RequestPtr = std::unique_ptr<Request>;

} // namespace mem

} // namespace profess

#endif // PROFESS_MEM_REQUEST_HH
