/**
 * @file
 * Memory request descriptor exchanged between the hybrid memory
 * controller and the channel timing model.
 *
 * Addresses here are *device* byte addresses within one module (M1 or
 * M2) of one channel; the hybrid controller performs all original ->
 * actual translation before a request reaches a channel.
 *
 * Requests are recycled through an ObjectPool in the steady state:
 * RequestPtr's deleter returns pooled nodes to their pool instead of
 * freeing them, and plain heap-allocated requests (tests, simple
 * callers) keep working because a null pool falls back to delete.
 */

#ifndef PROFESS_MEM_REQUEST_HH
#define PROFESS_MEM_REQUEST_HH

#include <memory>

#include "common/inline_function.hh"
#include "common/pool.hh"
#include "common/types.hh"

namespace profess
{

namespace mem
{

/** Which module of a channel a request targets. */
enum class Module : std::uint8_t { M1 = 0, M2 = 1 };

/** What produced the request; drives statistics and scheduling. */
enum class ReqClass : std::uint8_t
{
    Demand = 0, ///< CPU load/store miss
    St = 1,     ///< swap-group-table fill or writeback
    Swap = 2,   ///< block migration traffic
};

/** A single 64-B memory request. */
struct Request
{
    Module module = Module::M1;
    bool isWrite = false;
    ReqClass cls = ReqClass::Demand;
    Addr addr = 0;             ///< device byte address within module
    ProgramId program = invalidProgram;
    Tick enqueueTick = 0;      ///< set by the channel on push
    Tick completeTick = 0;     ///< set by the channel on completion

    /** Decoded device coordinates, cached by the channel on push so
     *  the FR-FCFS scan never re-decodes queued requests. */
    std::uint32_t bank = 0;
    std::uint64_t row = 0;

    /** Owning pool, or nullptr for a heap-allocated request.
     *  The 64-byte buffer fits a moved InlineCallback capture, so
     *  completion wrappers stay allocation-free. */
    ObjectPool<Request> *pool = nullptr;

    /** Invoked at data completion (reads and writes). */
    InlineFunction<void(Request &), 64> onComplete;
};

/** Returns a request to its pool, or frees an unpooled one. */
struct RequestDeleter
{
    void
    operator()(Request *r) const
    {
        if (r == nullptr)
            return;
        if (r->pool != nullptr) {
            r->onComplete = nullptr;
            r->pool->release(r);
        } else {
            delete r;
        }
    }
};

using RequestPtr = std::unique_ptr<Request, RequestDeleter>;

/** Acquire a recycled request from a pool, reset for reuse. */
inline RequestPtr
acquireRequest(ObjectPool<Request> &pool)
{
    Request *r = pool.acquire();
    r->module = Module::M1;
    r->isWrite = false;
    r->cls = ReqClass::Demand;
    r->addr = 0;
    r->program = invalidProgram;
    r->enqueueTick = 0;
    r->completeTick = 0;
    r->bank = 0;
    r->row = 0;
    r->pool = &pool;
    r->onComplete = nullptr;
    return RequestPtr(r);
}

} // namespace mem

} // namespace profess

#endif // PROFESS_MEM_REQUEST_HH
