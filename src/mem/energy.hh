/**
 * @file
 * Off-chip memory-system energy accounting.
 *
 * The paper reports energy efficiency as requests served per second
 * per watt (Sec. 4.3), using the power reported by the memory
 * simulator.  We account per-operation energies (activation, 64-B
 * read burst, 64-B write burst) plus per-rank background power.
 *
 * Default values are representative of DDR4 (M1) and a PCM-like NVM
 * (M2): NVM array reads cost ~2x DRAM and writes ~8x, while NVM needs
 * no refresh and has lower background power.  Absolute values only
 * scale the result; the paper's metric is relative, and all values
 * are configurable.
 */

#ifndef PROFESS_MEM_ENERGY_HH
#define PROFESS_MEM_ENERGY_HH

#include <cstdint>

#include "common/types.hh"

namespace profess
{

namespace mem
{

/** Per-operation energies (nJ) and background power (W) per module. */
struct EnergyParams
{
    double m1ActNj = 2.5;      ///< M1 activate + precharge
    double m1ReadNj = 5.0;     ///< M1 64-B read burst (incl. I/O)
    double m1WriteNj = 5.5;    ///< M1 64-B write burst
    double m1BackgroundW = 0.30; ///< per rank, incl. refresh
    double m2ActNj = 5.0;      ///< M2 array read into row buffer
    double m2ReadNj = 7.5;     ///< M2 64-B read burst
    double m2WriteNj = 45.0;   ///< M2 64-B write burst (cell writes)
    double m2BackgroundW = 0.10; ///< per rank, no refresh
};

/** Tallies of energy-relevant events for one channel. */
class EnergyAccount
{
  public:
    explicit EnergyAccount(const EnergyParams &p = {}) : params_(p) {}

    void addActivate(bool m2) { (m2 ? m2Acts_ : m1Acts_)++; }
    void addRead(bool m2) { (m2 ? m2Reads_ : m1Reads_)++; }
    void addWrite(bool m2) { (m2 ? m2Writes_ : m1Writes_)++; }

    /** @return dynamic energy so far, in nJ. */
    double
    dynamicNj() const
    {
        return static_cast<double>(m1Acts_) * params_.m1ActNj +
               static_cast<double>(m1Reads_) * params_.m1ReadNj +
               static_cast<double>(m1Writes_) * params_.m1WriteNj +
               static_cast<double>(m2Acts_) * params_.m2ActNj +
               static_cast<double>(m2Reads_) * params_.m2ReadNj +
               static_cast<double>(m2Writes_) * params_.m2WriteNj;
    }

    /**
     * @param seconds Wall-clock simulated time.
     * @return total energy (dynamic + background), in joules.
     */
    double
    totalJoules(double seconds) const
    {
        double background =
            (params_.m1BackgroundW + params_.m2BackgroundW) * seconds;
        return dynamicNj() * 1e-9 + background;
    }

    /** @return average power in watts over the given time. */
    double
    averageWatts(double seconds) const
    {
        return seconds > 0.0 ? totalJoules(seconds) / seconds : 0.0;
    }

    std::uint64_t m1Activates() const { return m1Acts_; }
    std::uint64_t m2Activates() const { return m2Acts_; }
    std::uint64_t m1ReadBursts() const { return m1Reads_; }
    std::uint64_t m2ReadBursts() const { return m2Reads_; }
    std::uint64_t m1WriteBursts() const { return m1Writes_; }
    std::uint64_t m2WriteBursts() const { return m2Writes_; }

    /** @return the parameters this account was built with. */
    const EnergyParams &params() const { return params_; }

  private:
    EnergyParams params_;
    std::uint64_t m1Acts_ = 0, m2Acts_ = 0;
    std::uint64_t m1Reads_ = 0, m2Reads_ = 0;
    std::uint64_t m1Writes_ = 0, m2Writes_ = 0;
};

} // namespace mem

} // namespace profess

#endif // PROFESS_MEM_ENERGY_HH
