/**
 * @file
 * Set-associative write-back cache model.
 *
 * Functional (tags only) with LRU replacement and write-allocate,
 * used for the L1/L2/L3 hierarchy (Table 8) that filters
 * instruction-level traces down to main-memory traffic, and reusable
 * for any tag store.  Latencies are carried as metadata; the
 * hierarchy accumulates them.
 */

#ifndef PROFESS_CACHE_CACHE_HH
#define PROFESS_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace profess
{

namespace telemetry
{
class StatRegistry;
} // namespace telemetry

namespace cache
{

/** One set-associative cache level. */
class Cache
{
  public:
    struct Params
    {
        std::string name = "cache";
        std::uint64_t capacityBytes = 32 * KiB;
        unsigned ways = 4;
        std::uint64_t lineBytes = 64;
        Cycles hitLatency = 2; ///< core cycles
    };

    /** Outcome of one access. */
    struct Outcome
    {
        bool hit = false;
        bool writeback = false; ///< a dirty victim was evicted
        Addr writebackAddr = 0; ///< line address of the victim
    };

    explicit Cache(const Params &p);

    /**
     * Access a byte address (write-allocate, LRU).
     *
     * @param addr Byte address.
     * @param is_write True for stores.
     * @return hit/miss and any dirty victim evicted by the fill.
     */
    Outcome access(Addr addr, bool is_write);

    /** @return true if the line is present (no LRU update). */
    bool probe(Addr addr) const;

    /** Invalidate everything (drops dirty data). */
    void flush();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }
    Cycles hitLatency() const { return params_.hitLatency; }
    const Params &params() const { return params_; }

    /** @return hit rate in [0,1] (1 if never accessed). */
    double
    hitRate() const
    {
        std::uint64_t t = hits_ + misses_;
        return t == 0 ? 1.0
                      : static_cast<double>(hits_) /
                            static_cast<double>(t);
    }

    /** Register hit/miss/writeback counters under `prefix`. */
    void registerTelemetry(telemetry::StatRegistry &registry,
                           const std::string &prefix) const;

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t lineOf(Addr a) const { return a / params_.lineBytes; }
    std::uint64_t setOf(std::uint64_t line) const
    {
        return line % numSets_;
    }
    std::uint64_t tagOf(std::uint64_t line) const
    {
        return line / numSets_;
    }

    Params params_;
    std::uint64_t numSets_;
    std::vector<Line> store_;
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
};

/** L1 -> L2 -> L3 hierarchy front-end. */
class Hierarchy
{
  public:
    struct Params
    {
        Cache::Params l1{"L1", 32 * KiB, 4, 64, 2};
        Cache::Params l2{"L2", 256 * KiB, 8, 64, 8};
        Cache::Params l3{"L3", 8 * MiB, 16, 64, 20};
    };

    /** Result of pushing one access through the hierarchy. */
    struct Outcome
    {
        bool l3Miss = false;     ///< must go to main memory
        Cycles latency = 0;      ///< hit latency of serving level
        /** Dirty L3 victims that must be written to memory. */
        std::vector<Addr> memWritebacks;
    };

    explicit Hierarchy(const Params &p);

    /** Access a byte address through L1/L2/L3. */
    Outcome access(Addr addr, bool is_write);

    Cache &l1() { return l1_; }
    Cache &l2() { return l2_; }
    Cache &l3() { return l3_; }

  private:
    Cache l1_, l2_, l3_;
};

} // namespace cache

} // namespace profess

#endif // PROFESS_CACHE_CACHE_HH
