#include "cache/cache.hh"

#include "common/logging.hh"
#include "common/telemetry.hh"

namespace profess
{

namespace cache
{

Cache::Cache(const Params &p) : params_(p)
{
    fatal_if(p.ways == 0, "cache needs at least one way");
    fatal_if(p.lineBytes == 0 || !isPowerOfTwo(p.lineBytes),
             "line size must be a power of two");
    std::uint64_t lines = p.capacityBytes / p.lineBytes;
    fatal_if(lines < p.ways, "cache smaller than one set");
    numSets_ = lines / p.ways;
    store_.resize(numSets_ * p.ways);
}

Cache::Outcome
Cache::access(Addr addr, bool is_write)
{
    std::uint64_t line = lineOf(addr);
    std::uint64_t tag = tagOf(line);
    Line *set = &store_[setOf(line) * params_.ways];

    Outcome out;
    for (unsigned w = 0; w < params_.ways; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].lastUse = ++useClock_;
            set[w].dirty = set[w].dirty || is_write;
            ++hits_;
            out.hit = true;
            return out;
        }
    }
    ++misses_;

    // Fill: evict LRU.
    Line *victim = &set[0];
    for (unsigned w = 1; w < params_.ways; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (!victim->valid)
            break;
        if (set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }
    if (victim->valid && victim->dirty) {
        ++writebacks_;
        out.writeback = true;
        std::uint64_t victim_line =
            victim->tag * numSets_ + setOf(line);
        out.writebackAddr = victim_line * params_.lineBytes;
    }
    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tag;
    victim->lastUse = ++useClock_;
    return out;
}

bool
Cache::probe(Addr addr) const
{
    std::uint64_t line = lineOf(addr);
    std::uint64_t tag = tagOf(line);
    const Line *set = &store_[setOf(line) * params_.ways];
    for (unsigned w = 0; w < params_.ways; ++w) {
        if (set[w].valid && set[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    for (auto &l : store_)
        l = Line{};
}

Hierarchy::Hierarchy(const Params &p)
    : l1_(p.l1), l2_(p.l2), l3_(p.l3)
{
}

Hierarchy::Outcome
Hierarchy::access(Addr addr, bool is_write)
{
    Outcome out;
    Cache::Outcome o1 = l1_.access(addr, is_write);
    if (o1.hit) {
        out.latency = l1_.hitLatency();
        return out;
    }
    // L1 victim writebacks land in L2 (they hit or allocate there);
    // modelled by an L2 write access.
    if (o1.writeback) {
        Cache::Outcome w = l2_.access(o1.writebackAddr, true);
        if (w.writeback) {
            Cache::Outcome w3 =
                l3_.access(w.writebackAddr, true);
            if (w3.writeback)
                out.memWritebacks.push_back(w3.writebackAddr);
        }
    }
    Cache::Outcome o2 = l2_.access(addr, is_write);
    if (o2.hit) {
        out.latency = l1_.hitLatency() + l2_.hitLatency();
        return out;
    }
    if (o2.writeback) {
        Cache::Outcome w3 = l3_.access(o2.writebackAddr, true);
        if (w3.writeback)
            out.memWritebacks.push_back(w3.writebackAddr);
    }
    Cache::Outcome o3 = l3_.access(addr, is_write);
    out.latency =
        l1_.hitLatency() + l2_.hitLatency() + l3_.hitLatency();
    if (o3.hit)
        return out;
    if (o3.writeback)
        out.memWritebacks.push_back(o3.writebackAddr);
    out.l3Miss = true;
    return out;
}

void
Cache::registerTelemetry(telemetry::StatRegistry &registry,
                         const std::string &prefix) const
{
    registry.addCounter(prefix + ".hits", hits_);
    registry.addCounter(prefix + ".misses", misses_);
    registry.addCounter(prefix + ".writebacks", writebacks_);
    registry.addProbe(prefix + ".hit_rate",
                      [this]() { return hitRate(); });
}

} // namespace cache

} // namespace profess
