/**
 * @file
 * OS physical-page allocation with region awareness (Sec. 3.1.1).
 *
 * The OS allocates 4-KiB frames of the *original* physical address
 * space on first touch.  RSM requires that the OS keep per-region
 * free lists and dedicate one private region per program: frames of
 * a private region are handed out only to the owning program, while
 * shared-region frames go to anyone.  Swaps remain invisible to the
 * OS (they permute *actual* locations within a swap group, and the
 * region of a swap group never changes).
 *
 * Region geometry follows Fig. 3: a 4-KiB page covers two consecutive
 * swap groups, and consecutive group pairs map to regions
 * 0, 1, ..., R-1, 0, 1, ...  Hence frame f belongs to region
 * (f mod (G/2)) mod R, where G is the number of swap groups.
 */

#ifndef PROFESS_OS_PAGE_ALLOCATOR_HH
#define PROFESS_OS_PAGE_ALLOCATOR_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace profess
{

namespace telemetry
{
class StatRegistry;
} // namespace telemetry

namespace os
{

constexpr std::uint64_t pageBytes = 4 * KiB;

/** Answers "which program owns this original block?" queries. */
class BlockOwnerOracle
{
  public:
    virtual ~BlockOwnerOracle() = default;

    /**
     * @param original_block Original-space 2-KiB block index.
     * @return Owning program, or invalidProgram if unallocated.
     */
    virtual ProgramId
    ownerOfBlock(std::uint64_t original_block) const = 0;
};

/** First-touch page allocator with per-region free lists. */
class PageAllocator : public BlockOwnerOracle
{
  public:
    /**
     * @param num_groups Number of swap groups G (even, multiple of
     *        2 * num_regions for uniform regions).
     * @param slots_per_group Locations per swap group (9 for 1:8).
     * @param num_regions Number of interleaved regions R.
     * @param num_programs Programs; program i owns private region i.
     * @param seed Seed for randomized placement within regions.
     */
    PageAllocator(std::uint64_t num_groups, unsigned slots_per_group,
                  unsigned num_regions, unsigned num_programs,
                  std::uint64_t seed = 7);

    /** @return total number of 4-KiB frames. */
    std::uint64_t numFrames() const { return numFrames_; }

    /** @return number of regions. */
    unsigned numRegions() const { return numRegions_; }

    /** @return region of a frame. */
    unsigned regionOfFrame(std::uint64_t frame) const;

    /** @return region of a swap group (Fig. 3). */
    unsigned regionOfGroup(std::uint64_t group) const;

    /**
     * @return the program whose private region this is, or
     *         invalidProgram for shared regions.
     */
    ProgramId privateOwner(unsigned region) const;

    /** @return the private region of a program. */
    unsigned privateRegionOf(ProgramId p) const;

    /**
     * Translate a virtual page, allocating on first touch.
     *
     * @param program Accessing program.
     * @param vpage Virtual page number.
     * @return Frame number.
     */
    std::uint64_t translate(ProgramId program, std::uint64_t vpage);

    /** @return frames currently allocated to a program. */
    std::uint64_t allocatedFrames(ProgramId p) const;

    /** @return free frames remaining in a region. */
    std::uint64_t freeFramesInRegion(unsigned region) const;

    /** Release all frames of a program (program termination). */
    void releaseProgram(ProgramId p);

    /** Translation counters: "translations", "cache_hits". */
    const StatSet &stats() const { return stats_; }

    /** @return last-translation-cache hit rate in [0,1]
     *  (1 if no translations yet). */
    double
    cacheHitRate() const
    {
        return ctrTranslations_ == 0
                   ? 1.0
                   : static_cast<double>(ctrCacheHits_) /
                         static_cast<double>(ctrTranslations_);
    }

    /** Register translation counters and hit rate under `prefix`. */
    void registerTelemetry(telemetry::StatRegistry &registry,
                           const std::string &prefix) const;

    // BlockOwnerOracle
    ProgramId ownerOfBlock(std::uint64_t original_block) const override;

  private:
    /** One-entry last-translation cache (demand streams are
     *  page-local, so most accesses re-translate the same page). */
    struct LastXlate
    {
        std::uint64_t vpage = ~std::uint64_t{0};
        std::uint64_t frame = 0;
        bool valid = false;
    };

    std::uint64_t pickFrame(ProgramId program);

    std::uint64_t numGroups_;
    std::uint64_t numFrames_;
    unsigned numRegions_;
    unsigned numPrograms_;
    Rng rng_;

    /** Per-region stack of free frames (randomized order). */
    std::vector<std::vector<std::uint64_t>> freeLists_;
    /** Per-program round-robin cursor over regions. */
    std::vector<unsigned> cursor_;
    /** frame -> owner (invalidProgram if free). */
    std::vector<ProgramId> owner_;
    /** Per-program page table: vpage -> frame. */
    std::vector<std::unordered_map<std::uint64_t, std::uint64_t>>
        pageTables_;
    /** Per-program last-translation cache. */
    std::vector<LastXlate> lastXlate_;

    StatSet stats_;
    std::uint64_t &ctrTranslations_;
    std::uint64_t &ctrCacheHits_;
};

} // namespace os

} // namespace profess

#endif // PROFESS_OS_PAGE_ALLOCATOR_HH
