#include "os/page_allocator.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/telemetry.hh"

namespace profess
{

namespace os
{

PageAllocator::PageAllocator(std::uint64_t num_groups,
                             unsigned slots_per_group,
                             unsigned num_regions,
                             unsigned num_programs,
                             std::uint64_t seed)
    : numGroups_(num_groups), numRegions_(num_regions),
      numPrograms_(num_programs), rng_(seed, 0xa02bdbf7bb3c0a7ull),
      ctrTranslations_(stats_.counterRef("translations")),
      ctrCacheHits_(stats_.counterRef("cache_hits"))
{
    fatal_if(num_groups == 0 || num_groups % 2 != 0,
             "number of swap groups must be even");
    fatal_if((num_groups / 2) % num_regions != 0,
             "G/2 (%llu) must be a multiple of the region count (%u) "
             "for uniform regions",
             static_cast<unsigned long long>(num_groups / 2),
             num_regions);
    fatal_if(num_programs >= num_regions,
             "need more regions (%u) than programs (%u)", num_regions,
             num_programs);
    fatal_if(slots_per_group % 2 == 0,
             "slots per group must be odd (1 M1 + even M2)");
    // Total bytes = G * slots * 2 KiB; frames are 4 KiB.
    numFrames_ = num_groups * slots_per_group / 2;

    owner_.assign(numFrames_, invalidProgram);
    pageTables_.resize(num_programs);
    lastXlate_.resize(num_programs);
    // A program can map at most the configured footprint (all
    // frames); pre-sizing the hash tables for an even share avoids
    // rehash-and-move cycles during first-touch warm-up.
    for (auto &t : pageTables_)
        t.reserve(numFrames_ / num_programs + 16);
    cursor_.resize(num_programs);
    for (unsigned p = 0; p < num_programs; ++p)
        cursor_[p] = rng_.below(num_regions);

    freeLists_.resize(num_regions);
    for (std::uint64_t f = 0; f < numFrames_; ++f)
        freeLists_[regionOfFrame(f)].push_back(f);
    // Randomize placement within each region so that physical frames
    // (and hence swap-group slots) are not allocated in a correlated
    // order across programs.
    for (auto &list : freeLists_) {
        for (std::size_t i = list.size(); i > 1; --i) {
            std::size_t j =
                rng_.below(static_cast<std::uint32_t>(i));
            std::swap(list[i - 1], list[j]);
        }
    }
}

unsigned
PageAllocator::regionOfFrame(std::uint64_t frame) const
{
    return static_cast<unsigned>((frame % (numGroups_ / 2)) %
                                 numRegions_);
}

unsigned
PageAllocator::regionOfGroup(std::uint64_t group) const
{
    return static_cast<unsigned>((group / 2) % numRegions_);
}

ProgramId
PageAllocator::privateOwner(unsigned region) const
{
    return region < numPrograms_ ? static_cast<ProgramId>(region)
                                 : invalidProgram;
}

unsigned
PageAllocator::privateRegionOf(ProgramId p) const
{
    panic_if(p < 0 || static_cast<unsigned>(p) >= numPrograms_,
             "bad program id %d", p);
    return static_cast<unsigned>(p);
}

std::uint64_t
PageAllocator::pickFrame(ProgramId program)
{
    unsigned start = cursor_[static_cast<unsigned>(program)];
    for (unsigned step = 0; step < numRegions_; ++step) {
        unsigned r = (start + step) % numRegions_;
        ProgramId priv = privateOwner(r);
        if (priv != invalidProgram && priv != program)
            continue; // someone else's private region
        if (freeLists_[r].empty())
            continue;
        cursor_[static_cast<unsigned>(program)] =
            (r + 1) % numRegions_;
        std::uint64_t frame = freeLists_[r].back();
        freeLists_[r].pop_back();
        return frame;
    }
    fatal("out of physical memory allocating for program %d",
          program);
}

std::uint64_t
PageAllocator::translate(ProgramId program, std::uint64_t vpage)
{
    panic_if(program < 0 ||
                 static_cast<unsigned>(program) >= numPrograms_,
             "bad program id %d", program);
    ++ctrTranslations_;
    LastXlate &last = lastXlate_[static_cast<unsigned>(program)];
    if (last.valid && last.vpage == vpage) {
        ++ctrCacheHits_;
        return last.frame;
    }
    auto &table = pageTables_[static_cast<unsigned>(program)];
    std::uint64_t frame;
    auto it = table.find(vpage);
    if (it != table.end()) {
        frame = it->second;
    } else {
        frame = pickFrame(program);
        owner_[frame] = program;
        table.emplace(vpage, frame);
    }
    last.vpage = vpage;
    last.frame = frame;
    last.valid = true;
    return frame;
}

std::uint64_t
PageAllocator::allocatedFrames(ProgramId p) const
{
    panic_if(p < 0 || static_cast<unsigned>(p) >= numPrograms_,
             "bad program id %d", p);
    return pageTables_[static_cast<unsigned>(p)].size();
}

std::uint64_t
PageAllocator::freeFramesInRegion(unsigned region) const
{
    panic_if(region >= numRegions_, "bad region %u", region);
    return freeLists_[region].size();
}

void
PageAllocator::releaseProgram(ProgramId p)
{
    panic_if(p < 0 || static_cast<unsigned>(p) >= numPrograms_,
             "bad program id %d", p);
    auto &table = pageTables_[static_cast<unsigned>(p)];
    for (const auto &kv : table) {
        owner_[kv.second] = invalidProgram;
        freeLists_[regionOfFrame(kv.second)].push_back(kv.second);
    }
    table.clear();
    lastXlate_[static_cast<unsigned>(p)] = LastXlate{};
}

ProgramId
PageAllocator::ownerOfBlock(std::uint64_t original_block) const
{
    std::uint64_t frame = original_block / 2;
    panic_if(frame >= numFrames_, "block %llu out of range",
             static_cast<unsigned long long>(original_block));
    return owner_[frame];
}

void
PageAllocator::registerTelemetry(telemetry::StatRegistry &registry,
                                 const std::string &prefix) const
{
    registry.addSet(prefix, stats_);
    registry.addProbe(prefix + ".cache_hit_rate",
                      [this]() { return cacheHitRate(); });
}

} // namespace os

} // namespace profess
