#include "hybrid/hybrid_controller.hh"

#include <cstring>

#include "common/invariant.hh"
#include "common/latency_attr.hh"
#include "common/telemetry.hh"
#include "common/trace_sink.hh"

namespace profess
{

namespace hybrid
{

HybridController::HybridController(EventQueue &eq,
                                   mem::MemorySystem &memory,
                                   const HybridLayout &layout,
                                   const Params &params,
                                   policy::MigrationPolicy &policy,
                                   const os::BlockOwnerOracle &oracle)
    : eq_(eq), memory_(memory), layout_(layout), params_(params),
      policy_(policy), oracle_(oracle), st_(layout), stc_(params.stc),
      perProgram_(params.numPrograms),
      ctrStFills_(stats_.counterRef("st_fills")),
      swapRetryLat_(256.0, 64)
{
    fatal_if(layout.numChannels != memory.numChannels(),
             "layout expects %u channels, memory has %u",
             layout.numChannels, memory.numChannels());
    fatal_if(layout.m1BytesRequiredPerChannel() >
                 memory.config().m1BytesPerChannel,
             "M1 module too small for layout");
    fatal_if(layout.m2BytesRequiredPerChannel() >
                 memory.config().m2BytesPerChannel,
             "M2 module too small for layout");
    fatal_if((layout.blockBytes & (layout.blockBytes - 1)) != 0,
             "block size must be a power of two");
    fatal_if(layout.totalBlocks() >
                 std::uint64_t{0xffffffff},
             "original space too large for 32-bit block math");
    policy_.setHost(this);

    groupDiv_ =
        FastDivMod(static_cast<std::uint32_t>(layout.numGroups));
    offsetMask_ = layout.blockBytes - 1;
    blockShift_ = 0;
    while ((std::uint64_t{1} << blockShift_) < layout.blockBytes)
        ++blockShift_;
    m2Stride_ = layout.groupsPerChannel() * layout.blockBytes;

    groups_.resize(layout.numGroups);
    for (std::uint64_t g = 0; g < layout.numGroups; ++g) {
        GroupInfo &gi = groups_[g];
        gi.m1Addr = layout.m1BlockAddr(g);
        gi.stAddr = layout.stEntryAddr(g);
        gi.chan = &memory_.channel(layout.channelOf(g));
        gi.region =
            static_cast<std::uint16_t>(layout.regionOfGroup(g));
        gi.isPrivate = gi.region < params.numPrograms;
    }
}

HybridController::~HybridController()
{
    // Queued channel requests hold RequestPtrs whose deleter
    // recycles into reqPool_; drop them now, while the pool is
    // alive, instead of when the channels destruct after it.
    for (unsigned c = 0; c < memory_.numChannels(); ++c)
        memory_.channel(c).dropQueued();
}

void
HybridController::access(ProgramId program, Addr original_addr,
                         bool is_write, InlineCallback done)
{
    telemetry::ScopedTimer span(accessTimer_);
    panic_if(program < 0 || static_cast<unsigned>(program) >=
                                params_.numPrograms,
             "bad program id %d", program);
    std::uint32_t ob =
        static_cast<std::uint32_t>(original_addr >> blockShift_);
    std::uint64_t g = groupDiv_.mod(ob);
    unsigned s = groupDiv_.div(ob);

    PendingAccess *pa = paPool_.acquire();
    pa->program = program;
    pa->slot = s;
    pa->offset = original_addr & offsetMask_;
    pa->isWrite = is_write;
    pa->done = std::move(done);
    pa->next = nullptr;
    if (PROFESS_UNLIKELY(attr_ != nullptr)) {
        // Pool-resident timestamps: a recycled node may carry a
        // stale park stamp from its previous life.
        pa->parkTick = tickNever;
        pa->parkedOnSwap = false;
    }

    auto &ps = perProgram_[static_cast<unsigned>(program)];
    ++ps.served;
    if (is_write)
        ++ps.writes;
    else
        ++ps.reads;

    if (StcMeta *m = stc_.find(g))
        serve(g, *m, pa);
    else
        startFill(g, pa);
}

void
HybridController::serve(std::uint64_t group, StcMeta &meta,
                        PendingAccess *pa)
{
    GroupInfo &gi = groups_[group];
    if (meta.swapping) {
        if (PROFESS_UNLIKELY(attr_ != nullptr)) {
            // A fill-parked access re-parking behind a swap keeps
            // its original stamp; the whole wait lands in the swap
            // park bucket.
            if (pa->parkTick == tickNever)
                pa->parkTick = eq_.now();
            pa->parkedOnSwap = true;
        }
        gi.swapWaiters.append(pa);
        return;
    }

    unsigned loc = st_.locationOf(group, pa->slot);
    bool from_m1 = loc == 0;

    if (PROFESS_UNLIKELY(attr_ != nullptr) &&
        pa->parkTick != tickNever) {
        using telemetry::LatencyAttribution;
        auto tier = from_m1 ? LatencyAttribution::Tier::M1
                            : LatencyAttribution::Tier::M2;
        auto kind = pa->parkedOnSwap
                        ? LatencyAttribution::Kind::Swap
                        : (pa->isWrite
                               ? LatencyAttribution::Kind::Write
                               : LatencyAttribution::Kind::Read);
        attr_->record(pa->program, tier, kind,
                      LatencyAttribution::Phase::Park,
                      static_cast<double>(eq_.now() - pa->parkTick));
        pa->parkTick = tickNever;
        pa->parkedOnSwap = false;
    }
    meta.bump(pa->slot,
              pa->isWrite ? policy_.writeWeight() : 1u);

    if (from_m1) {
        perProgram_[static_cast<unsigned>(pa->program)]
            .servedFromM1++;
    }

    policy::AccessInfo info;
    info.group = group;
    info.slot = pa->slot;
    info.m1Slot = st_.slotInM1(group);
    info.region = gi.region;
    info.isWrite = pa->isWrite;
    info.fromM1 = from_m1;
    info.accessor = pa->program;
    info.m1Owner =
        oracle_.ownerOfBlock(layout_.blockIndex(group, info.m1Slot));
    info.meta = &meta;
    info.now = eq_.now();

    policy_.onServed(info);

    // Issue the 64-B device request.
    mem::RequestPtr req = mem::acquireRequest(reqPool_);
    req->module = from_m1 ? mem::Module::M1 : mem::Module::M2;
    req->isWrite = pa->isWrite;
    req->cls = mem::ReqClass::Demand;
    req->program = pa->program;
    req->addr = gi.m1Addr +
                (from_m1 ? 0 : (loc - 1) * m2Stride_) + pa->offset;
    if (pa->done) {
        req->onComplete =
            [cb = std::move(pa->done)](mem::Request &) mutable {
                cb();
            };
    }
    paPool_.release(pa);
    gi.chan->push(std::move(req));

    // Migration consultation (not on the critical path, Sec. 3.2.3).
    if (!from_m1) {
        policy::Decision d = policy_.onM2Access(info);
        if (d == policy::Decision::Swap)
            startSwap(group, info.slot, info.m1Slot, meta);
    } else {
        policy_.onM1Access(info);
    }
}

void
HybridController::startFill(std::uint64_t group, PendingAccess *pa)
{
    GroupInfo &gi = groups_[group];
    if (PROFESS_UNLIKELY(attr_ != nullptr))
        pa->parkTick = eq_.now();
    gi.fillWaiters.append(pa);
    if (gi.fillInFlight)
        return;
    gi.fillInFlight = true;
    ++ctrStFills_;
    if (PROFESS_UNLIKELY(chrome_ != nullptr)) {
        chrome_->instant("st_fill", "hybrid", eq_.now(),
                         layout_.channelOf(group));
    }

    if (!params_.modelStTraffic) {
        eq_.scheduleIn(0, [this, group]() { finishFill(group); });
        return;
    }
    mem::RequestPtr req = mem::acquireRequest(reqPool_);
    req->module = mem::Module::M1;
    req->isWrite = false;
    req->cls = mem::ReqClass::St;
    req->addr = gi.stAddr;
    req->onComplete = [this, group](mem::Request &) {
        finishFill(group);
    };
    gi.chan->push(std::move(req));
}

void
HybridController::finishFill(std::uint64_t group)
{
    StcEviction ev;
    if (!stc_.insert(group, st_.entry(group).qac, ev)) {
        // Every way of the set is pinned by an in-flight swap;
        // retry once the channel has made progress.
        stats_.inc("stc_insert_retries");
        eq_.scheduleIn(mem::swapLatencyCycles(
                           memory_.config().m1, memory_.config().m2,
                           layout_.blockBytes) /
                           4,
                       [this, group]() { finishFill(group); });
        return;
    }
    if (ev.valid) {
        stats_.inc("stc_evictions");
        policy_.onStcEvict(ev.group, ev.meta, st_.entry(ev.group));
        if (ev.dirty) {
            stats_.inc("st_writebacks");
            if (params_.modelStTraffic) {
                mem::RequestPtr wb = mem::acquireRequest(reqPool_);
                wb->module = mem::Module::M1;
                wb->isWrite = true;
                wb->cls = mem::ReqClass::St;
                wb->addr = groups_[ev.group].stAddr;
                channelOf(ev.group).push(std::move(wb));
            }
        }
    }
    StcMeta *m = stc_.peek(group);
    panic_if(m == nullptr, "fill lost its STC entry");
    m->lastFold = eq_.now();
    policy_.onStcInsert(group, *m);
    // ST/STC coherence after the fill (and the eviction it caused).
    PROFESS_AUDIT_ONLY(stc_.auditSet(group, st_);
                       if (ev.valid) st_.auditGroup(ev.group));

    GroupInfo &gi = groups_[group];
    PendingAccess *pa = gi.fillWaiters.take();
    panic_if(pa == nullptr, "fill without waiters");
    gi.fillInFlight = false;
    while (pa != nullptr) {
        PendingAccess *next = pa->next;
        // Re-fetch the meta pointer: serving earlier waiters can
        // trigger swaps but never evicts this just-inserted entry.
        serve(group, *stc_.peek(group), pa);
        pa = next;
    }
}

bool
HybridController::requestSwap(std::uint64_t group, unsigned slot)
{
    StcMeta *m = stc_.peek(group);
    if (m == nullptr || m->swapping)
        return false;
    unsigned loc = st_.locationOf(group, slot);
    if (loc == 0)
        return false; // already in M1
    startSwap(group, slot, st_.slotInM1(group), *m);
    return true;
}

void
HybridController::startSwap(std::uint64_t group,
                            unsigned promote_slot, unsigned m1_slot,
                            StcMeta &meta, unsigned attempt,
                            Tick first_abort)
{
    panic_if(meta.swapping, "double swap on group %llu",
             static_cast<unsigned long long>(group));
    meta.swapping = true;
    meta.dirty = true;
    unsigned loc = st_.locationOf(group, promote_slot);
    panic_if(loc == 0, "promoting a block already in M1");

    GroupInfo &gi = groups_[group];
    if (PROFESS_UNLIKELY(chrome_ != nullptr)) {
        // Profiled variant: span from request to completion (sim
        // ticks), one track per channel.
        Tick begin = eq_.now();
        unsigned tid = layout_.channelOf(group);
        gi.chan->executeSwap(
            gi.m1Addr, gi.m1Addr + (loc - 1) * m2Stride_,
            layout_.blockBytes,
            [this, group, promote_slot, m1_slot, attempt,
             first_abort, begin, tid]() {
                swapDone(group, promote_slot, m1_slot, attempt,
                         first_abort);
                if (PROFESS_UNLIKELY(chrome_ != nullptr)) {
                    chrome_->complete("swap", "hybrid", begin,
                                      eq_.now() - begin, tid);
                }
            },
            policy_.slowSwap());
        return;
    }
    gi.chan->executeSwap(
        gi.m1Addr, gi.m1Addr + (loc - 1) * m2Stride_,
        layout_.blockBytes,
        [this, group, promote_slot, m1_slot, attempt,
         first_abort]() {
            swapDone(group, promote_slot, m1_slot, attempt,
                     first_abort);
        },
        policy_.slowSwap());
}

void
HybridController::swapDone(std::uint64_t group, unsigned promote_slot,
                           unsigned m1_slot, unsigned attempt,
                           Tick first_abort)
{
    if (PROFESS_UNLIKELY(faults_ != nullptr) &&
        faults_->swapAborts(group, eq_.now())) {
        abortSwap(group, promote_slot, m1_slot, attempt,
                  attempt == 0 ? eq_.now() : first_abort);
        return;
    }
    // A swap that needed retries finally landed: its retry latency
    // is first abort to commit.
    if (PROFESS_UNLIKELY(attempt > 0))
        swapRetryLat_.add(static_cast<double>(eq_.now() -
                                              first_abort));
    finishSwap(group, promote_slot, m1_slot);
}

void
HybridController::finishSwap(std::uint64_t group,
                             unsigned promote_slot, unsigned m1_slot)
{
    st_.swapSlots(group, promote_slot, m1_slot);
    ++swaps_;

    StcMeta *m = stc_.peek(group);
    panic_if(m == nullptr, "swapped group lost its STC entry");
    m->swapping = false;
    // Permutation integrity after every completed swap.
    PROFESS_AUDIT_ONLY(st_.auditGroup(group);
                       stc_.auditSet(group, st_));

    ProgramId prom_owner =
        oracle_.ownerOfBlock(layout_.blockIndex(group, promote_slot));
    ProgramId dem_owner =
        oracle_.ownerOfBlock(layout_.blockIndex(group, m1_slot));
    policy_.onSwapComplete(group, promote_slot, m1_slot, prom_owner,
                           dem_owner, privateRegion(group));

    PendingAccess *pa = groups_[group].swapWaiters.take();
    while (pa != nullptr) {
        PendingAccess *next = pa->next;
        serve(group, *stc_.peek(group), pa);
        pa = next;
    }
}

void
HybridController::abortSwap(std::uint64_t group,
                            unsigned promote_slot, unsigned m1_slot,
                            unsigned attempt, Tick first_abort)
{
    (void)m1_slot;
    stats_.inc("swap_aborts");
    StcMeta *m = stc_.peek(group);
    panic_if(m == nullptr, "aborted swap lost its STC entry");
    // Rollback is implicit: swapSlots() never ran, so the ATB and
    // QACs still describe the pre-swap state.  Clearing the swapping
    // flag re-arms the group.
    m->swapping = false;
    PROFESS_AUDIT_ONLY(st_.auditGroup(group);
                       stc_.auditSet(group, st_));

    // Serve waiters before deciding on a retry so an abort can never
    // wedge the group: they read the unchanged pre-swap locations.
    // (Serving them may itself start a fresh swap; the retry below
    // then finds the group busy and drops out.)
    PendingAccess *pa = groups_[group].swapWaiters.take();
    while (pa != nullptr) {
        PendingAccess *next = pa->next;
        serve(group, *stc_.peek(group), pa);
        pa = next;
    }

    if (attempt >= faults_->swapMaxRetries()) {
        stats_.inc("swap_degraded");
        // A dropped swap still closes its retry window.
        swapRetryLat_.add(
            static_cast<double>(eq_.now() - first_abort));
        faults_->noteSwapDegraded(group, eq_.now());
        return;
    }
    stats_.inc("swap_retries");
    faults_->noteSwapRetry(group, eq_.now());
    Cycles backoff = faults_->swapRetryBackoff() << attempt;
    eq_.scheduleIn(backoff, [this, group, promote_slot, attempt,
                             first_abort]() {
        retrySwap(group, promote_slot, attempt + 1, first_abort);
    });
}

void
HybridController::retrySwap(std::uint64_t group,
                            unsigned promote_slot, unsigned attempt,
                            Tick first_abort)
{
    StcMeta *m = stc_.peek(group);
    unsigned loc = (m != nullptr && !m->swapping)
                       ? st_.locationOf(group, promote_slot)
                       : 0;
    if (loc == 0) {
        // Entry evicted, another swap already in flight, or the
        // block reached M1 by other means: the retry is moot.
        stats_.inc("swap_retry_dropped");
        swapRetryLat_.add(
            static_cast<double>(eq_.now() - first_abort));
        return;
    }
    startSwap(group, promote_slot, st_.slotInM1(group), *m, attempt,
              first_abort);
}

bool
HybridController::quiescent() const
{
    for (const GroupInfo &gi : groups_) {
        if (gi.fillInFlight || !gi.fillWaiters.empty() ||
            !gi.swapWaiters.empty())
            return false;
    }
    bool swapping = false;
    stc_.forEach([&swapping](std::uint64_t, const StcMeta &m) {
        swapping = swapping || m.swapping;
    });
    return !swapping;
}

void
HybridController::auditStcQacCoherence() const
{
    stc_.forEach([this](std::uint64_t group, const StcMeta &m) {
        if (m.swapping)
            return;
        const StEntry &e = st_.entry(group);
        for (unsigned s = 0; s < layout_.slotsPerGroup; ++s) {
            profess_audit(
                m.qacAtInsert[s] == e.qac[s],
                "stale q_I snapshot: group %llu slot %u cached %u "
                "live %u",
                static_cast<unsigned long long>(group), s,
                static_cast<unsigned>(m.qacAtInsert[s]),
                static_cast<unsigned>(e.qac[s]));
        }
    });
}

void
HybridController::startPeriodic()
{
    if (policy_.periodicInterval() != 0 && !periodicEnabled_) {
        periodicEnabled_ = true;
        schedulePeriodic();
    }
    if (params_.statsFoldInterval != 0 && !foldEnabled_) {
        foldEnabled_ = true;
        scheduleStatsFold();
    }
}

void
HybridController::stopPeriodic()
{
    periodicEnabled_ = false;
    foldEnabled_ = false;
}

void
HybridController::scheduleStatsFold()
{
    eq_.scheduleIn(params_.statsFoldInterval, [this]() {
        if (!foldEnabled_)
            return;
        foldLongResidents();
        scheduleStatsFold();
    });
}

void
HybridController::foldLongResidents()
{
    Tick now = eq_.now();
    stc_.forEach([&](std::uint64_t group, StcMeta &meta) {
        if (meta.swapping)
            return;
        // Harvest, per block, counters that have been quiet for a
        // whole sweep: the block's access burst is over, so fold it
        // into the policy statistics exactly as an eviction would
        // and restart that block's counting.  Blocks accessed since
        // the previous sweep keep accumulating so the depletion
        // information of Sec. 3.2.3 stays intact.
        std::uint32_t touched = meta.touchedMask;
        meta.touchedMask = 0;
        StcMeta quiet = meta;
        bool any = false;
        for (unsigned s = 0; s < layout_.slotsPerGroup; ++s) {
            bool active = (touched & (1u << s)) != 0;
            // A saturated counter carries no further information:
            // fold it even mid-burst, otherwise a continuously hot
            // block freezes at rem_cnt <= 0 and can never promote.
            bool saturated = meta.ac[s] >= 63;
            if ((active && !saturated) || meta.ac[s] == 0)
                quiet.ac[s] = 0;
            else
                any = true;
        }
        if (!any)
            return;
        policy_.onStcEvict(group, quiet, st_.entry(group));
        for (unsigned s = 0; s < layout_.slotsPerGroup; ++s) {
            if (quiet.ac[s] > 0) {
                meta.ac[s] = 0;
                meta.qacAtInsert[s] = st_.entry(group).qac[s];
                // Only a genuinely quiet block is depleted; a
                // saturated-but-active one is still bursting.
                if ((touched & (1u << s)) == 0)
                    meta.depletedMask |= 1u << s;
            }
        }
        meta.dirty = true;
        meta.lastFold = now;
        stats_.inc("stats_folds");
    });
}

void
HybridController::schedulePeriodic()
{
    eq_.scheduleIn(policy_.periodicInterval(), [this]() {
        if (!periodicEnabled_)
            return;
        policy_.onPeriodic();
        schedulePeriodic();
    });
}

void
HybridController::resetStats()
{
    for (auto &p : perProgram_)
        p = ProgramStats{};
    swaps_ = 0;
    stats_.reset();
    swapRetryLat_.reset();
    stc_.resetStats();
}

std::uint64_t
HybridController::servedTotal() const
{
    std::uint64_t total = 0;
    for (const auto &p : perProgram_)
        total += p.served;
    return total;
}

const HybridController::ProgramStats &
HybridController::programStats(ProgramId p) const
{
    panic_if(p < 0 ||
                 static_cast<unsigned>(p) >= perProgram_.size(),
             "bad program id %d", p);
    return perProgram_[static_cast<unsigned>(p)];
}

void
HybridController::registerTelemetry(
    telemetry::StatRegistry &registry, const std::string &prefix)
{
    registry.addSet(prefix, stats_);
    registry.addCounter(prefix + ".swaps", swaps_);
    registry.addHistogram(prefix + ".swap_retry_latency",
                          swapRetryLat_);
    stc_.registerTelemetry(registry, prefix + ".stc");
    for (unsigned i = 0; i < perProgram_.size(); ++i) {
        std::string pp = prefix + ".p" + std::to_string(i);
        const ProgramStats &ps = perProgram_[i];
        registry.addCounter(pp + ".served", ps.served);
        registry.addCounter(pp + ".served_from_m1", ps.servedFromM1);
        registry.addCounter(pp + ".reads", ps.reads);
        registry.addCounter(pp + ".writes", ps.writes);
    }
    policy_.registerTelemetry(registry,
                              std::string("policy.") + policy_.name());
}

} // namespace hybrid

} // namespace profess
