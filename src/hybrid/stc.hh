/**
 * @file
 * Swap-group Table Cache (STC, Fig. 1 and Fig. 4).
 *
 * A set-associative on-chip cache of recently used ST entries.  It
 * doubles as MDM's temporal filter (Sec. 3.2): per cached entry, a
 * 6-bit saturating Access Counter (AC) per block and a snapshot of
 * each block's QAC at insertion (q_I) are kept.  The controller
 * resets ACs at insertion; policies read them on accesses and fold
 * them into statistics at eviction.
 *
 * This class is the tag/metadata store; the entry *contents* stay in
 * the authoritative SwapGroupTable, and the controller models the
 * fill/writeback traffic to M1.
 */

#ifndef PROFESS_HYBRID_STC_HH
#define PROFESS_HYBRID_STC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "hybrid/st.hh"

namespace profess
{

namespace telemetry
{
class StatRegistry;
} // namespace telemetry

namespace hybrid
{

/** Per-cached-entry metadata (the STC-resident accurate state). */
struct StcMeta
{
    std::uint8_t ac[maxSlots];          ///< 6-bit saturating ACs
    std::uint8_t qacAtInsert[maxSlots]; ///< q_I snapshot (Sec. 3.2.2)
    bool swapping = false;              ///< a swap is in flight
    bool dirty = false;                 ///< entry modified (ATB/QAC)
    /** Per-slot access bit since the last fold sweep. */
    std::uint32_t touchedMask = 0;
    /**
     * Per-slot "burst completed" bit: set when a quiet counter is
     * harvested (the block finished an access burst and went
     * silent), cleared on the next access.  A depleted M1 incumbent
     * should not be protected from promotion candidates.
     */
    std::uint32_t depletedMask = 0;
    Tick lastFold = 0; ///< last insert / forced statistics fold

    /** Saturating AC increment (6-bit counters). */
    void
    bump(unsigned slot, unsigned amount)
    {
        unsigned v = ac[slot] + amount;
        ac[slot] = static_cast<std::uint8_t>(v > 63 ? 63 : v);
        touchedMask |= 1u << slot;
        depletedMask &= ~(1u << slot);
    }

    /** @return true if the slot's last burst completed (see
     *  depletedMask). */
    bool
    depleted(unsigned slot) const
    {
        return (depletedMask & (1u << slot)) != 0;
    }

    /** @return true if any slot other than `except` was accessed. */
    bool
    anyOtherAccessed(unsigned slots, unsigned except) const
    {
        for (unsigned s = 0; s < slots; ++s) {
            if (s != except && ac[s] > 0)
                return true;
        }
        return false;
    }
};

/** Result of an insertion that displaced a valid entry. */
struct StcEviction
{
    bool valid = false;   ///< an entry was displaced
    bool dirty = false;   ///< displaced entry needs a writeback
    std::uint64_t group = 0;
    StcMeta meta{};
};

/** The cache proper. */
class StCache
{
  public:
    struct Params
    {
        std::uint64_t capacityBytes = 64 * KiB;
        unsigned ways = 8;
        std::uint64_t entryBytes = 8;
    };

    explicit StCache(const Params &p);

    /** @return number of sets. */
    std::uint64_t numSets() const { return numSets_; }

    /** @return associativity. */
    unsigned ways() const { return ways_; }

    /**
     * Look up a group, updating LRU on hit.
     *
     * @return metadata pointer, or nullptr on miss.
     */
    StcMeta *find(std::uint64_t group);

    /**
     * Look up a group updating LRU but not the hit/miss statistics
     * (used for internal re-lookups after fills and swaps so that
     * one demand access counts as exactly one STC lookup).
     *
     * @return metadata pointer, or nullptr if absent.
     */
    StcMeta *peek(std::uint64_t group);

    /** @return true if present, without touching LRU. */
    bool contains(std::uint64_t group) const;

    /**
     * Insert a group (must not be present), evicting the LRU
     * non-pinned (non-swapping) way if the set is full.
     *
     * @param group Group to insert.
     * @param current_qac The group's current QAC values (copied into
     *        the q_I snapshot); ACs are reset to zero.
     * @param ev Eviction descriptor (valid=false if a free way).
     * @return false if every way of the set is pinned by an
     *         in-flight swap (the caller must retry later).
     */
    bool insert(std::uint64_t group, const std::uint8_t *current_qac,
                StcEviction &ev);

    /** Hit/miss statistics. */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /** Zero the hit/miss statistics (contents untouched). */
    void
    resetStats()
    {
        hits_ = 0;
        misses_ = 0;
    }

    /**
     * Visit every valid entry (mutable access to its metadata).
     *
     * @param fn Invoked as fn(group, meta).
     */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (auto &w : store_) {
            if (w.valid)
                fn(w.group, w.meta);
        }
    }

    /** Visit every valid entry read-only (audits; no LRU update). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &w : store_) {
            if (w.valid)
                fn(w.group, w.meta);
        }
    }

    /** Register hit/miss counters and hit rate under `prefix`. */
    void registerTelemetry(telemetry::StatRegistry &registry,
                           const std::string &prefix) const;

    /**
     * Audit ST/STC residency coherence for the set holding `group`:
     * no group cached twice, every cached group within the table,
     * access counters within 6 bits, q_I snapshots within 2 bits,
     * and in-flight swaps marked dirty (a swap always updates the
     * ATB).  Panics on violation.  Hooked after every STC fill /
     * evict and completed swap in PROFESS_AUDIT builds.
     */
    void auditSet(std::uint64_t group,
                  const SwapGroupTable &st) const;

    /** Audit every set (teardown-scope full scan). */
    void auditInvariants(const SwapGroupTable &st) const;

    /** @return hit rate in [0,1] (1 if no lookups). */
    double
    hitRate() const
    {
        std::uint64_t t = hits_ + misses_;
        return t == 0 ? 1.0
                      : static_cast<double>(hits_) /
                            static_cast<double>(t);
    }

  private:
    struct Way
    {
        bool valid = false;
        std::uint64_t group = 0;
        std::uint64_t lastUse = 0;
        StcMeta meta{};
    };

    std::uint64_t setOf(std::uint64_t group) const
    {
        // Set counts are powers of two in every configuration; the
        // mask form keeps the per-access lookup divide-free, with a
        // modulo fallback for odd test geometries.
        return setMask_ != 0 ? (group & setMask_)
                             : group % numSets_;
    }

    std::uint64_t numSets_;
    std::uint64_t setMask_ = 0; ///< numSets_-1 when a power of two
    unsigned ways_;
    std::vector<Way> store_; ///< numSets_ x ways_, row-major
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace hybrid

} // namespace profess

#endif // PROFESS_HYBRID_STC_HH
