/**
 * @file
 * The hardware memory controller managing the flat migrating hybrid
 * memory (Fig. 1), transparently to the OS (Sec. 2.2).
 *
 * For every demand access it:
 *   1. translates the original address through the STC (a miss fills
 *      the ST entry from M1 and may write back a dirty victim);
 *   2. serves the 64-B request from the block's actual location;
 *   3. bumps the block's STC access counter and notifies the
 *      migration policy, which may decide to swap the accessed M2
 *      block with the group's M1-resident block;
 *   4. executes decided swaps through the channel (which is blocked
 *      for the swap duration; accesses to a group mid-swap wait).
 *
 * The controller is policy-agnostic: PoM, MemPod, MDM, ProFess, etc.
 * plug in through policy::MigrationPolicy.
 *
 * Hot-path organization: the per-access path performs zero heap
 * allocations in the steady state.  PendingAccess nodes and channel
 * requests are recycled through ObjectPools; accesses waiting on a
 * fill or swap sit on intrusive per-group FIFO lists inside a flat
 * GroupInfo table, which also caches every layout_-derived value
 * (region, channel, private bit, device base addresses) so the
 * address math is shifts, masks and one multiply-shift division.
 */

#ifndef PROFESS_HYBRID_HYBRID_CONTROLLER_HH
#define PROFESS_HYBRID_HYBRID_CONTROLLER_HH

#include <string>
#include <vector>

#include "common/event.hh"
#include "common/fastdiv.hh"
#include "common/inline_function.hh"
#include "common/pool.hh"
#include "common/stats.hh"
#include "hybrid/layout.hh"
#include "hybrid/st.hh"
#include "hybrid/stc.hh"
#include "mem/memory_system.hh"
#include "os/page_allocator.hh"
#include "policy/policy.hh"

namespace profess
{

namespace telemetry
{
class StatRegistry;
class ChromeTraceSink;
class LatencyAttribution;
struct TimerSlot;
} // namespace telemetry

namespace hybrid
{

/**
 * Fault-injection hook for deterministic failure testing
 * (sim::ScenarioController).  When installed, the controller
 * consults it at every swap completion: an aborted swap never
 * commits (the ATB/QAC state simply stays pre-swap), waiting
 * accesses are served from the unchanged locations, and the swap is
 * re-armed with exponential backoff up to swapMaxRetries(), after
 * which it degrades gracefully (the group stays consistent and
 * serviceable, the swap is dropped).  Absent an injector the only
 * cost is one predicted-not-taken null check per swap completion.
 */
class FaultInjector
{
  public:
    virtual ~FaultInjector() = default;

    /** @return true to abort the swap completing on `group` now. */
    virtual bool swapAborts(std::uint64_t group, Tick now) = 0;

    /** @return retry bound for aborted swaps. */
    virtual unsigned swapMaxRetries() const = 0;

    /** @return base retry backoff (doubled per attempt). */
    virtual Cycles swapRetryBackoff() const = 0;

    /** An aborted swap was re-armed. */
    virtual void noteSwapRetry(std::uint64_t group, Tick now) = 0;

    /** An aborted swap exhausted its retries and was dropped. */
    virtual void noteSwapDegraded(std::uint64_t group, Tick now) = 0;
};

/** Memory controller for the hybrid memory. */
class HybridController : public policy::SwapHost
{
  public:
    struct Params
    {
        StCache::Params stc{};
        bool modelStTraffic = true; ///< STC misses touch M1
        unsigned numPrograms = 4;   ///< private regions 0..n-1
        /**
         * Fold the access counters of long-resident STC entries
         * into the policy statistics every this many ticks
         * (0 = off).  Implements the paper's Sec. 5.2 observation
         * that a lack of evictions starves MDM of updates ("forcing
         * MDM counters' updates every 10M processor cycles ...
         * would increase the IPC"); 10M core cycles scale to 25K
         * MC ticks at the repo's 1/100 run scale.
         */
        Cycles statsFoldInterval = 25000;
    };

    /** Per-program service counters. */
    struct ProgramStats
    {
        std::uint64_t served = 0;
        std::uint64_t servedFromM1 = 0;
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
    };

    HybridController(EventQueue &eq, mem::MemorySystem &memory,
                     const HybridLayout &layout, const Params &params,
                     policy::MigrationPolicy &policy,
                     const os::BlockOwnerOracle &oracle);

    /**
     * Drops any requests still queued in the channels: they were
     * acquired from this controller's pool, and the controller (a
     * channel user, constructed after the memory system) is always
     * destroyed first, so they must be recycled while the pool is
     * alive.
     */
    ~HybridController() override;

    /**
     * Serve one 64-B demand access.
     *
     * @param program Accessing program.
     * @param original_addr Original physical byte address.
     * @param is_write True for writes.
     * @param done Completion callback (may be empty for writes).
     */
    void access(ProgramId program, Addr original_addr, bool is_write,
                InlineCallback done);

    /** Begin periodic policy callbacks (MemPod intervals). */
    void startPeriodic();

    /** Stop periodic policy callbacks. */
    void stopPeriodic();

    // SwapHost
    bool requestSwap(std::uint64_t group, unsigned slot) override;
    Tick hostNow() const override { return eq_.now(); }

    /** @return STC hit rate over all demand translations. */
    double stcHitRate() const { return stc_.hitRate(); }

    /** @return total swaps executed. */
    std::uint64_t swapCount() const { return swaps_; }

    /** @return served demand accesses (all programs). */
    std::uint64_t servedTotal() const;

    /** @return per-program counters. */
    const ProgramStats &programStats(ProgramId p) const;

    /** @return misc counters (st_fills, st_writebacks, ...). */
    const StatSet &stats() const { return stats_; }

    /** @return the layout in force. */
    const HybridLayout &layout() const { return layout_; }

    /** @return the swap-group table (tests, debugging). */
    const SwapGroupTable &table() const { return st_; }

    /** @return the STC (tests, debugging). */
    const StCache &stCache() const { return stc_; }

    /**
     * Zero all service statistics (per-program counters, swap
     * count, STC hit/miss, misc counters); ST/STC contents and
     * policy state are untouched.  Used at the warm-up boundary.
     */
    void resetStats();

    /** Register controller + STC + per-program statistics under
     *  `prefix` ("hybrid"); forwards to the migration policy. */
    void registerTelemetry(telemetry::StatRegistry &registry,
                           const std::string &prefix);

    /**
     * Full structural audit: every swap group's ATB permutation and
     * QAC range, ST/STC residency coherence across all sets, and
     * the migration policy's internal invariants.  Panics on
     * violation.  Wired into System teardown in PROFESS_AUDIT
     * builds; callable from tests in any build.
     */
    void
    auditInvariants() const
    {
        st_.auditInvariants();
        stc_.auditInvariants(st_);
        policy_.auditInvariants();
    }

    /** Emit swap/fill spans to a Chrome trace (null disables). */
    void setChromeTrace(telemetry::ChromeTraceSink *sink)
    {
        chrome_ = sink;
    }

    /** Wall-clock profile the access path (null disables). */
    void setAccessTimer(telemetry::TimerSlot *slot)
    {
        accessTimer_ = slot;
    }

    /**
     * Attribute time accesses spend parked behind STC fills and
     * in-flight swaps (null disables; observational only — parked
     * timestamps are pool-resident and only written under a
     * PROFESS_UNLIKELY branch).
     */
    void setLatencyAttribution(telemetry::LatencyAttribution *attr)
    {
        attr_ = attr;
    }

    /** Install a fault-injection hook (null disables). */
    void setFaultInjector(FaultInjector *f) { faults_ = f; }

    /**
     * @return true when no translation fill or swap is in flight on
     *         any group — the quiesce condition under which
     *         cross-component audits (auditStcQacCoherence) are
     *         guaranteed to hold.
     */
    bool quiescent() const;

    /**
     * Audit that every cached, non-swapping group's STC q_I
     * snapshots agree with the owning ST entry's live QACs (valid
     * exactly at quiesce points: QACs only change through eviction
     * updates, which re-sync the snapshots).  Panics on violation.
     */
    void auditStcQacCoherence() const;

  private:
    /** One access waiting for translation or a swap (pooled). */
    struct PendingAccess
    {
        ProgramId program;
        unsigned slot;
        std::uint64_t offset; ///< byte offset within the block
        bool isWrite;
        InlineCallback done;
        PendingAccess *next = nullptr; ///< intrusive FIFO link
        /** First tick this access parked on a wait list
         *  (tickNever = not parked).  Only maintained while
         *  latency attribution is attached. */
        Tick parkTick = tickNever;
        bool parkedOnSwap = false; ///< parked behind a swap
    };

    /** Intrusive FIFO of pooled PendingAccess nodes. */
    struct WaitList
    {
        PendingAccess *head = nullptr;
        PendingAccess *tail = nullptr;

        bool empty() const { return head == nullptr; }

        void
        append(PendingAccess *pa)
        {
            pa->next = nullptr;
            if (tail != nullptr)
                tail->next = pa;
            else
                head = pa;
            tail = pa;
        }

        /** Detach and return the whole chain. */
        PendingAccess *
        take()
        {
            PendingAccess *h = head;
            head = tail = nullptr;
            return h;
        }
    };

    /**
     * Per-group hot-path state: every layout_-derived value the
     * access path needs, precomputed, plus the group's wait lists.
     * (The M2 device address of location L is m1Addr + L *
     * m2Stride_, so only the M1 base is stored per group.)
     */
    struct GroupInfo
    {
        Addr m1Addr = 0;          ///< layout_.m1BlockAddr(group)
        Addr stAddr = 0;          ///< layout_.stEntryAddr(group)
        mem::Channel *chan = nullptr;
        std::uint16_t region = 0; ///< layout_.regionOfGroup(group)
        bool isPrivate = false;   ///< region < numPrograms
        bool fillInFlight = false;
        WaitList fillWaiters;
        WaitList swapWaiters;
    };

    void serve(std::uint64_t group, StcMeta &meta, PendingAccess *pa);
    void startFill(std::uint64_t group, PendingAccess *pa);
    void finishFill(std::uint64_t group);
    // Aborted swaps thread `attempt` and the tick of their first
    // abort through the retry chain so the retry-latency histogram
    // can measure first-abort to final-outcome time.
    void startSwap(std::uint64_t group, unsigned promote_slot,
                   unsigned m1_slot, StcMeta &meta,
                   unsigned attempt = 0, Tick first_abort = 0);
    void swapDone(std::uint64_t group, unsigned promote_slot,
                  unsigned m1_slot, unsigned attempt,
                  Tick first_abort);
    void finishSwap(std::uint64_t group, unsigned promote_slot,
                    unsigned m1_slot);
    void abortSwap(std::uint64_t group, unsigned promote_slot,
                   unsigned m1_slot, unsigned attempt,
                   Tick first_abort);
    void retrySwap(std::uint64_t group, unsigned promote_slot,
                   unsigned attempt, Tick first_abort);
    void schedulePeriodic();
    void scheduleStatsFold();
    void foldLongResidents();

    bool
    privateRegion(std::uint64_t group) const
    {
        return groups_[group].isPrivate;
    }

    mem::Channel &
    channelOf(std::uint64_t group)
    {
        return *groups_[group].chan;
    }

    EventQueue &eq_;
    mem::MemorySystem &memory_;
    HybridLayout layout_;
    Params params_;
    policy::MigrationPolicy &policy_;
    const os::BlockOwnerOracle &oracle_;

    SwapGroupTable st_;
    StCache stc_;

    std::vector<GroupInfo> groups_;
    ObjectPool<PendingAccess> paPool_;
    ObjectPool<mem::Request> reqPool_;

    // Precomputed address math (see GroupInfo).
    FastDivMod groupDiv_;          ///< divides by numGroups
    unsigned blockShift_ = 0;      ///< log2(blockBytes)
    std::uint64_t offsetMask_ = 0; ///< blockBytes - 1
    Addr m2Stride_ = 0; ///< m2BlockAddr(g, L) - m1BlockAddr(g) per L

    std::vector<ProgramStats> perProgram_;
    std::uint64_t swaps_ = 0;
    bool periodicEnabled_ = false;
    bool foldEnabled_ = false;
    StatSet stats_;
    std::uint64_t &ctrStFills_;
    /** First-abort to final-outcome time of retried swaps (MC
     *  cycles); fed only on the abort path, surfaced through the
     *  registry as hybrid.swap_retry_latency. */
    Histogram swapRetryLat_;
    telemetry::ChromeTraceSink *chrome_ = nullptr;
    telemetry::TimerSlot *accessTimer_ = nullptr;
    telemetry::LatencyAttribution *attr_ = nullptr;
    FaultInjector *faults_ = nullptr;
};

} // namespace hybrid

} // namespace profess

#endif // PROFESS_HYBRID_HYBRID_CONTROLLER_HH
