/**
 * @file
 * Address-space layout of the flat migrating hybrid memory
 * (PoM organization, Sec. 2.3 and Fig. 1).
 *
 * All memory locations form swap groups of `slotsPerGroup` fixed
 * physical locations: one in M1 and slotsPerGroup-1 in M2 (9 for the
 * default 1:8 capacity ratio; 5 for 1:4; 17 for 1:16).  Data migrate
 * at the 2-KiB block granularity.  The *original* physical address
 * space (what the OS allocates) is the union of all locations;
 * original block `ob` lives in swap group `ob mod G` at slot
 * `ob div G`, so a 4-KiB page covers two consecutive swap groups
 * (Fig. 3) and consecutive blocks interleave across channels.
 *
 * Per channel, M1 holds its groups' M1 blocks followed by the
 * Swap-group Table (ST) area (address translations are stored in M1,
 * Sec. 2.2); M2 holds the groups' M2 blocks slot-major so that
 * consecutive original blocks stay row-local.
 */

#ifndef PROFESS_HYBRID_LAYOUT_HH
#define PROFESS_HYBRID_LAYOUT_HH

#include "common/logging.hh"
#include "common/types.hh"

namespace profess
{

namespace hybrid
{

/** Static geometry of the hybrid address space. */
struct HybridLayout
{
    std::uint64_t numGroups = 0;    ///< G
    unsigned slotsPerGroup = 9;     ///< 1 M1 + 8 M2 locations
    unsigned numChannels = 2;
    unsigned numRegions = 128;      ///< RSM regions (Sec. 3.1.1)
    std::uint64_t blockBytes = 2 * KiB;
    std::uint64_t stEntryBytes = 8; ///< Sec. 4.1 (ProFess ST entry)

    /**
     * Build a layout that fits the given per-channel module budgets.
     *
     * G is the largest group count such that each channel's M1 holds
     * its data blocks plus the ST area, M2 holds the M2 blocks, and
     * G is a multiple of both the channel count and 2 x regions
     * (uniform regions, Fig. 3).
     */
    static HybridLayout
    build(std::uint64_t m1_bytes_per_channel,
          std::uint64_t m2_bytes_per_channel, unsigned channels,
          unsigned regions = 128, unsigned slots_per_group = 9,
          std::uint64_t block_bytes = 2 * KiB)
    {
        HybridLayout l;
        l.slotsPerGroup = slots_per_group;
        l.numChannels = channels;
        l.numRegions = regions;
        l.blockBytes = block_bytes;
        // Per-channel M1 budget: gl * blockBytes + gl * stEntryBytes.
        std::uint64_t gl_m1 =
            m1_bytes_per_channel / (block_bytes + l.stEntryBytes);
        std::uint64_t gl_m2 = m2_bytes_per_channel /
                              ((slots_per_group - 1) * block_bytes);
        std::uint64_t gl = std::min(gl_m1, gl_m2);
        std::uint64_t g = gl * channels;
        // Align down: G % channels == 0 and (G/2) % regions == 0.
        std::uint64_t align = 2ull * regions;
        while (align % channels != 0)
            align += 2ull * regions;
        g -= g % align;
        fatal_if(g == 0,
                 "memory too small for %u regions x %u channels",
                 regions, channels);
        l.numGroups = g;
        return l;
    }

    /** @return swap groups handled by each channel. */
    std::uint64_t
    groupsPerChannel() const
    {
        return numGroups / numChannels;
    }

    /** @return total original-space blocks (all slots). */
    std::uint64_t
    totalBlocks() const
    {
        return numGroups * slotsPerGroup;
    }

    /** @return capacity visible to the OS, in bytes. */
    std::uint64_t visibleBytes() const
    {
        return totalBlocks() * blockBytes;
    }

    /** @return original block index of an original byte address. */
    std::uint64_t blockOf(Addr a) const { return a / blockBytes; }

    /** @return swap group of an original block. */
    std::uint64_t
    groupOf(std::uint64_t ob) const
    {
        return ob % numGroups;
    }

    /** @return slot (0..slotsPerGroup-1) of an original block. */
    unsigned
    slotOf(std::uint64_t ob) const
    {
        return static_cast<unsigned>(ob / numGroups);
    }

    /** @return original block index of (group, slot). */
    std::uint64_t
    blockIndex(std::uint64_t group, unsigned slot) const
    {
        return static_cast<std::uint64_t>(slot) * numGroups + group;
    }

    /** @return RSM region of a swap group (Fig. 3). */
    unsigned
    regionOfGroup(std::uint64_t group) const
    {
        return static_cast<unsigned>((group / 2) % numRegions);
    }

    /** @return channel handling a swap group. */
    ChannelId
    channelOf(std::uint64_t group) const
    {
        return static_cast<ChannelId>(group % numChannels);
    }

    /** @return group index local to its channel. */
    std::uint64_t
    localGroup(std::uint64_t group) const
    {
        return group / numChannels;
    }

    /** @return M1 device byte address of a group's M1 block. */
    Addr
    m1BlockAddr(std::uint64_t group) const
    {
        return localGroup(group) * blockBytes;
    }

    /**
     * @param group Swap group.
     * @param location M2 location index within group (1..slots-1).
     * @return M2 device byte address of that location's block.
     */
    Addr
    m2BlockAddr(std::uint64_t group, unsigned location) const
    {
        panic_if(location == 0 || location >= slotsPerGroup,
                 "bad M2 location %u", location);
        return (static_cast<std::uint64_t>(location - 1) *
                    groupsPerChannel() +
                localGroup(group)) *
               blockBytes;
    }

    /** @return bytes of M1 per channel used for data blocks. */
    std::uint64_t
    m1DataBytesPerChannel() const
    {
        return groupsPerChannel() * blockBytes;
    }

    /** @return M1 device byte address of a group's ST entry. */
    Addr
    stEntryAddr(std::uint64_t group) const
    {
        Addr byte =
            m1DataBytesPerChannel() + localGroup(group) * stEntryBytes;
        return byte - byte % 64; // 64-B transfer granularity
    }

    /** @return required M1 bytes per channel (data + ST). */
    std::uint64_t
    m1BytesRequiredPerChannel() const
    {
        return groupsPerChannel() * (blockBytes + stEntryBytes);
    }

    /** @return required M2 bytes per channel. */
    std::uint64_t
    m2BytesRequiredPerChannel() const
    {
        return groupsPerChannel() * (slotsPerGroup - 1) * blockBytes;
    }
};

} // namespace hybrid

} // namespace profess

#endif // PROFESS_HYBRID_LAYOUT_HH
