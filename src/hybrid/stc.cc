#include "hybrid/stc.hh"

#include <cstring>

#include "common/invariant.hh"
#include "common/telemetry.hh"

namespace profess
{

namespace hybrid
{

StCache::StCache(const Params &p) : ways_(p.ways)
{
    fatal_if(p.ways == 0, "STC needs at least one way");
    std::uint64_t entries = p.capacityBytes / p.entryBytes;
    fatal_if(entries < p.ways, "STC too small for %u ways", p.ways);
    numSets_ = entries / p.ways;
    if ((numSets_ & (numSets_ - 1)) == 0)
        setMask_ = numSets_ - 1;
    store_.resize(numSets_ * ways_);
}

StcMeta *
StCache::find(std::uint64_t group)
{
    Way *set = &store_[setOf(group) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].group == group) {
            set[w].lastUse = ++useClock_;
            ++hits_;
            return &set[w].meta;
        }
    }
    ++misses_;
    return nullptr;
}

StcMeta *
StCache::peek(std::uint64_t group)
{
    Way *set = &store_[setOf(group) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].group == group) {
            set[w].lastUse = ++useClock_;
            return &set[w].meta;
        }
    }
    return nullptr;
}

bool
StCache::contains(std::uint64_t group) const
{
    const Way *set = &store_[setOf(group) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].group == group)
            return true;
    }
    return false;
}

bool
StCache::insert(std::uint64_t group, const std::uint8_t *current_qac,
                StcEviction &ev)
{
    Way *set = &store_[setOf(group) * ways_];
    Way *victim = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        panic_if(set[w].valid && set[w].group == group,
                 "inserting group already present");
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].meta.swapping)
            continue; // pinned: a migration is in flight
        if (victim == nullptr || set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }
    if (victim == nullptr)
        return false; // whole set pinned; caller retries

    ev = StcEviction{};
    if (victim->valid) {
        ev.valid = true;
        ev.group = victim->group;
        ev.meta = victim->meta;
        // The writeback is needed whenever translations or counters
        // changed; a block with a non-zero AC will update its QAC
        // (read-modify-write of the ST entry, Sec. 3.2.1).
        ev.dirty = victim->meta.dirty;
        for (unsigned s = 0; s < maxSlots && !ev.dirty; ++s)
            ev.dirty = victim->meta.ac[s] > 0;
    }

    victim->valid = true;
    victim->group = group;
    victim->lastUse = ++useClock_;
    victim->meta = StcMeta{};
    std::memset(victim->meta.ac, 0, sizeof(victim->meta.ac));
    std::memcpy(victim->meta.qacAtInsert, current_qac,
                sizeof(victim->meta.qacAtInsert));
    return true;
}

void
StCache::auditSet(std::uint64_t group,
                  const SwapGroupTable &st) const
{
    const std::uint64_t num_groups = st.layout().numGroups;
    const unsigned slots = st.layout().slotsPerGroup;
    const Way *set = &store_[setOf(group) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (!set[w].valid)
            continue;
        profess_audit(set[w].group < num_groups,
                      "STC caches group %llu beyond the table (%llu "
                      "groups)",
                      static_cast<unsigned long long>(set[w].group),
                      static_cast<unsigned long long>(num_groups));
        for (unsigned v = w + 1; v < ways_; ++v) {
            profess_audit(!set[v].valid ||
                              set[v].group != set[w].group,
                          "group %llu cached in two ways of one set",
                          static_cast<unsigned long long>(
                              set[w].group));
        }
        const StcMeta &m = set[w].meta;
        for (unsigned s = 0; s < slots; ++s) {
            profess_audit(m.ac[s] <= 63,
                          "group %llu slot %u AC %u exceeds 6 bits",
                          static_cast<unsigned long long>(
                              set[w].group),
                          s, m.ac[s]);
            profess_audit(m.qacAtInsert[s] < 4,
                          "group %llu slot %u q_I %u exceeds 2 bits",
                          static_cast<unsigned long long>(
                              set[w].group),
                          s, m.qacAtInsert[s]);
        }
        profess_audit(!m.swapping || m.dirty,
                      "group %llu mid-swap but not dirty",
                      static_cast<unsigned long long>(set[w].group));
    }
}

void
StCache::auditInvariants(const SwapGroupTable &st) const
{
    for (std::uint64_t set = 0; set < numSets_; ++set)
        auditSet(set, st); // setOf(set) walks every set once
}

void
StCache::registerTelemetry(telemetry::StatRegistry &registry,
                           const std::string &prefix) const
{
    registry.addCounter(prefix + ".hits", hits_);
    registry.addCounter(prefix + ".misses", misses_);
    registry.addProbe(prefix + ".hit_rate",
                      [this]() { return hitRate(); });
}

} // namespace hybrid

} // namespace profess
