/**
 * @file
 * Swap-group Table (ST): the authoritative address translations.
 *
 * Each ST entry holds, per slot of the group, Address Translation
 * Bits (ATB; 4 bits each for 9 slots) giving the slot's current
 * physical location, and the slot's Quantized Access-Counter (QAC)
 * value (2 bits, Table 5).  Entries logically reside in M1
 * (Sec. 2.2); the timing of ST fills and writebacks is modelled by
 * the hybrid controller, while this class stores the contents.
 */

#ifndef PROFESS_HYBRID_ST_HH
#define PROFESS_HYBRID_ST_HH

#include <cstdint>
#include <vector>

#include "common/invariant.hh"
#include "common/logging.hh"
#include "hybrid/layout.hh"

namespace profess
{

namespace hybrid
{

/** Maximum slots per swap group supported (1:16 ratio). */
constexpr unsigned maxSlots = 17;

/** Contents of one ST entry. */
struct StEntry
{
    /** atb[slot] = physical location (0 = M1, k>=1 = M2 loc k). */
    std::uint8_t atb[maxSlots];
    /** qac[slot] = quantized access count (Table 5). */
    std::uint8_t qac[maxSlots];
};

/** The table of all swap groups' entries. */
class SwapGroupTable
{
  public:
    explicit SwapGroupTable(const HybridLayout &layout)
        : layout_(layout)
    {
        fatal_if(layout.slotsPerGroup > maxSlots,
                 "slotsPerGroup %u exceeds maxSlots %u",
                 layout.slotsPerGroup, maxSlots);
        StEntry init;
        for (unsigned s = 0; s < maxSlots; ++s) {
            init.atb[s] = static_cast<std::uint8_t>(s);
            init.qac[s] = 0;
        }
        entries_.assign(layout.numGroups, init);
    }

    /** @return mutable entry of a group. */
    StEntry &
    entry(std::uint64_t group)
    {
        panic_if(group >= entries_.size(), "bad group");
        return entries_[group];
    }

    /** @return entry of a group. */
    const StEntry &
    entry(std::uint64_t group) const
    {
        panic_if(group >= entries_.size(), "bad group");
        return entries_[group];
    }

    /** @return current physical location of (group, slot). */
    unsigned
    locationOf(std::uint64_t group, unsigned slot) const
    {
        return entry(group).atb[slot];
    }

    /** @return the slot currently resident in the M1 location. */
    unsigned
    slotInM1(std::uint64_t group) const
    {
        const StEntry &e = entry(group);
        for (unsigned s = 0; s < layout_.slotsPerGroup; ++s) {
            if (e.atb[s] == 0)
                return s;
        }
        panic("group %llu has no slot in M1",
              static_cast<unsigned long long>(group));
    }

    /** Exchange the physical locations of two slots of a group. */
    void
    swapSlots(std::uint64_t group, unsigned slot_a, unsigned slot_b)
    {
        StEntry &e = entry(group);
        std::uint8_t t = e.atb[slot_a];
        e.atb[slot_a] = e.atb[slot_b];
        e.atb[slot_b] = t;
    }

    /** @return the layout this table was built for. */
    const HybridLayout &layout() const { return layout_; }

    /**
     * Audit one group's structural invariants: the ATB values form a
     * permutation of the group's locations (exactly one slot in M1)
     * and every QAC stays within its 2-bit range (Table 5).  Panics
     * on violation.  Hooked after every completed swap in
     * PROFESS_AUDIT builds; callable from tests in any build.
     */
    void
    auditGroup(std::uint64_t group) const
    {
        const StEntry &e = entry(group);
        std::uint32_t seen = 0;
        for (unsigned s = 0; s < layout_.slotsPerGroup; ++s) {
            unsigned loc = e.atb[s];
            profess_audit(loc < layout_.slotsPerGroup,
                          "group %llu slot %u maps to location %u "
                          "outside the group",
                          static_cast<unsigned long long>(group), s,
                          loc);
            profess_audit((seen & (1u << loc)) == 0,
                          "group %llu location %u held by two slots",
                          static_cast<unsigned long long>(group),
                          loc);
            seen |= 1u << loc;
            profess_audit(e.qac[s] < 4,
                          "group %llu slot %u QAC %u exceeds 2 bits",
                          static_cast<unsigned long long>(group), s,
                          e.qac[s]);
        }
    }

    /** Audit every group (teardown-scope full scan). */
    void
    auditInvariants() const
    {
        for (std::uint64_t g = 0; g < entries_.size(); ++g)
            auditGroup(g);
    }

  private:
    HybridLayout layout_;
    std::vector<StEntry> entries_;
};

} // namespace hybrid

} // namespace profess

#endif // PROFESS_HYBRID_ST_HH
