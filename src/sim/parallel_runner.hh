/**
 * @file
 * Parallel experiment runner (the experiment layer's scaling
 * substrate).
 *
 * Every figure/table binary in bench/ regenerates its results from
 * independent simulation jobs (workload mixes x policies x sweep
 * points).  The ParallelRunner fans those jobs across a
 * work-stealing thread pool while guaranteeing *bit-identical*
 * results for any worker count:
 *
 *  - each job's RNG seed is derived purely from its identity via
 *    deriveSeed(base, policy, mix, sweep_point), never from the
 *    executing thread or completion order;
 *  - each job simulates in a private System instance;
 *  - stand-alone IPC_SP reference runs are memoized in the shared
 *    AloneIpcCache, computed exactly once per process with
 *    deterministic per-(config, policy, program) seeds;
 *  - results land in pre-assigned slots of the output vector, so
 *    callers iterate them in submission order.
 *
 * The worker count comes from `--jobs N` / `PROFESS_JOBS`
 * (default: hardware_concurrency); `--jobs 1` runs every job
 * inline in the calling thread — the old serial path.
 */

#ifndef PROFESS_SIM_PARALLEL_RUNNER_HH
#define PROFESS_SIM_PARALLEL_RUNNER_HH

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace profess
{

namespace sim
{

/** One independent experiment job. */
struct RunJob
{
    SystemConfig cfg;
    std::string policy;
    std::vector<std::string> programs;
    /**
     * Workload-mix label: seeds the job (with policy and
     * sweepPoint) and names it in progress output.  Defaults to
     * the '+'-joined program list when empty.
     */
    std::string label;
    std::uint64_t sweepPoint = 0;
    /** Also compute slowdown metrics (stand-alone references). */
    bool slowdowns = false;
    /** Base seed; the job seed is derived from it (see deriveSeed),
     *  unless `seed` pins one explicitly. */
    std::uint64_t baseSeed = 1;
    /** Explicit seed override; 0 = derive (the normal case). */
    std::uint64_t seed = 0;
    double footprintScale = trace::defaultScale;
};

/** Convenience constructors for the common job shapes. */
RunJob multiJob(const SystemConfig &cfg, const std::string &policy,
                const WorkloadSpec &workload,
                std::uint64_t sweep_point = 0);
RunJob singleJob(const SystemConfig &cfg, const std::string &policy,
                 const std::string &program,
                 std::uint64_t sweep_point = 0);

/** The runner. */
class ParallelRunner
{
  public:
    /**
     * @param jobs Worker count; 0 = `jobsFromEnv()`.
     * @param cache Reference-run cache; nullptr = process-wide.
     */
    explicit ParallelRunner(unsigned jobs = 0,
                            AloneIpcCache *cache = nullptr);

    /** @return the worker count in effect. */
    unsigned jobs() const { return jobs_; }

    /** Enable/disable per-job progress lines on stderr. */
    void setProgress(bool on) { progress_ = on; }

    /**
     * Run a batch of jobs and return their metrics in submission
     * order.  MultiMetrics beyond `run` are filled only for jobs
     * with `slowdowns` set.
     */
    std::vector<MultiMetrics> run(const std::vector<RunJob> &batch);

    /** Run one job (serial helper; same seeding as batches). */
    MultiMetrics runOne(const RunJob &job);

    /**
     * Generic escape hatch: invoke `fn(i)` for i in [0, n) on the
     * pool.  `fn` must confine writes to per-index state.
     */
    void forEach(std::size_t n,
                 const std::function<void(std::size_t)> &fn);

    /**
     * Worker count from the environment: PROFESS_JOBS if set (>= 1),
     * else `std::thread::hardware_concurrency()`.
     */
    static unsigned jobsFromEnv();

    /**
     * Worker count from `--jobs N` / `--jobs=N` / `-j N` on the
     * command line, falling back to `jobsFromEnv()`.  Used by every
     * bench binary.
     */
    static unsigned jobsFromArgs(int argc, char **argv);

  private:
    /** Progress-aware wrapper around one job. */
    MultiMetrics timedJob(const RunJob &job, std::size_t index,
                          std::size_t total);

    unsigned jobs_;
    AloneIpcCache *cache_;
    bool progress_;
    std::atomic<std::size_t> done_{0}; ///< progress numerator
};

} // namespace sim

} // namespace profess

#endif // PROFESS_SIM_PARALLEL_RUNNER_HH
