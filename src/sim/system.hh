/**
 * @file
 * Full-system assembly: cores + OS allocator + hybrid controller +
 * migration policy + memory channels, per Table 8.
 *
 * Default configurations scale the paper's Table 8 by 1/100
 * together with the workload footprints and instruction counts
 * (DESIGN.md Secs. 2 and 4b): quad-core = 2 channels x (1.5 MiB M1
 * + 12 MiB M2); single-core = 1 channel x (1 MiB M1 + 8 MiB M2).
 * The M1:M2 capacity ratio is set by slotsPerGroup (9 -> 1:8).
 */

#ifndef PROFESS_SIM_SYSTEM_HH
#define PROFESS_SIM_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/event.hh"
#include "core/profess.hh"
#include "cpu/core_model.hh"
#include "hybrid/hybrid_controller.hh"
#include "mem/memory_system.hh"
#include "os/page_allocator.hh"
#include "policy/policy.hh"
#include "trace/access.hh"

namespace profess
{

namespace sim
{

class RunTelemetry;

/** Everything needed to build a System. */
struct SystemConfig
{
    unsigned numChannels = 2;
    std::uint64_t m1BytesPerChannel = 1536 * KiB;
    std::uint64_t m2BytesPerChannel = 12 * MiB;
    unsigned slotsPerGroup = 9; ///< 1:(slots-1) capacity ratio
    unsigned numRegions = 32;   ///< RSM regions (paper: 128)
    double m2WriteScale = 1.0;  ///< tWR_M2 sensitivity knob
    hybrid::StCache::Params stc{1 * KiB, 8, 8};
    cpu::CoreParams core{};
    bool modelStTraffic = true;
    std::uint64_t msamp = 4096;    ///< RSM Msamp (paper: 128K)
    Cycles statsFoldInterval = 25000; ///< see HybridController
    /** Table 7 hysteresis thresholds (paper: 1/32 and 1/16). */
    double professFactorThreshold = 1.0 + 1.0 / 32.0;
    double professProductThreshold = 1.0 + 1.0 / 16.0;
    unsigned minBenefit = 8;       ///< MDM min_benefit = PoM K
    std::uint64_t allocSeed = 7;
    bool rsmPerRegionStats = false; ///< Table 4 instrumentation

    /** Quad-core two-channel configuration (Table 8, scaled). */
    static SystemConfig quadCore();

    /** Single-core one-channel configuration (Sec. 4.1, scaled). */
    static SystemConfig singleCore();
};

/**
 * Derive min_benefit (= PoM's K) from the timing parameters, as
 * Sec. 4.1 does: ceil(swap latency / (M2 - M1 64-B read latency)).
 */
unsigned deriveMinBenefit(const mem::TimingParams &m1,
                          const mem::TimingParams &m2,
                          std::uint64_t block_bytes);

/** A built system running one multiprogrammed workload. */
class System : public cpu::MemPort
{
  public:
    /**
     * @param cfg Configuration.
     * @param policy_name One of: profess, mdm, pom, mempod, cameo,
     *        silcfm, always, never, rsm-pom, oscoarse.
     * @param sources One trace source per core (ownership taken);
     *        core i runs program i.
     */
    System(const SystemConfig &cfg, const std::string &policy_name,
           std::vector<std::unique_ptr<trace::TraceSource>> sources);

    /**
     * Multi-threaded variant (Sec. 3.1.1: all threads of a program
     * appear to RSM/MDM as one program).
     *
     * @param sources One trace source per core.
     * @param core_program Program id of each core; ids must be
     *        dense starting at 0.  Threads of one program share its
     *        private region, statistics and ownership.
     */
    System(const SystemConfig &cfg, const std::string &policy_name,
           std::vector<std::unique_ptr<trace::TraceSource>> sources,
           std::vector<ProgramId> core_program);

    ~System() override;

    /**
     * Run until every core reaches its instruction quota.
     *
     * @param max_ticks Safety limit (0 = none).
     * @return true if all quotas were reached.
     */
    bool run(Tick max_ticks = 0);

    /** @return number of cores. */
    unsigned numCores() const
    {
        return static_cast<unsigned>(cores_.size());
    }

    /** @return number of distinct programs. */
    unsigned numPrograms() const { return numPrograms_; }

    /** @return program running on a core. */
    ProgramId programOfCore(unsigned core) const
    {
        return coreProgram_[core];
    }

    /** @return per-core model (IPC, counts). */
    const cpu::CoreModel &core(unsigned i) const { return *cores_[i]; }

    /** @return the hybrid controller. */
    const hybrid::HybridController &controller() const
    {
        return *controller_;
    }

    /** @return the hybrid controller (scenario/fault injection). */
    hybrid::HybridController &controller() { return *controller_; }

    /** @return the memory system. */
    const mem::MemorySystem &memory() const { return *memory_; }

    /** @return the memory system (scenario/fault injection). */
    mem::MemorySystem &memory() { return *memory_; }

    /** @return the page allocator. */
    const os::PageAllocator &allocator() const { return *allocator_; }

    /** @return the migration policy. */
    policy::MigrationPolicy &policy() { return *policy_; }

    /** @return ProFess policy if active, else nullptr. */
    core::ProfessPolicy *professPolicy();

    /** @return simulated seconds elapsed. */
    double seconds() const;

    /** @return seconds elapsed since the measurement window began
     *  (all cores past warm-up; equals seconds() if warm-up is 0
     *  or incomplete). */
    double measuredSeconds() const;

    /** @return tick at which measurement began. */
    Tick measureStartTick() const { return measureStart_; }

    /** @return current tick. */
    Tick now() const { return eq_.now(); }

    /** @return the configuration. */
    const SystemConfig &config() const { return cfg_; }

    /** @return the event queue (tests). */
    EventQueue &eventQueue() { return eq_; }

    /**
     * Audit every component's structural invariants: the hybrid
     * controller (ST, STC, policy) and the event queue.  Panics on
     * violation.  run() calls this at teardown in PROFESS_AUDIT
     * builds; tests may call it in any build.
     */
    void auditInvariants() const;

    /**
     * Attach a telemetry bundle: registers every component's
     * statistics (controller under "hybrid", channels under
     * "mem.chN", cores under "coreN", the allocator under
     * "os.alloc", the policy under "policy.<name>"), forwards the
     * decision/chrome trace sinks and hot-path timers, and starts
     * the epoch sampler when run() begins.  The bundle must outlive
     * the system's run.
     */
    void attachTelemetry(RunTelemetry &telemetry);

    // cpu::MemPort
    void issue(ProgramId program, Addr vaddr, bool is_write,
               InlineCallback done) override;

  private:
    SystemConfig cfg_;
    EventQueue eq_;
    std::unique_ptr<mem::MemorySystem> memory_;
    hybrid::HybridLayout layout_;
    std::unique_ptr<os::PageAllocator> allocator_;
    std::unique_ptr<policy::MigrationPolicy> policy_;
    std::unique_ptr<hybrid::HybridController> controller_;
    std::vector<std::unique_ptr<trace::TraceSource>> sources_;
    std::vector<std::unique_ptr<cpu::CoreModel>> cores_;
    std::vector<ProgramId> coreProgram_;
    unsigned numPrograms_ = 0;
    unsigned coresWarm_ = 0;
    Tick measureStart_ = 0;
    RunTelemetry *telemetry_ = nullptr;
};

} // namespace sim

} // namespace profess

#endif // PROFESS_SIM_SYSTEM_HH
