/**
 * @file
 * CSV reporting of experiment results.
 *
 * Every benchmark binary can export machine-readable rows alongside
 * its human-readable tables (set PROFESS_CSV=<dir>); downstream
 * plotting scripts regenerate the paper's figures from these files.
 */

#ifndef PROFESS_SIM_REPORT_HH
#define PROFESS_SIM_REPORT_HH

#include <cstdio>
#include <string>

#include "sim/experiment.hh"

namespace profess
{

namespace sim
{

/** Append-only CSV writer with a fixed header per file. */
class CsvReport
{
  public:
    /**
     * Open (create or append) a CSV file.
     *
     * @param path Output path; empty disables all writes.
     * @param header Comma-separated column names, written only when
     *        the file is created fresh.
     */
    CsvReport(const std::string &path, const std::string &header);
    ~CsvReport();

    CsvReport(const CsvReport &) = delete;
    CsvReport &operator=(const CsvReport &) = delete;

    /** @return true when writing is enabled. */
    bool enabled() const { return fp_ != nullptr; }

    /** Append one formatted row (no trailing newline needed). */
    void row(const char *fmt, ...)
        __attribute__((format(printf, 2, 3)));

    /** Append the standard columns of one RunResult. */
    void runRow(const std::string &experiment,
                const std::string &workload, const RunResult &r);

    /** Append the standard columns of one MultiMetrics. */
    void multiRow(const std::string &experiment,
                  const std::string &workload,
                  const MultiMetrics &m);

    /** Header matching runRow(). */
    static const char *runHeader();

    /** Header matching multiRow(). */
    static const char *multiHeader();

    /**
     * @return directory from PROFESS_CSV, or "" when unset
     *         (reporting disabled).
     */
    static std::string csvDir();

  private:
    std::FILE *fp_ = nullptr;
};

} // namespace sim

} // namespace profess

#endif // PROFESS_SIM_REPORT_HH
