/**
 * @file
 * Deterministic fault-injection and scenario-intervention engine.
 *
 * ScenarioSchedule   - a declarative list of tick-scheduled
 *                      interventions: transient M2 write-latency
 *                      spikes, bank-busy windows, swap-abort windows
 *                      (with bounded retry/backoff in the hybrid
 *                      controller), RSM factor pins, MDM decision
 *                      pins, and quiesce-point audit requests.
 *                      Built programmatically or parsed from a
 *                      config file (one `key=value ...` line per
 *                      intervention; see fromFile()).
 * ScenarioConfig     - process-wide switchboard mirroring
 *                      TelemetryConfig: filled from PROFESS_SCENARIO
 *                      and/or `--scenario FILE`.  Like telemetry it
 *                      stays entirely outside SystemConfig, so
 *                      loading a scenario never changes a config
 *                      fingerprint or a derived seed; the experiment
 *                      layer mixes the schedule fingerprint into its
 *                      reference-run cache keys instead.
 * ScenarioController - one per System run.  attach() arms every
 *                      intervention as an absolute-tick event on the
 *                      system's queue and installs itself as the
 *                      controller's FaultInjector.  All randomness
 *                      (abort draws) comes from a private PCG32
 *                      stream seeded via sim::deriveSeed from the
 *                      job identity, so results are bit-identical at
 *                      any `--jobs N`.  Every injected, retried,
 *                      degraded or deferred event is counted in a
 *                      StatSet and mirrored 1:1 into the decision
 *                      trace (TraceKind::ScenarioEvent), so counters
 *                      and trace totals always reconcile exactly
 *                      (tests/test_scenario.cc).
 *
 * Off mode: when no scenario is loaded nothing is constructed and
 * the only hot-path residue is the controller's predicted-not-taken
 * null check of its FaultInjector pointer at swap completion — the
 * same ≤2% overhead discipline as telemetry (DESIGN.md Sec. 4f).
 */

#ifndef PROFESS_SIM_SCENARIO_HH
#define PROFESS_SIM_SCENARIO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "hybrid/hybrid_controller.hh"

namespace profess
{

namespace telemetry
{
class StatRegistry;
class DecisionTraceSink;
} // namespace telemetry

namespace sim
{

class System;

/** What one scheduled intervention does. */
enum class InterventionKind : unsigned
{
    WriteSpike = 0, ///< scale M2 write recovery for a window
    BankBusy,       ///< hold a module's banks busy for a window
    SwapAbort,      ///< abort completing swaps with a probability
    PinRsm,         ///< pin a program's SF_A/SF_B
    UnpinRsm,       ///< release a pinned program
    PinMdm,         ///< force every MDM decision
    UnpinMdm,       ///< release the MDM decision pin
    QuiesceAudit,   ///< run cross-component audits once quiescent
    NumKinds
};

/** @return short stable name of an intervention kind. */
const char *interventionKindName(InterventionKind k);

/** One tick-scheduled intervention (fields used depend on kind). */
struct Intervention
{
    Tick at = 0;                    ///< absolute firing tick
    InterventionKind kind = InterventionKind::QuiesceAudit;
    Tick duration = 0;              ///< window length (0 = rest of run)
    double scale = 1.0;             ///< WriteSpike tWR multiplier
    double probability = 0.0;       ///< SwapAbort per-swap chance
    int channel = -1;               ///< target channel (-1 = all)
    int program = -1;               ///< Pin/UnpinRsm (-1 = all)
    double sfA = 1.0, sfB = 1.0;    ///< PinRsm factors
    bool decisionSwap = true;       ///< PinMdm: force Swap vs NoSwap
    unsigned maxRetries = 3;        ///< SwapAbort retry bound
    Cycles backoff = 256;           ///< SwapAbort base retry backoff
};

/** Declarative intervention schedule (builder API + file parser). */
class ScenarioSchedule
{
  public:
    /** Append one fully specified intervention. */
    ScenarioSchedule &add(const Intervention &iv);

    /** M2 write-recovery spike of `scale`x for `duration` ticks. */
    ScenarioSchedule &writeSpike(Tick at, Tick duration, double scale,
                                 int channel = -1);

    /** Hold every M2 bank of the target channel(s) busy. */
    ScenarioSchedule &bankBusy(Tick at, Tick duration,
                               int channel = -1);

    /** Abort completing swaps with `probability` inside the window;
     *  aborted swaps retry up to `max_retries` times with
     *  exponential backoff from `backoff` ticks. */
    ScenarioSchedule &swapAbortWindow(Tick at, Tick duration,
                                      double probability,
                                      unsigned max_retries = 3,
                                      Cycles backoff = 256);

    /** Pin a program's slowdown factors (-1 = every program). */
    ScenarioSchedule &pinRsmFactors(Tick at, int program, double sf_a,
                                    double sf_b);

    /** Release pinned factors (-1 = every program). */
    ScenarioSchedule &unpinRsmFactors(Tick at, int program = -1);

    /** Force every MDM decision to Swap (true) or NoSwap. */
    ScenarioSchedule &pinMdmDecision(Tick at, bool swap);

    /** Release the MDM decision pin. */
    ScenarioSchedule &unpinMdmDecision(Tick at);

    /** Request a cross-component audit at the next quiesce point at
     *  or after `at`. */
    ScenarioSchedule &quiesceAudit(Tick at);

    /** @return true when no interventions are scheduled. */
    bool empty() const { return ivs_.empty(); }

    /** @return the interventions, in insertion order. */
    const std::vector<Intervention> &interventions() const
    {
        return ivs_;
    }

    /**
     * Order-sensitive hash of every intervention field; mixed into
     * reference-run cache keys so runs under different schedules can
     * never alias (0 only for the empty schedule).
     */
    std::uint64_t fingerprint() const;

    /**
     * Parse a schedule file: one intervention per line as
     * whitespace-separated `key=value` tokens ('#' starts a
     * comment).  Keys: at, kind (write_spike, bank_busy, swap_abort,
     * pin_rsm, unpin_rsm, pin_mdm, unpin_mdm, quiesce_audit),
     * duration, scale, probability, channel, program, sf_a, sf_b,
     * decision (swap|noswap), max_retries, backoff.  Fatal on any
     * malformed line or unreadable file.
     */
    static ScenarioSchedule fromFile(const std::string &path);

  private:
    std::vector<Intervention> ivs_;
};

/** Process-wide scenario switchboard (see file comment). */
struct ScenarioConfig
{
    std::string file;          ///< schedule path ("" = programmatic)
    ScenarioSchedule schedule; ///< in force when loaded()

    /** @return true when a schedule is in force. */
    bool loaded() const { return active; }

    /** Read PROFESS_SCENARIO and parse the schedule it names. */
    void initFromEnv();

    /**
     * Read the environment, then strip and apply `--scenario FILE`
     * (also `--scenario=FILE`) from argv, compacting it in place.
     */
    void initFromArgs(int &argc, char **argv);

    /** Install a schedule directly (tests). */
    void
    setSchedule(ScenarioSchedule s)
    {
        schedule = std::move(s);
        file.clear();
        active = true;
    }

    /** Drop any loaded schedule (tests). */
    void
    clear()
    {
        schedule = ScenarioSchedule{};
        file.clear();
        active = false;
    }

    /** @return schedule fingerprint, 0 when nothing is loaded. */
    std::uint64_t
    fingerprint() const
    {
        return active ? schedule.fingerprint() : 0;
    }

    /** The process-wide instance used by the experiment layer. */
    static ScenarioConfig &global();

    bool active = false;
};

/**
 * The intervention engine of one run (see file comment).  Construct
 * with the schedule and a deriveSeed()-style seed, attach() to the
 * System before run(), and keep it alive for the whole run.
 */
class ScenarioController : public hybrid::FaultInjector
{
  public:
    /** Trace `detail` codes of scenario events (stable). */
    enum class EventCode : unsigned
    {
        WriteSpikeBegin = 0,
        WriteSpikeEnd,
        BankBusy,
        AbortWindowBegin,
        AbortWindowEnd,
        RsmPin,
        RsmUnpin,
        MdmPin,
        MdmUnpin,
        PinUnsupported, ///< pin on a policy without that mechanism
        QuiesceAuditRun,
        QuiesceDeferred,
        QuiesceGiveup,
        SwapAbortInjected,
        SwapRetry,
        SwapDegraded,
        BankBusyRearm, ///< periodic re-bump within a busy window
        NumCodes
    };

    /**
     * @param schedule Interventions to arm (copied).
     * @param seed Derived job seed (sim::deriveSeed); the abort
     *        draws come from a private stream of this seed.
     */
    ScenarioController(const ScenarioSchedule &schedule,
                       std::uint64_t seed);

    /**
     * Wire into a freshly built system: install the fault-injection
     * hook on the hybrid controller and schedule every intervention
     * at its absolute tick.  Call once, before System::run().  The
     * controller must outlive the run.
     */
    void attach(System &sys);

    // hybrid::FaultInjector
    bool swapAborts(std::uint64_t group, Tick now) override;
    unsigned swapMaxRetries() const override
    {
        return abortMaxRetries_;
    }
    Cycles swapRetryBackoff() const override { return abortBackoff_; }
    void noteSwapRetry(std::uint64_t group, Tick now) override;
    void noteSwapDegraded(std::uint64_t group, Tick now) override;

    /** Per-code event counters (never reset; warm-up immune). */
    const StatSet &stats() const { return stats_; }

    /** @return one event counter by name ("swap_abort_injected"). */
    std::uint64_t
    counter(const std::string &name) const
    {
        return stats_.counter(name);
    }

    /**
     * @return total scenario events across every counter; equals
     *         the sink's kindTotal(TraceKind::ScenarioEvent) exactly
     *         whenever a sink was attached before the run.
     */
    std::uint64_t eventTotal() const;

    /** Mirror every event into `sink` (null = off). */
    void
    setTraceSink(telemetry::DecisionTraceSink *sink)
    {
        trace_ = sink;
    }

    /** Register the event counters under `prefix` ("scenario"). */
    void registerTelemetry(telemetry::StatRegistry &registry,
                           const std::string &prefix);

    /** @return counter name of an event code. */
    static const char *eventName(EventCode c);

  private:
    /**
     * Bank-busy windows are enforced by bumping bank ready times,
     * but swaps overwrite those times to the swap's end — a single
     * bump therefore under-models a sustained window.  Re-bump
     * every this many ticks until the window closes (event-queue
     * local, so jobs 1-vs-N determinism is preserved).
     */
    static constexpr Cycles bankBusyRearmPeriod = 256;

    void fire(const Intervention &iv);
    void rearmBankBusy(int channel, Tick until);
    void runQuiesceAudit(const Intervention &iv, unsigned deferrals);
    void note(EventCode code, std::uint64_t group, Tick now,
              double a = 0.0, double b = 0.0);

    ScenarioSchedule schedule_;
    Rng rng_;
    System *sys_ = nullptr;
    EventQueue *eq_ = nullptr;

    // Active swap-abort window (the most recent one wins).
    Tick abortWindowEnd_ = 0;
    double abortProbability_ = 0.0;
    unsigned abortMaxRetries_ = 3;
    Cycles abortBackoff_ = 256;

    StatSet stats_;
    telemetry::DecisionTraceSink *trace_ = nullptr;
};

} // namespace sim

} // namespace profess

#endif // PROFESS_SIM_SCENARIO_HH
