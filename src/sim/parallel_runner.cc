#include "sim/parallel_runner.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include <unistd.h>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace profess
{

namespace sim
{

namespace
{

/** Serializes progress lines from concurrent workers. */
std::mutex progress_mu;

bool
progressDefault()
{
    const char *p = std::getenv("PROFESS_PROGRESS");
    if (p != nullptr && *p != '\0')
        return std::strcmp(p, "0") != 0;
    return isatty(STDERR_FILENO) != 0;
}

} // anonymous namespace

RunJob
multiJob(const SystemConfig &cfg, const std::string &policy,
         const WorkloadSpec &workload, std::uint64_t sweep_point)
{
    RunJob j;
    j.cfg = cfg;
    j.policy = policy;
    j.programs.assign(workload.programs.begin(),
                      workload.programs.end());
    j.label = workload.name;
    j.sweepPoint = sweep_point;
    j.slowdowns = true;
    return j;
}

RunJob
singleJob(const SystemConfig &cfg, const std::string &policy,
          const std::string &program, std::uint64_t sweep_point)
{
    RunJob j;
    j.cfg = cfg;
    j.policy = policy;
    j.programs = {program};
    j.label = program;
    j.sweepPoint = sweep_point;
    return j;
}

ParallelRunner::ParallelRunner(unsigned jobs, AloneIpcCache *cache)
    : jobs_(jobs == 0 ? jobsFromEnv() : jobs),
      cache_(cache ? cache : &AloneIpcCache::global()),
      progress_(progressDefault())
{
}

unsigned
ParallelRunner::jobsFromEnv()
{
    const char *s = std::getenv("PROFESS_JOBS");
    if (s != nullptr && *s != '\0') {
        char *end = nullptr;
        unsigned long v = std::strtoul(s, &end, 0);
        fatal_if(end == s || *end != '\0' || v == 0,
                 "PROFESS_JOBS='%s' is not a positive integer", s);
        return static_cast<unsigned>(v);
    }
    return ThreadPool::defaultWorkers();
}

unsigned
ParallelRunner::jobsFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        const char *val = nullptr;
        if (std::strncmp(a, "--jobs=", 7) == 0) {
            val = a + 7;
        } else if (std::strcmp(a, "--jobs") == 0 ||
                   std::strcmp(a, "-j") == 0) {
            fatal_if(i + 1 >= argc, "%s requires a value", a);
            val = argv[i + 1];
        }
        if (val != nullptr) {
            char *end = nullptr;
            unsigned long v = std::strtoul(val, &end, 0);
            fatal_if(end == val || *end != '\0' || v == 0,
                     "--jobs '%s' is not a positive integer", val);
            return static_cast<unsigned>(v);
        }
    }
    return jobsFromEnv();
}

MultiMetrics
ParallelRunner::runOne(const RunJob &job)
{
    ExperimentRunner runner(job.cfg, job.footprintScale, cache_);
    std::string label =
        !job.label.empty() ? job.label : [&job]() {
            std::string l;
            for (const auto &p : job.programs)
                l += (l.empty() ? "" : "+") + p;
            return l;
        }();
    std::uint64_t seed =
        job.seed != 0 ? job.seed
                      : deriveSeed(job.baseSeed, job.policy, label,
                                   job.sweepPoint);
    // Telemetry label: distinguish sweep points sharing a mix.
    std::string tlabel = label;
    if (job.sweepPoint != 0)
        tlabel += "_s" + std::to_string(job.sweepPoint);
    MultiMetrics m;
    m.run = runner.run(job.policy, job.programs, seed, tlabel);
    if (job.slowdowns) {
        // Stand-alone references use their own fixed per-(config,
        // policy, program) seeds so every mix and sweep point that
        // shares a config shares the cached run.
        for (const auto &p : job.programs)
            m.aloneIpc.push_back(runner.aloneIpc(job.policy, p));
        m.slowdown = slowdowns(m.aloneIpc, m.run.ipc);
        m.weightedSpeedup = weightedSpeedup(m.slowdown);
        m.maxSlowdown = unfairness(m.slowdown);
        m.efficiency =
            energyEfficiency(m.run.servedTotal, m.run.joules);
    }
    return m;
}

MultiMetrics
ParallelRunner::timedJob(const RunJob &job, std::size_t index,
                         std::size_t total)
{
    auto t0 = std::chrono::steady_clock::now();
    MultiMetrics m = runOne(job);
    if (progress_) {
        double secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        std::size_t k = ++done_;
        std::lock_guard<std::mutex> lk(progress_mu);
        std::fprintf(stderr,
                     "[profess %zu/%zu] %s/%s%s done in %.2fs\n", k,
                     total,
                     job.label.empty() ? "mix" : job.label.c_str(),
                     job.policy.c_str(),
                     job.sweepPoint != 0 ? "*" : "", secs);
        (void)index;
    }
    return m;
}

std::vector<MultiMetrics>
ParallelRunner::run(const std::vector<RunJob> &batch)
{
    std::vector<MultiMetrics> results(batch.size());
    done_.store(0);
    if (jobs_ <= 1) {
        // Serial path: everything inline, in submission order.
        for (std::size_t i = 0; i < batch.size(); ++i)
            results[i] = timedJob(batch[i], i, batch.size());
        return results;
    }
    ThreadPool pool(jobs_);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        pool.submit([this, &batch, &results, i]() {
            results[i] = timedJob(batch[i], i, batch.size());
        });
    }
    pool.wait();
    return results;
}

void
ParallelRunner::forEach(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (jobs_ <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    ThreadPool pool(jobs_);
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&fn, i]() { fn(i); });
    pool.wait();
}

} // namespace sim

} // namespace profess
