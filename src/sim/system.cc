#include "sim/system.hh"

#include <cmath>

#include "common/invariant.hh"

#include "core/mdm_policy.hh"
#include "core/rsm_guided.hh"
#include "policy/cameo.hh"
#include "policy/mempod.hh"
#include "policy/os_coarse.hh"
#include "policy/pom.hh"
#include "policy/silcfm.hh"
#include "policy/static_policies.hh"
#include "sim/run_telemetry.hh"

namespace profess
{

namespace sim
{

SystemConfig
SystemConfig::quadCore()
{
    // Paper (Table 8) scaled by 1/100 together with footprints and
    // instruction counts: 256 MB M1 -> ~2.9 MB of M1 data blocks
    // (1472 swap groups), 2 GB M2 -> ~23 MB, 64 KB STC -> 1 KB.
    SystemConfig c;
    c.numChannels = 2;
    c.m1BytesPerChannel = 1536 * KiB;
    c.m2BytesPerChannel = 12 * MiB;
    c.stc = hybrid::StCache::Params{2 * KiB, 8, 8};
    return c;
}

SystemConfig
SystemConfig::singleCore()
{
    // Paper: 64 MB M1 / 512 MB M2 / 32 KB STC, scaled by 1/100.
    // 1 MiB M1 yields 448 groups -> 7.9 MB visible, which keeps the
    // largest scaled footprint (milc, 5.5 MB) resident, mirroring
    // the paper's 547 MB milc in 576 MB visible.
    SystemConfig c;
    c.numChannels = 1;
    c.m1BytesPerChannel = 1 * MiB;
    c.m2BytesPerChannel = 8 * MiB;
    c.stc = hybrid::StCache::Params{1 * KiB, 8, 8};
    return c;
}

unsigned
deriveMinBenefit(const mem::TimingParams &m1,
                 const mem::TimingParams &m2,
                 std::uint64_t block_bytes)
{
    Cycles swap = mem::swapLatencyCycles(m1, m2, block_bytes);
    Cycles read_diff = m2.tRCD - m1.tRCD;
    unsigned k = static_cast<unsigned>(ceilDiv(swap, read_diff));
    // Sec. 4.1: "like the authors of PoM, we choose a slightly
    // larger value".
    return k + 1;
}

namespace
{

std::unique_ptr<policy::MigrationPolicy>
makePolicy(const std::string &name, const SystemConfig &cfg,
           const hybrid::HybridLayout &layout,
           const os::PageAllocator &alloc, unsigned num_programs)
{
    core::Mdm::Params mdm;
    mdm.numPrograms = num_programs;
    mdm.minBenefit = cfg.minBenefit;

    core::Rsm::Params rsm;
    rsm.numPrograms = num_programs;
    rsm.numRegions = cfg.numRegions;
    rsm.sampleRequests = cfg.msamp;
    rsm.perRegionStats = cfg.rsmPerRegionStats;

    if (name == "profess") {
        core::ProfessPolicy::Params p;
        p.mdm = mdm;
        p.rsm = rsm;
        p.factorThreshold = cfg.professFactorThreshold;
        p.productThreshold = cfg.professProductThreshold;
        return std::make_unique<core::ProfessPolicy>(layout, alloc,
                                                     p);
    }
    if (name == "mdm")
        return std::make_unique<core::MdmPolicy>(layout, alloc, mdm);
    if (name == "pom") {
        policy::PomPolicy::Params p;
        p.k = cfg.minBenefit;
        return std::make_unique<policy::PomPolicy>(layout.numGroups,
                                                   p);
    }
    if (name == "rsm-pom") {
        policy::PomPolicy::Params p;
        p.k = cfg.minBenefit;
        auto inner = std::make_unique<policy::PomPolicy>(
            layout.numGroups, p);
        return std::make_unique<core::RsmGuidedPolicy>(
            std::move(inner), rsm);
    }
    if (name == "mempod") {
        return std::make_unique<policy::MemPodPolicy>(
            cfg.numChannels, cfg.numChannels);
    }
    if (name == "cameo")
        return std::make_unique<policy::CameoPolicy>(1);
    if (name == "silcfm") {
        return std::make_unique<policy::SilcFmPolicy>(
            layout.numGroups);
    }
    if (name == "never")
        return std::make_unique<policy::NeverPolicy>();
    if (name == "always")
        return std::make_unique<policy::AlwaysPolicy>();
    if (name == "oscoarse")
        return std::make_unique<policy::OsCoarsePolicy>(layout);
    fatal("unknown policy '%s'", name.c_str());
}

} // anonymous namespace

System::System(
    const SystemConfig &cfg, const std::string &policy_name,
    std::vector<std::unique_ptr<trace::TraceSource>> sources)
    : System(cfg, policy_name, std::move(sources),
             std::vector<ProgramId>{})
{
}

System::System(
    const SystemConfig &cfg, const std::string &policy_name,
    std::vector<std::unique_ptr<trace::TraceSource>> sources,
    std::vector<ProgramId> core_program)
    : cfg_(cfg), sources_(std::move(sources)),
      coreProgram_(std::move(core_program))
{
    fatal_if(sources_.empty(), "system needs at least one program");
    if (coreProgram_.empty()) {
        // Default single-threaded mapping: core i runs program i.
        for (std::size_t i = 0; i < sources_.size(); ++i)
            coreProgram_.push_back(static_cast<ProgramId>(i));
    }
    fatal_if(coreProgram_.size() != sources_.size(),
             "one program id per core required");
    ProgramId max_prog = 0;
    for (ProgramId p : coreProgram_) {
        fatal_if(p < 0, "negative program id");
        max_prog = std::max(max_prog, p);
    }
    numPrograms_ = static_cast<unsigned>(max_prog) + 1;
    unsigned num_programs = numPrograms_;

    mem::MemorySystemConfig mc;
    mc.numChannels = cfg.numChannels;
    mc.m1BytesPerChannel = cfg.m1BytesPerChannel;
    mc.m2BytesPerChannel = cfg.m2BytesPerChannel;
    mc.m1 = mem::m1Timing();
    mc.m2 = mem::m2Timing(cfg.m2WriteScale);
    memory_ = std::make_unique<mem::MemorySystem>(eq_, mc);

    layout_ = hybrid::HybridLayout::build(
        cfg.m1BytesPerChannel, cfg.m2BytesPerChannel,
        cfg.numChannels, cfg.numRegions, cfg.slotsPerGroup);

    allocator_ = std::make_unique<os::PageAllocator>(
        layout_.numGroups, cfg.slotsPerGroup, cfg.numRegions,
        num_programs, cfg.allocSeed);

    policy_ = makePolicy(policy_name, cfg, layout_, *allocator_,
                         num_programs);

    hybrid::HybridController::Params hp;
    hp.stc = cfg.stc;
    hp.modelStTraffic = cfg.modelStTraffic;
    hp.numPrograms = num_programs;
    hp.statsFoldInterval = cfg.statsFoldInterval;
    controller_ = std::make_unique<hybrid::HybridController>(
        eq_, *memory_, layout_, hp, *policy_, *allocator_);

    for (std::size_t i = 0; i < sources_.size(); ++i) {
        cores_.push_back(std::make_unique<cpu::CoreModel>(
            eq_, cfg.core, *sources_[i], *this, coreProgram_[i]));
    }
}

System::~System() = default;

void
System::issue(ProgramId program, Addr vaddr, bool is_write,
              InlineCallback done)
{
    std::uint64_t vpage = vaddr / os::pageBytes;
    std::uint64_t frame = allocator_->translate(program, vpage);
    Addr original =
        frame * os::pageBytes + vaddr % os::pageBytes;
    controller_->access(program, original, is_write,
                        std::move(done));
}

void
System::attachTelemetry(RunTelemetry &telemetry)
{
    telemetry_ = &telemetry;
    telemetry::StatRegistry &reg = telemetry.registry();

    // The controller also registers the STC, the per-program service
    // counters and the policy (under "policy.<name>").
    controller_->registerTelemetry(reg, "hybrid");
    telemetry::LatencyAttribution *attr =
        telemetry.attribution(numPrograms_);
    for (unsigned c = 0; c < memory_->numChannels(); ++c) {
        mem::Channel &ch = memory_->channel(c);
        ch.registerTelemetry(reg, "mem.ch" + std::to_string(c));
        ch.setSchedulerTimer(telemetry.schedulerTimer());
        ch.setLatencyAttribution(attr);
    }
    allocator_->registerTelemetry(reg, "os.alloc");
    for (unsigned i = 0; i < cores_.size(); ++i) {
        cores_[i]->registerTelemetry(reg,
                                     "core" + std::to_string(i));
    }

    policy_->setTraceSink(telemetry.decisionSink());
    controller_->setChromeTrace(telemetry.chromeSink());
    controller_->setAccessTimer(telemetry.accessTimer());
    controller_->setLatencyAttribution(attr);

    // Fairness gauges ride on RSM's slowdown factors, so they exist
    // exactly when the policy carries an RSM (profess and its
    // variants reachable through ProfessPolicy).
    if (core::ProfessPolicy *pp = professPolicy()) {
        registerFairnessGauges(reg, pp->rsm(), numPrograms_);
    } else if (auto *rg = dynamic_cast<core::RsmGuidedPolicy *>(
                   policy_.get())) {
        registerFairnessGauges(reg, rg->rsm(), numPrograms_);
    }
}

void
System::auditInvariants() const
{
    controller_->auditInvariants();
    eq_.auditInvariants();
}

core::ProfessPolicy *
System::professPolicy()
{
    return dynamic_cast<core::ProfessPolicy *>(policy_.get());
}

double
System::seconds() const
{
    return static_cast<double>(eq_.now()) /
           (mem::mcCyclesPerNs * 1e9);
}

double
System::measuredSeconds() const
{
    return static_cast<double>(eq_.now() - measureStart_) /
           (mem::mcCyclesPerNs * 1e9);
}

bool
System::run(Tick max_ticks)
{
    // When the last core finishes warm-up, zero the memory-side
    // statistics so every reported metric covers the same
    // measurement window as the IPCs.
    for (auto &c : cores_) {
        c->setOnWarmup([this]() {
            if (++coresWarm_ == cores_.size()) {
                controller_->resetStats();
                for (unsigned i = 0; i < memory_->numChannels(); ++i)
                    memory_->channel(i).resetStats();
                measureStart_ = eq_.now();
            }
        });
        c->start();
    }
    controller_->startPeriodic();
    if (telemetry_ != nullptr)
        telemetry_->startSampler(eq_);

    auto all_done = [this]() {
        for (const auto &c : cores_) {
            if (!c->quotaReached())
                return false;
        }
        return true;
    };
    std::uint64_t events = 0;
    const bool trace_progress =
        std::getenv("PROFESS_TRACE") != nullptr;
    auto stop = [&]() {
        if (trace_progress && ++events % 1000000 == 0) {
            std::fprintf(stderr,
                         "[trace] events=%lluM tick=%llu retired0=%llu "
                         "served=%llu swaps=%llu rq=%zu wq=%zu\n",
                         (unsigned long long)(events / 1000000),
                         (unsigned long long)eq_.now(),
                         (unsigned long long)cores_[0]->retired(),
                         (unsigned long long)controller_->servedTotal(),
                         (unsigned long long)controller_->swapCount(),
                         memory_->channel(0).readQueueSize(),
                         memory_->channel(0).writeQueueSize());
        }
        if (all_done())
            return true;
        return max_ticks != 0 && eq_.now() >= max_ticks;
    };
    eq_.run(stop);
    controller_->stopPeriodic();
    if (telemetry_ != nullptr)
        telemetry_->stopSampler();
    for (auto &c : cores_)
        c->halt();

    // Full structural audit at teardown: cheap relative to the run
    // and catches corruption that slipped past the per-event hooks.
    PROFESS_AUDIT_ONLY(auditInvariants());

    bool ok = all_done();
    if (!ok) {
        warn("simulation stopped before all quotas were reached "
             "(tick %llu)",
             static_cast<unsigned long long>(eq_.now()));
    }
    return ok;
}

} // namespace sim

} // namespace profess
