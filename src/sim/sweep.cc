#include "sim/sweep.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <utility>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/telemetry.hh"
#include "sim/run_telemetry.hh"
#include "sim/scenario.hh"
#include "sim/workloads.hh"
#include "trace/spec_profiles.hh"

namespace profess
{

namespace sim
{

namespace
{

//
// Spec parsing
//

std::uint64_t
parseU64(const std::string &path, int lineno, const std::string &key,
         const std::string &val)
{
    char *end = nullptr;
    std::uint64_t v = std::strtoull(val.c_str(), &end, 0);
    fatal_if(end == val.c_str() || *end != '\0',
             "%s:%d: bad integer '%s' for key '%s'", path.c_str(),
             lineno, val.c_str(), key.c_str());
    return v;
}

double
parseDouble(const std::string &path, int lineno,
            const std::string &key, const std::string &val)
{
    char *end = nullptr;
    double v = std::strtod(val.c_str(), &end);
    fatal_if(end == val.c_str() || *end != '\0',
             "%s:%d: bad number '%s' for key '%s'", path.c_str(),
             lineno, val.c_str(), key.c_str());
    return v;
}

std::vector<std::string>
splitList(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        std::size_t c = s.find(sep, pos);
        if (c == std::string::npos)
            c = s.size();
        if (c > pos)
            out.push_back(s.substr(pos, c - pos));
        pos = c + 1;
    }
    return out;
}

/** One sweepable SystemConfig knob. */
struct Knob
{
    const char *name;
    bool integral;
};

constexpr Knob sweepKnobs[] = {
    {"instr", true},          {"warmup", true},
    {"msamp", true},          {"min_benefit", true},
    {"num_regions", true},    {"slots_per_group", true},
    {"num_channels", true},   {"stats_fold_interval", true},
    {"stc_kb", true},         {"alloc_seed", true},
    {"m2_write_scale", false}, {"factor_threshold", false},
    {"product_threshold", false},
};

std::uint64_t
doubleBits(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

} // anonymous namespace

bool
isSweepConfigKey(const std::string &key)
{
    for (const Knob &k : sweepKnobs) {
        if (key == k.name)
            return true;
    }
    return false;
}

void
applySweepConfigKey(SystemConfig &cfg, const std::string &key,
                    double value)
{
    auto asU64 = [&]() {
        fatal_if(value < 0.0 || value != std::floor(value) ||
                     !std::isfinite(value),
                 "sweep: config key '%s' needs a non-negative "
                 "integer, got %.17g",
                 key.c_str(), value);
        return static_cast<std::uint64_t>(value);
    };
    if (key == "instr") {
        cfg.core.instrQuota = asU64();
    } else if (key == "warmup") {
        cfg.core.warmupInstr = asU64();
    } else if (key == "msamp") {
        cfg.msamp = asU64();
    } else if (key == "min_benefit") {
        cfg.minBenefit = static_cast<unsigned>(asU64());
    } else if (key == "num_regions") {
        cfg.numRegions = static_cast<unsigned>(asU64());
    } else if (key == "slots_per_group") {
        cfg.slotsPerGroup = static_cast<unsigned>(asU64());
    } else if (key == "num_channels") {
        cfg.numChannels = static_cast<unsigned>(asU64());
    } else if (key == "stats_fold_interval") {
        cfg.statsFoldInterval = asU64();
    } else if (key == "stc_kb") {
        cfg.stc.capacityBytes = asU64() * KiB;
    } else if (key == "alloc_seed") {
        cfg.allocSeed = asU64();
    } else if (key == "m2_write_scale") {
        cfg.m2WriteScale = value;
    } else if (key == "factor_threshold") {
        cfg.professFactorThreshold = value;
    } else if (key == "product_threshold") {
        cfg.professProductThreshold = value;
    } else {
        fatal("sweep: unknown config key '%s'", key.c_str());
    }
}

std::vector<std::string>
SweepSpec::mixPrograms(const std::string &mix)
{
    if (const WorkloadSpec *w = findWorkload(mix)) {
        return std::vector<std::string>(w->programs.begin(),
                                        w->programs.end());
    }
    std::vector<std::string> progs = splitList(mix, '+');
    fatal_if(progs.empty(), "sweep: empty workload mix");
    for (const std::string &p : progs) {
        fatal_if(trace::findProfile(p) == nullptr,
                 "sweep: '%s' in mix '%s' is neither a Table 10 "
                 "workload nor a Table 9 program",
                 p.c_str(), mix.c_str());
    }
    return progs;
}

SweepSpec
SweepSpec::fromFile(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in.is_open(), "cannot open sweep spec '%s'",
             path.c_str());
    SweepSpec s;
    s.seeds.clear();
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::size_t pos = 0;
        while (pos < line.size()) {
            while (pos < line.size() &&
                   std::isspace(
                       static_cast<unsigned char>(line[pos])))
                ++pos;
            std::size_t start = pos;
            while (pos < line.size() &&
                   !std::isspace(
                       static_cast<unsigned char>(line[pos])))
                ++pos;
            if (start == pos)
                continue;
            std::string tok = line.substr(start, pos - start);
            std::size_t eq = tok.find('=');
            fatal_if(eq == std::string::npos || eq == 0 ||
                         eq + 1 >= tok.size(),
                     "%s:%d: expected key=value, got '%s'",
                     path.c_str(), lineno, tok.c_str());
            std::string key = tok.substr(0, eq);
            std::string val = tok.substr(eq + 1);
            if (key == "preset") {
                fatal_if(val != "quad" && val != "single",
                         "%s:%d: preset must be quad or single, "
                         "got '%s'",
                         path.c_str(), lineno, val.c_str());
                s.preset = val;
            } else if (key == "policy") {
                for (const std::string &p : splitList(val, ','))
                    s.policies.push_back(p);
            } else if (key == "workload") {
                for (const std::string &m : splitList(val, ','))
                    s.mixes.push_back(m);
            } else if (key == "seed") {
                for (const std::string &v : splitList(val, ','))
                    s.seeds.push_back(
                        parseU64(path, lineno, key, v));
            } else if (key == "slowdowns") {
                s.slowdowns =
                    parseU64(path, lineno, key, val) != 0;
            } else if (key == "sweep") {
                fatal_if(!s.sweepKey.empty(),
                         "%s:%d: a sweep file sweeps at most one "
                         "axis (already sweeping '%s')",
                         path.c_str(), lineno, s.sweepKey.c_str());
                std::size_t colon = val.find(':');
                fatal_if(colon == std::string::npos || colon == 0 ||
                             colon + 1 >= val.size(),
                         "%s:%d: sweep needs <key>:<v1,v2,...>, "
                         "got '%s'",
                         path.c_str(), lineno, val.c_str());
                s.sweepKey = val.substr(0, colon);
                fatal_if(!isSweepConfigKey(s.sweepKey),
                         "%s:%d: '%s' is not a sweepable config "
                         "key",
                         path.c_str(), lineno, s.sweepKey.c_str());
                for (const std::string &v :
                     splitList(val.substr(colon + 1), ','))
                    s.sweepValues.push_back(
                        parseDouble(path, lineno, key, v));
                fatal_if(s.sweepValues.empty(),
                         "%s:%d: sweep axis '%s' has no values",
                         path.c_str(), lineno, s.sweepKey.c_str());
            } else if (isSweepConfigKey(key)) {
                s.overrides.push_back(ConfigOverride{
                    key, parseDouble(path, lineno, key, val)});
            } else {
                fatal("%s:%d: unknown key '%s'", path.c_str(),
                      lineno, key.c_str());
            }
        }
    }
    fatal_if(s.policies.empty(), "%s: no policy= given",
             path.c_str());
    fatal_if(s.mixes.empty(), "%s: no workload= given",
             path.c_str());
    if (s.seeds.empty())
        s.seeds.push_back(1);
    for (const ConfigOverride &o : s.overrides) {
        fatal_if(o.key == s.sweepKey,
                 "%s: '%s' is both fixed and swept", path.c_str(),
                 o.key.c_str());
    }
    // Validate mixes and the full config grid up front: a bad name
    // or knob value should fail at parse time, not runs later.
    for (const std::string &m : s.mixes)
        mixPrograms(m);
    for (std::size_t p = 0; p < s.numSweepPoints(); ++p)
        s.configAt(p);
    return s;
}

std::uint64_t
SweepSpec::fingerprint() const
{
    std::uint64_t h = mix64(0x53eeb001ull);
    h = hashCombine(h, preset);
    h = hashCombine(h, policies.size());
    for (const std::string &p : policies)
        h = hashCombine(h, p);
    h = hashCombine(h, mixes.size());
    for (const std::string &m : mixes)
        h = hashCombine(h, m);
    h = hashCombine(h, seeds.size());
    for (std::uint64_t s : seeds)
        h = hashCombine(h, s);
    h = hashCombine(h, static_cast<std::uint64_t>(slowdowns));
    h = hashCombine(h, overrides.size());
    for (const ConfigOverride &o : overrides) {
        h = hashCombine(h, o.key);
        h = hashCombine(h, doubleBits(o.value));
    }
    h = hashCombine(h, sweepKey);
    h = hashCombine(h, sweepValues.size());
    for (double v : sweepValues)
        h = hashCombine(h, doubleBits(v));
    return h;
}

SystemConfig
SweepSpec::configAt(std::size_t point) const
{
    SystemConfig cfg = preset == "single"
                           ? SystemConfig::singleCore()
                           : SystemConfig::quadCore();
    for (const ConfigOverride &o : overrides)
        applySweepConfigKey(cfg, o.key, o.value);
    if (!sweepKey.empty())
        applySweepConfigKey(cfg, sweepKey, sweepValues.at(point));
    return cfg;
}

std::size_t
SweepSpec::numRuns() const
{
    return numSweepPoints() * mixes.size() * policies.size() *
           seeds.size();
}

std::vector<RunJob>
SweepSpec::expand() const
{
    std::vector<RunJob> out;
    out.reserve(numRuns());
    const bool swept = !sweepKey.empty();
    for (std::size_t p = 0; p < numSweepPoints(); ++p) {
        SystemConfig cfg = configAt(p);
        for (const std::string &mix : mixes) {
            std::vector<std::string> progs = mixPrograms(mix);
            for (const std::string &pol : policies) {
                for (std::uint64_t seed : seeds) {
                    RunJob j;
                    j.cfg = cfg;
                    j.policy = pol;
                    j.programs = progs;
                    j.label = mix;
                    // Several seeds of one mix need distinct
                    // labels: the label seeds the run and names
                    // its telemetry shard.
                    if (seeds.size() > 1)
                        j.label += "_r" + std::to_string(seed);
                    // 1-based so every swept point gets an "_s<p>"
                    // telemetry suffix (sweepPoint 0 = unswept).
                    j.sweepPoint = swept ? p + 1 : 0;
                    j.slowdowns = slowdowns;
                    j.baseSeed = seed;
                    out.push_back(std::move(j));
                }
            }
        }
    }
    return out;
}

//
// Journal line rendering and parsing
//

namespace
{

/** Minimal JSON scalar: string, raw number token, or bool. */
struct JsonValue
{
    enum Kind { Str, Num, Bool } kind = Num;
    std::string text; ///< decoded string / raw number token
    bool b = false;
};

bool
skipWs(const std::string &s, std::size_t &i)
{
    while (i < s.size() &&
           std::isspace(static_cast<unsigned char>(s[i])))
        ++i;
    return i < s.size();
}

bool
parseJsonString(const std::string &s, std::size_t &i,
                std::string &out)
{
    if (i >= s.size() || s[i] != '"')
        return false;
    ++i;
    out.clear();
    while (i < s.size()) {
        char c = s[i++];
        if (c == '"')
            return true;
        if (c != '\\') {
            out.push_back(c);
            continue;
        }
        if (i >= s.size())
            return false;
        char e = s[i++];
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 'u': {
            if (i + 4 > s.size())
                return false;
            unsigned v = 0;
            for (unsigned k = 0; k < 4; ++k) {
                char h = s[i++];
                v <<= 4;
                if (h >= '0' && h <= '9')
                    v |= static_cast<unsigned>(h - '0');
                else if (h >= 'a' && h <= 'f')
                    v |= static_cast<unsigned>(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F')
                    v |= static_cast<unsigned>(h - 'A' + 10);
                else
                    return false;
            }
            if (v > 0xff)
                return false; // jsonQuote only emits \u00xx
            out.push_back(static_cast<char>(v));
            break;
          }
          default:
            return false;
        }
    }
    return false;
}

/**
 * Parse one journal line as a flat JSON object of scalars.  This
 * is the exact inverse of the renderer below (plus whitespace
 * tolerance); anything else — truncation included — returns false.
 */
bool
parseJsonObject(const std::string &line,
                std::map<std::string, JsonValue> &out)
{
    out.clear();
    std::size_t i = 0;
    if (!skipWs(line, i) || line[i] != '{')
        return false;
    ++i;
    if (!skipWs(line, i))
        return false;
    if (line[i] == '}') {
        ++i;
    } else {
        while (true) {
            std::string key;
            if (!skipWs(line, i) ||
                !parseJsonString(line, i, key))
                return false;
            if (!skipWs(line, i) || line[i] != ':')
                return false;
            ++i;
            if (!skipWs(line, i))
                return false;
            JsonValue v;
            if (line[i] == '"') {
                v.kind = JsonValue::Str;
                if (!parseJsonString(line, i, v.text))
                    return false;
            } else if (line.compare(i, 4, "true") == 0) {
                v.kind = JsonValue::Bool;
                v.b = true;
                i += 4;
            } else if (line.compare(i, 5, "false") == 0) {
                v.kind = JsonValue::Bool;
                v.b = false;
                i += 5;
            } else {
                v.kind = JsonValue::Num;
                std::size_t start = i;
                while (i < line.size() &&
                       (std::isdigit(static_cast<unsigned char>(
                            line[i])) ||
                        std::strchr("+-.eE", line[i]) != nullptr))
                    ++i;
                if (i == start)
                    return false;
                v.text = line.substr(start, i - start);
            }
            if (out.count(key) != 0)
                return false;
            out.emplace(std::move(key), std::move(v));
            if (!skipWs(line, i))
                return false;
            if (line[i] == ',') {
                ++i;
                continue;
            }
            if (line[i] == '}') {
                ++i;
                break;
            }
            return false;
        }
    }
    return !skipWs(line, i); // nothing but whitespace may follow
}

bool
getStr(const std::map<std::string, JsonValue> &obj,
       const char *key, std::string &out)
{
    auto it = obj.find(key);
    if (it == obj.end() || it->second.kind != JsonValue::Str)
        return false;
    out = it->second.text;
    return true;
}

bool
getBool(const std::map<std::string, JsonValue> &obj,
        const char *key, bool &out)
{
    auto it = obj.find(key);
    if (it == obj.end() || it->second.kind != JsonValue::Bool)
        return false;
    out = it->second.b;
    return true;
}

bool
getU64(const std::map<std::string, JsonValue> &obj, const char *key,
       std::uint64_t &out)
{
    auto it = obj.find(key);
    if (it == obj.end() || it->second.kind != JsonValue::Num)
        return false;
    const std::string &t = it->second.text;
    char *end = nullptr;
    out = std::strtoull(t.c_str(), &end, 10);
    return end != t.c_str() && *end == '\0';
}

bool
getDouble(const std::map<std::string, JsonValue> &obj,
          const char *key, double &out)
{
    auto it = obj.find(key);
    if (it == obj.end() || it->second.kind != JsonValue::Num)
        return false;
    const std::string &t = it->second.text;
    char *end = nullptr;
    out = std::strtod(t.c_str(), &end);
    return end != t.c_str() && *end == '\0';
}

/** Append "%.17g" of `v` (round-trips binary64 exactly). */
void
appendG17(std::string &s, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    s += buf;
}

std::string
renderRecord(const SweepRunRecord &r)
{
    std::string s = "{\"i\":";
    s += std::to_string(r.index);
    s += ",\"key\":";
    s += telemetry::jsonQuote(r.key);
    s += ",\"label\":";
    s += telemetry::jsonQuote(r.label);
    s += ",\"policy\":";
    s += telemetry::jsonQuote(r.policy);
    s += ",\"seed\":";
    s += std::to_string(r.seed);
    s += ",\"sweep\":";
    s += std::to_string(r.sweepPoint);
    s += ",\"shard\":";
    s += telemetry::jsonQuote(r.shard);
    s += ",\"completed\":";
    s += r.completed ? "true" : "false";
    s += ",\"ws\":";
    appendG17(s, r.weightedSpeedup);
    s += ",\"maxsd\":";
    appendG17(s, r.maxSlowdown);
    s += ",\"eff\":";
    appendG17(s, r.efficiency);
    s += ",\"served\":";
    s += std::to_string(r.servedTotal);
    s += ",\"swaps\":";
    s += std::to_string(r.swaps);
    s += "}\n";
    return s;
}

bool
parseRecordLine(const std::string &line, SweepRunRecord &rec)
{
    std::map<std::string, JsonValue> obj;
    if (!parseJsonObject(line, obj))
        return false;
    std::uint64_t idx = 0;
    if (!getU64(obj, "i", idx) || !getStr(obj, "key", rec.key) ||
        !getStr(obj, "label", rec.label) ||
        !getStr(obj, "policy", rec.policy) ||
        !getU64(obj, "seed", rec.seed) ||
        !getU64(obj, "sweep", rec.sweepPoint) ||
        !getStr(obj, "shard", rec.shard) ||
        !getBool(obj, "completed", rec.completed) ||
        !getDouble(obj, "ws", rec.weightedSpeedup) ||
        !getDouble(obj, "maxsd", rec.maxSlowdown) ||
        !getDouble(obj, "eff", rec.efficiency) ||
        !getU64(obj, "served", rec.servedTotal) ||
        !getU64(obj, "swaps", rec.swaps))
        return false;
    rec.index = idx;
    return true;
}

std::string
renderHeader(std::uint64_t spec_fp, std::size_t runs)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "{\"profess_sweep\":1,\"spec\":\"%016llx\","
                  "\"runs\":%zu}\n",
                  static_cast<unsigned long long>(spec_fp), runs);
    return buf;
}

bool
fileExists(const std::string &path)
{
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0;
}

void
flushSync(std::FILE *f, const std::string &path)
{
    fatal_if(std::fflush(f) != 0, "cannot flush '%s': %s",
             path.c_str(), std::strerror(errno));
    fatal_if(::fsync(::fileno(f)) != 0, "cannot fsync '%s': %s",
             path.c_str(), std::strerror(errno));
}

/** Force the process-wide metricsOut for the driver's scope. */
class ScopedMetricsOut
{
  public:
    explicit ScopedMetricsOut(std::string path)
        : saved_(TelemetryConfig::global().metricsOut)
    {
        TelemetryConfig::global().metricsOut = std::move(path);
    }

    ~ScopedMetricsOut()
    {
        TelemetryConfig::global().metricsOut = saved_;
    }

  private:
    std::string saved_;
};

} // anonymous namespace

//
// SweepDriver
//

SweepDriver::SweepDriver(const SweepSpec &spec, const Options &opts)
    : spec_(spec), opts_(opts)
{
    fatal_if(opts_.outDir.empty(), "sweep: no output directory");
    // The scenario schedule changes every run's trajectory, so a
    // journal written under one schedule must not satisfy a resume
    // under another.
    specFp_ = hashCombine(spec_.fingerprint(),
                          ScenarioConfig::global().fingerprint());
    jobs_ = spec_.expand();
    keys_.reserve(jobs_.size());
    labels_.reserve(jobs_.size());
    shards_.reserve(jobs_.size());
    for (const RunJob &j : jobs_) {
        // Mirror ParallelRunner::runOne exactly: the derived seed,
        // the "_s<point>" telemetry suffix and the "<label>_<policy>"
        // snapshot label must name the same run the DetSan journal
        // and the metrics shard see.
        std::uint64_t seed = deriveSeed(j.baseSeed, j.policy,
                                        j.label, j.sweepPoint);
        std::string tlabel = j.label;
        if (j.sweepPoint != 0)
            tlabel += "_s" + std::to_string(j.sweepPoint);
        keys_.push_back(runIdentityKey(j.cfg, j.footprintScale,
                                       tlabel, j.policy, j.programs,
                                       seed));
        labels_.push_back(tlabel);
        shards_.push_back(MetricsCollector::shardFileName(
            tlabel + "_" + j.policy));
    }
    records_.assign(jobs_.size(), SweepRunRecord{});
    done_.assign(jobs_.size(), false);
}

SweepDriver::~SweepDriver()
{
    if (journal_ != nullptr)
        std::fclose(journal_);
}

void
SweepDriver::setRunCallback(
    std::function<void(std::size_t, std::size_t)> cb)
{
    callback_ = std::move(cb);
}

std::string
SweepDriver::journalPath() const
{
    return opts_.outDir + "/sweep.journal.jsonl";
}

std::string
SweepDriver::metricsPath() const
{
    return opts_.outDir + "/metrics.prom";
}

void
SweepDriver::removeOutputs()
{
    ::unlink(journalPath().c_str());
    ::unlink(metricsPath().c_str());
    std::string dir = MetricsCollector::shardDir(metricsPath());
    if (::DIR *d = ::opendir(dir.c_str())) {
        std::vector<std::string> names;
        while (struct dirent *de = ::readdir(d)) {
            std::string name = de->d_name;
            if (name != "." && name != "..")
                names.push_back(std::move(name));
        }
        ::closedir(d);
        for (const std::string &name : names)
            ::unlink((dir + "/" + name).c_str());
    }
}

void
SweepDriver::loadJournal()
{
    const std::string path = journalPath();
    const std::string shard_dir =
        MetricsCollector::shardDir(metricsPath());
    std::string content;
    {
        std::ifstream in(path, std::ios::binary);
        if (in.is_open()) {
            content.assign(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
        }
    }

    // Split keeping each line's byte offset so a torn tail can be
    // truncated away in place.
    std::vector<std::pair<std::size_t, std::string>> lines;
    std::size_t pos = 0;
    while (pos < content.size()) {
        std::size_t nl = content.find('\n', pos);
        std::size_t end =
            nl == std::string::npos ? content.size() : nl;
        lines.emplace_back(pos, content.substr(pos, end - pos));
        pos = end + 1;
    }

    if (lines.empty()) {
        // New (or empty) journal: write the header, durably, before
        // any run can complete.
        journal_ = std::fopen(path.c_str(), "w");
        fatal_if(journal_ == nullptr,
                 "cannot write sweep journal '%s': %s", path.c_str(),
                 std::strerror(errno));
        std::string hdr = renderHeader(specFp_, jobs_.size());
        std::fputs(hdr.c_str(), journal_);
        flushSync(journal_, path);
        return;
    }

    std::map<std::string, JsonValue> hdr;
    std::uint64_t version = 0;
    std::string spec_hex;
    std::uint64_t runs = 0;
    bool hdr_ok = parseJsonObject(lines[0].second, hdr) &&
                  getU64(hdr, "profess_sweep", version) &&
                  getStr(hdr, "spec", spec_hex) &&
                  getU64(hdr, "runs", runs);
    if (!hdr_ok && lines.size() == 1) {
        // A journal torn inside its very first write holds no runs;
        // start over.
        warn("sweep: discarding torn journal header in '%s'",
             path.c_str());
        journal_ = std::fopen(path.c_str(), "w");
        fatal_if(journal_ == nullptr,
                 "cannot write sweep journal '%s': %s", path.c_str(),
                 std::strerror(errno));
        std::string h = renderHeader(specFp_, jobs_.size());
        std::fputs(h.c_str(), journal_);
        flushSync(journal_, path);
        return;
    }
    fatal_if(!hdr_ok, "%s: corrupt sweep journal header",
             path.c_str());
    char want_hex[24];
    std::snprintf(want_hex, sizeof(want_hex), "%016llx",
                  static_cast<unsigned long long>(specFp_));
    fatal_if(version != 1 || spec_hex != want_hex ||
                 runs != jobs_.size(),
             "%s: journal belongs to a different sweep "
             "(spec %s/%llu runs, this spec %s/%zu runs); pass "
             "--fresh to discard it",
             path.c_str(), spec_hex.c_str(),
             static_cast<unsigned long long>(runs), want_hex,
             jobs_.size());

    for (std::size_t k = 1; k < lines.size(); ++k) {
        SweepRunRecord rec;
        if (!parseRecordLine(lines[k].second, rec)) {
            // Only the last line can legitimately be malformed: a
            // write torn by a crash.  Drop it; its run re-executes.
            fatal_if(k + 1 != lines.size(),
                     "%s:%zu: corrupt sweep journal line (not the "
                     "trailing line)",
                     path.c_str(), k + 1);
            warn("sweep: dropping torn trailing journal line in "
                 "'%s' (its run will re-execute)",
                 path.c_str());
            fatal_if(::truncate(path.c_str(),
                                static_cast<off_t>(
                                    lines[k].first)) != 0,
                     "cannot truncate '%s': %s", path.c_str(),
                     std::strerror(errno));
            break;
        }
        fatal_if(rec.index >= jobs_.size() ||
                     rec.key != keys_[rec.index],
                 "%s:%zu: journaled run identity does not match "
                 "the spec's expansion; pass --fresh to discard",
                 path.c_str(), k + 1);
        if (!fileExists(shard_dir + "/" + rec.shard)) {
            warn("sweep: journaled run %zu has no metrics shard; "
                 "re-running it",
                 rec.index);
            continue;
        }
        records_[rec.index] = rec;
        done_[rec.index] = true;
    }
    resumed_ = static_cast<std::size_t>(
        std::count(done_.begin(), done_.end(), true));

    journal_ = std::fopen(path.c_str(), "a");
    fatal_if(journal_ == nullptr,
             "cannot append to sweep journal '%s': %s", path.c_str(),
             std::strerror(errno));
}

void
SweepDriver::appendJournal(const SweepRunRecord &rec)
{
    // The run's shard is already durable (tmp+fsync+rename in
    // MetricsCollector::record) by the time finish() returned, so
    // journal line -> shard can never dangle after a crash.
    std::string line = renderRecord(rec);
    std::fputs(line.c_str(), journal_);
    flushSync(journal_, journalPath());
}

void
SweepDriver::finalize()
{
    // Rebuild the exposition from the on-disk shards: identical
    // whether the runs happened in this process, an earlier killed
    // one, or any mix.
    MetricsCollector::global().mergeShards(metricsPath());

    // Rewrite the journal canonically — header plus one line per
    // run in job order, atomically — erasing completion order and
    // any resume history from the bytes.
    const std::string path = journalPath();
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    fatal_if(f == nullptr, "cannot write '%s': %s", tmp.c_str(),
             std::strerror(errno));
    std::string hdr = renderHeader(specFp_, jobs_.size());
    std::fputs(hdr.c_str(), f);
    for (const SweepRunRecord &rec : records_) {
        std::string line = renderRecord(rec);
        std::fputs(line.c_str(), f);
    }
    flushSync(f, tmp);
    std::fclose(f);
    fatal_if(std::rename(tmp.c_str(), path.c_str()) != 0,
             "cannot rename '%s' to '%s': %s", tmp.c_str(),
             path.c_str(), std::strerror(errno));
}

bool
SweepDriver::run()
{
    makeDirs(opts_.outDir);
    // Route every run's metrics snapshot (and shard) into the
    // sweep's exposition for the driver's scope.
    ScopedMetricsOut scoped(metricsPath());

    if (opts_.fresh)
        removeOutputs();
    loadJournal();

    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        if (!done_[i])
            pending.push_back(i);
    }
    const bool preempted =
        opts_.maxRuns != 0 && opts_.maxRuns < pending.size();
    if (preempted)
        pending.resize(opts_.maxRuns);

    ParallelRunner runner(opts_.jobs, &cache_);
    runner.setProgress(false);
    std::atomic<std::size_t> journaled{resumed_};
    runner.forEach(
        pending.size(), [this, &runner, &pending,
                         &journaled](std::size_t k) {
            std::size_t i = pending[k];
            MultiMetrics m = runner.runOne(jobs_[i]);
            SweepRunRecord rec;
            rec.index = i;
            rec.key = keys_[i];
            rec.label = labels_[i];
            rec.policy = jobs_[i].policy;
            rec.seed = deriveSeed(jobs_[i].baseSeed,
                                  jobs_[i].policy, jobs_[i].label,
                                  jobs_[i].sweepPoint);
            rec.sweepPoint = jobs_[i].sweepPoint;
            rec.shard = shards_[i];
            rec.completed = m.run.completed;
            rec.weightedSpeedup = m.weightedSpeedup;
            rec.maxSlowdown = m.maxSlowdown;
            rec.efficiency = m.efficiency;
            rec.servedTotal = m.run.servedTotal;
            rec.swaps = m.run.swaps;
            std::size_t count;
            {
                std::lock_guard<std::mutex> lk(journalMu_);
                appendJournal(rec);
                records_[i] = rec;
                done_[i] = true;
                ++executed_;
                count = ++journaled;
            }
            if (opts_.progress) {
                std::fprintf(stderr, "[sweep %zu/%zu] %s/%s done\n",
                             count, jobs_.size(),
                             rec.label.c_str(), rec.policy.c_str());
            }
            if (callback_)
                callback_(count, jobs_.size());
        });

    std::fclose(journal_);
    journal_ = nullptr;

    if (std::count(done_.begin(), done_.end(), true) !=
        static_cast<std::ptrdiff_t>(jobs_.size()))
        return false;
    finalize();
    return true;
}

} // namespace sim

} // namespace profess
