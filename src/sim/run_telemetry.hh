/**
 * @file
 * Per-run telemetry bundle and its process-wide configuration.
 *
 * TelemetryConfig - one process-wide switchboard filled from the
 *                   environment (PROFESS_TRACE, PROFESS_TELEMETRY_OUT,
 *                   PROFESS_EPOCH_TICKS) and/or the command line
 *                   (--trace, --telemetry-out DIR, --epoch-ticks N).
 *                   Telemetry stays entirely outside SystemConfig so
 *                   enabling it can never change a config fingerprint
 *                   or a derived seed.
 * RunTelemetry    - everything one labelled run owns: the stat
 *                   registry, the decision/chrome trace sinks, the
 *                   epoch sampler and the hot-path timer slots.  When
 *                   an output directory is configured it materializes
 *                   DIR/<label>/{manifest.json, stats.json,
 *                   epochs.jsonl, decisions.jsonl, trace.json}.
 *
 * Attachment point: System::attachTelemetry() registers every
 * component and forwards the sinks; ExperimentRunner::run() creates
 * the bundle for labelled runs only (stand-alone IPC_SP reference
 * runs have no label and always run clean).
 *
 * The fault-injection subsystem (src/sim/scenario.hh) mirrors this
 * pattern: ScenarioConfig is the PROFESS_SCENARIO / --scenario FILE
 * switchboard, and ExperimentRunner::run() registers scenario event
 * counters and trace records into this bundle when both are active.
 */

#ifndef PROFESS_SIM_RUN_TELEMETRY_HH
#define PROFESS_SIM_RUN_TELEMETRY_HH

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/openmetrics.hh"
#include "common/telemetry.hh"
#include "common/trace_sink.hh"
#include "common/types.hh"

namespace profess
{

class EventQueue;

namespace core
{
class Rsm;
} // namespace core

namespace telemetry
{
class LatencyAttribution;
} // namespace telemetry

namespace sim
{

struct SystemConfig;

/** Process-wide telemetry switchboard (see file comment). */
struct TelemetryConfig
{
    bool trace = false;      ///< decision + chrome tracing
    std::string outDir;      ///< run-artifact directory ("" = none)
    Tick epochInterval = 25000; ///< epoch sampler period in ticks
    /** Combined OpenMetrics exposition file collecting every
     *  labelled run of the process ("" = none). */
    std::string metricsOut;

    /** @return true if any telemetry consumer is active. */
    bool
    enabled() const
    {
        return trace || !outDir.empty() || !metricsOut.empty();
    }

    /** Read PROFESS_TRACE / PROFESS_TELEMETRY_OUT /
     *  PROFESS_EPOCH_TICKS / PROFESS_METRICS_OUT. */
    void initFromEnv();

    /**
     * Read the environment, then strip and apply --trace,
     * --telemetry-out DIR, --epoch-ticks N and --metrics-out FILE
     * (also the --opt=value spellings) from argv, compacting it in
     * place.
     */
    void initFromArgs(int &argc, char **argv);

    /** The process-wide instance used by the experiment layer. */
    static TelemetryConfig &global();
};

/** Telemetry state of one labelled run. */
class RunTelemetry
{
  public:
    /**
     * @param cfg Configuration in force (copied).
     * @param label Run identity; becomes the artifact subdirectory
     *        (sanitized) and the manifest label.
     */
    RunTelemetry(const TelemetryConfig &cfg, const std::string &label);
    ~RunTelemetry();

    RunTelemetry(const RunTelemetry &) = delete;
    RunTelemetry &operator=(const RunTelemetry &) = delete;

    /** @return the registry components register into. */
    telemetry::StatRegistry &registry() { return registry_; }

    /** @return decision-trace sink, or null when tracing is off. */
    telemetry::DecisionTraceSink *decisionSink()
    {
        return decision_.get();
    }

    /** @return chrome-trace sink, or null when tracing is off. */
    telemetry::ChromeTraceSink *chromeSink() { return chrome_.get(); }

    /** @return wall-clock slot for the controller access path. */
    telemetry::TimerSlot *accessTimer() { return &accessSlot_; }

    /** @return wall-clock slot for the channel scheduler. */
    telemetry::TimerSlot *schedulerTimer() { return &schedSlot_; }

    /**
     * Create (first call) and return the latency-attribution table
     * for `num_programs`, registered under "latency".  Subsequent
     * calls return the same table.  Call before startSampler() so
     * the derived count/sum probes join the epoch selection.
     */
    telemetry::LatencyAttribution *attribution(unsigned num_programs);

    /**
     * Start the epoch sampler on the event queue (samples every
     * registered entry; opens epochs.jsonl when an output directory
     * is configured).  Call after all components registered.
     */
    void startSampler(EventQueue &eq);

    /** Stop the epoch sampler. */
    void stopSampler();

    /** @return the sampler, or null before startSampler(). */
    telemetry::EpochSampler *sampler() { return sampler_.get(); }

    /** @return the artifact directory ("" when none). */
    const std::string &directory() const { return dir_; }

    /** @return the run label. */
    const std::string &label() const { return label_; }

    /**
     * Write the end-of-run artifacts: manifest.json, stats.json,
     * decisions.jsonl and trace.json (no-op without an output
     * directory).  Wall-clock and peak RSS are measured here.
     */
    void finish(const std::string &policy, const std::string &workload,
                std::uint64_t seed, const std::string &config_json,
                bool completed);

  private:
    TelemetryConfig cfg_;
    std::string label_;
    std::string dir_; ///< outDir/<sanitized label>, "" when none

    telemetry::StatRegistry registry_;
    std::unique_ptr<telemetry::DecisionTraceSink> decision_;
    std::unique_ptr<telemetry::ChromeTraceSink> chrome_;
    std::unique_ptr<telemetry::EpochSampler> sampler_;
    std::unique_ptr<telemetry::LatencyAttribution> attr_;
    telemetry::TimerSlot accessSlot_{};
    telemetry::TimerSlot schedSlot_{};

    std::FILE *epochsFile_ = nullptr;
    std::chrono::steady_clock::time_point wallStart_;
    std::string startedIso_;
};

/**
 * Process-wide collector for the --metrics-out exposition file.
 *
 * Every labelled run's registry is snapshotted at finish().  Each
 * snapshot is journaled immediately as a durable per-run shard
 * under shardDir(path) — O(1) work per run — and kept in memory;
 * the combined exposition is produced once, by flush() (armed as
 * an atexit hook on the global instance) or by mergeShards(),
 * instead of being rewritten after every run (the old O(runs²)
 * path).  Runs are always emitted sorted by label, so the final
 * exposition is identical no matter in which order parallel
 * workers finish (--jobs N determinism, tests/test_telemetry.cc).
 * A repeated run label replaces the earlier snapshot (and its
 * shard), keeping file and memory consistent.
 */
class MetricsCollector
{
  public:
    /** Record one run snapshot: write its shard, keep it for
     *  flush().  Thread-safe. */
    void record(const std::string &path,
                telemetry::MetricsSnapshot snap);

    /**
     * Write every recorded path's combined exposition from the
     * in-memory snapshots.  Idempotent; called automatically at
     * process exit for the global instance.  Tests (or anything
     * reading the file mid-process) call it explicitly.
     */
    void flush();

    /**
     * Rebuild `path` (crash-atomically) from the on-disk shards
     * under shardDir(path) — including shards written by an
     * earlier, killed process — sorted by run label, and drop any
     * in-memory snapshots for `path` so a later flush() cannot
     * clobber the merged result.  Byte-identical to flush() when
     * the shards and the in-memory state agree.
     */
    void mergeShards(const std::string &path);

    /** @return the shard directory of an exposition path. */
    static std::string shardDir(const std::string &path);

    /** @return the shard file name of a run label (sanitized label
     *  plus a hash of the exact label, so distinct labels never
     *  collide). */
    static std::string shardFileName(const std::string &run_label);

    /** @return snapshots held in memory (all paths). */
    std::size_t size() const;

    /** Drop all snapshots (tests running several batches). */
    void clear();

    /** The process-wide instance. */
    static MetricsCollector &global();

  private:
    mutable std::mutex mu_;
    /** path -> (run label -> snapshot); both map orders are the
     *  deterministic output orders. */
    std::map<std::string,
             std::map<std::string, telemetry::MetricsSnapshot>>
        byPath_;
    bool exitFlushArmed_ = false;
};

/**
 * Register the per-epoch fairness gauges derived from RSM's
 * slowdown factors (Sec. 3.1): per-program
 * "fairness.p<i>.slowdown" (max of SF_A and SF_B), plus
 * "fairness.weighted_speedup" (sum of 1/slowdown),
 * "fairness.max_slowdown" and "fairness.unfairness"
 * (max-over-min slowdown ratio).  Pure probes over RSM state:
 * sampling them never perturbs the run.
 */
void registerFairnessGauges(telemetry::StatRegistry &registry,
                            const core::Rsm &rsm,
                            unsigned num_programs);

/** Filesystem-safe form of a run label ([A-Za-z0-9._-] kept). */
std::string sanitizeLabel(const std::string &label);

/** mkdir -p (fatal on failure); shared by telemetry and sweep. */
void makeDirs(const std::string &path);

/** Render a SystemConfig as the manifest's "config" JSON object. */
std::string configJson(const SystemConfig &cfg);

} // namespace sim

} // namespace profess

#endif // PROFESS_SIM_RUN_TELEMETRY_HH
