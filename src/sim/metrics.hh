/**
 * @file
 * Figures of merit (Sec. 4.3).
 *
 * slowdown_i       = IPC_SP,i / IPC_MP,i                     (Eq. 1)
 * weighted speedup = sum_i (1 / slowdown_i)     [Eyerman & Eeckhout]
 * unfairness       = max_i slowdown_i
 * energy efficiency = requests served per second per watt
 */

#ifndef PROFESS_SIM_METRICS_HH
#define PROFESS_SIM_METRICS_HH

#include <vector>

#include "common/logging.hh"

namespace profess
{

namespace sim
{

/** @return per-program slowdowns from alone/contended IPCs. */
inline std::vector<double>
slowdowns(const std::vector<double> &ipc_alone,
          const std::vector<double> &ipc_contended)
{
    panic_if(ipc_alone.size() != ipc_contended.size(),
             "mismatched IPC vectors");
    std::vector<double> s(ipc_alone.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        panic_if(ipc_contended[i] <= 0.0, "non-positive IPC");
        s[i] = ipc_alone[i] / ipc_contended[i];
    }
    return s;
}

/** @return weighted speedup = sum of reciprocal slowdowns. */
inline double
weightedSpeedup(const std::vector<double> &sdn)
{
    double ws = 0.0;
    for (double s : sdn) {
        panic_if(s <= 0.0, "non-positive slowdown");
        ws += 1.0 / s;
    }
    return ws;
}

/** @return unfairness = maximum slowdown. */
inline double
unfairness(const std::vector<double> &sdn)
{
    panic_if(sdn.empty(), "empty slowdown vector");
    double m = sdn[0];
    for (double s : sdn)
        m = s > m ? s : m;
    return m;
}

/**
 * @param requests Demand requests served.
 * @param joules Total memory-system energy.
 * @return Requests per second per watt (= requests per joule).
 */
inline double
energyEfficiency(std::uint64_t requests, double joules)
{
    panic_if(joules <= 0.0, "non-positive energy");
    return static_cast<double>(requests) / joules;
}

} // namespace sim

} // namespace profess

#endif // PROFESS_SIM_METRICS_HH
