/**
 * @file
 * Resumable sweep orchestration (DESIGN.md Sec. 4i).
 *
 * A sweep spec is a declarative key=value file (same token format
 * as ScenarioSchedule::fromFile) describing a grid of experiment
 * jobs — policies x workload mixes x sweep points x seeds:
 *
 *   preset=quad                 # quad | single base config
 *   policy=profess,pom          # repeatable / comma lists
 *   workload=w01,w03            # Table 10 name or "mcf+lbm+..."
 *   seed=1,2                    # base seeds (default 1)
 *   slowdowns=1                 # attach stand-alone references
 *   instr=120000 warmup=60000   # fixed config overrides
 *   sweep=min_benefit:4,8,16    # the (single) swept config axis
 *
 * SweepDriver expands the spec deterministically, fans the jobs
 * over ParallelRunner, and checkpoints each completed run as one
 * fsync'd line of an append-only journal (sweep.journal.jsonl in
 * the output directory), keyed by the same
 * configFingerprint|label|policy|programs|seed identity the DetSan
 * journal uses (runIdentityKey).  Per-run metrics are durable the
 * moment a run finishes: MetricsCollector writes one shard per run
 * under metrics.prom.shards/.
 *
 * Crash safety: a sweep killed at any point — SIGKILL mid-run
 * included — resumes by re-running only the jobs missing from the
 * journal (a torn trailing journal line is dropped; its run simply
 * re-executes).  When the last run completes, the driver merges
 * the shards into metrics.prom and rewrites the journal in
 * canonical job order, both crash-atomically, so the finalized
 * journal and exposition are byte-identical to an uninterrupted
 * sweep of the same spec at any --jobs N
 * (tests/test_sweep.cc).
 */

#ifndef PROFESS_SIM_SWEEP_HH
#define PROFESS_SIM_SWEEP_HH

#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "sim/parallel_runner.hh"

namespace profess
{

namespace sim
{

/** One fixed (config key, value) override from a sweep spec. */
struct ConfigOverride
{
    std::string key;
    double value = 0.0;
};

/** @return true if `key` names a sweepable SystemConfig knob. */
bool isSweepConfigKey(const std::string &key);

/**
 * Apply one config key (instr, warmup, msamp, min_benefit,
 * m2_write_scale, num_regions, slots_per_group, num_channels,
 * stats_fold_interval, factor_threshold, product_threshold,
 * stc_kb, alloc_seed) to `cfg`.  Fatal on an unknown key or a
 * non-integral value for an integer knob.
 */
void applySweepConfigKey(SystemConfig &cfg, const std::string &key,
                         double value);

/** Parsed sweep specification. */
class SweepSpec
{
  public:
    std::string preset = "quad";    ///< quad | single
    std::vector<std::string> policies;
    std::vector<std::string> mixes; ///< Table 10 names or a+b+c+d
    std::vector<std::uint64_t> seeds{1};
    bool slowdowns = true;
    std::vector<ConfigOverride> overrides;
    std::string sweepKey;           ///< "" = no swept axis
    std::vector<double> sweepValues;

    /**
     * Parse a spec file: '#' comments, whitespace-separated
     * key=value tokens (ScenarioSchedule's format).  Fatal with
     * file:line on malformed input, unknown keys, unknown
     * workloads/programs, or a second sweep= axis.
     */
    static SweepSpec fromFile(const std::string &path);

    /** Order-sensitive fingerprint of every field (validates a
     *  journal against the spec that wrote it). */
    std::uint64_t fingerprint() const;

    /** @return sweep points (1 when no axis is swept). */
    std::size_t numSweepPoints() const
    {
        return sweepValues.empty() ? 1 : sweepValues.size();
    }

    /** @return the config of sweep point `point` (0-based):
     *  preset + fixed overrides + the swept value. */
    SystemConfig configAt(std::size_t point) const;

    /** @return programs of one mix entry (resolves Table 10 names,
     *  validates '+'-joined program lists). */
    static std::vector<std::string>
    mixPrograms(const std::string &mix);

    /** @return total runs = points x mixes x policies x seeds. */
    std::size_t numRuns() const;

    /**
     * Expand into jobs in canonical order (sweep point, mix,
     * policy, seed — all innermost-last).  Job labels are the mix
     * name, suffixed "_r<seed>" when several seeds are swept; with
     * a swept axis, sweep points are numbered from 1 so every
     * point's telemetry label carries an "_s<point>" suffix.
     */
    std::vector<RunJob> expand() const;
};

/** One journaled sweep run (a sweep.journal.jsonl line). */
struct SweepRunRecord
{
    std::size_t index = 0;    ///< job index in canonical order
    std::string key;          ///< runIdentityKey of the run
    std::string label;        ///< telemetry label (mix[_r][_s])
    std::string policy;
    std::uint64_t seed = 0;   ///< derived per-job seed
    std::uint64_t sweepPoint = 0;
    std::string shard;        ///< shard file name under .shards/
    bool completed = false;   ///< every core reached its quota
    double weightedSpeedup = 0.0;
    double maxSlowdown = 0.0;
    double efficiency = 0.0;
    std::uint64_t servedTotal = 0;
    std::uint64_t swaps = 0;
};

/** The crash-safe orchestrator (see file comment). */
class SweepDriver
{
  public:
    struct Options
    {
        std::string outDir;      ///< journal + metrics directory
        unsigned jobs = 0;       ///< workers; 0 = jobsFromEnv()
        /** Stop (exit partial) after this many newly executed
         *  runs; 0 = run to completion.  The subset is the first K
         *  pending jobs in canonical order — deterministic, so an
         *  interrupted-then-resumed sweep is reproducible. */
        std::size_t maxRuns = 0;
        bool fresh = false;      ///< discard journal and shards
        bool progress = false;   ///< per-run stderr progress lines
    };

    SweepDriver(const SweepSpec &spec, const Options &opts);
    ~SweepDriver();

    SweepDriver(const SweepDriver &) = delete;
    SweepDriver &operator=(const SweepDriver &) = delete;

    /**
     * Hook invoked after each run is journaled (durable), with
     * (runs journaled so far, total runs).  May fire concurrently
     * from worker threads.  Tests use it to kill the process
     * mid-sweep at a known point.
     */
    void setRunCallback(
        std::function<void(std::size_t, std::size_t)> cb);

    /**
     * Execute the sweep: load/validate the journal, run the
     * pending jobs, journal each completion, and — when every run
     * is journaled — merge the metric shards into metrics.prom and
     * rewrite the journal canonically.
     *
     * @return true when finalized; false when preempted by
     *         Options::maxRuns (resume by running again).
     */
    bool run();

    /** @return total runs of the spec. */
    std::size_t totalRuns() const { return jobs_.size(); }

    /** @return runs skipped because the journal already had them. */
    std::size_t resumedRuns() const { return resumed_; }

    /** @return runs executed by this call/process. */
    std::size_t executedRuns() const { return executed_; }

    /** @return per-job records (valid entries where done). */
    const std::vector<SweepRunRecord> &records() const
    {
        return records_;
    }

    /** @return the journal path (outDir/sweep.journal.jsonl). */
    std::string journalPath() const;

    /** @return the exposition path (outDir/metrics.prom). */
    std::string metricsPath() const;

  private:
    void removeOutputs();
    void loadJournal();
    void appendJournal(const SweepRunRecord &rec);
    void finalize();

    SweepSpec spec_;
    Options opts_;
    std::uint64_t specFp_ = 0; ///< spec + scenario fingerprint
    std::vector<RunJob> jobs_;       ///< canonical order
    std::vector<std::string> keys_;  ///< runIdentityKey per job
    std::vector<std::string> labels_; ///< telemetry label per job
    std::vector<std::string> shards_; ///< shard file name per job
    AloneIpcCache cache_;
    std::vector<SweepRunRecord> records_;
    std::vector<bool> done_;
    std::size_t resumed_ = 0;
    std::size_t executed_ = 0;
    std::function<void(std::size_t, std::size_t)> callback_;
    std::mutex journalMu_;
    std::FILE *journal_ = nullptr;
};

} // namespace sim

} // namespace profess

#endif // PROFESS_SIM_SWEEP_HH
