/**
 * @file
 * Experiment harness: builds systems, runs workloads, computes the
 * paper's metrics, and caches stand-alone (IPC_SP) reference runs.
 *
 * Used by every benchmark binary in bench/ to regenerate the
 * paper's tables and figures.
 */

#ifndef PROFESS_SIM_EXPERIMENT_HH
#define PROFESS_SIM_EXPERIMENT_HH

#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "sim/metrics.hh"
#include "sim/system.hh"
#include "sim/workloads.hh"
#include "trace/spec_profiles.hh"

namespace profess
{

namespace sim
{

/** Aggregate results of one workload run. */
struct RunResult
{
    std::string policy;
    std::vector<std::string> programs;
    std::vector<double> ipc;              ///< per program (at quota)
    std::vector<std::uint64_t> served;    ///< per program
    std::vector<std::uint64_t> servedM1;  ///< per program
    double seconds = 0.0;
    double joules = 0.0;
    double watts = 0.0;
    std::uint64_t servedTotal = 0;
    std::uint64_t swaps = 0;
    double stcHitRate = 0.0;
    double meanReadLatencyNs = 0.0;
    double m1Fraction = 0.0;   ///< fraction of accesses from M1
    double swapFraction = 0.0; ///< swaps / served requests
    double rowHitRate = 0.0;   ///< device row-buffer hit rate
    /** Fraction of demand writes that landed in M2 (Sec. 5.2). */
    double m2WriteFraction = 0.0;
    bool completed = false;
};

/** Multi-program run with slowdown-based metrics attached. */
struct MultiMetrics
{
    RunResult run;
    std::vector<double> aloneIpc;
    std::vector<double> slowdown;
    double weightedSpeedup = 0.0;
    double maxSlowdown = 0.0;
    double efficiency = 0.0; ///< requests / joule
};

/**
 * Derive the RNG seed of one experiment job from its identity.
 *
 * The derivation is a pure hash — results are bit-identical no
 * matter which thread runs the job or in which order jobs finish,
 * which is what makes the parallel runner's `--jobs 1` vs
 * `--jobs N` outputs comparable (tests/test_parallel_runner.cc).
 *
 * @param base Base seed (the experiment family's seed).
 * @param policy Policy name.
 * @param mix Workload-mix label (workload name, or program name
 *        for stand-alone runs).
 * @param sweep_point Index of the sweep point, 0 if none.
 */
std::uint64_t deriveSeed(std::uint64_t base, std::string_view policy,
                         std::string_view mix,
                         std::uint64_t sweep_point = 0);

/**
 * Fingerprint of every result-relevant field of a SystemConfig
 * (plus the footprint scale), used to key shared caches so runs
 * from different sweep points can never alias.
 */
std::uint64_t configFingerprint(const SystemConfig &cfg,
                                double footprint_scale);

/**
 * Canonical identity key of one run:
 * "<configFingerprint>|<label>|<policy>|<p0>|...|<seed>".
 *
 * The DetSan journal keys digests with it (plus telemetry/scenario
 * suffixes) and the sweep checkpoint (sim::SweepDriver) journals
 * completed runs under it verbatim, so a journaled sweep run and
 * its determinism digests name exactly the same thing.
 */
std::string runIdentityKey(const SystemConfig &cfg,
                           double footprint_scale,
                           const std::string &label,
                           const std::string &policy,
                           const std::vector<std::string> &programs,
                           std::uint64_t seed_base);

/**
 * Process-wide, thread-safe memoizing cache for stand-alone
 * (IPC_SP) reference runs.
 *
 * Keys include the config fingerprint, policy, program and seed.
 * Concurrent requests for the same key block on a shared future
 * while the first requester computes, so each reference run
 * happens exactly once per process regardless of how many
 * experiment jobs (or threads) need it.
 */
class AloneIpcCache
{
  public:
    /**
     * @return the cached value for `key`, computing it via
     *         `compute` (in the calling thread) on a miss.
     */
    double getOrCompute(const std::string &key,
                        const std::function<double()> &compute);

    /** Drop all entries. */
    void clear();

    /** @return number of cached reference runs. */
    std::size_t size() const;

    /** The process-wide instance shared by all runners. */
    static AloneIpcCache &global();

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::shared_future<double>> map_;
};

/** The harness. */
class ExperimentRunner
{
  public:
    /**
     * @param base Base system configuration used for every run.
     * @param footprint_scale Scale of Table 9 footprints (matches
     *        the capacity scaling of `base`).
     * @param cache Stand-alone reference-run cache to share;
     *        defaults to the process-wide cache so every runner in
     *        a binary reuses the same IPC_SP runs.
     */
    explicit ExperimentRunner(
        const SystemConfig &base,
        double footprint_scale = trace::defaultScale,
        AloneIpcCache *cache = nullptr)
        : base_(base), footprintScale_(footprint_scale),
          cache_(cache ? cache : &AloneIpcCache::global())
    {
    }

    /** @return the base configuration (mutable for sweeps). */
    SystemConfig &config() { return base_; }

    /**
     * Run a set of programs under a policy.
     *
     * @param policy Policy name (see System).
     * @param programs Table 9 benchmark names, one per core.
     * @param seed_base Base RNG seed (slot index is mixed in).
     * @param label Telemetry label; when non-empty and telemetry is
     *        enabled (TelemetryConfig::global()), the run attaches a
     *        RunTelemetry bundle named "<label>_<policy>".
     *        Stand-alone reference runs pass no label and always run
     *        without telemetry.  Telemetry never changes results.
     */
    RunResult run(const std::string &policy,
                  const std::vector<std::string> &programs,
                  std::uint64_t seed_base = 1,
                  const std::string &label = "");

    /**
     * Stand-alone IPC of a program under a policy on the base
     * system.  Memoized in the shared AloneIpcCache (keyed by
     * config fingerprint + policy + program + seed), so bench
     * binaries and parallel jobs never recompute a reference run.
     */
    double aloneIpc(const std::string &policy,
                    const std::string &program,
                    std::uint64_t seed_base = 1);

    /** Run a Table 10 workload and attach slowdown metrics. */
    MultiMetrics runMulti(const std::string &policy,
                          const WorkloadSpec &workload);

    /**
     * As above, with an explicit seed for the multi-program run
     * (the stand-alone references keep their own fixed seeds so
     * they stay shareable across mixes and sweep points).
     */
    MultiMetrics runMulti(const std::string &policy,
                          const WorkloadSpec &workload,
                          std::uint64_t seed_base);

    /** Clear the shared stand-alone IPC cache. */
    void clearCache() { cache_->clear(); }

    /** @return the shared reference-run cache. */
    AloneIpcCache &cache() { return *cache_; }

    /**
     * @return instruction quota from the PROFESS_INSTR environment
     *         variable, or `def` when unset.
     */
    static std::uint64_t instrFromEnv(std::uint64_t def);

  private:
    SystemConfig base_;
    double footprintScale_;
    AloneIpcCache *cache_;
};

/** Format a ratio as "+12.3%" / "-4.5%" (reporting helper). */
std::string percentDelta(double ratio);

} // namespace sim

} // namespace profess

#endif // PROFESS_SIM_EXPERIMENT_HH
