/**
 * @file
 * Experiment harness: builds systems, runs workloads, computes the
 * paper's metrics, and caches stand-alone (IPC_SP) reference runs.
 *
 * Used by every benchmark binary in bench/ to regenerate the
 * paper's tables and figures.
 */

#ifndef PROFESS_SIM_EXPERIMENT_HH
#define PROFESS_SIM_EXPERIMENT_HH

#include <map>
#include <string>
#include <vector>

#include "sim/metrics.hh"
#include "sim/system.hh"
#include "sim/workloads.hh"
#include "trace/spec_profiles.hh"

namespace profess
{

namespace sim
{

/** Aggregate results of one workload run. */
struct RunResult
{
    std::string policy;
    std::vector<std::string> programs;
    std::vector<double> ipc;              ///< per program (at quota)
    std::vector<std::uint64_t> served;    ///< per program
    std::vector<std::uint64_t> servedM1;  ///< per program
    double seconds = 0.0;
    double joules = 0.0;
    double watts = 0.0;
    std::uint64_t servedTotal = 0;
    std::uint64_t swaps = 0;
    double stcHitRate = 0.0;
    double meanReadLatencyNs = 0.0;
    double m1Fraction = 0.0;   ///< fraction of accesses from M1
    double swapFraction = 0.0; ///< swaps / served requests
    double rowHitRate = 0.0;   ///< device row-buffer hit rate
    /** Fraction of demand writes that landed in M2 (Sec. 5.2). */
    double m2WriteFraction = 0.0;
    bool completed = false;
};

/** Multi-program run with slowdown-based metrics attached. */
struct MultiMetrics
{
    RunResult run;
    std::vector<double> aloneIpc;
    std::vector<double> slowdown;
    double weightedSpeedup = 0.0;
    double maxSlowdown = 0.0;
    double efficiency = 0.0; ///< requests / joule
};

/** The harness. */
class ExperimentRunner
{
  public:
    /**
     * @param base Base system configuration used for every run.
     * @param footprint_scale Scale of Table 9 footprints (matches
     *        the capacity scaling of `base`).
     */
    explicit ExperimentRunner(
        const SystemConfig &base,
        double footprint_scale = trace::defaultScale)
        : base_(base), footprintScale_(footprint_scale)
    {
    }

    /** @return the base configuration (mutable for sweeps). */
    SystemConfig &config() { return base_; }

    /**
     * Run a set of programs under a policy.
     *
     * @param policy Policy name (see System).
     * @param programs Table 9 benchmark names, one per core.
     * @param seed_base Base RNG seed (slot index is mixed in).
     */
    RunResult run(const std::string &policy,
                  const std::vector<std::string> &programs,
                  std::uint64_t seed_base = 1);

    /**
     * Stand-alone IPC of a program under a policy on the base
     * system (cached across calls).
     */
    double aloneIpc(const std::string &policy,
                    const std::string &program);

    /** Run a Table 10 workload and attach slowdown metrics. */
    MultiMetrics runMulti(const std::string &policy,
                          const WorkloadSpec &workload);

    /** Clear the stand-alone IPC cache (after config changes). */
    void clearCache() { aloneCache_.clear(); }

    /**
     * @return instruction quota from the PROFESS_INSTR environment
     *         variable, or `def` when unset.
     */
    static std::uint64_t instrFromEnv(std::uint64_t def);

  private:
    SystemConfig base_;
    double footprintScale_;
    std::map<std::string, double> aloneCache_;
};

/** Format a ratio as "+12.3%" / "-4.5%" (reporting helper). */
std::string percentDelta(double ratio);

} // namespace sim

} // namespace profess

#endif // PROFESS_SIM_EXPERIMENT_HH
