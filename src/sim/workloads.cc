#include "sim/workloads.hh"

namespace profess
{

namespace sim
{

const std::vector<WorkloadSpec> &
multiprogramWorkloads()
{
    static const std::vector<WorkloadSpec> table = {
        {"w01", {"mcf", "libquantum", "leslie3d", "lbm"}},
        {"w02", {"soplex", "GemsFDTD", "omnetpp", "zeusmp"}},
        {"w03", {"milc", "bwaves", "lbm", "lbm"}},
        {"w04", {"libquantum", "bwaves", "leslie3d", "omnetpp"}},
        {"w05", {"mcf", "bwaves", "zeusmp", "GemsFDTD"}},
        {"w06", {"soplex", "libquantum", "lbm", "omnetpp"}},
        {"w07", {"milc", "GemsFDTD", "bwaves", "leslie3d"}},
        {"w08", {"soplex", "leslie3d", "lbm", "zeusmp"}},
        {"w09", {"mcf", "soplex", "lbm", "GemsFDTD"}},
        {"w10", {"libquantum", "leslie3d", "omnetpp", "zeusmp"}},
        {"w11", {"soplex", "bwaves", "lbm", "libquantum"}},
        {"w12", {"milc", "GemsFDTD", "soplex", "lbm"}},
        {"w13", {"mcf", "soplex", "bwaves", "zeusmp"}},
        {"w14", {"GemsFDTD", "soplex", "omnetpp", "libquantum"}},
        {"w15", {"leslie3d", "omnetpp", "lbm", "zeusmp"}},
        {"w16", {"libquantum", "libquantum", "bwaves", "zeusmp"}},
        {"w17", {"mcf", "mcf", "omnetpp", "leslie3d"}},
        {"w18", {"mcf", "milc", "milc", "GemsFDTD"}},
        {"w19", {"milc", "libquantum", "omnetpp", "leslie3d"}},
    };
    return table;
}

const WorkloadSpec *
findWorkload(const std::string &name)
{
    for (const auto &w : multiprogramWorkloads()) {
        if (name == w.name)
            return &w;
    }
    return nullptr;
}

} // namespace sim

} // namespace profess
