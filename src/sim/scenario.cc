#include "sim/scenario.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <utility>

#include "common/logging.hh"
#include "common/telemetry.hh"
#include "common/trace_sink.hh"
#include "core/mdm_policy.hh"
#include "core/profess.hh"
#include "mem/memory_system.hh"
#include "sim/system.hh"

namespace profess
{

namespace sim
{

namespace
{

/** Quiesce-audit retry spacing and bound: a busy controller gets
 *  re-polled every backoff ticks up to the deferral cap, after which
 *  the audit is abandoned (counted, never silent). */
constexpr Cycles quiesceBackoff = 128;
constexpr unsigned quiesceMaxDeferrals = 64;

/** Hash a double by bit pattern (fingerprints must be exact). */
std::uint64_t
doubleBits(double v)
{
    std::uint64_t u = 0;
    static_assert(sizeof(u) == sizeof(v));
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

} // anonymous namespace

const char *
interventionKindName(InterventionKind k)
{
    switch (k) {
      case InterventionKind::WriteSpike:
        return "write_spike";
      case InterventionKind::BankBusy:
        return "bank_busy";
      case InterventionKind::SwapAbort:
        return "swap_abort";
      case InterventionKind::PinRsm:
        return "pin_rsm";
      case InterventionKind::UnpinRsm:
        return "unpin_rsm";
      case InterventionKind::PinMdm:
        return "pin_mdm";
      case InterventionKind::UnpinMdm:
        return "unpin_mdm";
      case InterventionKind::QuiesceAudit:
        return "quiesce_audit";
      default:
        return "unknown";
    }
}

ScenarioSchedule &
ScenarioSchedule::add(const Intervention &iv)
{
    fatal_if(iv.kind >= InterventionKind::NumKinds,
             "scenario: invalid intervention kind %u",
             static_cast<unsigned>(iv.kind));
    fatal_if(iv.probability < 0.0 || iv.probability > 1.0,
             "scenario: probability %.3f outside [0, 1]",
             iv.probability);
    fatal_if(iv.kind == InterventionKind::WriteSpike &&
                 !(iv.scale > 0.0 && std::isfinite(iv.scale)),
             "scenario: write-spike scale %.3f must be finite "
             "and positive",
             iv.scale);
    fatal_if(iv.kind == InterventionKind::PinRsm &&
                 !(std::isfinite(iv.sfA) && iv.sfA > 0.0 &&
                   std::isfinite(iv.sfB) && iv.sfB >= 1.0),
             "scenario: pinned factors sfA=%.3f sfB=%.3f violate "
             "SF_A > 0, SF_B >= 1",
             iv.sfA, iv.sfB);
    fatal_if(iv.backoff == 0, "scenario: retry backoff must be > 0");
    ivs_.push_back(iv);
    return *this;
}

ScenarioSchedule &
ScenarioSchedule::writeSpike(Tick at, Tick duration, double scale,
                             int channel)
{
    Intervention iv;
    iv.at = at;
    iv.kind = InterventionKind::WriteSpike;
    iv.duration = duration;
    iv.scale = scale;
    iv.channel = channel;
    return add(iv);
}

ScenarioSchedule &
ScenarioSchedule::bankBusy(Tick at, Tick duration, int channel)
{
    Intervention iv;
    iv.at = at;
    iv.kind = InterventionKind::BankBusy;
    iv.duration = duration;
    iv.channel = channel;
    return add(iv);
}

ScenarioSchedule &
ScenarioSchedule::swapAbortWindow(Tick at, Tick duration,
                                  double probability,
                                  unsigned max_retries, Cycles backoff)
{
    Intervention iv;
    iv.at = at;
    iv.kind = InterventionKind::SwapAbort;
    iv.duration = duration;
    iv.probability = probability;
    iv.maxRetries = max_retries;
    iv.backoff = backoff;
    return add(iv);
}

ScenarioSchedule &
ScenarioSchedule::pinRsmFactors(Tick at, int program, double sf_a,
                                double sf_b)
{
    Intervention iv;
    iv.at = at;
    iv.kind = InterventionKind::PinRsm;
    iv.program = program;
    iv.sfA = sf_a;
    iv.sfB = sf_b;
    return add(iv);
}

ScenarioSchedule &
ScenarioSchedule::unpinRsmFactors(Tick at, int program)
{
    Intervention iv;
    iv.at = at;
    iv.kind = InterventionKind::UnpinRsm;
    iv.program = program;
    return add(iv);
}

ScenarioSchedule &
ScenarioSchedule::pinMdmDecision(Tick at, bool swap)
{
    Intervention iv;
    iv.at = at;
    iv.kind = InterventionKind::PinMdm;
    iv.decisionSwap = swap;
    return add(iv);
}

ScenarioSchedule &
ScenarioSchedule::unpinMdmDecision(Tick at)
{
    Intervention iv;
    iv.at = at;
    iv.kind = InterventionKind::UnpinMdm;
    return add(iv);
}

ScenarioSchedule &
ScenarioSchedule::quiesceAudit(Tick at)
{
    Intervention iv;
    iv.at = at;
    iv.kind = InterventionKind::QuiesceAudit;
    return add(iv);
}

std::uint64_t
ScenarioSchedule::fingerprint() const
{
    if (ivs_.empty())
        return 0;
    std::uint64_t h = 0x5ce7a810'5ce7a810ull;
    for (const Intervention &iv : ivs_) {
        h = hashCombine(h, iv.at);
        h = hashCombine(h, static_cast<std::uint64_t>(iv.kind));
        h = hashCombine(h, iv.duration);
        h = hashCombine(h, doubleBits(iv.scale));
        h = hashCombine(h, doubleBits(iv.probability));
        h = hashCombine(h, static_cast<std::uint64_t>(
                               static_cast<std::int64_t>(iv.channel)));
        h = hashCombine(h, static_cast<std::uint64_t>(
                               static_cast<std::int64_t>(iv.program)));
        h = hashCombine(h, doubleBits(iv.sfA));
        h = hashCombine(h, doubleBits(iv.sfB));
        h = hashCombine(h,
                        static_cast<std::uint64_t>(iv.decisionSwap));
        h = hashCombine(h, static_cast<std::uint64_t>(iv.maxRetries));
        h = hashCombine(h, iv.backoff);
    }
    return h != 0 ? h : 0x9e3779b97f4a7c15ull;
}

namespace
{

std::uint64_t
parseU64(const std::string &path, int lineno, const std::string &key,
         const std::string &val)
{
    char *end = nullptr;
    std::uint64_t v = std::strtoull(val.c_str(), &end, 0);
    fatal_if(end == val.c_str() || *end != '\0',
             "%s:%d: bad integer '%s' for key '%s'", path.c_str(),
             lineno, val.c_str(), key.c_str());
    return v;
}

double
parseDouble(const std::string &path, int lineno,
            const std::string &key, const std::string &val)
{
    char *end = nullptr;
    double v = std::strtod(val.c_str(), &end);
    fatal_if(end == val.c_str() || *end != '\0',
             "%s:%d: bad number '%s' for key '%s'", path.c_str(),
             lineno, val.c_str(), key.c_str());
    return v;
}

InterventionKind
parseKind(const std::string &path, int lineno, const std::string &val)
{
    for (unsigned k = 0;
         k < static_cast<unsigned>(InterventionKind::NumKinds); ++k) {
        auto kind = static_cast<InterventionKind>(k);
        if (val == interventionKindName(kind))
            return kind;
    }
    fatal("%s:%d: unknown intervention kind '%s'", path.c_str(),
          lineno, val.c_str());
}

} // anonymous namespace

ScenarioSchedule
ScenarioSchedule::fromFile(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in.is_open(), "cannot open scenario file '%s'",
             path.c_str());
    ScenarioSchedule s;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);

        Intervention iv;
        bool have_kind = false;
        std::size_t pos = 0;
        bool any = false;
        while (pos < line.size()) {
            while (pos < line.size() &&
                   std::isspace(static_cast<unsigned char>(line[pos])))
                ++pos;
            std::size_t start = pos;
            while (pos < line.size() &&
                   !std::isspace(
                       static_cast<unsigned char>(line[pos])))
                ++pos;
            if (start == pos)
                continue;
            any = true;
            std::string tok = line.substr(start, pos - start);
            std::size_t eq = tok.find('=');
            fatal_if(eq == std::string::npos || eq == 0 ||
                         eq + 1 >= tok.size(),
                     "%s:%d: expected key=value, got '%s'",
                     path.c_str(), lineno, tok.c_str());
            std::string key = tok.substr(0, eq);
            std::string val = tok.substr(eq + 1);
            if (key == "at") {
                iv.at = parseU64(path, lineno, key, val);
            } else if (key == "kind") {
                iv.kind = parseKind(path, lineno, val);
                have_kind = true;
            } else if (key == "duration") {
                iv.duration = parseU64(path, lineno, key, val);
            } else if (key == "scale") {
                iv.scale = parseDouble(path, lineno, key, val);
            } else if (key == "probability") {
                iv.probability = parseDouble(path, lineno, key, val);
            } else if (key == "channel") {
                iv.channel = static_cast<int>(
                    parseDouble(path, lineno, key, val));
            } else if (key == "program") {
                iv.program = static_cast<int>(
                    parseDouble(path, lineno, key, val));
            } else if (key == "sf_a") {
                iv.sfA = parseDouble(path, lineno, key, val);
            } else if (key == "sf_b") {
                iv.sfB = parseDouble(path, lineno, key, val);
            } else if (key == "decision") {
                fatal_if(val != "swap" && val != "noswap",
                         "%s:%d: decision must be swap or noswap, "
                         "got '%s'",
                         path.c_str(), lineno, val.c_str());
                iv.decisionSwap = (val == "swap");
            } else if (key == "max_retries") {
                iv.maxRetries = static_cast<unsigned>(
                    parseU64(path, lineno, key, val));
            } else if (key == "backoff") {
                iv.backoff = parseU64(path, lineno, key, val);
            } else {
                fatal("%s:%d: unknown key '%s'", path.c_str(), lineno,
                      key.c_str());
            }
        }
        if (!any)
            continue;
        fatal_if(!have_kind, "%s:%d: intervention line without kind=",
                 path.c_str(), lineno);
        s.add(iv);
    }
    return s;
}

void
ScenarioConfig::initFromEnv()
{
    const char *f = std::getenv("PROFESS_SCENARIO");
    if (f != nullptr && f[0] != '\0') {
        file = f;
        schedule = ScenarioSchedule::fromFile(file);
        active = true;
    }
}

void
ScenarioConfig::initFromArgs(int &argc, char **argv)
{
    initFromEnv();
    std::string flag_file;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        std::string a(argv[i]);
        if (a == "--scenario" && i + 1 < argc) {
            flag_file = argv[++i];
        } else if (a.rfind("--scenario=", 0) == 0) {
            flag_file = a.substr(std::strlen("--scenario="));
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    argv[argc] = nullptr;
    if (!flag_file.empty()) {
        file = flag_file;
        schedule = ScenarioSchedule::fromFile(file);
        active = true;
    }
}

ScenarioConfig &
ScenarioConfig::global()
{
    static ScenarioConfig cfg;
    return cfg;
}

const char *
ScenarioController::eventName(EventCode c)
{
    switch (c) {
      case EventCode::WriteSpikeBegin:
        return "write_spike_begin";
      case EventCode::WriteSpikeEnd:
        return "write_spike_end";
      case EventCode::BankBusy:
        return "bank_busy";
      case EventCode::AbortWindowBegin:
        return "abort_window_begin";
      case EventCode::AbortWindowEnd:
        return "abort_window_end";
      case EventCode::RsmPin:
        return "rsm_pin";
      case EventCode::RsmUnpin:
        return "rsm_unpin";
      case EventCode::MdmPin:
        return "mdm_pin";
      case EventCode::MdmUnpin:
        return "mdm_unpin";
      case EventCode::PinUnsupported:
        return "pin_unsupported";
      case EventCode::QuiesceAuditRun:
        return "quiesce_audit";
      case EventCode::QuiesceDeferred:
        return "quiesce_deferred";
      case EventCode::QuiesceGiveup:
        return "quiesce_giveup";
      case EventCode::SwapAbortInjected:
        return "swap_abort_injected";
      case EventCode::SwapRetry:
        return "swap_retry";
      case EventCode::SwapDegraded:
        return "swap_degraded";
      case EventCode::BankBusyRearm:
        return "bank_busy_rearm";
      default:
        return "unknown";
    }
}

ScenarioController::ScenarioController(const ScenarioSchedule &schedule,
                                       std::uint64_t seed)
    : schedule_(schedule),
      rng_(seed, /*stream=*/0x5ce7a810u)
{
    // Pre-create every event counter: StatSet entries materialize
    // on first inc(), but registerTelemetry() snapshots the set at
    // attach time — before any event fired — so zero counters must
    // already exist to be dumped (and "never happened" is itself a
    // result worth reporting).
    for (unsigned c = 0;
         c < static_cast<unsigned>(EventCode::NumCodes); ++c)
        stats_.inc(eventName(static_cast<EventCode>(c)), 0);
}

void
ScenarioController::attach(System &sys)
{
    panic_if(sys_ != nullptr, "scenario controller attached twice");
    sys_ = &sys;
    eq_ = &sys.eventQueue();
    sys.controller().setFaultInjector(this);
    Tick now = eq_->now();
    for (const Intervention &iv : schedule_.interventions()) {
        // schedule_ is owned by this controller, so the pointer
        // stays valid for the lifetime of the run.
        const Intervention *p = &iv;
        Cycles delay = iv.at > now ? iv.at - now : 0;
        eq_->scheduleIn(delay, [this, p]() { fire(*p); });
    }
}

void
ScenarioController::fire(const Intervention &iv)
{
    Tick now = eq_->now();
    switch (iv.kind) {
      case InterventionKind::WriteSpike: {
        mem::MemorySystem &mem = sys_->memory();
        for (unsigned c = 0; c < mem.numChannels(); ++c) {
            if (iv.channel >= 0 &&
                c != static_cast<unsigned>(iv.channel))
                continue;
            mem.channel(c).setM2WriteScale(iv.scale);
        }
        note(EventCode::WriteSpikeBegin, 0, now, iv.scale,
             static_cast<double>(iv.duration));
        if (iv.duration > 0) {
            int channel = iv.channel;
            eq_->scheduleIn(iv.duration, [this, channel]() {
                mem::MemorySystem &m = sys_->memory();
                for (unsigned c = 0; c < m.numChannels(); ++c) {
                    if (channel >= 0 &&
                        c != static_cast<unsigned>(channel))
                        continue;
                    m.channel(c).setM2WriteScale(1.0);
                }
                note(EventCode::WriteSpikeEnd, 0, eq_->now());
            });
        }
        break;
      }
      case InterventionKind::BankBusy: {
        mem::MemorySystem &mem = sys_->memory();
        Tick until = now + iv.duration;
        for (unsigned c = 0; c < mem.numChannels(); ++c) {
            if (iv.channel >= 0 &&
                c != static_cast<unsigned>(iv.channel))
                continue;
            mem.channel(c).injectBankBusy(mem::Module::M2, until);
        }
        note(EventCode::BankBusy, 0, now,
             static_cast<double>(iv.duration));
        // Keep the window armed: swaps committed inside it reset
        // the involved banks' ready times to the swap end, which
        // would otherwise erase the rest of the throttling window.
        if (now + bankBusyRearmPeriod < until) {
            int channel = iv.channel;
            eq_->scheduleIn(bankBusyRearmPeriod,
                            [this, channel, until]() {
                                rearmBankBusy(channel, until);
                            });
        }
        break;
      }
      case InterventionKind::SwapAbort: {
        abortWindowEnd_ =
            iv.duration > 0 ? now + iv.duration
                            : std::numeric_limits<Tick>::max();
        abortProbability_ = iv.probability;
        abortMaxRetries_ = iv.maxRetries;
        abortBackoff_ = iv.backoff;
        note(EventCode::AbortWindowBegin, 0, now, iv.probability,
             static_cast<double>(iv.duration));
        if (iv.duration > 0) {
            eq_->scheduleIn(iv.duration, [this]() {
                // A newer, longer window may have superseded this
                // one; only the window actually ending now closes.
                if (eq_->now() >= abortWindowEnd_) {
                    abortProbability_ = 0.0;
                    note(EventCode::AbortWindowEnd, 0, eq_->now());
                }
            });
        }
        break;
      }
      case InterventionKind::PinRsm: {
        core::ProfessPolicy *pp = sys_->professPolicy();
        if (pp == nullptr) {
            note(EventCode::PinUnsupported, 0, now);
            break;
        }
        if (iv.program < 0) {
            for (unsigned p = 0; p < sys_->numPrograms(); ++p)
                pp->rsm().pinFactors(static_cast<ProgramId>(p),
                                     iv.sfA, iv.sfB);
        } else {
            pp->rsm().pinFactors(
                static_cast<ProgramId>(iv.program), iv.sfA, iv.sfB);
        }
        note(EventCode::RsmPin, 0, now, iv.sfA, iv.sfB);
        break;
      }
      case InterventionKind::UnpinRsm: {
        core::ProfessPolicy *pp = sys_->professPolicy();
        if (pp == nullptr) {
            note(EventCode::PinUnsupported, 0, now);
            break;
        }
        if (iv.program < 0) {
            for (unsigned p = 0; p < sys_->numPrograms(); ++p)
                pp->rsm().unpinFactors(static_cast<ProgramId>(p));
        } else {
            pp->rsm().unpinFactors(
                static_cast<ProgramId>(iv.program));
        }
        note(EventCode::RsmUnpin, 0, now);
        break;
      }
      case InterventionKind::PinMdm:
      case InterventionKind::UnpinMdm: {
        core::Mdm *mdm = nullptr;
        if (core::ProfessPolicy *pp = sys_->professPolicy()) {
            mdm = &pp->mdm();
        } else if (auto *mp = dynamic_cast<core::MdmPolicy *>(
                       &sys_->policy())) {
            mdm = &mp->engine();
        }
        if (mdm == nullptr) {
            note(EventCode::PinUnsupported, 0, now);
        } else if (iv.kind == InterventionKind::PinMdm) {
            mdm->pinDecision(iv.decisionSwap
                                 ? policy::Decision::Swap
                                 : policy::Decision::NoSwap);
            note(EventCode::MdmPin, 0, now,
                 iv.decisionSwap ? 1.0 : 0.0);
        } else {
            mdm->unpinDecision();
            note(EventCode::MdmUnpin, 0, now);
        }
        break;
      }
      case InterventionKind::QuiesceAudit:
        runQuiesceAudit(iv, 0);
        break;
      default:
        panic("scenario: firing invalid intervention kind %u",
              static_cast<unsigned>(iv.kind));
    }
}

void
ScenarioController::rearmBankBusy(int channel, Tick until)
{
    Tick now = eq_->now();
    if (now >= until)
        return;
    mem::MemorySystem &mem = sys_->memory();
    for (unsigned c = 0; c < mem.numChannels(); ++c) {
        if (channel >= 0 && c != static_cast<unsigned>(channel))
            continue;
        // Re-bumping is a max(), so it is idempotent for banks
        // still holding the window and only lifts banks a swap
        // reset below it.
        mem.channel(c).injectBankBusy(mem::Module::M2, until);
    }
    note(EventCode::BankBusyRearm, 0, now,
         static_cast<double>(until - now));
    if (now + bankBusyRearmPeriod < until) {
        eq_->scheduleIn(bankBusyRearmPeriod,
                        [this, channel, until]() {
                            rearmBankBusy(channel, until);
                        });
    }
}

void
ScenarioController::runQuiesceAudit(const Intervention &iv,
                                    unsigned deferrals)
{
    Tick now = eq_->now();
    if (!sys_->controller().quiescent()) {
        if (deferrals >= quiesceMaxDeferrals) {
            note(EventCode::QuiesceGiveup, 0, now,
                 static_cast<double>(deferrals));
            return;
        }
        note(EventCode::QuiesceDeferred, 0, now,
             static_cast<double>(deferrals));
        const Intervention *p = &iv;
        eq_->scheduleIn(quiesceBackoff, [this, p, deferrals]() {
            runQuiesceAudit(*p, deferrals + 1);
        });
        return;
    }
    // Quiescent: no fill or swap is in flight, so every cached
    // group's q_I snapshots must agree with the live ST QACs, and
    // all structural invariants must hold.
    sys_->controller().auditStcQacCoherence();
    sys_->auditInvariants();
    note(EventCode::QuiesceAuditRun, 0, now,
         static_cast<double>(deferrals));
}

bool
ScenarioController::swapAborts(std::uint64_t group, Tick now)
{
    if (now >= abortWindowEnd_ || abortProbability_ <= 0.0)
        return false;
    if (rng_.uniform() >= abortProbability_)
        return false;
    note(EventCode::SwapAbortInjected, group, now,
         abortProbability_);
    return true;
}

void
ScenarioController::noteSwapRetry(std::uint64_t group, Tick now)
{
    note(EventCode::SwapRetry, group, now);
}

void
ScenarioController::noteSwapDegraded(std::uint64_t group, Tick now)
{
    note(EventCode::SwapDegraded, group, now);
}

std::uint64_t
ScenarioController::eventTotal() const
{
    std::uint64_t total = 0;
    for (const auto &kv : stats_.counters())
        total += kv.second;
    return total;
}

void
ScenarioController::registerTelemetry(
    telemetry::StatRegistry &registry, const std::string &prefix)
{
    registry.addSet(prefix, stats_);
}

void
ScenarioController::note(EventCode code, std::uint64_t group,
                         Tick now, double a, double b)
{
    stats_.inc(eventName(code));
    if (PROFESS_UNLIKELY(trace_ != nullptr)) {
        telemetry::TraceRecord r;
        r.tick = now;
        r.group = group;
        r.a = a;
        r.b = b;
        r.detail = static_cast<std::uint32_t>(code);
        r.kind = static_cast<std::uint8_t>(
            telemetry::TraceKind::ScenarioEvent);
        trace_->push(r);
    }
}

} // namespace sim

} // namespace profess
