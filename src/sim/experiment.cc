#include "sim/experiment.hh"

#include <bit>
#include <cstdio>
#include <cstdlib>

#include "common/rng.hh"
#include "sim/run_telemetry.hh"
#include "sim/scenario.hh"

#if PROFESS_DETSAN
#include "common/detsan.hh"
#endif

namespace profess
{

namespace sim
{

std::uint64_t
deriveSeed(std::uint64_t base, std::string_view policy,
           std::string_view mix, std::uint64_t sweep_point)
{
    std::uint64_t h = mix64(base);
    h = hashCombine(h, policy);
    h = hashCombine(h, mix);
    h = hashCombine(h, sweep_point);
    // Trace sources mix small slot offsets into the seed; keep the
    // derived seed nonzero and well-spread.
    return h == 0 ? 0x9e3779b97f4a7c15ull : h;
}

std::uint64_t
configFingerprint(const SystemConfig &cfg, double footprint_scale)
{
    auto fp = [](double d) {
        return std::bit_cast<std::uint64_t>(d);
    };
    std::uint64_t h = mix64(0xC0F1C0F1ull);
    h = hashCombine(h, cfg.numChannels);
    h = hashCombine(h, cfg.m1BytesPerChannel);
    h = hashCombine(h, cfg.m2BytesPerChannel);
    h = hashCombine(h, cfg.slotsPerGroup);
    h = hashCombine(h, cfg.numRegions);
    h = hashCombine(h, fp(cfg.m2WriteScale));
    h = hashCombine(h, cfg.stc.capacityBytes);
    h = hashCombine(h, cfg.stc.ways);
    h = hashCombine(h, cfg.stc.entryBytes);
    h = hashCombine(h, cfg.core.width);
    h = hashCombine(h, cfg.core.robSize);
    h = hashCombine(h, cfg.core.maxOutstanding);
    h = hashCombine(h, cfg.core.coreCyclesPerTick);
    h = hashCombine(h, cfg.core.instrQuota);
    h = hashCombine(h, cfg.core.warmupInstr);
    h = hashCombine(h, static_cast<std::uint64_t>(
                           cfg.modelStTraffic));
    h = hashCombine(h, cfg.msamp);
    h = hashCombine(h, cfg.statsFoldInterval);
    h = hashCombine(h, fp(cfg.professFactorThreshold));
    h = hashCombine(h, fp(cfg.professProductThreshold));
    h = hashCombine(h, cfg.minBenefit);
    h = hashCombine(h, cfg.allocSeed);
    h = hashCombine(h, static_cast<std::uint64_t>(
                           cfg.rsmPerRegionStats));
    h = hashCombine(h, fp(footprint_scale));
    return h;
}

std::string
runIdentityKey(const SystemConfig &cfg, double footprint_scale,
               const std::string &label, const std::string &policy,
               const std::vector<std::string> &programs,
               std::uint64_t seed_base)
{
    std::string key =
        std::to_string(configFingerprint(cfg, footprint_scale));
    key += '|';
    key += label;
    key += '|';
    key += policy;
    for (const auto &p : programs) {
        key += '|';
        key += p;
    }
    key += '|';
    key += std::to_string(seed_base);
    return key;
}

double
AloneIpcCache::getOrCompute(const std::string &key,
                            const std::function<double()> &compute)
{
    std::shared_future<double> fut;
    std::promise<double> prom;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = map_.find(key);
        if (it == map_.end()) {
            owner = true;
            fut = prom.get_future().share();
            map_.emplace(key, fut);
        } else {
            fut = it->second;
        }
    }
    if (owner) {
        // Compute in the requesting thread; concurrent requesters
        // for the same key block on the shared future.
        try {
            prom.set_value(compute());
        } catch (...) {
            prom.set_exception(std::current_exception());
            {
                std::lock_guard<std::mutex> lk(mu_);
                map_.erase(key);
            }
            throw;
        }
    }
    return fut.get();
}

void
AloneIpcCache::clear()
{
    std::lock_guard<std::mutex> lk(mu_);
    map_.clear();
}

std::size_t
AloneIpcCache::size() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return map_.size();
}

AloneIpcCache &
AloneIpcCache::global()
{
    static AloneIpcCache cache;
    return cache;
}

std::uint64_t
ExperimentRunner::instrFromEnv(std::uint64_t def)
{
    const char *s = std::getenv("PROFESS_INSTR");
    if (s == nullptr || *s == '\0')
        return def;
    char *end = nullptr;
    std::uint64_t v = std::strtoull(s, &end, 0);
    fatal_if(end == s || *end != '\0' || v == 0,
             "PROFESS_INSTR='%s' is not a positive integer", s);
    return v;
}

RunResult
ExperimentRunner::run(const std::string &policy,
                      const std::vector<std::string> &programs,
                      std::uint64_t seed_base,
                      const std::string &label)
{
    std::vector<std::unique_ptr<trace::TraceSource>> sources;
    sources.reserve(programs.size());
    for (std::size_t i = 0; i < programs.size(); ++i) {
        sources.push_back(trace::makeSpecSource(
            programs[i], footprintScale_,
            seed_base + 1009 * (i + 1)));
    }

    System sys(base_, policy, std::move(sources));

    // Scenario interventions, when loaded, attach before telemetry
    // so injected events are visible to the sinks.  The seed is
    // derived purely from the job identity (never from worker id or
    // batch position), keeping fault schedules bit-identical at any
    // --jobs N.
    std::unique_ptr<ScenarioController> scenario;
    const ScenarioConfig &sc = ScenarioConfig::global();
    if (sc.loaded()) {
        std::string joined;
        for (const auto &p : programs)
            joined += (joined.empty() ? "" : "+") + p;
        scenario = std::make_unique<ScenarioController>(
            sc.schedule,
            deriveSeed(seed_base ^ 0x5ce7a810u, policy, joined));
        scenario->attach(sys);
    }

    // Telemetry is observational only: the bundle is attached after
    // construction and never feeds back into the simulation, so
    // labelled runs stay bit-identical to clean ones.
    std::unique_ptr<RunTelemetry> telemetry;
    const TelemetryConfig &tc = TelemetryConfig::global();
    if (!label.empty() && tc.enabled()) {
        telemetry = std::make_unique<RunTelemetry>(
            tc, label + "_" + policy);
        sys.attachTelemetry(*telemetry);
        if (scenario != nullptr) {
            scenario->registerTelemetry(telemetry->registry(),
                                        "scenario");
            scenario->setTraceSink(telemetry->decisionSink());
        }
    }

    RunResult r;
    r.policy = policy;
    r.programs = programs;
    r.completed = sys.run();
    // The extraction-order audit covers every run's queue — serial
    // or parallel-worker — in every build type (the per-extraction
    // state it checks is itself PROFESS_AUDIT-gated).
    sys.eventQueue().auditInvariants();

#if PROFESS_DETSAN
    // Journal this run's digests under its full identity.  If the
    // identical identity runs again in this process (any worker,
    // any --jobs N), the digests must match exactly.  The identity
    // must cover everything that legitimately changes the event
    // stream: an attached epoch sampler schedules its own queue
    // events, and a scenario schedule injects interventions — an
    // instrumented and a bare run of the same workload are
    // different trajectories, not a determinism violation.  The
    // config fingerprint distinguishes sweep points the same way
    // the AloneIpcCache keys do.
    {
        std::string dkey = runIdentityKey(
            base_, footprintScale_, label, policy, programs,
            seed_base);
        dkey += telemetry != nullptr
                    ? "|t" + std::to_string(tc.epochInterval)
                    : "|t-";
        if (sc.loaded())
            dkey += "|s" + std::to_string(sc.fingerprint());
        detsan::RunDigest dig;
        dig.events = sys.eventQueue().executed();
        dig.extraction = sys.eventQueue().detsanDigest();
        if (telemetry != nullptr) {
            if (telemetry->sampler() != nullptr) {
                dig.epochs = telemetry->sampler()->epochs();
                dig.epochState =
                    telemetry->sampler()->detsanDigest();
            }
            // Final stats ride along: a divergence that cancels
            // out of the sampled epochs still flips this digest.
            dig.stats = telemetry->registry().size();
            dig.statState =
                detsan::registryDigest(telemetry->registry());
        }
        detsan::Journal::global().record(dkey, dig);
    }
#endif

    unsigned n = sys.numPrograms();
    std::uint64_t served_m1_total = 0;
    for (unsigned i = 0; i < n; ++i) {
        r.ipc.push_back(sys.core(i).quotaReached()
                            ? sys.core(i).ipcAtQuota()
                            : 0.0);
        const auto &ps =
            sys.controller().programStats(static_cast<ProgramId>(i));
        r.served.push_back(ps.served);
        r.servedM1.push_back(ps.servedFromM1);
        served_m1_total += ps.servedFromM1;
    }
    // All memory-side statistics were reset at the warm-up
    // boundary, so energy integrates over the measurement window.
    r.seconds = sys.measuredSeconds();
    r.joules = sys.memory().totalJoules(r.seconds);
    r.watts = sys.memory().averageWatts(r.seconds);
    r.servedTotal = sys.controller().servedTotal();
    r.swaps = sys.controller().swapCount();
    r.stcHitRate = sys.controller().stcHitRate();
    r.meanReadLatencyNs =
        sys.memory().meanReadLatency() / mem::mcCyclesPerNs;
    r.m1Fraction =
        r.servedTotal > 0
            ? static_cast<double>(served_m1_total) /
                  static_cast<double>(r.servedTotal)
            : 0.0;
    r.swapFraction =
        r.servedTotal > 0
            ? static_cast<double>(r.swaps) /
                  static_cast<double>(r.servedTotal)
            : 0.0;
    std::uint64_t m2_writes = 0;
    std::uint64_t demand_writes = 0;
    for (unsigned c = 0; c < sys.memory().numChannels(); ++c) {
        m2_writes +=
            sys.memory().channel(c).energy().m2WriteBursts();
        demand_writes +=
            sys.memory().channel(c).stats().counter("demand_writes");
    }
    std::uint64_t swap_bursts =
        r.swaps * (sys.controller().layout().blockBytes / 64);
    std::uint64_t m2_demand_writes =
        m2_writes > swap_bursts ? m2_writes - swap_bursts : 0;
    r.m2WriteFraction =
        demand_writes > 0
            ? static_cast<double>(m2_demand_writes) /
                  static_cast<double>(demand_writes)
            : 0.0;
    std::uint64_t row_hits =
        sys.memory().totalCounter("row_hits");
    std::uint64_t row_misses =
        sys.memory().totalCounter("row_misses");
    r.rowHitRate =
        row_hits + row_misses > 0
            ? static_cast<double>(row_hits) /
                  static_cast<double>(row_hits + row_misses)
            : 0.0;

    if (telemetry != nullptr) {
        std::string workload;
        for (const auto &p : programs)
            workload += (workload.empty() ? "" : "+") + p;
        telemetry->finish(policy, workload, seed_base,
                          configJson(base_), r.completed);
    }
    return r;
}

double
ExperimentRunner::aloneIpc(const std::string &policy,
                           const std::string &program,
                           std::uint64_t seed_base)
{
    // The scenario fingerprint keys the cache too: reference runs
    // executed under a fault schedule must never serve as baselines
    // for scenario-free runs (or for a different schedule).
    char key[192];
    std::snprintf(key, sizeof(key), "%016llx/%016llx/%llu/%s/%s",
                  static_cast<unsigned long long>(
                      configFingerprint(base_, footprintScale_)),
                  static_cast<unsigned long long>(
                      ScenarioConfig::global().fingerprint()),
                  static_cast<unsigned long long>(seed_base),
                  policy.c_str(), program.c_str());
    return cache_->getOrCompute(key, [&]() {
        RunResult r = run(policy, {program}, seed_base);
        fatal_if(!r.completed,
                 "stand-alone run of %s did not complete",
                 program.c_str());
        return r.ipc[0];
    });
}

MultiMetrics
ExperimentRunner::runMulti(const std::string &policy,
                           const WorkloadSpec &workload)
{
    return runMulti(policy, workload, 1);
}

MultiMetrics
ExperimentRunner::runMulti(const std::string &policy,
                           const WorkloadSpec &workload,
                           std::uint64_t seed_base)
{
    std::vector<std::string> programs(workload.programs.begin(),
                                      workload.programs.end());
    MultiMetrics m;
    m.run = run(policy, programs, seed_base, workload.name);
    for (const auto &p : programs)
        m.aloneIpc.push_back(aloneIpc(policy, p));
    m.slowdown = slowdowns(m.aloneIpc, m.run.ipc);
    m.weightedSpeedup = weightedSpeedup(m.slowdown);
    m.maxSlowdown = unfairness(m.slowdown);
    m.efficiency =
        energyEfficiency(m.run.servedTotal, m.run.joules);
    return m;
}

std::string
percentDelta(double ratio)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.1f%%",
                  (ratio - 1.0) * 100.0);
    return buf;
}

} // namespace sim

} // namespace profess
