#include "sim/experiment.hh"

#include <cstdio>
#include <cstdlib>

namespace profess
{

namespace sim
{

std::uint64_t
ExperimentRunner::instrFromEnv(std::uint64_t def)
{
    const char *s = std::getenv("PROFESS_INSTR");
    if (s == nullptr || *s == '\0')
        return def;
    char *end = nullptr;
    std::uint64_t v = std::strtoull(s, &end, 0);
    fatal_if(end == s || *end != '\0' || v == 0,
             "PROFESS_INSTR='%s' is not a positive integer", s);
    return v;
}

RunResult
ExperimentRunner::run(const std::string &policy,
                      const std::vector<std::string> &programs,
                      std::uint64_t seed_base)
{
    std::vector<std::unique_ptr<trace::TraceSource>> sources;
    sources.reserve(programs.size());
    for (std::size_t i = 0; i < programs.size(); ++i) {
        sources.push_back(trace::makeSpecSource(
            programs[i], footprintScale_,
            seed_base + 1009 * (i + 1)));
    }

    System sys(base_, policy, std::move(sources));
    RunResult r;
    r.policy = policy;
    r.programs = programs;
    r.completed = sys.run();

    unsigned n = sys.numPrograms();
    std::uint64_t served_m1_total = 0;
    for (unsigned i = 0; i < n; ++i) {
        r.ipc.push_back(sys.core(i).quotaReached()
                            ? sys.core(i).ipcAtQuota()
                            : 0.0);
        const auto &ps =
            sys.controller().programStats(static_cast<ProgramId>(i));
        r.served.push_back(ps.served);
        r.servedM1.push_back(ps.servedFromM1);
        served_m1_total += ps.servedFromM1;
    }
    // All memory-side statistics were reset at the warm-up
    // boundary, so energy integrates over the measurement window.
    r.seconds = sys.measuredSeconds();
    r.joules = sys.memory().totalJoules(r.seconds);
    r.watts = sys.memory().averageWatts(r.seconds);
    r.servedTotal = sys.controller().servedTotal();
    r.swaps = sys.controller().swapCount();
    r.stcHitRate = sys.controller().stcHitRate();
    r.meanReadLatencyNs =
        sys.memory().meanReadLatency() / mem::mcCyclesPerNs;
    r.m1Fraction =
        r.servedTotal > 0
            ? static_cast<double>(served_m1_total) /
                  static_cast<double>(r.servedTotal)
            : 0.0;
    r.swapFraction =
        r.servedTotal > 0
            ? static_cast<double>(r.swaps) /
                  static_cast<double>(r.servedTotal)
            : 0.0;
    std::uint64_t m2_writes = 0;
    std::uint64_t demand_writes = 0;
    for (unsigned c = 0; c < sys.memory().numChannels(); ++c) {
        m2_writes +=
            sys.memory().channel(c).energy().m2WriteBursts();
        demand_writes +=
            sys.memory().channel(c).stats().counter("demand_writes");
    }
    std::uint64_t swap_bursts =
        r.swaps * (sys.controller().layout().blockBytes / 64);
    std::uint64_t m2_demand_writes =
        m2_writes > swap_bursts ? m2_writes - swap_bursts : 0;
    r.m2WriteFraction =
        demand_writes > 0
            ? static_cast<double>(m2_demand_writes) /
                  static_cast<double>(demand_writes)
            : 0.0;
    std::uint64_t row_hits =
        sys.memory().totalCounter("row_hits");
    std::uint64_t row_misses =
        sys.memory().totalCounter("row_misses");
    r.rowHitRate =
        row_hits + row_misses > 0
            ? static_cast<double>(row_hits) /
                  static_cast<double>(row_hits + row_misses)
            : 0.0;
    return r;
}

double
ExperimentRunner::aloneIpc(const std::string &policy,
                           const std::string &program)
{
    std::string key = policy + "/" + program;
    auto it = aloneCache_.find(key);
    if (it != aloneCache_.end())
        return it->second;
    RunResult r = run(policy, {program});
    fatal_if(!r.completed, "stand-alone run of %s did not complete",
             program.c_str());
    aloneCache_[key] = r.ipc[0];
    return r.ipc[0];
}

MultiMetrics
ExperimentRunner::runMulti(const std::string &policy,
                           const WorkloadSpec &workload)
{
    std::vector<std::string> programs(workload.programs.begin(),
                                      workload.programs.end());
    MultiMetrics m;
    m.run = run(policy, programs);
    for (const auto &p : programs)
        m.aloneIpc.push_back(aloneIpc(policy, p));
    m.slowdown = slowdowns(m.aloneIpc, m.run.ipc);
    m.weightedSpeedup = weightedSpeedup(m.slowdown);
    m.maxSlowdown = unfairness(m.slowdown);
    m.efficiency =
        energyEfficiency(m.run.servedTotal, m.run.joules);
    return m;
}

std::string
percentDelta(double ratio)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.1f%%",
                  (ratio - 1.0) * 100.0);
    return buf;
}

} // namespace sim

} // namespace profess
