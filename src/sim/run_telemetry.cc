#include "sim/run_telemetry.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>

#include "common/latency_attr.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "core/rsm.hh"
#include "sim/system.hh"

namespace profess
{

namespace sim
{

/** mkdir -p for the shallow DIR/<label> layout used here. */
void
makeDirs(const std::string &path)
{
    std::string partial;
    for (std::size_t i = 0; i <= path.size(); ++i) {
        if (i == path.size() || path[i] == '/') {
            if (!partial.empty() && partial != ".") {
                if (::mkdir(partial.c_str(), 0777) != 0 &&
                    errno != EEXIST) {
                    fatal("cannot create directory '%s': %s",
                          partial.c_str(), std::strerror(errno));
                }
            }
        }
        if (i < path.size())
            partial += path[i];
    }
}

namespace
{

std::FILE *
openOut(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        warn("cannot open telemetry output '%s': %s", path.c_str(),
             std::strerror(errno));
    }
    return f;
}

} // anonymous namespace

void
TelemetryConfig::initFromEnv()
{
    const char *t = std::getenv("PROFESS_TRACE");
    if (t != nullptr && *t != '\0' && std::strcmp(t, "0") != 0)
        trace = true;
    const char *d = std::getenv("PROFESS_TELEMETRY_OUT");
    if (d != nullptr && *d != '\0')
        outDir = d;
    const char *e = std::getenv("PROFESS_EPOCH_TICKS");
    if (e != nullptr && *e != '\0') {
        char *end = nullptr;
        unsigned long long v = std::strtoull(e, &end, 0);
        fatal_if(end == e || *end != '\0' || v == 0,
                 "PROFESS_EPOCH_TICKS='%s' is not a positive "
                 "integer",
                 e);
        epochInterval = static_cast<Tick>(v);
    }
    const char *m = std::getenv("PROFESS_METRICS_OUT");
    if (m != nullptr && *m != '\0')
        metricsOut = m;
}

void
TelemetryConfig::initFromArgs(int &argc, char **argv)
{
    initFromEnv();
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--trace") == 0) {
            trace = true;
            continue;
        }
        if (std::strcmp(a, "--telemetry-out") == 0) {
            fatal_if(i + 1 >= argc, "--telemetry-out needs a value");
            outDir = argv[++i];
            continue;
        }
        if (std::strncmp(a, "--telemetry-out=", 16) == 0) {
            outDir = a + 16;
            continue;
        }
        if (std::strcmp(a, "--metrics-out") == 0) {
            fatal_if(i + 1 >= argc, "--metrics-out needs a value");
            metricsOut = argv[++i];
            continue;
        }
        if (std::strncmp(a, "--metrics-out=", 14) == 0) {
            metricsOut = a + 14;
            continue;
        }
        if (std::strcmp(a, "--epoch-ticks") == 0 ||
            std::strncmp(a, "--epoch-ticks=", 14) == 0) {
            const char *val;
            if (a[13] == '=') {
                val = a + 14;
            } else {
                fatal_if(i + 1 >= argc, "--epoch-ticks needs a value");
                val = argv[++i];
            }
            char *end = nullptr;
            unsigned long long v = std::strtoull(val, &end, 0);
            fatal_if(end == val || *end != '\0' || v == 0,
                     "--epoch-ticks '%s' is not a positive integer",
                     val);
            epochInterval = static_cast<Tick>(v);
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    argv[argc] = nullptr;
}

TelemetryConfig &
TelemetryConfig::global()
{
    static TelemetryConfig cfg;
    return cfg;
}

//
// MetricsCollector
//

std::string
MetricsCollector::shardDir(const std::string &path)
{
    return path + ".shards";
}

std::string
MetricsCollector::shardFileName(const std::string &run_label)
{
    // sanitizeLabel can alias distinct labels ("a/b" vs "a_b"); a
    // hash of the exact label keeps the file names one-to-one.
    std::uint64_t h = hashCombine(mix64(0x54a8d0ull), run_label);
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), "-%016llx.shard",
                  static_cast<unsigned long long>(h));
    return sanitizeLabel(run_label) + suffix;
}

void
MetricsCollector::record(const std::string &path,
                         telemetry::MetricsSnapshot snap)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (!exitFlushArmed_ && this == &global()) {
        // global()'s function-local static is constructed before
        // this registration, so it is destroyed after the handler
        // runs: the flush always sees a live collector.
        std::atexit([]() { MetricsCollector::global().flush(); });
        exitFlushArmed_ = true;
    }
    // The shard makes the run durable the moment it completes: a
    // killed sweep loses at most the in-flight run, and a resumed
    // one (SweepDriver) rebuilds the exposition from shards alone.
    const std::string dir = shardDir(path);
    makeDirs(dir);
    telemetry::writeMetricsShardFile(
        dir + "/" + shardFileName(snap.run), snap);
    byPath_[path][snap.run] = std::move(snap);
}

void
MetricsCollector::flush()
{
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto &kv : byPath_) {
        std::vector<telemetry::MetricsSnapshot> sorted;
        sorted.reserve(kv.second.size());
        for (const auto &rkv : kv.second)
            sorted.push_back(rkv.second);
        telemetry::writeOpenMetricsFile(kv.first, sorted);
    }
}

void
MetricsCollector::mergeShards(const std::string &path)
{
    std::lock_guard<std::mutex> lk(mu_);
    const std::string dir = shardDir(path);
    ::DIR *d = ::opendir(dir.c_str());
    fatal_if(d == nullptr, "cannot open shard directory '%s': %s",
             dir.c_str(), std::strerror(errno));
    std::vector<std::string> names;
    while (struct dirent *de = ::readdir(d)) {
        std::string name = de->d_name;
        // Skip "."/".." and any ".tmp" left by a killed writer; a
        // shard is only ever observed complete (tmp+fsync+rename).
        if (name.size() > 6 &&
            name.compare(name.size() - 6, 6, ".shard") == 0)
            names.push_back(std::move(name));
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());
    std::vector<telemetry::MetricsSnapshot> runs;
    runs.reserve(names.size());
    for (const std::string &name : names)
        runs.push_back(
            telemetry::readMetricsShardFile(dir + "/" + name));
    std::sort(runs.begin(), runs.end(),
              [](const telemetry::MetricsSnapshot &a,
                 const telemetry::MetricsSnapshot &b) {
                  return a.run < b.run;
              });
    telemetry::writeOpenMetricsFileAtomic(path, runs);
    byPath_.erase(path);
}

std::size_t
MetricsCollector::size() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t n = 0;
    for (const auto &kv : byPath_)
        n += kv.second.size();
    return n;
}

void
MetricsCollector::clear()
{
    std::lock_guard<std::mutex> lk(mu_);
    byPath_.clear();
}

MetricsCollector &
MetricsCollector::global()
{
    static MetricsCollector collector;
    return collector;
}

void
registerFairnessGauges(telemetry::StatRegistry &registry,
                       const core::Rsm &rsm, unsigned num_programs)
{
    const core::Rsm *r = &rsm;
    auto slowdown = [r](unsigned i) {
        auto id = static_cast<ProgramId>(i);
        return std::max(r->sfA(id), r->sfB(id));
    };
    for (unsigned i = 0; i < num_programs; ++i) {
        registry.addProbe("fairness.p" + std::to_string(i) +
                              ".slowdown",
                          [slowdown, i]() { return slowdown(i); });
    }
    registry.addProbe("fairness.weighted_speedup",
                      [slowdown, num_programs]() {
                          double ws = 0.0;
                          for (unsigned i = 0; i < num_programs;
                               ++i) {
                              double s = slowdown(i);
                              ws += s > 0.0 ? 1.0 / s : 0.0;
                          }
                          return ws;
                      });
    registry.addProbe("fairness.max_slowdown",
                      [slowdown, num_programs]() {
                          double mx = 0.0;
                          for (unsigned i = 0; i < num_programs;
                               ++i)
                              mx = std::max(mx, slowdown(i));
                          return mx;
                      });
    registry.addProbe("fairness.unfairness",
                      [slowdown, num_programs]() {
                          double mx = 0.0;
                          double mn = 0.0;
                          for (unsigned i = 0; i < num_programs;
                               ++i) {
                              double s = slowdown(i);
                              mx = std::max(mx, s);
                              mn = (i == 0) ? s : std::min(mn, s);
                          }
                          return mn > 0.0 ? mx / mn : 0.0;
                      });
}

std::string
sanitizeLabel(const std::string &label)
{
    std::string s;
    s.reserve(label.size());
    for (char c : label) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                  c == '-';
        s += ok ? c : '_';
    }
    return s.empty() ? std::string("run") : s;
}

RunTelemetry::RunTelemetry(const TelemetryConfig &cfg,
                           const std::string &label)
    : cfg_(cfg), label_(label),
      wallStart_(std::chrono::steady_clock::now()),
      startedIso_(telemetry::utcNowIso())
{
    if (cfg_.trace) {
        decision_ =
            std::make_unique<telemetry::DecisionTraceSink>();
        chrome_ = std::make_unique<telemetry::ChromeTraceSink>();
    }
    if (!cfg_.outDir.empty()) {
        dir_ = cfg_.outDir + "/" + sanitizeLabel(label_);
        makeDirs(dir_);
    }
}

RunTelemetry::~RunTelemetry()
{
    if (epochsFile_ != nullptr)
        std::fclose(epochsFile_);
}

void
RunTelemetry::startSampler(EventQueue &eq)
{
    if (sampler_ == nullptr) {
        sampler_ = std::make_unique<telemetry::EpochSampler>(
            registry_, cfg_.epochInterval);
        if (!dir_.empty()) {
            epochsFile_ = openOut(dir_ + "/epochs.jsonl");
            sampler_->setOutput(epochsFile_);
        }
    }
    sampler_->start(eq);
}

void
RunTelemetry::stopSampler()
{
    if (sampler_ != nullptr)
        sampler_->stop();
}

telemetry::LatencyAttribution *
RunTelemetry::attribution(unsigned num_programs)
{
    if (attr_ == nullptr) {
        attr_ = std::make_unique<telemetry::LatencyAttribution>(
            num_programs);
        attr_->registerTelemetry(registry_, "latency");
    }
    return attr_.get();
}

void
RunTelemetry::finish(const std::string &policy,
                     const std::string &workload, std::uint64_t seed,
                     const std::string &config_json, bool completed)
{
    if (epochsFile_ != nullptr)
        std::fflush(epochsFile_);

    // The metrics snapshot must happen while the registry's live
    // pointers are valid — i.e. here, not at process exit — and
    // before the no-output-directory early return below.
    if (!cfg_.metricsOut.empty()) {
        MetricsCollector::global().record(
            cfg_.metricsOut,
            telemetry::MetricsSnapshot::capture(registry_, label_));
    }
    if (dir_.empty())
        return;
    telemetry::writeOpenMetricsFile(
        dir_ + "/metrics.prom",
        {telemetry::MetricsSnapshot::capture(registry_, label_)});

    telemetry::RunManifest m;
    m.label = label_;
    m.policy = policy;
    m.workload = workload;
    m.seed = seed;
    m.gitSha = telemetry::gitHeadSha();
    m.config = config_json;
    m.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wallStart_)
            .count();
    m.peakRssKb = telemetry::peakRssKb();
    m.startedIso = startedIso_;
    if (std::FILE *f = openOut(dir_ + "/manifest.json")) {
        m.write(f);
        std::fclose(f);
    }
    if (std::FILE *f = openOut(dir_ + "/stats.json")) {
        std::fprintf(f, "{\"completed\": %s, \"stats\": ",
                     completed ? "true" : "false");
        registry_.dumpJson(f);
        std::fprintf(f, "}\n");
        std::fclose(f);
    }
    if (decision_ != nullptr) {
        if (std::FILE *f = openOut(dir_ + "/decisions.jsonl")) {
            decision_->flushJsonl(f);
            std::fclose(f);
        }
    }
    if (chrome_ != nullptr) {
        if (std::FILE *f = openOut(dir_ + "/trace.json")) {
            chrome_->writeJson(
                f, {{"controller.access", &accessSlot_},
                    {"channel.schedule", &schedSlot_}});
            std::fclose(f);
        }
    }
}

std::string
configJson(const SystemConfig &cfg)
{
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "{\"num_channels\": %u, \"m1_bytes_per_channel\": %llu, "
        "\"m2_bytes_per_channel\": %llu, \"slots_per_group\": %u, "
        "\"num_regions\": %u, \"m2_write_scale\": %.17g, "
        "\"stc_capacity_bytes\": %llu, \"stc_ways\": %u, "
        "\"core_width\": %u, \"rob_size\": %u, "
        "\"max_outstanding\": %u, \"instr_quota\": %llu, "
        "\"warmup_instr\": %llu, \"model_st_traffic\": %s, "
        "\"msamp\": %llu, \"stats_fold_interval\": %llu, "
        "\"factor_threshold\": %.17g, \"product_threshold\": %.17g, "
        "\"min_benefit\": %u, \"alloc_seed\": %llu}",
        cfg.numChannels,
        static_cast<unsigned long long>(cfg.m1BytesPerChannel),
        static_cast<unsigned long long>(cfg.m2BytesPerChannel),
        cfg.slotsPerGroup, cfg.numRegions, cfg.m2WriteScale,
        static_cast<unsigned long long>(cfg.stc.capacityBytes),
        cfg.stc.ways, cfg.core.width, cfg.core.robSize,
        cfg.core.maxOutstanding,
        static_cast<unsigned long long>(cfg.core.instrQuota),
        static_cast<unsigned long long>(cfg.core.warmupInstr),
        cfg.modelStTraffic ? "true" : "false",
        static_cast<unsigned long long>(cfg.msamp),
        static_cast<unsigned long long>(cfg.statsFoldInterval),
        cfg.professFactorThreshold, cfg.professProductThreshold,
        cfg.minBenefit,
        static_cast<unsigned long long>(cfg.allocSeed));
    return buf;
}

} // namespace sim

} // namespace profess
