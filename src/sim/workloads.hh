/**
 * @file
 * The paper's multiprogrammed workloads (Table 10): nineteen
 * four-program mixes of the Table 9 benchmarks.
 */

#ifndef PROFESS_SIM_WORKLOADS_HH
#define PROFESS_SIM_WORKLOADS_HH

#include <array>
#include <string>
#include <vector>

namespace profess
{

namespace sim
{

/** One four-program workload. */
struct WorkloadSpec
{
    const char *name;
    std::array<const char *, 4> programs;
};

/** @return workloads w01..w19 (Table 10). */
const std::vector<WorkloadSpec> &multiprogramWorkloads();

/** @return workload by name, or nullptr. */
const WorkloadSpec *findWorkload(const std::string &name);

} // namespace sim

} // namespace profess

#endif // PROFESS_SIM_WORKLOADS_HH
