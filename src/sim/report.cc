#include "sim/report.hh"

#include <cstdarg>
#include <cstdlib>
#include <sys/stat.h>

#include "common/logging.hh"

namespace profess
{

namespace sim
{

CsvReport::CsvReport(const std::string &path,
                     const std::string &header)
{
    if (path.empty())
        return;
    struct stat st;
    bool fresh = ::stat(path.c_str(), &st) != 0 || st.st_size == 0;
    fp_ = std::fopen(path.c_str(), "a");
    if (fp_ == nullptr) {
        warn("cannot open CSV report '%s'", path.c_str());
        return;
    }
    if (fresh)
        std::fprintf(fp_, "%s\n", header.c_str());
}

CsvReport::~CsvReport()
{
    if (fp_)
        std::fclose(fp_);
}

void
CsvReport::row(const char *fmt, ...)
{
    if (!fp_)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(fp_, fmt, ap);
    va_end(ap);
    std::fprintf(fp_, "\n");
}

const char *
CsvReport::runHeader()
{
    return "experiment,workload,policy,ipc0,m1_fraction,"
           "swap_fraction,stc_hit_rate,read_latency_ns,watts,"
           "served,swaps";
}

void
CsvReport::runRow(const std::string &experiment,
                  const std::string &workload, const RunResult &r)
{
    row("%s,%s,%s,%.6f,%.6f,%.6f,%.6f,%.3f,%.4f,%llu,%llu",
        experiment.c_str(), workload.c_str(), r.policy.c_str(),
        r.ipc.empty() ? 0.0 : r.ipc[0], r.m1Fraction,
        r.swapFraction, r.stcHitRate, r.meanReadLatencyNs, r.watts,
        static_cast<unsigned long long>(r.servedTotal),
        static_cast<unsigned long long>(r.swaps));
}

const char *
CsvReport::multiHeader()
{
    return "experiment,workload,policy,weighted_speedup,"
           "max_slowdown,efficiency,swap_fraction,sdn0,sdn1,sdn2,"
           "sdn3";
}

void
CsvReport::multiRow(const std::string &experiment,
                    const std::string &workload,
                    const MultiMetrics &m)
{
    auto sdn = [&](std::size_t i) {
        return i < m.slowdown.size() ? m.slowdown[i] : 0.0;
    };
    row("%s,%s,%s,%.6f,%.6f,%.6e,%.6f,%.4f,%.4f,%.4f,%.4f",
        experiment.c_str(), workload.c_str(),
        m.run.policy.c_str(), m.weightedSpeedup, m.maxSlowdown,
        m.efficiency, m.run.swapFraction, sdn(0), sdn(1), sdn(2),
        sdn(3));
}

std::string
CsvReport::csvDir()
{
    const char *d = std::getenv("PROFESS_CSV");
    return d ? d : "";
}

} // namespace sim

} // namespace profess
