#include "cpu/cache_filter.hh"

namespace profess
{

namespace cpu
{

bool
CacheFilterSource::next(trace::MemAccess &out)
{
    if (!pendingWritebacks_.empty()) {
        out.vaddr = pendingWritebacks_.front();
        out.isWrite = true;
        out.instGap = 0;
        pendingWritebacks_.pop_front();
        return true;
    }
    trace::MemAccess a;
    while (inner_.next(a)) {
        ++consumed_;
        gapAccum_ += a.instGap + 1;
        cache::Hierarchy::Outcome o = hier_.access(a.vaddr,
                                                   a.isWrite);
        for (Addr wb : o.memWritebacks)
            pendingWritebacks_.push_back(wb);
        if (o.l3Miss) {
            out.vaddr = a.vaddr;
            out.isWrite = false; // demand fills are reads
            out.instGap =
                static_cast<std::uint32_t>(gapAccum_ - 1);
            gapAccum_ = 0;
            return true;
        }
        if (!pendingWritebacks_.empty()) {
            out.vaddr = pendingWritebacks_.front();
            out.isWrite = true;
            out.instGap =
                static_cast<std::uint32_t>(gapAccum_ - 1);
            gapAccum_ = 0;
            pendingWritebacks_.pop_front();
            return true;
        }
    }
    return false;
}

std::uint64_t
CacheFilterSource::footprintBytes() const
{
    return inner_.footprintBytes();
}

void
CacheFilterSource::reset()
{
    inner_.reset();
    hier_ = cache::Hierarchy(hierParams_);
    pendingWritebacks_.clear();
    gapAccum_ = 0;
}

} // namespace cpu

} // namespace profess
