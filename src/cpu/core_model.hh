/**
 * @file
 * Trace-driven out-of-order core model (Table 8: 4-wide, ROB 256).
 *
 * The paper's mechanisms live in the memory controller; what they
 * need from the core is a realistic request stream whose timing
 * reflects ROB-limited run-ahead and MSHR-limited memory-level
 * parallelism.  The model retires non-miss instructions at the core
 * width, issues main-memory reads without blocking until either all
 * MSHRs are busy or the run-ahead distance from the oldest
 * outstanding read exceeds the ROB size, and posts writes to the
 * controller's write path without stalling (store buffer).
 *
 * The core runs at coreCyclesPerTick x the memory-controller clock
 * (3.2 GHz vs 0.8 GHz, Table 8).
 */

#ifndef PROFESS_CPU_CORE_MODEL_HH
#define PROFESS_CPU_CORE_MODEL_HH

#include <functional>
#include <string>
#include <vector>

#include "common/event.hh"
#include "common/inline_function.hh"
#include "common/types.hh"
#include "trace/access.hh"

namespace profess
{

namespace telemetry
{
class StatRegistry;
} // namespace telemetry

namespace cpu
{

/** Where a core sends its main-memory accesses. */
class MemPort
{
  public:
    virtual ~MemPort() = default;

    /**
     * Issue a 64-B access.
     *
     * @param program Issuing program.
     * @param vaddr Virtual byte address.
     * @param is_write True for writes.
     * @param done Completion callback (empty allowed for writes).
     */
    virtual void issue(ProgramId program, Addr vaddr, bool is_write,
                       InlineCallback done) = 0;
};

/** Core configuration. */
struct CoreParams
{
    unsigned width = 4;            ///< retire width (instr/cycle)
    unsigned robSize = 256;
    unsigned maxOutstanding = 16;  ///< MSHRs (outstanding reads)
    unsigned coreCyclesPerTick = 4;
    std::uint64_t instrQuota = 5'000'000;
    /**
     * Instructions executed before measurement begins.  The paper's
     * 500M-instruction runs amortize M1/statistics warm-up within
     * the first ~2% of execution; at the repo's 1/100 scale the
     * same warm-up would occupy a large fraction of the run, so IPC
     * (and, via System, the memory-side statistics) is measured
     * over [warmupInstr, warmupInstr + instrQuota).
     */
    std::uint64_t warmupInstr = 1'000'000;
};

/** The core proper. */
class CoreModel
{
  public:
    /**
     * @param eq Shared event queue.
     * @param params Core configuration.
     * @param source The program's access stream (not owned).
     * @param port Memory-side interface (not owned).
     * @param id Program/core identifier.
     */
    CoreModel(EventQueue &eq, const CoreParams &params,
              trace::TraceSource &source, MemPort &port,
              ProgramId id);

    /** Begin execution (schedules the first advance). */
    void start();

    /** @return instructions retired so far. */
    std::uint64_t retired() const { return instrCount_; }

    /** @return true once the warm-up window has completed. */
    bool warmupDone() const { return warmupDone_; }

    /** @return true once warm-up + quota instructions retired. */
    bool quotaReached() const { return quotaReached_; }

    /** @return IPC over the post-warm-up measurement window. */
    double ipcAtQuota() const;

    /** @return tick at which the quota was reached. */
    Tick quotaTick() const { return quotaTick_; }

    /** @return core cycles elapsed when the quota was reached. */
    std::uint64_t quotaCycles() const { return quotaCycles_; }

    /** @return memory reads / writes issued so far. */
    std::uint64_t memReads() const { return memReads_; }
    std::uint64_t memWrites() const { return memWrites_; }

    /** @return times the source was restarted (repetitions). */
    std::uint64_t repetitions() const { return repetitions_; }

    /** Invoked once when the quota is reached. */
    void setOnQuota(std::function<void()> cb) { onQuota_ = std::move(cb); }

    /** Invoked once when the warm-up window completes. */
    void
    setOnWarmup(std::function<void()> cb)
    {
        onWarmup_ = std::move(cb);
    }

    /** Pause issuing new work (used when a workload ends). */
    void halt() { halted_ = true; }

    const CoreParams &params() const { return params_; }

    /** Register retired/read/write progress probes under `prefix`. */
    void registerTelemetry(telemetry::StatRegistry &registry,
                           const std::string &prefix) const;

  private:
    void advance();
    void onReadComplete(std::uint64_t instr_idx);

    EventQueue &eq_;
    CoreParams params_;
    trace::TraceSource &source_;
    MemPort &port_;
    ProgramId id_;

    trace::MemAccess pending_{};
    bool pendingValid_ = false;
    bool pendingCharged_ = false; ///< gap compute time accounted

    std::uint64_t instrCount_ = 0;
    std::uint64_t frontierCycles_ = 0; ///< core-cycle time frontier
    std::uint64_t instrDebt_ = 0; ///< instructions < one core cycle
    /** Outstanding read instruction indices.  Reads issue with
     *  strictly increasing indices, so the vector stays sorted and
     *  the oldest is front(); completion removes by linear scan
     *  (bounded by maxOutstanding, 16 by default). */
    std::vector<std::uint64_t> outstanding_;

    bool waiting_ = false;   ///< blocked on MSHR/ROB
    bool scheduled_ = false; ///< an advance event is pending
    bool halted_ = false;
    bool syncFrontier_ = true; ///< snap frontier to now on resume

    bool warmupDone_ = false;
    bool quotaReached_ = false;
    Tick quotaTick_ = 0;
    std::uint64_t warmupCycles_ = 0;
    std::uint64_t warmupInstrCount_ = 0;
    std::uint64_t quotaCycles_ = 0;
    std::uint64_t quotaInstrCount_ = 0;
    std::uint64_t memReads_ = 0;
    std::uint64_t memWrites_ = 0;
    std::uint64_t repetitions_ = 0;
    std::function<void()> onQuota_;
    std::function<void()> onWarmup_;
};

} // namespace cpu

} // namespace profess

#endif // PROFESS_CPU_CORE_MODEL_HH
