/**
 * @file
 * Cache-hierarchy trace filter.
 *
 * Wraps an instruction-level TraceSource and pushes every access
 * through an L1/L2/L3 hierarchy (Table 8), emitting only the L3
 * misses (as reads; fills are write-allocate) and the dirty L3
 * victims (as writes) - i.e., the main-memory stream the hybrid
 * controller sees.  Inter-access instruction gaps are accumulated
 * across filtered (cache-hit) accesses.
 *
 * The SPEC-like profiles of trace/spec_profiles.hh already generate
 * post-L3 streams calibrated to Table 9 MPKI, so the main
 * experiments bypass this filter; it exists for instruction-level
 * traces (recorded or synthetic) and is exercised by tests and the
 * cache_study example.
 */

#ifndef PROFESS_CPU_CACHE_FILTER_HH
#define PROFESS_CPU_CACHE_FILTER_HH

#include <deque>

#include "cache/cache.hh"
#include "trace/access.hh"

namespace profess
{

namespace cpu
{

/** TraceSource adapter filtering through a cache hierarchy. */
class CacheFilterSource : public trace::TraceSource
{
  public:
    /**
     * @param inner Instruction-level source (not owned).
     * @param params Hierarchy configuration.
     */
    CacheFilterSource(trace::TraceSource &inner,
                      const cache::Hierarchy::Params &params)
        : inner_(inner), hierParams_(params), hier_(params)
    {
    }

    bool next(trace::MemAccess &out) override;
    std::uint64_t footprintBytes() const override;
    void reset() override;

    /** @return the hierarchy (hit-rate inspection). */
    cache::Hierarchy &hierarchy() { return hier_; }

    /** @return instruction-level accesses consumed so far. */
    std::uint64_t consumed() const { return consumed_; }

  private:
    trace::TraceSource &inner_;
    cache::Hierarchy::Params hierParams_;
    cache::Hierarchy hier_;
    std::deque<Addr> pendingWritebacks_;
    std::uint64_t gapAccum_ = 0;
    std::uint64_t consumed_ = 0;
};

} // namespace cpu

} // namespace profess

#endif // PROFESS_CPU_CACHE_FILTER_HH
