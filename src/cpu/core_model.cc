#include "cpu/core_model.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/telemetry.hh"

namespace profess
{

namespace cpu
{

CoreModel::CoreModel(EventQueue &eq, const CoreParams &params,
                     trace::TraceSource &source, MemPort &port,
                     ProgramId id)
    : eq_(eq), params_(params), source_(source), port_(port), id_(id)
{
    fatal_if(params.width == 0 || params.robSize == 0 ||
                 params.maxOutstanding == 0 ||
                 params.coreCyclesPerTick == 0,
             "bad core parameters");
    outstanding_.reserve(params.maxOutstanding);
}

void
CoreModel::start()
{
    scheduled_ = true;
    eq_.scheduleIn(0, [this]() {
        scheduled_ = false;
        advance();
    });
}

double
CoreModel::ipcAtQuota() const
{
    panic_if(!quotaReached_, "quota not reached yet");
    std::uint64_t cycles = quotaCycles_ - warmupCycles_;
    std::uint64_t instr = quotaInstrCount_ - warmupInstrCount_;
    return cycles == 0 ? 0.0
                       : static_cast<double>(instr) /
                             static_cast<double>(cycles);
}

void
CoreModel::onReadComplete(std::uint64_t instr_idx)
{
    auto it = std::find(outstanding_.begin(), outstanding_.end(),
                        instr_idx);
    panic_if(it == outstanding_.end(),
             "completion for unknown read");
    outstanding_.erase(it);
    if (waiting_ && !halted_) {
        waiting_ = false;
        syncFrontier_ = true; // stall time elapses on wall clock
        advance();
    }
}

void
CoreModel::advance()
{
    Tick now = eq_.now();
    while (!halted_) {
        if (!pendingValid_) {
            if (!source_.next(pending_)) {
                // Finite trace exhausted: restart it (the paper
                // repeats programs that finish early, Sec. 4.2).
                source_.reset();
                ++repetitions_;
                if (!source_.next(pending_)) {
                    halted_ = true; // empty trace
                    return;
                }
            }
            pendingValid_ = true;
            pendingCharged_ = false;
        }

        // Issue constraints.
        if (outstanding_.size() >= params_.maxOutstanding) {
            waiting_ = true;
            return;
        }
        std::uint64_t issue_instr =
            instrCount_ + pending_.instGap + 1;
        if (!outstanding_.empty() &&
            issue_instr > outstanding_.front() + params_.robSize) {
            waiting_ = true; // ROB full behind the oldest miss
            return;
        }

        // Account compute time for the gap plus the access itself -
        // exactly once per access.  The frontier only snaps forward
        // to wall-clock time when the core resumes from a stall
        // (syncFrontier_); a self-scheduled wake-up keeps the
        // sub-tick frontier so no phantom cycles accrue.
        if (syncFrontier_) {
            std::uint64_t now_cycles =
                now * params_.coreCyclesPerTick;
            if (frontierCycles_ < now_cycles)
                frontierCycles_ = now_cycles;
            syncFrontier_ = false;
        }
        if (!pendingCharged_) {
            // Accumulate instructions and convert whole core cycles
            // so sub-cycle fractions carry across accesses.
            instrDebt_ += pending_.instGap + 1;
            frontierCycles_ += instrDebt_ / params_.width;
            instrDebt_ %= params_.width;
            pendingCharged_ = true;
        }
        Tick issue_tick =
            ceilDiv(frontierCycles_, params_.coreCyclesPerTick);
        if (issue_tick > now) {
            if (!scheduled_) {
                scheduled_ = true;
                eq_.schedule(issue_tick, [this]() {
                    scheduled_ = false;
                    advance();
                });
            }
            return;
        }

        // Issue.
        instrCount_ = issue_instr;
        if (!warmupDone_ && instrCount_ >= params_.warmupInstr) {
            warmupDone_ = true;
            warmupCycles_ = frontierCycles_;
            warmupInstrCount_ = instrCount_;
            if (onWarmup_)
                onWarmup_();
            if (halted_)
                return;
        }
        if (!quotaReached_ && warmupDone_ &&
            instrCount_ >=
                warmupInstrCount_ + params_.instrQuota) {
            quotaReached_ = true;
            quotaTick_ = now;
            quotaCycles_ = frontierCycles_;
            quotaInstrCount_ = instrCount_;
            if (onQuota_)
                onQuota_();
            if (halted_)
                return;
        }
        trace::MemAccess a = pending_;
        pendingValid_ = false;
        if (a.isWrite) {
            ++memWrites_;
            port_.issue(id_, a.vaddr, true, {});
        } else {
            ++memReads_;
            std::uint64_t idx = instrCount_;
            outstanding_.push_back(idx);
            port_.issue(id_, a.vaddr, false, [this, idx]() {
                onReadComplete(idx);
            });
        }
    }
}

void
CoreModel::registerTelemetry(telemetry::StatRegistry &registry,
                             const std::string &prefix) const
{
    registry.addCounter(prefix + ".retired", instrCount_);
    registry.addCounter(prefix + ".mem_reads", memReads_);
    registry.addCounter(prefix + ".mem_writes", memWrites_);
    registry.addProbe(prefix + ".outstanding", [this]() {
        return static_cast<double>(outstanding_.size());
    });
}

} // namespace cpu

} // namespace profess
