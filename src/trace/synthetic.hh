/**
 * @file
 * Synthetic memory-access stream generator.
 *
 * Combines an address pattern with an inter-access instruction-gap
 * model (geometric gaps with a configurable bursty fraction), a write
 * fraction, and optional working-set phase changes.  The mean gap is
 * calibrated so that the stream realizes a target MPKI (L3 misses per
 * kilo-instruction, Table 9).
 */

#ifndef PROFESS_TRACE_SYNTHETIC_HH
#define PROFESS_TRACE_SYNTHETIC_HH

#include <memory>
#include <string>

#include "common/rng.hh"
#include "trace/access.hh"
#include "trace/patterns.hh"

namespace profess
{

namespace trace
{

/** Parameters of a synthetic stream. */
struct SyntheticParams
{
    std::string name = "synthetic";
    std::uint64_t footprintBytes = 4 * MiB;
    double mpki = 20.0;          ///< target misses per kilo-instr
    double writeFraction = 0.3;  ///< fraction of accesses that write
    double burstFraction = 0.3;  ///< accesses arriving back-to-back
    std::uint64_t phaseAccesses = 0; ///< rebuild() period (0 = never)
    std::uint64_t seed = 1;
};

/** TraceSource producing an endless synthetic stream. */
class SyntheticTraceSource : public TraceSource
{
  public:
    /**
     * @param params Stream parameters.
     * @param pattern Address pattern (ownership transferred).
     */
    SyntheticTraceSource(const SyntheticParams &params,
                         std::unique_ptr<AddressPattern> pattern);

    bool next(MemAccess &out) override;
    std::uint64_t footprintBytes() const override;
    void reset() override;

    /** @return the stream parameters. */
    const SyntheticParams &params() const { return params_; }

  private:
    SyntheticParams params_;
    std::unique_ptr<AddressPattern> pattern_;
    Rng rng_;
    std::uint64_t accessCount_ = 0;
    double meanGeomGap_ = 0.0;
};

} // namespace trace

} // namespace profess

#endif // PROFESS_TRACE_SYNTHETIC_HH
