#include "trace/trace_file.hh"

#include <cstring>

#include "common/logging.hh"

namespace profess
{

namespace trace
{

namespace
{

constexpr char magic[4] = {'P', 'F', 'T', 'R'};
constexpr std::uint32_t version = 1;
constexpr long headerBytes = 4 + 4 + 8 + 8;
constexpr long recordBytes = 8 + 4 + 1;

void
writeU32(std::FILE *fp, std::uint32_t v)
{
    fatal_if(std::fwrite(&v, sizeof(v), 1, fp) != 1,
             "trace write failed");
}

void
writeU64(std::FILE *fp, std::uint64_t v)
{
    fatal_if(std::fwrite(&v, sizeof(v), 1, fp) != 1,
             "trace write failed");
}

bool
readU32(std::FILE *fp, std::uint32_t &v)
{
    return std::fread(&v, sizeof(v), 1, fp) == 1;
}

bool
readU64(std::FILE *fp, std::uint64_t &v)
{
    return std::fread(&v, sizeof(v), 1, fp) == 1;
}

} // anonymous namespace

TraceWriter::TraceWriter(const std::string &path,
                         std::uint64_t footprint_bytes)
    : footprint_(footprint_bytes)
{
    fp_ = std::fopen(path.c_str(), "wb");
    fatal_if(fp_ == nullptr, "cannot open trace file '%s' for write",
             path.c_str());
    fatal_if(std::fwrite(magic, 1, 4, fp_) != 4, "trace write failed");
    writeU32(fp_, version);
    writeU64(fp_, footprint_);
    writeU64(fp_, 0); // patched in close()
}

TraceWriter::~TraceWriter()
{
    if (fp_)
        close();
}

void
TraceWriter::append(const MemAccess &a)
{
    panic_if(fp_ == nullptr, "append after close");
    writeU64(fp_, a.vaddr);
    writeU32(fp_, a.instGap);
    std::uint8_t flags = a.isWrite ? 1 : 0;
    fatal_if(std::fwrite(&flags, 1, 1, fp_) != 1,
             "trace write failed");
    ++count_;
}

void
TraceWriter::close()
{
    if (!fp_)
        return;
    fatal_if(std::fseek(fp_, 4 + 4 + 8, SEEK_SET) != 0,
             "trace seek failed");
    writeU64(fp_, count_);
    std::fclose(fp_);
    fp_ = nullptr;
}

FileTraceSource::FileTraceSource(const std::string &path)
{
    fp_ = std::fopen(path.c_str(), "rb");
    fatal_if(fp_ == nullptr, "cannot open trace file '%s'",
             path.c_str());
    char m[4];
    fatal_if(std::fread(m, 1, 4, fp_) != 4 ||
                 std::memcmp(m, magic, 4) != 0,
             "'%s' is not a trace file", path.c_str());
    std::uint32_t ver = 0;
    fatal_if(!readU32(fp_, ver) || ver != version,
             "trace file version mismatch");
    fatal_if(!readU64(fp_, footprint_) || !readU64(fp_, count_),
             "truncated trace header");
}

FileTraceSource::~FileTraceSource()
{
    if (fp_)
        std::fclose(fp_);
}

bool
FileTraceSource::next(MemAccess &out)
{
    if (pos_ >= count_)
        return false;
    std::uint8_t flags = 0;
    if (!readU64(fp_, out.vaddr) || !readU32(fp_, out.instGap) ||
        std::fread(&flags, 1, 1, fp_) != 1) {
        warn("truncated trace record at %llu",
             static_cast<unsigned long long>(pos_));
        return false;
    }
    out.isWrite = (flags & 1) != 0;
    ++pos_;
    return true;
}

std::uint64_t
FileTraceSource::footprintBytes() const
{
    return footprint_;
}

void
FileTraceSource::reset()
{
    fatal_if(std::fseek(fp_, headerBytes, SEEK_SET) != 0,
             "trace seek failed");
    pos_ = 0;
}

std::uint64_t
recordTrace(TraceSource &src, std::uint64_t n,
            const std::string &path)
{
    TraceWriter w(path, src.footprintBytes());
    MemAccess a;
    std::uint64_t written = 0;
    for (; written < n && src.next(a); ++written)
        w.append(a);
    w.close();
    (void)recordBytes;
    return written;
}

} // namespace trace

} // namespace profess
