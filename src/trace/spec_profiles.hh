/**
 * @file
 * SPEC CPU2006-like benchmark profiles (paper Table 9).
 *
 * The paper drives its evaluation with ten SPEC CPU2006 programs for
 * which it reports L3 MPKI and main-memory footprints.  SPEC binaries
 * and reference inputs are not available here, so each benchmark is
 * modelled as a synthetic stream whose MPKI and footprint match
 * Table 9 (footprints scaled together with the memory capacities) and
 * whose address-pattern mixture reflects the published
 * characterization (Sec. 4.2: mcf/omnetpp/libquantum irregular
 * pointer-based, soplex mixed regular/irregular, lbm/bwaves
 * streaming, ...).  See DESIGN.md Sec. 2 for the substitution
 * rationale.
 */

#ifndef PROFESS_TRACE_SPEC_PROFILES_HH
#define PROFESS_TRACE_SPEC_PROFILES_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/synthetic.hh"

namespace profess
{

namespace trace
{

/** Static description of one benchmark-like workload. */
struct BenchmarkProfile
{
    const char *name;
    double mpki;          ///< Table 9 L3 MPKI
    double footprintMB;   ///< Table 9 footprint (paper scale)
    double writeFraction;
    double seqWeight;     ///< streaming component
    unsigned numStreams;  ///< concurrent sequential streams
    double strideWeight;  ///< strided component
    double hotWeight;     ///< Zipf hotspot component
    double chaseWeight;   ///< clustered pointer-chase component
    double zipfS;         ///< hotspot skew
    std::uint64_t strideBytes;
    std::uint64_t chaseWindowBytes; ///< chase dwell window
    double chaseMeanDwell;          ///< mean accesses per window
    double burstFraction;
    std::uint64_t phaseAccesses; ///< working-set drift period
};

/** @return the ten Table 9 profiles. */
const std::vector<BenchmarkProfile> &specProfiles();

/** @return profile by name, or nullptr. */
const BenchmarkProfile *findProfile(const std::string &name);

/**
 * Build a synthetic trace source for a benchmark profile.
 *
 * @param name Benchmark name (Table 9).
 * @param footprint_scale Scale factor applied to the paper footprint
 *        (the default 1/16 matches the scaled default memory sizes).
 * @param seed RNG seed (vary per workload slot for repeats).
 */
std::unique_ptr<TraceSource> makeSpecSource(const std::string &name,
                                            double footprint_scale,
                                            std::uint64_t seed);

/** Build a source directly from a profile struct. */
std::unique_ptr<TraceSource>
makeProfileSource(const BenchmarkProfile &p, double footprint_scale,
                  std::uint64_t seed);

/**
 * Default footprint / capacity scale used across the repo.
 *
 * Everything scales together by 1/100: footprints, M1/M2 capacities,
 * STC size, RSM Msamp and the 500M-instruction SimPoints (-> 5M).
 * This preserves the two ratios the paper's dynamics depend on:
 * footprint-to-M1 pressure and accesses-per-block reuse density.
 */
constexpr double defaultScale = 1.0 / 100.0;

} // namespace trace

} // namespace profess

#endif // PROFESS_TRACE_SPEC_PROFILES_HH
