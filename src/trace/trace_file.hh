/**
 * @file
 * Binary trace recording and replay.
 *
 * Any TraceSource can be recorded to a compact binary file and
 * replayed later, which makes experiments reproducible bit-for-bit
 * across machines and lets users plug in traces captured from real
 * systems (e.g., converted Pin traces) instead of the synthetic
 * generators.
 *
 * File layout (little-endian):
 *   header: magic "PFTR", u32 version, u64 footprintBytes, u64 count
 *   record: u64 vaddr, u32 instGap, u8 flags (bit0 = write)
 */

#ifndef PROFESS_TRACE_TRACE_FILE_HH
#define PROFESS_TRACE_TRACE_FILE_HH

#include <cstdio>
#include <string>

#include "trace/access.hh"

namespace profess
{

namespace trace
{

/** Writer of the binary trace format. */
class TraceWriter
{
  public:
    /**
     * Open a trace file for writing.
     *
     * @param path Output path.
     * @param footprint_bytes Footprint recorded in the header.
     */
    TraceWriter(const std::string &path,
                std::uint64_t footprint_bytes);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one access. */
    void append(const MemAccess &a);

    /** Finalize the header and close the file. */
    void close();

  private:
    std::FILE *fp_ = nullptr;
    std::uint64_t footprint_;
    std::uint64_t count_ = 0;
};

/** TraceSource replaying a recorded file; reset() rewinds. */
class FileTraceSource : public TraceSource
{
  public:
    explicit FileTraceSource(const std::string &path);
    ~FileTraceSource() override;

    FileTraceSource(const FileTraceSource &) = delete;
    FileTraceSource &operator=(const FileTraceSource &) = delete;

    bool next(MemAccess &out) override;
    std::uint64_t footprintBytes() const override;
    void reset() override;

    /** @return number of records in the file. */
    std::uint64_t count() const { return count_; }

  private:
    std::FILE *fp_ = nullptr;
    std::uint64_t footprint_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t pos_ = 0;
};

/**
 * Record n accesses of a source into a file.
 *
 * @return number of records written (may be < n if source ends).
 */
std::uint64_t recordTrace(TraceSource &src, std::uint64_t n,
                          const std::string &path);

} // namespace trace

} // namespace profess

#endif // PROFESS_TRACE_TRACE_FILE_HH
