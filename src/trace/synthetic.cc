#include "trace/synthetic.hh"

#include "common/logging.hh"

namespace profess
{

namespace trace
{

SyntheticTraceSource::SyntheticTraceSource(
    const SyntheticParams &params,
    std::unique_ptr<AddressPattern> pattern)
    : params_(params), pattern_(std::move(pattern)),
      rng_(params.seed, 0x632be59bd9b4e019ull)
{
    fatal_if(params_.mpki <= 0.0, "mpki must be positive");
    fatal_if(!pattern_, "null pattern");
    double mean_instr_per_access = 1000.0 / params_.mpki;
    // Access itself counts as one instruction; bursty accesses have
    // mean gap ~1, so the geometric component compensates to keep
    // the overall mean on target.
    double target_gap = mean_instr_per_access - 1.0;
    if (target_gap < 0.0)
        target_gap = 0.0;
    double b = params_.burstFraction;
    fatal_if(b < 0.0 || b >= 1.0, "burstFraction must be in [0,1)");
    meanGeomGap_ = (target_gap - b * 1.0) / (1.0 - b);
    if (meanGeomGap_ < 0.0)
        meanGeomGap_ = 0.0;
}

bool
SyntheticTraceSource::next(MemAccess &out)
{
    if (params_.phaseAccesses > 0 && accessCount_ > 0 &&
        accessCount_ % params_.phaseAccesses == 0) {
        pattern_->rebuild(rng_);
    }
    ++accessCount_;

    out.vaddr = pattern_->next(rng_);
    out.isWrite = rng_.uniform() < params_.writeFraction;
    if (rng_.uniform() < params_.burstFraction) {
        out.instGap = rng_.below(3); // 0..2, mean 1
    } else {
        double p = 1.0 / (1.0 + meanGeomGap_);
        out.instGap = static_cast<std::uint32_t>(rng_.geometric(p));
    }
    return true;
}

std::uint64_t
SyntheticTraceSource::footprintBytes() const
{
    return params_.footprintBytes;
}

void
SyntheticTraceSource::reset()
{
    rng_ = Rng(params_.seed, 0x632be59bd9b4e019ull);
    accessCount_ = 0;
}

} // namespace trace

} // namespace profess
