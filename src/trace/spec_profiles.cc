#include "trace/spec_profiles.hh"

#include <cmath>

#include "common/logging.hh"

namespace profess
{

namespace trace
{

const std::vector<BenchmarkProfile> &
specProfiles()
{
    // name         mpki fpMB   wf   seq  ns  str  hot  chase zipf stride cwin cdwell burst phase
    static const std::vector<BenchmarkProfile> table = {
        {"bwaves",     11, 265, 0.30, 0.75,  8, 0.15, 0.10, 0.00, 0.90, 256, 4096, 4.0, 0.45, 0},
        {"GemsFDTD",   16, 499, 0.35, 0.55, 12, 0.25, 0.20, 0.00, 0.90, 512, 4096, 4.0, 0.40, 400000},
        {"lbm",        32, 402, 0.45, 0.90, 19, 0.05, 0.05, 0.00, 0.80, 128, 4096, 4.0, 0.50, 0},
        {"leslie3d",   15,  76, 0.35, 0.65,  8, 0.25, 0.10, 0.00, 0.90, 256, 4096, 4.0, 0.40, 0},
        {"libquantum", 30,  32, 0.25, 1.00,  4, 0.00, 0.00, 0.00, 0.00,  64, 4096, 4.0, 0.55, 0},
        {"mcf",        60, 525, 0.20, 0.00,  1, 0.00, 0.30, 0.70, 1.00,  64, 8192, 12.0, 0.20, 500000},
        {"milc",       18, 547, 0.30, 0.45,  6, 0.10, 0.15, 0.30, 0.80, 256, 16384, 2.5, 0.30, 0},
        {"omnetpp",    19, 138, 0.35, 0.00,  1, 0.05, 0.45, 0.50, 1.10,  64, 4096, 4.0, 0.15, 300000},
        {"soplex",     29, 241, 0.25, 0.40,  6, 0.10, 0.30, 0.20, 1.00, 256, 8192, 4.0, 0.30, 400000},
        {"zeusmp",      5, 112, 0.30, 0.60,  8, 0.20, 0.20, 0.00, 0.90, 512, 4096, 4.0, 0.40, 0},
    };
    return table;
}

const BenchmarkProfile *
findProfile(const std::string &name)
{
    for (const auto &p : specProfiles()) {
        if (name == p.name)
            return &p;
    }
    return nullptr;
}

std::unique_ptr<TraceSource>
makeProfileSource(const BenchmarkProfile &p, double footprint_scale,
                  std::uint64_t seed)
{
    auto footprint = static_cast<std::uint64_t>(
        p.footprintMB * footprint_scale * static_cast<double>(MiB));
    // Round to whole 4-KiB pages, at least one.
    footprint = std::max<std::uint64_t>(4 * KiB,
                                        footprint / (4 * KiB) *
                                            (4 * KiB));

    auto mix = std::make_unique<MixedPattern>();
    if (p.seqWeight > 0) {
        mix->add(p.seqWeight, std::make_unique<MultiStreamPattern>(
                                  footprint, p.numStreams));
    }
    if (p.strideWeight > 0) {
        mix->add(p.strideWeight, std::make_unique<StridedPattern>(
                                     footprint, p.strideBytes));
    }
    if (p.hotWeight > 0) {
        mix->add(p.hotWeight, std::make_unique<HotspotPattern>(
                                  footprint, p.zipfS));
    }
    if (p.chaseWeight > 0) {
        mix->add(p.chaseWeight,
                 std::make_unique<ClusteredPattern>(
                     footprint, p.chaseWindowBytes,
                     p.chaseMeanDwell));
    }

    SyntheticParams sp;
    sp.name = p.name;
    sp.footprintBytes = footprint;
    sp.mpki = p.mpki;
    sp.writeFraction = p.writeFraction;
    sp.burstFraction = p.burstFraction;
    sp.phaseAccesses = p.phaseAccesses;
    sp.seed = seed;
    return std::make_unique<SyntheticTraceSource>(sp, std::move(mix));
}

std::unique_ptr<TraceSource>
makeSpecSource(const std::string &name, double footprint_scale,
               std::uint64_t seed)
{
    const BenchmarkProfile *p = findProfile(name);
    fatal_if(p == nullptr, "unknown benchmark profile '%s'",
             name.c_str());
    return makeProfileSource(*p, footprint_scale, seed);
}

} // namespace trace

} // namespace profess
