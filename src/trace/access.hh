/**
 * @file
 * The interface between workloads and the core model.
 *
 * A trace source produces the program's main-memory access stream
 * (post-L3 misses at 64-B granularity), each access annotated with
 * the number of non-memory-miss instructions that precede it.  The
 * paper drives its simulator with SPEC CPU2006 SimPoints; here the
 * stream comes from synthetic generators parameterized per benchmark
 * (Table 9) or from recorded trace files (see DESIGN.md, Sec. 2).
 */

#ifndef PROFESS_TRACE_ACCESS_HH
#define PROFESS_TRACE_ACCESS_HH

#include <cstdint>

#include "common/types.hh"

namespace profess
{

namespace trace
{

/** Cache line size assumed throughout (Table 8). */
constexpr std::uint64_t lineBytes = 64;

/** One main-memory access of a program. */
struct MemAccess
{
    Addr vaddr = 0;            ///< virtual byte address (line-aligned)
    bool isWrite = false;
    std::uint32_t instGap = 0; ///< instructions since previous access
};

/** Producer of a program's memory access stream. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next access.
     *
     * @param out Filled in on success.
     * @return false at end of trace (synthetic sources never end).
     */
    virtual bool next(MemAccess &out) = 0;

    /** @return the footprint (maximum vaddr + line) in bytes. */
    virtual std::uint64_t footprintBytes() const = 0;

    /** Restart the stream (used when a program is repeated). */
    virtual void reset() = 0;
};

} // namespace trace

} // namespace profess

#endif // PROFESS_TRACE_ACCESS_HH
