/**
 * @file
 * Address-pattern generators composing synthetic workloads.
 *
 * Each pattern produces 64-B-aligned byte offsets within a footprint.
 * The SPEC-like profiles (spec_profiles.hh) mix these:
 *
 *  - SequentialPattern : streaming sweeps (bwaves, lbm, libquantum)
 *  - StridedPattern    : fixed-stride walks (stencil codes)
 *  - HotspotPattern    : Zipf-skewed page popularity with the hot
 *                        ranks scattered by a permutation, so hot
 *                        pages spread over regions and swap groups
 *  - UniformPattern    : irregular pointer-chasing (mcf, omnetpp)
 */

#ifndef PROFESS_TRACE_PATTERNS_HH
#define PROFESS_TRACE_PATTERNS_HH

#include <memory>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "trace/access.hh"

namespace profess
{

namespace trace
{

/** Generator of line-aligned offsets within [0, footprint). */
class AddressPattern
{
  public:
    virtual ~AddressPattern() = default;

    /** @return next line-aligned byte offset. */
    virtual Addr next(Rng &rng) = 0;

    /** Phase change: re-randomize internal structure (optional). */
    virtual void rebuild(Rng &rng) { (void)rng; }
};

/** Linear sweep over the footprint, wrapping around. */
class SequentialPattern : public AddressPattern
{
  public:
    /**
     * @param footprint Footprint in bytes.
     * @param start Starting offset (line-aligned).
     */
    explicit SequentialPattern(std::uint64_t footprint,
                               Addr start = 0);

    Addr next(Rng &rng) override;

  private:
    std::uint64_t footprint_;
    Addr pos_;
};

/**
 * Multiple interleaved sequential streams.
 *
 * Streaming scientific codes (lbm, bwaves, GemsFDTD) sweep several
 * arrays concurrently; the interleaving of streams (and of the
 * write-back traffic) is what produces row-buffer and bank conflicts
 * in main memory.  Each call advances one stream chosen uniformly at
 * random; streams start evenly spaced across the footprint and wrap.
 */
class MultiStreamPattern : public AddressPattern
{
  public:
    /**
     * @param footprint Footprint in bytes.
     * @param num_streams Concurrent streams (>= 1).
     */
    MultiStreamPattern(std::uint64_t footprint, unsigned num_streams);

    Addr next(Rng &rng) override;

  private:
    std::uint64_t footprint_;
    std::vector<Addr> pos_;
};

/** Fixed-stride walk; on wrap, shifts phase to cover all lines. */
class StridedPattern : public AddressPattern
{
  public:
    /**
     * @param footprint Footprint in bytes.
     * @param stride Stride in bytes (multiple of the line size).
     */
    StridedPattern(std::uint64_t footprint, std::uint64_t stride);

    Addr next(Rng &rng) override;

  private:
    std::uint64_t footprint_;
    std::uint64_t stride_;
    Addr pos_;
    Addr phase_;
};

/**
 * Zipf-distributed page popularity.
 *
 * Rank r (1-based) has probability proportional to 1/r^s.  Ranks are
 * mapped to pages through a pseudo-random permutation so the hot set
 * is scattered across the address space; rebuild() re-seeds the
 * permutation to model working-set drift.
 */
class HotspotPattern : public AddressPattern
{
  public:
    /**
     * @param footprint Footprint in bytes.
     * @param zipf_s Zipf skew parameter (~0.8-1.2 typical).
     * @param page_bytes Popularity granularity (default 4 KiB).
     */
    HotspotPattern(std::uint64_t footprint, double zipf_s,
                   std::uint64_t page_bytes = 4 * KiB);

    Addr next(Rng &rng) override;
    void rebuild(Rng &rng) override;

  private:
    std::uint64_t footprint_;
    std::uint64_t pageBytes_;
    std::size_t numPages_;
    std::vector<double> cdf_;
    std::vector<std::uint32_t> perm_;
};

/** Uniformly random lines over the footprint (pointer chasing). */
class UniformPattern : public AddressPattern
{
  public:
    explicit UniformPattern(std::uint64_t footprint);

    Addr next(Rng &rng) override;

  private:
    std::uint64_t footprint_;
};

/**
 * Clustered random walk: jump to a uniformly random window of the
 * footprint, dwell there for a geometrically distributed number of
 * accesses (uniform lines within the window), then jump again.
 *
 * Models pointer-chasing codes (mcf, omnetpp): globally irregular
 * but with the short-range temporal locality that real linked data
 * structures exhibit - which is what gives such programs their
 * moderate STC hit rates (Fig. 7: mcf ~85%, omnetpp ~70%).
 */
class ClusteredPattern : public AddressPattern
{
  public:
    /**
     * @param footprint Footprint in bytes.
     * @param window_bytes Dwell-window size (>= one line).
     * @param mean_dwell Mean accesses per window (>= 1).
     */
    ClusteredPattern(std::uint64_t footprint,
                     std::uint64_t window_bytes, double mean_dwell);

    Addr next(Rng &rng) override;

  private:
    std::uint64_t footprint_;
    std::uint64_t windowBytes_;
    double jumpProb_; ///< per-access probability of leaving
    Addr windowBase_ = 0;
    bool primed_ = false;
};

/** Probabilistic mixture of sub-patterns. */
class MixedPattern : public AddressPattern
{
  public:
    /** Add a component with the given selection weight. */
    void add(double weight, std::unique_ptr<AddressPattern> p);

    Addr next(Rng &rng) override;
    void rebuild(Rng &rng) override;

  private:
    std::vector<double> cumWeight_;
    std::vector<std::unique_ptr<AddressPattern>> parts_;
    double totalWeight_ = 0.0;
};

} // namespace trace

} // namespace profess

#endif // PROFESS_TRACE_PATTERNS_HH
