#include "trace/patterns.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace profess
{

namespace trace
{

namespace
{

std::uint64_t
alignDown(std::uint64_t x, std::uint64_t a)
{
    return x - x % a;
}

} // anonymous namespace

SequentialPattern::SequentialPattern(std::uint64_t footprint,
                                     Addr start)
    : footprint_(alignDown(footprint, lineBytes)), pos_(start)
{
    panic_if(footprint_ == 0, "footprint smaller than one line");
    pos_ %= footprint_;
}

Addr
SequentialPattern::next(Rng &rng)
{
    (void)rng;
    Addr a = pos_;
    pos_ += lineBytes;
    if (pos_ >= footprint_)
        pos_ = 0;
    return a;
}

MultiStreamPattern::MultiStreamPattern(std::uint64_t footprint,
                                       unsigned num_streams)
    : footprint_(alignDown(footprint, lineBytes))
{
    panic_if(footprint_ == 0, "footprint smaller than one line");
    panic_if(num_streams == 0, "need at least one stream");
    pos_.assign(num_streams, tickNever);
}

Addr
MultiStreamPattern::next(Rng &rng)
{
    std::size_t i = pos_.size() == 1
        ? 0
        : rng.below(static_cast<std::uint32_t>(pos_.size()));
    if (pos_[i] == tickNever) {
        // Lazy random start: real programs' arrays sit at unrelated
        // offsets, so streams must not align on bank boundaries.
        pos_[i] = rng.below64(footprint_ / lineBytes) * lineBytes;
    }
    Addr a = pos_[i];
    pos_[i] += lineBytes;
    if (pos_[i] >= footprint_)
        pos_[i] = 0;
    return a;
}

StridedPattern::StridedPattern(std::uint64_t footprint,
                               std::uint64_t stride)
    : footprint_(alignDown(footprint, lineBytes)), stride_(stride),
      pos_(0), phase_(0)
{
    panic_if(footprint_ == 0, "footprint smaller than one line");
    panic_if(stride_ == 0 || stride_ % lineBytes != 0,
             "stride must be a positive multiple of the line size");
}

Addr
StridedPattern::next(Rng &rng)
{
    (void)rng;
    Addr a = pos_;
    pos_ += stride_;
    if (pos_ >= footprint_) {
        phase_ += lineBytes;
        if (phase_ >= stride_ || phase_ >= footprint_)
            phase_ = 0;
        pos_ = phase_;
    }
    return a;
}

HotspotPattern::HotspotPattern(std::uint64_t footprint, double zipf_s,
                               std::uint64_t page_bytes)
    : footprint_(alignDown(footprint, lineBytes)),
      pageBytes_(page_bytes)
{
    panic_if(footprint_ == 0, "footprint smaller than one line");
    numPages_ = std::max<std::size_t>(
        1, static_cast<std::size_t>(footprint_ / pageBytes_));
    // Zipf CDF over ranks.
    cdf_.resize(numPages_);
    double acc = 0.0;
    for (std::size_t r = 0; r < numPages_; ++r) {
        acc += 1.0 / std::pow(static_cast<double>(r + 1), zipf_s);
        cdf_[r] = acc;
    }
    for (auto &c : cdf_)
        c /= acc;
    // Identity permutation until the first rebuild.
    perm_.resize(numPages_);
    for (std::size_t i = 0; i < numPages_; ++i)
        perm_[i] = static_cast<std::uint32_t>(i);
    Rng seeder(0x9e3779b97f4a7c15ull, 0x5bd1e995u);
    rebuild(seeder);
}

void
HotspotPattern::rebuild(Rng &rng)
{
    // Fisher-Yates shuffle of the rank -> page mapping.
    for (std::size_t i = numPages_; i > 1; --i) {
        std::size_t j = rng.below(static_cast<std::uint32_t>(i));
        std::swap(perm_[i - 1], perm_[j]);
    }
}

Addr
HotspotPattern::next(Rng &rng)
{
    double u = rng.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    std::size_t rank = static_cast<std::size_t>(it - cdf_.begin());
    if (rank >= numPages_)
        rank = numPages_ - 1;
    std::uint64_t page = perm_[rank];
    std::uint64_t lines_per_page =
        std::max<std::uint64_t>(1, pageBytes_ / lineBytes);
    Addr a = page * pageBytes_ +
             rng.below64(lines_per_page) * lineBytes;
    if (a >= footprint_)
        a = footprint_ - lineBytes;
    return a;
}

UniformPattern::UniformPattern(std::uint64_t footprint)
    : footprint_(alignDown(footprint, lineBytes))
{
    panic_if(footprint_ == 0, "footprint smaller than one line");
}

Addr
UniformPattern::next(Rng &rng)
{
    return rng.below64(footprint_ / lineBytes) * lineBytes;
}

ClusteredPattern::ClusteredPattern(std::uint64_t footprint,
                                   std::uint64_t window_bytes,
                                   double mean_dwell)
    : footprint_(alignDown(footprint, lineBytes)),
      windowBytes_(window_bytes)
{
    panic_if(footprint_ == 0, "footprint smaller than one line");
    panic_if(window_bytes < lineBytes,
             "window smaller than one line");
    panic_if(mean_dwell < 1.0, "mean dwell must be >= 1");
    if (windowBytes_ > footprint_)
        windowBytes_ = footprint_;
    jumpProb_ = 1.0 / mean_dwell;
}

Addr
ClusteredPattern::next(Rng &rng)
{
    if (!primed_ || rng.uniform() < jumpProb_) {
        std::uint64_t windows =
            std::max<std::uint64_t>(1, footprint_ / windowBytes_);
        windowBase_ = rng.below64(windows) * windowBytes_;
        primed_ = true;
    }
    std::uint64_t lines = windowBytes_ / lineBytes;
    Addr a = windowBase_ + rng.below64(lines) * lineBytes;
    if (a >= footprint_)
        a = footprint_ - lineBytes;
    return a;
}

void
MixedPattern::add(double weight, std::unique_ptr<AddressPattern> p)
{
    panic_if(weight <= 0.0, "mixture weight must be positive");
    totalWeight_ += weight;
    cumWeight_.push_back(totalWeight_);
    parts_.push_back(std::move(p));
}

Addr
MixedPattern::next(Rng &rng)
{
    panic_if(parts_.empty(), "empty mixture");
    double u = rng.uniform() * totalWeight_;
    auto it =
        std::lower_bound(cumWeight_.begin(), cumWeight_.end(), u);
    std::size_t i = static_cast<std::size_t>(it - cumWeight_.begin());
    if (i >= parts_.size())
        i = parts_.size() - 1;
    return parts_[i]->next(rng);
}

void
MixedPattern::rebuild(Rng &rng)
{
    for (auto &p : parts_)
        p->rebuild(rng);
}

} // namespace trace

} // namespace profess
