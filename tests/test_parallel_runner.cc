/**
 * @file
 * Tests for the parallel experiment runner: the work-stealing
 * thread pool, deterministic per-job seed derivation, the shared
 * stand-alone reference cache, and — centrally — the differential
 * guarantee that `--jobs 1` and `--jobs N` produce bit-identical
 * RunResult/MultiMetrics under every policy.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>

#include "common/invariant.hh"
#include "common/thread_pool.hh"
#include "sim/parallel_runner.hh"
#include "sim/system.hh"
#include "trace/spec_profiles.hh"

using namespace profess;
using namespace profess::sim;

namespace
{

SystemConfig
quickQuad()
{
    SystemConfig c = SystemConfig::quadCore();
    c.core.instrQuota = 120000;
    c.core.warmupInstr = 60000;
    return c;
}

SystemConfig
quickSingle()
{
    SystemConfig c = SystemConfig::singleCore();
    c.core.instrQuota = 150000;
    c.core.warmupInstr = 50000;
    return c;
}

/** Every field of a RunResult must match bit-for-bit. */
void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.programs, b.programs);
    ASSERT_EQ(a.ipc.size(), b.ipc.size());
    for (std::size_t i = 0; i < a.ipc.size(); ++i)
        EXPECT_EQ(a.ipc[i], b.ipc[i]) << "ipc[" << i << "]";
    EXPECT_EQ(a.served, b.served);
    EXPECT_EQ(a.servedM1, b.servedM1);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.joules, b.joules);
    EXPECT_EQ(a.watts, b.watts);
    EXPECT_EQ(a.servedTotal, b.servedTotal);
    EXPECT_EQ(a.swaps, b.swaps);
    EXPECT_EQ(a.stcHitRate, b.stcHitRate);
    EXPECT_EQ(a.meanReadLatencyNs, b.meanReadLatencyNs);
    EXPECT_EQ(a.m1Fraction, b.m1Fraction);
    EXPECT_EQ(a.swapFraction, b.swapFraction);
    EXPECT_EQ(a.rowHitRate, b.rowHitRate);
    EXPECT_EQ(a.m2WriteFraction, b.m2WriteFraction);
    EXPECT_EQ(a.completed, b.completed);
}

void
expectIdentical(const MultiMetrics &a, const MultiMetrics &b)
{
    expectIdentical(a.run, b.run);
    ASSERT_EQ(a.aloneIpc.size(), b.aloneIpc.size());
    for (std::size_t i = 0; i < a.aloneIpc.size(); ++i)
        EXPECT_EQ(a.aloneIpc[i], b.aloneIpc[i]);
    ASSERT_EQ(a.slowdown.size(), b.slowdown.size());
    for (std::size_t i = 0; i < a.slowdown.size(); ++i)
        EXPECT_EQ(a.slowdown[i], b.slowdown[i]);
    EXPECT_EQ(a.weightedSpeedup, b.weightedSpeedup);
    EXPECT_EQ(a.maxSlowdown, b.maxSlowdown);
    EXPECT_EQ(a.efficiency, b.efficiency);
}

} // anonymous namespace

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(4);
    std::atomic<int> sum{0};
    for (int i = 1; i <= 100; ++i)
        pool.submit([&sum, i]() { sum += i; });
    pool.wait();
    EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, NestedSubmission)
{
    // Tasks submitted from workers (stealing targets) must also be
    // covered by wait().
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int i = 0; i < 10; ++i) {
        pool.submit([&pool, &count]() {
            for (int j = 0; j < 5; ++j)
                pool.submit([&count]() { ++count; });
        });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ReusableAfterWait)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count]() { ++count; });
    pool.wait();
    pool.submit([&count]() { ++count; });
    pool.submit([&count]() { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(DeriveSeed, PureAndSensitiveToEveryInput)
{
    std::uint64_t s = deriveSeed(1, "pom", "w01", 0);
    EXPECT_EQ(s, deriveSeed(1, "pom", "w01", 0));
    EXPECT_NE(s, deriveSeed(2, "pom", "w01", 0));
    EXPECT_NE(s, deriveSeed(1, "mdm", "w01", 0));
    EXPECT_NE(s, deriveSeed(1, "pom", "w02", 0));
    EXPECT_NE(s, deriveSeed(1, "pom", "w01", 1));
    EXPECT_NE(s, 0u);
}

TEST(ConfigFingerprint, DistinguishesSweepPoints)
{
    SystemConfig a = SystemConfig::singleCore();
    SystemConfig b = a;
    EXPECT_EQ(configFingerprint(a, 1.0), configFingerprint(b, 1.0));
    b.m2WriteScale = 2.0;
    EXPECT_NE(configFingerprint(a, 1.0), configFingerprint(b, 1.0));
    b = a;
    b.stc.capacityBytes *= 2;
    EXPECT_NE(configFingerprint(a, 1.0), configFingerprint(b, 1.0));
    b = a;
    b.core.instrQuota += 1;
    EXPECT_NE(configFingerprint(a, 1.0), configFingerprint(b, 1.0));
    EXPECT_NE(configFingerprint(a, 1.0),
              configFingerprint(a, 0.5));
}

TEST(AloneCache, ComputesOnceAndDedupsConcurrentRequests)
{
    AloneIpcCache cache;
    std::atomic<int> computes{0};
    ThreadPool pool(8);
    for (int i = 0; i < 32; ++i) {
        pool.submit([&cache, &computes]() {
            double v = cache.getOrCompute("k", [&computes]() {
                ++computes;
                return 42.0;
            });
            EXPECT_EQ(v, 42.0);
        });
    }
    pool.wait();
    EXPECT_EQ(computes.load(), 1);
    EXPECT_EQ(cache.size(), 1u);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
}

TEST(Jobs, EnvAndArgsParsing)
{
    ::setenv("PROFESS_JOBS", "5", 1);
    EXPECT_EQ(ParallelRunner::jobsFromEnv(), 5u);
    const char *argv1[] = {"bench", "--jobs", "3"};
    EXPECT_EQ(ParallelRunner::jobsFromArgs(
                  3, const_cast<char **>(argv1)),
              3u);
    const char *argv2[] = {"bench", "--jobs=7"};
    EXPECT_EQ(ParallelRunner::jobsFromArgs(
                  2, const_cast<char **>(argv2)),
              7u);
    const char *argv3[] = {"bench", "-j", "2"};
    EXPECT_EQ(ParallelRunner::jobsFromArgs(
                  3, const_cast<char **>(argv3)),
              2u);
    const char *argv4[] = {"bench"};
    EXPECT_EQ(ParallelRunner::jobsFromArgs(
                  1, const_cast<char **>(argv4)),
              5u); // falls back to PROFESS_JOBS
    ::unsetenv("PROFESS_JOBS");
    EXPECT_GE(ParallelRunner::jobsFromEnv(), 1u);
}

/**
 * The tentpole guarantee: a mixed batch (multi-program mixes under
 * Pom, Mdm and ProFess, plus a single-program sweep job) produces
 * bit-identical metrics serially (--jobs 1) and with 8 workers.
 */
TEST(Differential, SerialVsParallelBitIdentical)
{
    std::vector<RunJob> batch;
    const WorkloadSpec *w01 = findWorkload("w01");
    const WorkloadSpec *w05 = findWorkload("w05");
    ASSERT_NE(w01, nullptr);
    ASSERT_NE(w05, nullptr);
    for (const char *policy : {"pom", "mdm", "profess"}) {
        batch.push_back(multiJob(quickQuad(), policy, *w01));
        batch.push_back(multiJob(quickQuad(), policy, *w05));
    }
    // A sweep-style single-program job with a distinct config.
    SystemConfig sweep = quickSingle();
    sweep.m2WriteScale = 2.0;
    batch.push_back(singleJob(sweep, "mdm", "mcf", 2));

    // Fresh caches per runner: the reference runs themselves must
    // be reproduced identically, not shared via memoization.
    AloneIpcCache serial_cache, parallel_cache;
    ParallelRunner serial(1, &serial_cache);
    serial.setProgress(false);
    ParallelRunner parallel(8, &parallel_cache);
    parallel.setProgress(false);

    std::vector<MultiMetrics> a = serial.run(batch);
    std::vector<MultiMetrics> b = parallel.run(batch);
    ASSERT_EQ(a.size(), batch.size());
    ASSERT_EQ(b.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        SCOPED_TRACE("job " + std::to_string(i) + " (" +
                     batch[i].policy + "/" + batch[i].label + ")");
        EXPECT_TRUE(a[i].run.completed);
        expectIdentical(a[i], b[i]);
    }

    // And a second parallel execution is stable against schedule
    // jitter (completion order differs run to run).
    std::vector<MultiMetrics> c = parallel.run(batch);
    for (std::size_t i = 0; i < batch.size(); ++i)
        expectIdentical(b[i], c[i]);
}

TEST(Differential, JobSeedIndependentOfBatchPosition)
{
    // Reordering a batch must not change any job's result.
    const WorkloadSpec *w02 = findWorkload("w02");
    ASSERT_NE(w02, nullptr);
    RunJob jm = multiJob(quickQuad(), "mdm", *w02);
    RunJob jp = multiJob(quickQuad(), "pom", *w02);

    AloneIpcCache c1, c2;
    ParallelRunner r1(2, &c1), r2(2, &c2);
    r1.setProgress(false);
    r2.setProgress(false);
    std::vector<MultiMetrics> ab = r1.run({jm, jp});
    std::vector<MultiMetrics> ba = r2.run({jp, jm});
    expectIdentical(ab[0], ba[1]);
    expectIdentical(ab[1], ba[0]);
}

TEST(ParallelRunner, SharedCacheSkipsDuplicateReferenceRuns)
{
    // Two mixes sharing programs under one policy: the cache must
    // end up with one entry per distinct (policy, program) pair.
    const WorkloadSpec *w01 = findWorkload("w01");
    ASSERT_NE(w01, nullptr);
    AloneIpcCache cache;
    ParallelRunner runner(4, &cache);
    runner.setProgress(false);
    std::vector<RunJob> batch = {
        multiJob(quickQuad(), "pom", *w01),
        multiJob(quickQuad(), "pom", *w01, /*sweep_point=*/1),
    };
    std::vector<MultiMetrics> r = runner.run(batch);
    std::size_t distinct = 0;
    {
        std::vector<std::string> seen;
        for (const char *p : w01->programs) {
            std::string s(p);
            bool dup = false;
            for (const auto &q : seen)
                dup = dup || q == s;
            if (!dup) {
                seen.push_back(s);
                ++distinct;
            }
        }
    }
    EXPECT_EQ(cache.size(), distinct);
    // Both sweep points see identical reference IPCs...
    for (std::size_t i = 0; i < r[0].aloneIpc.size(); ++i)
        EXPECT_EQ(r[0].aloneIpc[i], r[1].aloneIpc[i]);
    // ...but distinct mix seeds (sweepPoint differs).
    EXPECT_NE(deriveSeed(1, "pom", "w01", 0),
              deriveSeed(1, "pom", "w01", 1));
}

TEST(ParallelRunner, ForEachCoversAllIndices)
{
    ParallelRunner runner(4);
    runner.setProgress(false);
    std::vector<int> hits(64, 0);
    runner.forEach(hits.size(),
                   [&hits](std::size_t i) { hits[i] = 1; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i], 1) << i;
}

TEST(ParallelRunner, PerWorkerQueueAuditUnderJobs)
{
    // Satellite of the scenario PR: the EventQueue extraction-order
    // audit must hold on every parallel worker's private queue, not
    // just the serial path.  Run under TSan in ci.sh stage 1: the
    // concurrent audit bookkeeping (audit::checksRun() is a relaxed
    // atomic) must be race-free across workers.
    std::uint64_t audits_before = audit::checksRun();
    ParallelRunner runner(8);
    runner.setProgress(false);
    std::atomic<unsigned> audited{0};
    runner.forEach(8, [&audited](std::size_t i) {
        SystemConfig c = SystemConfig::singleCore();
        c.core.instrQuota = 30000;
        c.core.warmupInstr = 10000;
        std::vector<std::unique_ptr<trace::TraceSource>> src;
        src.push_back(trace::makeSpecSource(
            "mcf", trace::defaultScale, 3 + i));
        System sys(c, "pom", std::move(src));
        ASSERT_TRUE(sys.run());
        sys.eventQueue().auditInvariants();
        ++audited;
    });
    EXPECT_EQ(audited.load(), 8u);
    EXPECT_GT(audit::checksRun(), audits_before);
}
