/**
 * @file
 * Tests for the Relative-Slowdown Monitor (Sec. 3.1): counter
 * classification, SF_A / SF_B arithmetic (Eqs. 2-3), exponential
 * smoothing, swap accounting, and the Table 4 instrumentation.
 */

#include <gtest/gtest.h>

#include "core/rsm.hh"

using namespace profess;
using namespace profess::core;

namespace
{

Rsm::Params
smallParams(std::uint64_t msamp = 100, bool per_region = false)
{
    Rsm::Params p;
    p.numPrograms = 2;
    p.numRegions = 8;
    p.sampleRequests = msamp;
    p.alpha = 1.0; // no smoothing memory: SF equals raw (+1) value
    p.perRegionStats = per_region;
    return p;
}

} // anonymous namespace

TEST(Rsm, DefaultsToOne)
{
    Rsm rsm(smallParams());
    EXPECT_DOUBLE_EQ(rsm.sfA(0), 1.0);
    EXPECT_DOUBLE_EQ(rsm.sfB(0), 1.0);
    EXPECT_EQ(rsm.periods(0), 0u);
}

TEST(Rsm, SfAComputedFromCounters)
{
    Rsm rsm(smallParams(100));
    // Program 0: private region = 0.  Give it 20 private requests
    // (10 from M1) and 80 shared requests (20 from M1).
    for (int i = 0; i < 20; ++i)
        rsm.onServed(0, 0, i < 10);
    for (int i = 0; i < 80; ++i)
        rsm.onServed(0, 5, i < 20);
    ASSERT_EQ(rsm.periods(0), 1u);
    // With alpha=1 and the +1 anti-zero offset:
    // SF_A = ((10+1)/(20+1)) / ((20+1)/(80+1)).
    double expect = (11.0 / 21.0) / (21.0 / 81.0);
    EXPECT_NEAR(rsm.sfA(0), expect, 1e-9);
}

TEST(Rsm, HigherCompetitionRaisesSfA)
{
    // Same private behaviour, worse shared M1 fraction -> larger
    // SF_A.
    Rsm a(smallParams(100)), b(smallParams(100));
    for (int i = 0; i < 20; ++i) {
        a.onServed(0, 0, i < 10);
        b.onServed(0, 0, i < 10);
    }
    for (int i = 0; i < 80; ++i) {
        a.onServed(0, 5, i < 40); // 50% from M1
        b.onServed(0, 5, i < 8);  // 10% from M1
    }
    EXPECT_GT(b.sfA(0), a.sfA(0));
}

TEST(Rsm, SfBFromSwaps)
{
    Rsm rsm(smallParams(100));
    // 3 self swaps, 9 total involving program 0.
    for (int i = 0; i < 3; ++i)
        rsm.onSwap(0, 0, false);
    for (int i = 0; i < 6; ++i)
        rsm.onSwap(0, 1, false);
    for (int i = 0; i < 100; ++i)
        rsm.onServed(0, 5, true);
    // SF_B = (total+1)/(self+1) = 10/4.
    EXPECT_NEAR(rsm.sfB(0), 10.0 / 4.0, 1e-9);
}

TEST(Rsm, SwapCountsBothOwnersOnce)
{
    Rsm rsm(smallParams(10));
    rsm.onSwap(0, 1, false);
    for (int i = 0; i < 10; ++i) {
        rsm.onServed(0, 5, true);
        rsm.onServed(1, 5, true);
    }
    // Both programs saw one non-self swap: SF_B = 2/1 each.
    EXPECT_NEAR(rsm.sfB(0), 2.0, 1e-9);
    EXPECT_NEAR(rsm.sfB(1), 2.0, 1e-9);
}

TEST(Rsm, SelfSwapNotDoubleCounted)
{
    Rsm rsm(smallParams(10));
    rsm.onSwap(1, 1, false);
    for (int i = 0; i < 10; ++i)
        rsm.onServed(1, 5, true);
    // total = self = 1 -> SF_B = 2/2 = 1.
    EXPECT_NEAR(rsm.sfB(1), 1.0, 1e-9);
}

TEST(Rsm, PrivateRegionSwapsIgnored)
{
    Rsm rsm(smallParams(10));
    rsm.onSwap(0, 1, true); // in a private region: not counted
    for (int i = 0; i < 10; ++i)
        rsm.onServed(0, 5, true);
    EXPECT_NEAR(rsm.sfB(0), 1.0, 1e-9);
}

TEST(Rsm, VacantSideCounted)
{
    Rsm rsm(smallParams(10));
    rsm.onSwap(0, invalidProgram, false); // promotion into vacancy
    for (int i = 0; i < 10; ++i)
        rsm.onServed(0, 5, true);
    // One total swap, zero self: SF_B = 2/1.
    EXPECT_NEAR(rsm.sfB(0), 2.0, 1e-9);
}

TEST(Rsm, SmoothingDampensChange)
{
    Rsm::Params p = smallParams(100);
    p.alpha = 0.125;
    Rsm rsm(p);
    // Period 1: balanced -> SF_A ~ 1.
    for (int i = 0; i < 20; ++i)
        rsm.onServed(0, 0, i < 10);
    for (int i = 0; i < 80; ++i)
        rsm.onServed(0, 5, i < 40);
    double sf1 = rsm.sfA(0);
    // Period 2: heavy competition; the smoothed SF_A must move only
    // a fraction of the way to the raw value.
    for (int i = 0; i < 20; ++i)
        rsm.onServed(0, 0, i < 10);
    for (int i = 0; i < 80; ++i)
        rsm.onServed(0, 5, false);
    double sf2 = rsm.sfA(0);
    EXPECT_GT(sf2, sf1);
    // Raw SF_A of period 2 alone would be ~ (11/21)/(1/81) = 42.4.
    EXPECT_LT(sf2, 10.0);
}

TEST(Rsm, PeriodBoundariesPerProgram)
{
    Rsm rsm(smallParams(50));
    for (int i = 0; i < 49; ++i)
        rsm.onServed(0, 5, true);
    EXPECT_EQ(rsm.periods(0), 0u);
    rsm.onServed(0, 5, true);
    EXPECT_EQ(rsm.periods(0), 1u);
    EXPECT_EQ(rsm.periods(1), 0u);
}

TEST(Rsm, PerRegionHistogramStats)
{
    Rsm rsm(smallParams(64, true));
    // Uniform across the 6 shared regions (2..7) plus private 0.
    for (int i = 0; i < 64; ++i)
        rsm.onServed(0, 2 + (i % 6), true);
    ASSERT_EQ(rsm.history(0).size(), 1u);
    const Rsm::PeriodSample &s = rsm.history(0)[0];
    EXPECT_GT(s.reqStdPct, 0.0); // unused regions inflate stddev
    EXPECT_GT(s.rawSfA, 0.0);
    EXPECT_GT(s.avgSfA, 0.0);
}

TEST(Rsm, RejectsBadConfig)
{
    Rsm::Params p;
    p.numPrograms = 8;
    p.numRegions = 8;
    EXPECT_EXIT(Rsm r(p), ::testing::ExitedWithCode(1),
                "more regions");
}
