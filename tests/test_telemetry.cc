/**
 * @file
 * Tests for the observability layer: stat-registry name stability,
 * epoch-sampler ring + determinism across worker counts, decision
 * trace ring wraparound with wrap-immune totals, reconciliation of
 * trace summaries against the policy's own counters, telemetry-off
 * bit-identity, Chrome-trace export, Histogram underflow/overflow
 * accounting and the logging/telemetry flag parsing.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/telemetry.hh"
#include "common/trace_sink.hh"
#include "core/mdm.hh"
#include "core/profess.hh"
#include "sim/parallel_runner.hh"
#include "sim/run_telemetry.hh"
#include "sim/system.hh"
#include "trace/spec_profiles.hh"

using namespace profess;
using namespace profess::sim;
using core::Mdm;
using core::ProfessPolicy;
using telemetry::DecisionTraceSink;
using telemetry::EpochSampler;
using telemetry::StatRegistry;
using telemetry::TraceKind;
using telemetry::TraceRecord;

namespace
{

SystemConfig
quickSingle()
{
    SystemConfig c = SystemConfig::singleCore();
    c.core.instrQuota = 150000;
    c.core.warmupInstr = 50000;
    return c;
}

SystemConfig
quickQuad()
{
    SystemConfig c = SystemConfig::quadCore();
    c.core.instrQuota = 120000;
    c.core.warmupInstr = 60000;
    return c;
}

/** Every field of a RunResult must match bit-for-bit. */
void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.programs, b.programs);
    ASSERT_EQ(a.ipc.size(), b.ipc.size());
    for (std::size_t i = 0; i < a.ipc.size(); ++i)
        EXPECT_EQ(a.ipc[i], b.ipc[i]) << "ipc[" << i << "]";
    EXPECT_EQ(a.served, b.served);
    EXPECT_EQ(a.servedM1, b.servedM1);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.joules, b.joules);
    EXPECT_EQ(a.watts, b.watts);
    EXPECT_EQ(a.servedTotal, b.servedTotal);
    EXPECT_EQ(a.swaps, b.swaps);
    EXPECT_EQ(a.stcHitRate, b.stcHitRate);
    EXPECT_EQ(a.meanReadLatencyNs, b.meanReadLatencyNs);
    EXPECT_EQ(a.m1Fraction, b.m1Fraction);
    EXPECT_EQ(a.swapFraction, b.swapFraction);
    EXPECT_EQ(a.rowHitRate, b.rowHitRate);
    EXPECT_EQ(a.m2WriteFraction, b.m2WriteFraction);
    EXPECT_EQ(a.completed, b.completed);
}

/** Capture what a dump function writes to a FILE*. */
std::string
dumpToString(const std::function<void(std::FILE *)> &fn)
{
    std::FILE *f = std::tmpfile();
    EXPECT_NE(f, nullptr);
    fn(f);
    long n = std::ftell(f);
    std::string s(static_cast<std::size_t>(n), '\0');
    std::rewind(f);
    EXPECT_EQ(std::fread(&s[0], 1, s.size(), f), s.size());
    std::fclose(f);
    return s;
}

std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr)
        return "";
    std::string s;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        s.append(buf, n);
    std::fclose(f);
    return s;
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

std::string
tempBase(const std::string &tag)
{
    return ::testing::TempDir() + "profess_" + tag + "_" +
           std::to_string(::getpid());
}

/** Saves/restores the process-wide telemetry configuration. */
struct TelemetryConfigGuard
{
    TelemetryConfig saved;
    TelemetryConfigGuard() : saved(TelemetryConfig::global()) {}
    ~TelemetryConfigGuard() { TelemetryConfig::global() = saved; }
};

std::unique_ptr<System>
makeSystem(const SystemConfig &cfg, const std::string &policy,
           const std::vector<std::string> &programs,
           std::uint64_t seed)
{
    std::vector<std::unique_ptr<trace::TraceSource>> sources;
    for (std::size_t i = 0; i < programs.size(); ++i) {
        sources.push_back(trace::makeSpecSource(
            programs[i], trace::defaultScale, seed + 1009 * (i + 1)));
    }
    return std::make_unique<System>(cfg, policy, std::move(sources));
}

} // anonymous namespace

TEST(StatRegistry, RegistersResolvesAndDumps)
{
    StatRegistry reg;
    std::uint64_t counter = 7;
    reg.addCounter("z.counter", counter);
    reg.addProbe("a.probe", []() { return 2.5; });

    EXPECT_EQ(reg.size(), 2u);
    EXPECT_TRUE(reg.contains("z.counter"));
    EXPECT_TRUE(reg.contains("a.probe"));
    EXPECT_FALSE(reg.contains("missing"));
    EXPECT_EQ(reg.value("z.counter"), 7.0);
    EXPECT_EQ(reg.value("a.probe"), 2.5);
    EXPECT_EQ(reg.value("missing"), 0.0);

    // Counters are live references, not snapshots.
    counter = 11;
    EXPECT_EQ(reg.value("z.counter"), 11.0);

    // names() is sorted regardless of registration order.
    std::vector<std::string> names = reg.names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "a.probe");
    EXPECT_EQ(names[1], "z.counter");

    std::string json =
        dumpToString([&reg](std::FILE *f) { reg.dumpJson(f); });
    EXPECT_NE(json.find("\"a.probe\""), std::string::npos);
    EXPECT_NE(json.find("\"z.counter\""), std::string::npos);
    EXPECT_EQ(json.front(), '{');

    std::string csv =
        dumpToString([&reg](std::FILE *f) { reg.dumpCsv(f); });
    EXPECT_NE(csv.find("z.counter"), std::string::npos);
}

TEST(StatRegistryDeathTest, RejectsDuplicateNames)
{
    // Duplicate dotted names would silently shadow each other in
    // value() and produce ambiguous report columns; registration
    // panics instead (scripts/lint_profess.py catches the literal
    // cases statically, this covers runtime-composed prefixes).
    StatRegistry reg;
    std::uint64_t c = 0;
    reg.addCounter("dup.name", c);
    EXPECT_DEATH(reg.addCounter("dup.name", c),
                 "duplicate statistic name");
    EXPECT_DEATH(reg.addProbe("dup.name", []() { return 0.0; }),
                 "duplicate statistic name");
}

TEST(StatRegistry, ScalesToThousandsOfRegistrations)
{
    // Regression for the O(n^2) duplicate scan: contains() and the
    // addEntry() duplicate check are hash-set backed, so a few
    // thousand registrations (parallel sweeps register per-channel,
    // per-core and per-policy sets) stay effectively free.
    StatRegistry reg;
    const std::size_t n = 4000;
    std::vector<std::uint64_t> storage(n);
    for (std::size_t i = 0; i < n; ++i) {
        storage[i] = i;
        reg.addCounter("bulk.c" + std::to_string(i), storage[i]);
    }
    EXPECT_EQ(reg.size(), n);
    for (std::size_t i = 0; i < n; i += 97)
        EXPECT_TRUE(reg.contains("bulk.c" + std::to_string(i)));
    EXPECT_FALSE(reg.contains("bulk.c" + std::to_string(n)));
    EXPECT_FALSE(reg.contains("bulk"));
    EXPECT_EQ(reg.value("bulk.c1234"), 1234.0);

    // names() stays fully sorted even at this size.
    std::vector<std::string> names = reg.names();
    ASSERT_EQ(names.size(), n);
    for (std::size_t i = 1; i < names.size(); ++i)
        EXPECT_LT(names[i - 1], names[i]);
}

TEST(StatRegistry, ComponentNamesStableAcrossConstruction)
{
    // Two identically-built systems must register the exact same
    // dotted names: dashboards and diff tools key on them.
    TelemetryConfig cfg; // disabled: registration is unconditional
    auto sys1 = makeSystem(quickSingle(), "profess", {"mcf"}, 42);
    auto sys2 = makeSystem(quickSingle(), "profess", {"mcf"}, 43);
    RunTelemetry t1(cfg, "a");
    RunTelemetry t2(cfg, "b");
    sys1->attachTelemetry(t1);
    sys2->attachTelemetry(t2);

    std::vector<std::string> n1 = t1.registry().names();
    std::vector<std::string> n2 = t2.registry().names();
    EXPECT_EQ(n1, n2);
    EXPECT_GT(n1.size(), 20u);

    // Spot-check the documented hierarchy.
    for (const char *name :
         {"hybrid.swaps", "hybrid.stc.hits", "hybrid.stc.hit_rate",
          "hybrid.p0.served", "core0.retired", "core0.mem_reads",
          "os.alloc.cache_hit_rate", "mem.ch0.read_queue",
          "policy.profess.guidance.case1",
          "policy.profess.mdm.path_net_benefit",
          "policy.profess.rsm.p0.sf_a",
          "policy.profess.rsm.p0.periods"}) {
        EXPECT_TRUE(t1.registry().contains(name)) << name;
    }
}

TEST(EpochSampler, RingWrapKeepsNewestOldestFirst)
{
    StatRegistry reg;
    std::uint64_t counter = 0;
    reg.addCounter("c", counter);

    EpochSampler sampler(reg, /*interval_ticks=*/1000,
                         /*ring_capacity=*/4);
    sampler.select(reg.names());
    ASSERT_EQ(sampler.selection().size(), 1u);

    for (std::uint64_t i = 0; i < 10; ++i) {
        counter = i * 3;
        sampler.sampleNow(static_cast<Tick>(i * 1000));
    }
    EXPECT_EQ(sampler.epochs(), 10u);

    std::vector<EpochSampler::Sample> kept = sampler.retained();
    ASSERT_EQ(kept.size(), 4u);
    for (std::size_t i = 0; i < kept.size(); ++i) {
        std::uint64_t epoch = 6 + i; // oldest retained first
        EXPECT_EQ(kept[i].epoch, epoch);
        EXPECT_EQ(kept[i].tick, epoch * 1000);
        ASSERT_EQ(kept[i].values.size(), 1u);
        EXPECT_EQ(kept[i].values[0],
                  static_cast<double>(epoch * 3));
    }
}

TEST(TraceRing, WraparoundKeepsWrapImmuneTotals)
{
    constexpr std::uint32_t kNetBenefit =
        static_cast<std::uint32_t>(Mdm::DecidePath::NetBenefit);
    constexpr std::uint32_t kRejected =
        static_cast<std::uint32_t>(Mdm::DecidePath::Rejected);

    DecisionTraceSink sink(/*capacity=*/8);
    EXPECT_EQ(sink.capacity(), 8u);

    // 21 records: 12 MDM decides (7 net_benefit swaps, 5 rejected),
    // 6 guidance cases, 3 period rollovers.
    std::uint64_t tick = 0;
    auto push = [&sink, &tick](TraceKind kind, std::uint32_t detail,
                               bool swapped) {
        TraceRecord r;
        r.tick = tick++;
        r.kind = static_cast<std::uint8_t>(kind);
        r.detail = detail;
        r.swapped = swapped ? 1 : 0;
        sink.push(r);
    };
    for (int i = 0; i < 7; ++i)
        push(TraceKind::MdmDecide, kNetBenefit, true);
    for (int i = 0; i < 5; ++i)
        push(TraceKind::MdmDecide, kRejected, false);
    for (int i = 0; i < 6; ++i)
        push(TraceKind::GuidanceCase, 1, false);
    for (int i = 0; i < 3; ++i)
        push(TraceKind::RsmPeriod, 0, false);

    EXPECT_EQ(sink.total(), 21u);
    EXPECT_EQ(sink.retainedCount(), 8u);
    EXPECT_EQ(sink.kindTotal(TraceKind::MdmDecide), 12u);
    EXPECT_EQ(sink.kindTotal(TraceKind::GuidanceCase), 6u);
    EXPECT_EQ(sink.kindTotal(TraceKind::RsmPeriod), 3u);
    EXPECT_EQ(sink.pathTotal(kNetBenefit), 7u);
    EXPECT_EQ(sink.pathTotal(kRejected), 5u);
    EXPECT_EQ(sink.swapTotal(kNetBenefit), 7u);
    EXPECT_EQ(sink.swapTotal(kRejected), 0u);

    // The ring holds the newest 8 records, oldest first.
    std::vector<TraceRecord> kept = sink.retained();
    ASSERT_EQ(kept.size(), 8u);
    for (std::size_t i = 0; i < kept.size(); ++i)
        EXPECT_EQ(kept[i].tick, 13 + i);

    // JSONL flush: one line per retained record plus the summary,
    // whose totals are wrap-immune (they cover dropped records too).
    std::string jsonl =
        dumpToString([&sink](std::FILE *f) { sink.flushJsonl(f); });
    std::size_t lines = 0;
    for (char c : jsonl)
        lines += c == '\n';
    EXPECT_EQ(lines, 9u);
    EXPECT_NE(jsonl.find("\"summary\":{\"total\":21,\"retained\":8,"
                         "\"dropped\":13"),
              std::string::npos);
    EXPECT_NE(jsonl.find("\"rsm_period\":3"), std::string::npos);
}

TEST(TraceReconciliation, SinkTotalsMatchPolicyCounters)
{
    TelemetryConfig cfg;
    cfg.trace = true;
    cfg.epochInterval = 5000;

    auto sys = makeSystem(quickSingle(), "profess", {"mcf"}, 42);
    RunTelemetry bundle(cfg, "reconcile");
    sys->attachTelemetry(bundle);
    ASSERT_TRUE(sys->run());

    DecisionTraceSink *sink = bundle.decisionSink();
    ASSERT_NE(sink, nullptr);
    ProfessPolicy *pp = sys->professPolicy();
    ASSERT_NE(pp, nullptr);

    // Every MDM evaluation was traced: per-path counts in the sink
    // equal the policy's own path counters exactly.
    constexpr auto num_paths =
        static_cast<unsigned>(Mdm::DecidePath::NumPaths);
    std::uint64_t decides = 0, swap_decisions = 0;
    for (unsigned p = 0; p < num_paths; ++p) {
        auto path = static_cast<Mdm::DecidePath>(p);
        EXPECT_EQ(sink->pathTotal(p), pp->mdm().pathCount(path))
            << Mdm::pathName(path);
        if (!Mdm::pathSwaps(path)) {
            EXPECT_EQ(sink->swapTotal(p), 0u) << Mdm::pathName(path);
        }
        decides += sink->pathTotal(p);
        swap_decisions += sink->swapTotal(p);
    }
    EXPECT_EQ(sink->kindTotal(TraceKind::MdmDecide), decides);
    EXPECT_GT(decides, 0u);

    // Swap-deciding paths account for every executed swap (a
    // decision can still be in flight when the run ends, so the
    // decision count bounds the executed count from above).
    EXPECT_GE(swap_decisions, sys->controller().swapCount());
    EXPECT_GT(sys->controller().swapCount(), 0u);

    // Guidance-case records reconcile with the Table 7 counters.
    std::uint64_t cases = 0;
    for (unsigned c = 0; c < 5; ++c) {
        cases += pp->caseCount(
            static_cast<ProfessPolicy::GuidanceCase>(c));
    }
    EXPECT_EQ(sink->kindTotal(TraceKind::GuidanceCase), cases);

    // Period rollovers reconcile with the RSM period counter, which
    // is also what the registry probe reports.
    EXPECT_EQ(
        static_cast<double>(sink->kindTotal(TraceKind::RsmPeriod)),
        bundle.registry().value("policy.profess.rsm.p0.periods"));

    // The sampler ran and saw the full registry.
    ASSERT_NE(bundle.sampler(), nullptr);
    EXPECT_GT(bundle.sampler()->epochs(), 0u);
    EXPECT_EQ(bundle.sampler()->selection().size(),
              bundle.registry().size());
}

TEST(Differential, TelemetryOffIsBitIdentical)
{
    TelemetryConfigGuard guard;
    const std::vector<std::string> programs = {"mcf"};

    // Telemetry on (tracing + sampling, no artifact directory).
    TelemetryConfig::global() = TelemetryConfig{};
    TelemetryConfig::global().trace = true;
    TelemetryConfig::global().epochInterval = 5000;
    AloneIpcCache cache_on;
    ExperimentRunner on(quickSingle(), trace::defaultScale,
                        &cache_on);
    RunResult a = on.run("profess", programs, 7, "mix");

    // Telemetry off, same seed: labelled and clean runs.
    TelemetryConfig::global() = TelemetryConfig{};
    AloneIpcCache cache_off;
    ExperimentRunner off(quickSingle(), trace::defaultScale,
                         &cache_off);
    RunResult b = off.run("profess", programs, 7, "mix");
    RunResult c = off.run("profess", programs, 7);

    EXPECT_TRUE(a.completed);
    expectIdentical(a, b);
    expectIdentical(a, c);
}

TEST(Differential, EpochSeriesIdenticalAcrossWorkerCounts)
{
    TelemetryConfigGuard guard;
    std::string base = tempBase("epochs");
    const WorkloadSpec *w01 = findWorkload("w01");
    const WorkloadSpec *w05 = findWorkload("w05");
    ASSERT_NE(w01, nullptr);
    ASSERT_NE(w05, nullptr);

    std::vector<RunJob> batch = {
        multiJob(quickQuad(), "profess", *w01),
        multiJob(quickQuad(), "mdm", *w05),
    };
    for (RunJob &j : batch)
        j.slowdowns = false; // reference runs are label-free anyway

    auto runWith = [&batch](unsigned jobs, const std::string &dir) {
        TelemetryConfig::global() = TelemetryConfig{};
        TelemetryConfig::global().outDir = dir;
        TelemetryConfig::global().epochInterval = 5000;
        AloneIpcCache cache;
        ParallelRunner runner(jobs, &cache);
        runner.setProgress(false);
        return runner.run(batch);
    };
    std::vector<MultiMetrics> serial = runWith(1, base + "/serial");
    std::vector<MultiMetrics> parallel = runWith(8, base + "/par");

    ASSERT_EQ(serial.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        expectIdentical(serial[i].run, parallel[i].run);
        std::string run_dir =
            batch[i].label + "_" + batch[i].policy;
        SCOPED_TRACE(run_dir);
        std::string s_epochs =
            readFile(base + "/serial/" + run_dir + "/epochs.jsonl");
        std::string p_epochs =
            readFile(base + "/par/" + run_dir + "/epochs.jsonl");
        EXPECT_FALSE(s_epochs.empty());
        EXPECT_EQ(s_epochs, p_epochs);
        // The end-of-run stat dump is deterministic too.
        std::string s_stats =
            readFile(base + "/serial/" + run_dir + "/stats.json");
        std::string p_stats =
            readFile(base + "/par/" + run_dir + "/stats.json");
        EXPECT_FALSE(s_stats.empty());
        EXPECT_EQ(s_stats, p_stats);
    }
}

TEST(Differential, MetricsExportIsBitIdentical)
{
    TelemetryConfigGuard guard;
    const std::vector<std::string> programs = {"mcf"};
    std::string prom = tempBase("metrics_off") + ".prom";

    // --metrics-out alone turns on the full observational stack
    // (latency-attribution spans, fairness gauges, exporter);
    // simulation results must not move at all.
    MetricsCollector::global().clear();
    TelemetryConfig::global() = TelemetryConfig{};
    TelemetryConfig::global().metricsOut = prom;
    AloneIpcCache cache_on;
    ExperimentRunner on(quickSingle(), trace::defaultScale,
                        &cache_on);
    RunResult a = on.run("profess", programs, 7, "mix");
    MetricsCollector::global().flush();
    MetricsCollector::global().clear();

    TelemetryConfig::global() = TelemetryConfig{};
    AloneIpcCache cache_off;
    ExperimentRunner off(quickSingle(), trace::defaultScale,
                         &cache_off);
    RunResult b = off.run("profess", programs, 7, "mix");

    EXPECT_TRUE(a.completed);
    expectIdentical(a, b);

    // The exposition was written, carries latency spans and is
    // terminated (deep validation lives in tests/test_metrics.cc).
    std::string text = readFile(prom);
    EXPECT_NE(text.find("profess_latency_bucket"),
              std::string::npos);
    EXPECT_NE(text.find("# EOF"), std::string::npos);
}

TEST(Differential, MetricsFileIdenticalAcrossWorkerCounts)
{
    TelemetryConfigGuard guard;
    std::string base = tempBase("metrics_jobs");
    const WorkloadSpec *w01 = findWorkload("w01");
    const WorkloadSpec *w05 = findWorkload("w05");
    ASSERT_NE(w01, nullptr);
    ASSERT_NE(w05, nullptr);

    std::vector<RunJob> batch = {
        multiJob(quickQuad(), "profess", *w01),
        multiJob(quickQuad(), "mdm", *w05),
    };
    for (RunJob &j : batch)
        j.slowdowns = false;

    // The collector sorts snapshots by run label before every
    // rewrite, so worker count and completion order must leave no
    // trace in the exposition: a zero-threshold metrics_diff.py of
    // these two files reports nothing (here byte equality, which is
    // stronger).
    auto runWith = [&batch](unsigned jobs, const std::string &file) {
        MetricsCollector::global().clear();
        TelemetryConfig::global() = TelemetryConfig{};
        TelemetryConfig::global().metricsOut = file;
        AloneIpcCache cache;
        ParallelRunner runner(jobs, &cache);
        runner.setProgress(false);
        runner.run(batch);
        MetricsCollector::global().flush();
    };
    std::string serial = base + "_serial.prom";
    std::string parallel = base + "_par.prom";
    runWith(1, serial);
    runWith(8, parallel);
    MetricsCollector::global().clear();

    std::string s = readFile(serial);
    std::string p = readFile(parallel);
    EXPECT_FALSE(s.empty());
    EXPECT_EQ(s, p);
}

TEST(RunTelemetry, WritesRunArtifacts)
{
    std::string base = tempBase("artifacts");
    TelemetryConfig cfg;
    cfg.trace = true;
    cfg.outDir = base;
    cfg.epochInterval = 5000;

    SystemConfig sys_cfg = quickSingle();
    sys_cfg.core.instrQuota = 80000;
    sys_cfg.core.warmupInstr = 0;
    auto sys = makeSystem(sys_cfg, "profess", {"mcf"}, 5);

    // Labels are sanitized into filesystem-safe directory names.
    RunTelemetry bundle(cfg, "smoke run:1");
    EXPECT_EQ(bundle.directory(), base + "/smoke_run_1");
    sys->attachTelemetry(bundle);
    ASSERT_TRUE(sys->run());
    bundle.finish("profess", "mcf", 5, configJson(sys_cfg), true);

    const std::string dir = bundle.directory();
    for (const char *f : {"manifest.json", "stats.json",
                          "epochs.jsonl", "decisions.jsonl",
                          "trace.json"}) {
        EXPECT_TRUE(fileExists(dir + "/" + f)) << f;
    }
    std::string manifest = readFile(dir + "/manifest.json");
    EXPECT_NE(manifest.find("\"profess-run-manifest-v1\""),
              std::string::npos);
    EXPECT_NE(manifest.find("\"smoke run:1\""), std::string::npos);
    EXPECT_NE(manifest.find("\"seed\": 5"), std::string::npos);
    std::string decisions = readFile(dir + "/decisions.jsonl");
    EXPECT_NE(decisions.find("\"summary\""), std::string::npos);
    std::string chrome = readFile(dir + "/trace.json");
    EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(chrome.find("controller.access"), std::string::npos);
}

TEST(ChromeTrace, CapsEventsAndCountsDrops)
{
    telemetry::ChromeTraceSink sink(/*max_events=*/4);
    for (int i = 0; i < 3; ++i)
        sink.complete("swap", "hybrid", 100 * i, 50, 0);
    for (int i = 0; i < 3; ++i)
        sink.instant("st_fill", "hybrid", 10 * i, 1);
    EXPECT_EQ(sink.size(), 4u);
    EXPECT_EQ(sink.dropped(), 2u);

    // Call-sampled timer: 128 calls at period 64 -> 2 timed.
    telemetry::TimerSlot slot{1000, 128, 2};
    EXPECT_EQ(slot.estimatedNs(), 64000.0);
    std::string json = dumpToString([&sink, &slot](std::FILE *f) {
        sink.writeJson(f, {{"controller.access", &slot}});
    });
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ns\":1000,\"calls\":128,\"sampled\":2,"
                        "\"est_ns\":64000"),
              std::string::npos);
    EXPECT_NE(json.find("\"dropped\":2"), std::string::npos);
}

TEST(TelemetryConfig, ArgAndEnvParsing)
{
    ::unsetenv("PROFESS_TRACE");
    ::unsetenv("PROFESS_TELEMETRY_OUT");
    ::unsetenv("PROFESS_EPOCH_TICKS");
    ::unsetenv("PROFESS_METRICS_OUT");

    // Flags are applied and stripped; unrelated arguments survive.
    const char *raw[] = {"bench",        "--trace", "--telemetry-out",
                         "/tmp/x",       "--jobs",  "4",
                         "--epoch-ticks=123", "--metrics-out",
                         "/tmp/m.prom"};
    std::vector<char *> argv;
    for (const char *a : raw)
        argv.push_back(const_cast<char *>(a));
    argv.push_back(nullptr);
    int argc = 9;
    TelemetryConfig cfg;
    cfg.initFromArgs(argc, argv.data());
    EXPECT_TRUE(cfg.trace);
    EXPECT_EQ(cfg.outDir, "/tmp/x");
    EXPECT_EQ(cfg.epochInterval, 123u);
    EXPECT_EQ(cfg.metricsOut, "/tmp/m.prom");
    ASSERT_EQ(argc, 3);
    EXPECT_STREQ(argv[1], "--jobs");
    EXPECT_STREQ(argv[2], "4");

    // The = spelling, alone, also enables telemetry.
    const char *raw_eq[] = {"bench", "--metrics-out=/tmp/n.prom"};
    std::vector<char *> argv_eq;
    for (const char *a : raw_eq)
        argv_eq.push_back(const_cast<char *>(a));
    argv_eq.push_back(nullptr);
    int argc_eq = 2;
    TelemetryConfig eq_cfg;
    eq_cfg.initFromArgs(argc_eq, argv_eq.data());
    EXPECT_EQ(eq_cfg.metricsOut, "/tmp/n.prom");
    EXPECT_TRUE(eq_cfg.enabled());
    EXPECT_EQ(argc_eq, 1);

    // Environment spellings.
    ::setenv("PROFESS_TRACE", "1", 1);
    ::setenv("PROFESS_TELEMETRY_OUT", "/tmp/y", 1);
    ::setenv("PROFESS_EPOCH_TICKS", "777", 1);
    ::setenv("PROFESS_METRICS_OUT", "/tmp/env.prom", 1);
    TelemetryConfig env_cfg;
    env_cfg.initFromEnv();
    EXPECT_TRUE(env_cfg.trace);
    EXPECT_EQ(env_cfg.outDir, "/tmp/y");
    EXPECT_EQ(env_cfg.epochInterval, 777u);
    EXPECT_EQ(env_cfg.metricsOut, "/tmp/env.prom");

    // PROFESS_TRACE=0 means off.
    ::setenv("PROFESS_TRACE", "0", 1);
    TelemetryConfig off_cfg;
    off_cfg.initFromEnv();
    EXPECT_FALSE(off_cfg.trace);

    ::unsetenv("PROFESS_TRACE");
    ::unsetenv("PROFESS_TELEMETRY_OUT");
    ::unsetenv("PROFESS_EPOCH_TICKS");
    ::unsetenv("PROFESS_METRICS_OUT");
    EXPECT_FALSE(TelemetryConfig{}.enabled());
}

TEST(Histogram, UnderflowOverflowAccounting)
{
    Histogram h(/*bucket_width=*/1.0, /*num_buckets=*/4);
    h.add(-0.5); // below the first edge
    h.add(0.5);  // bucket 0
    h.add(3.5);  // bucket 3
    h.add(4.0);  // at the last regular edge: overflow
    h.add(100.0);

    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.summary().count(), 5u);

    std::string json =
        dumpToString([&h](std::FILE *f) { h.dumpJson(f); });
    EXPECT_NE(json.find("\"underflow\":1"), std::string::npos);
    EXPECT_NE(json.find("\"overflow\":2"), std::string::npos);
}

TEST(HistogramDeathTest, RejectsInvalidBucketEdges)
{
    EXPECT_EXIT(Histogram(0.0, 4), ::testing::ExitedWithCode(1),
                "bucket width");
    EXPECT_EXIT(Histogram(-1.0, 4), ::testing::ExitedWithCode(1),
                "bucket width");
    EXPECT_EXIT(Histogram(1.0, 0), ::testing::ExitedWithCode(1),
                "bucket");
}

TEST(Logging, WarnRateLimitCountsEveryHit)
{
    int saved = logging::verbosity;
    logging::verbosity = 1;
    logging::resetWarnHistory();

    for (int i = 0; i < 8; ++i)
        warn("telemetry test warning %d", 7);
    // All eight fired (and were counted) even though only the first
    // five were printed.
    EXPECT_EQ(logging::warnCount("telemetry test warning 7"), 8u);
    EXPECT_EQ(logging::warnCount("never emitted"), 0u);

    logging::resetWarnHistory();
    EXPECT_EQ(logging::warnCount("telemetry test warning 7"), 0u);
    logging::verbosity = saved;
}

TEST(Logging, ConfigureStripsVerbosityFlags)
{
    int saved = logging::verbosity;
    ::unsetenv("PROFESS_LOG");

    const char *raw[] = {"t", "--quiet", "--silent", "--keep"};
    std::vector<char *> argv;
    for (const char *a : raw)
        argv.push_back(const_cast<char *>(a));
    argv.push_back(nullptr);
    int argc = 4;
    logging::configure(argc, argv.data());
    EXPECT_EQ(logging::verbosity, 0);
    ASSERT_EQ(argc, 2);
    EXPECT_STREQ(argv[1], "--keep");

    const char *raw2[] = {"t", "--log-level", "2"};
    std::vector<char *> argv2;
    for (const char *a : raw2)
        argv2.push_back(const_cast<char *>(a));
    argv2.push_back(nullptr);
    int argc2 = 3;
    logging::configure(argc2, argv2.data());
    EXPECT_EQ(logging::verbosity, 2);
    EXPECT_EQ(argc2, 1);

    logging::verbosity = saved;
}
