/**
 * @file
 * Determinism contract of the calendar-queue simulation kernel.
 *
 * The event queue replaced a binary heap with a bucketed calendar
 * wheel plus an overflow tier (common/event.hh); the contract is
 * that the globally minimal (when, seq) event always runs next, so
 * same-tick events keep FIFO scheduling order no matter which tier
 * or bucket they sit in.  These tests pin that contract directly
 * (tie-breaking, overflow migration, wheel wrap-around) and then
 * differentially: the end-to-end golden metrics must come out
 * bit-identical through the serial (--jobs 1) and threaded
 * (--jobs 8) experiment paths.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "common/event.hh"
#include "sim/parallel_runner.hh"

using namespace profess;
using namespace profess::sim;

// ---------------------------------------------------------------
// Calendar-queue ordering.
// ---------------------------------------------------------------

TEST(CalendarQueue, SameTickFifoBySeq)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 64; ++i)
        eq.schedule(100, [&order, i]() { order.push_back(i); });
    eq.run();
    ASSERT_EQ(order.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(CalendarQueue, TickOrderBeatsInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    // Insert out of tick order, including same-tick pairs.
    const Tick ticks[] = {50, 10, 50, 10, 30, 0};
    for (int i = 0; i < 6; ++i) {
        eq.schedule(ticks[i],
                    [&order, i]() { order.push_back(i); });
    }
    eq.run();
    // Sorted by (tick, insertion seq): t0:5, t10:1,3, t30:4, t50:0,2
    std::vector<int> expect{5, 1, 3, 4, 0, 2};
    EXPECT_EQ(order, expect);
}

TEST(CalendarQueue, OverflowTierMigration)
{
    EventQueue eq;
    std::vector<int> order;
    // Far beyond the 16384-tick wheel horizon: overflow tier.
    for (int i = 0; i < 8; ++i) {
        eq.schedule(1000000 + 10 * i,
                    [&order, i]() { order.push_back(i); });
    }
    EXPECT_EQ(eq.overflowSize(), 8u);
    // Near events go straight into the wheel.
    for (int i = 8; i < 12; ++i) {
        eq.schedule(static_cast<Tick>(i),
                    [&order, i]() { order.push_back(i); });
    }
    EXPECT_EQ(eq.overflowSize(), 8u);
    EXPECT_EQ(eq.size(), 12u);
    eq.run();
    // Near events first, then the migrated far events in tick order.
    std::vector<int> expect{8, 9, 10, 11, 0, 1, 2, 3, 4, 5, 6, 7};
    EXPECT_EQ(order, expect);
    EXPECT_EQ(eq.overflowSize(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(CalendarQueue, OverflowSameTickKeepsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    // Same far tick: FIFO must survive heap + migration.
    for (int i = 0; i < 16; ++i) {
        eq.schedule(500000,
                    [&order, i]() { order.push_back(i); });
    }
    EXPECT_EQ(eq.overflowSize(), 16u);
    eq.run();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(CalendarQueue, WheelWrapAroundChain)
{
    // A self-rescheduling event crosses the wheel horizon many
    // times; time must advance strictly monotonically.
    EventQueue eq;
    int fired = 0;
    Tick last = 0;
    std::function<void()> impl = [&]() {
        EXPECT_GE(eq.now(), last);
        last = eq.now();
        if (++fired < 200)
            eq.scheduleIn(1777, [&impl]() { impl(); });
    };
    eq.schedule(0, [&impl]() { impl(); });
    eq.run();
    EXPECT_EQ(fired, 200);
    EXPECT_EQ(eq.now(), 199u * 1777u);
}

TEST(CalendarQueue, MixedHorizonGlobalOrdering)
{
    // Pseudo-random delays straddling the horizon; execution order
    // must be globally nondecreasing in time with now() == when.
    EventQueue eq;
    std::uint64_t lcg = 99;
    std::vector<Tick> fireTicks;
    for (int i = 0; i < 500; ++i) {
        lcg = lcg * 6364136223846793005ull +
              1442695040888963407ull;
        Tick when = (lcg >> 33) % 40000; // ~60% beyond horizon
        eq.schedule(when, [&eq, &fireTicks]() {
            fireTicks.push_back(eq.now());
        });
    }
    eq.run();
    ASSERT_EQ(fireTicks.size(), 500u);
    for (std::size_t i = 1; i < fireTicks.size(); ++i)
        EXPECT_LE(fireTicks[i - 1], fireTicks[i]);
}

TEST(CalendarQueue, RunUntilAdvancesToLimitWhenDrained)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&fired]() { ++fired; });
    EXPECT_EQ(eq.runUntil(5), 0u);
    EXPECT_EQ(eq.now(), 0u); // pending event: clock holds
    EXPECT_EQ(eq.runUntil(100), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 100u); // drained: clock moves to the limit
}

// ---------------------------------------------------------------
// Differential golden run: serial vs threaded experiment paths.
//
// Seeds are pinned to 1 (the ExperimentRunner default), so the
// integer counters below are the same goldens pinned in
// test_golden_metrics.cc; any kernel-ordering change shows up as
// a counter drift here before it shows up in a figure.
// ---------------------------------------------------------------

namespace
{

std::vector<RunJob>
goldenBatch()
{
    SystemConfig cfg = SystemConfig::singleCore();
    cfg.core.instrQuota = 150000;
    cfg.core.warmupInstr = 50000;
    std::vector<RunJob> batch;
    for (const char *policy : {"pom", "mdm", "profess"}) {
        RunJob j = singleJob(cfg, policy, "mcf");
        j.seed = 1; // pin to the ExperimentRunner default
        batch.push_back(j);
    }
    return batch;
}

} // anonymous namespace

TEST(KernelDeterminism, GoldenMetricsSerialAndThreaded)
{
    std::vector<RunJob> batch = goldenBatch();

    ParallelRunner serial(1);
    serial.setProgress(false);
    std::vector<MultiMetrics> r1 = serial.run(batch);

    ParallelRunner threaded(8);
    threaded.setProgress(false);
    std::vector<MultiMetrics> r8 = threaded.run(batch);

    ASSERT_EQ(r1.size(), 3u);
    ASSERT_EQ(r8.size(), 3u);

    // Serial results must equal the pinned goldens ...
    EXPECT_EQ(r1[0].run.servedTotal, 9085u);
    EXPECT_EQ(r1[0].run.swaps, 323u);
    EXPECT_NEAR(r1[0].run.ipc[0], 0.061480317103094567, 1e-12);
    EXPECT_NEAR(r1[0].run.m1Fraction, 0.29730324711062189, 1e-12);
    EXPECT_EQ(r1[1].run.servedTotal, 9085u);
    EXPECT_EQ(r1[1].run.swaps, 29u);
    EXPECT_NEAR(r1[1].run.ipc[0], 0.079062858010098852, 1e-12);
    EXPECT_EQ(r1[2].run.swaps, 29u);
    EXPECT_NEAR(r1[2].run.ipc[0], 0.079062858010098852, 1e-12);

    // ... and the threaded run must be bit-identical to serial.
    for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(r1[i].run.servedTotal, r8[i].run.servedTotal);
        EXPECT_EQ(r1[i].run.swaps, r8[i].run.swaps);
        ASSERT_EQ(r1[i].run.ipc.size(), r8[i].run.ipc.size());
        EXPECT_EQ(r1[i].run.ipc[0], r8[i].run.ipc[0]);
        EXPECT_EQ(r1[i].run.m1Fraction, r8[i].run.m1Fraction);
        EXPECT_EQ(r1[i].run.stcHitRate, r8[i].run.stcHitRate);
        EXPECT_EQ(r1[i].run.meanReadLatencyNs,
                  r8[i].run.meanReadLatencyNs);
        EXPECT_EQ(r1[i].run.joules, r8[i].run.joules);
    }
}
