/**
 * @file
 * Tests for the cache-hierarchy trace filter: miss extraction,
 * writeback emission, instruction-gap accounting, reset.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cpu/cache_filter.hh"
#include "trace/patterns.hh"
#include "trace/synthetic.hh"

using namespace profess;
using namespace profess::cpu;

namespace
{

cache::Hierarchy::Params
tinyHierarchy()
{
    cache::Hierarchy::Params p;
    p.l1 = {"L1", 1 * KiB, 2, 64, 2};
    p.l2 = {"L2", 2 * KiB, 2, 64, 8};
    p.l3 = {"L3", 4 * KiB, 4, 64, 20};
    return p;
}

std::unique_ptr<trace::SyntheticTraceSource>
makeInner(std::uint64_t footprint, double wf, std::uint64_t seed)
{
    trace::SyntheticParams sp;
    sp.footprintBytes = footprint;
    sp.mpki = 100.0;
    sp.writeFraction = wf;
    sp.seed = seed;
    return std::make_unique<trace::SyntheticTraceSource>(
        sp, std::make_unique<trace::UniformPattern>(footprint));
}

} // anonymous namespace

TEST(CacheFilter, SmallFootprintFiltersEverything)
{
    // Footprint fits in L1: after warm-up, no more misses; the
    // filter consumes the inner stream until one leaks... use a
    // bounded pull count.
    auto inner = makeInner(512, 0.0, 1);
    CacheFilterSource filter(*inner, tinyHierarchy());
    trace::MemAccess a;
    // 8 distinct lines: at most 8 cold misses emerge.
    for (int i = 0; i < 8; ++i) {
        if (!filter.next(a))
            break;
    }
    // After the cold misses, the hierarchy absorbs thousands of
    // accesses per emitted miss; gaps grow accordingly.
    EXPECT_GE(filter.consumed(), 8u);
}

TEST(CacheFilter, GapsAccumulateAcrossHits)
{
    auto inner = makeInner(64 * KiB, 0.0, 2);
    CacheFilterSource filter(*inner, tinyHierarchy());
    trace::MemAccess a;
    std::uint64_t out_instr = 0, n = 500;
    for (std::uint64_t i = 0; i < n; ++i) {
        ASSERT_TRUE(filter.next(a));
        out_instr += a.instGap + 1;
    }
    // Instructions are conserved: the emitted gaps cover all inner
    // instructions (inner MPKI 100 -> ~10 instr per inner access).
    std::uint64_t inner_accesses = filter.consumed();
    EXPECT_GE(out_instr, inner_accesses * 8);
}

TEST(CacheFilter, WritebacksEmittedAsWrites)
{
    auto inner = makeInner(64 * KiB, 0.8, 3);
    CacheFilterSource filter(*inner, tinyHierarchy());
    trace::MemAccess a;
    unsigned writes = 0, reads = 0;
    for (int i = 0; i < 2000; ++i) {
        ASSERT_TRUE(filter.next(a));
        if (a.isWrite)
            ++writes;
        else
            ++reads;
    }
    EXPECT_GT(writes, 0u);
    EXPECT_GT(reads, 0u);
}

TEST(CacheFilter, ResetRestartsCleanly)
{
    auto inner = makeInner(64 * KiB, 0.3, 4);
    CacheFilterSource filter(*inner, tinyHierarchy());
    trace::MemAccess first;
    ASSERT_TRUE(filter.next(first));
    for (int i = 0; i < 100; ++i) {
        trace::MemAccess t;
        ASSERT_TRUE(filter.next(t));
    }
    filter.reset();
    trace::MemAccess again;
    ASSERT_TRUE(filter.next(again));
    EXPECT_EQ(again.vaddr, first.vaddr);
    EXPECT_EQ(again.instGap, first.instGap);
}

TEST(CacheFilter, FootprintForwarded)
{
    auto inner = makeInner(64 * KiB, 0.0, 5);
    CacheFilterSource filter(*inner, tinyHierarchy());
    EXPECT_EQ(filter.footprintBytes(), 64 * KiB);
}
