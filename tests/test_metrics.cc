/**
 * @file
 * Tests for the metrics-export layer: Histogram::quantile edge
 * cases, dotted-name -> OpenMetrics family/label mapping, label
 * escaping, the text-exposition writer (validated by a test-side
 * mini-parser), exact _sum/_count reconciliation against the
 * registry's derived probes, the latency-attribution table, the
 * process-wide --metrics-out collector, and an end-to-end export
 * of a fig13-style multi-program ProFess run.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "common/latency_attr.hh"
#include "common/openmetrics.hh"
#include "common/stats.hh"
#include "common/telemetry.hh"
#include "sim/run_telemetry.hh"
#include "sim/system.hh"
#include "sim/workloads.hh"
#include "trace/spec_profiles.hh"

using namespace profess;
using namespace profess::sim;
using telemetry::LatencyAttribution;
using telemetry::MetricName;
using telemetry::MetricsSnapshot;
using telemetry::StatRegistry;

namespace
{

std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr)
        return "";
    std::string s;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        s.append(buf, n);
    std::fclose(f);
    return s;
}

std::string
tempBase(const std::string &tag)
{
    return ::testing::TempDir() + "profess_" + tag + "_" +
           std::to_string(::getpid());
}

std::string
dumpExposition(const std::vector<MetricsSnapshot> &runs)
{
    std::FILE *f = std::tmpfile();
    EXPECT_NE(f, nullptr);
    telemetry::writeOpenMetrics(f, runs);
    long n = std::ftell(f);
    std::string s(static_cast<std::size_t>(n), '\0');
    std::rewind(f);
    EXPECT_EQ(std::fread(&s[0], 1, s.size(), f), s.size());
    std::fclose(f);
    return s;
}

/**
 * Mini-parser for the OpenMetrics text exposition.
 *
 * Strict about everything our writer promises: every non-comment
 * line is `name{labels} value`, every sample's family has a
 * preceding `# TYPE` line, counter samples end in _total, no sample
 * follows `# EOF`, and the file is terminated by `# EOF`.  Label
 * values are unescaped, so round-trip tests can compare raw
 * strings.  Parse failures surface as ADD_FAILURE plus an empty
 * result.
 */
struct Exposition
{
    struct Sample
    {
        std::string name; ///< full sample name (incl. suffix)
        std::map<std::string, std::string> labels;
        double value = 0.0;
    };

    std::map<std::string, std::string> types; ///< family -> type
    std::vector<Sample> samples;
    bool sawEof = false;

    const Sample *
    find(const std::string &name,
         const std::map<std::string, std::string> &labels) const
    {
        for (const Sample &s : samples) {
            if (s.name == name && s.labels == labels)
                return &s;
        }
        return nullptr;
    }
};

bool
parseLabels(const std::string &raw, Exposition::Sample &out)
{
    std::size_t i = 0;
    while (i < raw.size()) {
        std::size_t eq = raw.find('=', i);
        if (eq == std::string::npos || raw.size() <= eq + 1 ||
            raw[eq + 1] != '"')
            return false;
        std::string key = raw.substr(i, eq - i);
        std::string value;
        std::size_t j = eq + 2;
        for (; j < raw.size() && raw[j] != '"'; ++j) {
            char c = raw[j];
            if (c == '\\') {
                if (j + 1 >= raw.size())
                    return false;
                char n = raw[++j];
                value += n == 'n' ? '\n' : n;
            } else {
                value += c;
            }
        }
        if (j >= raw.size())
            return false; // unterminated value
        if (out.labels.count(key) != 0)
            return false; // duplicate label
        out.labels[key] = value;
        i = j + 1;
        if (i < raw.size()) {
            if (raw[i] != ',')
                return false;
            ++i;
        }
    }
    return true;
}

Exposition
parseExposition(const std::string &text)
{
    Exposition exp;
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        if (line[0] == '#') {
            if (line == "# EOF") {
                exp.sawEof = true;
                continue;
            }
            std::istringstream hdr(line);
            std::string hash, keyword, family, type;
            hdr >> hash >> keyword >> family >> type;
            if (keyword != "TYPE" || family.empty() ||
                type.empty()) {
                ADD_FAILURE()
                    << "line " << lineno << ": bad comment " << line;
                return {};
            }
            exp.types[family] = type;
            continue;
        }
        if (exp.sawEof) {
            ADD_FAILURE()
                << "line " << lineno << ": sample after # EOF";
            return {};
        }
        Exposition::Sample s;
        std::size_t name_end = line.find_first_of("{ ");
        if (name_end == std::string::npos) {
            ADD_FAILURE()
                << "line " << lineno << ": no value: " << line;
            return {};
        }
        s.name = line.substr(0, name_end);
        std::size_t value_at = name_end;
        if (line[name_end] == '{') {
            std::size_t close = line.rfind('}');
            if (close == std::string::npos ||
                !parseLabels(
                    line.substr(name_end + 1, close - name_end - 1),
                    s)) {
                ADD_FAILURE() << "line " << lineno
                              << ": bad label set: " << line;
                return {};
            }
            value_at = close + 1;
        }
        if (value_at >= line.size() || line[value_at] != ' ') {
            ADD_FAILURE()
                << "line " << lineno << ": no value: " << line;
            return {};
        }
        std::string raw = line.substr(value_at + 1);
        if (raw == "+Inf") {
            s.value = std::numeric_limits<double>::infinity();
        } else {
            std::size_t used = 0;
            s.value = std::stod(raw, &used);
            if (used != raw.size()) {
                ADD_FAILURE() << "line " << lineno
                              << ": bad value: " << raw;
                return {};
            }
        }
        exp.samples.push_back(std::move(s));
    }
    if (!exp.sawEof) {
        ADD_FAILURE() << "exposition missing '# EOF' terminator";
        return {};
    }
    return exp;
}

/** Family name of a sample: strip _total/_bucket/_sum/_count. */
std::string
familyOf(const std::string &sample_name,
         const std::map<std::string, std::string> &types)
{
    for (const char *suffix :
         {"_total", "_bucket", "_sum", "_count"}) {
        std::string s = suffix;
        if (sample_name.size() > s.size() &&
            sample_name.compare(sample_name.size() - s.size(),
                                s.size(), s) == 0) {
            std::string fam =
                sample_name.substr(0, sample_name.size() - s.size());
            if (types.count(fam) != 0)
                return fam;
        }
    }
    return sample_name;
}

/**
 * Structural validation every exposition must pass: each sample's
 * family is typed, suffixes match the declared type, counters are
 * never negative, and histogram series are internally consistent
 * (cumulative buckets monotone, +Inf bucket == _count).
 */
void
validateExposition(const Exposition &exp)
{
    ASSERT_TRUE(exp.sawEof);
    // Histogram series keyed by (family, labels-minus-le).
    struct Series
    {
        std::vector<std::pair<double, double>> buckets; ///< le,cum
        double count = -1.0, sum = 0.0;
        bool sawSum = false;
    };
    std::map<std::string, Series> hists;

    for (const auto &s : exp.samples) {
        std::string fam = familyOf(s.name, exp.types);
        ASSERT_NE(exp.types.count(fam), 0u)
            << "untyped family of sample " << s.name;
        const std::string &type = exp.types.at(fam);
        std::string suffix = s.name.substr(fam.size());
        if (type == "counter") {
            EXPECT_EQ(suffix, "_total") << s.name;
            EXPECT_GE(s.value, 0.0) << s.name;
        } else if (type == "gauge") {
            EXPECT_EQ(suffix, "") << s.name;
        } else if (type == "histogram") {
            EXPECT_TRUE(suffix == "_bucket" || suffix == "_sum" ||
                        suffix == "_count")
                << s.name;
            std::string key = fam;
            double le = 0.0;
            for (const auto &kv : s.labels) {
                if (kv.first == "le") {
                    le = kv.second == "+Inf"
                             ? std::numeric_limits<
                                   double>::infinity()
                             : std::stod(kv.second);
                    continue;
                }
                key += "|" + kv.first + "=" + kv.second;
            }
            Series &series = hists[key];
            if (suffix == "_bucket") {
                EXPECT_NE(s.labels.count("le"), 0u) << s.name;
                series.buckets.emplace_back(le, s.value);
            } else if (suffix == "_count") {
                series.count = s.value;
            } else {
                series.sum = s.value;
                series.sawSum = true;
            }
        } else {
            ADD_FAILURE() << "unknown type " << type;
        }
    }

    for (const auto &kv : hists) {
        const Series &s = kv.second;
        SCOPED_TRACE(kv.first);
        ASSERT_FALSE(s.buckets.empty());
        EXPECT_TRUE(s.sawSum);
        ASSERT_GE(s.count, 0.0);
        for (std::size_t i = 1; i < s.buckets.size(); ++i) {
            EXPECT_LT(s.buckets[i - 1].first, s.buckets[i].first);
            EXPECT_LE(s.buckets[i - 1].second, s.buckets[i].second);
        }
        EXPECT_TRUE(std::isinf(s.buckets.back().first));
        EXPECT_EQ(s.buckets.back().second, s.count);
    }
}

std::map<std::string, std::string>
labels(std::initializer_list<std::pair<const char *, const char *>>
           kvs)
{
    std::map<std::string, std::string> m;
    for (const auto &kv : kvs)
        m.emplace(kv.first, kv.second);
    return m;
}

} // anonymous namespace

TEST(HistogramQuantile, EmptyReturnsZero)
{
    Histogram h(1.0, 4);
    EXPECT_EQ(h.quantile(0.0), 0.0);
    EXPECT_EQ(h.quantile(0.5), 0.0);
    EXPECT_EQ(h.quantile(1.0), 0.0);
}

TEST(HistogramQuantile, AllUnderflowFallsPastLastEdge)
{
    // Underflow samples count toward the total but live below every
    // bucket edge, so the walk never reaches the target and the
    // quantile degrades to the conservative beyond-last-edge answer
    // (width * (num_buckets + 1), the overflow bucket's "edge") at
    // every q — including q=0.
    Histogram h(1.0, 4);
    for (int i = 0; i < 3; ++i)
        h.add(-1.0);
    EXPECT_EQ(h.summary().count(), 3u);
    EXPECT_EQ(h.underflow(), 3u);
    EXPECT_EQ(h.quantile(0.0), 5.0);
    EXPECT_EQ(h.quantile(0.5), 5.0);
    EXPECT_EQ(h.quantile(1.0), 5.0);
}

TEST(HistogramQuantile, AllOverflowReportsBeyondLastEdge)
{
    Histogram h(1.0, 4);
    for (int i = 0; i < 4; ++i)
        h.add(100.0);
    EXPECT_EQ(h.overflow(), 4u);
    // Every quantile of an all-overflow histogram sits past the last
    // regular edge; the reported value is the same whether the walk
    // stops in the overflow bucket (q<1) or falls through (q=1).
    EXPECT_EQ(h.quantile(0.0), 5.0);
    EXPECT_EQ(h.quantile(0.5), 5.0);
    EXPECT_EQ(h.quantile(1.0), 5.0);
}

TEST(HistogramQuantile, ZeroAndOneQuantiles)
{
    Histogram h(1.0, 4);
    h.add(0.5); // bucket 0
    h.add(2.5); // bucket 2
    // q=0 returns the upper edge of the first populated bucket.
    EXPECT_EQ(h.quantile(0.0), 1.0);
    // q=1 targets count itself, which the cumulative walk can never
    // exceed: the documented answer is one width past the overflow
    // bucket, an upper bound on every sample.
    EXPECT_EQ(h.quantile(1.0), 5.0);
    // Just below 1 it resolves to the last populated bucket's edge.
    EXPECT_EQ(h.quantile(0.75), 3.0);
}

TEST(HistogramQuantile, MedianFindsBucketUpperEdge)
{
    Histogram h(1.0, 4);
    h.add(0.5);
    h.add(1.5);
    h.add(2.5);
    h.add(3.5);
    EXPECT_EQ(h.quantile(0.5), 3.0);
    EXPECT_EQ(h.quantile(0.25), 2.0);
}

TEST(Histogram, ExactSumAndReset)
{
    Histogram h(1.0, 4);
    h.add(0.25);
    h.add(-2.0);
    h.add(100.0);
    EXPECT_EQ(h.sum(), 98.25); // exact, not mean * count
    EXPECT_EQ(h.bucketWidth(), 1.0);
    h.reset();
    EXPECT_EQ(h.sum(), 0.0);
    EXPECT_EQ(h.summary().count(), 0u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    h.add(1.5);
    EXPECT_EQ(h.sum(), 1.5);
    EXPECT_EQ(h.bucket(1), 1u);
}

TEST(MapDottedName, InstanceSegmentsBecomeLabels)
{
    MetricName plain = telemetry::mapDottedName("hybrid.swaps");
    EXPECT_EQ(plain.family, "profess_hybrid_swaps");
    EXPECT_TRUE(plain.labels.empty());

    MetricName ch = telemetry::mapDottedName("mem.ch0.read_queue");
    EXPECT_EQ(ch.family, "profess_mem_read_queue");
    ASSERT_EQ(ch.labels.size(), 1u);
    EXPECT_EQ(ch.labels[0].first, "channel");
    EXPECT_EQ(ch.labels[0].second, "0");

    MetricName core = telemetry::mapDottedName("core12.retired");
    EXPECT_EQ(core.family, "profess_retired");
    ASSERT_EQ(core.labels.size(), 1u);
    EXPECT_EQ(core.labels[0].first, "core");
    EXPECT_EQ(core.labels[0].second, "12");

    MetricName prog =
        telemetry::mapDottedName("policy.profess.rsm.p3.sf_a");
    EXPECT_EQ(prog.family, "profess_policy_profess_rsm_sf_a");
    ASSERT_EQ(prog.labels.size(), 1u);
    EXPECT_EQ(prog.labels[0].first, "program");
    EXPECT_EQ(prog.labels[0].second, "3");

    // Non-numeric tails are NOT instance segments.
    MetricName lit = telemetry::mapDottedName("os.p2x.thing");
    EXPECT_EQ(lit.family, "profess_os_p2x_thing");
    EXPECT_TRUE(lit.labels.empty());
}

TEST(MapDottedName, LatencyHistogramsShareOneFamily)
{
    MetricName mn =
        telemetry::mapDottedName("latency.p3.m2.read.queue", true);
    EXPECT_EQ(mn.family, "profess_latency");
    ASSERT_EQ(mn.labels.size(), 4u);
    EXPECT_EQ(mn.labels[0],
              (std::pair<std::string, std::string>{"program", "3"}));
    EXPECT_EQ(mn.labels[1],
              (std::pair<std::string, std::string>{"tier", "m2"}));
    EXPECT_EQ(mn.labels[2],
              (std::pair<std::string, std::string>{"kind", "read"}));
    EXPECT_EQ(mn.labels[3],
              (std::pair<std::string, std::string>{"phase",
                                                   "queue"}));

    // The special case is histogram-only: the same dotted name as a
    // scalar maps through the generic scheme.
    MetricName scalar =
        telemetry::mapDottedName("latency.p3.m2.read.queue", false);
    EXPECT_EQ(scalar.family, "profess_latency_m2_read_queue");
    ASSERT_EQ(scalar.labels.size(), 1u);
    EXPECT_EQ(scalar.labels[0].first, "program");

    // And matches LatencyAttribution's own name scheme.
    EXPECT_EQ(LatencyAttribution::name(
                  "latency", 3, LatencyAttribution::Tier::M2,
                  LatencyAttribution::Kind::Read,
                  LatencyAttribution::Phase::Queue),
              "latency.p3.m2.read.queue");
}

TEST(EscapeLabelValue, EscapesBackslashQuoteNewline)
{
    EXPECT_EQ(telemetry::escapeLabelValue("plain-1.2_x"),
              "plain-1.2_x");
    EXPECT_EQ(telemetry::escapeLabelValue("a\\b"), "a\\\\b");
    EXPECT_EQ(telemetry::escapeLabelValue("say \"hi\""),
              "say \\\"hi\\\"");
    EXPECT_EQ(telemetry::escapeLabelValue("two\nlines"),
              "two\\nlines");
}

TEST(OpenMetrics, WriterProducesValidExposition)
{
    StatRegistry reg;
    std::uint64_t swaps = 42;
    reg.addCounter("hybrid.swaps", swaps);
    reg.addCounter("mem.ch0.row_hits", swaps);
    reg.addCounter("mem.ch1.row_hits", swaps);
    reg.addProbe("hybrid.stc.hit_rate", []() { return 0.75; });

    Histogram h(2.0, 3);
    h.add(-1.0); // underflow: in every cumulative bucket
    h.add(1.0);  // bucket 0
    h.add(3.0);  // bucket 1
    h.add(99.0); // overflow: only in +Inf
    reg.addHistogram("hybrid.swap_retry_latency", h);

    MetricsSnapshot snap = MetricsSnapshot::capture(reg, "runA");
    // The derived scalar probes are folded into the histogram
    // family, not exported twice.
    for (const auto &s : snap.scalars) {
        EXPECT_EQ(s.name.find("swap_retry_latency"),
                  std::string::npos)
            << s.name;
    }

    Exposition exp = parseExposition(dumpExposition({snap}));
    validateExposition(exp);
    EXPECT_EQ(exp.types.at("profess_hybrid_swaps"), "counter");
    EXPECT_EQ(exp.types.at("profess_hybrid_stc_hit_rate"), "gauge");
    EXPECT_EQ(exp.types.at("profess_hybrid_swap_retry_latency"),
              "histogram");

    const Exposition::Sample *total = exp.find(
        "profess_hybrid_swaps_total", labels({{"run", "runA"}}));
    ASSERT_NE(total, nullptr);
    EXPECT_EQ(total->value, 42.0);

    // Per-channel samples are one family distinguished by label.
    for (const char *chan : {"0", "1"}) {
        EXPECT_NE(
            exp.find("profess_mem_row_hits_total",
                     labels({{"channel", chan}, {"run", "runA"}})),
            nullptr)
            << chan;
    }

    // Cumulative buckets: le=2 holds underflow+bucket0, le=4 adds
    // bucket1, le=6 adds the (empty) bucket2, +Inf adds overflow.
    auto bucket = [&exp](const char *le) {
        return exp.find(
            "profess_hybrid_swap_retry_latency_bucket",
            labels({{"le", le}, {"run", "runA"}}));
    };
    ASSERT_NE(bucket("2"), nullptr);
    EXPECT_EQ(bucket("2")->value, 2.0);
    ASSERT_NE(bucket("4"), nullptr);
    EXPECT_EQ(bucket("4")->value, 3.0);
    ASSERT_NE(bucket("6"), nullptr);
    EXPECT_EQ(bucket("6")->value, 3.0);
    ASSERT_NE(bucket("+Inf"), nullptr);
    EXPECT_EQ(bucket("+Inf")->value, 4.0);

    // _count/_sum reconcile exactly with the registry's derived
    // probes (exact running sum, not mean * count).
    const Exposition::Sample *count =
        exp.find("profess_hybrid_swap_retry_latency_count",
                 labels({{"run", "runA"}}));
    const Exposition::Sample *sum =
        exp.find("profess_hybrid_swap_retry_latency_sum",
                 labels({{"run", "runA"}}));
    ASSERT_NE(count, nullptr);
    ASSERT_NE(sum, nullptr);
    EXPECT_EQ(count->value,
              reg.value("hybrid.swap_retry_latency.count"));
    EXPECT_EQ(sum->value,
              reg.value("hybrid.swap_retry_latency.sum"));
    EXPECT_EQ(sum->value, 102.0);
}

TEST(OpenMetrics, RunLabelRoundTripsThroughEscaping)
{
    StatRegistry reg;
    std::uint64_t c = 1;
    reg.addCounter("esc.events", c);
    std::string nasty = "w01 \"quoted\" back\\slash\nnewline";
    Exposition exp = parseExposition(
        dumpExposition({MetricsSnapshot::capture(reg, nasty)}));
    validateExposition(exp);
    const Exposition::Sample *s = exp.find(
        "profess_esc_events_total", labels({}));
    EXPECT_EQ(s, nullptr); // label must be present, not dropped
    ASSERT_EQ(exp.samples.size(), 1u);
    EXPECT_EQ(exp.samples[0].labels.at("run"), nasty);
}

TEST(OpenMetrics, MultipleRunsSortedWithinFamilies)
{
    StatRegistry reg;
    std::uint64_t c = 5;
    reg.addCounter("sorted.events", c);
    MetricsSnapshot b = MetricsSnapshot::capture(reg, "b-run");
    c = 9;
    MetricsSnapshot a = MetricsSnapshot::capture(reg, "a-run");

    // Pass runs out of order; the writer sorts samples by run label
    // inside the family, so the exposition is order-independent.
    std::string out_ba = dumpExposition({b, a});
    std::string out_ab = dumpExposition({a, b});
    EXPECT_EQ(out_ba, out_ab);

    Exposition exp = parseExposition(out_ba);
    validateExposition(exp);
    ASSERT_EQ(exp.samples.size(), 2u);
    EXPECT_EQ(exp.samples[0].labels.at("run"), "a-run");
    EXPECT_EQ(exp.samples[0].value, 9.0);
    EXPECT_EQ(exp.samples[1].labels.at("run"), "b-run");
    EXPECT_EQ(exp.samples[1].value, 5.0);
}

TEST(OpenMetricsDeathTest, FamilyTypeConflictPanics)
{
    // "a.b" as a counter and "a.b" as a probe cannot coexist in one
    // registry (duplicate name), but two runs disagreeing on the
    // type of one family can only come from memory corruption or a
    // naming-discipline bug — the writer panics loudly.
    StatRegistry counter_reg, gauge_reg;
    std::uint64_t c = 0;
    // Same family name in both registries on purpose (the conflict
    // under test); synthesized so the per-file duplicate-leaf lint
    // sees only one literal.
    const std::string name = std::string("a") + ".b";
    counter_reg.addCounter(name, c);
    gauge_reg.addProbe(name, []() { return 0.0; });
    std::vector<MetricsSnapshot> runs = {
        MetricsSnapshot::capture(counter_reg, "r1"),
        MetricsSnapshot::capture(gauge_reg, "r2"),
    };
    EXPECT_DEATH(dumpExposition(runs), "mixes");
}

TEST(LatencyAttribution, RecordsAndDropsOutOfRange)
{
    LatencyAttribution attr(2, 10.0, 4);
    attr.record(0, LatencyAttribution::Tier::M1,
                LatencyAttribution::Kind::Read,
                LatencyAttribution::Phase::Queue, 15.0);
    attr.record(-1, LatencyAttribution::Tier::M1,
                LatencyAttribution::Kind::Read,
                LatencyAttribution::Phase::Queue, 15.0);
    attr.record(2, LatencyAttribution::Tier::M1,
                LatencyAttribution::Kind::Read,
                LatencyAttribution::Phase::Queue, 15.0);
    const Histogram &h = attr.histogram(
        0, LatencyAttribution::Tier::M1,
        LatencyAttribution::Kind::Read,
        LatencyAttribution::Phase::Queue);
    EXPECT_EQ(h.summary().count(), 1u);
    EXPECT_EQ(h.bucket(1), 1u);

    // Registration exposes read/write x 4 phases + swap park only.
    StatRegistry reg;
    attr.registerTelemetry(reg, "latency");
    std::size_t hist_count = reg.histograms().size();
    // 2 programs x 2 tiers x (read/write x 4 phases + swap park).
    EXPECT_EQ(hist_count, 2u * 2u * (2u * 4u + 1u));
    EXPECT_TRUE(reg.contains("latency.p0.m1.read.queue.count"));
    EXPECT_TRUE(reg.contains("latency.p1.m2.swap.park.sum"));
    EXPECT_FALSE(reg.contains("latency.p0.m1.swap.queue.count"));
}

TEST(MetricsCollector, FlushWritesSortedAndValid)
{
    MetricsCollector &coll = MetricsCollector::global();
    coll.clear();
    std::string path = tempBase("collector") + ".prom";

    StatRegistry reg;
    std::uint64_t c = 3;
    reg.addCounter("coll.events", c);

    // Completion order b-then-a must not leak into the file.
    coll.record(path, MetricsSnapshot::capture(reg, "b"));
    c = 8;
    coll.record(path, MetricsSnapshot::capture(reg, "a"));
    EXPECT_EQ(coll.size(), 2u);
    coll.flush();

    Exposition exp = parseExposition(readFile(path));
    validateExposition(exp);
    ASSERT_EQ(exp.samples.size(), 2u);
    EXPECT_EQ(exp.samples[0].labels.at("run"), "a");
    EXPECT_EQ(exp.samples[0].value, 8.0);
    EXPECT_EQ(exp.samples[1].labels.at("run"), "b");

    // Each record left a durable per-run shard; rebuilding the
    // exposition from disk alone is byte-identical to flush().
    std::string flushed = readFile(path);
    coll.mergeShards(path);
    EXPECT_EQ(readFile(path), flushed);
    // mergeShards dropped the in-memory snapshots for `path`, so a
    // later flush cannot clobber the merged result.
    EXPECT_EQ(coll.size(), 0u);
    coll.clear();
}

TEST(MetricsCollector, ShardRoundTripIsExact)
{
    StatRegistry reg;
    std::uint64_t c = 42;
    reg.addCounter("rt.events", c);
    // Values chosen to stress %.17g round-tripping: an irrational
    // fraction, a denormal-ish magnitude and a negative gauge.
    reg.addProbe("rt.ratio", []() { return 1.0 / 3.0; });
    reg.addProbe("rt.tiny", []() { return 4.9406564584124654e-300; });
    reg.addProbe("rt.neg", []() { return -2.5; });
    Histogram h(0.1, 3);
    h.add(-1.0);
    h.add(0.05);
    h.add(0.15);
    h.add(99.0);
    reg.addHistogram("rt.lat", h);

    MetricsSnapshot snap =
        MetricsSnapshot::capture(reg, "runX with space");
    std::string path = tempBase("shard_rt") + ".shard";
    telemetry::writeMetricsShardFile(path, snap);
    MetricsSnapshot back = telemetry::readMetricsShardFile(path);

    EXPECT_EQ(back.run, snap.run);
    ASSERT_EQ(back.scalars.size(), snap.scalars.size());
    for (std::size_t i = 0; i < snap.scalars.size(); ++i) {
        EXPECT_EQ(back.scalars[i].name, snap.scalars[i].name);
        EXPECT_EQ(back.scalars[i].isCounter,
                  snap.scalars[i].isCounter);
        // Bit-exact, not approximately equal: %.17g round-trips.
        EXPECT_EQ(back.scalars[i].value, snap.scalars[i].value)
            << snap.scalars[i].name;
    }
    ASSERT_EQ(back.histograms.size(), 1u);
    EXPECT_EQ(back.histograms[0].bucketWidth, 0.1);
    EXPECT_EQ(back.histograms[0].underflow, 1u);
    EXPECT_EQ(back.histograms[0].count, 4u);
    EXPECT_EQ(back.histograms[0].sum, snap.histograms[0].sum);
    EXPECT_EQ(back.histograms[0].buckets,
              snap.histograms[0].buckets);

    // The exposition rendered from the round-tripped snapshot is
    // byte-identical to one rendered from the original.
    EXPECT_EQ(dumpExposition({back}), dumpExposition({snap}));
}

TEST(OpenMetrics, Fig13RunExportValidates)
{
    // End-to-end: a fig13-style multi-program ProFess run with
    // latency attribution, fairness gauges and the exporter all
    // active, validated by the mini-parser.
    const WorkloadSpec *w01 = findWorkload("w01");
    ASSERT_NE(w01, nullptr);
    SystemConfig cfg = SystemConfig::quadCore();
    cfg.core.instrQuota = 120000;
    cfg.core.warmupInstr = 60000;

    std::vector<std::unique_ptr<trace::TraceSource>> sources;
    for (std::size_t i = 0; i < w01->programs.size(); ++i) {
        sources.push_back(trace::makeSpecSource(
            w01->programs[i], trace::defaultScale,
            7 + 1009 * (i + 1)));
    }
    System sys(cfg, "profess", std::move(sources));

    TelemetryConfig tcfg;
    tcfg.metricsOut = tempBase("fig13") + ".prom";
    RunTelemetry bundle(tcfg, "w01_profess");
    sys.attachTelemetry(bundle);
    ASSERT_TRUE(sys.run());
    bundle.finish("profess", "w01", 7, configJson(cfg), true);
    MetricsCollector::global().flush();
    std::string legacy = readFile(tcfg.metricsOut);

    // Acceptance pin: the sharded merge path reproduces the
    // single-file exporter byte-for-byte for this workload.
    MetricsCollector::global().mergeShards(tcfg.metricsOut);
    EXPECT_EQ(readFile(tcfg.metricsOut), legacy);
    MetricsCollector::global().clear();

    Exposition exp = parseExposition(legacy);
    validateExposition(exp);

    // The attribution family is present and carries real samples:
    // every served request recorded its queue phase, so summed
    // _count across programs/tiers equals reads+writes served.
    EXPECT_EQ(exp.types.at("profess_latency"), "histogram");
    double queue_count = 0.0;
    for (const auto &s : exp.samples) {
        if (s.name == "profess_latency_count" &&
            s.labels.at("phase") == "queue" &&
            s.labels.at("kind") != "swap")
            queue_count += s.value;
    }
    EXPECT_GT(queue_count, 0.0);

    // Fairness gauges are exported per program plus aggregates.
    EXPECT_EQ(exp.types.at("profess_fairness_slowdown"), "gauge");
    for (const char *p : {"0", "1", "2", "3"}) {
        EXPECT_NE(
            exp.find("profess_fairness_slowdown",
                     labels({{"program", p}, {"run", "w01_profess"}})),
            nullptr)
            << p;
    }
    const Exposition::Sample *unfair = exp.find(
        "profess_fairness_unfairness",
        labels({{"run", "w01_profess"}}));
    ASSERT_NE(unfair, nullptr);
    EXPECT_GE(unfair->value, 1.0);
    const Exposition::Sample *ws = exp.find(
        "profess_fairness_weighted_speedup",
        labels({{"run", "w01_profess"}}));
    ASSERT_NE(ws, nullptr);
    EXPECT_GT(ws->value, 0.0);

    // Every histogram family's _count/_sum reconcile exactly with
    // the registry's derived probes.
    for (const auto &he : bundle.registry().histograms()) {
        MetricName mn = telemetry::mapDottedName(he.name, true);
        std::map<std::string, std::string> want(mn.labels.begin(),
                                                mn.labels.end());
        want["run"] = "w01_profess";
        const Exposition::Sample *count =
            exp.find(mn.family + "_count", want);
        const Exposition::Sample *sum =
            exp.find(mn.family + "_sum", want);
        ASSERT_NE(count, nullptr) << he.name;
        ASSERT_NE(sum, nullptr) << he.name;
        EXPECT_EQ(count->value,
                  bundle.registry().value(he.name + ".count"))
            << he.name;
        EXPECT_EQ(sum->value,
                  bundle.registry().value(he.name + ".sum"))
            << he.name;
    }
}
