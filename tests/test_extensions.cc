/**
 * @file
 * Tests for the extensions beyond the paper's core evaluation:
 * multi-threaded programs (Sec. 3.1.1), the OS coarse-grain
 * baseline (Sec. 2.2 contrast), and the RSM-guided wrapper's
 * system-level integration.
 */

#include <gtest/gtest.h>

#include "policy/os_coarse.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"

using namespace profess;
using namespace profess::sim;

namespace
{

SystemConfig
quick()
{
    SystemConfig c = SystemConfig::quadCore();
    c.core.instrQuota = 100000;
    c.core.warmupInstr = 30000;
    return c;
}

std::vector<std::unique_ptr<trace::TraceSource>>
makeSources(const std::vector<const char *> &names,
            std::uint64_t seed_base = 1)
{
    std::vector<std::unique_ptr<trace::TraceSource>> v;
    for (std::size_t i = 0; i < names.size(); ++i) {
        v.push_back(trace::makeSpecSource(
            names[i], trace::defaultScale, seed_base + 31 * i));
    }
    return v;
}

} // anonymous namespace

TEST(MultiThreaded, TwoThreadsOneProgram)
{
    // Cores 0+1 run threads of program 0; cores 2,3 are programs
    // 1,2.
    System sys(quick(), "profess",
               makeSources({"omnetpp", "omnetpp", "lbm", "milc"}),
               {0, 0, 1, 2});
    EXPECT_EQ(sys.numCores(), 4u);
    EXPECT_EQ(sys.numPrograms(), 3u);
    EXPECT_EQ(sys.programOfCore(1), 0);
    EXPECT_EQ(sys.programOfCore(3), 2);
    EXPECT_TRUE(sys.run());
    // Both threads' traffic lands on program 0's counters.
    const auto &ps = sys.controller().programStats(0);
    EXPECT_GT(ps.served, sys.controller().programStats(1).served / 4);
    // RSM sees three programs.
    core::ProfessPolicy *pf = sys.professPolicy();
    ASSERT_NE(pf, nullptr);
    EXPECT_GE(pf->rsm().periods(0), 1u);
}

TEST(MultiThreaded, ThreadsShareAddressSpace)
{
    // Two threads with identical traces touch the same frames: the
    // footprint in physical memory must not double.
    SystemConfig c = quick();
    auto sources = makeSources({"leslie3d", "leslie3d"}, 5);
    // Identical seeds -> identical virtual streams.
    sources[1] = trace::makeSpecSource("leslie3d",
                                       trace::defaultScale, 5);
    sources[0] = trace::makeSpecSource("leslie3d",
                                       trace::defaultScale, 5);
    System sys(c, "never", std::move(sources), {0, 0});
    sys.run();
    std::uint64_t pages = sys.allocator().allocatedFrames(0);
    // leslie3d scaled footprint ~0.76 MB = ~190 pages; shared, not
    // ~380.
    EXPECT_LE(pages, 220u);
}

TEST(MultiThreaded, BadMappingRejected)
{
    SystemConfig c = quick();
    auto sources = makeSources({"lbm", "milc"});
    EXPECT_EXIT(System(c, "never", std::move(sources), {0}),
                ::testing::ExitedWithCode(1), "per core");
}

TEST(OsCoarse, RunsAndMigrates)
{
    SystemConfig c = SystemConfig::singleCore();
    c.core.instrQuota = 200000;
    c.core.warmupInstr = 50000;
    ExperimentRunner runner(c);
    RunResult r = runner.run("oscoarse", {"libquantum"});
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.swaps, 0u); // hot pages do get promoted
}

TEST(OsCoarse, SlowerReactionThanHardware)
{
    // The paper's Sec. 2.2 argument: coarse, interval-based OS
    // management responds more slowly, catching fewer accesses in
    // M1 than hardware management for the same run.
    SystemConfig c = SystemConfig::singleCore();
    c.core.instrQuota = 300000;
    c.core.warmupInstr = 100000;
    ExperimentRunner runner(c);
    RunResult os = runner.run("oscoarse", {"libquantum"});
    RunResult hw = runner.run("cameo", {"libquantum"});
    EXPECT_LT(os.m1Fraction, hw.m1Fraction);
}

TEST(OsCoarse, ThresholdFiltersColdPages)
{
    hybrid::HybridLayout layout =
        hybrid::HybridLayout::build(1 * MiB, 8 * MiB, 2, 32, 9);
    policy::OsCoarsePolicy::Params p;
    p.hotThreshold = 10;
    p.maxPagesPerInterval = 8;
    policy::OsCoarsePolicy pol(layout, p);

    struct CountingHost : public policy::SwapHost
    {
        unsigned swaps = 0;
        bool
        requestSwap(std::uint64_t, unsigned) override
        {
            ++swaps;
            return true;
        }
        Tick hostNow() const override { return 0; }
    } host;
    pol.setHost(&host);

    hybrid::StcMeta meta{};
    policy::AccessInfo info{};
    info.meta = &meta;
    // Page of (group 0, slot 2): 9 accesses (below threshold).
    info.group = 0;
    info.slot = 2;
    for (int i = 0; i < 9; ++i)
        EXPECT_EQ(pol.onM2Access(info),
                  policy::Decision::NoSwap);
    // Page of (group 2, slot 4): 12 accesses (above threshold).
    info.group = 2;
    info.slot = 4;
    for (int i = 0; i < 12; ++i)
        pol.onM2Access(info);
    pol.onPeriodic();
    // Only the hot page's two blocks requested.
    EXPECT_EQ(host.swaps, 2u);
    EXPECT_EQ(pol.trackedPages(), 0u); // counters cleared
}

TEST(RsmGuidedSystem, RunsOnWorkload)
{
    ExperimentRunner runner(quick());
    const WorkloadSpec *w = findWorkload("w16");
    MultiMetrics m = runner.runMulti("rsm-pom", *w);
    EXPECT_TRUE(m.run.completed);
    EXPECT_GT(m.weightedSpeedup, 0.0);
}
