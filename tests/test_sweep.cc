/**
 * @file
 * SweepDriver tests: spec parsing and expansion, the sweep-axis
 * grid, and the crash-safety contract — an interrupted sweep
 * (cooperative preemption, a corrupted trailing journal line, or a
 * SIGKILL mid-sweep) resumes to byte-identical final outputs
 * (journal + merged exposition) at any worker count.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "sim/run_telemetry.hh"
#include "sim/sweep.hh"
#include "sim/system.hh"

using namespace profess;
using namespace profess::sim;

namespace
{

std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr)
        return "";
    std::string s;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        s.append(buf, n);
    std::fclose(f);
    return s;
}

std::string
tempBase(const std::string &tag)
{
    return ::testing::TempDir() + "profess_sweep_" + tag + "_" +
           std::to_string(::getpid());
}

std::string
writeSpecFile(const std::string &tag, const std::string &content)
{
    std::string path = tempBase(tag) + ".sweep";
    std::FILE *f = std::fopen(path.c_str(), "w");
    EXPECT_NE(f, nullptr);
    std::fputs(content.c_str(), f);
    std::fclose(f);
    return path;
}

/** The small grid every crash-safety test runs: 4 jobs. */
SweepSpec
smokeSpec(const std::string &tag)
{
    return SweepSpec::fromFile(writeSpecFile(
        tag, "# smoke grid\n"
             "preset=single\n"
             "policy=always,never\n"
             "workload=mcf\n"
             "seed=1,2\n"
             "instr=30000 warmup=5000\n"
             "slowdowns=1\n"));
}

/** Run `spec` to completion in a fresh directory; return outDir. */
std::string
runFull(const SweepSpec &spec, const std::string &tag, unsigned jobs)
{
    SweepDriver::Options opts;
    opts.outDir = tempBase(tag);
    opts.jobs = jobs;
    SweepDriver driver(spec, opts);
    EXPECT_TRUE(driver.run());
    EXPECT_EQ(driver.executedRuns(), driver.totalRuns());
    return opts.outDir;
}

} // anonymous namespace

TEST(SweepSpec, ParsesAndExpands)
{
    SweepSpec spec = smokeSpec("parse");
    EXPECT_EQ(spec.preset, "single");
    EXPECT_EQ(spec.policies,
              (std::vector<std::string>{"always", "never"}));
    EXPECT_EQ(spec.mixes, (std::vector<std::string>{"mcf"}));
    EXPECT_EQ(spec.seeds, (std::vector<std::uint64_t>{1, 2}));
    EXPECT_TRUE(spec.slowdowns);
    EXPECT_EQ(spec.numSweepPoints(), 1u);
    EXPECT_EQ(spec.numRuns(), 4u);

    SystemConfig cfg = spec.configAt(0);
    EXPECT_EQ(cfg.core.instrQuota, 30000u);
    EXPECT_EQ(cfg.core.warmupInstr, 5000u);

    std::vector<RunJob> jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 4u);
    // Canonical order: mix, then policy, then seed innermost.
    EXPECT_EQ(jobs[0].policy, "always");
    EXPECT_EQ(jobs[0].label, "mcf_r1");
    EXPECT_EQ(jobs[0].baseSeed, 1u);
    EXPECT_EQ(jobs[1].label, "mcf_r2");
    EXPECT_EQ(jobs[2].policy, "never");
    // No swept axis: sweepPoint stays 0 (no "_s" label suffix).
    for (const RunJob &j : jobs) {
        EXPECT_EQ(j.sweepPoint, 0u);
        EXPECT_TRUE(j.slowdowns);
        EXPECT_EQ(j.programs, (std::vector<std::string>{"mcf"}));
    }

    // Fingerprint is stable for equal specs and sensitive to any
    // field change.
    SweepSpec again = smokeSpec("parse2");
    EXPECT_EQ(spec.fingerprint(), again.fingerprint());
    again.seeds.push_back(3);
    EXPECT_NE(spec.fingerprint(), again.fingerprint());
}

TEST(SweepSpec, SweptAxisExpandsPerPoint)
{
    SweepSpec spec = SweepSpec::fromFile(writeSpecFile(
        "axis", "preset=quad policy=pom workload=w01\n"
                "instr=10000 warmup=1000\n"
                "sweep=min_benefit:4,8\n"));
    EXPECT_EQ(spec.sweepKey, "min_benefit");
    EXPECT_EQ(spec.numSweepPoints(), 2u);
    EXPECT_EQ(spec.numRuns(), 2u);
    EXPECT_EQ(spec.configAt(0).minBenefit, 4u);
    EXPECT_EQ(spec.configAt(1).minBenefit, 8u);
    // Fixed overrides apply at every point.
    EXPECT_EQ(spec.configAt(1).core.instrQuota, 10000u);

    std::vector<RunJob> jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 2u);
    // Swept points number from 1 so each gets a distinct "_s<p>"
    // telemetry suffix downstream.
    EXPECT_EQ(jobs[0].sweepPoint, 1u);
    EXPECT_EQ(jobs[1].sweepPoint, 2u);
    EXPECT_EQ(jobs[0].cfg.minBenefit, 4u);
    EXPECT_EQ(jobs[1].cfg.minBenefit, 8u);
    EXPECT_EQ(jobs[0].label, "w01"); // one seed: no _r suffix
}

TEST(SweepSpec, ProgramListMixResolves)
{
    SweepSpec spec = SweepSpec::fromFile(writeSpecFile(
        "mix", "preset=quad policy=pom workload=mcf+lbm\n"));
    std::vector<RunJob> jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].programs,
              (std::vector<std::string>{"mcf", "lbm"}));
}

TEST(SweepSpecDeathTest, RejectsMalformedSpecs)
{
    EXPECT_DEATH(SweepSpec::fromFile(writeSpecFile(
                     "badkey", "policy=pom workload=mcf "
                               "frobnicate=3\n")),
                 "unknown key");
    EXPECT_DEATH(SweepSpec::fromFile(writeSpecFile(
                     "badmix", "policy=pom workload=notaprog\n")),
                 "neither");
    EXPECT_DEATH(SweepSpec::fromFile(writeSpecFile(
                     "twoaxes", "policy=pom workload=mcf\n"
                                "sweep=msamp:1,2\n"
                                "sweep=min_benefit:4,8\n")),
                 "at most one");
    EXPECT_DEATH(SweepSpec::fromFile(writeSpecFile(
                     "fixedswept", "policy=pom workload=mcf\n"
                                   "msamp=512\nsweep=msamp:1,2\n")),
                 "both fixed and swept");
    EXPECT_DEATH(SweepSpec::fromFile(writeSpecFile(
                     "nopolicy", "workload=mcf\n")),
                 "no policy");
    EXPECT_DEATH(SweepSpec::fromFile(writeSpecFile(
                     "fracint", "policy=pom workload=mcf\n"
                                "min_benefit=2.5\n")),
                 "non-negative integer");
}

TEST(SweepDriver, ResumeEqualsUninterrupted)
{
    SweepSpec spec = smokeSpec("resume");
    std::string full_dir = runFull(spec, "resume_full", 2);

    // Cooperative preemption after 2 of 4 runs, then resume.
    SweepDriver::Options opts;
    opts.outDir = tempBase("resume_part");
    opts.jobs = 2;
    opts.maxRuns = 2;
    {
        SweepDriver part(spec, opts);
        EXPECT_FALSE(part.run());
        EXPECT_EQ(part.executedRuns(), 2u);
        EXPECT_EQ(part.resumedRuns(), 0u);
    }
    opts.maxRuns = 0;
    {
        SweepDriver rest(spec, opts);
        EXPECT_TRUE(rest.run());
        EXPECT_EQ(rest.resumedRuns(), 2u);
        EXPECT_EQ(rest.executedRuns(), 2u);
        // Journaled records round-tripped through the resume parse
        // render byte-identically in the canonical rewrite.
        EXPECT_EQ(readFile(rest.journalPath()),
                  readFile(full_dir + "/sweep.journal.jsonl"));
        EXPECT_EQ(readFile(rest.metricsPath()),
                  readFile(full_dir + "/metrics.prom"));
    }
}

TEST(SweepDriver, WorkerCountLeavesNoTrace)
{
    SweepSpec spec = smokeSpec("jobs");
    std::string serial_dir = runFull(spec, "jobs1", 1);
    std::string parallel_dir = runFull(spec, "jobs8", 8);
    std::string j1 = readFile(serial_dir + "/sweep.journal.jsonl");
    EXPECT_FALSE(j1.empty());
    EXPECT_EQ(j1, readFile(parallel_dir + "/sweep.journal.jsonl"));
    std::string m1 = readFile(serial_dir + "/metrics.prom");
    EXPECT_FALSE(m1.empty());
    EXPECT_EQ(m1, readFile(parallel_dir + "/metrics.prom"));
}

TEST(SweepDriver, CorruptedTrailingJournalLineRecovers)
{
    SweepSpec spec = smokeSpec("torn");
    std::string full_dir = runFull(spec, "torn_full", 2);

    SweepDriver::Options opts;
    opts.outDir = tempBase("torn_part");
    opts.jobs = 1;
    opts.maxRuns = 2;
    {
        SweepDriver part(spec, opts);
        EXPECT_FALSE(part.run());
    }
    // A crash can tear the trailing journal line mid-write; the
    // loader must drop exactly that line and re-run its job.
    std::string journal =
        opts.outDir + "/sweep.journal.jsonl";
    std::FILE *f = std::fopen(journal.c_str(), "a");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"i\":2,\"key\":\"truncated mid-wri", f);
    std::fclose(f);

    opts.maxRuns = 0;
    SweepDriver rest(spec, opts);
    EXPECT_TRUE(rest.run());
    EXPECT_EQ(rest.resumedRuns(), 2u);
    EXPECT_EQ(readFile(rest.journalPath()),
              readFile(full_dir + "/sweep.journal.jsonl"));
    EXPECT_EQ(readFile(rest.metricsPath()),
              readFile(full_dir + "/metrics.prom"));
}

TEST(SweepDriver, SigkillMidSweepResumesByteIdentical)
{
    SweepSpec spec = smokeSpec("kill");
    std::string full_dir = runFull(spec, "kill_full", 2);

    SweepDriver::Options opts;
    opts.outDir = tempBase("kill_part");
    opts.jobs = 1;

    // The child SIGKILLs itself the instant the first run's journal
    // line is durable — the hardest crash the driver must survive.
    pid_t pid = ::fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
        SweepDriver victim(spec, opts);
        victim.setRunCallback([](std::size_t done, std::size_t) {
            if (done == 1)
                ::raise(SIGKILL);
        });
        victim.run();
        ::_exit(0); // never reached
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    SweepDriver rest(spec, opts);
    EXPECT_TRUE(rest.run());
    EXPECT_GE(rest.resumedRuns(), 1u);
    EXPECT_EQ(readFile(rest.journalPath()),
              readFile(full_dir + "/sweep.journal.jsonl"));
    EXPECT_EQ(readFile(rest.metricsPath()),
              readFile(full_dir + "/metrics.prom"));
}

TEST(SweepDriverDeathTest, ForeignJournalIsFatal)
{
    SweepSpec spec = smokeSpec("foreign");
    std::string dir = runFull(spec, "foreign_dir", 2);

    // The same directory under a different spec must refuse to
    // "resume" someone else's journal.
    SweepSpec other = spec;
    other.seeds.push_back(3);
    SweepDriver::Options opts;
    opts.outDir = dir;
    opts.jobs = 1;
    SweepDriver driver(other, opts);
    EXPECT_DEATH(driver.run(), "different sweep");
}

TEST(SweepDriver, FreshDiscardsPriorOutputs)
{
    SweepSpec spec = smokeSpec("fresh");
    SweepSpec other = spec;
    other.seeds = {5};

    SweepDriver::Options opts;
    opts.outDir = tempBase("fresh_dir");
    opts.jobs = 2;
    {
        SweepDriver first(spec, opts);
        EXPECT_TRUE(first.run());
    }
    // --fresh makes the incompatible-spec reuse legal.
    opts.fresh = true;
    SweepDriver second(other, opts);
    EXPECT_TRUE(second.run());
    EXPECT_EQ(second.resumedRuns(), 0u);
    EXPECT_EQ(second.executedRuns(), 2u);
}
