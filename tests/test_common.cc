/**
 * @file
 * Unit tests for src/common: RNG, statistics, config, event queue.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/event.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

using namespace profess;

TEST(Types, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 4), 0u);
    EXPECT_EQ(ceilDiv(1, 4), 1u);
    EXPECT_EQ(ceilDiv(4, 4), 1u);
    EXPECT_EQ(ceilDiv(5, 4), 2u);
    EXPECT_EQ(ceilDiv(8, 4), 2u);
}

TEST(Types, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(9), 3u);
    EXPECT_EQ(ceilLog2(9), 4u);
    EXPECT_EQ(ceilLog2(8), 3u);
}

TEST(Rng, Deterministic)
{
    Rng a(42, 7), b(42, 7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, StreamsIndependent)
{
    Rng a(42, 1), b(42, 2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, BelowBounds)
{
    Rng r(1);
    for (std::uint32_t bound : {1u, 2u, 3u, 7u, 1000u}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.below(bound), bound);
    }
}

TEST(Rng, Below64Bounds)
{
    Rng r(2);
    std::uint64_t bound = 1ull << 40;
    for (int i = 0; i < 200; ++i)
        EXPECT_LT(r.below64(bound), bound);
}

TEST(Rng, UniformRange)
{
    Rng r(3);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GeometricMean)
{
    Rng r(4);
    double p = 0.25;
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.geometric(p));
    // Mean of failures-before-success is (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(RunningStat, MeanAndStddev)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(ExpSmoother, FirstSamplePrimes)
{
    ExpSmoother e(0.125);
    EXPECT_FALSE(e.primed());
    EXPECT_DOUBLE_EQ(e.add(10.0), 10.0);
    EXPECT_TRUE(e.primed());
    // 10 + 0.125 * (18 - 10) = 11
    EXPECT_DOUBLE_EQ(e.add(18.0), 11.0);
}

TEST(ExpSmoother, ConvergesToConstant)
{
    ExpSmoother e(0.125);
    for (int i = 0; i < 200; ++i)
        e.add(42.0);
    EXPECT_NEAR(e.value(), 42.0, 1e-9);
}

TEST(Histogram, BucketsAndQuantiles)
{
    Histogram h(10.0, 10);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i));
    EXPECT_EQ(h.summary().count(), 100u);
    EXPECT_EQ(h.bucket(0), 10u);
    EXPECT_NEAR(h.quantile(0.5), 60.0, 10.0);
    // Overflow bucket.
    h.add(1e9);
    EXPECT_EQ(h.bucket(h.numBuckets() - 1), 1u);
}

TEST(BoxSummary, KnownSeries)
{
    BoxSummary s = boxSummary({1, 2, 3, 4, 5});
    EXPECT_DOUBLE_EQ(s.min, 1);
    EXPECT_DOUBLE_EQ(s.max, 5);
    EXPECT_DOUBLE_EQ(s.median, 3);
    EXPECT_DOUBLE_EQ(s.q1, 2);
    EXPECT_DOUBLE_EQ(s.q3, 4);
    EXPECT_NEAR(s.gmean, std::pow(120.0, 0.2), 1e-9);
}

TEST(BoxSummary, Empty)
{
    BoxSummary s = boxSummary({});
    EXPECT_EQ(s.n, 0u);
}

TEST(GeometricMeanFn, Basic)
{
    EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_EQ(geometricMean({}), 0.0);
}

TEST(Config, TypedAccess)
{
    Config c;
    EXPECT_TRUE(c.parsePair("threads=4"));
    EXPECT_TRUE(c.parsePair("ratio=0.5"));
    EXPECT_TRUE(c.parsePair("verbose=true"));
    EXPECT_TRUE(c.parsePair("name=test"));
    EXPECT_FALSE(c.parsePair("no-equals"));
    EXPECT_FALSE(c.parsePair("=bad"));
    EXPECT_EQ(c.getInt("threads", 0), 4);
    EXPECT_DOUBLE_EQ(c.getDouble("ratio", 0), 0.5);
    EXPECT_TRUE(c.getBool("verbose", false));
    EXPECT_EQ(c.getString("name"), "test");
    EXPECT_EQ(c.getInt("missing", 7), 7);
    EXPECT_TRUE(c.has("threads"));
    EXPECT_FALSE(c.has("missing"));
}

TEST(Config, Merge)
{
    Config a, b;
    a.set("x", "1");
    a.set("y", "2");
    b.set("y", "3");
    a.merge(b);
    EXPECT_EQ(a.getInt("x", 0), 1);
    EXPECT_EQ(a.getInt("y", 0), 3);
}

TEST(Config, BoolSpellings)
{
    Config c;
    for (const char *t : {"true", "1", "yes", "on"}) {
        c.set("k", t);
        EXPECT_TRUE(c.getBool("k", false)) << t;
    }
    for (const char *f : {"false", "0", "no", "off"}) {
        c.set("k", f);
        EXPECT_FALSE(c.getBool("k", true)) << f;
    }
}

TEST(EventQueue, OrderedExecution)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i]() { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NestedScheduling)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&]() {
        ++fired;
        eq.scheduleIn(5, [&]() { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 6u);
}

TEST(EventQueue, RunUntil)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&]() { ++fired; });
    eq.schedule(20, [&]() { ++fired; });
    eq.runUntil(15);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.nextTick(), 20u);
    eq.runUntil(100);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, StopPredicate)
{
    EventQueue eq;
    int fired = 0;
    for (Tick t = 1; t <= 10; ++t)
        eq.schedule(t, [&]() { ++fired; });
    eq.run([&]() { return fired == 3; });
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.size(), 7u);
}

TEST(EventQueue, EmptyBehaviour)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.nextTick(), tickNever);
    EXPECT_FALSE(eq.runOne());
}
