/**
 * @file
 * Tests for the energy model and the multi-channel memory-system
 * aggregation (Sec. 4.3's energy-efficiency metric inputs).
 */

#include <gtest/gtest.h>

#include "common/event.hh"
#include "mem/energy.hh"
#include "mem/memory_system.hh"

using namespace profess;
using namespace profess::mem;

TEST(EnergyAccount, DynamicEnergySums)
{
    EnergyParams p;
    p.m1ActNj = 2.0;
    p.m1ReadNj = 5.0;
    p.m1WriteNj = 6.0;
    p.m2ActNj = 4.0;
    p.m2ReadNj = 8.0;
    p.m2WriteNj = 40.0;
    EnergyAccount a(p);
    a.addActivate(false);
    a.addActivate(true);
    a.addRead(false);
    a.addRead(true);
    a.addWrite(true);
    EXPECT_DOUBLE_EQ(a.dynamicNj(), 2 + 4 + 5 + 8 + 40);
}

TEST(EnergyAccount, BackgroundDominatesWhenIdle)
{
    EnergyParams p;
    p.m1BackgroundW = 0.3;
    p.m2BackgroundW = 0.1;
    EnergyAccount a(p);
    // One second idle: 0.4 J of background, no dynamic.
    EXPECT_DOUBLE_EQ(a.totalJoules(1.0), 0.4);
    EXPECT_DOUBLE_EQ(a.averageWatts(2.0), 0.4);
    EXPECT_DOUBLE_EQ(a.averageWatts(0.0), 0.0);
}

TEST(EnergyAccount, NvmWritesCostMost)
{
    EnergyParams p; // defaults
    EnergyAccount a(p);
    a.addWrite(true);
    double m2w = a.dynamicNj();
    EnergyAccount b(p);
    b.addWrite(false);
    b.addRead(true);
    b.addRead(false);
    // One NVM write outweighs a DRAM write plus both reads.
    EXPECT_GT(m2w, b.dynamicNj());
}

namespace
{

struct MemSysFixture : public ::testing::Test
{
    EventQueue eq;
    MemorySystemConfig cfg;
    std::unique_ptr<MemorySystem> sys;

    void
    SetUp() override
    {
        cfg.numChannels = 2;
        cfg.m1BytesPerChannel = 1 * MiB;
        cfg.m2BytesPerChannel = 8 * MiB;
        sys = std::make_unique<MemorySystem>(eq, cfg);
    }

    void
    read(unsigned channel, Module m, Addr a)
    {
        auto r = std::make_unique<Request>();
        r->module = m;
        r->addr = a;
        sys->channel(channel).push(std::move(r));
    }
};

} // anonymous namespace

TEST_F(MemSysFixture, ChannelsAreIndependent)
{
    read(0, Module::M1, 0);
    read(1, Module::M2, 0);
    eq.run();
    EXPECT_EQ(sys->channel(0).stats().counter("demand_reads"), 1u);
    EXPECT_EQ(sys->channel(1).stats().counter("demand_reads"), 1u);
    EXPECT_EQ(sys->totalCounter("demand_reads"), 2u);
    EXPECT_EQ(sys->totalCounter("m1_accesses"), 1u);
    EXPECT_EQ(sys->totalCounter("m2_accesses"), 1u);
}

TEST_F(MemSysFixture, TotalJoulesAggregates)
{
    read(0, Module::M1, 0);
    read(1, Module::M1, 0);
    eq.run();
    double one = sys->channel(0).energy().totalJoules(1e-3);
    EXPECT_NEAR(sys->totalJoules(1e-3), 2 * one, 1e-12);
    EXPECT_NEAR(sys->averageWatts(1e-3),
                sys->totalJoules(1e-3) / 1e-3, 1e-9);
}

TEST_F(MemSysFixture, MeanReadLatencyWeighted)
{
    // Channel 0 serves two M1 reads (fast), channel 1 one M2 read
    // (slow): the mean must sit between, closer to the M1 value.
    read(0, Module::M1, 0);
    read(0, Module::M1, 64);
    read(1, Module::M2, 0);
    eq.run();
    double m1 = sys->channel(0).readLatency().mean();
    double m2 = sys->channel(1).readLatency().mean();
    double mean = sys->meanReadLatency();
    EXPECT_GT(mean, m1);
    EXPECT_LT(mean, m2);
    EXPECT_NEAR(mean, (2 * m1 + m2) / 3.0, 1e-9);
}

TEST_F(MemSysFixture, ConfigValidated)
{
    MemorySystemConfig bad;
    bad.numChannels = 0;
    EXPECT_EXIT(MemorySystem(eq, bad),
                ::testing::ExitedWithCode(1), "channel");
}

TEST_F(MemSysFixture, RequestCompleteTickMonotone)
{
    // Completion ticks never precede enqueue ticks, and demand
    // latency statistics only cover reads.
    Tick enq = 0, done = 0;
    auto r = std::make_unique<Request>();
    r->module = Module::M2;
    r->addr = 4096;
    r->onComplete = [&](Request &req) {
        enq = req.enqueueTick;
        done = req.completeTick;
    };
    sys->channel(0).push(std::move(r));
    eq.run();
    EXPECT_GT(done, enq);
    EXPECT_EQ(sys->channel(0).readLatency().count(), 1u);
}
