/**
 * @file
 * Golden-value regression layer: pins the arithmetic that the
 * paper reproduction rests on, so refactors (and especially the
 * parallel experiment runner) can't silently drift the numbers.
 *
 * Three kinds of pins:
 *  - analytic golden values for the mechanism math (Table 5 QAC
 *    boundaries, Eqs. 5-7 with min_benefit = 8 decision outcomes,
 *    RSM SF_A/SF_B with alpha = 0.125 smoothing), computed by hand
 *    from the paper's formulas;
 *  - the seed-derivation constants (any change to deriveSeed
 *    silently reseeds every experiment in the repo);
 *  - end-to-end integer counters and IPC of a fast single-program
 *    configuration under the three headline policies.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/mdm.hh"
#include "core/rsm.hh"
#include "sim/experiment.hh"

using namespace profess;
using namespace profess::core;
using namespace profess::sim;

namespace
{

/** test_mdm.cc-style fast phase parameters. */
Mdm::Params
fastParams()
{
    Mdm::Params p;
    p.numPrograms = 2;
    p.minBenefit = 8;
    p.phaseUpdates = 16;
    p.recomputeEvery = 4;
    p.initialExpCnt = 0.0;
    return p;
}

void
feed(Mdm &mdm, ProgramId p, std::uint8_t q_i, unsigned count,
     unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        mdm.recordEviction(p, q_i, count);
}

struct DecideHarness
{
    hybrid::StcMeta meta{};
    policy::AccessInfo info{};

    DecideHarness()
    {
        std::memset(meta.ac, 0, sizeof(meta.ac));
        std::memset(meta.qacAtInsert, 0, sizeof(meta.qacAtInsert));
        info.group = 0;
        info.slot = 2;   // the M2 block under consideration
        info.m1Slot = 0; // incumbent
        info.accessor = 0;
        info.m1Owner = 1;
        info.meta = &meta;
    }
};

} // anonymous namespace

// ---------------------------------------------------------------
// Table 5: QAC quantization boundaries.
// ---------------------------------------------------------------

TEST(Golden, QacQuantizationBoundaries)
{
    // 0 | 1..7 | 8..31 | 32..63(sat)
    EXPECT_EQ(quantizeQac(0), 0);
    EXPECT_EQ(quantizeQac(1), 1);
    EXPECT_EQ(quantizeQac(7), 1);
    EXPECT_EQ(quantizeQac(8), 2);
    EXPECT_EQ(quantizeQac(31), 2);
    EXPECT_EQ(quantizeQac(32), 3);
    EXPECT_EQ(quantizeQac(63), 3);
}

// ---------------------------------------------------------------
// Eqs. 5-7 golden values.  Feeding 20 evictions of (qI=3,
// count=40) gives, at the recompute after update 20:
//   avg_cnt(3) = 800/20 = 40            (Eq. 6)
//   P(3|3)     = (20+1)/(20+3) = 21/23  (Eq. 7, Laplace)
//   exp_cnt(3) = 40 * 21/23 = 840/23    (Eq. 5)
// ---------------------------------------------------------------

TEST(Golden, ExpCntAfterTraining)
{
    Mdm mdm(fastParams());
    feed(mdm, 0, 3, 40, 20);
    EXPECT_NEAR(mdm.avgCnt(0, 3), 40.0, 1e-12);
    EXPECT_NEAR(mdm.transitionProb(0, 3, 3), 21.0 / 23.0, 1e-12);
    EXPECT_NEAR(mdm.expCnt(0, 3), 840.0 / 23.0, 1e-9);
    // Unseen insertion QAC: uniform Laplace mixture over qE.
    EXPECT_NEAR(mdm.expCnt(0, 0), 40.0 / 3.0, 1e-9);
}

// ---------------------------------------------------------------
// min_benefit = 8 decision boundaries (Sec. 3.2.3).  With
// exp_cnt = 840/23 = 36.5217: remaining(ac) = 840/23 - ac crosses
// min_benefit = 8 between ac = 28 (rem 8.52, swap) and ac = 29
// (rem 7.52, no swap).
// ---------------------------------------------------------------

TEST(Golden, MinBenefitVacantBoundary)
{
    Mdm mdm(fastParams());
    feed(mdm, 0, 3, 40, 20);
    DecideHarness h;
    h.info.m1Owner = invalidProgram; // vacant M1
    h.meta.qacAtInsert[h.info.slot] = 3;
    h.meta.bump(h.info.slot, 28);
    EXPECT_EQ(mdm.decide(h.info, false), policy::Decision::Swap);
    EXPECT_EQ(mdm.pathCount(Mdm::DecidePath::Vacant), 1u);

    DecideHarness h2;
    h2.info.m1Owner = invalidProgram;
    h2.meta.qacAtInsert[h2.info.slot] = 3;
    h2.meta.bump(h2.info.slot, 29);
    EXPECT_EQ(mdm.decide(h2.info, false), policy::Decision::NoSwap);
    EXPECT_EQ(mdm.pathCount(Mdm::DecidePath::NoBenefit), 1u);
}

TEST(Golden, MinBenefitNetBenefitBoundary)
{
    // Program 0 (M2 accessor): exp_cnt = 840/23 = 36.5217.
    // Program 1 (M1 incumbent): trained with count 20, so
    // exp_cnt = 20 * 21/23 = 420/23 = 18.2609.
    Mdm mdm(fastParams());
    feed(mdm, 0, 3, 40, 20);
    feed(mdm, 1, 3, 20, 20);

    // rem_m2 - rem_m1 = (840/23 - ac2) - (420/23 - 10)
    //                 = 420/23 + 10 - ac2 = 28.26 - ac2,
    // so the Case (c.ii) boundary falls between ac2 = 20 (benefit
    // 8.26, swap) and ac2 = 21 (benefit 7.26, no swap).
    {
        DecideHarness h;
        h.meta.qacAtInsert[h.info.slot] = 3;
        h.meta.bump(h.info.slot, 20);
        h.meta.qacAtInsert[h.info.m1Slot] = 3;
        h.meta.bump(h.info.m1Slot, 10);
        EXPECT_EQ(mdm.decide(h.info, false),
                  policy::Decision::Swap);
        EXPECT_EQ(mdm.pathCount(Mdm::DecidePath::NetBenefit), 1u);
    }
    {
        DecideHarness h;
        h.meta.qacAtInsert[h.info.slot] = 3;
        h.meta.bump(h.info.slot, 21);
        h.meta.qacAtInsert[h.info.m1Slot] = 3;
        h.meta.bump(h.info.m1Slot, 10);
        EXPECT_EQ(mdm.decide(h.info, false),
                  policy::Decision::NoSwap);
        EXPECT_EQ(mdm.pathCount(Mdm::DecidePath::Rejected), 1u);
    }
    // Depleted incumbent (ac = 19 > 420/23): Case (c.i) swaps.
    {
        DecideHarness h;
        h.meta.qacAtInsert[h.info.slot] = 3;
        h.meta.bump(h.info.slot, 20);
        h.meta.qacAtInsert[h.info.m1Slot] = 3;
        h.meta.bump(h.info.m1Slot, 19);
        EXPECT_EQ(mdm.decide(h.info, false),
                  policy::Decision::Swap);
        EXPECT_EQ(mdm.pathCount(Mdm::DecidePath::Depleted), 1u);
    }
}

// ---------------------------------------------------------------
// RSM SF_A / SF_B with the paper's alpha = 0.125 smoothing
// (Sec. 3.1.3): each Table 3 counter is incremented by one and
// exponentially smoothed before entering Eqs. 2-3.
// ---------------------------------------------------------------

TEST(Golden, RsmSfASmoothingAlphaEighth)
{
    Rsm::Params p;
    p.numPrograms = 2;
    p.numRegions = 8;
    p.sampleRequests = 100;
    p.alpha = 0.125;
    Rsm rsm(p);

    // Period 1: 20 private requests (10 from M1), 80 shared
    // (20 from M1).  Smoothers prime at x+1.
    for (int i = 0; i < 20; ++i)
        rsm.onServed(0, 0, i < 10);
    for (int i = 0; i < 80; ++i)
        rsm.onServed(0, 5, i < 20);
    ASSERT_EQ(rsm.periods(0), 1u);
    double sf1 = (11.0 / 21.0) / (21.0 / 81.0); // 891/441
    EXPECT_NEAR(rsm.sfA(0), sf1, 1e-12);

    // Period 2: 40 private (10 M1), 60 shared (30 M1).
    // a = prev + 0.125 * (x+1 - prev) per counter:
    //   m1p: 11 + 0.125*(11-11) = 11
    //   totp: 21 + 0.125*(41-21) = 23.5
    //   m1s: 21 + 0.125*(31-21) = 22.25
    //   tots: 81 + 0.125*(61-81) = 78.5
    for (int i = 0; i < 40; ++i)
        rsm.onServed(0, 0, i < 10);
    for (int i = 0; i < 60; ++i)
        rsm.onServed(0, 5, i < 30);
    ASSERT_EQ(rsm.periods(0), 2u);
    double sf2 = (11.0 / 23.5) / (22.25 / 78.5);
    EXPECT_NEAR(rsm.sfA(0), sf2, 1e-12);
}

TEST(Golden, RsmSfBSwapAccounting)
{
    Rsm::Params p;
    p.numPrograms = 2;
    p.numRegions = 8;
    p.sampleRequests = 10;
    p.alpha = 0.125;
    Rsm rsm(p);

    // Program 0: two self-swaps plus one displacement of program 1,
    // all in shared regions -> swapSelf = 2, swapTotal = 3.
    rsm.onSwap(0, 0, false);
    rsm.onSwap(0, 0, false);
    rsm.onSwap(0, 1, false);
    // Private-region swaps are not counted (Sec. 3.1.2).
    rsm.onSwap(0, 0, true);
    for (int i = 0; i < 10; ++i)
        rsm.onServed(0, 5, false);
    ASSERT_EQ(rsm.periods(0), 1u);
    // SF_B = (total+1)/(self+1) = 4/3 after priming.
    EXPECT_NEAR(rsm.sfB(0), 4.0 / 3.0, 1e-12);
}

// ---------------------------------------------------------------
// Seed-derivation constants.  deriveSeed defines the identity of
// every experiment job; a change here reseeds the whole repo's
// results, so it must never drift unnoticed.
// ---------------------------------------------------------------

TEST(Golden, SeedDerivationConstants)
{
    EXPECT_EQ(mix64(1), 0x910a2dec89025cc1ull);
    EXPECT_EQ(deriveSeed(1, "pom", "w01", 0),
              0x804aeeff04fcd246ull);
    EXPECT_EQ(deriveSeed(1, "mdm", "w01", 0),
              0x761e67319c5b64ddull);
    EXPECT_EQ(deriveSeed(1, "pom", "w01", 1),
              0xb8f98e71655754afull);
}

// ---------------------------------------------------------------
// End-to-end golden run: mcf on the fast single-core system,
// seed 1.  Integer counters are pinned exactly; IPC to 1e-9
// relative.  If a refactor legitimately changes the physics,
// update these alongside EXPERIMENTS.md.
// ---------------------------------------------------------------

TEST(Golden, EndToEndSingleCoreMcf)
{
    SystemConfig c = SystemConfig::singleCore();
    c.core.instrQuota = 150000;
    c.core.warmupInstr = 50000;
    ExperimentRunner runner(c);

    RunResult pom = runner.run("pom", {"mcf"});
    ASSERT_TRUE(pom.completed);
    EXPECT_EQ(pom.servedTotal, 9085u);
    EXPECT_EQ(pom.swaps, 323u);
    EXPECT_NEAR(pom.ipc[0], 0.061480317103094567, 1e-9);
    EXPECT_NEAR(pom.m1Fraction, 0.29730324711062189, 1e-9);

    RunResult mdm = runner.run("mdm", {"mcf"});
    ASSERT_TRUE(mdm.completed);
    EXPECT_EQ(mdm.servedTotal, 9085u);
    EXPECT_EQ(mdm.swaps, 29u);
    EXPECT_NEAR(mdm.ipc[0], 0.079062858010098852, 1e-9);

    // At this scale the single-program ProFess run matches MDM
    // (RSM guidance needs co-runners to bite).
    RunResult pf = runner.run("profess", {"mcf"});
    ASSERT_TRUE(pf.completed);
    EXPECT_EQ(pf.swaps, 29u);
    EXPECT_NEAR(pf.ipc[0], 0.079062858010098852, 1e-9);
}
