/**
 * @file
 * Tests for the Swap-group Table and the STC (Fig. 4): address
 * translation bits, per-block counters, LRU, pinning, metadata.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/invariant.hh"
#include "core/mdm.hh"
#include "hybrid/st.hh"
#include "hybrid/stc.hh"

using namespace profess;
using namespace profess::hybrid;

namespace
{

HybridLayout
smallLayout()
{
    return HybridLayout::build(1 * MiB, 8 * MiB, 2, 32, 9);
}

} // anonymous namespace

TEST(SwapGroupTable, IdentityInit)
{
    HybridLayout l = smallLayout();
    SwapGroupTable st(l);
    for (std::uint64_t g = 0; g < 10; ++g) {
        for (unsigned s = 0; s < l.slotsPerGroup; ++s) {
            EXPECT_EQ(st.locationOf(g, s), s);
            EXPECT_EQ(st.entry(g).qac[s], 0);
        }
        EXPECT_EQ(st.slotInM1(g), 0u);
    }
}

TEST(SwapGroupTable, SwapSlotsExchangesLocations)
{
    SwapGroupTable st(smallLayout());
    st.swapSlots(3, 0, 5);
    EXPECT_EQ(st.locationOf(3, 0), 5u);
    EXPECT_EQ(st.locationOf(3, 5), 0u);
    EXPECT_EQ(st.slotInM1(3), 5u);
    // Involution: swapping back restores identity.
    st.swapSlots(3, 0, 5);
    EXPECT_EQ(st.locationOf(3, 0), 0u);
    EXPECT_EQ(st.slotInM1(3), 0u);
}

TEST(SwapGroupTable, ChainedSwapsStayPermutation)
{
    HybridLayout l = smallLayout();
    SwapGroupTable st(l);
    st.swapSlots(7, 0, 3);
    st.swapSlots(7, 3, 8); // slot 3 (now in M1) with slot 8
    st.swapSlots(7, 8, 1);
    // All locations distinct (a permutation).
    bool seen[maxSlots] = {};
    for (unsigned s = 0; s < l.slotsPerGroup; ++s) {
        unsigned loc = st.locationOf(7, s);
        ASSERT_LT(loc, l.slotsPerGroup);
        EXPECT_FALSE(seen[loc]);
        seen[loc] = true;
    }
    EXPECT_EQ(st.slotInM1(7), 1u);
}

TEST(StcMeta, BumpSaturatesAt63)
{
    StcMeta m{};
    m.bump(2, 60);
    EXPECT_EQ(m.ac[2], 60);
    m.bump(2, 8);
    EXPECT_EQ(m.ac[2], 63);
    m.bump(2, 1);
    EXPECT_EQ(m.ac[2], 63);
    EXPECT_TRUE(m.touchedMask & (1u << 2));
}

TEST(StcMeta, BumpClearsDepleted)
{
    StcMeta m{};
    m.depletedMask = 1u << 4;
    EXPECT_TRUE(m.depleted(4));
    m.bump(4, 1);
    EXPECT_FALSE(m.depleted(4));
}

TEST(StcMeta, AnyOtherAccessed)
{
    StcMeta m{};
    std::memset(m.ac, 0, sizeof(m.ac));
    EXPECT_FALSE(m.anyOtherAccessed(9, 0));
    m.ac[3] = 1;
    EXPECT_TRUE(m.anyOtherAccessed(9, 0));
    EXPECT_FALSE(m.anyOtherAccessed(9, 3));
}

namespace
{

StCache::Params
tinyStc()
{
    // 2 sets x 4 ways.
    StCache::Params p;
    p.capacityBytes = 64;
    p.ways = 4;
    p.entryBytes = 8;
    return p;
}

std::uint8_t zeroQac[maxSlots] = {};

} // anonymous namespace

TEST(StCache, Geometry)
{
    StCache stc(tinyStc());
    EXPECT_EQ(stc.numSets(), 2u);
    EXPECT_EQ(stc.ways(), 4u);
}

TEST(StCache, MissThenHit)
{
    StCache stc(tinyStc());
    EXPECT_EQ(stc.find(10), nullptr);
    EXPECT_EQ(stc.misses(), 1u);
    StcEviction ev;
    EXPECT_TRUE(stc.insert(10, zeroQac, ev));
    EXPECT_FALSE(ev.valid);
    EXPECT_NE(stc.find(10), nullptr);
    EXPECT_EQ(stc.hits(), 1u);
    EXPECT_NEAR(stc.hitRate(), 0.5, 1e-12);
}

TEST(StCache, LruEviction)
{
    StCache stc(tinyStc());
    StcEviction ev;
    // Fill set 0 (even groups with numSets=2).
    for (std::uint64_t g : {0u, 2u, 4u, 6u})
        ASSERT_TRUE(stc.insert(g, zeroQac, ev));
    // Touch 0 so 2 becomes LRU.
    ASSERT_NE(stc.find(0), nullptr);
    ASSERT_TRUE(stc.insert(8, zeroQac, ev));
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.group, 2u);
    EXPECT_FALSE(stc.contains(2));
    EXPECT_TRUE(stc.contains(0));
}

TEST(StCache, EvictionDirtyWhenCountersNonZero)
{
    StCache stc(tinyStc());
    StcEviction ev;
    ASSERT_TRUE(stc.insert(0, zeroQac, ev));
    stc.peek(0)->bump(1, 3);
    for (std::uint64_t g : {2u, 4u, 6u, 8u})
        ASSERT_TRUE(stc.insert(g, zeroQac, ev));
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.group, 0u);
    EXPECT_TRUE(ev.dirty); // counters imply a QAC read-modify-write
    EXPECT_EQ(ev.meta.ac[1], 3);
}

TEST(StCache, CleanEvictionNotDirty)
{
    StCache stc(tinyStc());
    StcEviction ev;
    for (std::uint64_t g : {0u, 2u, 4u, 6u, 8u})
        ASSERT_TRUE(stc.insert(g, zeroQac, ev));
    EXPECT_TRUE(ev.valid);
    EXPECT_FALSE(ev.dirty);
}

TEST(StCache, PinnedWaysSkipped)
{
    StCache stc(tinyStc());
    StcEviction ev;
    for (std::uint64_t g : {0u, 2u, 4u, 6u})
        ASSERT_TRUE(stc.insert(g, zeroQac, ev));
    stc.peek(0)->swapping = true; // LRU but pinned
    ASSERT_TRUE(stc.insert(8, zeroQac, ev));
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.group, 2u); // next LRU after the pinned way
    EXPECT_TRUE(stc.contains(0));
}

TEST(StCache, AllPinnedInsertFails)
{
    StCache stc(tinyStc());
    StcEviction ev;
    for (std::uint64_t g : {0u, 2u, 4u, 6u}) {
        ASSERT_TRUE(stc.insert(g, zeroQac, ev));
        stc.peek(g)->swapping = true;
    }
    EXPECT_FALSE(stc.insert(8, zeroQac, ev));
    EXPECT_FALSE(stc.contains(8));
}

TEST(StCache, InsertSnapshotsQac)
{
    StCache stc(tinyStc());
    std::uint8_t qac[maxSlots] = {};
    qac[4] = 3;
    qac[7] = 1;
    StcEviction ev;
    ASSERT_TRUE(stc.insert(0, qac, ev));
    StcMeta *m = stc.peek(0);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->qacAtInsert[4], 3);
    EXPECT_EQ(m->qacAtInsert[7], 1);
    EXPECT_EQ(m->ac[4], 0); // counters reset at insertion
}

TEST(StCache, PeekDoesNotCountStats)
{
    StCache stc(tinyStc());
    StcEviction ev;
    ASSERT_TRUE(stc.insert(0, zeroQac, ev));
    std::uint64_t h = stc.hits(), m = stc.misses();
    EXPECT_NE(stc.peek(0), nullptr);
    EXPECT_EQ(stc.peek(99), nullptr);
    EXPECT_EQ(stc.hits(), h);
    EXPECT_EQ(stc.misses(), m);
}

TEST(StCache, EvictionWritebackCarriesCountersAndSnapshot)
{
    StCache stc(tinyStc());
    std::uint8_t qac[maxSlots] = {};
    qac[2] = 3;
    StcEviction ev;
    ASSERT_TRUE(stc.insert(0, qac, ev));
    stc.peek(0)->bump(2, 5);
    stc.peek(0)->bump(4, 70); // saturates at 63
    for (std::uint64_t g : {2u, 4u, 6u, 8u})
        ASSERT_TRUE(stc.insert(g, zeroQac, ev));
    ASSERT_TRUE(ev.valid);
    ASSERT_EQ(ev.group, 0u);
    EXPECT_TRUE(ev.dirty);
    // The evicted metadata is the writeback payload: final access
    // counters plus the q_I snapshot taken at insertion.
    EXPECT_EQ(ev.meta.ac[2], 5);
    EXPECT_EQ(ev.meta.ac[4], 63);
    EXPECT_EQ(ev.meta.qacAtInsert[2], 3);
    EXPECT_EQ(ev.meta.qacAtInsert[4], 0);

    // Fold the counters into the ST entry the way the eviction
    // path does (quantize per Table 5) and audit the group.
    SwapGroupTable st(smallLayout());
    StEntry &e = st.entry(ev.group);
    for (unsigned s = 0; s < smallLayout().slotsPerGroup; ++s)
        e.qac[s] = core::quantizeQac(ev.meta.ac[s]);
    EXPECT_EQ(e.qac[2], 1); // 5 accesses -> bucket 1
    EXPECT_EQ(e.qac[4], 3); // 63 accesses -> bucket 3
    st.auditGroup(ev.group);
}

TEST(StCache, AuditCleanAfterChurn)
{
    HybridLayout l = smallLayout();
    SwapGroupTable st(l);
    StCache stc(tinyStc());
    StcEviction ev;
    std::uint64_t before = audit::checksRun();
    for (std::uint64_t g = 0; g < 40; ++g) {
        ASSERT_TRUE(stc.insert(g, st.entry(g).qac, ev));
        if (StcMeta *m = stc.peek(g))
            m->bump(static_cast<unsigned>(g % l.slotsPerGroup), 1);
    }
    stc.auditInvariants(st);
    st.auditInvariants();
    // The audits are callable (and counted) in every build type,
    // not only under PROFESS_AUDIT.
    EXPECT_GT(audit::checksRun(), before);
}

TEST(StCache, ForEachVisitsAllValid)
{
    StCache stc(tinyStc());
    StcEviction ev;
    for (std::uint64_t g : {0u, 1u, 2u, 3u})
        ASSERT_TRUE(stc.insert(g, zeroQac, ev));
    unsigned count = 0;
    std::uint64_t sum = 0;
    stc.forEach([&](std::uint64_t g, StcMeta &) {
        ++count;
        sum += g;
    });
    EXPECT_EQ(count, 4u);
    EXPECT_EQ(sum, 6u);
}
