/**
 * @file
 * Tests for the trace-driven core model: compute-bound IPC, MSHR and
 * ROB limits, warm-up/quota measurement, repetition, posted writes.
 */

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <vector>

#include "common/event.hh"
#include "cpu/core_model.hh"
#include "trace/access.hh"

using namespace profess;
using namespace profess::cpu;

namespace
{

/** Scripted trace: fixed gap, fixed rd/wr mix, round-robin lines. */
class ScriptedSource : public trace::TraceSource
{
  public:
    ScriptedSource(std::uint32_t gap, double write_every = 0,
                   std::uint64_t limit = 0)
        : gap_(gap), writeEvery_(write_every), limit_(limit)
    {
    }

    bool
    next(trace::MemAccess &out) override
    {
        if (limit_ && produced_ >= limit_)
            return false;
        ++produced_;
        out.vaddr = (produced_ % 1024) * 64;
        out.instGap = gap_;
        out.isWrite = writeEvery_ > 0 &&
                      (produced_ % static_cast<std::uint64_t>(
                                       writeEvery_)) == 0;
        return true;
    }

    std::uint64_t footprintBytes() const override
    {
        return 1024 * 64;
    }

    void reset() override { produced_ = 0; }

    std::uint64_t produced_ = 0;

  private:
    std::uint32_t gap_;
    double writeEvery_;
    std::uint64_t limit_;
};

/** Memory port answering reads after a fixed delay. */
class FixedLatencyPort : public MemPort
{
  public:
    FixedLatencyPort(EventQueue &eq, Cycles latency)
        : eq_(eq), latency_(latency)
    {
    }

    void
    issue(ProgramId, Addr, bool is_write,
          InlineCallback done) override
    {
        if (is_write) {
            ++writes_;
            return;
        }
        ++reads_;
        ++outstanding_;
        maxOutstanding_ = std::max(maxOutstanding_, outstanding_);
        eq_.scheduleIn(latency_,
                       [this, cb = std::move(done)]() mutable {
                           --outstanding_;
                           if (cb)
                               cb();
                       });
    }

    EventQueue &eq_;
    Cycles latency_;
    unsigned outstanding_ = 0;
    unsigned maxOutstanding_ = 0;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
};

CoreParams
fastParams(std::uint64_t quota, std::uint64_t warmup = 0)
{
    CoreParams p;
    p.instrQuota = quota;
    p.warmupInstr = warmup;
    return p;
}

} // anonymous namespace

TEST(CoreModel, ComputeBoundIpcEqualsWidth)
{
    EventQueue eq;
    // Huge gaps: memory latency negligible -> IPC ~ width.
    ScriptedSource src(10000);
    FixedLatencyPort port(eq, 1);
    CoreModel core(eq, fastParams(200000), src, port, 0);
    core.start();
    eq.run([&]() { return core.quotaReached(); });
    ASSERT_TRUE(core.quotaReached());
    EXPECT_NEAR(core.ipcAtQuota(), 4.0, 0.05);
}

TEST(CoreModel, MemoryBoundIpcReflectsLatency)
{
    EventQueue eq;
    // gap 0: every instruction is a read; latency 100 ticks with 16
    // MSHRs -> ~16 reads per 100 ticks = 0.04 instr/core-cycle.
    ScriptedSource src(0);
    FixedLatencyPort port(eq, 100);
    CoreParams p = fastParams(20000);
    p.robSize = 10000; // not the limiter here
    CoreModel core(eq, p, src, port, 0);
    core.start();
    eq.run([&]() { return core.quotaReached(); });
    ASSERT_TRUE(core.quotaReached());
    double expect = 16.0 / (100.0 * 4.0);
    EXPECT_NEAR(core.ipcAtQuota(), expect, expect * 0.2);
    EXPECT_LE(port.maxOutstanding_, 16u);
}

TEST(CoreModel, RobLimitsRunAhead)
{
    EventQueue eq;
    // gap 63: one read per 64 instructions; ROB 256 allows ~4
    // outstanding despite 16 MSHRs.
    ScriptedSource src(63);
    FixedLatencyPort port(eq, 10000);
    CoreParams p = fastParams(100000);
    CoreModel core(eq, p, src, port, 0);
    core.start();
    eq.runUntil(50000);
    EXPECT_LE(port.maxOutstanding_, 256u / 64u + 1);
    EXPECT_GE(port.maxOutstanding_, 256u / 64u - 1);
    core.halt();
    eq.run();
}

TEST(CoreModel, MshrLimitRespected)
{
    EventQueue eq;
    ScriptedSource src(0);
    FixedLatencyPort port(eq, 5000);
    CoreParams p = fastParams(100000);
    p.robSize = 100000;
    p.maxOutstanding = 5;
    CoreModel core(eq, p, src, port, 0);
    core.start();
    eq.runUntil(20000);
    EXPECT_LE(port.maxOutstanding_, 5u);
    EXPECT_EQ(port.maxOutstanding_, 5u);
    core.halt();
    eq.run();
}

TEST(CoreModel, WritesArePosted)
{
    EventQueue eq;
    // All writes (writeEvery = 1): never blocks on memory.
    ScriptedSource src(0, 1.0);
    FixedLatencyPort port(eq, 100000);
    CoreModel core(eq, fastParams(10000), src, port, 0);
    core.start();
    eq.run([&]() { return core.quotaReached(); });
    ASSERT_TRUE(core.quotaReached());
    EXPECT_GT(port.writes_, 0u);
    EXPECT_EQ(port.reads_, 0u);
    // Posted writes: IPC near width even with huge memory latency.
    EXPECT_NEAR(core.ipcAtQuota(), 4.0, 0.1);
}

TEST(CoreModel, WarmupExcludedFromIpc)
{
    EventQueue eq;
    ScriptedSource src(10000);
    FixedLatencyPort port(eq, 1);
    CoreModel core(eq, fastParams(50000, 30000), src, port, 0);
    bool warm = false;
    core.setOnWarmup([&]() { warm = true; });
    core.start();
    eq.run([&]() { return core.quotaReached(); });
    ASSERT_TRUE(warm);
    ASSERT_TRUE(core.quotaReached());
    EXPECT_TRUE(core.warmupDone());
    // Quota counts only post-warm-up instructions.
    EXPECT_GE(core.retired(), 80000u);
    EXPECT_NEAR(core.ipcAtQuota(), 4.0, 0.05);
}

TEST(CoreModel, QuotaCallbackFiresOnce)
{
    EventQueue eq;
    ScriptedSource src(100);
    FixedLatencyPort port(eq, 1);
    CoreModel core(eq, fastParams(5000), src, port, 0);
    int fired = 0;
    core.setOnQuota([&]() { ++fired; });
    core.start();
    eq.runUntil(2000000);
    EXPECT_EQ(fired, 1);
    core.halt();
    eq.run();
}

TEST(CoreModel, FiniteTraceRepeats)
{
    EventQueue eq;
    ScriptedSource src(10, 0, 1000); // ends after 1000 accesses
    FixedLatencyPort port(eq, 1);
    CoreModel core(eq, fastParams(100000), src, port, 0);
    core.start();
    eq.run([&]() { return core.quotaReached(); });
    ASSERT_TRUE(core.quotaReached());
    EXPECT_GE(core.repetitions(), 8u);
}

TEST(CoreModel, HaltStopsIssuing)
{
    EventQueue eq;
    ScriptedSource src(0);
    FixedLatencyPort port(eq, 10);
    CoreModel core(eq, fastParams(1000000), src, port, 0);
    core.start();
    eq.runUntil(1000);
    std::uint64_t reads = port.reads_;
    core.halt();
    eq.run();
    // A few in-flight completions, but no new reads.
    EXPECT_LE(port.reads_, reads + 1);
}

TEST(CoreModel, DeterministicTiming)
{
    auto run_once = []() {
        EventQueue eq;
        ScriptedSource src(7);
        FixedLatencyPort port(eq, 55);
        CoreModel core(eq, fastParams(30000), src, port, 0);
        core.start();
        eq.run([&]() { return core.quotaReached(); });
        return core.quotaTick();
    };
    EXPECT_EQ(run_once(), run_once());
}
