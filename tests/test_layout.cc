/**
 * @file
 * Property and unit tests for the address-space layout: module
 * geometry decoding and the swap-group / region / channel math of
 * the PoM organization (Sec. 2.3, Fig. 3).
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "common/rng.hh"
#include "hybrid/layout.hh"
#include "mem/geometry.hh"

using namespace profess;
using namespace profess::hybrid;

TEST(ModuleGeometry, CapacityAndDecode)
{
    mem::ModuleGeometry g = mem::ModuleGeometry::withCapacity(2 * MiB);
    EXPECT_EQ(g.capacity(), 2 * MiB);
    EXPECT_EQ(g.banks, 16u);
    EXPECT_EQ(g.rowBytes, 8 * KiB);
    EXPECT_EQ(g.rowsPerBank, 16u);

    mem::DecodedAddr d = g.decode(0);
    EXPECT_EQ(d.bank, 0u);
    EXPECT_EQ(d.row, 0u);
    EXPECT_EQ(d.column, 0u);

    // Consecutive 8-KiB chunks interleave across banks.
    d = g.decode(8 * KiB);
    EXPECT_EQ(d.bank, 1u);
    EXPECT_EQ(d.row, 0u);
    d = g.decode(16 * 8 * KiB);
    EXPECT_EQ(d.bank, 0u);
    EXPECT_EQ(d.row, 1u);
}

TEST(ModuleGeometry, DecodeRoundTripProperty)
{
    mem::ModuleGeometry g = mem::ModuleGeometry::withCapacity(4 * MiB);
    Rng rng(11);
    for (int i = 0; i < 2000; ++i) {
        Addr a = rng.below64(g.capacity());
        mem::DecodedAddr d = g.decode(a);
        // Reconstruct the address from (bank, row, column).
        Addr back = (d.row * g.banks + d.bank) * g.rowBytes + d.column;
        EXPECT_EQ(back, a);
        EXPECT_LT(d.bank, g.banks);
        EXPECT_LT(d.row, g.rowsPerBank);
        EXPECT_LT(d.column, g.rowBytes);
    }
}

namespace
{

struct LayoutCase
{
    std::uint64_t m1Bytes;
    std::uint64_t m2Bytes;
    unsigned channels;
    unsigned regions;
    unsigned slots;
};

class LayoutParam : public ::testing::TestWithParam<LayoutCase>
{
};

} // anonymous namespace

TEST_P(LayoutParam, BuildRespectsBudgetsAndAlignment)
{
    const LayoutCase &c = GetParam();
    HybridLayout l = HybridLayout::build(c.m1Bytes, c.m2Bytes,
                                         c.channels, c.regions,
                                         c.slots);
    EXPECT_GT(l.numGroups, 0u);
    EXPECT_EQ(l.numGroups % c.channels, 0u);
    EXPECT_EQ((l.numGroups / 2) % c.regions, 0u);
    EXPECT_LE(l.m1BytesRequiredPerChannel(), c.m1Bytes);
    EXPECT_LE(l.m2BytesRequiredPerChannel(), c.m2Bytes);
    // Capacity ratio M1:M2 is 1:(slots-1) by construction.
    EXPECT_EQ(l.visibleBytes(),
              l.numGroups * c.slots * l.blockBytes);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LayoutParam,
    ::testing::Values(
        LayoutCase{1 * MiB, 8 * MiB, 1, 32, 9},
        LayoutCase{1536 * KiB, 12 * MiB, 2, 32, 9},
        LayoutCase{2 * MiB, 8 * MiB, 1, 32, 5},
        LayoutCase{1 * MiB, 16 * MiB, 1, 32, 17},
        LayoutCase{8 * MiB, 64 * MiB, 2, 128, 9},
        LayoutCase{4 * MiB, 32 * MiB, 4, 64, 9},
        LayoutCase{1 * MiB, 8 * MiB, 1, 64, 9},
        LayoutCase{16 * MiB, 128 * MiB, 2, 128, 9}));

TEST(HybridLayout, BlockIndexRoundTrip)
{
    HybridLayout l = HybridLayout::build(1 * MiB, 8 * MiB, 2, 32, 9);
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        std::uint64_t ob = rng.below64(l.totalBlocks());
        std::uint64_t g = l.groupOf(ob);
        unsigned s = l.slotOf(ob);
        EXPECT_LT(g, l.numGroups);
        EXPECT_LT(s, l.slotsPerGroup);
        EXPECT_EQ(l.blockIndex(g, s), ob);
    }
}

TEST(HybridLayout, PageSpansTwoConsecutiveGroupsSameRegion)
{
    // Fig. 3: a 4-KiB page covers two consecutive swap groups that
    // map to the same region.
    HybridLayout l = HybridLayout::build(1 * MiB, 8 * MiB, 2, 32, 9);
    for (std::uint64_t page = 0; page < 500; ++page) {
        std::uint64_t b0 = page * 2, b1 = page * 2 + 1;
        if (b1 >= l.totalBlocks())
            break;
        std::uint64_t g0 = l.groupOf(b0), g1 = l.groupOf(b1);
        if (g1 == 0)
            continue; // wrap point
        EXPECT_EQ(g1, g0 + 1);
        EXPECT_EQ(l.regionOfGroup(g0), l.regionOfGroup(g1));
    }
}

TEST(HybridLayout, RegionsInterleaveUniformly)
{
    HybridLayout l = HybridLayout::build(1 * MiB, 8 * MiB, 2, 32, 9);
    std::vector<std::uint64_t> per_region(l.numRegions, 0);
    for (std::uint64_t g = 0; g < l.numGroups; ++g)
        ++per_region[l.regionOfGroup(g)];
    for (unsigned r = 1; r < l.numRegions; ++r)
        EXPECT_EQ(per_region[r], per_region[0]);
}

TEST(HybridLayout, DeviceAddressesAreUnique)
{
    HybridLayout l = HybridLayout::build(512 * KiB, 4 * MiB, 2, 32, 9);
    // Every (channel, module, block address) must be distinct.
    std::set<std::tuple<unsigned, int, Addr>> seen;
    for (std::uint64_t g = 0; g < l.numGroups; ++g) {
        auto key1 = std::make_tuple(l.channelOf(g), 1,
                                    l.m1BlockAddr(g));
        EXPECT_TRUE(seen.insert(key1).second);
        for (unsigned loc = 1; loc < l.slotsPerGroup; ++loc) {
            auto key2 = std::make_tuple(l.channelOf(g), 2,
                                        l.m2BlockAddr(g, loc));
            EXPECT_TRUE(seen.insert(key2).second);
        }
    }
}

TEST(HybridLayout, StAreaFollowsData)
{
    HybridLayout l = HybridLayout::build(1 * MiB, 8 * MiB, 2, 32, 9);
    for (std::uint64_t g = 0; g < l.numGroups; g += 37) {
        Addr st = l.stEntryAddr(g);
        EXPECT_GE(st, l.m1DataBytesPerChannel());
        EXPECT_LT(st, l.m1BytesRequiredPerChannel());
        EXPECT_EQ(st % 64, 0u);
    }
}

TEST(HybridLayout, ChannelInterleavesByGroup)
{
    HybridLayout l = HybridLayout::build(1 * MiB, 8 * MiB, 2, 32, 9);
    EXPECT_EQ(l.channelOf(0), 0u);
    EXPECT_EQ(l.channelOf(1), 1u);
    EXPECT_EQ(l.channelOf(2), 0u);
    EXPECT_EQ(l.localGroup(5), 2u);
}

TEST(HybridLayout, TooSmallMemoryFails)
{
    EXPECT_EXIT(
        HybridLayout::build(4 * KiB, 32 * KiB, 2, 128, 9),
        ::testing::ExitedWithCode(1), "too small");
}
