/**
 * @file
 * Reproduction guardrails: small-scale regression tests asserting
 * the *directional* results the benchmarks reproduce at full scale
 * (EXPERIMENTS.md). If one of these breaks, a code change has
 * altered the physics or the policies enough to invalidate the
 * recorded paper-vs-measured comparison.
 *
 * Sizes are chosen for CI speed (hundreds of milliseconds each), so
 * thresholds are deliberately loose.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

using namespace profess;
using namespace profess::sim;

namespace
{

SystemConfig
single(std::uint64_t quota = 800000)
{
    SystemConfig c = SystemConfig::singleCore();
    c.core.instrQuota = quota;
    c.core.warmupInstr = 400000;
    return c;
}

SystemConfig
quad(std::uint64_t quota = 400000)
{
    SystemConfig c = SystemConfig::quadCore();
    c.core.instrQuota = quota;
    c.core.warmupInstr = 200000;
    return c;
}

} // anonymous namespace

TEST(Reproduction, MigrationBeatsStaticForFittingFootprint)
{
    // libquantum fits entirely in M1 (paper Sec. 5.1): any
    // migrating policy must crush the static baseline.
    ExperimentRunner runner(single());
    double fixed = runner.run("never", {"libquantum"}).ipc[0];
    // PoM reacts instantly (global threshold); at this small CI
    // scale the learning-based policies only need to beat static.
    EXPECT_GT(runner.run("pom", {"libquantum"}).ipc[0],
              1.5 * fixed);
    for (const char *pol : {"mdm", "profess"}) {
        double moving = runner.run(pol, {"libquantum"}).ipc[0];
        EXPECT_GT(moving, fixed) << pol;
    }
}

TEST(Reproduction, MdmBeatsPomOnIrregular)
{
    // Fig. 5's surviving shape at our scale: MDM's individual
    // cost-benefit analysis wins on irregular memory-bound mcf.
    ExperimentRunner runner(single());
    double pom = runner.run("pom", {"mcf"}).ipc[0];
    double mdm = runner.run("mdm", {"mcf"}).ipc[0];
    EXPECT_GT(mdm, pom);
}

TEST(Reproduction, MdmSwapsLessOnIrregular)
{
    // "MDM identifies such blocks better and performs fewer swaps"
    // (Sec. 5.1 on mcf).
    ExperimentRunner runner(single());
    RunResult pom = runner.run("pom", {"mcf"});
    RunResult mdm = runner.run("mdm", {"mcf"});
    EXPECT_LT(mdm.swaps, pom.swaps);
}

TEST(Reproduction, CameoThrashes)
{
    // Sec. 2.5: a global threshold of one access over-migrates.
    ExperimentRunner runner(single());
    RunResult cameo = runner.run("cameo", {"soplex"});
    RunResult pom = runner.run("pom", {"soplex"});
    EXPECT_GT(cameo.swapFraction, 3.0 * pom.swapFraction);
    EXPECT_LT(cameo.ipc[0], pom.ipc[0]);
}

TEST(Reproduction, MemPodTrailsPomOnAmmat)
{
    // Sec. 2.5: MemPod's AMMAT is longer than PoM's on this
    // NVM-based system.
    ExperimentRunner runner(single());
    double pom = runner.run("pom", {"lbm"}).meanReadLatencyNs;
    double mp = runner.run("mempod", {"lbm"}).meanReadLatencyNs;
    EXPECT_GT(mp, pom);
}

TEST(Reproduction, ProfessImprovesFairnessOverPom)
{
    // Figs. 13-14 direction on a workload with a dominant sufferer.
    ExperimentRunner runner(quad());
    const WorkloadSpec *w = findWorkload("w19");
    MultiMetrics pom = runner.runMulti("pom", *w);
    MultiMetrics pf = runner.runMulti("profess", *w);
    EXPECT_LT(pf.maxSlowdown, pom.maxSlowdown);
}

TEST(Reproduction, ProfessReducesSwapFraction)
{
    // Sec. 5.4: the help policy prohibits some swaps.
    ExperimentRunner runner(quad());
    const WorkloadSpec *w = findWorkload("w09");
    MultiMetrics pom = runner.runMulti("pom", *w);
    MultiMetrics pf = runner.runMulti("profess", *w);
    EXPECT_LT(pf.run.swapFraction, pom.run.swapFraction);
}

TEST(Reproduction, SlowdownsExceedOneUnderContention)
{
    // Fig. 2's premise: co-running programs all slow down, some
    // much more than others.
    ExperimentRunner runner(quad());
    const WorkloadSpec *w = findWorkload("w09");
    MultiMetrics pom = runner.runMulti("pom", *w);
    for (double s : pom.slowdown)
        EXPECT_GT(s, 1.2);
    EXPECT_GT(pom.maxSlowdown,
              1.3 * *std::min_element(pom.slowdown.begin(),
                                      pom.slowdown.end()));
}

TEST(Reproduction, StcHitRateOrdering)
{
    // Fig. 7's shape: irregular mcf has a clearly lower STC hit
    // rate than streaming lbm.
    ExperimentRunner runner(single());
    double mcf = runner.run("mdm", {"mcf"}).stcHitRate;
    double lbm = runner.run("mdm", {"lbm"}).stcHitRate;
    EXPECT_LT(mcf + 0.1, lbm);
}

TEST(Reproduction, WriteHeavyStreamingNeedsMigration)
{
    // The per-write NVM recovery makes M2-resident write-heavy
    // streaming costly: migration must clearly beat static for lbm
    // (wf = 0.45).
    ExperimentRunner runner(single());
    double fixed = runner.run("never", {"lbm"}).ipc[0];
    double pom = runner.run("pom", {"lbm"}).ipc[0];
    EXPECT_GT(pom, 1.2 * fixed);
}

TEST(Reproduction, EfficiencyTracksSwapReduction)
{
    // Fig. 15: less swap traffic -> fewer NVM writes -> better
    // energy efficiency for ProFess vs PoM on most workloads.
    ExperimentRunner runner(quad());
    const WorkloadSpec *w = findWorkload("w16");
    MultiMetrics pom = runner.runMulti("pom", *w);
    MultiMetrics pf = runner.runMulti("profess", *w);
    EXPECT_GT(pf.efficiency, 0.9 * pom.efficiency);
}
