/**
 * @file
 * Tests for the baseline migration algorithms (Table 2): CAMEO,
 * SILC-FM, PoM's competing counter and threshold adaptation, and
 * MemPod's MEA interval migrations.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "policy/cameo.hh"
#include "policy/mempod.hh"
#include "policy/pom.hh"
#include "policy/silcfm.hh"
#include "policy/static_policies.hh"

using namespace profess;
using namespace profess::policy;

namespace
{

/** Fresh meta + info pointing at slot 2 with incumbent slot 0. */
struct Harness
{
    hybrid::StcMeta meta{};
    AccessInfo info{};

    Harness()
    {
        std::memset(meta.ac, 0, sizeof(meta.ac));
        info.group = 5;
        info.slot = 2;
        info.m1Slot = 0;
        info.accessor = 0;
        info.m1Owner = 1;
        info.meta = &meta;
    }
};

/** SwapHost recording requests. */
struct RecordingHost : public SwapHost
{
    std::vector<std::pair<std::uint64_t, unsigned>> requests;
    bool accept = true;

    bool
    requestSwap(std::uint64_t group, unsigned slot) override
    {
        requests.emplace_back(group, slot);
        return accept;
    }

    Tick hostNow() const override { return 0; }
};

} // anonymous namespace

TEST(StaticPolicies, NeverAndAlways)
{
    Harness h;
    NeverPolicy never;
    AlwaysPolicy always;
    EXPECT_EQ(never.onM2Access(h.info), Decision::NoSwap);
    EXPECT_EQ(always.onM2Access(h.info), Decision::Swap);
}

TEST(Cameo, ThresholdOne)
{
    Harness h;
    CameoPolicy pol(1);
    h.meta.bump(h.info.slot, 1); // the controller bumps first
    EXPECT_EQ(pol.onM2Access(h.info), Decision::Swap);
}

TEST(Cameo, HigherThresholdWaits)
{
    Harness h;
    CameoPolicy pol(3);
    h.meta.bump(h.info.slot, 1);
    EXPECT_EQ(pol.onM2Access(h.info), Decision::NoSwap);
    h.meta.bump(h.info.slot, 1);
    EXPECT_EQ(pol.onM2Access(h.info), Decision::NoSwap);
    h.meta.bump(h.info.slot, 1);
    EXPECT_EQ(pol.onM2Access(h.info), Decision::Swap);
}

TEST(SilcFm, PromotesUnlessLocked)
{
    Harness h;
    SilcFmPolicy pol(100, 50, 1000);
    EXPECT_EQ(pol.onM2Access(h.info), Decision::Swap);
    // 60 M1 accesses lock the group's M1 block.
    for (int i = 0; i < 60; ++i)
        pol.onM1Access(h.info);
    EXPECT_EQ(pol.onM2Access(h.info), Decision::NoSwap);
}

TEST(SilcFm, AgingUnlocks)
{
    Harness h;
    SilcFmPolicy pol(100, 50, 1000);
    for (int i = 0; i < 80; ++i)
        pol.onM1Access(h.info);
    EXPECT_EQ(pol.onM2Access(h.info), Decision::NoSwap);
    pol.onPeriodic(); // halve: 40 <= 50
    EXPECT_EQ(pol.onM2Access(h.info), Decision::Swap);
}

TEST(SilcFm, SwapResetsLock)
{
    Harness h;
    SilcFmPolicy pol(100, 50, 1000);
    for (int i = 0; i < 80; ++i)
        pol.onM1Access(h.info);
    pol.onSwapComplete(h.info.group, 2, 0, 0, 1, false);
    EXPECT_EQ(pol.onM2Access(h.info), Decision::Swap);
}

TEST(Pom, ChallengerCrossesThreshold)
{
    Harness h;
    PomPolicy::Params pp;
    pp.initialThreshold = 6;
    PomPolicy pol(100, pp);
    // Five reads: counter 5 < 6.
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(pol.onM2Access(h.info), Decision::NoSwap);
    // Sixth crosses.
    EXPECT_EQ(pol.onM2Access(h.info), Decision::Swap);
}

TEST(Pom, WritesCountEight)
{
    Harness h;
    PomPolicy::Params pp;
    pp.initialThreshold = 6;
    PomPolicy pol(100, pp);
    h.info.isWrite = true;
    EXPECT_EQ(pol.onM2Access(h.info), Decision::Swap);
}

TEST(Pom, CompetingChallengerSwitch)
{
    Harness h;
    PomPolicy::Params pp;
    pp.initialThreshold = 6;
    PomPolicy pol(100, pp);
    // Slot 2 builds up 3.
    for (int i = 0; i < 3; ++i)
        pol.onM2Access(h.info);
    // Slot 4 challenges: decrements 3 -> 0, then takes over with
    // counter 1 on the fourth access.
    Harness h2;
    h2.info.slot = 4;
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(pol.onM2Access(h2.info), Decision::NoSwap);
    // Four more accesses bring the counter to 5; the next crosses 6.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(pol.onM2Access(h2.info), Decision::NoSwap);
    EXPECT_EQ(pol.onM2Access(h2.info), Decision::Swap);
}

TEST(Pom, M1AccessWeakensChallenger)
{
    Harness h;
    PomPolicy::Params pp;
    pp.initialThreshold = 6;
    PomPolicy pol(100, pp);
    for (int i = 0; i < 5; ++i)
        pol.onM2Access(h.info);
    // Incumbent activity decrements the counter.
    for (int i = 0; i < 3; ++i)
        pol.onM1Access(h.info);
    EXPECT_EQ(pol.onM2Access(h.info), Decision::NoSwap);
}

TEST(Pom, SwapResetsGroupState)
{
    Harness h;
    PomPolicy::Params pp;
    pp.initialThreshold = 1;
    PomPolicy pol(100, pp);
    EXPECT_EQ(pol.onM2Access(h.info), Decision::Swap);
    pol.onSwapComplete(h.info.group, 2, 0, 0, 1, false);
    // Counter cleared: next access does not immediately cross 1...
    // it does (threshold 1, fresh challenger gets 1). Use 6.
    PomPolicy::Params pp6;
    pp6.initialThreshold = 6;
    PomPolicy pol6(100, pp6);
    for (int i = 0; i < 6; ++i)
        pol6.onM2Access(h.info);
    pol6.onSwapComplete(h.info.group, 2, 0, 0, 1, false);
    EXPECT_EQ(pol6.onM2Access(h.info), Decision::NoSwap);
}

TEST(Pom, AdaptationPicksProfitableThreshold)
{
    PomPolicy::Params pp;
    pp.adaptEvictions = 4;
    pp.k = 8;
    PomPolicy pol(100, pp);
    // Evictions where M2-resident blocks saw 60 accesses: benefit
    // is maximal for t = 1.
    hybrid::StcMeta meta{};
    std::memset(meta.ac, 0, sizeof(meta.ac));
    meta.ac[3] = 60;
    hybrid::StEntry entry;
    for (unsigned s = 0; s < hybrid::maxSlots; ++s) {
        entry.atb[s] = static_cast<std::uint8_t>(s);
        entry.qac[s] = 0;
    }
    for (int i = 0; i < 4; ++i)
        pol.onStcEvict(0, meta, entry);
    EXPECT_EQ(pol.adaptations(), 1u);
    EXPECT_EQ(pol.activeThreshold(), 1u);
}

TEST(Pom, AdaptationProhibitsWhenUnprofitable)
{
    PomPolicy::Params pp;
    pp.adaptEvictions = 4;
    pp.k = 8;
    PomPolicy pol(100, pp);
    // Blocks with only 2 accesses: every threshold loses
    // (2 - t < k).
    hybrid::StcMeta meta{};
    std::memset(meta.ac, 0, sizeof(meta.ac));
    meta.ac[3] = 2;
    hybrid::StEntry entry;
    for (unsigned s = 0; s < hybrid::maxSlots; ++s) {
        entry.atb[s] = static_cast<std::uint8_t>(s);
        entry.qac[s] = 0;
    }
    for (int i = 0; i < 4; ++i)
        pol.onStcEvict(0, meta, entry);
    EXPECT_EQ(pol.activeThreshold(), PomPolicy::prohibited);
    // Prohibited: even a hot challenger is not promoted.
    Harness h;
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(pol.onM2Access(h.info), Decision::NoSwap);
}

TEST(Pom, M1ResidentBlocksNotCountedAsCandidates)
{
    PomPolicy::Params pp;
    pp.adaptEvictions = 1;
    pp.k = 8;
    PomPolicy pol(100, pp);
    hybrid::StcMeta meta{};
    std::memset(meta.ac, 0, sizeof(meta.ac));
    meta.ac[0] = 60; // slot 0 is IN M1 (atb identity)
    hybrid::StEntry entry;
    for (unsigned s = 0; s < hybrid::maxSlots; ++s) {
        entry.atb[s] = static_cast<std::uint8_t>(s);
        entry.qac[s] = 0;
    }
    pol.onStcEvict(0, meta, entry);
    // Only an M1-resident block was hot: nothing to promote.
    EXPECT_EQ(pol.activeThreshold(), PomPolicy::prohibited);
}

TEST(MemPod, TracksAndMigratesHotBlocks)
{
    MemPodPolicy::Params mp;
    mp.countersPerPod = 4;
    mp.maxMigrationsPerInterval = 2;
    MemPodPolicy pol(1, 1, mp);
    RecordingHost host;
    pol.setHost(&host);

    Harness h;
    // Access (5,2) five times, (7,3) twice.
    for (int i = 0; i < 5; ++i) {
        h.info.group = 5;
        h.info.slot = 2;
        EXPECT_EQ(pol.onM2Access(h.info), Decision::NoSwap);
    }
    h.info.group = 7;
    h.info.slot = 3;
    pol.onM2Access(h.info);
    pol.onM2Access(h.info);

    pol.onPeriodic();
    ASSERT_EQ(host.requests.size(), 2u);
    // Hottest first.
    EXPECT_EQ(host.requests[0].first, 5u);
    EXPECT_EQ(host.requests[0].second, 2u);
    EXPECT_EQ(host.requests[1].first, 7u);
    EXPECT_EQ(pol.migrationsRequested(), 2u);
}

TEST(MemPod, MeaDecrementsWhenFull)
{
    MemPodPolicy::Params mp;
    mp.countersPerPod = 2;
    mp.maxMigrationsPerInterval = 64;
    MemPodPolicy pol(1, 1, mp);
    RecordingHost host;
    pol.setHost(&host);

    Harness h;
    // Fill the two counters.
    h.info.group = 1;
    pol.onM2Access(h.info);
    h.info.group = 2;
    pol.onM2Access(h.info);
    // Third block: MEA decrements both to zero (and drops them).
    h.info.group = 3;
    pol.onM2Access(h.info);
    // Now 3 can claim a counter.
    pol.onM2Access(h.info);
    pol.onPeriodic();
    ASSERT_EQ(host.requests.size(), 1u);
    EXPECT_EQ(host.requests[0].first, 3u);
}

TEST(MemPod, IntervalClearsCounters)
{
    MemPodPolicy::Params mp;
    mp.countersPerPod = 8;
    MemPodPolicy pol(1, 1, mp);
    RecordingHost host;
    pol.setHost(&host);
    Harness h;
    pol.onM2Access(h.info);
    pol.onPeriodic();
    std::size_t first = host.requests.size();
    pol.onPeriodic(); // nothing tracked anymore
    EXPECT_EQ(host.requests.size(), first);
}

TEST(MemPod, MigrationCapRespected)
{
    MemPodPolicy::Params mp;
    mp.countersPerPod = 16;
    mp.maxMigrationsPerInterval = 3;
    MemPodPolicy pol(1, 1, mp);
    RecordingHost host;
    pol.setHost(&host);
    Harness h;
    for (std::uint64_t g = 0; g < 10; ++g) {
        h.info.group = g;
        pol.onM2Access(h.info);
    }
    pol.onPeriodic();
    EXPECT_EQ(host.requests.size(), 3u);
}

TEST(MemPod, WriteWeightIsOne)
{
    MemPodPolicy pol(1, 1);
    EXPECT_EQ(pol.writeWeight(), 1u);
    PomPolicy pom(10);
    EXPECT_EQ(pom.writeWeight(), 8u);
}

TEST(SwapTypes, MatchTable1)
{
    // Table 1: SILC-FM uses slow swaps; the others are fast.
    SilcFmPolicy silc(10);
    EXPECT_TRUE(silc.slowSwap());
    PomPolicy pom(10);
    EXPECT_FALSE(pom.slowSwap());
    MemPodPolicy mp(1, 1);
    EXPECT_FALSE(mp.slowSwap());
    CameoPolicy cam(1);
    EXPECT_FALSE(cam.slowSwap());
}
