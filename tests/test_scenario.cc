/**
 * @file
 * Tests for the deterministic fault-injection / scenario subsystem
 * (src/sim/scenario.hh) and the audits it unblocks:
 *
 *  - schedule building, file parsing and fingerprinting;
 *  - off-mode differential: a run with no scenario attached is
 *    bit-identical to one with an empty schedule attached;
 *  - injected-fault determinism: a fault schedule produces
 *    bit-identical results at --jobs 1 and --jobs 8;
 *  - swap-abort storms: every abort rolls back and either retries
 *    or degrades (exact accounting), no swap group ever wedges;
 *  - stat/trace reconciliation: scenario counters equal the
 *    decision sink's ScenarioEvent total exactly;
 *  - Table 7 "as if vacant" forced via the RSM factor-pinning hook
 *    through the full controller path;
 *  - cross-component q_I coherence audits at quiesce points.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/invariant.hh"
#include "common/trace_sink.hh"
#include "core/profess.hh"
#include "sim/experiment.hh"
#include "sim/parallel_runner.hh"
#include "sim/scenario.hh"
#include "sim/system.hh"
#include "trace/spec_profiles.hh"

using namespace profess;
using namespace profess::sim;

namespace
{

SystemConfig
tinyConfig()
{
    SystemConfig c = SystemConfig::quadCore();
    c.core.instrQuota = 60000;
    c.core.warmupInstr = 20000;
    return c;
}

std::vector<std::unique_ptr<trace::TraceSource>>
fourSources(std::uint64_t seed)
{
    std::vector<std::unique_ptr<trace::TraceSource>> v;
    const char *names[] = {"mcf", "lbm", "omnetpp", "zeusmp"};
    for (unsigned i = 0; i < 4; ++i) {
        v.push_back(trace::makeSpecSource(
            names[i], trace::defaultScale, seed + i * 7));
    }
    return v;
}

/** Fingerprint of one run's externally visible outcome. */
struct RunDigest
{
    std::vector<double> ipc;
    std::uint64_t servedTotal = 0;
    std::uint64_t swaps = 0;
    Tick finalTick = 0;
    double seconds = 0.0;
};

RunDigest
digest(System &sys)
{
    RunDigest d;
    for (unsigned i = 0; i < sys.numCores(); ++i)
        d.ipc.push_back(sys.core(i).ipcAtQuota());
    d.servedTotal = sys.controller().servedTotal();
    d.swaps = sys.controller().swapCount();
    d.finalTick = sys.now();
    d.seconds = sys.measuredSeconds();
    return d;
}

void
expectIdentical(const RunDigest &a, const RunDigest &b)
{
    ASSERT_EQ(a.ipc.size(), b.ipc.size());
    for (std::size_t i = 0; i < a.ipc.size(); ++i)
        EXPECT_EQ(a.ipc[i], b.ipc[i]) << "ipc[" << i << "]";
    EXPECT_EQ(a.servedTotal, b.servedTotal);
    EXPECT_EQ(a.swaps, b.swaps);
    EXPECT_EQ(a.finalTick, b.finalTick);
    EXPECT_EQ(a.seconds, b.seconds);
}

/** Every field of a RunResult must match bit-for-bit. */
void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.programs, b.programs);
    ASSERT_EQ(a.ipc.size(), b.ipc.size());
    for (std::size_t i = 0; i < a.ipc.size(); ++i)
        EXPECT_EQ(a.ipc[i], b.ipc[i]) << "ipc[" << i << "]";
    EXPECT_EQ(a.served, b.served);
    EXPECT_EQ(a.servedM1, b.servedM1);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.joules, b.joules);
    EXPECT_EQ(a.servedTotal, b.servedTotal);
    EXPECT_EQ(a.swaps, b.swaps);
    EXPECT_EQ(a.stcHitRate, b.stcHitRate);
    EXPECT_EQ(a.meanReadLatencyNs, b.meanReadLatencyNs);
    EXPECT_EQ(a.completed, b.completed);
}

/** Restores the process-wide ScenarioConfig even when a test
 *  fails mid-way (EXPECT failures fall through; this guards the
 *  global against leaking into later suites). */
class GlobalScenarioGuard
{
  public:
    ~GlobalScenarioGuard() { ScenarioConfig::global().clear(); }
};

} // anonymous namespace

// ---------------------------------------------------------------
// Schedule construction, parsing and fingerprinting.
// ---------------------------------------------------------------

TEST(ScenarioSchedule, BuilderAndFingerprint)
{
    ScenarioSchedule empty;
    EXPECT_TRUE(empty.empty());
    EXPECT_EQ(empty.fingerprint(), 0u);

    ScenarioSchedule a;
    a.writeSpike(1000, 5000, 4.0).swapAbortWindow(2000, 8000, 0.25);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a.interventions().size(), 2u);
    EXPECT_NE(a.fingerprint(), 0u);

    // Same schedule built again: same fingerprint.
    ScenarioSchedule b;
    b.writeSpike(1000, 5000, 4.0).swapAbortWindow(2000, 8000, 0.25);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());

    // Any field change must move the fingerprint.
    ScenarioSchedule c;
    c.writeSpike(1000, 5000, 4.5).swapAbortWindow(2000, 8000, 0.25);
    EXPECT_NE(a.fingerprint(), c.fingerprint());

    // Order matters (interventions can overlap/override).
    ScenarioSchedule d;
    d.swapAbortWindow(2000, 8000, 0.25).writeSpike(1000, 5000, 4.0);
    EXPECT_NE(a.fingerprint(), d.fingerprint());
}

TEST(ScenarioSchedule, FileParseMatchesBuilder)
{
    std::string path =
        ::testing::TempDir() + "/profess_scenario_test.txt";
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("# fault sweep fixture\n"
               "at=1000 kind=write_spike duration=5000 scale=4.0\n"
               "\n"
               "at=2000 kind=swap_abort duration=8000 "
               "probability=0.25 max_retries=3 backoff=256\n"
               "at=9000 kind=pin_rsm program=0 sf_a=4.0 sf_b=4.0\n"
               "at=9500 kind=quiesce_audit\n",
               f);
    std::fclose(f);

    ScenarioSchedule parsed = ScenarioSchedule::fromFile(path);
    ASSERT_EQ(parsed.interventions().size(), 4u);

    ScenarioSchedule built;
    built.writeSpike(1000, 5000, 4.0)
        .swapAbortWindow(2000, 8000, 0.25, 3, 256)
        .pinRsmFactors(9000, 0, 4.0, 4.0)
        .quiesceAudit(9500);
    EXPECT_EQ(parsed.fingerprint(), built.fingerprint());
    std::remove(path.c_str());
}

// ---------------------------------------------------------------
// Off-mode differential: attaching a controller with an EMPTY
// schedule must be bit-identical to not attaching one at all.  The
// only residue is the predicted-not-taken fault hook at swap
// completion, which must never fire.
// ---------------------------------------------------------------

TEST(ScenarioOffMode, EmptyScheduleBitIdentical)
{
    System bare(tinyConfig(), "profess", fourSources(3));
    ASSERT_TRUE(bare.run());
    RunDigest base = digest(bare);

    System sys(tinyConfig(), "profess", fourSources(3));
    ScenarioSchedule empty;
    ScenarioController ctrl(empty, deriveSeed(42, "profess", "mix"));
    ctrl.attach(sys);
    ASSERT_TRUE(sys.run());

    expectIdentical(base, digest(sys));
    EXPECT_EQ(ctrl.eventTotal(), 0u);
}

// ---------------------------------------------------------------
// Injected-fault determinism: with a loaded schedule the results
// must be bit-identical at --jobs 1 and --jobs 8 (the scenario seed
// derives from the job identity, never the worker), and must
// differ from a clean run (the faults really happened).
// ---------------------------------------------------------------

TEST(ScenarioDeterminism, FaultScheduleIdenticalAcrossJobs)
{
    GlobalScenarioGuard guard;

    SystemConfig cfg = tinyConfig();
    std::vector<RunJob> batch;
    for (const char *policy : {"profess", "pom", "mempod"}) {
        RunJob j;
        j.cfg = cfg;
        j.policy = policy;
        j.programs = {"mcf", "lbm", "omnetpp", "zeusmp"};
        j.baseSeed = 3;
        batch.push_back(j);
    }

    // Clean baseline first, then the same batch under faults.
    std::vector<MultiMetrics> clean;
    {
        AloneIpcCache cache;
        ParallelRunner runner(1, &cache);
        runner.setProgress(false);
        clean = runner.run(batch);
    }

    ScenarioSchedule s;
    s.writeSpike(5000, 40000, 6.0)
        .bankBusy(20000, 4000)
        .swapAbortWindow(0, 0, 0.3, 3, 128);
    ScenarioConfig::global().setSchedule(s);

    std::vector<MultiMetrics> serial;
    {
        AloneIpcCache cache;
        ParallelRunner runner(1, &cache);
        runner.setProgress(false);
        serial = runner.run(batch);
    }
    std::vector<MultiMetrics> parallel;
    {
        AloneIpcCache cache;
        ParallelRunner runner(8, &cache);
        runner.setProgress(false);
        parallel = runner.run(batch);
    }

    ASSERT_EQ(serial.size(), batch.size());
    ASSERT_EQ(parallel.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i)
        expectIdentical(serial[i].run, parallel[i].run);

    // The faults must actually have perturbed the simulation.
    bool any_diff = false;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        for (std::size_t c = 0; c < clean[i].run.ipc.size(); ++c)
            any_diff |= clean[i].run.ipc[c] != serial[i].run.ipc[c];
    }
    EXPECT_TRUE(any_diff)
        << "fault schedule had no observable effect";
}

// ---------------------------------------------------------------
// Swap-abort storm: at probability 0.5 every completing swap has a
// coin-flip abort.  The run must still complete (no wedged swap
// groups), every abort must be followed by exactly one retry or
// one degradation, and every invariant audit must stay green.
// ---------------------------------------------------------------

TEST(ScenarioSwapAbort, StormRetriesRollsBackAndCompletes)
{
    std::uint64_t audits_before = audit::checksRun();

    System sys(tinyConfig(), "profess", fourSources(3));
    ScenarioSchedule s;
    s.swapAbortWindow(/*at=*/0, /*duration=*/0, /*probability=*/0.5,
                      /*max_retries=*/3, /*backoff=*/64);
    ScenarioController ctrl(s, deriveSeed(7, "profess", "storm"));
    ctrl.attach(sys);

    // Completion under a 50% abort storm is the wedge-freedom
    // proof: a wedged group would stall its cores forever.
    ASSERT_TRUE(sys.run());

    std::uint64_t injected = ctrl.counter("swap_abort_injected");
    std::uint64_t retries = ctrl.counter("swap_retry");
    std::uint64_t degraded = ctrl.counter("swap_degraded");
    EXPECT_GT(injected, 0u);
    EXPECT_GT(retries, 0u);

    // Exact accounting: every abort is immediately either retried
    // or degraded, nothing is double-counted or lost.
    EXPECT_EQ(injected, retries + degraded);

    // The controller's own counters mirror the scenario's (modulo
    // the warm-up reset: the controller counts only post-reset
    // events, so it can never exceed the scenario's totals).
    const StatSet &cs = sys.controller().stats();
    EXPECT_LE(cs.counter("swap_aborts"), injected);
    EXPECT_EQ(cs.counter("swap_aborts"),
              cs.counter("swap_retries") +
                  cs.counter("swap_degraded"));

    // Abort rate over completion attempts must clear the >=10%
    // storm bar from the acceptance criteria (p=0.5 gives ~50%).
    std::uint64_t attempts = injected + sys.controller().swapCount();
    ASSERT_GT(attempts, 0u);
    EXPECT_GE(injected * 10, attempts);

    // The retry-latency histogram surfaces through the registry
    // (ROADMAP follow-up): each swap that suffered >= 1 abort
    // closes its first-abort -> resolution window exactly once, so
    // the count is positive, bounded by the abort total, and the
    // accumulated wait is positive (every window spans >= one
    // backoff).
    telemetry::StatRegistry reg;
    sys.controller().registerTelemetry(reg, "hybrid");
    double retry_lat_count =
        reg.value("hybrid.swap_retry_latency.count");
    EXPECT_GT(retry_lat_count, 0.0);
    EXPECT_LE(retry_lat_count, static_cast<double>(injected));
    EXPECT_GT(reg.value("hybrid.swap_retry_latency.sum"), 0.0);

    // Post-run structural audits: ST permutations, STC residency,
    // queue ordering — all must have survived the storm.
    sys.auditInvariants();
    EXPECT_GT(audit::checksRun(), audits_before);
}

// ---------------------------------------------------------------
// Stat/trace reconciliation: every scenario event is mirrored 1:1
// into the decision trace, so the StatSet total and the sink's
// ScenarioEvent kind-total must match exactly.
// ---------------------------------------------------------------

TEST(ScenarioTrace, StatAndTraceTotalsReconcile)
{
    telemetry::DecisionTraceSink sink;

    System sys(tinyConfig(), "profess", fourSources(3));
    ScenarioSchedule s;
    s.writeSpike(2000, 10000, 4.0)
        .bankBusy(15000, 2000)
        .swapAbortWindow(0, 0, 0.4, 2, 64)
        .pinRsmFactors(30000, 0, 2.0, 2.0)
        .unpinRsmFactors(45000, 0)
        .quiesceAudit(25000)
        .quiesceAudit(50000);
    ScenarioController ctrl(s, deriveSeed(11, "profess", "trace"));
    ctrl.setTraceSink(&sink);
    ctrl.attach(sys);
    ASSERT_TRUE(sys.run());

    EXPECT_GT(ctrl.eventTotal(), 0u);
    EXPECT_EQ(ctrl.eventTotal(),
              sink.kindTotal(telemetry::TraceKind::ScenarioEvent));

    // Per-detail mirroring of the swap retry/degrade path: with an
    // unwrapped ring every abort, retry and degradation appears in
    // the trace exactly as often as in the counters, and the abort
    // accounting closes record-by-record.
    ASSERT_EQ(sink.total(), sink.retainedCount())
        << "ring wrapped; grow the sink for exact mirroring";
    std::uint64_t aborts = 0, retries = 0, degrades = 0;
    for (const telemetry::TraceRecord &r : sink.retained()) {
        if (r.kind !=
            static_cast<std::uint8_t>(
                telemetry::TraceKind::ScenarioEvent))
            continue;
        switch (static_cast<ScenarioController::EventCode>(
            r.detail)) {
          case ScenarioController::EventCode::SwapAbortInjected:
            ++aborts;
            break;
          case ScenarioController::EventCode::SwapRetry:
            ++retries;
            break;
          case ScenarioController::EventCode::SwapDegraded:
            ++degrades;
            break;
          default:
            break;
        }
    }
    EXPECT_EQ(aborts, ctrl.counter("swap_abort_injected"));
    EXPECT_EQ(retries, ctrl.counter("swap_retry"));
    EXPECT_EQ(degrades, ctrl.counter("swap_degraded"));
    EXPECT_GT(aborts, 0u);
    EXPECT_EQ(aborts, retries + degrades);
}

// ---------------------------------------------------------------
// Satellite: bank_busy windows re-arm.  Swaps overwrite the bumped
// bank ready times, so a single bump under-models a sustained
// window; the controller re-bumps every few hundred ticks until the
// window closes.  The re-arm is event-queue local (no RNG, no wall
// clock): repeated runs are bit-identical, and the window measurably
// perturbs the run.
// ---------------------------------------------------------------

TEST(ScenarioBankBusy, WindowRearmsSustainsAndStaysDeterministic)
{
    System bare(tinyConfig(), "profess", fourSources(3));
    ASSERT_TRUE(bare.run());
    RunDigest base = digest(bare);

    ScenarioSchedule s;
    const Tick window = 40000;
    s.bankBusy(/*at=*/10000, /*duration=*/window);

    struct Outcome
    {
        RunDigest d;
        std::uint64_t rearms;
    };
    auto runOnce = [&s]() {
        System sys(tinyConfig(), "profess", fourSources(3));
        ScenarioController ctrl(s,
                                deriveSeed(19, "profess", "busy"));
        ctrl.attach(sys);
        EXPECT_TRUE(sys.run());
        return Outcome{digest(sys), ctrl.counter("bank_busy_rearm")};
    };
    Outcome first = runOnce();
    Outcome second = runOnce();

    // The window was re-bumped throughout its duration (roughly
    // every 256 ticks; half that rate is the generous floor).
    EXPECT_GT(first.rearms, window / 256 / 2);

    // Determinism: same schedule, same seed -> same everything.
    expectIdentical(first.d, second.d);
    EXPECT_EQ(first.rearms, second.rearms);

    // Effectiveness: a sustained 40k-tick M2 stall must leave a
    // visible mark on the run relative to the clean baseline.
    bool any_diff = first.d.finalTick != base.finalTick ||
                    first.d.servedTotal != base.servedTotal;
    for (std::size_t i = 0; i < base.ipc.size(); ++i)
        any_diff |= base.ipc[i] != first.d.ipc[i];
    EXPECT_TRUE(any_diff)
        << "sustained bank-busy window had no observable effect";
}

// ---------------------------------------------------------------
// Satellite: Table 7 "as if vacant" (Case 1) exercised through the
// full controller access path.  Pinning program 0 to SF 4.0 while
// the others sit at 1.0 makes its cross-program accesses classify
// as Case 1 (a 4x-slowed program may treat occupied M1 slots of
// unslowed owners as if vacant) without hand-crafting RSM history.
// ---------------------------------------------------------------

TEST(ScenarioRsmPin, Table7AsIfVacantFullController)
{
    System sys(tinyConfig(), "profess", fourSources(3));
    ScenarioSchedule s;
    s.pinRsmFactors(0, 0, 4.0, 4.0);
    for (int p = 1; p < 4; ++p)
        s.pinRsmFactors(0, p, 1.0, 1.0);
    ScenarioController ctrl(s, deriveSeed(5, "profess", "table7"));
    ctrl.attach(sys);
    ASSERT_TRUE(sys.run());

    core::ProfessPolicy *pol = sys.professPolicy();
    ASSERT_NE(pol, nullptr);

    // The pins were applied and held for the whole run.
    EXPECT_EQ(ctrl.counter("rsm_pin"), 4u);
    EXPECT_TRUE(pol->rsm().factorsPinned(0));
    EXPECT_EQ(pol->rsm().sfA(0), 4.0);
    EXPECT_EQ(pol->rsm().sfB(0), 4.0);
    EXPECT_EQ(pol->rsm().sfA(1), 1.0);

    // The guidance distribution shows Case 1 decisions flowing
    // through HybridController::access -> policy -> MDM.
    using GC = core::ProfessPolicy::GuidanceCase;
    EXPECT_GT(pol->caseCount(GC::Case1), 0u);
    EXPECT_GT(sys.controller().swapCount(), 0u);
    sys.auditInvariants();
}

// ---------------------------------------------------------------
// Satellite: cross-component coherence at quiesce points.  At each
// granted quiesce audit the STC's cached q_I snapshots are checked
// against the owning ST entries' live QACs; deferral accounting
// must close (every request either ran or gave up).
// ---------------------------------------------------------------

TEST(ScenarioQuiesce, QacCoherenceAuditsRun)
{
    std::uint64_t audits_before = audit::checksRun();

    System sys(tinyConfig(), "profess", fourSources(3));
    ScenarioSchedule s;
    const unsigned requests = 6;
    for (unsigned i = 0; i < requests; ++i)
        s.quiesceAudit(5000 + i * 7000);
    ScenarioController ctrl(s, deriveSeed(13, "profess", "quiesce"));
    ctrl.attach(sys);
    ASSERT_TRUE(sys.run());

    std::uint64_t ran = ctrl.counter("quiesce_audit");
    std::uint64_t gaveup = ctrl.counter("quiesce_giveup");
    EXPECT_EQ(ran + gaveup, requests);
    EXPECT_GT(ran, 0u) << "no quiesce point was ever reached";

    // The audits really executed checks (q_I coherence + system
    // structural audits at each quiesce point).
    EXPECT_GT(audit::checksRun(), audits_before);
}

// ---------------------------------------------------------------
// MDM decision pin: forcing NoSwap must suppress all swaps from
// the pin tick on; forcing from tick 0 yields a swap-free run.
// ---------------------------------------------------------------

TEST(ScenarioMdmPin, ForcedNoSwapSuppressesSwaps)
{
    System sys(tinyConfig(), "mdm", fourSources(3));
    ScenarioSchedule s;
    s.pinMdmDecision(0, /*swap=*/false);
    ScenarioController ctrl(s, deriveSeed(17, "mdm", "pin"));
    ctrl.attach(sys);
    ASSERT_TRUE(sys.run());

    EXPECT_EQ(ctrl.counter("mdm_pin"), 1u);
    EXPECT_EQ(sys.controller().swapCount(), 0u);
}
