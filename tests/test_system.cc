/**
 * @file
 * End-to-end system tests: every policy runs a small workload to
 * completion, results are deterministic, fitting footprints migrate
 * into M1, and the experiment harness computes the Sec. 4.3 metrics
 * correctly.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/metrics.hh"
#include "sim/system.hh"
#include "sim/workloads.hh"

using namespace profess;
using namespace profess::sim;

namespace
{

SystemConfig
quickSingle(std::uint64_t quota = 150000)
{
    SystemConfig c = SystemConfig::singleCore();
    c.core.instrQuota = quota;
    c.core.warmupInstr = 50000;
    return c;
}

} // anonymous namespace

class PolicySweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(PolicySweep, RunsToCompletion)
{
    ExperimentRunner runner(quickSingle());
    RunResult r = runner.run(GetParam(), {"soplex"});
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.ipc[0], 0.0);
    EXPECT_LT(r.ipc[0], 4.0);
    EXPECT_GT(r.servedTotal, 0u);
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_GT(r.watts, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicySweep,
                         ::testing::Values("never", "always",
                                           "cameo", "silcfm", "pom",
                                           "mempod", "mdm",
                                           "profess", "rsm-pom"));

TEST(System, Deterministic)
{
    auto once = []() {
        ExperimentRunner runner(quickSingle());
        return runner.run("profess", {"soplex"}, 17).ipc[0];
    };
    EXPECT_DOUBLE_EQ(once(), once());
}

TEST(System, SeedChangesResultSlightly)
{
    ExperimentRunner runner(quickSingle());
    double a = runner.run("pom", {"soplex"}, 1).ipc[0];
    double b = runner.run("pom", {"soplex"}, 2).ipc[0];
    EXPECT_NE(a, b);
    EXPECT_NEAR(a, b, 0.3 * a);
}

TEST(System, FittingFootprintMigratesIntoM1)
{
    // libquantum (scaled 0.32 MB) fits in M1 entirely: under an
    // aggressive policy nearly all post-warm-up traffic must be
    // served from M1; without migration only ~1/9 can be.
    SystemConfig c = quickSingle(400000);
    ExperimentRunner runner(c);
    RunResult moving = runner.run("cameo", {"libquantum"});
    RunResult fixed = runner.run("never", {"libquantum"});
    EXPECT_GT(moving.m1Fraction, 0.9);
    EXPECT_LT(fixed.m1Fraction, 0.3);
    EXPECT_GT(moving.ipc[0], fixed.ipc[0]);
}

TEST(System, NeverPolicyNeverSwaps)
{
    ExperimentRunner runner(quickSingle());
    RunResult r = runner.run("never", {"mcf"});
    EXPECT_EQ(r.swaps, 0u);
    EXPECT_EQ(r.swapFraction, 0.0);
}

TEST(System, AlwaysSwapsMoreThanPom)
{
    ExperimentRunner runner(quickSingle());
    RunResult always = runner.run("always", {"soplex"});
    RunResult pom = runner.run("pom", {"soplex"});
    EXPECT_GT(always.swaps, pom.swaps);
}

TEST(System, MultiProgramQuadRuns)
{
    SystemConfig c = SystemConfig::quadCore();
    c.core.instrQuota = 150000;
    c.core.warmupInstr = 50000;
    ExperimentRunner runner(c);
    const WorkloadSpec *w = findWorkload("w16");
    ASSERT_NE(w, nullptr);
    MultiMetrics m = runner.runMulti("profess", *w);
    EXPECT_TRUE(m.run.completed);
    ASSERT_EQ(m.slowdown.size(), 4u);
    for (double s : m.slowdown)
        EXPECT_GE(s, 0.8); // contention slows programs down
    EXPECT_GT(m.weightedSpeedup, 0.0);
    EXPECT_LE(m.weightedSpeedup, 4.0);
    EXPECT_GE(m.maxSlowdown, 1.0);
    EXPECT_GT(m.efficiency, 0.0);
}

TEST(System, CapacityRatioConfigurations)
{
    // 1:4 and 1:16 ratios build and run (Sec. 5.2 sensitivity).
    for (unsigned slots : {5u, 17u}) {
        SystemConfig c = quickSingle(80000);
        c.slotsPerGroup = slots;
        if (slots == 5)
            c.m1BytesPerChannel = 2 * MiB; // M1 doubles for 1:4
        ExperimentRunner runner(c);
        RunResult r = runner.run("mdm", {"omnetpp"});
        EXPECT_TRUE(r.completed) << slots;
    }
}

TEST(System, WriteLatencySensitivityChangesTiming)
{
    SystemConfig base = quickSingle(100000);
    SystemConfig slow = base;
    slow.m2WriteScale = 2.0;
    ExperimentRunner r1(base), r2(slow);
    double fast_ipc = r1.run("never", {"lbm"}).ipc[0];
    double slow_ipc = r2.run("never", {"lbm"}).ipc[0];
    EXPECT_LT(slow_ipc, fast_ipc);
}

TEST(System, AloneIpcCacheHits)
{
    ExperimentRunner runner(quickSingle());
    double a = runner.aloneIpc("pom", "zeusmp");
    double b = runner.aloneIpc("pom", "zeusmp");
    EXPECT_DOUBLE_EQ(a, b);
}

TEST(Metrics, SlowdownAndAggregates)
{
    std::vector<double> alone = {2.0, 1.0};
    std::vector<double> contended = {1.0, 0.5};
    std::vector<double> sdn = slowdowns(alone, contended);
    EXPECT_DOUBLE_EQ(sdn[0], 2.0);
    EXPECT_DOUBLE_EQ(sdn[1], 2.0);
    EXPECT_DOUBLE_EQ(weightedSpeedup(sdn), 1.0);
    EXPECT_DOUBLE_EQ(unfairness(sdn), 2.0);
    EXPECT_DOUBLE_EQ(energyEfficiency(100, 2.0), 50.0);
}

TEST(Workloads, Table10Complete)
{
    const auto &all = multiprogramWorkloads();
    ASSERT_EQ(all.size(), 19u);
    EXPECT_STREQ(all[0].name, "w01");
    EXPECT_STREQ(all[18].name, "w19");
    // Every program of every workload is a Table 9 profile.
    for (const auto &w : all) {
        for (const char *p : w.programs)
            EXPECT_NE(trace::findProfile(p), nullptr)
                << w.name << "/" << p;
    }
    EXPECT_NE(findWorkload("w09"), nullptr);
    EXPECT_EQ(findWorkload("w99"), nullptr);
}

TEST(Workloads, W09MatchesPaper)
{
    const WorkloadSpec *w = findWorkload("w09");
    ASSERT_NE(w, nullptr);
    EXPECT_STREQ(w->programs[0], "mcf");
    EXPECT_STREQ(w->programs[1], "soplex");
    EXPECT_STREQ(w->programs[2], "lbm");
    EXPECT_STREQ(w->programs[3], "GemsFDTD");
}

TEST(Experiment, PercentDelta)
{
    EXPECT_EQ(percentDelta(1.15), "+15.0%");
    EXPECT_EQ(percentDelta(0.9), "-10.0%");
}
