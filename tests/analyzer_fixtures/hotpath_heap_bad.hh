// fixture-path: src/common/pool.hh
#ifndef PROFESS_COMMON_POOL_HH
#define PROFESS_COMMON_POOL_HH

inline int *
grab()
{
    return new int; // BAD[hotpath-heap]
}

#endif // PROFESS_COMMON_POOL_HH
