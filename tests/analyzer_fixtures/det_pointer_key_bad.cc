// fixture-path: src/fix/ptrkey_fix.cc

class Region;

class OwnerIndex {
  public:
    void add(Region *r, int id) { owners_[r] = id; }

  private:
    std::map<Region *, int> owners_; // BAD[det-pointer-key]
};
