// fixture-path: src/fix/hygiene_fix.hh
// EXPECT[include-hygiene@6]  wrong guard name (want PROFESS_FIX_HYGIENE_FIX_HH)
// EXPECT[include-hygiene@9]  relative '../' include
// EXPECT[include-hygiene@11] <bits/stdc++.h>

#ifndef WRONG_GUARD_HH
#define WRONG_GUARD_HH

#include "../common/types.hh"

#include <bits/stdc++.h>

#endif // WRONG_GUARD_HH
