#!/usr/bin/env python3
"""Golden tests for scripts/profess_analyze.

Every fixture in this directory is analyzed as its own single-file
program under the path declared by its `// fixture-path:` header.
The findings must match the fixture's markers *exactly*:

  * each `// BAD[rule]` line and `// EXPECT[rule@N]` marker must be
    reported (100% caught);
  * nothing else may be reported (zero false positives -- the
    `*_clean.*` twins carry no markers and must stay silent).

The driver also asserts that the bad fixtures jointly cover every
finding kind the analyzer can emit, so a new rule cannot land
without a fixture.

Runs standalone (`python3 run_fixture_tests.py`) and as the ctest
`AnalyzerFixtures` entry.  Exit 0 on success, 1 on any mismatch.
"""

import os
import re
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
sys.path.insert(0, os.path.join(REPO, "scripts"))

from profess_analyze import engine  # noqa: E402
from profess_analyze.cppmodel import TU  # noqa: E402
from profess_analyze.rules_base import Context  # noqa: E402

#: Every finding kind the analyzer can emit.  (HotPathWalkRules is
#: one Rule object emitting three kinds, hence 15 kinds from 13
#: rules.)  Each must be hit by at least one bad fixture.
FINDING_KINDS = {
    "hotpath-heap", "rng", "stat-names", "include-hygiene",
    "include-order",
    "det-unordered-iter", "det-pointer-key", "det-wallclock",
    "det-mutable-static", "det-float-accum",
    "hot-heap-alloc", "hot-std-function", "hot-virtual-call",
    "hot-unlikely",
    "lock-order",
}

PATH_RE = re.compile(r"//\s*fixture-path:\s*(\S+)")
BAD_RE = re.compile(r"//\s*BAD\[([a-z-]+)\]")
EXPECT_RE = re.compile(r"//\s*EXPECT\[([a-z-]+)@(\d+)\]")


def parse_fixture(fname):
    """@return (declared_path, text, expected) where expected is a
    sorted list of (rule, line)."""
    with open(os.path.join(HERE, fname), encoding="utf-8") as f:
        text = f.read()
    m = PATH_RE.search(text.splitlines()[0])
    if m is None:
        raise SystemExit("%s: missing '// fixture-path:' header"
                         % fname)
    expected = []
    for lineno, line in enumerate(text.splitlines(), 1):
        for bm in BAD_RE.finditer(line):
            expected.append((bm.group(1), lineno))
        for em in EXPECT_RE.finditer(line):
            expected.append((em.group(1), int(em.group(2))))
    return m.group(1), text, sorted(expected)


def analyze_one(declared_path, text):
    """Run all rules over one fixture as an isolated program."""
    tu = TU(declared_path, text)
    ctx = Context(REPO, {declared_path: tu})
    return engine.run_rules(ctx)


def main():
    fixtures = sorted(f for f in os.listdir(HERE)
                      if f.endswith((".cc", ".hh")))
    if not fixtures:
        print("no fixtures found in %s" % HERE)
        return 1

    failures = 0
    covered = set()
    for fname in fixtures:
        declared_path, text, expected = parse_fixture(fname)
        is_bad = "_bad." in fname
        if is_bad and not expected:
            print("FAIL %s: bad fixture declares no expected "
                  "findings" % fname)
            failures += 1
            continue
        if not is_bad and expected:
            print("FAIL %s: clean fixture carries violation markers"
                  % fname)
            failures += 1
            continue

        findings = analyze_one(declared_path, text)
        actual = sorted((f.rule, f.line) for f in findings)
        covered.update(r for r, _line in actual if is_bad)
        if actual == expected:
            print("ok   %s (%d finding(s))" % (fname, len(actual)))
            continue
        failures += 1
        print("FAIL %s (as %s)" % (fname, declared_path))
        missed = [e for e in expected if e not in actual]
        extra = [a for a in actual if a not in expected]
        for rule, line in missed:
            print("  missed: expected [%s] at line %d" % (rule, line))
        for f in findings:
            if (f.rule, f.line) in extra:
                print("  false positive: %s" % f.render())

    missing_kinds = FINDING_KINDS - covered
    if missing_kinds:
        failures += 1
        print("FAIL coverage: no bad fixture triggers: %s"
              % ", ".join(sorted(missing_kinds)))

    # The default repo scan must never pick the fixtures up.
    leaked = [p for p in engine.source_files(REPO)
              if p.startswith("tests/analyzer_fixtures/")]
    if leaked:
        failures += 1
        print("FAIL exclusion: default scan picked up %s" % leaked)

    if failures:
        print("%d fixture failure(s)" % failures)
        return 1
    print("all %d fixtures pass; %d finding kinds covered"
          % (len(fixtures), len(FINDING_KINDS)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
