// fixture-path: src/fix/faccum_fix.cc

class SharedLatency {
  public:
    void add(std::uint64_t ticks)
    {
        std::lock_guard<std::mutex> hold(mu_);
        totalTicks_ += ticks; // integer ticks: order-independent
        ++count_;
    }

  private:
    std::mutex mu_;
    std::uint64_t totalTicks_ = 0;
    std::uint64_t count_ = 0;
};
