// fixture-path: src/fix/uiter_fix.cc

class StatDump {
  public:
    void dumpAll(std::FILE *f)
    {
        for (const auto &kv : counts_) {
            std::fprintf(f, "%llu\n", kv.second); // BAD[det-unordered-iter]
        }
    }

  private:
    std::unordered_map<std::uint64_t, std::uint64_t> counts_;
};
