// fixture-path: src/fix/hotunlikely_fix.cc

class Channel {
  public:
    void push(int row)
    {
        if (PROFESS_UNLIKELY(trace_ != nullptr)) {
            trace_->record(row);
        }
        if (trace_->enabled()) { // use, not presence test: no hint needed
            ++traced_;
        }
        ++rows_;
    }

  private:
    Trace *trace_ = nullptr;
    std::uint64_t traced_ = 0;
    std::uint64_t rows_ = 0;
};
