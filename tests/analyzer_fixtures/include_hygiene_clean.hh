// fixture-path: src/fix/hygiene_fix.hh

#ifndef PROFESS_FIX_HYGIENE_FIX_HH
#define PROFESS_FIX_HYGIENE_FIX_HH

#include "common/types.hh"

#include <cstdint>

#endif // PROFESS_FIX_HYGIENE_FIX_HH
