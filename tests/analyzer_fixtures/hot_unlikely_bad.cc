// fixture-path: src/fix/hotunlikely_fix.cc

class Channel {
  public:
    void push(int row)
    {
        if (trace_ != nullptr) { // BAD[hot-unlikely]
            trace_->record(row);
        }
        ++rows_;
    }

  private:
    Trace *trace_ = nullptr;
    std::uint64_t rows_ = 0;
};
