// fixture-path: src/fix/lockorder_fix.cc

class TwoLocks {
  public:
    void fromA()
    {
        std::lock_guard<std::mutex> hold(a_);
        stepB();
    }

    void fromB()
    {
        // Same a_ -> b_ order on every path: acyclic.
        std::lock_guard<std::mutex> hold(a_);
        stepB();
    }

  private:
    void stepB()
    {
        std::lock_guard<std::mutex> hold(b_);
    }
    std::mutex a_;
    std::mutex b_;
};
