// fixture-path: src/common/pool.hh
#ifndef PROFESS_COMMON_POOL_HH
#define PROFESS_COMMON_POOL_HH

inline int *
grab(void *slot)
{
    return ::new (slot) int(); // placement new is the blessed form
}

#endif // PROFESS_COMMON_POOL_HH
