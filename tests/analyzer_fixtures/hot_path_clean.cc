// fixture-path: src/fix/hot_fix.cc

class MigrationPolicy {
  public:
    virtual int onAccess(int row) = 0;
};

class Channel {
  public:
    void push(int row) { stage(row); }

  private:
    void stage(int row)
    {
        // The policy boundary is the documented virtual-dispatch
        // exemption; scratch comes from a fixed member buffer.
        scratch_[0] = policy_->onAccess(row);
        InlineCallback cb;
        (void)cb;
    }

    MigrationPolicy *policy_;
    int scratch_[4];
};
