// fixture-path: src/fix/stat_names_fix.cc

void
registerStats(Registry &reg, Counters &c)
{
    reg.addCounter("fix.reads", c.a);
    reg.addCounter("fix.writes", c.b);
    reg.addHistogram("fix.latency", c.h);
}
