// fixture-path: bench/wallclock_fix.cc
// Identical wall-clock reads, but bench/ is a measurement harness
// by definition (WALLCLOCK_WAIVED_PREFIXES): no findings.

long
stampSeconds()
{
    struct timespec ts;
    clock_gettime(0, &ts);
    long wall = time(nullptr);
    return ts.tv_sec + wall;
}
