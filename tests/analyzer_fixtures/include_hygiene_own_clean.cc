// fixture-path: src/sim/system.cc

#include "sim/system.hh"

#include <vector>
