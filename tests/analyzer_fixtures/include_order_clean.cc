// fixture-path: src/fix/order_fix.cc

#include <string>
#include <vector>

#include "common/types.hh"

#include <cstdio>
