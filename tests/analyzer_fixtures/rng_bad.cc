// fixture-path: src/core/rng_fix.cc

unsigned
roll()
{
    std::mt19937 gen(42); // BAD[rng]
    return static_cast<unsigned>(gen());
}
