// fixture-path: src/fix/uiter_fix.cc

class StatDump {
  public:
    void dumpAll(std::FILE *f)
    {
        std::vector<std::uint64_t> vals;
        for (const auto &kv : counts_)
            vals.push_back(kv.second);
        std::sort(vals.begin(), vals.end());
        for (std::uint64_t v : vals)
            std::fprintf(f, "%llu\n", v);
    }

  private:
    std::unordered_map<std::uint64_t, std::uint64_t> counts_;
};
