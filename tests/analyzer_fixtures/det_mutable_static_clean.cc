// fixture-path: src/fix/mstatic_fix.cc

namespace {
constexpr int kMaxTickets = 64; // constants are fine
} // namespace

Config &
config()
{
    // Meyers singleton: the documented process-global pattern.
    static Config instance;
    return instance;
}

int
maxTickets()
{
    return kMaxTickets;
}
