// fixture-path: src/fix/ptrkey_fix.cc

class OwnerIndex {
  public:
    void add(std::uint64_t block, int id) { owners_[block] = id; }

  private:
    std::map<std::uint64_t, int> owners_; // keyed by stable block id
};
