// fixture-path: src/fix/lockorder_fix.cc

class TwoLocks {
  public:
    void fromA()
    {
        std::lock_guard<std::mutex> hold(a_);
        stepB(); // BAD[lock-order]
    }

    void fromB()
    {
        std::lock_guard<std::mutex> hold(b_);
        stepA();
    }

  private:
    void stepB()
    {
        std::lock_guard<std::mutex> hold(b_);
    }
    void stepA()
    {
        std::lock_guard<std::mutex> hold(a_);
    }
    std::mutex a_;
    std::mutex b_;
};
