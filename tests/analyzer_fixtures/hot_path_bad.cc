// fixture-path: src/fix/hot_fix.cc

class Policy {
  public:
    virtual int onAccess(int row) = 0;
};

class Channel {
  public:
    void push(int row) { stage(row); }

  private:
    void stage(int row)
    {
        int *scratch = new int[4]; // BAD[hot-heap-alloc]
        std::function<void(int)> cb; // BAD[hot-std-function]
        scratch[0] = policy_->onAccess(row); // BAD[hot-virtual-call]
        delete[] scratch;
        (void)cb;
    }

    Policy *policy_;
};
