// fixture-path: src/core/rng_fix.cc

unsigned
roll(unsigned state)
{
    // Deterministic mixing only; seeded PRNGs live in common/rng.hh.
    state ^= state << 13;
    state ^= state >> 17;
    state ^= state << 5;
    return state;
}
