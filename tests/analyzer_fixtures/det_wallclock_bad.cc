// fixture-path: src/fix/wallclock_fix.cc

long
stampSeconds()
{
    struct timespec ts;
    clock_gettime(0, &ts); // BAD[det-wallclock]
    long wall = time(nullptr); // BAD[det-wallclock]
    return ts.tv_sec + wall;
}
