// fixture-path: src/fix/faccum_fix.cc

class SharedLatency {
  public:
    void add(double sample)
    {
        std::lock_guard<std::mutex> hold(mu_);
        total_ += sample; // BAD[det-float-accum]
        ++count_;
    }

  private:
    std::mutex mu_;
    double total_ = 0.0;
    std::uint64_t count_ = 0;
};
