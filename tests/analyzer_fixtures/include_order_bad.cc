// fixture-path: src/fix/order_fix.cc
// EXPECT[include-order@6]  <string> sorts before <vector>
// EXPECT[include-order@8]  block mixes <angle> and "quote" styles

#include <vector>
#include <string>

#include "common/types.hh"
#include <cstdio>
