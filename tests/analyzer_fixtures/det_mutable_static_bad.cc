// fixture-path: src/fix/mstatic_fix.cc

namespace {
int callCount = 0; // BAD[det-mutable-static]
} // namespace

int
nextTicket()
{
    static int next = 0; // BAD[det-mutable-static]
    ++callCount;
    return ++next;
}
