// fixture-path: src/sim/system.cc
// EXPECT[include-hygiene@4]  own header "sim/system.hh" must come first

#include <vector>

#include "sim/system.hh"
