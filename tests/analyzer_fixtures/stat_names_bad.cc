// fixture-path: src/fix/stat_names_fix.cc

void
registerStats(Registry &reg, Counters &c)
{
    reg.addCounter("BadName", c.a); // BAD[stat-names]
    reg.addCounter("dup.leaf", c.b);
    reg.addCounter("dup.leaf", c.c); // BAD[stat-names]
}
