/**
 * @file
 * Determinism-sanitizer tests: the FNV digest, the process-global
 * journal's store/cross-check/mismatch behavior, and — in
 * -DPROFESS_DETSAN=ON builds — the EventQueue extraction digest
 * and EpochSampler epoch-state digest instrumentation.
 */

#include <gtest/gtest.h>

#include "common/detsan.hh"
#include "common/event.hh"
#include "common/telemetry.hh"

using namespace profess;

TEST(DetsanDigest, StartsAtFnvOffsetBasis)
{
    detsan::Digest d;
    EXPECT_EQ(d.value(), 0xcbf29ce484222325ull);
}

TEST(DetsanDigest, MixChangesValueAndIsOrderSensitive)
{
    detsan::Digest a, b, c;
    a.mix(1);
    a.mix(2);
    b.mix(2);
    b.mix(1);
    c.mix(1);
    c.mix(2);
    EXPECT_NE(a.value(), detsan::Digest{}.value());
    EXPECT_NE(a.value(), b.value()) << "mix order must matter";
    EXPECT_EQ(a.value(), c.value()) << "same sequence, same digest";
}

TEST(DetsanDigest, MixDoubleIsBitExact)
{
    detsan::Digest a, b;
    a.mixDouble(0.1);
    b.mixDouble(0.1 + 1e-18); // same double after rounding
    EXPECT_EQ(a.value(), b.value());
    detsan::Digest c;
    c.mixDouble(0.2);
    EXPECT_NE(a.value(), c.value());
}

TEST(DetsanJournal, StoresThenCrossChecks)
{
    detsan::Journal j;
    detsan::RunDigest d;
    d.events = 42;
    d.extraction = 0xabcd;
    EXPECT_FALSE(j.record("runA", d)) << "first record stores";
    EXPECT_EQ(j.entries(), 1u);
    EXPECT_EQ(j.checked(), 0u);

    EXPECT_TRUE(j.record("runA", d)) << "repeat cross-checks";
    EXPECT_EQ(j.entries(), 1u);
    EXPECT_EQ(j.checked(), 1u);

    detsan::RunDigest out;
    EXPECT_TRUE(j.lookup("runA", out));
    EXPECT_EQ(out.events, 42u);
    EXPECT_FALSE(j.lookup("runB", out));

    j.clear();
    EXPECT_EQ(j.entries(), 0u);
    EXPECT_EQ(j.checked(), 0u);
}

TEST(DetsanJournalDeathTest, MismatchIsFatal)
{
    detsan::Journal j;
    detsan::RunDigest d;
    d.extraction = 1;
    j.record("runA", d);
    d.extraction = 2;
    EXPECT_DEATH(j.record("runA", d), "digest mismatch");
}

TEST(DetsanJournal, GlobalIsOneInstance)
{
    EXPECT_EQ(&detsan::Journal::global(),
              &detsan::Journal::global());
}

#if PROFESS_DETSAN

TEST(DetsanEventQueue, IdenticalSchedulesIdenticalDigests)
{
    auto drive = [](Tick skew) {
        EventQueue eq;
        int fired = 0;
        for (Tick t : {Tick(30), Tick(10), Tick(10), Tick(20)})
            eq.schedule(t + skew, [&fired]() { ++fired; });
        eq.run();
        return eq.detsanDigest();
    };
    EXPECT_EQ(drive(0), drive(0));
    EXPECT_NE(drive(0), drive(1))
        << "different event times must fingerprint differently";
}

TEST(DetsanEventQueue, DigestFollowsExtractionOrderNotInsertion)
{
    EventQueue a, b;
    // Same (when, seq) extraction sequence can only come from the
    // same schedule; a different schedule shifts seq numbers.
    a.schedule(5, []() {});
    a.schedule(7, []() {});
    b.schedule(7, []() {});
    b.schedule(5, []() {});
    a.run();
    b.run();
    EXPECT_NE(a.detsanDigest(), b.detsanDigest());
}

TEST(DetsanEpochSampler, EpochDigestTracksSampledState)
{
    std::uint64_t counter = 0;
    telemetry::StatRegistry reg;
    reg.addCounter("c", counter);

    telemetry::EpochSampler s1(reg, 100), s2(reg, 100);
    s1.select({"c"});
    s2.select({"c"});

    counter = 0;
    s1.sampleNow(100);
    counter = 7;
    s1.sampleNow(200);

    counter = 0;
    s2.sampleNow(100);
    EXPECT_NE(s1.detsanDigest(), s2.detsanDigest())
        << "one epoch behind must differ";
    counter = 7;
    // s2 replays s1's exact (tick, value) trajectory: identical
    // observable epoch history, identical digest.
    s2.sampleNow(200);
    EXPECT_EQ(s1.detsanDigest(), s2.detsanDigest());

    // A diverging value at the same tick fingerprints differently.
    telemetry::EpochSampler s3(reg, 100);
    s3.select({"c"});
    counter = 1;
    s3.sampleNow(100);
    counter = 7;
    s3.sampleNow(200);
    EXPECT_NE(s1.detsanDigest(), s3.detsanDigest());
}

#else

TEST(Detsan, InstrumentationCompiledOut)
{
    // Without -DPROFESS_DETSAN=ON only the digest/journal library
    // is available; the EventQueue and sampler carry no state.
    SUCCEED();
}

#endif // PROFESS_DETSAN
