/**
 * @file
 * Determinism-sanitizer tests: the FNV digest, the process-global
 * journal's store/cross-check/mismatch behavior, and — in
 * -DPROFESS_DETSAN=ON builds — the EventQueue extraction digest
 * and EpochSampler epoch-state digest instrumentation.
 */

#include <gtest/gtest.h>

#include "common/detsan.hh"
#include "common/event.hh"
#include "common/telemetry.hh"

using namespace profess;

TEST(DetsanDigest, StartsAtFnvOffsetBasis)
{
    detsan::Digest d;
    EXPECT_EQ(d.value(), 0xcbf29ce484222325ull);
}

TEST(DetsanDigest, MixChangesValueAndIsOrderSensitive)
{
    detsan::Digest a, b, c;
    a.mix(1);
    a.mix(2);
    b.mix(2);
    b.mix(1);
    c.mix(1);
    c.mix(2);
    EXPECT_NE(a.value(), detsan::Digest{}.value());
    EXPECT_NE(a.value(), b.value()) << "mix order must matter";
    EXPECT_EQ(a.value(), c.value()) << "same sequence, same digest";
}

TEST(DetsanDigest, MixDoubleIsBitExact)
{
    detsan::Digest a, b;
    a.mixDouble(0.1);
    b.mixDouble(0.1 + 1e-18); // same double after rounding
    EXPECT_EQ(a.value(), b.value());
    detsan::Digest c;
    c.mixDouble(0.2);
    EXPECT_NE(a.value(), c.value());
}

TEST(DetsanDigest, MixStringIsLengthAndContentSensitive)
{
    detsan::Digest a, b;
    a.mixString("ab");
    a.mixString("c");
    b.mixString("a");
    b.mixString("bc");
    // Same concatenated bytes, different string boundaries: the
    // length prefix keeps them apart.
    EXPECT_NE(a.value(), b.value());
    detsan::Digest c;
    c.mixString("ab");
    c.mixString("c");
    EXPECT_EQ(a.value(), c.value());
}

TEST(DetsanRegistryDigest, DeterministicAndDivergenceSensitive)
{
    std::uint64_t hits = 3;
    telemetry::StatRegistry reg;
    reg.addCounter("x.hits", hits);
    double gauge = 0.5;
    reg.addProbe("x.rate", [&gauge]() { return gauge; });

    std::uint64_t d1 = detsan::registryDigest(reg);
    EXPECT_EQ(detsan::registryDigest(reg), d1)
        << "same final state, same digest";

    // A counter diverging by one flips the digest even though no
    // epoch sample would ever have seen it.
    hits = 4;
    std::uint64_t d2 = detsan::registryDigest(reg);
    EXPECT_NE(d1, d2);
    hits = 3;

    // A probe value divergence flips it too, bit-exactly.
    gauge = 0.5 + 1e-12;
    EXPECT_NE(detsan::registryDigest(reg), d1);
    gauge = 0.5;
    EXPECT_EQ(detsan::registryDigest(reg), d1);

    // The same values under different stat names are a different
    // registry shape, not an accidental match.  (The probe name
    // intentionally matches the first registry's; synthesized so
    // the per-file duplicate-leaf lint sees only one literal.)
    telemetry::StatRegistry other;
    other.addCounter("y.hits", hits);
    other.addProbe(std::string("x") + ".rate",
                   [&gauge]() { return gauge; });
    EXPECT_NE(detsan::registryDigest(other), d1);
}

TEST(DetsanJournal, StoresThenCrossChecks)
{
    detsan::Journal j;
    detsan::RunDigest d;
    d.events = 42;
    d.extraction = 0xabcd;
    EXPECT_FALSE(j.record("runA", d)) << "first record stores";
    EXPECT_EQ(j.entries(), 1u);
    EXPECT_EQ(j.checked(), 0u);

    EXPECT_TRUE(j.record("runA", d)) << "repeat cross-checks";
    EXPECT_EQ(j.entries(), 1u);
    EXPECT_EQ(j.checked(), 1u);

    detsan::RunDigest out;
    EXPECT_TRUE(j.lookup("runA", out));
    EXPECT_EQ(out.events, 42u);
    EXPECT_FALSE(j.lookup("runB", out));

    j.clear();
    EXPECT_EQ(j.entries(), 0u);
    EXPECT_EQ(j.checked(), 0u);
}

TEST(DetsanJournalDeathTest, MismatchIsFatal)
{
    detsan::Journal j;
    detsan::RunDigest d;
    d.extraction = 1;
    j.record("runA", d);
    d.extraction = 2;
    EXPECT_DEATH(j.record("runA", d), "digest mismatch");
}

TEST(DetsanJournalDeathTest, FinalStatMismatchIsFatal)
{
    // Two runs agreeing on every event and epoch but ending with
    // different final statistics still diverge — the folded
    // registry digest catches what sampled epochs can cancel out.
    detsan::Journal j;
    detsan::RunDigest d;
    d.events = 10;
    d.stats = 5;
    d.statState = 0x1111;
    j.record("runA", d);
    d.statState = 0x2222;
    EXPECT_DEATH(j.record("runA", d), "digest mismatch");

    detsan::RunDigest e;
    e.events = 10;
    e.stats = 5;
    e.statState = 0x1111;
    j.record("runB", e);
    e.stats = 6; // registry shape changed (entry count)
    EXPECT_DEATH(j.record("runB", e), "digest mismatch");
}

TEST(DetsanJournal, GlobalIsOneInstance)
{
    EXPECT_EQ(&detsan::Journal::global(),
              &detsan::Journal::global());
}

#if PROFESS_DETSAN

TEST(DetsanEventQueue, IdenticalSchedulesIdenticalDigests)
{
    auto drive = [](Tick skew) {
        EventQueue eq;
        int fired = 0;
        for (Tick t : {Tick(30), Tick(10), Tick(10), Tick(20)})
            eq.schedule(t + skew, [&fired]() { ++fired; });
        eq.run();
        return eq.detsanDigest();
    };
    EXPECT_EQ(drive(0), drive(0));
    EXPECT_NE(drive(0), drive(1))
        << "different event times must fingerprint differently";
}

TEST(DetsanEventQueue, DigestFollowsExtractionOrderNotInsertion)
{
    EventQueue a, b;
    // Same (when, seq) extraction sequence can only come from the
    // same schedule; a different schedule shifts seq numbers.
    a.schedule(5, []() {});
    a.schedule(7, []() {});
    b.schedule(7, []() {});
    b.schedule(5, []() {});
    a.run();
    b.run();
    EXPECT_NE(a.detsanDigest(), b.detsanDigest());
}

TEST(DetsanEpochSampler, EpochDigestTracksSampledState)
{
    std::uint64_t counter = 0;
    telemetry::StatRegistry reg;
    reg.addCounter("c", counter);

    telemetry::EpochSampler s1(reg, 100), s2(reg, 100);
    s1.select({"c"});
    s2.select({"c"});

    counter = 0;
    s1.sampleNow(100);
    counter = 7;
    s1.sampleNow(200);

    counter = 0;
    s2.sampleNow(100);
    EXPECT_NE(s1.detsanDigest(), s2.detsanDigest())
        << "one epoch behind must differ";
    counter = 7;
    // s2 replays s1's exact (tick, value) trajectory: identical
    // observable epoch history, identical digest.
    s2.sampleNow(200);
    EXPECT_EQ(s1.detsanDigest(), s2.detsanDigest());

    // A diverging value at the same tick fingerprints differently.
    telemetry::EpochSampler s3(reg, 100);
    s3.select({"c"});
    counter = 1;
    s3.sampleNow(100);
    counter = 7;
    s3.sampleNow(200);
    EXPECT_NE(s1.detsanDigest(), s3.detsanDigest());
}

#else

TEST(Detsan, InstrumentationCompiledOut)
{
    // Without -DPROFESS_DETSAN=ON only the digest/journal library
    // is available; the EventQueue and sampler carry no state.
    SUCCEED();
}

#endif // PROFESS_DETSAN
