/**
 * @file
 * Tests for the region-aware first-touch page allocator
 * (Sec. 3.1.1): private-region exclusivity, uniform interleaving,
 * stable translations, ownership tracking.
 */

#include <gtest/gtest.h>

#include "os/page_allocator.hh"

using namespace profess;
using namespace profess::os;

namespace
{

constexpr std::uint64_t groups = 1024; // G/2 = 512, regions 32
constexpr unsigned slots = 9;
constexpr unsigned regions = 32;
constexpr unsigned programs = 4;

PageAllocator
makeAlloc()
{
    return PageAllocator(groups, slots, regions, programs, 7);
}

} // anonymous namespace

TEST(PageAllocator, FrameCount)
{
    PageAllocator a = makeAlloc();
    EXPECT_EQ(a.numFrames(), groups * slots / 2);
}

TEST(PageAllocator, RegionGeometryMatchesFig3)
{
    PageAllocator a = makeAlloc();
    // Frame f covers groups 2f, 2f+1 (mod G); region must equal the
    // groups' region.
    for (std::uint64_t f = 0; f < 200; ++f) {
        unsigned rf = a.regionOfFrame(f);
        unsigned rg = a.regionOfGroup((2 * f) % groups);
        EXPECT_EQ(rf, rg);
        EXPECT_EQ(rg, a.regionOfGroup((2 * f + 1) % groups));
    }
}

TEST(PageAllocator, RegionsUniform)
{
    PageAllocator a = makeAlloc();
    std::vector<std::uint64_t> per(regions, 0);
    for (std::uint64_t f = 0; f < a.numFrames(); ++f)
        ++per[a.regionOfFrame(f)];
    for (unsigned r = 1; r < regions; ++r)
        EXPECT_EQ(per[r], per[0]);
}

TEST(PageAllocator, PrivateOwnership)
{
    PageAllocator a = makeAlloc();
    for (unsigned r = 0; r < regions; ++r) {
        if (r < programs)
            EXPECT_EQ(a.privateOwner(r), static_cast<ProgramId>(r));
        else
            EXPECT_EQ(a.privateOwner(r), invalidProgram);
    }
    EXPECT_EQ(a.privateRegionOf(2), 2u);
}

TEST(PageAllocator, TranslationIsStable)
{
    PageAllocator a = makeAlloc();
    std::uint64_t f1 = a.translate(0, 42);
    std::uint64_t f2 = a.translate(0, 42);
    EXPECT_EQ(f1, f2);
    EXPECT_EQ(a.allocatedFrames(0), 1u);
}

TEST(PageAllocator, TranslationCacheCountsHits)
{
    PageAllocator a = makeAlloc();
    // First touch misses; repeats of the same (program, vpage) hit
    // the one-entry cache, a different page misses again.
    a.translate(0, 42);
    a.translate(0, 42);
    a.translate(0, 42);
    a.translate(0, 7);
    a.translate(0, 42); // evicted by vpage 7: miss
    EXPECT_EQ(a.stats().counter("translations"), 5u);
    EXPECT_EQ(a.stats().counter("cache_hits"), 2u);
    EXPECT_NEAR(a.cacheHitRate(), 2.0 / 5.0, 1e-12);
}

TEST(PageAllocator, TranslationCacheIsPerProgram)
{
    PageAllocator a = makeAlloc();
    // Interleaved programs must not evict each other's entry.
    a.translate(0, 42);
    a.translate(1, 42);
    std::uint64_t f0 = a.translate(0, 42); // hit, program 0's entry
    std::uint64_t f1 = a.translate(1, 42); // hit, program 1's entry
    EXPECT_EQ(a.stats().counter("cache_hits"), 2u);
    EXPECT_NE(f0, f1); // distinct programs, distinct frames
    // Releasing a program invalidates its cached entry.
    a.releaseProgram(1);
    a.translate(1, 42);
    EXPECT_EQ(a.stats().counter("cache_hits"), 2u);
}

TEST(PageAllocator, DistinctPagesDistinctFrames)
{
    PageAllocator a = makeAlloc();
    std::set<std::uint64_t> frames;
    for (std::uint64_t v = 0; v < 500; ++v)
        EXPECT_TRUE(frames.insert(a.translate(1, v)).second);
}

TEST(PageAllocator, PrivateRegionsExcludeOthers)
{
    PageAllocator a = makeAlloc();
    // Allocate heavily for every program; no frame may land in
    // another program's private region.
    for (unsigned p = 0; p < programs; ++p) {
        for (std::uint64_t v = 0; v < 400; ++v) {
            std::uint64_t f =
                a.translate(static_cast<ProgramId>(p), v);
            unsigned r = a.regionOfFrame(f);
            ProgramId priv = a.privateOwner(r);
            if (priv != invalidProgram)
                EXPECT_EQ(priv, static_cast<ProgramId>(p));
        }
    }
}

TEST(PageAllocator, OwnPrivateRegionIsUsed)
{
    PageAllocator a = makeAlloc();
    bool private_hit = false;
    for (std::uint64_t v = 0; v < 2000 && !private_hit; ++v) {
        std::uint64_t f = a.translate(0, v);
        private_hit = a.regionOfFrame(f) == a.privateRegionOf(0);
    }
    EXPECT_TRUE(private_hit);
}

TEST(PageAllocator, SpreadsAcrossRegions)
{
    PageAllocator a = makeAlloc();
    std::set<unsigned> used;
    for (std::uint64_t v = 0; v < 200; ++v)
        used.insert(a.regionOfFrame(a.translate(0, v)));
    // Round-robin placement must reach most allowed regions.
    EXPECT_GE(used.size(), regions - programs);
}

TEST(PageAllocator, OwnerOfBlock)
{
    PageAllocator a = makeAlloc();
    std::uint64_t f = a.translate(2, 7);
    EXPECT_EQ(a.ownerOfBlock(2 * f), 2);
    EXPECT_EQ(a.ownerOfBlock(2 * f + 1), 2);
    // Some unallocated frame.
    for (std::uint64_t g = 0; g < a.numFrames(); ++g) {
        if (g != f) {
            EXPECT_EQ(a.ownerOfBlock(2 * g), invalidProgram);
            break;
        }
    }
}

TEST(PageAllocator, ReleaseReturnsFrames)
{
    PageAllocator a = makeAlloc();
    std::uint64_t before = a.freeFramesInRegion(10);
    for (std::uint64_t v = 0; v < 300; ++v)
        a.translate(3, v);
    EXPECT_LT(a.freeFramesInRegion(10), before + 1);
    a.releaseProgram(3);
    EXPECT_EQ(a.allocatedFrames(3), 0u);
    std::uint64_t total_free = 0;
    for (unsigned r = 0; r < regions; ++r)
        total_free += a.freeFramesInRegion(r);
    EXPECT_EQ(total_free, a.numFrames());
}

TEST(PageAllocator, DeterministicForSeed)
{
    PageAllocator a(groups, slots, regions, programs, 123);
    PageAllocator b(groups, slots, regions, programs, 123);
    for (std::uint64_t v = 0; v < 100; ++v)
        EXPECT_EQ(a.translate(1, v), b.translate(1, v));
}

TEST(PageAllocator, RejectsBadGeometry)
{
    // G/2 not a multiple of regions.
    EXPECT_EXIT(PageAllocator(100, 9, 32, 4),
                ::testing::ExitedWithCode(1), "multiple");
    // More programs than regions.
    EXPECT_EXIT(PageAllocator(1024, 9, 4, 8),
                ::testing::ExitedWithCode(1), "regions");
}
