/**
 * @file
 * Tests for the Migration-Decision Mechanism (Sec. 3.2): QAC
 * quantization (Table 5), the Table 6 counters and Eqs. 5-7,
 * Laplace smoothing, phase machinery, and the Sec. 3.2.3 decision
 * tree over crafted access descriptors.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/mdm.hh"

using namespace profess;
using namespace profess::core;

namespace
{

Mdm::Params
fastParams()
{
    Mdm::Params p;
    p.numPrograms = 2;
    p.minBenefit = 8;
    p.phaseUpdates = 16;
    p.recomputeEvery = 4;
    p.initialExpCnt = 0.0;
    return p;
}

/** Feed n evictions of (qI, count) for a program. */
void
feed(Mdm &mdm, ProgramId p, std::uint8_t q_i, unsigned count,
     unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        mdm.recordEviction(p, q_i, count);
}

/** Build an AccessInfo over a crafted meta. */
struct DecideHarness
{
    hybrid::StcMeta meta{};
    policy::AccessInfo info{};

    DecideHarness()
    {
        std::memset(meta.ac, 0, sizeof(meta.ac));
        std::memset(meta.qacAtInsert, 0, sizeof(meta.qacAtInsert));
        info.group = 0;
        info.slot = 2;     // the M2 block under consideration
        info.m1Slot = 0;   // incumbent
        info.accessor = 0;
        info.m1Owner = 1;
        info.meta = &meta;
    }
};

} // anonymous namespace

TEST(QacQuantize, MatchesTable5)
{
    EXPECT_EQ(quantizeQac(0), 0);
    EXPECT_EQ(quantizeQac(1), 1);
    EXPECT_EQ(quantizeQac(7), 1);
    EXPECT_EQ(quantizeQac(8), 2);
    EXPECT_EQ(quantizeQac(31), 2);
    EXPECT_EQ(quantizeQac(32), 3);
    EXPECT_EQ(quantizeQac(63), 3);
    EXPECT_EQ(quantizeQac(1000), 3);
}

TEST(Mdm, RecordEvictionReturnsQe)
{
    Mdm mdm(fastParams());
    EXPECT_EQ(mdm.recordEviction(0, 0, 5), 1);
    EXPECT_EQ(mdm.recordEviction(0, 1, 20), 2);
    EXPECT_EQ(mdm.recordEviction(0, 2, 50), 3);
    EXPECT_EQ(mdm.updates(0), 3u);
    EXPECT_EQ(mdm.updates(1), 0u);
}

TEST(Mdm, AvgCntMatchesEq6)
{
    Mdm mdm(fastParams());
    // Counts 40 and 60, both qE = 3; observation phase is 16
    // updates, then estimation recomputes every 4.
    feed(mdm, 0, 3, 40, 10);
    feed(mdm, 0, 3, 60, 10);
    EXPECT_NEAR(mdm.avgCnt(0, 3), 50.0, 1e-9);
}

TEST(Mdm, TransitionProbLaplace)
{
    Mdm mdm(fastParams());
    // 20 transitions 3 -> 3, none elsewhere.
    feed(mdm, 0, 3, 40, 20);
    // P(3|3) = (20+1)/(20+3); P(1|3) = 1/23.
    EXPECT_NEAR(mdm.transitionProb(0, 3, 3), 21.0 / 23.0, 1e-9);
    EXPECT_NEAR(mdm.transitionProb(0, 3, 1), 1.0 / 23.0, 1e-9);
}

TEST(Mdm, ProbabilitiesSumToOne)
{
    Mdm mdm(fastParams());
    feed(mdm, 0, 1, 5, 8);
    feed(mdm, 0, 1, 20, 8);
    feed(mdm, 0, 1, 50, 8);
    double sum = 0;
    for (std::uint8_t q_e = 1; q_e < numQacValues; ++q_e)
        sum += mdm.transitionProb(0, 1, q_e);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Mdm, ExpCntMatchesEq5)
{
    Mdm mdm(fastParams());
    feed(mdm, 0, 3, 40, 20); // all 3 -> 3, avg 40
    double p33 = 21.0 / 23.0;
    // avg_cnt(1) = avg_cnt(2) = 0.
    EXPECT_NEAR(mdm.expCnt(0, 3), 40.0 * p33, 1e-6);
    // Unseen qI gets the Laplace-uniform mixture.
    EXPECT_NEAR(mdm.expCnt(0, 0), 40.0 / 3.0, 1e-6);
}

TEST(Mdm, PerProgramIsolation)
{
    Mdm mdm(fastParams());
    feed(mdm, 0, 3, 60, 20);
    feed(mdm, 1, 3, 2, 20);
    EXPECT_GT(mdm.expCnt(0, 3), 40.0);
    EXPECT_LT(mdm.expCnt(1, 3), 5.0);
}

TEST(Mdm, ObservationPhaseResetClearsCounters)
{
    Mdm::Params p = fastParams();
    p.phaseUpdates = 8;
    p.recomputeEvery = 2;
    Mdm mdm(p);
    // Phase 1 (observation): 8 updates of count 60.
    feed(mdm, 0, 3, 60, 8);
    // Phase 2 (estimation): 8 updates of count 60; recompute sees
    // cumulative avg 60.
    feed(mdm, 0, 3, 60, 8);
    EXPECT_NEAR(mdm.avgCnt(0, 3), 60.0, 1e-9);
    // Next observation resets; feed count 40 (still qE = 3) through
    // observation and estimation: the new average must reflect only
    // the post-reset window (all 40s).
    feed(mdm, 0, 3, 40, 16);
    EXPECT_NEAR(mdm.avgCnt(0, 3), 40.0, 1e-9);
}

TEST(MdmDecide, NoBenefitWhenExpLow)
{
    Mdm mdm(fastParams());
    feed(mdm, 0, 1, 3, 24); // low expectations for qI=1
    DecideHarness h;
    h.meta.qacAtInsert[h.info.slot] = 1;
    h.meta.bump(h.info.slot, 1);
    EXPECT_EQ(mdm.decide(h.info, false), policy::Decision::NoSwap);
    EXPECT_GT(mdm.pathCount(Mdm::DecidePath::NoBenefit), 0u);
}

TEST(MdmDecide, VacantM1Promotes)
{
    Mdm mdm(fastParams());
    feed(mdm, 0, 3, 60, 24);
    DecideHarness h;
    h.meta.qacAtInsert[h.info.slot] = 3;
    h.meta.bump(h.info.slot, 1);
    h.info.m1Owner = invalidProgram;
    EXPECT_EQ(mdm.decide(h.info, false), policy::Decision::Swap);
    EXPECT_GT(mdm.pathCount(Mdm::DecidePath::Vacant), 0u);
}

TEST(MdmDecide, TreatVacantForcesCase1Semantics)
{
    Mdm mdm(fastParams());
    feed(mdm, 0, 3, 60, 24);
    feed(mdm, 1, 3, 60, 24);
    DecideHarness h;
    h.meta.qacAtInsert[h.info.slot] = 3;
    h.meta.bump(h.info.slot, 1);
    // Busy incumbent would normally win...
    h.meta.qacAtInsert[h.info.m1Slot] = 3;
    h.meta.bump(h.info.m1Slot, 2);
    EXPECT_EQ(mdm.decide(h.info, false), policy::Decision::NoSwap);
    // ...but ProFess Case 1 ignores it.
    EXPECT_EQ(mdm.decide(h.info, true), policy::Decision::Swap);
}

TEST(MdmDecide, IdleColdM1Displaced)
{
    Mdm mdm(fastParams());
    feed(mdm, 0, 3, 60, 24);
    DecideHarness h;
    h.meta.qacAtInsert[h.info.slot] = 3;
    h.meta.bump(h.info.slot, 1);
    // Incumbent idle with cold history (QAC 0).
    h.meta.qacAtInsert[h.info.m1Slot] = 0;
    EXPECT_EQ(mdm.decide(h.info, false), policy::Decision::Swap);
    EXPECT_GT(mdm.pathCount(Mdm::DecidePath::IdleM1), 0u);
}

TEST(MdmDecide, IdleDepletedM1Displaced)
{
    Mdm mdm(fastParams());
    feed(mdm, 0, 3, 60, 24);
    feed(mdm, 1, 3, 60, 24);
    DecideHarness h;
    h.meta.qacAtInsert[h.info.slot] = 3;
    h.meta.bump(h.info.slot, 1);
    // Hot history but its burst completed (depleted bit).
    h.meta.qacAtInsert[h.info.m1Slot] = 3;
    h.meta.depletedMask |= 1u << h.info.m1Slot;
    EXPECT_EQ(mdm.decide(h.info, false), policy::Decision::Swap);
}

TEST(MdmDecide, IdleHotM1Guarded)
{
    Mdm mdm(fastParams());
    // Accessor expects modest counts; incumbent owner expects big
    // ones.
    feed(mdm, 0, 3, 25, 24);
    feed(mdm, 1, 3, 60, 24);
    DecideHarness h;
    h.meta.qacAtInsert[h.info.slot] = 3;
    h.meta.bump(h.info.slot, 1);
    h.meta.qacAtInsert[h.info.m1Slot] = 3; // hot history, idle now
    EXPECT_EQ(mdm.decide(h.info, false), policy::Decision::NoSwap);
    EXPECT_GT(mdm.pathCount(Mdm::DecidePath::Rejected), 0u);
}

TEST(MdmDecide, DepletedIncumbentSwapped)
{
    Mdm mdm(fastParams());
    feed(mdm, 0, 3, 60, 24);
    feed(mdm, 1, 3, 60, 24);
    DecideHarness h;
    h.meta.qacAtInsert[h.info.slot] = 3;
    h.meta.bump(h.info.slot, 1);
    // Incumbent already received its expectation (c.i).
    h.meta.qacAtInsert[h.info.m1Slot] = 3;
    h.meta.bump(h.info.m1Slot, 63);
    EXPECT_EQ(mdm.decide(h.info, false), policy::Decision::Swap);
    EXPECT_GT(mdm.pathCount(Mdm::DecidePath::Depleted), 0u);
}

TEST(MdmDecide, NetBenefitComparesRemaining)
{
    Mdm mdm(fastParams());
    feed(mdm, 0, 3, 60, 24); // accessor: expects 60
    feed(mdm, 1, 3, 60, 24); // incumbent owner: expects 60 too
    DecideHarness h;
    h.meta.qacAtInsert[h.info.slot] = 3;
    h.meta.bump(h.info.slot, 1); // rem_m2 ~ 54
    h.meta.qacAtInsert[h.info.m1Slot] = 3;
    h.meta.bump(h.info.m1Slot, 40); // rem_m1 ~ 15
    EXPECT_EQ(mdm.decide(h.info, false), policy::Decision::Swap);
    EXPECT_GT(mdm.pathCount(Mdm::DecidePath::NetBenefit), 0u);
}

TEST(MdmDecide, CloseCallRejected)
{
    Mdm mdm(fastParams());
    feed(mdm, 0, 3, 60, 24);
    feed(mdm, 1, 3, 60, 24);
    DecideHarness h;
    h.meta.qacAtInsert[h.info.slot] = 3;
    h.meta.bump(h.info.slot, 20); // rem_m2 ~ 35
    h.meta.qacAtInsert[h.info.m1Slot] = 3;
    h.meta.bump(h.info.m1Slot, 25); // rem_m1 ~ 30: difference < 8
    EXPECT_EQ(mdm.decide(h.info, false), policy::Decision::NoSwap);
}

TEST(Mdm, InitialExpZeroBlocksEarlySwaps)
{
    Mdm mdm(fastParams());
    DecideHarness h;
    h.meta.bump(h.info.slot, 1);
    h.info.m1Owner = invalidProgram; // even a vacant M1
    EXPECT_EQ(mdm.decide(h.info, false), policy::Decision::NoSwap);
}
