/**
 * @file
 * Timing-model tests for one hybrid channel: bank state machine,
 * FR-FCFS-Cap scheduling, write handling, swaps, refresh, energy.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/event.hh"
#include "mem/channel.hh"

using namespace profess;
using namespace profess::mem;

namespace
{

struct ChannelFixture : public ::testing::Test
{
    EventQueue eq;
    TimingParams m1 = m1Timing();
    TimingParams m2 = m2Timing();
    ModuleGeometry g1 = ModuleGeometry::withCapacity(1 * MiB);
    ModuleGeometry g2 = ModuleGeometry::withCapacity(8 * MiB);
    std::unique_ptr<Channel> ch;

    void
    SetUp() override
    {
        // Disable refresh for deterministic latency checks.
        m1.tREFI = 0;
        ch = std::make_unique<Channel>(eq, m1, m2, g1, g2);
    }

    /** Push one request; returns its completion tick via out. */
    void
    push(Module m, Addr addr, bool write, Tick *done = nullptr)
    {
        auto r = std::make_unique<Request>();
        r->module = m;
        r->addr = addr;
        r->isWrite = write;
        if (done) {
            r->onComplete = [done](Request &req) {
                *done = req.completeTick;
            };
        }
        ch->push(std::move(r));
    }
};

} // anonymous namespace

TEST_F(ChannelFixture, ClosedBankReadLatencyM1)
{
    Tick done = 0;
    push(Module::M1, 0, false, &done);
    eq.run();
    // Activate + CAS + burst: tRCD + tCL + tBurst.
    EXPECT_EQ(done, m1.tRCD + m1.tCL + m1.tBurst);
}

TEST_F(ChannelFixture, ClosedBankReadLatencyM2)
{
    Tick done = 0;
    push(Module::M2, 0, false, &done);
    eq.run();
    EXPECT_EQ(done, m2.tRCD + m2.tCL + m2.tBurst);
}

TEST_F(ChannelFixture, RowHitIsFast)
{
    Tick first = 0, second = 0;
    push(Module::M1, 0, false, &first);
    eq.run();
    push(Module::M1, 64, false, &second);
    eq.run();
    // Second access hits the open row: only bus + CAS.
    EXPECT_LE(second - first, m1.tCL + m1.tBurst);
}

TEST_F(ChannelFixture, RowHitCapClosesRow)
{
    // rowHitCap = 4: the 5th consecutive access to one row must
    // re-activate (the cap precharges the row).
    std::vector<Tick> done(6, 0);
    Tick prev = 0;
    for (int i = 0; i < 6; ++i) {
        push(Module::M1, static_cast<Addr>(i) * 64, false, &done[i]);
        eq.run();
    }
    // Access 0 activates; 1..3 hit; 4 pays precharge+activate again.
    Cycles gap_hit = done[2] - done[1];
    Cycles gap_reopen = done[4] - done[3];
    EXPECT_GT(gap_reopen, gap_hit);
    EXPECT_GE(gap_reopen, m1.tRCD);
    (void)prev;
}

TEST_F(ChannelFixture, RowConflictPaysPrechargeActivate)
{
    Tick a = 0, b = 0;
    push(Module::M1, 0, false, &a);
    eq.run();
    // Same bank, different row: row chunk stride is
    // rowBytes * banks.
    Addr conflict = g1.rowBytes * g1.banks;
    push(Module::M1, conflict, false, &b);
    eq.run();
    EXPECT_GE(b - a, m1.tRP + m1.tRCD);
}

TEST_F(ChannelFixture, BankParallelismOverlapsActivations)
{
    // Two closed-bank M2 reads to different banks: their long
    // activations overlap, so total time is far below 2x single.
    Tick d1 = 0, d2 = 0;
    push(Module::M2, 0, false, &d1);
    push(Module::M2, g1.rowBytes, false, &d2); // next bank
    eq.run();
    Tick serial = 2 * (m2.tRCD + m2.tCL + m2.tBurst);
    EXPECT_LT(std::max(d1, d2), serial);
}

TEST_F(ChannelFixture, WritesAreBuffered)
{
    // A single write sits in the write queue until the read queue
    // is empty, then drains.
    Tick done = 0;
    push(Module::M1, 0, true, &done);
    eq.run();
    EXPECT_GT(done, 0u);
    EXPECT_EQ(ch->writeQueueSize(), 0u);
}

TEST_F(ChannelFixture, M2PerWriteRecoveryBlocksBank)
{
    // NVM: after a write burst the bank is busy for tWR even for
    // another column access to the same row.
    Tick w = 0, r = 0;
    push(Module::M2, 0, true, &w);
    eq.run();
    push(Module::M2, 64, false, &r);
    eq.run();
    EXPECT_GE(r - w, m2.tWR);
}

TEST_F(ChannelFixture, M1SameRowWriteThenReadIsFast)
{
    // DRAM: write recovery only gates precharge, not a same-row
    // column read.
    Tick w = 0, r = 0;
    push(Module::M1, 0, true, &w);
    eq.run();
    push(Module::M1, 64, false, &r);
    eq.run();
    EXPECT_LT(r - w, m1.tWR + m1.tCL);
}

TEST_F(ChannelFixture, SwapBlocksDemand)
{
    Tick swap_done = 0, read_done = 0;
    ch->executeSwap(0, 0, 2048, [&]() { swap_done = eq.now(); });
    push(Module::M1, 64 * 1024, false, &read_done);
    eq.run();
    EXPECT_GT(swap_done, 0u);
    // The demand read waits for the whole swap.
    EXPECT_GT(read_done, swap_done);
    EXPECT_EQ(swap_done, ch->swapLatency(2048));
}

TEST_F(ChannelFixture, SwapLatencyMatchesAnalytic)
{
    EXPECT_EQ(ch->swapLatency(2048),
              swapLatencyCycles(m1, m2, 2048));
}

TEST_F(ChannelFixture, SwapsQueue)
{
    int done = 0;
    ch->executeSwap(0, 0, 2048, [&]() { ++done; });
    ch->executeSwap(2048, 2048, 2048, [&]() { ++done; });
    eq.run();
    EXPECT_EQ(done, 2);
    EXPECT_GE(eq.now(), 2 * ch->swapLatency(2048));
}

TEST_F(ChannelFixture, SlowSwapTakesTwiceAsLong)
{
    Tick fast_done = 0, slow_done = 0;
    ch->executeSwap(0, 0, 2048, [&]() { fast_done = eq.now(); });
    eq.run();
    Tick start = eq.now();
    ch->executeSwap(2048, 2048, 2048,
                    [&]() { slow_done = eq.now(); }, true);
    eq.run();
    EXPECT_EQ(fast_done, ch->swapLatency(2048));
    EXPECT_EQ(slow_done - start, 2 * ch->swapLatency(2048));
}

TEST_F(ChannelFixture, SwapEnergyAccounted)
{
    ch->executeSwap(0, 0, 2048, {});
    eq.run();
    // 32 bursts each way on each module.
    EXPECT_EQ(ch->energy().m1ReadBursts(), 32u);
    EXPECT_EQ(ch->energy().m2ReadBursts(), 32u);
    EXPECT_EQ(ch->energy().m1WriteBursts(), 32u);
    EXPECT_EQ(ch->energy().m2WriteBursts(), 32u);
    EXPECT_GE(ch->energy().m1Activates(), 1u);
    EXPECT_GE(ch->energy().m2Activates(), 1u);
}

TEST_F(ChannelFixture, DemandEnergyAndStats)
{
    Tick d = 0;
    push(Module::M1, 0, false, &d);
    push(Module::M2, 0, true, nullptr);
    eq.run();
    EXPECT_EQ(ch->energy().m1ReadBursts(), 1u);
    EXPECT_EQ(ch->energy().m2WriteBursts(), 1u);
    EXPECT_EQ(ch->stats().counter("demand_reads"), 1u);
    EXPECT_EQ(ch->stats().counter("demand_writes"), 1u);
    EXPECT_EQ(ch->readLatency().count(), 1u);
}

TEST_F(ChannelFixture, ResetStatsClearsCounters)
{
    push(Module::M1, 0, false, nullptr);
    eq.run();
    EXPECT_GT(ch->stats().counter("demand_reads"), 0u);
    ch->resetStats();
    EXPECT_EQ(ch->stats().counter("demand_reads"), 0u);
    EXPECT_EQ(ch->readLatency().count(), 0u);
    EXPECT_EQ(ch->energy().m1ReadBursts(), 0u);
}

TEST_F(ChannelFixture, ManyRequestsAllComplete)
{
    int completed = 0;
    for (int i = 0; i < 500; ++i) {
        auto r = std::make_unique<Request>();
        r->module = i % 2 ? Module::M2 : Module::M1;
        r->addr = static_cast<Addr>(i % 64) * 64;
        r->isWrite = i % 5 == 0;
        r->onComplete = [&](Request &) { ++completed; };
        ch->push(std::move(r));
    }
    eq.run();
    EXPECT_EQ(completed, 500);
    EXPECT_EQ(ch->readQueueSize(), 0u);
    EXPECT_EQ(ch->writeQueueSize(), 0u);
}

TEST(ChannelRefresh, RefreshDelaysAccess)
{
    EventQueue eq;
    TimingParams m1 = m1Timing(); // refresh on
    TimingParams m2 = m2Timing();
    ModuleGeometry g1 = ModuleGeometry::withCapacity(1 * MiB);
    ModuleGeometry g2 = ModuleGeometry::withCapacity(8 * MiB);
    Channel ch(eq, m1, m2, g1, g2);

    // Idle past several refresh intervals, then access: the bank
    // must wait for the latest refresh window to finish.
    eq.schedule(m1.tREFI + 1, [&]() {
        auto r = std::make_unique<Request>();
        r->module = Module::M1;
        r->addr = 0;
        ch.push(std::move(r));
    });
    eq.run();
    EXPECT_GE(ch.stats().counter("m1_refreshes"), 1u);
    // Completion after the refresh window.
    EXPECT_GE(eq.now(), m1.tREFI + m1.tRFC);
}

TEST(ChannelWriteDrain, HighWatermarkTriggersDrain)
{
    EventQueue eq;
    TimingParams m1 = m1Timing();
    m1.tREFI = 0;
    TimingParams m2 = m2Timing();
    ModuleGeometry g1 = ModuleGeometry::withCapacity(1 * MiB);
    ModuleGeometry g2 = ModuleGeometry::withCapacity(8 * MiB);
    ChannelConfig cc;
    cc.writeHighMark = 8;
    cc.writeLowMark = 2;
    Channel ch(eq, m1, m2, g1, g2, EnergyParams{}, cc);

    int writes_done = 0;
    for (int i = 0; i < 16; ++i) {
        auto r = std::make_unique<Request>();
        r->module = Module::M1;
        r->addr = static_cast<Addr>(i) * 64;
        r->isWrite = true;
        r->onComplete = [&](Request &) { ++writes_done; };
        ch.push(std::move(r));
    }
    eq.run();
    EXPECT_EQ(writes_done, 16);
}
