/**
 * @file
 * Tests for the ProFess integration (Sec. 3.3, Table 7): case
 * classification with hysteresis thresholds, decision routing, and
 * RSM wiring; plus the generic RSM-guided wrapper.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "core/profess.hh"
#include "core/rsm_guided.hh"
#include "policy/static_policies.hh"

using namespace profess;
using namespace profess::core;

namespace
{

struct ProfessFixture : public ::testing::Test
{
    hybrid::HybridLayout layout =
        hybrid::HybridLayout::build(1 * MiB, 8 * MiB, 2, 32, 9);
    os::PageAllocator alloc{layout.numGroups, 9, 32, 2, 7};
    std::unique_ptr<ProfessPolicy> pol;
    hybrid::StcMeta meta{};
    policy::AccessInfo info{};

    void
    SetUp() override
    {
        ProfessPolicy::Params p;
        p.mdm.numPrograms = 2;
        p.mdm.phaseUpdates = 16;
        p.mdm.recomputeEvery = 4;
        p.rsm.numPrograms = 2;
        p.rsm.numRegions = 32;
        p.rsm.sampleRequests = 10;
        p.rsm.alpha = 1.0;
        pol = std::make_unique<ProfessPolicy>(layout, alloc, p);

        std::memset(meta.ac, 0, sizeof(meta.ac));
        std::memset(meta.qacAtInsert, 0, sizeof(meta.qacAtInsert));
        info.group = 0;
        info.slot = 2;
        info.m1Slot = 0;
        info.region = 10;
        info.accessor = 0; // c_M2
        info.m1Owner = 1;  // c_M1
        info.meta = &meta;
    }

    /**
     * Drive RSM so that program p ends a period with the given
     * private/shared M1 fractions and swap-self ratio.
     */
    void
    setFactors(ProgramId p, double sf_a_intent, double sf_b_intent)
    {
        // Encode intent directly: high sf_a_intent -> low shared M1
        // fraction; high sf_b_intent -> many non-self swaps.
        Rsm &rsm = pol->rsm();
        int shared_m1 =
            std::max(0, static_cast<int>(8.0 / sf_a_intent) - 1);
        int swaps = static_cast<int>(sf_b_intent) - 1;
        // Partner the swaps with a vacant M1 side so the other
        // program's counters are not contaminated.
        for (int i = 0; i < swaps; ++i)
            rsm.onSwap(p, invalidProgram, false);
        for (int i = 0; i < 2; ++i)
            rsm.onServed(p, static_cast<unsigned>(p), true);
        for (int i = 0; i < 8; ++i)
            rsm.onServed(p, 10, i < shared_m1);
    }
};

} // anonymous namespace

TEST_F(ProfessFixture, SameProgramWhenOwnersMatch)
{
    info.m1Owner = info.accessor;
    EXPECT_EQ(pol->classify(info),
              ProfessPolicy::GuidanceCase::SameProgram);
    info.m1Owner = invalidProgram;
    EXPECT_EQ(pol->classify(info),
              ProfessPolicy::GuidanceCase::SameProgram);
}

TEST_F(ProfessFixture, DefaultWhenFactorsEqual)
{
    // Fresh RSM: SF_A = SF_B = 1 for both programs.
    EXPECT_EQ(pol->classify(info),
              ProfessPolicy::GuidanceCase::Default);
}

TEST_F(ProfessFixture, Case1WhenAccessorSuffers)
{
    setFactors(0, 4.0, 4.0); // c_M2 suffers
    setFactors(1, 1.0, 1.0);
    EXPECT_EQ(pol->classify(info),
              ProfessPolicy::GuidanceCase::Case1);
}

TEST_F(ProfessFixture, Case2WhenIncumbentSuffers)
{
    setFactors(0, 1.0, 1.0);
    setFactors(1, 4.0, 4.0); // c_M1 suffers
    EXPECT_EQ(pol->classify(info),
              ProfessPolicy::GuidanceCase::Case2);
    EXPECT_EQ(pol->onM2Access(info), policy::Decision::NoSwap);
    EXPECT_GT(pol->caseCount(ProfessPolicy::GuidanceCase::Case2),
              0u);
}

TEST_F(ProfessFixture, Case3ProductProtectsIncumbent)
{
    // SF_A says c2 suffers, SF_B says c1 suffers, and the product
    // favours c1 (third condition of Case 3).
    setFactors(0, 2.0, 1.0);  // c2: SF_A high, SF_B low
    setFactors(1, 1.0, 8.0);  // c1: SF_A low, SF_B high
    EXPECT_EQ(pol->classify(info),
              ProfessPolicy::GuidanceCase::Case3);
    EXPECT_EQ(pol->onM2Access(info), policy::Decision::NoSwap);
}

TEST_F(ProfessFixture, MixedFactorsWithoutProductFallThrough)
{
    // SF_B(c1) > SF_B(c2) but the product favours c2 -> default.
    setFactors(0, 6.0, 1.0);
    setFactors(1, 1.0, 2.0);
    EXPECT_EQ(pol->classify(info),
              ProfessPolicy::GuidanceCase::Default);
}

TEST_F(ProfessFixture, ThresholdSuppressesTinyDifferences)
{
    // Differences under ~3% must not trigger any case.
    Rsm &rsm = pol->rsm();
    // Both programs identical by construction.
    for (ProgramId p : {0, 1}) {
        for (int i = 0; i < 2; ++i)
            rsm.onServed(p, static_cast<unsigned>(p), true);
        for (int i = 0; i < 8; ++i)
            rsm.onServed(p, 10, i < 4);
    }
    EXPECT_EQ(pol->classify(info),
              ProfessPolicy::GuidanceCase::Default);
}

TEST_F(ProfessFixture, Case1ConsultsMdmBenefit)
{
    setFactors(0, 4.0, 4.0);
    setFactors(1, 1.0, 1.0);
    // No MDM statistics yet -> exp = 0 -> even Case 1 must not
    // swap (RSM is agnostic to M1/M2 characteristics; MDM keeps the
    // benefit veto, Sec. 3.3).
    meta.bump(info.slot, 1);
    EXPECT_EQ(pol->onM2Access(info), policy::Decision::NoSwap);
    // Once the block class looks valuable, Case 1 forces the swap
    // even though the incumbent is busy.
    for (int i = 0; i < 24; ++i)
        pol->mdm().recordEviction(0, 3, 60);
    for (int i = 0; i < 24; ++i)
        pol->mdm().recordEviction(1, 3, 60);
    meta.qacAtInsert[info.slot] = 3;
    meta.qacAtInsert[info.m1Slot] = 3;
    meta.bump(info.m1Slot, 2); // busy incumbent
    EXPECT_EQ(pol->onM2Access(info), policy::Decision::Swap);
}

TEST_F(ProfessFixture, ServedForwardsToRsm)
{
    info.fromM1 = true;
    info.region = 0; // program 0's private region
    for (int i = 0; i < 10; ++i)
        pol->onServed(info);
    EXPECT_EQ(pol->rsm().periods(0), 1u);
}

TEST_F(ProfessFixture, SwapCompleteForwardsToRsm)
{
    pol->onSwapComplete(0, 2, 0, 0, 1, false);
    for (int i = 0; i < 10; ++i)
        pol->onServed(info);
    // One non-self swap recorded: SF_B(0) = 2 (alpha = 1).
    EXPECT_NEAR(pol->rsm().sfB(0), 2.0, 1e-9);
}

TEST(RsmGuided, WrapsInnerPolicy)
{
    Rsm::Params rp;
    rp.numPrograms = 2;
    rp.numRegions = 32;
    rp.sampleRequests = 10;
    rp.alpha = 1.0;
    RsmGuidedPolicy pol(std::make_unique<policy::NeverPolicy>(), rp);
    EXPECT_STREQ(pol.name(), "rsm-never");

    hybrid::StcMeta meta{};
    std::memset(meta.ac, 0, sizeof(meta.ac));
    policy::AccessInfo info{};
    info.accessor = 0;
    info.m1Owner = 1;
    info.region = 10;
    info.meta = &meta;

    // Equal factors: inner policy (never) decides.
    EXPECT_EQ(pol.onM2Access(info), policy::Decision::NoSwap);

    // Make program 0 suffer: SF_A and SF_B up.
    for (int i = 0; i < 3; ++i)
        pol.rsm().onSwap(0, invalidProgram, false);
    for (int i = 0; i < 2; ++i)
        pol.rsm().onServed(0, 0, true);
    for (int i = 0; i < 8; ++i)
        pol.rsm().onServed(0, 10, false);
    for (int i = 0; i < 2; ++i)
        pol.rsm().onServed(1, 1, true);
    for (int i = 0; i < 8; ++i)
        pol.rsm().onServed(1, 10, i < 6);
    // Case 1 now forces the swap despite the inner "never".
    EXPECT_EQ(pol.onM2Access(info), policy::Decision::Swap);
}
