/**
 * @file
 * Tests for the Table 8 timing parameters, the analytic swap
 * latency, and the min_benefit derivation (Sec. 4.1).
 */

#include <gtest/gtest.h>

#include "mem/timing.hh"
#include "sim/system.hh"

using namespace profess;
using namespace profess::mem;

TEST(Timing, NsConversion)
{
    // 1 MC cycle = 1.25 ns at 0.8 GHz.
    EXPECT_EQ(nsToCycles(1.25), 1u);
    EXPECT_EQ(nsToCycles(13.75), 11u);
    EXPECT_EQ(nsToCycles(137.50), 110u);
    EXPECT_EQ(nsToCycles(15.0), 12u);
    EXPECT_EQ(nsToCycles(275.0), 220u);
    EXPECT_EQ(nsToCycles(0.0), 0u);
    // Rounds up.
    EXPECT_EQ(nsToCycles(1.3), 2u);
}

TEST(Timing, M1MatchesTable8)
{
    TimingParams m1 = m1Timing();
    EXPECT_EQ(m1.tRCD, 11u);
    EXPECT_EQ(m1.tRP, 11u);
    EXPECT_EQ(m1.tCL, 11u);
    EXPECT_EQ(m1.tWR, 12u);
    EXPECT_EQ(m1.tBurst, 4u);
    EXPECT_GT(m1.tREFI, 0u); // DRAM refreshes
    EXPECT_FALSE(m1.writeRecoveryPerAccess);
}

TEST(Timing, M2MatchesTable8)
{
    TimingParams m1 = m1Timing();
    TimingParams m2 = m2Timing();
    // tRCD_M2 = 10 x tRCD_M1 (Table 8).
    EXPECT_EQ(m2.tRCD, 110u);
    // tWR_M2 = 2 x tRCD_M2 (Sec. 4.1).
    EXPECT_EQ(m2.tWR, 220u);
    // Other column timings identical.
    EXPECT_EQ(m2.tCL, m1.tCL);
    EXPECT_EQ(m2.tRP, m1.tRP);
    EXPECT_EQ(m2.tBurst, m1.tBurst);
    // tRAS adjusted, no refresh, per-write recovery (NVM).
    EXPECT_GT(m2.tRAS, m1.tRAS);
    EXPECT_EQ(m2.tREFI, 0u);
    EXPECT_TRUE(m2.writeRecoveryPerAccess);
}

TEST(Timing, M2WriteScale)
{
    TimingParams half = m2Timing(0.5);
    TimingParams dbl = m2Timing(2.0);
    EXPECT_EQ(half.tWR, 110u);
    EXPECT_EQ(dbl.tWR, 440u);
    // Only tWR changes.
    EXPECT_EQ(half.tRCD, m2Timing().tRCD);
}

TEST(Timing, WithWriteRecovery)
{
    TimingParams p = m1Timing().withWriteRecovery(99);
    EXPECT_EQ(p.tWR, 99u);
    EXPECT_EQ(p.tRCD, m1Timing().tRCD);
}

TEST(SwapLatency, MatchesPaperAnalytic)
{
    // Sec. 4.1: the analytic 2-KiB swap latency is 796.25 ns; our
    // overlap model must land within 5%.
    Cycles c = swapLatencyCycles(m1Timing(), m2Timing(), 2048);
    double ns = static_cast<double>(c) / mcCyclesPerNs;
    EXPECT_NEAR(ns, 796.25, 0.05 * 796.25);
}

TEST(SwapLatency, ScalesWithBlockSize)
{
    Cycles c2k = swapLatencyCycles(m1Timing(), m2Timing(), 2048);
    Cycles c4k = swapLatencyCycles(m1Timing(), m2Timing(), 4096);
    Cycles c64 = swapLatencyCycles(m1Timing(), m2Timing(), 64);
    EXPECT_GT(c4k, c2k);
    EXPECT_LT(c64, c2k);
    // 4-KiB swap moves twice the bursts but shares the fixed
    // activation and recovery parts.
    EXPECT_LT(c4k, 2 * c2k);
}

TEST(SwapLatency, GrowsWithWriteRecovery)
{
    Cycles base = swapLatencyCycles(m1Timing(), m2Timing(), 2048);
    Cycles dbl = swapLatencyCycles(m1Timing(), m2Timing(2.0), 2048);
    EXPECT_EQ(dbl, base + 220);
}

TEST(MinBenefit, MatchesPaperK)
{
    // Sec. 4.1 derives K = 7 and rounds up to 8.
    unsigned k =
        sim::deriveMinBenefit(m1Timing(), m2Timing(), 2048);
    EXPECT_EQ(k, 8u);
}

TEST(MinBenefit, GrowsWithSwapCost)
{
    unsigned k8 =
        sim::deriveMinBenefit(m1Timing(), m2Timing(), 2048);
    unsigned k_dbl =
        sim::deriveMinBenefit(m1Timing(), m2Timing(2.0), 2048);
    EXPECT_GT(k_dbl, k8);
}
