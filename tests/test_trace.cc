/**
 * @file
 * Tests for the workload substrate: address patterns, the synthetic
 * generator's MPKI/write-fraction calibration, Table 9 profiles, and
 * trace-file round trips.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>

#include "trace/patterns.hh"
#include "trace/spec_profiles.hh"
#include "trace/synthetic.hh"
#include "trace/trace_file.hh"

using namespace profess;
using namespace profess::trace;

namespace
{

constexpr std::uint64_t fp = 1 * MiB;

} // anonymous namespace

TEST(Patterns, SequentialWraps)
{
    SequentialPattern p(4 * lineBytes);
    Rng rng(1);
    EXPECT_EQ(p.next(rng), 0u);
    EXPECT_EQ(p.next(rng), 64u);
    EXPECT_EQ(p.next(rng), 128u);
    EXPECT_EQ(p.next(rng), 192u);
    EXPECT_EQ(p.next(rng), 0u);
}

TEST(Patterns, StridedCoversAllLines)
{
    StridedPattern p(16 * lineBytes, 4 * lineBytes);
    Rng rng(1);
    std::set<Addr> seen;
    for (int i = 0; i < 16; ++i)
        seen.insert(p.next(rng));
    EXPECT_EQ(seen.size(), 16u);
}

TEST(Patterns, HotspotSkewed)
{
    HotspotPattern p(fp, 1.0);
    Rng rng(2);
    std::map<std::uint64_t, unsigned> page_counts;
    for (int i = 0; i < 20000; ++i)
        ++page_counts[p.next(rng) / (4 * KiB)];
    unsigned max_count = 0;
    for (auto &kv : page_counts)
        max_count = std::max(max_count, kv.second);
    // Uniform would give ~78 per page (256 pages); Zipf(1.0) must
    // concentrate far more on the hottest page.
    EXPECT_GT(max_count, 500u);
}

TEST(Patterns, HotspotRebuildMovesHotPage)
{
    HotspotPattern p(fp, 1.2);
    Rng rng(3);
    auto hottest = [&]() {
        std::map<std::uint64_t, unsigned> counts;
        for (int i = 0; i < 5000; ++i)
            ++counts[p.next(rng) / (4 * KiB)];
        std::uint64_t best = 0;
        unsigned best_n = 0;
        for (auto &kv : counts) {
            if (kv.second > best_n) {
                best_n = kv.second;
                best = kv.first;
            }
        }
        return best;
    };
    std::uint64_t before = hottest();
    // A rebuild re-permutes ranks; the hot page should move (the
    // chance it stays is ~1/256).
    p.rebuild(rng);
    std::uint64_t after = hottest();
    EXPECT_NE(before, after);
}

TEST(Patterns, UniformInBounds)
{
    UniformPattern p(fp);
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        Addr a = p.next(rng);
        EXPECT_LT(a, fp);
        EXPECT_EQ(a % lineBytes, 0u);
    }
}

TEST(Patterns, ClusteredDwellsInWindow)
{
    ClusteredPattern p(fp, 4 * KiB, 8.0);
    Rng rng(5);
    // Consecutive accesses mostly share the 4-KiB window.
    unsigned same_window = 0;
    Addr prev = p.next(rng);
    for (int i = 0; i < 5000; ++i) {
        Addr a = p.next(rng);
        same_window += a / (4 * KiB) == prev / (4 * KiB);
        prev = a;
    }
    // Mean dwell 8 => ~7/8 of transitions stay, minus window reuse
    // noise.
    EXPECT_GT(same_window, 5000u * 6 / 10);
}

TEST(Patterns, MultiStreamInterleavesSequentialRuns)
{
    MultiStreamPattern p(fp, 4);
    Rng rng(6);
    // Track per-64B deltas: within a stream they are +64.
    std::map<Addr, int> seen;
    for (int i = 0; i < 4000; ++i)
        ++seen[p.next(rng)];
    // Streams advance without repeating (footprint >> samples).
    for (auto &kv : seen)
        EXPECT_LE(kv.second, 2);
}

TEST(Patterns, MixedRespectsBounds)
{
    MixedPattern mix;
    mix.add(1.0, std::make_unique<SequentialPattern>(fp));
    mix.add(2.0, std::make_unique<UniformPattern>(fp));
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(mix.next(rng), fp);
}

TEST(Synthetic, MpkiCalibrated)
{
    SyntheticParams sp;
    sp.footprintBytes = fp;
    sp.mpki = 25.0;
    sp.writeFraction = 0.0;
    sp.burstFraction = 0.3;
    sp.seed = 9;
    SyntheticTraceSource src(sp,
                             std::make_unique<UniformPattern>(fp));
    MemAccess a;
    std::uint64_t instr = 0, accesses = 0;
    for (int i = 0; i < 50000; ++i) {
        ASSERT_TRUE(src.next(a));
        instr += a.instGap + 1;
        ++accesses;
    }
    double mpki = 1000.0 * static_cast<double>(accesses) /
                  static_cast<double>(instr);
    EXPECT_NEAR(mpki, 25.0, 1.5);
}

TEST(Synthetic, WriteFractionCalibrated)
{
    SyntheticParams sp;
    sp.footprintBytes = fp;
    sp.mpki = 20.0;
    sp.writeFraction = 0.35;
    sp.seed = 10;
    SyntheticTraceSource src(sp,
                             std::make_unique<UniformPattern>(fp));
    MemAccess a;
    std::uint64_t writes = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        ASSERT_TRUE(src.next(a));
        writes += a.isWrite;
    }
    EXPECT_NEAR(static_cast<double>(writes) / n, 0.35, 0.02);
}

TEST(Synthetic, ResetReproduces)
{
    SyntheticParams sp;
    sp.footprintBytes = fp;
    sp.mpki = 20.0;
    sp.seed = 11;
    SyntheticTraceSource src(sp,
                             std::make_unique<UniformPattern>(fp));
    std::vector<MemAccess> first(100);
    for (auto &a : first)
        ASSERT_TRUE(src.next(a));
    src.reset();
    for (const auto &want : first) {
        MemAccess got;
        ASSERT_TRUE(src.next(got));
        EXPECT_EQ(got.vaddr, want.vaddr);
        EXPECT_EQ(got.isWrite, want.isWrite);
        EXPECT_EQ(got.instGap, want.instGap);
    }
}

class ProfileSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ProfileSweep, BuildsAndStaysInFootprint)
{
    const char *name = GetParam();
    const BenchmarkProfile *p = findProfile(name);
    ASSERT_NE(p, nullptr);
    auto src = makeSpecSource(name, defaultScale, 13);
    std::uint64_t footprint = src->footprintBytes();
    // Footprint ~ Table 9 value / 100, in whole pages.
    double expect =
        p->footprintMB * defaultScale * static_cast<double>(MiB);
    EXPECT_NEAR(static_cast<double>(footprint), expect,
                static_cast<double>(4 * KiB) + 1);

    MemAccess a;
    std::uint64_t instr = 0, n = 20000;
    for (std::uint64_t i = 0; i < n; ++i) {
        ASSERT_TRUE(src->next(a));
        EXPECT_LT(a.vaddr, footprint);
        instr += a.instGap + 1;
    }
    double mpki =
        1000.0 * static_cast<double>(n) / static_cast<double>(instr);
    EXPECT_NEAR(mpki, p->mpki, p->mpki * 0.10) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Table9, ProfileSweep,
    ::testing::Values("bwaves", "GemsFDTD", "lbm", "leslie3d",
                      "libquantum", "mcf", "milc", "omnetpp",
                      "soplex", "zeusmp"));

TEST(Profiles, UnknownNameIsNull)
{
    EXPECT_EQ(findProfile("nosuch"), nullptr);
}

TEST(TraceFile, RoundTrip)
{
    std::string path = ::testing::TempDir() + "/pf_roundtrip.trace";
    SyntheticParams sp;
    sp.footprintBytes = fp;
    sp.mpki = 20.0;
    sp.seed = 14;
    SyntheticTraceSource src(sp,
                             std::make_unique<UniformPattern>(fp));
    std::vector<MemAccess> ref(500);
    {
        TraceWriter w(path, fp);
        for (auto &a : ref) {
            ASSERT_TRUE(src.next(a));
            w.append(a);
        }
        w.close();
    }
    FileTraceSource file(path);
    EXPECT_EQ(file.count(), 500u);
    EXPECT_EQ(file.footprintBytes(), fp);
    for (const auto &want : ref) {
        MemAccess got;
        ASSERT_TRUE(file.next(got));
        EXPECT_EQ(got.vaddr, want.vaddr);
        EXPECT_EQ(got.isWrite, want.isWrite);
        EXPECT_EQ(got.instGap, want.instGap);
    }
    MemAccess end;
    EXPECT_FALSE(file.next(end));
    // reset() rewinds.
    file.reset();
    MemAccess again;
    ASSERT_TRUE(file.next(again));
    EXPECT_EQ(again.vaddr, ref[0].vaddr);
    std::remove(path.c_str());
}

TEST(TraceFile, RecordHelper)
{
    std::string path = ::testing::TempDir() + "/pf_record.trace";
    auto src = makeSpecSource("soplex", defaultScale, 15);
    EXPECT_EQ(recordTrace(*src, 300, path), 300u);
    FileTraceSource file(path);
    EXPECT_EQ(file.count(), 300u);
    std::remove(path.c_str());
}
