/**
 * @file
 * Tests for the set-associative cache model and the L1/L2/L3
 * hierarchy (Table 8).
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "common/rng.hh"

using namespace profess;
using namespace profess::cache;

namespace
{

Cache::Params
tiny(unsigned ways = 2, std::uint64_t capacity = 512)
{
    Cache::Params p;
    p.name = "tiny";
    p.capacityBytes = capacity; // 8 lines
    p.ways = ways;
    p.lineBytes = 64;
    p.hitLatency = 2;
    return p;
}

} // anonymous namespace

TEST(Cache, MissThenHit)
{
    Cache c(tiny());
    EXPECT_FALSE(c.access(0, false).hit);
    EXPECT_TRUE(c.access(0, false).hit);
    EXPECT_TRUE(c.access(63, false).hit); // same line
    EXPECT_FALSE(c.access(64, false).hit);
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruWithinSet)
{
    // 4 sets x 2 ways; lines mapping to set 0: 0, 4, 8, ... (x64).
    Cache c(tiny());
    c.access(0 * 64, false);
    c.access(4 * 64, false);
    c.access(0 * 64, false);     // 4*64 now LRU
    c.access(8 * 64, false);     // evicts 4*64
    EXPECT_TRUE(c.probe(0 * 64));
    EXPECT_FALSE(c.probe(4 * 64));
    EXPECT_TRUE(c.probe(8 * 64));
}

TEST(Cache, DirtyEvictionProducesWriteback)
{
    Cache c(tiny());
    c.access(0, true); // dirty
    c.access(4 * 64, false);
    Cache::Outcome o = c.access(8 * 64, false); // evicts line 0
    EXPECT_TRUE(o.writeback);
    EXPECT_EQ(o.writebackAddr, 0u);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, CleanEvictionNoWriteback)
{
    Cache c(tiny());
    c.access(0, false);
    c.access(4 * 64, false);
    Cache::Outcome o = c.access(8 * 64, false);
    EXPECT_FALSE(o.writeback);
}

TEST(Cache, WriteHitMarksDirty)
{
    Cache c(tiny());
    c.access(0, false);
    c.access(0, true); // hit, now dirty
    c.access(4 * 64, false);
    Cache::Outcome o = c.access(8 * 64, false);
    EXPECT_TRUE(o.writeback);
}

TEST(Cache, FlushDropsEverything)
{
    Cache c(tiny());
    c.access(0, true);
    c.flush();
    EXPECT_FALSE(c.probe(0));
    EXPECT_FALSE(c.access(0, false).hit);
}

TEST(Cache, SequentialFitsInCapacity)
{
    Cache c(tiny(4, 4096)); // 64 lines
    for (Addr a = 0; a < 4096; a += 64)
        c.access(a, false);
    // Second sweep entirely hits.
    for (Addr a = 0; a < 4096; a += 64)
        EXPECT_TRUE(c.access(a, false).hit);
    EXPECT_NEAR(c.hitRate(), 0.5, 1e-12);
}

class CacheSizeSweep
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CacheSizeSweep, HitRateGrowsWithSize)
{
    // A Zipf-ish reuse stream: larger caches must not hit less.
    std::uint64_t capacity = GetParam();
    Cache c(tiny(4, capacity));
    Rng rng(99);
    const std::uint64_t footprint_lines = 512;
    std::uint64_t hits = 0, n = 20000;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t line = rng.below64(footprint_lines);
        line = line * line / footprint_lines; // skew toward 0
        hits += c.access(line * 64, false).hit;
    }
    double rate =
        static_cast<double>(hits) / static_cast<double>(n);
    // Stash for monotonicity check across instances.
    static double last_rate = -1.0;
    static std::uint64_t last_cap = 0;
    if (capacity > last_cap && last_rate >= 0.0)
        EXPECT_GE(rate + 0.02, last_rate);
    last_rate = rate;
    last_cap = capacity;
}

INSTANTIATE_TEST_SUITE_P(Sizes, CacheSizeSweep,
                         ::testing::Values(1 * KiB, 2 * KiB, 4 * KiB,
                                           8 * KiB, 16 * KiB));

TEST(Hierarchy, L1HitStopsThere)
{
    Hierarchy h{Hierarchy::Params{}};
    Hierarchy::Outcome first = h.access(0, false);
    EXPECT_TRUE(first.l3Miss);
    Hierarchy::Outcome second = h.access(0, false);
    EXPECT_FALSE(second.l3Miss);
    EXPECT_EQ(second.latency, h.l1().hitLatency());
}

TEST(Hierarchy, MissLatencyAccumulates)
{
    Hierarchy h{Hierarchy::Params{}};
    Hierarchy::Outcome o = h.access(0, false);
    EXPECT_EQ(o.latency, h.l1().hitLatency() + h.l2().hitLatency() +
                             h.l3().hitLatency());
}

TEST(Hierarchy, DirtyL3VictimsReachMemory)
{
    // Small hierarchy to force L3 evictions quickly.
    Hierarchy::Params p;
    p.l1 = {"L1", 512, 2, 64, 2};
    p.l2 = {"L2", 1024, 2, 64, 8};
    p.l3 = {"L3", 2048, 2, 64, 20};
    Hierarchy h(p);
    std::uint64_t wbs = 0;
    for (Addr a = 0; a < 64 * KiB; a += 64)
        wbs += h.access(a, true).memWritebacks.size();
    EXPECT_GT(wbs, 0u);
}

TEST(Hierarchy, FiltersMpki)
{
    // A stream fitting in L3 must produce no misses after warmup.
    Hierarchy h{Hierarchy::Params{}};
    std::uint64_t misses = 0;
    for (int pass = 0; pass < 2; ++pass) {
        for (Addr a = 0; a < 1 * MiB; a += 64) {
            bool miss = h.access(a, false).l3Miss;
            if (pass == 1)
                misses += miss;
        }
    }
    EXPECT_EQ(misses, 0u);
}
