/**
 * @file
 * Randomized end-to-end invariant tests ("property tests" at system
 * scope): whatever the policy and the access stream, the simulator
 * must conserve requests, keep the swap-group tables permutations,
 * keep statistics consistent, and stay deterministic.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/report.hh"
#include "sim/system.hh"
#include "trace/spec_profiles.hh"

using namespace profess;
using namespace profess::sim;

namespace
{

SystemConfig
tinyConfig()
{
    SystemConfig c = SystemConfig::quadCore();
    c.core.instrQuota = 60000;
    c.core.warmupInstr = 20000;
    return c;
}

std::vector<std::unique_ptr<trace::TraceSource>>
fourSources(std::uint64_t seed)
{
    std::vector<std::unique_ptr<trace::TraceSource>> v;
    const char *names[] = {"mcf", "lbm", "omnetpp", "zeusmp"};
    for (unsigned i = 0; i < 4; ++i) {
        v.push_back(trace::makeSpecSource(
            names[i], trace::defaultScale, seed + i * 7));
    }
    return v;
}

} // anonymous namespace

class PolicyInvariants : public ::testing::TestWithParam<const char *>
{
};

TEST_P(PolicyInvariants, EndToEnd)
{
    System sys(tinyConfig(), GetParam(), fourSources(3));
    ASSERT_TRUE(sys.run());

    // 1. Request conservation: every core-issued access is served.
    std::uint64_t issued = 0;
    for (unsigned i = 0; i < sys.numCores(); ++i)
        issued += sys.core(i).memReads() + sys.core(i).memWrites();
    std::uint64_t served = 0;
    for (unsigned p = 0; p < sys.numPrograms(); ++p) {
        const auto &ps =
            sys.controller().programStats(static_cast<ProgramId>(p));
        served += ps.served;
        EXPECT_LE(ps.servedFromM1, ps.served);
        EXPECT_EQ(ps.reads + ps.writes, ps.served);
    }
    // Stats were reset at the warm-up boundary, so served counts
    // only the measurement window.
    EXPECT_LE(served, issued);
    EXPECT_GT(served, issued / 4);

    // 2. Every swap group's ATB stays a permutation, and QAC values
    //    stay within 2 bits.
    const hybrid::SwapGroupTable &st = sys.controller().table();
    const hybrid::HybridLayout &l = sys.controller().layout();
    for (std::uint64_t g = 0; g < l.numGroups; g += 13) {
        std::set<unsigned> locs;
        for (unsigned s = 0; s < l.slotsPerGroup; ++s) {
            unsigned loc = st.locationOf(g, s);
            ASSERT_LT(loc, l.slotsPerGroup);
            EXPECT_TRUE(locs.insert(loc).second)
                << "group " << g << " duplicated location";
            EXPECT_LT(st.entry(g).qac[s], 4);
        }
    }

    // 3. Channel-level bookkeeping: row hits + misses equals the
    //    device accesses; demand counters cover the served demand.
    std::uint64_t row_ops =
        sys.memory().totalCounter("row_hits") +
        sys.memory().totalCounter("row_misses");
    std::uint64_t device_accesses =
        sys.memory().totalCounter("m1_accesses") +
        sys.memory().totalCounter("m2_accesses");
    EXPECT_EQ(row_ops, device_accesses);
    std::uint64_t demand =
        sys.memory().totalCounter("demand_reads") +
        sys.memory().totalCounter("demand_writes");
    EXPECT_GE(demand, served * 9 / 10); // completion lag tolerance

    // 4. Time and energy are positive and finite.
    EXPECT_GT(sys.measuredSeconds(), 0.0);
    double joules =
        sys.memory().totalJoules(sys.measuredSeconds());
    EXPECT_GT(joules, 0.0);
    EXPECT_LT(joules, 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyInvariants,
                         ::testing::Values("never", "always",
                                           "cameo", "silcfm", "pom",
                                           "mempod", "mdm",
                                           "profess", "rsm-pom",
                                           "oscoarse"));

class SeedSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(SeedSweep, DeterministicAndSane)
{
    std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
    auto once = [&]() {
        System sys(tinyConfig(), "profess", fourSources(seed));
        sys.run();
        std::vector<double> ipc;
        for (unsigned i = 0; i < sys.numCores(); ++i)
            ipc.push_back(sys.core(i).ipcAtQuota());
        return ipc;
    };
    std::vector<double> a = once();
    std::vector<double> b = once();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i], b[i]);
        EXPECT_GT(a[i], 0.0);
        EXPECT_LE(a[i], 4.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Range(1, 6));

TEST(CsvReport, WritesHeaderAndRows)
{
    std::string path = ::testing::TempDir() + "/pf_report.csv";
    std::remove(path.c_str());
    {
        CsvReport csv(path, CsvReport::runHeader());
        ASSERT_TRUE(csv.enabled());
        RunResult r;
        r.policy = "pom";
        r.ipc.push_back(0.5);
        r.servedTotal = 100;
        csv.runRow("fig05", "soplex", r);
    }
    {
        // Appending must not duplicate the header.
        CsvReport csv(path, CsvReport::runHeader());
        RunResult r;
        r.policy = "mdm";
        r.ipc.push_back(0.6);
        csv.runRow("fig05", "soplex", r);
    }
    std::FILE *fp = std::fopen(path.c_str(), "r");
    ASSERT_NE(fp, nullptr);
    char line[512];
    int lines = 0, headers = 0;
    while (std::fgets(line, sizeof(line), fp)) {
        ++lines;
        if (std::string(line).find("experiment,") == 0)
            ++headers;
    }
    std::fclose(fp);
    EXPECT_EQ(lines, 3);
    EXPECT_EQ(headers, 1);
    std::remove(path.c_str());
}

TEST(CsvReport, DisabledWhenPathEmpty)
{
    CsvReport csv("", CsvReport::runHeader());
    EXPECT_FALSE(csv.enabled());
    csv.row("should not crash");
}
