/**
 * @file
 * Randomized end-to-end invariant tests ("property tests" at system
 * scope): whatever the policy and the access stream, the simulator
 * must conserve requests, keep the swap-group tables permutations,
 * keep statistics consistent, and stay deterministic.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "common/invariant.hh"
#include "core/profess.hh"
#include "sim/report.hh"
#include "sim/system.hh"
#include "trace/spec_profiles.hh"

using namespace profess;
using namespace profess::sim;

namespace
{

SystemConfig
tinyConfig()
{
    SystemConfig c = SystemConfig::quadCore();
    c.core.instrQuota = 60000;
    c.core.warmupInstr = 20000;
    return c;
}

std::vector<std::unique_ptr<trace::TraceSource>>
fourSources(std::uint64_t seed)
{
    std::vector<std::unique_ptr<trace::TraceSource>> v;
    const char *names[] = {"mcf", "lbm", "omnetpp", "zeusmp"};
    for (unsigned i = 0; i < 4; ++i) {
        v.push_back(trace::makeSpecSource(
            names[i], trace::defaultScale, seed + i * 7));
    }
    return v;
}

} // anonymous namespace

class PolicyInvariants : public ::testing::TestWithParam<const char *>
{
};

TEST_P(PolicyInvariants, EndToEnd)
{
    System sys(tinyConfig(), GetParam(), fourSources(3));
    ASSERT_TRUE(sys.run());

    // 1. Request conservation: every core-issued access is served.
    std::uint64_t issued = 0;
    for (unsigned i = 0; i < sys.numCores(); ++i)
        issued += sys.core(i).memReads() + sys.core(i).memWrites();
    std::uint64_t served = 0;
    for (unsigned p = 0; p < sys.numPrograms(); ++p) {
        const auto &ps =
            sys.controller().programStats(static_cast<ProgramId>(p));
        served += ps.served;
        EXPECT_LE(ps.servedFromM1, ps.served);
        EXPECT_EQ(ps.reads + ps.writes, ps.served);
    }
    // Stats were reset at the warm-up boundary, so served counts
    // only the measurement window.
    EXPECT_LE(served, issued);
    EXPECT_GT(served, issued / 4);

    // 2. Every swap group's ATB stays a permutation, and QAC values
    //    stay within 2 bits.
    const hybrid::SwapGroupTable &st = sys.controller().table();
    const hybrid::HybridLayout &l = sys.controller().layout();
    for (std::uint64_t g = 0; g < l.numGroups; g += 13) {
        std::set<unsigned> locs;
        for (unsigned s = 0; s < l.slotsPerGroup; ++s) {
            unsigned loc = st.locationOf(g, s);
            ASSERT_LT(loc, l.slotsPerGroup);
            EXPECT_TRUE(locs.insert(loc).second)
                << "group " << g << " duplicated location";
            EXPECT_LT(st.entry(g).qac[s], 4);
        }
    }

    // 3. Channel-level bookkeeping: row hits + misses equals the
    //    device accesses; demand counters cover the served demand.
    std::uint64_t row_ops =
        sys.memory().totalCounter("row_hits") +
        sys.memory().totalCounter("row_misses");
    std::uint64_t device_accesses =
        sys.memory().totalCounter("m1_accesses") +
        sys.memory().totalCounter("m2_accesses");
    EXPECT_EQ(row_ops, device_accesses);
    std::uint64_t demand =
        sys.memory().totalCounter("demand_reads") +
        sys.memory().totalCounter("demand_writes");
    EXPECT_GE(demand, served * 9 / 10); // completion lag tolerance

    // 4. Time and energy are positive and finite.
    EXPECT_GT(sys.measuredSeconds(), 0.0);
    double joules =
        sys.memory().totalJoules(sys.measuredSeconds());
    EXPECT_GT(joules, 0.0);
    EXPECT_LT(joules, 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyInvariants,
                         ::testing::Values("never", "always",
                                           "cameo", "silcfm", "pom",
                                           "mempod", "mdm",
                                           "profess", "rsm-pom",
                                           "oscoarse"));

TEST(AuditSubsystem, SystemAuditRunsEverywhere)
{
    // The audit methods are compiled into every build type (only
    // the hot-path call sites are PROFESS_AUDIT-gated), so a full
    // post-run audit must be callable here and must execute a
    // substantial number of checks.
    System sys(tinyConfig(), "profess", fourSources(11));
    ASSERT_TRUE(sys.run());
    std::uint64_t before = audit::checksRun();
    sys.auditInvariants();
    EXPECT_GT(audit::checksRun(), before + 1000);
}

namespace
{

/**
 * Drive `pol`'s RSM so program `p` ends a smoothing period with
 * roughly the intended slowdown factors (mirrors the fixture in
 * test_profess.cc; requires rsm.sampleRequests == 10, alpha == 1).
 */
void
driveFactors(core::ProfessPolicy &pol, ProgramId p, double sf_a,
             double sf_b)
{
    core::Rsm &rsm = pol.rsm();
    int shared_m1 = std::max(0, static_cast<int>(8.0 / sf_a) - 1);
    int swaps = static_cast<int>(sf_b) - 1;
    for (int i = 0; i < swaps; ++i)
        rsm.onSwap(p, invalidProgram, false);
    for (int i = 0; i < 2; ++i)
        rsm.onServed(p, static_cast<unsigned>(p), true);
    for (int i = 0; i < 8; ++i)
        rsm.onServed(p, 10, i < shared_m1);
}

} // anonymous namespace

TEST(AuditSubsystem, ForcedVacantSwapsKeepStIntegrity)
{
    // Table 7 Case 1 treats the incumbent M1 block "as if vacant":
    // MDM sees no displaced-block cost, so sustained Case-1
    // guidance produces the most aggressive swap pattern the
    // controller can emit.  Force that pattern directly into a
    // swap-group table and audit after every swap.
    hybrid::HybridLayout layout =
        hybrid::HybridLayout::build(1 * MiB, 8 * MiB, 2, 32, 9);
    os::PageAllocator alloc(layout.numGroups, 9, 32, 2, 7);
    core::ProfessPolicy::Params p;
    p.mdm.numPrograms = 2;
    p.rsm.numPrograms = 2;
    p.rsm.numRegions = 32;
    p.rsm.sampleRequests = 10;
    p.rsm.alpha = 1.0;
    core::ProfessPolicy pol(layout, alloc, p);
    driveFactors(pol, 0, 4.0, 4.0); // accessor suffers
    driveFactors(pol, 1, 1.0, 1.0);

    hybrid::StcMeta meta{};
    std::memset(meta.ac, 0, sizeof(meta.ac));
    policy::AccessInfo info{};
    info.slot = 2;
    info.m1Slot = 0;
    info.region = 10;
    info.accessor = 0;
    info.m1Owner = 1;
    info.meta = &meta;
    ASSERT_EQ(pol.classify(info),
              core::ProfessPolicy::GuidanceCase::Case1);

    hybrid::SwapGroupTable st(layout);
    std::uint64_t before = audit::checksRun();
    for (std::uint64_t g = 0; g < 32; ++g) {
        for (unsigned s = 1; s < layout.slotsPerGroup; ++s) {
            st.swapSlots(g, st.slotInM1(g), s);
            st.auditGroup(g);
        }
    }
    st.auditInvariants();
    EXPECT_GT(audit::checksRun(), before);
}

class SeedSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(SeedSweep, DeterministicAndSane)
{
    std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
    auto once = [&]() {
        System sys(tinyConfig(), "profess", fourSources(seed));
        sys.run();
        std::vector<double> ipc;
        for (unsigned i = 0; i < sys.numCores(); ++i)
            ipc.push_back(sys.core(i).ipcAtQuota());
        return ipc;
    };
    std::vector<double> a = once();
    std::vector<double> b = once();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i], b[i]);
        EXPECT_GT(a[i], 0.0);
        EXPECT_LE(a[i], 4.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Range(1, 6));

TEST(CsvReport, WritesHeaderAndRows)
{
    std::string path = ::testing::TempDir() + "/pf_report.csv";
    std::remove(path.c_str());
    {
        CsvReport csv(path, CsvReport::runHeader());
        ASSERT_TRUE(csv.enabled());
        RunResult r;
        r.policy = "pom";
        r.ipc.push_back(0.5);
        r.servedTotal = 100;
        csv.runRow("fig05", "soplex", r);
    }
    {
        // Appending must not duplicate the header.
        CsvReport csv(path, CsvReport::runHeader());
        RunResult r;
        r.policy = "mdm";
        r.ipc.push_back(0.6);
        csv.runRow("fig05", "soplex", r);
    }
    std::FILE *fp = std::fopen(path.c_str(), "r");
    ASSERT_NE(fp, nullptr);
    char line[512];
    int lines = 0, headers = 0;
    while (std::fgets(line, sizeof(line), fp)) {
        ++lines;
        if (std::string(line).find("experiment,") == 0)
            ++headers;
    }
    std::fclose(fp);
    EXPECT_EQ(lines, 3);
    EXPECT_EQ(headers, 1);
    std::remove(path.c_str());
}

TEST(CsvReport, DisabledWhenPathEmpty)
{
    CsvReport csv("", CsvReport::runHeader());
    EXPECT_FALSE(csv.enabled());
    csv.row("should not crash");
}
