/**
 * @file
 * Integration tests for the hybrid memory controller: translation
 * via the STC, ST fill/writeback traffic, swap execution and
 * waiters, periodic hooks, statistics folding, per-program stats.
 */

#include <gtest/gtest.h>

#include <memory>

#include "hybrid/hybrid_controller.hh"
#include "policy/cameo.hh"
#include "policy/static_policies.hh"

using namespace profess;
using namespace profess::hybrid;

namespace
{

struct ControllerFixture : public ::testing::Test
{
    EventQueue eq;
    HybridLayout layout =
        HybridLayout::build(1 * MiB, 8 * MiB, 2, 32, 9);
    std::unique_ptr<mem::MemorySystem> memory;
    std::unique_ptr<os::PageAllocator> alloc;
    std::unique_ptr<policy::MigrationPolicy> policy;
    std::unique_ptr<HybridController> ctrl;

    void
    build(std::unique_ptr<policy::MigrationPolicy> pol,
          Cycles fold_interval = 0)
    {
        mem::MemorySystemConfig mc;
        mc.numChannels = 2;
        mc.m1BytesPerChannel = 1 * MiB;
        mc.m2BytesPerChannel = 8 * MiB;
        memory = std::make_unique<mem::MemorySystem>(eq, mc);
        alloc = std::make_unique<os::PageAllocator>(
            layout.numGroups, layout.slotsPerGroup,
            layout.numRegions, 4, 7);
        policy = std::move(pol);
        HybridController::Params hp;
        hp.stc = StCache::Params{512, 8, 8};
        hp.numPrograms = 4;
        hp.statsFoldInterval = fold_interval;
        ctrl = std::make_unique<HybridController>(
            eq, *memory, layout, hp, *policy, *alloc);
    }

    /** Translate (program, vpage, offset) to an original address. */
    Addr
    origAddr(ProgramId p, std::uint64_t vpage, std::uint64_t off)
    {
        return alloc->translate(p, vpage) * os::pageBytes + off;
    }
};

} // anonymous namespace

TEST_F(ControllerFixture, ReadCompletes)
{
    build(std::make_unique<policy::NeverPolicy>());
    bool done = false;
    ctrl->access(0, origAddr(0, 0, 0), false,
                 [&]() { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(ctrl->servedTotal(), 1u);
    EXPECT_EQ(ctrl->programStats(0).reads, 1u);
    // First access misses the STC and fills from M1.
    EXPECT_EQ(ctrl->stats().counter("st_fills"), 1u);
    EXPECT_DOUBLE_EQ(ctrl->stcHitRate(), 0.0);
}

TEST_F(ControllerFixture, StcHitOnSecondAccess)
{
    build(std::make_unique<policy::NeverPolicy>());
    Addr a = origAddr(0, 0, 0);
    ctrl->access(0, a, false, {});
    eq.run();
    ctrl->access(0, a + 64, false, {});
    eq.run();
    EXPECT_DOUBLE_EQ(ctrl->stcHitRate(), 0.5);
    EXPECT_EQ(ctrl->stats().counter("st_fills"), 1u);
}

TEST_F(ControllerFixture, ServesFromCorrectModule)
{
    build(std::make_unique<policy::NeverPolicy>());
    // Find a vpage whose first block sits at slot 0 (M1) and one at
    // a non-zero slot (M2).
    ProgramId p = 0;
    std::uint64_t m1_page = ~0ull, m2_page = ~0ull;
    for (std::uint64_t v = 0; v < 64; ++v) {
        std::uint64_t frame = alloc->translate(p, v);
        unsigned slot = layout.slotOf(frame * 2);
        if (slot == 0 && m1_page == ~0ull)
            m1_page = v;
        if (slot != 0 && m2_page == ~0ull)
            m2_page = v;
    }
    ASSERT_NE(m2_page, ~0ull);
    ctrl->access(p, origAddr(p, m2_page, 0), false, {});
    eq.run();
    EXPECT_EQ(ctrl->programStats(p).servedFromM1, 0u);
    if (m1_page != ~0ull) {
        ctrl->access(p, origAddr(p, m1_page, 0), false, {});
        eq.run();
        EXPECT_EQ(ctrl->programStats(p).servedFromM1, 1u);
    }
}

TEST_F(ControllerFixture, CameoPromotesOnFirstTouch)
{
    build(std::make_unique<policy::CameoPolicy>(1));
    // Touch an M2-resident block; CAMEO must swap it into M1.
    ProgramId p = 0;
    std::uint64_t v = 0;
    std::uint64_t frame;
    unsigned slot;
    do {
        frame = alloc->translate(p, v++);
        slot = layout.slotOf(frame * 2);
    } while (slot == 0);
    std::uint64_t ob = frame * 2;
    std::uint64_t g = layout.groupOf(ob);
    ctrl->access(p, ob * 2048, false, {});
    eq.run();
    EXPECT_EQ(ctrl->swapCount(), 1u);
    EXPECT_EQ(ctrl->table().locationOf(g, slot), 0u);
    EXPECT_EQ(ctrl->table().slotInM1(g), slot);
    // Second access now served from M1.
    ctrl->access(p, ob * 2048 + 64, false, {});
    eq.run();
    EXPECT_EQ(ctrl->programStats(p).servedFromM1, 1u);
}

TEST_F(ControllerFixture, AccessDuringSwapWaits)
{
    build(std::make_unique<policy::CameoPolicy>(1));
    ProgramId p = 0;
    std::uint64_t v = 0;
    std::uint64_t frame;
    do {
        frame = alloc->translate(p, v++);
    } while (layout.slotOf(frame * 2) == 0);
    Addr a = frame * 2 * 2048;
    Tick first_done = 0, second_done = 0;
    ctrl->access(p, a, false, [&]() { first_done = eq.now(); });
    // Second access to the same block arrives immediately; it must
    // wait for the swap and then be served from M1.
    ctrl->access(p, a + 64, false,
                 [&]() { second_done = eq.now(); });
    eq.run();
    EXPECT_GT(second_done, first_done);
    EXPECT_EQ(ctrl->swapCount(), 1u);
    EXPECT_EQ(ctrl->programStats(p).servedFromM1, 1u);
}

TEST_F(ControllerFixture, StWritebackOnDirtyEviction)
{
    build(std::make_unique<policy::CameoPolicy>(1));
    // Generate enough distinct groups to overflow the 64-entry STC
    // (512 B); swapped groups evict dirty.
    ProgramId p = 0;
    for (std::uint64_t v = 0; v < 200; ++v) {
        std::uint64_t frame = alloc->translate(p, v);
        ctrl->access(p, frame * os::pageBytes, false, {});
    }
    eq.run();
    EXPECT_GT(ctrl->stats().counter("stc_evictions"), 0u);
    EXPECT_GT(ctrl->stats().counter("st_writebacks"), 0u);
}

TEST_F(ControllerFixture, RequestSwapApi)
{
    build(std::make_unique<policy::NeverPolicy>());
    ProgramId p = 0;
    std::uint64_t v = 0;
    std::uint64_t frame;
    do {
        frame = alloc->translate(p, v++);
    } while (layout.slotOf(frame * 2) == 0);
    std::uint64_t ob = frame * 2;
    std::uint64_t g = layout.groupOf(ob);
    unsigned slot = layout.slotOf(ob);

    // Not cached yet: refused.
    EXPECT_FALSE(ctrl->requestSwap(g, slot));
    ctrl->access(p, ob * 2048, false, {});
    eq.run();
    EXPECT_TRUE(ctrl->requestSwap(g, slot));
    eq.run();
    EXPECT_EQ(ctrl->table().slotInM1(g), slot);
    // Already in M1: refused.
    EXPECT_FALSE(ctrl->requestSwap(g, slot));
}

TEST_F(ControllerFixture, PerProgramAccounting)
{
    build(std::make_unique<policy::NeverPolicy>());
    ctrl->access(0, origAddr(0, 0, 0), false, {});
    ctrl->access(1, origAddr(1, 0, 0), true, {});
    ctrl->access(1, origAddr(1, 1, 0), false, {});
    eq.run();
    EXPECT_EQ(ctrl->programStats(0).served, 1u);
    EXPECT_EQ(ctrl->programStats(1).served, 2u);
    EXPECT_EQ(ctrl->programStats(1).writes, 1u);
    EXPECT_EQ(ctrl->servedTotal(), 3u);
}

TEST_F(ControllerFixture, ResetStatsKeepsState)
{
    build(std::make_unique<policy::CameoPolicy>(1));
    ProgramId p = 0;
    std::uint64_t v = 0;
    std::uint64_t frame;
    do {
        frame = alloc->translate(p, v++);
    } while (layout.slotOf(frame * 2) == 0);
    std::uint64_t ob = frame * 2;
    std::uint64_t g = layout.groupOf(ob);
    unsigned slot = layout.slotOf(ob);
    ctrl->access(p, ob * 2048, false, {});
    eq.run();
    ASSERT_EQ(ctrl->table().slotInM1(g), slot);
    ctrl->resetStats();
    EXPECT_EQ(ctrl->swapCount(), 0u);
    EXPECT_EQ(ctrl->servedTotal(), 0u);
    // Translations survive the reset.
    EXPECT_EQ(ctrl->table().slotInM1(g), slot);
}

TEST_F(ControllerFixture, StatsFoldFeedsPolicy)
{
    // Policy that counts eviction-style updates.
    struct CountingPolicy : public policy::NeverPolicy
    {
        unsigned evictions = 0;
        void
        onStcEvict(std::uint64_t, const StcMeta &,
                   StEntry &) override
        {
            ++evictions;
        }
    };
    auto counting = std::make_unique<CountingPolicy>();
    CountingPolicy *cp = counting.get();
    build(std::move(counting), 500);
    ctrl->startPeriodic();
    ctrl->access(0, origAddr(0, 0, 0), false, {});
    eq.runUntil(5000);
    ctrl->stopPeriodic();
    eq.run();
    // The single touched block went quiet and was folded.
    EXPECT_GE(cp->evictions, 1u);
    EXPECT_GE(ctrl->stats().counter("stats_folds"), 1u);
}

TEST_F(ControllerFixture, PeriodicPolicyHookRuns)
{
    struct PeriodicPolicy : public policy::NeverPolicy
    {
        unsigned ticks = 0;
        Cycles periodicInterval() const override { return 100; }
        void onPeriodic() override { ++ticks; }
    };
    auto pp = std::make_unique<PeriodicPolicy>();
    PeriodicPolicy *raw = pp.get();
    build(std::move(pp));
    ctrl->startPeriodic();
    eq.runUntil(1050);
    ctrl->stopPeriodic();
    eq.run();
    EXPECT_GE(raw->ticks, 9u);
    EXPECT_LE(raw->ticks, 11u);
}
