# Empty compiler generated dependencies file for test_energy_memsys.
# This may be replaced when dependencies are built.
