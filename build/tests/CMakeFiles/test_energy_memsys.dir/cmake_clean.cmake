file(REMOVE_RECURSE
  "CMakeFiles/test_energy_memsys.dir/test_energy_memsys.cc.o"
  "CMakeFiles/test_energy_memsys.dir/test_energy_memsys.cc.o.d"
  "test_energy_memsys"
  "test_energy_memsys.pdb"
  "test_energy_memsys[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_energy_memsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
