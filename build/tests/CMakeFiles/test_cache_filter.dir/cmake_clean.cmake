file(REMOVE_RECURSE
  "CMakeFiles/test_cache_filter.dir/test_cache_filter.cc.o"
  "CMakeFiles/test_cache_filter.dir/test_cache_filter.cc.o.d"
  "test_cache_filter"
  "test_cache_filter.pdb"
  "test_cache_filter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
