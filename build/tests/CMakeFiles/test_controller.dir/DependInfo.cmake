
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_controller.cc" "tests/CMakeFiles/test_controller.dir/test_controller.cc.o" "gcc" "tests/CMakeFiles/test_controller.dir/test_controller.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/profess_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/profess_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/profess_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/profess_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/profess_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/hybrid/CMakeFiles/profess_hybrid.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/profess_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/profess_os.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/profess_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/profess_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
