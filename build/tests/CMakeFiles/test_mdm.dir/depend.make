# Empty dependencies file for test_mdm.
# This may be replaced when dependencies are built.
