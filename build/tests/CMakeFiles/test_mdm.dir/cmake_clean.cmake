file(REMOVE_RECURSE
  "CMakeFiles/test_mdm.dir/test_mdm.cc.o"
  "CMakeFiles/test_mdm.dir/test_mdm.cc.o.d"
  "test_mdm"
  "test_mdm.pdb"
  "test_mdm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
