# Empty dependencies file for test_st_stc.
# This may be replaced when dependencies are built.
