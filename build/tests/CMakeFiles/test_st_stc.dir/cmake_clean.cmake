file(REMOVE_RECURSE
  "CMakeFiles/test_st_stc.dir/test_st_stc.cc.o"
  "CMakeFiles/test_st_stc.dir/test_st_stc.cc.o.d"
  "test_st_stc"
  "test_st_stc.pdb"
  "test_st_stc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_st_stc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
