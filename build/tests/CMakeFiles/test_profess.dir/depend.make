# Empty dependencies file for test_profess.
# This may be replaced when dependencies are built.
