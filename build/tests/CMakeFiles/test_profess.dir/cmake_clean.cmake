file(REMOVE_RECURSE
  "CMakeFiles/test_profess.dir/test_profess.cc.o"
  "CMakeFiles/test_profess.dir/test_profess.cc.o.d"
  "test_profess"
  "test_profess.pdb"
  "test_profess[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
