# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_cache_filter[1]_include.cmake")
include("/root/repo/build/tests/test_channel[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_controller[1]_include.cmake")
include("/root/repo/build/tests/test_core_model[1]_include.cmake")
include("/root/repo/build/tests/test_layout[1]_include.cmake")
include("/root/repo/build/tests/test_mdm[1]_include.cmake")
include("/root/repo/build/tests/test_os[1]_include.cmake")
include("/root/repo/build/tests/test_policies[1]_include.cmake")
include("/root/repo/build/tests/test_profess[1]_include.cmake")
include("/root/repo/build/tests/test_rsm[1]_include.cmake")
include("/root/repo/build/tests/test_st_stc[1]_include.cmake")
include("/root/repo/build/tests/test_system[1]_include.cmake")
include("/root/repo/build/tests/test_timing[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_invariants[1]_include.cmake")
include("/root/repo/build/tests/test_reproduction[1]_include.cmake")
include("/root/repo/build/tests/test_energy_memsys[1]_include.cmake")
