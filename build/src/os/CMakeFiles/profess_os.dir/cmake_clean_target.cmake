file(REMOVE_RECURSE
  "libprofess_os.a"
)
