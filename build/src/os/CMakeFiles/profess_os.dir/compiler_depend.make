# Empty compiler generated dependencies file for profess_os.
# This may be replaced when dependencies are built.
