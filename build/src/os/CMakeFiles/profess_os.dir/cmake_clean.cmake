file(REMOVE_RECURSE
  "CMakeFiles/profess_os.dir/page_allocator.cc.o"
  "CMakeFiles/profess_os.dir/page_allocator.cc.o.d"
  "libprofess_os.a"
  "libprofess_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profess_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
