# Empty dependencies file for profess_cpu.
# This may be replaced when dependencies are built.
