file(REMOVE_RECURSE
  "libprofess_cpu.a"
)
