file(REMOVE_RECURSE
  "CMakeFiles/profess_cpu.dir/cache_filter.cc.o"
  "CMakeFiles/profess_cpu.dir/cache_filter.cc.o.d"
  "CMakeFiles/profess_cpu.dir/core_model.cc.o"
  "CMakeFiles/profess_cpu.dir/core_model.cc.o.d"
  "libprofess_cpu.a"
  "libprofess_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profess_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
