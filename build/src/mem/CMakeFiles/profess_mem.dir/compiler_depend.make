# Empty compiler generated dependencies file for profess_mem.
# This may be replaced when dependencies are built.
