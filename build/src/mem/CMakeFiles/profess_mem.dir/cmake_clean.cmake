file(REMOVE_RECURSE
  "CMakeFiles/profess_mem.dir/channel.cc.o"
  "CMakeFiles/profess_mem.dir/channel.cc.o.d"
  "CMakeFiles/profess_mem.dir/memory_system.cc.o"
  "CMakeFiles/profess_mem.dir/memory_system.cc.o.d"
  "CMakeFiles/profess_mem.dir/timing.cc.o"
  "CMakeFiles/profess_mem.dir/timing.cc.o.d"
  "libprofess_mem.a"
  "libprofess_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profess_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
