file(REMOVE_RECURSE
  "libprofess_mem.a"
)
