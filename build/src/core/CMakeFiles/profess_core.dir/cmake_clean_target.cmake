file(REMOVE_RECURSE
  "libprofess_core.a"
)
