
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/mdm.cc" "src/core/CMakeFiles/profess_core.dir/mdm.cc.o" "gcc" "src/core/CMakeFiles/profess_core.dir/mdm.cc.o.d"
  "/root/repo/src/core/mdm_policy.cc" "src/core/CMakeFiles/profess_core.dir/mdm_policy.cc.o" "gcc" "src/core/CMakeFiles/profess_core.dir/mdm_policy.cc.o.d"
  "/root/repo/src/core/profess.cc" "src/core/CMakeFiles/profess_core.dir/profess.cc.o" "gcc" "src/core/CMakeFiles/profess_core.dir/profess.cc.o.d"
  "/root/repo/src/core/rsm.cc" "src/core/CMakeFiles/profess_core.dir/rsm.cc.o" "gcc" "src/core/CMakeFiles/profess_core.dir/rsm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/profess_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hybrid/CMakeFiles/profess_hybrid.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/profess_os.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/profess_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
