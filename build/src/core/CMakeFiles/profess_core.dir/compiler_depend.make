# Empty compiler generated dependencies file for profess_core.
# This may be replaced when dependencies are built.
