file(REMOVE_RECURSE
  "CMakeFiles/profess_core.dir/mdm.cc.o"
  "CMakeFiles/profess_core.dir/mdm.cc.o.d"
  "CMakeFiles/profess_core.dir/mdm_policy.cc.o"
  "CMakeFiles/profess_core.dir/mdm_policy.cc.o.d"
  "CMakeFiles/profess_core.dir/profess.cc.o"
  "CMakeFiles/profess_core.dir/profess.cc.o.d"
  "CMakeFiles/profess_core.dir/rsm.cc.o"
  "CMakeFiles/profess_core.dir/rsm.cc.o.d"
  "libprofess_core.a"
  "libprofess_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profess_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
