# Empty dependencies file for profess_trace.
# This may be replaced when dependencies are built.
