file(REMOVE_RECURSE
  "libprofess_trace.a"
)
