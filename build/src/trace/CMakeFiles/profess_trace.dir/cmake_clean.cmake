file(REMOVE_RECURSE
  "CMakeFiles/profess_trace.dir/patterns.cc.o"
  "CMakeFiles/profess_trace.dir/patterns.cc.o.d"
  "CMakeFiles/profess_trace.dir/spec_profiles.cc.o"
  "CMakeFiles/profess_trace.dir/spec_profiles.cc.o.d"
  "CMakeFiles/profess_trace.dir/synthetic.cc.o"
  "CMakeFiles/profess_trace.dir/synthetic.cc.o.d"
  "CMakeFiles/profess_trace.dir/trace_file.cc.o"
  "CMakeFiles/profess_trace.dir/trace_file.cc.o.d"
  "libprofess_trace.a"
  "libprofess_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profess_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
