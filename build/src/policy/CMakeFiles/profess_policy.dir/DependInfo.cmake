
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/mempod.cc" "src/policy/CMakeFiles/profess_policy.dir/mempod.cc.o" "gcc" "src/policy/CMakeFiles/profess_policy.dir/mempod.cc.o.d"
  "/root/repo/src/policy/pom.cc" "src/policy/CMakeFiles/profess_policy.dir/pom.cc.o" "gcc" "src/policy/CMakeFiles/profess_policy.dir/pom.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/profess_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hybrid/CMakeFiles/profess_hybrid.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/profess_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/profess_os.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
