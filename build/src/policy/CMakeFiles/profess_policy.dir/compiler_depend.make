# Empty compiler generated dependencies file for profess_policy.
# This may be replaced when dependencies are built.
