file(REMOVE_RECURSE
  "CMakeFiles/profess_policy.dir/mempod.cc.o"
  "CMakeFiles/profess_policy.dir/mempod.cc.o.d"
  "CMakeFiles/profess_policy.dir/pom.cc.o"
  "CMakeFiles/profess_policy.dir/pom.cc.o.d"
  "libprofess_policy.a"
  "libprofess_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profess_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
