file(REMOVE_RECURSE
  "libprofess_policy.a"
)
