file(REMOVE_RECURSE
  "libprofess_sim.a"
)
