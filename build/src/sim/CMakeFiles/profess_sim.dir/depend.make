# Empty dependencies file for profess_sim.
# This may be replaced when dependencies are built.
