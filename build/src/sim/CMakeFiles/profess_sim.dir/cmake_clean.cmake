file(REMOVE_RECURSE
  "CMakeFiles/profess_sim.dir/experiment.cc.o"
  "CMakeFiles/profess_sim.dir/experiment.cc.o.d"
  "CMakeFiles/profess_sim.dir/report.cc.o"
  "CMakeFiles/profess_sim.dir/report.cc.o.d"
  "CMakeFiles/profess_sim.dir/system.cc.o"
  "CMakeFiles/profess_sim.dir/system.cc.o.d"
  "CMakeFiles/profess_sim.dir/workloads.cc.o"
  "CMakeFiles/profess_sim.dir/workloads.cc.o.d"
  "libprofess_sim.a"
  "libprofess_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profess_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
