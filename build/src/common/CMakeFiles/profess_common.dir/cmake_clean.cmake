file(REMOVE_RECURSE
  "CMakeFiles/profess_common.dir/config.cc.o"
  "CMakeFiles/profess_common.dir/config.cc.o.d"
  "CMakeFiles/profess_common.dir/logging.cc.o"
  "CMakeFiles/profess_common.dir/logging.cc.o.d"
  "CMakeFiles/profess_common.dir/stats.cc.o"
  "CMakeFiles/profess_common.dir/stats.cc.o.d"
  "libprofess_common.a"
  "libprofess_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profess_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
