file(REMOVE_RECURSE
  "libprofess_common.a"
)
