# Empty dependencies file for profess_common.
# This may be replaced when dependencies are built.
