file(REMOVE_RECURSE
  "libprofess_hybrid.a"
)
