# Empty dependencies file for profess_hybrid.
# This may be replaced when dependencies are built.
