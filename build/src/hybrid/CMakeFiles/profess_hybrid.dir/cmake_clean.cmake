file(REMOVE_RECURSE
  "CMakeFiles/profess_hybrid.dir/hybrid_controller.cc.o"
  "CMakeFiles/profess_hybrid.dir/hybrid_controller.cc.o.d"
  "CMakeFiles/profess_hybrid.dir/stc.cc.o"
  "CMakeFiles/profess_hybrid.dir/stc.cc.o.d"
  "libprofess_hybrid.a"
  "libprofess_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profess_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
