
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hybrid/hybrid_controller.cc" "src/hybrid/CMakeFiles/profess_hybrid.dir/hybrid_controller.cc.o" "gcc" "src/hybrid/CMakeFiles/profess_hybrid.dir/hybrid_controller.cc.o.d"
  "/root/repo/src/hybrid/stc.cc" "src/hybrid/CMakeFiles/profess_hybrid.dir/stc.cc.o" "gcc" "src/hybrid/CMakeFiles/profess_hybrid.dir/stc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/profess_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/profess_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/profess_os.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
