file(REMOVE_RECURSE
  "libprofess_cache.a"
)
