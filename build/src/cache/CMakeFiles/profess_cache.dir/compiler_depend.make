# Empty compiler generated dependencies file for profess_cache.
# This may be replaced when dependencies are built.
