file(REMOVE_RECURSE
  "CMakeFiles/profess_cache.dir/cache.cc.o"
  "CMakeFiles/profess_cache.dir/cache.cc.o.d"
  "libprofess_cache.a"
  "libprofess_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profess_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
