# Empty compiler generated dependencies file for fig08_09_stc_sensitivity.
# This may be replaced when dependencies are built.
