file(REMOVE_RECURSE
  "CMakeFiles/fig08_09_stc_sensitivity.dir/fig08_09_stc_sensitivity.cc.o"
  "CMakeFiles/fig08_09_stc_sensitivity.dir/fig08_09_stc_sensitivity.cc.o.d"
  "fig08_09_stc_sensitivity"
  "fig08_09_stc_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_09_stc_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
