# Empty dependencies file for fig02_pom_slowdowns.
# This may be replaced when dependencies are built.
