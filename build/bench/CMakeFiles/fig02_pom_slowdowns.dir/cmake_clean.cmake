file(REMOVE_RECURSE
  "CMakeFiles/fig02_pom_slowdowns.dir/fig02_pom_slowdowns.cc.o"
  "CMakeFiles/fig02_pom_slowdowns.dir/fig02_pom_slowdowns.cc.o.d"
  "fig02_pom_slowdowns"
  "fig02_pom_slowdowns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_pom_slowdowns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
