file(REMOVE_RECURSE
  "CMakeFiles/ext_os_vs_hw.dir/ext_os_vs_hw.cc.o"
  "CMakeFiles/ext_os_vs_hw.dir/ext_os_vs_hw.cc.o.d"
  "ext_os_vs_hw"
  "ext_os_vs_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_os_vs_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
