# Empty compiler generated dependencies file for ext_os_vs_hw.
# This may be replaced when dependencies are built.
