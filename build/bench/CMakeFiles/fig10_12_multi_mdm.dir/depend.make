# Empty dependencies file for fig10_12_multi_mdm.
# This may be replaced when dependencies are built.
