file(REMOVE_RECURSE
  "CMakeFiles/fig10_12_multi_mdm.dir/fig10_12_multi_mdm.cc.o"
  "CMakeFiles/fig10_12_multi_mdm.dir/fig10_12_multi_mdm.cc.o.d"
  "fig10_12_multi_mdm"
  "fig10_12_multi_mdm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_12_multi_mdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
