# Empty dependencies file for sens_capacity_ratio.
# This may be replaced when dependencies are built.
