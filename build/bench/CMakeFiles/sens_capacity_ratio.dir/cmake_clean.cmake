file(REMOVE_RECURSE
  "CMakeFiles/sens_capacity_ratio.dir/sens_capacity_ratio.cc.o"
  "CMakeFiles/sens_capacity_ratio.dir/sens_capacity_ratio.cc.o.d"
  "sens_capacity_ratio"
  "sens_capacity_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_capacity_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
