# Empty compiler generated dependencies file for table4_sampling_accuracy.
# This may be replaced when dependencies are built.
