file(REMOVE_RECURSE
  "CMakeFiles/table4_sampling_accuracy.dir/table4_sampling_accuracy.cc.o"
  "CMakeFiles/table4_sampling_accuracy.dir/table4_sampling_accuracy.cc.o.d"
  "table4_sampling_accuracy"
  "table4_sampling_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_sampling_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
