file(REMOVE_RECURSE
  "CMakeFiles/fig13_15_multi_profess.dir/fig13_15_multi_profess.cc.o"
  "CMakeFiles/fig13_15_multi_profess.dir/fig13_15_multi_profess.cc.o.d"
  "fig13_15_multi_profess"
  "fig13_15_multi_profess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_15_multi_profess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
