# Empty compiler generated dependencies file for fig13_15_multi_profess.
# This may be replaced when dependencies are built.
