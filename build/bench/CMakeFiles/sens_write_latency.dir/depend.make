# Empty dependencies file for sens_write_latency.
# This may be replaced when dependencies are built.
