file(REMOVE_RECURSE
  "CMakeFiles/sens_write_latency.dir/sens_write_latency.cc.o"
  "CMakeFiles/sens_write_latency.dir/sens_write_latency.cc.o.d"
  "sens_write_latency"
  "sens_write_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_write_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
