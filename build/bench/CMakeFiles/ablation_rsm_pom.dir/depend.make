# Empty dependencies file for ablation_rsm_pom.
# This may be replaced when dependencies are built.
