file(REMOVE_RECURSE
  "CMakeFiles/ablation_rsm_pom.dir/ablation_rsm_pom.cc.o"
  "CMakeFiles/ablation_rsm_pom.dir/ablation_rsm_pom.cc.o.d"
  "ablation_rsm_pom"
  "ablation_rsm_pom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rsm_pom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
