# Empty compiler generated dependencies file for fig16_slowdown_detail.
# This may be replaced when dependencies are built.
