file(REMOVE_RECURSE
  "CMakeFiles/fig16_slowdown_detail.dir/fig16_slowdown_detail.cc.o"
  "CMakeFiles/fig16_slowdown_detail.dir/fig16_slowdown_detail.cc.o.d"
  "fig16_slowdown_detail"
  "fig16_slowdown_detail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_slowdown_detail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
