# Empty dependencies file for ablation_profess.
# This may be replaced when dependencies are built.
