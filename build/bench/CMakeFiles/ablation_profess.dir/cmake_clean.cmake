file(REMOVE_RECURSE
  "CMakeFiles/ablation_profess.dir/ablation_profess.cc.o"
  "CMakeFiles/ablation_profess.dir/ablation_profess.cc.o.d"
  "ablation_profess"
  "ablation_profess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_profess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
