file(REMOVE_RECURSE
  "CMakeFiles/cmp_mempod_pom.dir/cmp_mempod_pom.cc.o"
  "CMakeFiles/cmp_mempod_pom.dir/cmp_mempod_pom.cc.o.d"
  "cmp_mempod_pom"
  "cmp_mempod_pom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp_mempod_pom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
