# Empty dependencies file for cmp_mempod_pom.
# This may be replaced when dependencies are built.
