file(REMOVE_RECURSE
  "CMakeFiles/fig05_07_single_mdm.dir/fig05_07_single_mdm.cc.o"
  "CMakeFiles/fig05_07_single_mdm.dir/fig05_07_single_mdm.cc.o.d"
  "fig05_07_single_mdm"
  "fig05_07_single_mdm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_07_single_mdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
