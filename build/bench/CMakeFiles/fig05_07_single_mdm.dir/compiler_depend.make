# Empty compiler generated dependencies file for fig05_07_single_mdm.
# This may be replaced when dependencies are built.
