#!/usr/bin/env python3
"""Record and compare simulation-kernel benchmark results.

Works on the JSON emitted by bench/kernel_hotpath (schema
profess-kernel-bench-v1) and maintains BENCH_kernel.json, the
kernel's perf trajectory: an append-only list of labelled runs so
a change's before/after numbers stay recorded next to the code.

Subcommands:
  show FILE...             print a table of one or more result files
  record --out TRAJ FILE...  append result files to a trajectory doc
  compare BASE CAND [--max-regression X]
                           compare per-run ns/access; exit 1 if any
                           run of CAND is more than X times slower
                           than BASE (CI perf-smoke gate)

Only the standard library is used.
"""

import argparse
import json
import signal
import sys

# Die quietly when output is piped into head & co.
if hasattr(signal, "SIGPIPE"):
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)

TRAJ_SCHEMA = "profess-kernel-trajectory-v1"
BENCH_SCHEMA = "profess-kernel-bench-v1"


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != BENCH_SCHEMA:
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return doc


def fmt_table(doc):
    lines = []
    label = doc.get("label", "?")
    mode = "quick" if doc.get("quick") else "full"
    lines.append(
        f"== {label} ({mode}, peak RSS "
        f"{doc.get('peak_rss_kb', 0) / 1024:.1f} MiB)"
    )
    lines.append(
        f"  {'run':<22} {'ns/access':>10} {'events/s':>12} "
        f"{'accesses':>10} {'swaps':>8}"
    )
    for r in doc["runs"]:
        lines.append(
            f"  {r['name']:<22} {r['ns_per_access']:>10.1f} "
            f"{r['events_per_sec']:>12.0f} {r['accesses']:>10} "
            f"{r['swaps']:>8}"
        )
    t = doc["total"]
    lines.append(
        f"  {'TOTAL':<22} {t['ns_per_access']:>10.1f} "
        f"{t['events_per_sec']:>12.0f} {t['accesses']:>10}"
    )
    return "\n".join(lines)


def cmd_show(args):
    for path in args.files:
        print(fmt_table(load(path)))
        print()
    return 0


def cmd_record(args):
    try:
        with open(args.out) as f:
            traj = json.load(f)
        if traj.get("schema") != TRAJ_SCHEMA:
            sys.exit(f"{args.out}: not a trajectory document")
    except FileNotFoundError:
        traj = {"schema": TRAJ_SCHEMA, "entries": []}

    for path in args.files:
        doc = load(path)
        traj["entries"].append(doc)
        print(f"recorded {doc.get('label', '?')} from {path}")

    with open(args.out, "w") as f:
        json.dump(traj, f, indent=1)
        f.write("\n")
    print(f"{args.out}: {len(traj['entries'])} entries")
    return 0


def cmd_compare(args):
    base = load(args.base)
    cand = load(args.cand)
    base_runs = {r["name"]: r for r in base["runs"]}
    worst = 0.0
    failed = False
    print(
        f"  {'run':<22} {'base':>10} {'cand':>10} {'ratio':>7}"
        "   (ns/access)"
    )
    for r in cand["runs"]:
        b = base_runs.get(r["name"])
        if b is None:
            print(f"  {r['name']:<22} (no baseline)")
            continue
        ratio = (
            r["ns_per_access"] / b["ns_per_access"]
            if b["ns_per_access"] > 0
            else float("inf")
        )
        worst = max(worst, ratio)
        flag = ""
        if ratio > args.max_regression:
            flag = "  << REGRESSION"
            failed = True
        print(
            f"  {r['name']:<22} {b['ns_per_access']:>10.1f} "
            f"{r['ns_per_access']:>10.1f} {ratio:>6.2f}x{flag}"
        )
    print(
        f"worst ratio {worst:.2f}x "
        f"(limit {args.max_regression:.2f}x)"
    )
    if failed:
        print("FAIL: kernel perf-smoke regression", file=sys.stderr)
        return 1
    print("OK")
    return 0


def main():
    p = argparse.ArgumentParser(description=__doc__)
    sub = p.add_subparsers(dest="cmd", required=True)

    s = sub.add_parser("show", help="print result tables")
    s.add_argument("files", nargs="+")
    s.set_defaults(fn=cmd_show)

    s = sub.add_parser("record", help="append to a trajectory doc")
    s.add_argument("--out", required=True)
    s.add_argument("files", nargs="+")
    s.set_defaults(fn=cmd_record)

    s = sub.add_parser("compare", help="CI regression gate")
    s.add_argument("base")
    s.add_argument("cand")
    s.add_argument("--max-regression", type=float, default=2.0)
    s.set_defaults(fn=cmd_compare)

    args = p.parse_args()
    sys.exit(args.fn(args))


if __name__ == "__main__":
    main()
