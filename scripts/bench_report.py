#!/usr/bin/env python3
"""Record and compare simulation-kernel benchmark results.

Works on the JSON emitted by bench/kernel_hotpath (schema
profess-kernel-bench-v1) and maintains BENCH_kernel.json, the
kernel's perf trajectory: an append-only list of labelled runs so
a change's before/after numbers stay recorded next to the code.

Subcommands:
  show FILE...             print a table of one or more result files
  record --out TRAJ FILE...  append result files to a trajectory doc
  compare BASE CAND [--max-regression X] [--total]
                           compare per-run ns/access; exit 1 if any
                           run of CAND is more than X times slower
                           than BASE (CI perf-smoke gate).  --total
                           gates on the aggregate ns/access instead
                           (less noisy; used by the telemetry
                           overhead gate)
  best FILE... --out OUT   keep the result file with the lowest
                           total ns/access (min over repeated runs,
                           the noise-robust estimator for tight
                           overhead gates on shared CI machines)
  metrics-diff BASE CAND [opts...]
                           diff two OpenMetrics exposition files
                           (--metrics-out output) series-by-series;
                           delegates to scripts/metrics_diff.py, so
                           its options (--rel-threshold,
                           --abs-threshold, --ignore, ...) apply
                           unchanged.  Pairs a perf-trajectory
                           comparison with a metric-level one in a
                           single tool invocation.

show and record accept --with-telemetry DIR: for each run of a
result file, DIR/<run name>/manifest.json (written by kernel_hotpath
--telemetry-out) is cross-linked so a perf-trajectory point carries
the exact config, seed and git sha that produced it.

Only the standard library is used.
"""

import argparse
import json
import os
import signal
import sys

# Die quietly when output is piped into head & co.
if hasattr(signal, "SIGPIPE"):
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)

TRAJ_SCHEMA = "profess-kernel-trajectory-v1"
BENCH_SCHEMA = "profess-kernel-bench-v1"


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != BENCH_SCHEMA:
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return doc


def fmt_table(doc):
    lines = []
    label = doc.get("label", "?")
    mode = "quick" if doc.get("quick") else "full"
    lines.append(
        f"== {label} ({mode}, peak RSS "
        f"{doc.get('peak_rss_kb', 0) / 1024:.1f} MiB)"
    )
    lines.append(
        f"  {'run':<22} {'ns/access':>10} {'events/s':>12} "
        f"{'accesses':>10} {'swaps':>8}"
    )
    for r in doc["runs"]:
        lines.append(
            f"  {r['name']:<22} {r['ns_per_access']:>10.1f} "
            f"{r['events_per_sec']:>12.0f} {r['accesses']:>10} "
            f"{r['swaps']:>8}"
        )
    t = doc["total"]
    lines.append(
        f"  {'TOTAL':<22} {t['ns_per_access']:>10.1f} "
        f"{t['events_per_sec']:>12.0f} {t['accesses']:>10}"
    )
    return "\n".join(lines)


def telemetry_manifest(tdir, run_name):
    """Load DIR/<run name>/manifest.json, or None if absent."""
    path = os.path.join(tdir, run_name, "manifest.json")
    try:
        with open(path) as f:
            return json.load(f)
    except (FileNotFoundError, json.JSONDecodeError):
        return None


def telemetry_link(tdir, run_name):
    """Reproducibility cross-link for one run (None if no manifest)."""
    m = telemetry_manifest(tdir, run_name)
    if m is None:
        return None
    return {
        "dir": os.path.join(tdir, run_name),
        "seed": m.get("seed"),
        "git_sha": m.get("git_sha"),
        "policy": m.get("policy"),
        "wall_seconds": m.get("wall_seconds"),
        "peak_rss_kb": m.get("peak_rss_kb"),
        "config": m.get("config"),
    }


def fmt_telemetry(doc, tdir):
    lines = [f"  telemetry ({tdir}):"]
    for r in doc["runs"]:
        link = telemetry_link(tdir, r["name"])
        if link is None:
            lines.append(f"    {r['name']:<22} (no manifest)")
            continue
        sha = (link["git_sha"] or "?")[:12]
        lines.append(
            f"    {r['name']:<22} seed={link['seed']} sha={sha} "
            f"wall={link['wall_seconds']:.2f}s "
            f"rss={link['peak_rss_kb'] / 1024:.0f}MiB"
        )
    return "\n".join(lines)


def cmd_show(args):
    for path in args.files:
        doc = load(path)
        print(fmt_table(doc))
        if args.with_telemetry:
            print(fmt_telemetry(doc, args.with_telemetry))
        print()
    return 0


def cmd_record(args):
    try:
        with open(args.out) as f:
            traj = json.load(f)
        if traj.get("schema") != TRAJ_SCHEMA:
            sys.exit(f"{args.out}: not a trajectory document")
    except FileNotFoundError:
        traj = {"schema": TRAJ_SCHEMA, "entries": []}

    for path in args.files:
        doc = load(path)
        if args.with_telemetry:
            for r in doc["runs"]:
                link = telemetry_link(args.with_telemetry, r["name"])
                if link is not None:
                    r["telemetry"] = link
        traj["entries"].append(doc)
        print(f"recorded {doc.get('label', '?')} from {path}")

    with open(args.out, "w") as f:
        json.dump(traj, f, indent=1)
        f.write("\n")
    print(f"{args.out}: {len(traj['entries'])} entries")
    return 0


def cmd_compare(args):
    base = load(args.base)
    cand = load(args.cand)
    base_runs = {r["name"]: r for r in base["runs"]}
    worst = 0.0
    failed = False
    print(
        f"  {'run':<22} {'base':>10} {'cand':>10} {'ratio':>7}"
        "   (ns/access)"
    )
    for r in cand["runs"]:
        b = base_runs.get(r["name"])
        if b is None:
            print(f"  {r['name']:<22} (no baseline)")
            continue
        ratio = (
            r["ns_per_access"] / b["ns_per_access"]
            if b["ns_per_access"] > 0
            else float("inf")
        )
        worst = max(worst, ratio)
        flag = ""
        if ratio > args.max_regression and not args.total:
            flag = "  << REGRESSION"
            failed = True
        print(
            f"  {r['name']:<22} {b['ns_per_access']:>10.1f} "
            f"{r['ns_per_access']:>10.1f} {ratio:>6.2f}x{flag}"
        )
    if args.total:
        # Gate on the matrix-wide aggregate only: per-run numbers on
        # a quick CI box are too noisy for tight (2%/15%) bounds.
        bt = base["total"]["ns_per_access"]
        ct = cand["total"]["ns_per_access"]
        ratio = ct / bt if bt > 0 else float("inf")
        failed = ratio > args.max_regression
        print(
            f"  {'TOTAL':<22} {bt:>10.1f} {ct:>10.1f} "
            f"{ratio:>6.2f}x{'  << REGRESSION' if failed else ''}"
        )
        worst = ratio
    print(
        f"worst ratio {worst:.2f}x "
        f"(limit {args.max_regression:.2f}x"
        f"{', total only' if args.total else ''})"
    )
    if failed:
        print("FAIL: kernel perf-smoke regression", file=sys.stderr)
        return 1
    print("OK")
    return 0


def cmd_best(args):
    best_path, best_doc = None, None
    for path in args.files:
        doc = load(path)
        t = doc["total"]["ns_per_access"]
        if (
            best_doc is None
            or t < best_doc["total"]["ns_per_access"]
        ):
            best_path, best_doc = path, doc
    with open(args.out, "w") as f:
        json.dump(best_doc, f, indent=1)
        f.write("\n")
    print(
        f"best of {len(args.files)}: {best_path} "
        f"({best_doc['total']['ns_per_access']:.1f} ns/access) "
        f"-> {args.out}"
    )
    return 0


def cmd_metrics_diff(args):
    # Late import so bench-only uses never touch the sibling module.
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    import metrics_diff

    return metrics_diff.main(args.args)


def main():
    p = argparse.ArgumentParser(description=__doc__)
    sub = p.add_subparsers(dest="cmd", required=True)

    s = sub.add_parser("show", help="print result tables")
    s.add_argument("files", nargs="+")
    s.add_argument(
        "--with-telemetry",
        metavar="DIR",
        help="cross-link run manifests from a --telemetry-out dir",
    )
    s.set_defaults(fn=cmd_show)

    s = sub.add_parser("record", help="append to a trajectory doc")
    s.add_argument("--out", required=True)
    s.add_argument("files", nargs="+")
    s.add_argument(
        "--with-telemetry",
        metavar="DIR",
        help="embed run-manifest cross-links into recorded entries",
    )
    s.set_defaults(fn=cmd_record)

    s = sub.add_parser("compare", help="CI regression gate")
    s.add_argument("base")
    s.add_argument("cand")
    s.add_argument("--max-regression", type=float, default=2.0)
    s.add_argument(
        "--total",
        action="store_true",
        help="gate on total ns/access instead of per-run",
    )
    s.set_defaults(fn=cmd_compare)

    s = sub.add_parser("best", help="pick the fastest of N results")
    s.add_argument("files", nargs="+")
    s.add_argument("--out", required=True)
    s.set_defaults(fn=cmd_best)

    s = sub.add_parser(
        "metrics-diff",
        help="diff two OpenMetrics expositions (metrics_diff.py)",
    )
    s.add_argument(
        "args",
        nargs=argparse.REMAINDER,
        help="arguments passed through to metrics_diff.py",
    )
    s.set_defaults(fn=cmd_metrics_diff)

    args = p.parse_args()
    sys.exit(args.fn(args))


if __name__ == "__main__":
    main()
