#!/usr/bin/env python3
"""Render time-series from a telemetry run directory.

Works on the epochs.jsonl written by `--telemetry-out DIR`: one JSON
object per sampling epoch, {"tick": T, "epoch": K, "v": {name:
value}}.  The default selection is the paper's headline dynamic
quantity — per-program RSM sharing factors SF_A/SF_B (Sec. 3.1) —
but any registered stat can be plotted with --series.

Rendering is dependency-free: an ASCII chart on stdout and,
with --out FILE.svg, a standalone SVG (no matplotlib needed).

Usage:
  telemetry_plot.py RUN_DIR [--series GLOB ...] [--out FILE.svg]
  telemetry_plot.py RUN_DIR --list

Examples:
  # SF_A/SF_B convergence of a fig13 run (EXPERIMENTS.md recipe)
  telemetry_plot.py out/fig13/w01_profess
  # STC hit rate and channel queue depth, as SVG
  telemetry_plot.py out/fig13/w01_profess \\
      --series 'hybrid.stc.hit_rate' 'mem.*.read_queue' \\
      --out stc.svg
"""

import argparse
import fnmatch
import json
import os
import sys

DEFAULT_SERIES = ["policy.*.rsm.*.sf_a", "policy.*.rsm.*.sf_b"]

ASCII_WIDTH = 72
ASCII_HEIGHT = 16
SVG_W, SVG_H, SVG_PAD = 800, 400, 56
SVG_COLORS = [
    "#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
    "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
]


def load_epochs(run_dir):
    path = os.path.join(run_dir, "epochs.jsonl")
    ticks, rows = [], []
    try:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                obj = json.loads(line)
                ticks.append(obj["tick"])
                rows.append(obj["v"])
    except FileNotFoundError:
        sys.exit(f"{path}: not found (was the run made with "
                 "--telemetry-out?)")
    if not rows:
        sys.exit(f"{path}: no epochs recorded")
    return ticks, rows


def select_series(rows, patterns):
    names = sorted(rows[0].keys())
    chosen = []
    for pat in patterns:
        matched = [n for n in names if fnmatch.fnmatch(n, pat)]
        if not matched and pat in names:
            matched = [pat]
        for n in matched:
            if n not in chosen:
                chosen.append(n)
    return chosen


def series_values(ticks, rows, name):
    return [(t, r.get(name, 0.0)) for t, r in zip(ticks, rows)]


def value_range(all_series):
    lo = min(v for s in all_series for _, v in s)
    hi = max(v for s in all_series for _, v in s)
    if hi == lo:
        hi = lo + 1.0
    return lo, hi


def ascii_chart(names, all_series):
    lo, hi = value_range(all_series)
    t0 = all_series[0][0][0]
    t1 = all_series[0][-1][0]
    span = max(t1 - t0, 1)
    grid = [[" "] * ASCII_WIDTH for _ in range(ASCII_HEIGHT)]
    marks = "ox+*#%@&$~"
    for si, series in enumerate(all_series):
        mark = marks[si % len(marks)]
        for t, v in series:
            x = int((t - t0) / span * (ASCII_WIDTH - 1))
            y = int((v - lo) / (hi - lo) * (ASCII_HEIGHT - 1))
            grid[ASCII_HEIGHT - 1 - y][x] = mark
    out = []
    for i, row in enumerate(grid):
        label = ""
        if i == 0:
            label = f"{hi:.3g}"
        elif i == ASCII_HEIGHT - 1:
            label = f"{lo:.3g}"
        out.append(f"{label:>9} |{''.join(row)}|")
    out.append(f"{'':>9} +{'-' * ASCII_WIDTH}+")
    out.append(f"{'':>9}  tick {t0} .. {t1}")
    for si, name in enumerate(names):
        out.append(f"{'':>9}  {marks[si % len(marks)]} = {name}")
    return "\n".join(out)


def svg_chart(names, all_series, title):
    lo, hi = value_range(all_series)
    t0 = all_series[0][0][0]
    t1 = all_series[0][-1][0]
    span = max(t1 - t0, 1)
    iw = SVG_W - 2 * SVG_PAD
    ih = SVG_H - 2 * SVG_PAD

    def sx(t):
        return SVG_PAD + (t - t0) / span * iw

    def sy(v):
        return SVG_H - SVG_PAD - (v - lo) / (hi - lo) * ih

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{SVG_W}" '
        f'height="{SVG_H}" font-family="monospace" font-size="12">',
        f'<rect width="{SVG_W}" height="{SVG_H}" fill="white"/>',
        f'<text x="{SVG_PAD}" y="20">{title}</text>',
        f'<rect x="{SVG_PAD}" y="{SVG_PAD}" width="{iw}" '
        f'height="{ih}" fill="none" stroke="#999"/>',
        f'<text x="4" y="{SVG_PAD + 4}">{hi:.4g}</text>',
        f'<text x="4" y="{SVG_H - SVG_PAD}">{lo:.4g}</text>',
        f'<text x="{SVG_PAD}" y="{SVG_H - SVG_PAD + 16}">'
        f"tick {t0}</text>",
        f'<text x="{SVG_W - SVG_PAD - 80}" '
        f'y="{SVG_H - SVG_PAD + 16}">tick {t1}</text>',
    ]
    for si, (name, series) in enumerate(zip(names, all_series)):
        color = SVG_COLORS[si % len(SVG_COLORS)]
        pts = " ".join(
            f"{sx(t):.1f},{sy(v):.1f}" for t, v in series
        )
        parts.append(
            f'<polyline points="{pts}" fill="none" '
            f'stroke="{color}" stroke-width="1.5"/>'
        )
        ly = 36 + 14 * si
        parts.append(
            f'<rect x="{SVG_W - 250}" y="{ly - 9}" width="10" '
            f'height="10" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{SVG_W - 235}" y="{ly}">{name}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def main():
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("run_dir", help="one --telemetry-out run dir")
    p.add_argument(
        "--series",
        nargs="+",
        metavar="GLOB",
        help="stat names or globs to plot "
        "(default: per-program SF_A/SF_B)",
    )
    p.add_argument("--out", help="write an SVG instead of ASCII")
    p.add_argument(
        "--list",
        action="store_true",
        help="list available series names and exit",
    )
    args = p.parse_args()

    ticks, rows = load_epochs(args.run_dir)
    if args.list:
        for n in sorted(rows[0].keys()):
            print(n)
        return 0

    patterns = args.series or DEFAULT_SERIES
    names = select_series(rows, patterns)
    if not names:
        sys.exit(
            f"no series match {patterns}; try --list "
            "(SF series exist only for runs under rsm-based "
            "policies such as profess)"
        )
    all_series = [series_values(ticks, rows, n) for n in names]

    title = (
        f"{os.path.basename(os.path.normpath(args.run_dir))}: "
        f"{len(ticks)} epochs"
    )
    if args.out:
        with open(args.out, "w") as f:
            f.write(svg_chart(names, all_series, title))
        print(f"wrote {args.out} ({len(names)} series, "
              f"{len(ticks)} epochs)")
    else:
        print(title)
        print(ascii_chart(names, all_series))
    return 0


if __name__ == "__main__":
    sys.exit(main())
