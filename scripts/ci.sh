#!/usr/bin/env bash
#
# CI entry point: two build/test passes.
#
#   1. Debug + ThreadSanitizer, running only the concurrency-
#      sensitive tests (thread pool, parallel runner, alone-IPC
#      cache).  A data race anywhere in the parallel experiment
#      path fails this stage.
#   2. Release, full test suite (the tier-1 gate).
#   3. Perf smoke: bench/kernel_hotpath --quick against the
#      checked-in baseline (bench/baselines/kernel_quick.json);
#      fails on a >2x ns/access regression on any run of the
#      matrix.  The loose factor absorbs machine-to-machine and
#      CI-noise variance while still catching algorithmic
#      regressions of the simulation kernel.
#   4. Telemetry overhead: kernel_hotpath --quick twice more,
#      telemetry off and fully on (--trace --telemetry-out
#      --metrics-out, which also turns on latency-span
#      attribution).  Off must stay within 2% of the checked-in
#      baseline on the aggregate ns/access (the disabled
#      instrumentation is one predictable branch per site); on
#      must stay within 15% of the off run measured back-to-back
#      on the same machine.  The on run's OpenMetrics exposition
#      is then diffed against bench/baselines/kernel_quick.prom
#      (scripts/metrics_diff.py) with generous thresholds — a
#      metric-level regression tripwire next to the wall-clock
#      one.  The generated manifests/JSONL/chrome traces and
#      .prom expositions are uploaded as CI artifacts (see
#      .github/workflows/ci.yml).
#   5. Correctness tooling: the domain linter
#      (scripts/lint_profess.py), clang-format in check-only mode
#      and clang-tidy over src/ (both skipped with a notice when
#      the tool is not installed — the runtime gates below do not
#      depend on them), then the full test suite once more as
#      Debug + UBSan + ASan with PROFESS_AUDIT=ON so every
#      invariant-audit hook runs under both sanitizers.
#   6. Fault-injection suite: the scenario tests (swap-abort
#      storms, quiesce audits, RSM/MDM pinning, fault-schedule
#      determinism) re-run on the stage-5 UBSan+ASan+AUDIT build.
#      A dedicated stage so a scenario regression is named in the
#      CI log even when the full stage-5 sweep also catches it,
#      and so the storm paths are exercised with every invariant
#      audit compiled in and sanitized.
#
# Usage: scripts/ci.sh [jobs]   (default: nproc)

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "==> [1/6] Debug + TSan: parallel runner tests"
cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -g -O1" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build build-tsan -j "$JOBS" --target test_parallel_runner
TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
        -R 'ThreadPool|AloneCache|Differential|ParallelRunner'

echo "==> [2/6] Release: full suite"
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "==> [3/6] Kernel perf smoke"
cmake --build build -j "$JOBS" --target kernel_hotpath
./build/bench/kernel_hotpath --quick --label ci-smoke \
    --out build/kernel_smoke.json
python3 scripts/bench_report.py compare \
    bench/baselines/kernel_quick.json build/kernel_smoke.json \
    --max-regression 2.0

echo "==> [4/6] Telemetry overhead gate"
# The 2%/15% bounds are far tighter than single-shot noise on a
# shared CI box, so each mode runs three times (interleaved, to
# balance load drift) and the gate uses the best run of each —
# min total ns/access, the noise-robust estimator.
for i in 1 2 3; do
    ./build/bench/kernel_hotpath --quick --label telemetry-off \
        --out "build/kernel_telemetry_off.$i.json"
    ./build/bench/kernel_hotpath --quick --label telemetry-on \
        --trace --telemetry-out build/telemetry-artifacts \
        --metrics-out "build/kernel_telemetry_on.$i.prom" \
        --out "build/kernel_telemetry_on.$i.json"
done
python3 scripts/bench_report.py best \
    build/kernel_telemetry_off.[123].json \
    --out build/kernel_telemetry_off.json
python3 scripts/bench_report.py best \
    build/kernel_telemetry_on.[123].json \
    --out build/kernel_telemetry_on.json
# Disabled telemetry must cost nothing measurable: aggregate
# ns/access within 2% of the checked-in baseline.
python3 scripts/bench_report.py compare \
    bench/baselines/kernel_quick.json \
    build/kernel_telemetry_off.json \
    --max-regression 1.02 --total
# Full tracing + sampling + artifact output: within 15% of the
# off run measured back-to-back on this machine.
python3 scripts/bench_report.py compare \
    build/kernel_telemetry_off.json \
    build/kernel_telemetry_on.json \
    --max-regression 1.15 --total
# Cross-link the on-run trajectory point to its manifests.
python3 scripts/bench_report.py show \
    build/kernel_telemetry_on.json \
    --with-telemetry build/telemetry-artifacts
# Metric-level tripwire: the exposition holds only deterministic
# simulation state (counters, probes, latency histograms — no wall
# clock), so every on-run .prom of this machine is identical; run 1
# stands in for all three.  Thresholds are generous — both bounds
# must be exceeded to fail — and --ignore-missing keeps newly added
# metrics from failing CI before the baseline is regenerated
# (scripts/bench_report.py metrics-diff is the same tool).  The
# exact-match guarantees live in tests/test_metrics.cc.
python3 scripts/metrics_diff.py \
    bench/baselines/kernel_quick.prom \
    build/kernel_telemetry_on.1.prom \
    --rel-threshold 0.5 --abs-threshold 1e-6 \
    --ignore-missing --require-eof --quiet

echo "==> [5/6] Correctness tooling"
python3 scripts/lint_profess.py

if command -v clang-format >/dev/null 2>&1; then
    # Check-only: report drift, never rewrite (see .clang-format).
    git ls-files 'src/**/*.cc' 'src/**/*.hh' |
        xargs clang-format --dry-run -Werror
else
    echo "    clang-format not installed; skipping format check"
fi

if command -v clang-tidy >/dev/null 2>&1; then
    # Results are cached on a stamp keyed by everything that can
    # change a finding (tidy config, sources, build flags); CI
    # persists build-tidy/.ctcache across runs (actions/cache), so
    # unchanged trees skip the whole analysis.
    TIDY_STAMP_DIR=build-tidy/.ctcache
    TIDY_HASH=$( (clang-tidy --version
                  cat .clang-tidy CMakeLists.txt
                  git ls-files 'src/**' | sort | xargs cat) |
                 sha256sum | cut -d' ' -f1)
    if [ -f "$TIDY_STAMP_DIR/$TIDY_HASH" ]; then
        echo "    clang-tidy cache hit ($TIDY_HASH); skipping"
    else
        # A dedicated compile database (any build type works; tidy
        # only needs the flags).  run-clang-tidy parallelizes.
        cmake -B build-tidy -S . -DCMAKE_BUILD_TYPE=Debug \
            -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
        if command -v run-clang-tidy >/dev/null 2>&1; then
            run-clang-tidy -p build-tidy -j "$JOBS" -quiet \
                "$(pwd)/src/.*"
        else
            git ls-files 'src/**/*.cc' |
                xargs clang-tidy -p build-tidy --quiet
        fi
        mkdir -p "$TIDY_STAMP_DIR"
        touch "$TIDY_STAMP_DIR/$TIDY_HASH"
    fi
else
    echo "    clang-tidy not installed; skipping static analysis"
fi

# Full suite under UBSan + ASan with every audit hook compiled in.
# This is the stage that actually executes the invariant audits:
# Release keeps PROFESS_AUDIT off (bit-identical hot path), Debug
# turns it on and sanitizes the checks themselves.
cmake -B build-ubsan -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DPROFESS_UBSAN=ON -DPROFESS_ASAN=ON -DPROFESS_AUDIT=ON
cmake --build build-ubsan -j "$JOBS"
UBSAN_OPTIONS="print_stacktrace=1" \
    ctest --test-dir build-ubsan --output-on-failure -j "$JOBS"

echo "==> [6/6] Fault-injection scenario suite (UBSan+ASan+AUDIT)"
# Reuses the stage-5 build: PROFESS_AUDIT=ON means every quiesce
# audit, rollback invariant and ST/STC structural check actually
# executes under both sanitizers while faults are being injected.
UBSAN_OPTIONS="print_stacktrace=1" \
    ctest --test-dir build-ubsan --output-on-failure -j "$JOBS" \
        -R 'Scenario'

echo "==> CI passed"
