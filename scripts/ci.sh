#!/usr/bin/env bash
#
# CI entry point, split into selectable stages so the workflow can
# fan them over a parallel job matrix (.github/workflows/ci.yml)
# while one local `scripts/ci.sh` still runs the whole gate.
#
#   tsan      Debug + ThreadSanitizer, running only the
#             concurrency-sensitive tests (thread pool, parallel
#             runner, alone-IPC cache).  A data race anywhere in
#             the parallel experiment path fails this stage.
#   release   Release build, full test suite (the tier-1 gate).
#   perf      Perf smoke: bench/kernel_hotpath --quick against the
#             checked-in baseline
#             (bench/baselines/kernel_quick.json); fails on a >2x
#             ns/access regression on any run of the matrix.  The
#             loose factor absorbs machine-to-machine and CI-noise
#             variance while still catching algorithmic
#             regressions of the simulation kernel.
#   telemetry Telemetry overhead: kernel_hotpath --quick twice
#             more, telemetry off and fully on (--trace
#             --telemetry-out --metrics-out, which also turns on
#             latency-span attribution).  Off must stay within 2%
#             of the checked-in baseline on the aggregate
#             ns/access (the disabled instrumentation is one
#             predictable branch per site); on must stay within
#             15% of the off run measured back-to-back on the same
#             machine.  The on run's OpenMetrics exposition is
#             then diffed against bench/baselines/kernel_quick.prom
#             (scripts/metrics_diff.py) with generous thresholds —
#             a metric-level regression tripwire next to the
#             wall-clock one.  The generated manifests/JSONL/
#             chrome traces and .prom expositions are uploaded as
#             CI artifacts (see .github/workflows/ci.yml).
#   analyze   Correctness tooling: the determinism/hot-path
#             analyzer (scripts/profess_analyze — absorbs the old
#             domain linter; zero findings required, SARIF written
#             for code-scanning upload), clang-format in
#             check-only mode and clang-tidy over src/.  The clang
#             tools are pinned in CI (see ci.yml) and a missing
#             binary there is a hard failure — a silently skipped
#             static-analysis stage is how rot ships; on developer
#             machines without the tools the checks skip with a
#             notice.
#   ubsan     Full test suite as Debug + UBSan + ASan with
#             PROFESS_AUDIT=ON and PROFESS_DETSAN=ON so every
#             invariant-audit hook and determinism digest runs
#             under both sanitizers.
#   scenario  Fault-injection suite: the scenario tests
#             (swap-abort storms, quiesce audits, RSM/MDM pinning,
#             fault-schedule determinism) re-run on the ubsan
#             build.  A dedicated stage so a scenario regression
#             is named in the CI log even when the full ubsan
#             sweep also catches it, and so the storm paths are
#             exercised with every invariant audit compiled in and
#             sanitized.
#   detsan    DetSan differential: kernel_hotpath --quick on the
#             DetSan build replays the whole matrix on 8 pool
#             workers and cross-checks every run's
#             event/extraction/epoch/final-stat digests against
#             the measured serial pass — a digest mismatch
#             (scheduling leaking into simulation state) aborts.
#   sweep     Resumable-sweep differential (nightly): run the
#             small bench/sweeps/nightly.sweep grid uninterrupted,
#             then interrupted (--max-runs) + resumed, and require
#             the journal and merged exposition byte-identical;
#             cross-check the Python shard merger
#             (scripts/metrics_merge.py) against the C++ merge
#             byte-for-byte; diff the exposition against the
#             checked-in baseline
#             (bench/baselines/sweep_nightly.prom).
#
# When ccache is installed every cmake build routes through it
# (compiler-launcher), and the stats are printed at the end; the
# workflow persists the cache directory across runs keyed on
# compiler + build inputs.
#
# Usage: scripts/ci.sh [jobs] [--stages a,b,c]
#   default stages: tsan,release,perf,telemetry,analyze,ubsan,
#                   scenario,detsan  (sweep is nightly/opt-in)

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc)"
STAGES="tsan,release,perf,telemetry,analyze,ubsan,scenario,detsan"
while [ $# -gt 0 ]; do
    case "$1" in
        --stages)
            STAGES="$2"
            shift 2
            ;;
        --stages=*)
            STAGES="${1#--stages=}"
            shift
            ;;
        *)
            JOBS="$1"
            shift
            ;;
    esac
done

# Route compiles through ccache when available.  The array-guard
# expansion keeps `set -u` happy when the launcher is empty.
CCACHE_ARGS=()
if command -v ccache >/dev/null 2>&1; then
    CCACHE_ARGS=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
    ccache --zero-stats >/dev/null
fi

cmake_configure() {
    cmake "$@" ${CCACHE_ARGS[@]+"${CCACHE_ARGS[@]}"}
}

# Cross-stage build dependencies, built at most once per invocation.
RELEASE_READY=
ensure_release() {
    if [ -z "$RELEASE_READY" ]; then
        cmake_configure -B build -S . -DCMAKE_BUILD_TYPE=Release
        cmake --build build -j "$JOBS"
        RELEASE_READY=1
    fi
}

UBSAN_READY=
ensure_ubsan() {
    if [ -z "$UBSAN_READY" ]; then
        cmake_configure -B build-ubsan -S . \
            -DCMAKE_BUILD_TYPE=Debug \
            -DPROFESS_UBSAN=ON -DPROFESS_ASAN=ON \
            -DPROFESS_AUDIT=ON -DPROFESS_DETSAN=ON
        cmake --build build-ubsan -j "$JOBS"
        UBSAN_READY=1
    fi
}

stage_tsan() {
    cmake_configure -B build-tsan -S . \
        -DCMAKE_BUILD_TYPE=Debug \
        -DCMAKE_CXX_FLAGS="-fsanitize=thread -g -O1" \
        -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
    cmake --build build-tsan -j "$JOBS" --target test_parallel_runner
    TSAN_OPTIONS="halt_on_error=1" \
        ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
            -R 'ThreadPool|AloneCache|Differential|ParallelRunner'
}

stage_release() {
    ensure_release
    ctest --test-dir build --output-on-failure -j "$JOBS"
}

stage_perf() {
    ensure_release
    cmake --build build -j "$JOBS" --target kernel_hotpath
    ./build/bench/kernel_hotpath --quick --label ci-smoke \
        --out build/kernel_smoke.json
    python3 scripts/bench_report.py compare \
        bench/baselines/kernel_quick.json build/kernel_smoke.json \
        --max-regression 2.0
}

stage_telemetry() {
    ensure_release
    cmake --build build -j "$JOBS" --target kernel_hotpath
    # The 2%/15% bounds are far tighter than single-shot noise on a
    # shared CI box, so each mode runs three times (interleaved, to
    # balance load drift) and the gate uses the best run of each —
    # min total ns/access, the noise-robust estimator.
    for i in 1 2 3; do
        ./build/bench/kernel_hotpath --quick --label telemetry-off \
            --out "build/kernel_telemetry_off.$i.json"
        ./build/bench/kernel_hotpath --quick --label telemetry-on \
            --trace --telemetry-out build/telemetry-artifacts \
            --metrics-out "build/kernel_telemetry_on.$i.prom" \
            --out "build/kernel_telemetry_on.$i.json"
    done
    python3 scripts/bench_report.py best \
        build/kernel_telemetry_off.[123].json \
        --out build/kernel_telemetry_off.json
    python3 scripts/bench_report.py best \
        build/kernel_telemetry_on.[123].json \
        --out build/kernel_telemetry_on.json
    # Disabled telemetry must cost nothing measurable: aggregate
    # ns/access within 2% of the checked-in baseline.
    python3 scripts/bench_report.py compare \
        bench/baselines/kernel_quick.json \
        build/kernel_telemetry_off.json \
        --max-regression 1.02 --total
    # Full tracing + sampling + artifact output: within 15% of the
    # off run measured back-to-back on this machine.
    python3 scripts/bench_report.py compare \
        build/kernel_telemetry_off.json \
        build/kernel_telemetry_on.json \
        --max-regression 1.15 --total
    # Cross-link the on-run trajectory point to its manifests.
    python3 scripts/bench_report.py show \
        build/kernel_telemetry_on.json \
        --with-telemetry build/telemetry-artifacts
    # Metric-level tripwire: the exposition holds only
    # deterministic simulation state (counters, probes, latency
    # histograms — no wall clock), so every on-run .prom of this
    # machine is identical; run 1 stands in for all three.
    # Thresholds are generous — both bounds must be exceeded to
    # fail — and --ignore-missing keeps newly added metrics from
    # failing CI before the baseline is regenerated.  The
    # exact-match guarantees live in tests/test_metrics.cc.
    python3 scripts/metrics_diff.py \
        bench/baselines/kernel_quick.prom \
        build/kernel_telemetry_on.1.prom \
        --rel-threshold 0.5 --abs-threshold 1e-6 \
        --ignore-missing --require-eof --quiet
}

stage_analyze() {
    # Determinism & hot-path analyzer: zero findings required.  The
    # SARIF report is uploaded to code scanning by ci.yml.
    mkdir -p build
    python3 scripts/profess_analyze --repo . \
        --sarif build/profess_analyze.sarif

    if command -v clang-format >/dev/null 2>&1; then
        # Check-only: report drift, never rewrite (.clang-format).
        git ls-files 'src/**/*.cc' 'src/**/*.hh' |
            xargs clang-format --dry-run -Werror
    elif [ -n "${CI:-}" ]; then
        # In CI the tool is pinned by the workflow; its absence
        # means the toolchain install silently broke.  Fail loudly
        # instead of shipping unformatted (and un-analyzed) code.
        echo "    ERROR: clang-format missing in CI" >&2
        exit 1
    else
        echo "    clang-format not installed; skipping format check"
    fi

    if command -v clang-tidy >/dev/null 2>&1; then
        # Results are cached on a stamp keyed by everything that
        # can change a finding (tidy config, sources, build
        # flags); CI persists build-tidy/.ctcache across runs
        # (actions/cache), so unchanged trees skip the analysis.
        TIDY_STAMP_DIR=build-tidy/.ctcache
        TIDY_HASH=$( (clang-tidy --version
                      cat .clang-tidy CMakeLists.txt
                      git ls-files 'src/**' | sort | xargs cat) |
                     sha256sum | cut -d' ' -f1)
        if [ -f "$TIDY_STAMP_DIR/$TIDY_HASH" ]; then
            echo "    clang-tidy cache hit ($TIDY_HASH); skipping"
        else
            # A dedicated compile database (any build type works;
            # tidy only needs the flags).  run-clang-tidy
            # parallelizes.
            cmake -B build-tidy -S . -DCMAKE_BUILD_TYPE=Debug \
                -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
            if command -v run-clang-tidy >/dev/null 2>&1; then
                run-clang-tidy -p build-tidy -j "$JOBS" -quiet \
                    "$(pwd)/src/.*"
            else
                git ls-files 'src/**/*.cc' |
                    xargs clang-tidy -p build-tidy --quiet
            fi
            mkdir -p "$TIDY_STAMP_DIR"
            touch "$TIDY_STAMP_DIR/$TIDY_HASH"
        fi
    elif [ -n "${CI:-}" ]; then
        echo "    ERROR: clang-tidy missing in CI" >&2
        exit 1
    else
        echo "    clang-tidy not installed; skipping static analysis"
    fi
}

stage_ubsan() {
    # Full suite under UBSan + ASan with every audit hook compiled
    # in.  This is the stage that actually executes the invariant
    # audits: Release keeps PROFESS_AUDIT off (bit-identical hot
    # path), Debug turns it on and sanitizes the checks themselves.
    # PROFESS_DETSAN rides along: the digest instrumentation and
    # journal run under both sanitizers here and feed the detsan
    # differential.
    ensure_ubsan
    UBSAN_OPTIONS="print_stacktrace=1" \
        ctest --test-dir build-ubsan --output-on-failure -j "$JOBS"
}

stage_scenario() {
    # Reuses the ubsan build: PROFESS_AUDIT=ON means every quiesce
    # audit, rollback invariant and ST/STC structural check
    # actually executes under both sanitizers while faults are
    # being injected.
    ensure_ubsan
    UBSAN_OPTIONS="print_stacktrace=1" \
        ctest --test-dir build-ubsan --output-on-failure \
            -j "$JOBS" -R 'Scenario'
}

stage_detsan() {
    # The serial measured pass journals one digest set per run
    # identity; the verification pass replays the same matrix on 8
    # pool workers and cross-checks in-process.  Any divergence —
    # event count, (when, seq) extraction order, epoch trajectory,
    # final statistics — is a fatal digest mismatch.
    ensure_ubsan
    cmake --build build-ubsan -j "$JOBS" --target kernel_hotpath
    ./build-ubsan/bench/kernel_hotpath --quick --jobs 8 \
        --label detsan-diff --out build-ubsan/kernel_detsan.json
}

stage_sweep() {
    ensure_release
    cmake --build build -j "$JOBS" --target profess_sweep
    SPEC=bench/sweeps/nightly.sweep

    echo "    sweep-a: uninterrupted"
    ./build/bench/profess_sweep --spec "$SPEC" \
        --out build/sweep-a --jobs "$JOBS" --fresh --no-progress

    echo "    sweep-b: interrupted (--max-runs 3) + resumed"
    set +e
    ./build/bench/profess_sweep --spec "$SPEC" \
        --out build/sweep-b --jobs "$JOBS" --max-runs 3 --fresh \
        --no-progress
    rc=$?
    set -e
    if [ "$rc" -ne 75 ]; then
        echo "    ERROR: interrupted sweep exited $rc, expected 75" \
            >&2
        exit 1
    fi
    ./build/bench/profess_sweep --spec "$SPEC" \
        --out build/sweep-b --jobs "$JOBS" --no-progress

    # The resumed sweep must be indistinguishable from the
    # uninterrupted one, byte for byte.
    cmp build/sweep-a/sweep.journal.jsonl \
        build/sweep-b/sweep.journal.jsonl
    cmp build/sweep-a/metrics.prom build/sweep-b/metrics.prom

    # The Python shard merger is a second, independent
    # implementation of the exposition writer; it must agree with
    # the C++ merge byte-for-byte.
    python3 scripts/metrics_merge.py build/sweep-a/metrics.prom.shards \
        -o build/sweep-a/metrics.merged.py.prom
    cmp build/sweep-a/metrics.prom build/sweep-a/metrics.merged.py.prom

    # Metric-level tripwire against the checked-in baseline, same
    # generous thresholds as the telemetry stage.
    python3 scripts/metrics_diff.py \
        bench/baselines/sweep_nightly.prom \
        build/sweep-a/metrics.prom \
        --rel-threshold 0.5 --abs-threshold 1e-6 \
        --ignore-missing --require-eof --quiet
}

IFS=',' read -r -a STAGE_LIST <<< "$STAGES"
TOTAL=${#STAGE_LIST[@]}
N=0
for stage in "${STAGE_LIST[@]}"; do
    N=$((N + 1))
    case "$stage" in
        tsan|release|perf|telemetry|analyze|ubsan|scenario|detsan|sweep)
            echo "==> [$N/$TOTAL] stage: $stage"
            "stage_$stage"
            ;;
        *)
            echo "unknown stage '$stage'" >&2
            exit 1
            ;;
    esac
done

if command -v ccache >/dev/null 2>&1; then
    echo "==> ccache stats"
    ccache --show-stats
fi

echo "==> CI passed ($STAGES)"
