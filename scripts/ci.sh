#!/usr/bin/env bash
#
# CI entry point: two build/test passes.
#
#   1. Debug + ThreadSanitizer, running only the concurrency-
#      sensitive tests (thread pool, parallel runner, alone-IPC
#      cache).  A data race anywhere in the parallel experiment
#      path fails this stage.
#   2. Release, full test suite (the tier-1 gate).
#
# Usage: scripts/ci.sh [jobs]   (default: nproc)

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "==> [1/2] Debug + TSan: parallel runner tests"
cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -g -O1" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build build-tsan -j "$JOBS" --target test_parallel_runner
TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
        -R 'ThreadPool|AloneCache|Differential|ParallelRunner'

echo "==> [2/2] Release: full suite"
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "==> CI passed"
