#!/usr/bin/env bash
#
# CI entry point: two build/test passes.
#
#   1. Debug + ThreadSanitizer, running only the concurrency-
#      sensitive tests (thread pool, parallel runner, alone-IPC
#      cache).  A data race anywhere in the parallel experiment
#      path fails this stage.
#   2. Release, full test suite (the tier-1 gate).
#   3. Perf smoke: bench/kernel_hotpath --quick against the
#      checked-in baseline (bench/baselines/kernel_quick.json);
#      fails on a >2x ns/access regression on any run of the
#      matrix.  The loose factor absorbs machine-to-machine and
#      CI-noise variance while still catching algorithmic
#      regressions of the simulation kernel.
#
# Usage: scripts/ci.sh [jobs]   (default: nproc)

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "==> [1/3] Debug + TSan: parallel runner tests"
cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -g -O1" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build build-tsan -j "$JOBS" --target test_parallel_runner
TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
        -R 'ThreadPool|AloneCache|Differential|ParallelRunner'

echo "==> [2/3] Release: full suite"
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "==> [3/3] Kernel perf smoke"
cmake --build build -j "$JOBS" --target kernel_hotpath
./build/bench/kernel_hotpath --quick --label ci-smoke \
    --out build/kernel_smoke.json
python3 scripts/bench_report.py compare \
    bench/baselines/kernel_quick.json build/kernel_smoke.json \
    --max-regression 2.0

echo "==> CI passed"
