#!/usr/bin/env python3
"""Diff two OpenMetrics exposition files series-by-series.

Parses the text exposition written by common/openmetrics.cc (also
accepts any plain OpenMetrics/Prometheus text format) into a map of
(sample name, sorted label set) -> value, then reports every series
whose value differs between BASE and CAND beyond the configured
thresholds.  The CI regression gate and the cross-run fairness
recipe in EXPERIMENTS.md both run on top of this.

A series fails when BOTH thresholds are exceeded: the absolute
delta is > --abs-threshold AND the relative delta is
> --rel-threshold.  With the defaults (both 0) any difference at
all fails, which is the exact-match mode used by the determinism
tests (jobs=1 vs jobs=8 must produce byte-identical metrics, so a
zero-threshold diff of their expositions must report nothing).

Series present in only one file are always reported; with
--ignore-missing they are listed but do not fail the diff (useful
against a checked-in baseline produced by an older binary).
--ignore REGEX drops matching series entirely (matched against the
rendered "name{labels}" form; repeatable).  Timing-derived series
(wall-clock seconds, RSS, ns/access) are inherently noisy across
machines, so gates against checked-in baselines typically pass
--ignore for those families plus generous thresholds for the rest.

Only the standard library is used.
"""

import argparse
import re
import signal
import sys

# Die quietly when output is piped into head & co.
if hasattr(signal, "SIGPIPE"):
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)

# One sample line: name, optional {labels}, value (timestamps and
# exemplars are not emitted by our writer and not supported here).
SAMPLE_RE = re.compile(
    r"^([A-Za-z_:][A-Za-z0-9_:]*)"  # sample name
    r"(?:\{(.*)\})?"                # label set (raw, parsed below)
    r"\s+(\S+)\s*$"                 # value
)
LABEL_RE = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)="((?:[^"\\]|\\.)*)"')


def unescape(value):
    """Undo OpenMetrics label-value escaping (\\\\, \\", \\n)."""
    out = []
    i = 0
    while i < len(value):
        c = value[i]
        if c == "\\" and i + 1 < len(value):
            n = value[i + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(n, n))
            i += 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


def parse_exposition(path):
    """Parse one exposition file.

    Returns (series, saw_eof) where series maps
    (sample name, tuple of sorted (label, value) pairs) -> float.
    Exits with an error on a duplicated series or a malformed line.
    """
    series = {}
    saw_eof = False
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("#"):
                saw_eof = line.strip() == "# EOF"
                continue
            if saw_eof:
                sys.exit(f"{path}:{lineno}: sample after # EOF")
            m = SAMPLE_RE.match(line)
            if m is None:
                sys.exit(f"{path}:{lineno}: unparseable sample line:"
                         f" {line!r}")
            name, raw_labels, raw_value = m.groups()
            labels = []
            if raw_labels:
                spans = list(LABEL_RE.finditer(raw_labels))
                rebuilt = ",".join(s.group(0) for s in spans)
                if rebuilt != raw_labels:
                    sys.exit(f"{path}:{lineno}: malformed label set:"
                             f" {raw_labels!r}")
                labels = [(s.group(1), unescape(s.group(2)))
                          for s in spans]
            try:
                value = float(raw_value)
            except ValueError:
                sys.exit(f"{path}:{lineno}: bad value {raw_value!r}")
            key = (name, tuple(sorted(labels)))
            if key in series:
                sys.exit(f"{path}:{lineno}: duplicate series"
                         f" {render(key)}")
            series[key] = value
    return series, saw_eof


def render(key):
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


def main(argv=None):
    p = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    p.add_argument("base", help="baseline exposition file")
    p.add_argument("cand", help="candidate exposition file")
    p.add_argument(
        "--rel-threshold", type=float, default=0.0,
        help="max tolerated |cand-base|/max(|base|,tiny) "
             "(default 0 = exact)")
    p.add_argument(
        "--abs-threshold", type=float, default=0.0,
        help="max tolerated |cand-base| (default 0 = exact)")
    p.add_argument(
        "--ignore", action="append", default=[], metavar="REGEX",
        help="drop series matching REGEX entirely (repeatable; "
             "matched against the rendered name{labels} form)")
    p.add_argument(
        "--ignore-missing", action="store_true",
        help="series present in only one file are reported but do "
             "not fail the diff")
    p.add_argument(
        "--require-eof", action="store_true",
        help="fail unless both files end with '# EOF'")
    p.add_argument(
        "--quiet", action="store_true",
        help="print failures and the summary line only")
    args = p.parse_args(argv)

    base, base_eof = parse_exposition(args.base)
    cand, cand_eof = parse_exposition(args.cand)
    if args.require_eof and not (base_eof and cand_eof):
        missing = []
        if not base_eof:
            missing.append(args.base)
        if not cand_eof:
            missing.append(args.cand)
        sys.exit("missing '# EOF' terminator: " + ", ".join(missing))

    ignores = [re.compile(rx) for rx in args.ignore]

    def ignored(key):
        text = render(key)
        return any(rx.search(text) for rx in ignores)

    failures = 0
    compared = 0
    skipped = 0
    missing = 0
    for key in sorted(set(base) | set(cand)):
        if ignored(key):
            skipped += 1
            continue
        if key not in base or key not in cand:
            missing += 1
            where = "base" if key not in cand else "cand"
            tag = "MISSING" if args.ignore_missing else "FAIL"
            if tag == "FAIL":
                failures += 1
            print(f"  {tag}: {render(key)} only in {where}")
            continue
        compared += 1
        b, c = base[key], cand[key]
        if b == c:
            continue
        abs_delta = abs(c - b)
        rel_delta = abs_delta / max(abs(b), 1e-300)
        bad = (abs_delta > args.abs_threshold
               and rel_delta > args.rel_threshold)
        if bad:
            failures += 1
        if bad or not args.quiet:
            tag = "FAIL" if bad else "delta"
            print(f"  {tag}: {render(key)} {b:.17g} -> {c:.17g} "
                  f"(abs {abs_delta:.3g}, rel {rel_delta:.3%})")
    print(f"{compared} series compared, {missing} missing, "
          f"{skipped} ignored, {failures} over threshold "
          f"(rel {args.rel_threshold:g}, abs {args.abs_threshold:g})")
    if failures:
        print("FAIL: metrics regression", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
